package experiments

import (
	"math"
	"os"
	"reflect"
	"strings"
	"sync"
	"testing"
)

// The paper-scale suite is expensive enough (~seconds) to share across
// tests; every experiment is deterministic, so sharing is safe. The
// COMPLEXOBJ_BACKEND environment variable (the CI matrix axis) selects
// the device backend — every assertion in this package must hold
// identically for "mem" and "file".
var (
	suiteOnce sync.Once
	suite     *Suite
)

func paperSuite(t *testing.T) *Suite {
	t.Helper()
	suiteOnce.Do(func() {
		cfg := DefaultConfig()
		cfg.Backend = os.Getenv("COMPLEXOBJ_BACKEND")
		suite = New(cfg)
	})
	return suite
}

// TestMain closes the shared suite so file-backend runs do not leave
// anonymous arena files behind.
func TestMain(m *testing.M) {
	code := m.Run()
	if suite != nil {
		suite.Close()
	}
	os.Exit(code)
}

func cell(t *testing.T, m *Matrix, model, query string) Measured {
	t.Helper()
	c, ok := m.Get(model, query)
	if !ok {
		t.Fatalf("missing cell %s/%s", model, query)
	}
	return c
}

func TestMatrixComplete(t *testing.T) {
	m, err := paperSuite(t).Matrix()
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Rows) != 5*7 {
		t.Fatalf("matrix has %d rows, want 35", len(m.Rows))
	}
	if len(m.Models()) != 5 {
		t.Fatalf("models: %v", m.Models())
	}
	nsm1a := cell(t, m, "NSM", "1a")
	if nsm1a.Supported {
		t.Error("pure NSM 1a should be unsupported")
	}
	if _, ok := m.Get("DSM", "9x"); ok {
		t.Error("bogus cell found")
	}
}

// TestTable4PaperShape asserts the headline measured results against the
// paper's Table 4 values where legible, with generous tolerances for the
// encoding differences documented in EXPERIMENTS.md.
func TestTable4PaperShape(t *testing.T) {
	m, err := paperSuite(t).Matrix()
	if err != nil {
		t.Fatal(err)
	}
	within := func(name string, got, want, relTol float64) {
		t.Helper()
		if math.Abs(got-want)/want > relTol {
			t.Errorf("%s = %.2f, paper ~%.2f (tol %.0f%%)", name, got, want, relTol*100)
		}
	}
	// Direct models: ~3-4 pages per object on query 1; full scans for 1b.
	dsm1a := cell(t, m, "DSM", "1a").Pages
	if dsm1a < 2.5 || dsm1a > 4.5 {
		t.Errorf("DSM 1a = %.2f, want 3-4 pages/object", dsm1a)
	}
	// NSM+index 1a: the paper's 5.96.
	within("NSM+index 1a", cell(t, m, "NSM+index", "1a").Pages, 5.96, 0.10)
	// DASDBS-NSM 1a: the paper's 5.00 (ours has one more sightseeing page).
	within("DASDBS-NSM 1a", cell(t, m, "DASDBS-NSM", "1a").Pages, 5.0, 0.30)
	// Warm navigation, the paper's Table 7 row for the default extension:
	// DSM 57.7, DASDBS-DSM 20.6, DASDBS-NSM 2.12 pages/loop.
	within("DSM 2b", cell(t, m, "DSM", "2b").Pages, 57.7, 0.20)
	within("DASDBS-DSM 2b", cell(t, m, "DASDBS-DSM", "2b").Pages, 20.6, 0.10)
	within("DASDBS-NSM 2b", cell(t, m, "DASDBS-NSM", "2b").Pages, 2.12, 0.20)
}

func TestTable4Orderings(t *testing.T) {
	m, err := paperSuite(t).Matrix()
	if err != nil {
		t.Fatal(err)
	}
	get := func(model, q string) float64 { return cell(t, m, model, q).Pages }
	// Query 2b: DASDBS-NSM < NSM family < DASDBS-DSM < DSM.
	if !(get("DASDBS-NSM", "2b") < get("DASDBS-DSM", "2b") &&
		get("DASDBS-DSM", "2b") < get("DSM", "2b")) {
		t.Error("query 2b ordering violated")
	}
	if get("NSM", "2b") >= get("DASDBS-DSM", "2b") {
		t.Error("normalized navigation not cheaper than direct partial access")
	}
	// Query 1b: pure NSM scans everything; indexes collapse the cost.
	if get("NSM", "1b") < 10*get("NSM+index", "1b") {
		t.Error("pure NSM value query not dramatically worse")
	}
	// Query 3: the DASDBS-DSM write-through anomaly. Its writes are "larger
	// than expected" — the best-case estimate is one distinct root page per
	// grand-child over the run (~5/loop), the page pool makes it one write
	// per update operation (~16.7/loop) — and dwarf the normalized models'.
	ddsmW := cell(t, m, "DASDBS-DSM", "3b").PagesWritten
	if ddsmW < 14 {
		t.Errorf("DASDBS-DSM 3b writes %.2f/loop, want ~one per updated tuple (anomaly)", ddsmW)
	}
	for _, norm := range []string{"NSM", "NSM+index", "DASDBS-NSM"} {
		if c := cell(t, m, norm, "3b"); c.PagesWritten >= ddsmW/5 {
			t.Errorf("3b writes: %s %.2f not dwarfed by DASDBS-DSM %.2f",
				norm, c.PagesWritten, ddsmW)
		}
	}
	// Normalized root updates batch: under one write per loop.
	if w := cell(t, m, "DASDBS-NSM", "3b").PagesWritten; w > 1 {
		t.Errorf("DASDBS-NSM 3b writes %.2f/loop, want < 1 (shared root pages)", w)
	}
}

func TestTable5CallShapes(t *testing.T) {
	m, err := paperSuite(t).Matrix()
	if err != nil {
		t.Fatal(err)
	}
	// §5.2: "With DSM, about 2 pages are read per I/O call"; "NSM even
	// reads only a single page per retrieval call".
	dsm := cell(t, m, "DSM", "2b")
	ratio := dsm.Pages / dsm.Calls
	if ratio < 1.4 || ratio > 2.6 {
		t.Errorf("DSM pages/call = %.2f, want ~2", ratio)
	}
	nsm := cell(t, m, "NSM", "2b")
	if r := nsm.Pages / nsm.Calls; math.Abs(r-1) > 0.05 {
		t.Errorf("NSM pages/call = %.2f, want 1", r)
	}
	// Writes batch more pages per call than reads for DSM's replace-set
	// updates (§5.2: "With the write operation, more pages are handled in
	// a single I/O call").
	q3 := cell(t, m, "DSM", "3b")
	if q3.WriteCalls <= 0 {
		t.Fatal("DSM 3b has no write calls")
	}
	if perCall := q3.PagesWritten / q3.WriteCalls; perCall < 1.2 {
		t.Errorf("DSM 3b pages per write call = %.2f, want > 1.2 (batched)", perCall)
	}
}

func TestTable6FixShapes(t *testing.T) {
	m, err := paperSuite(t).Matrix()
	if err != nil {
		t.Fatal(err)
	}
	// DASDBS-NSM uses the fewest page fixes on the navigation loop; the
	// direct models the most (paper §6: "DASDBS-NSM uses the least page
	// fixes").
	fixes := func(model string) float64 { return cell(t, m, model, "2b").Fixes }
	least := fixes("DASDBS-NSM")
	for _, other := range []string{"DSM", "DASDBS-DSM", "NSM", "NSM+index"} {
		if fixes(other) <= least {
			t.Errorf("2b fixes: %s %.1f <= DASDBS-NSM %.1f", other, fixes(other), least)
		}
	}
	if fixes("DSM") <= fixes("DASDBS-DSM") {
		t.Error("DSM should fix more pages than DASDBS-DSM on navigation")
	}
}

func TestTable2AgainstPaper(t *testing.T) {
	rows, err := paperSuite(t).Table2()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1+4+4 {
		t.Fatalf("Table 2 has %d rows", len(rows))
	}
	byName := map[string]RelationRow{}
	for _, r := range rows {
		byName[r.Model+"/"+r.Relation] = r
	}
	// The flat NSM geometry is close to the paper's: the sightseeing
	// relation must land at k=4, like the published Table 2.
	see := byName["NSM/NSM_Sightseeing"]
	if see.K != 4 {
		t.Errorf("NSM_Sightseeing k = %.1f, paper 4", see.K)
	}
	if math.Abs(float64(see.M)-2813)/2813 > 0.05 {
		t.Errorf("NSM_Sightseeing m = %d, paper 2813", see.M)
	}
	// Direct stations span multiple pages.
	dsm := byName["DSM/DSM_Station"]
	if dsm.P < 3 || dsm.P > 4.5 {
		t.Errorf("DSM_Station p = %.2f, want 3-4.5 (paper 4)", dsm.P)
	}
	if dsm.Tuples != 1500 {
		t.Errorf("DSM_Station tuples = %d", dsm.Tuples)
	}
	// Paper reference columns attached where legible.
	if math.IsNaN(byName["NSM/NSM_Connection"].PaperM) {
		t.Error("paper m for NSM_Connection missing")
	}
}

func TestTable3DerivedTracksMeasurements(t *testing.T) {
	s := paperSuite(t)
	rows, err := s.Table3Derived()
	if err != nil {
		t.Fatal(err)
	}
	m, err := s.Matrix()
	if err != nil {
		t.Fatal(err)
	}
	for _, est := range rows {
		if est.Model.String() == "DSM'" {
			continue // no measured counterpart
		}
		// Query 1c is scan-bound and must agree tightly; the estimate is
		// exact arithmetic over the same layout.
		meas := cell(t, m, est.Model.String(), "1c").Pages
		if math.Abs(est.Q1c-meas)/meas > 0.05 {
			t.Errorf("%s 1c: estimated %.2f vs measured %.2f", est.Model, est.Q1c, meas)
		}
		// Query 2a (cold navigation) within 25%: the estimator is the
		// paper's best-case arithmetic.
		meas2a := cell(t, m, est.Model.String(), "2a").Pages
		if math.Abs(est.Q2a-meas2a)/meas2a > 0.25 {
			t.Errorf("%s 2a: estimated %.2f vs measured %.2f", est.Model, est.Q2a, meas2a)
		}
	}
	// Warm loops: the cache-friendly models must sit near the best case;
	// the direct models exceed it (cache overflow, §5.4).
	byModel := map[string]float64{}
	for _, est := range rows {
		byModel[est.Model.String()] = est.Q2b
	}
	for _, model := range []string{"NSM", "NSM+index", "DASDBS-NSM"} {
		meas := cell(t, m, model, "2b").Pages
		if math.Abs(byModel[model]-meas)/meas > 0.30 {
			t.Errorf("%s 2b: estimated %.2f vs measured %.2f", model, byModel[model], meas)
		}
	}
	if meas := cell(t, m, "DSM", "2b").Pages; meas < 2*byModel["DSM"] {
		t.Errorf("DSM 2b measured %.2f does not exceed best case %.2f (overflow expected)",
			meas, byModel["DSM"])
	}
}

func TestTable7SkewKeepsAverages(t *testing.T) {
	rows, err := paperSuite(t).Table7()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("Table 7 rows = %d (pure NSM must be dropped)", len(rows))
	}
	for _, r := range rows {
		if r.Model == "NSM" {
			t.Error("pure NSM present in Table 7")
		}
		// "the overall figures are similar to those of the original
		// benchmark" — per-loop warm numbers within 35%.
		if math.Abs(r.SkewQ2b-r.DefaultQ2b)/r.DefaultQ2b > 0.35 {
			t.Errorf("%s: skew 2b %.2f vs default %.2f", r.Model, r.SkewQ2b, r.DefaultQ2b)
		}
	}
}

func TestTable8MatchesPaperConclusion(t *testing.T) {
	m, err := paperSuite(t).Matrix()
	if err != nil {
		t.Fatal(err)
	}
	rows, err := m.Table8()
	if err != nil {
		t.Fatal(err)
	}
	rendered := RenderTable8(rows)
	order := make([]string, 0, len(rendered.Rows))
	for _, r := range rendered.Rows {
		order = append(order, r[0])
	}
	// §6: "DASDBS-NSM seems to be the best and NSM the worst. Also,
	// DASDBS-DSM is (more powerful thus) better than DSM."
	if order[0] != "DASDBS-NSM" {
		t.Errorf("overall best = %s, want DASDBS-NSM (order %v)", order[0], order)
	}
	if order[len(order)-1] != "NSM" {
		t.Errorf("overall worst = %s, want NSM (order %v)", order[len(order)-1], order)
	}
	pos := map[string]int{}
	for i, m := range order {
		pos[m] = i
	}
	if pos["DASDBS-DSM"] > pos["DSM"] {
		t.Error("DASDBS-DSM not ranked above DSM")
	}
}

func TestFigure5Claims(t *testing.T) {
	cells, err := paperSuite(t).Figure5()
	if err != nil {
		t.Fatal(err)
	}
	get := func(model string, maxSee int) Fig5Cell {
		for _, c := range cells {
			if c.Model == model && c.MaxSeeing == maxSee {
				return c
			}
		}
		t.Fatalf("missing cell %s/%d", model, maxSee)
		return Fig5Cell{}
	}
	// (a) "The larger the sub-objects not used, the larger the advantage
	// of DASDBS-DSM over DSM."
	adv0 := get("DSM", 0).Q2b - get("DASDBS-DSM", 0).Q2b
	adv15 := get("DSM", 15).Q2b - get("DASDBS-DSM", 15).Q2b
	adv30 := get("DSM", 30).Q2b - get("DASDBS-DSM", 30).Q2b
	if !(adv0 < adv15 && adv15 < adv30) {
		t.Errorf("DASDBS-DSM advantage not growing: %.2f, %.2f, %.2f", adv0, adv15, adv30)
	}
	// (b) "With DASDBS-NSM, the results for query 2b and query 3b are
	// independent of the number of Sightseeings."
	for _, q := range []func(Fig5Cell) float64{
		func(c Fig5Cell) float64 { return c.Q2b },
		func(c Fig5Cell) float64 { return c.Q3b },
	} {
		v0, v15, v30 := q(get("DASDBS-NSM", 0)), q(get("DASDBS-NSM", 15)), q(get("DASDBS-NSM", 30))
		if math.Abs(v0-v15) > 0.02*v15 || math.Abs(v30-v15) > 0.02*v15 {
			t.Errorf("DASDBS-NSM not flat across sightseeings: %.3f %.3f %.3f", v0, v15, v30)
		}
	}
	// (c) "for smaller objects the advantage of DASDBS-NSM over the direct
	// storage models melts away."
	gapSmall := get("DSM", 0).Q2b - get("DASDBS-NSM", 0).Q2b
	gapBig := get("DSM", 15).Q2b - get("DASDBS-NSM", 15).Q2b
	if gapSmall > gapBig/5 {
		t.Errorf("small-object advantage did not melt away: %.2f vs %.2f", gapSmall, gapBig)
	}
	// (d) "DASDBS-DSM is bad with updates, in particular for small
	// objects": with maxSeeing=0 its 3b beats nobody — it must be worse
	// than DSM's.
	if get("DASDBS-DSM", 0).Q3b <= get("DSM", 0).Q3b {
		t.Errorf("small-object update anomaly missing: DASDBS-DSM %.2f <= DSM %.2f",
			get("DASDBS-DSM", 0).Q3b, get("DSM", 0).Q3b)
	}
	// (e) With the update query 3b, the advantage of DASDBS-NSM over the
	// direct models remains (at default size).
	if get("DASDBS-NSM", 15).Q3b >= get("DASDBS-DSM", 15).Q3b {
		t.Error("DASDBS-NSM lost its update advantage")
	}
}

func TestFigure6Claims(t *testing.T) {
	points, err := paperSuite(t).Figure6()
	if err != nil {
		t.Fatal(err)
	}
	get := func(model string, n int) Fig6Point {
		for _, p := range points {
			if p.Model == model && p.N == n {
				return p
			}
		}
		t.Fatalf("missing point %s/%d", model, n)
		return Fig6Point{}
	}
	// Below cache capacity the measured values sit at the best case.
	for _, model := range []string{"DSM", "DASDBS-DSM", "DASDBS-NSM"} {
		for _, n := range []int{100, 200} {
			p := get(model, n)
			if math.Abs(p.Measured-p.BestCase)/p.BestCase > 0.20 {
				t.Errorf("%s N=%d: measured %.2f far from best case %.2f",
					model, n, p.Measured, p.BestCase)
			}
		}
	}
	// DSM is the most cache-sensitive: by N=1500 it sits well above best
	// case and approaches (without exceeding) the worst case.
	dsm := get("DSM", 1500)
	if dsm.Measured < 2.5*dsm.BestCase {
		t.Errorf("DSM@1500 measured %.2f, best %.2f: overflow effect missing",
			dsm.Measured, dsm.BestCase)
	}
	if dsm.Measured > 1.05*dsm.WorstCase {
		t.Errorf("DSM@1500 measured %.2f above worst case %.2f", dsm.Measured, dsm.WorstCase)
	}
	// DSM degrades monotonically past the cache size.
	if !(get("DSM", 400).Measured < get("DSM", 700).Measured &&
		get("DSM", 700).Measured < get("DSM", 1500).Measured) {
		t.Error("DSM degradation not monotone in database size")
	}
	// DASDBS-NSM is the least sensitive: flat at best case everywhere.
	for _, n := range Fig6Sizes {
		p := get("DASDBS-NSM", n)
		if math.Abs(p.Measured-p.BestCase)/p.BestCase > 0.20 {
			t.Errorf("DASDBS-NSM N=%d: measured %.2f vs best %.2f", n, p.Measured, p.BestCase)
		}
	}
	// Sensitivity ordering at full size: DSM > DASDBS-DSM > DASDBS-NSM.
	ratio := func(model string) float64 {
		p := get(model, 1500)
		return p.Measured / p.BestCase
	}
	if !(ratio("DSM") > ratio("DASDBS-DSM") && ratio("DASDBS-DSM") > ratio("DASDBS-NSM")) {
		t.Errorf("cache sensitivity ordering violated: %.2f %.2f %.2f",
			ratio("DSM"), ratio("DASDBS-DSM"), ratio("DASDBS-NSM"))
	}
}

func TestRendering(t *testing.T) {
	s := paperSuite(t)
	tables, err := s.All()
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) < 12 {
		t.Fatalf("All() produced %d tables", len(tables))
	}
	for _, tb := range tables {
		if tb.Title == "" {
			t.Error("table without title")
		}
		if txt := tb.Text(); !strings.Contains(txt, tb.Header[0]) {
			t.Errorf("%s: text render missing header", tb.Title)
		}
		if md := tb.Markdown(); !strings.Contains(md, "| --- |") && !strings.Contains(md, "| --- | ---") {
			t.Errorf("%s: markdown render missing separator", tb.Title)
		}
		if csv := tb.CSV(); len(csv) == 0 {
			t.Errorf("%s: empty CSV", tb.Title)
		}
	}
}

func TestExtensionStats(t *testing.T) {
	gs, err := paperSuite(t).ExtensionStats()
	if err != nil {
		t.Fatal(err)
	}
	if gs.N != 1500 {
		t.Errorf("extension size %d", gs.N)
	}
	if gs.AvgConnections < 3.8 || gs.AvgConnections > 4.4 {
		t.Errorf("avg connections %.2f", gs.AvgConnections)
	}
}

func TestDefaultsFilledIn(t *testing.T) {
	s := New(Config{})
	if s.Config().Gen.N != 1500 || s.Config().BufferPages != 1200 {
		t.Errorf("zero config not defaulted: %+v", s.Config())
	}
}

func TestTable1Static(t *testing.T) {
	tb := Table1()
	if len(tb.Rows) != 8 {
		t.Errorf("Table 1 rows = %d", len(tb.Rows))
	}
	txt := tb.Text()
	for _, p := range []string{"g", "k", "m", "p", "t"} {
		if !strings.Contains(txt, p) {
			t.Errorf("Table 1 missing parameter %s", p)
		}
	}
}

func TestIndexAblation(t *testing.T) {
	a, err := paperSuite(t).IndexAblation()
	if err != nil {
		t.Fatal(err)
	}
	if a.IndexPages <= 0 || a.TreeHeight < 2 {
		t.Errorf("index stats: %d pages, height %d", a.IndexPages, a.TreeHeight)
	}
	byQuery := map[string]IndexAblationRow{}
	for _, r := range a.Rows {
		byQuery[r.Query] = r
	}
	// Counted index I/O makes every positional access dearer...
	for _, q := range []string{"1a", "2a", "2b", "3b"} {
		r := byQuery[q]
		if r.CountedPages <= r.FreePages {
			t.Errorf("%s: counted %.2f <= free %.2f", q, r.CountedPages, r.FreePages)
		}
		if r.CountedFixes <= r.FreeFixes {
			t.Errorf("%s fixes: counted %.2f <= free %.2f", q, r.CountedFixes, r.FreeFixes)
		}
	}
	// ...but stays within the same order of magnitude on the warm loop
	// (hot index pages cache).
	if r := byQuery["2b"]; r.CountedPages > 2.5*r.FreePages {
		t.Errorf("2b: counted %.2f blows up over free %.2f", r.CountedPages, r.FreePages)
	}
	// The value query flips: tree descent instead of a root-relation scan.
	if r := byQuery["1b"]; r.CountedPages >= r.FreePages/3 {
		t.Errorf("1b: counted %.2f did not beat scan-based %.2f", r.CountedPages, r.FreePages)
	}
	tbl := RenderIndexAblation(a)
	if len(tbl.Rows) != len(a.Rows) {
		t.Error("render lost rows")
	}
}

// TestIndexAblationAndTable7Golden pins the rendered index ablation and
// Table 7 rows bit-for-bit. Both tables exercise the NSM+index probe path
// (counted B+-tree descents and the groupRIDs scratch), so any change to
// the decode or index-probe code that shifts a single counter shows up
// here as a cell diff. The values are backend-invariant: counters are
// logical, so mem, file and cow report the same digits.
func TestIndexAblationAndTable7Golden(t *testing.T) {
	a, err := paperSuite(t).IndexAblation()
	if err != nil {
		t.Fatal(err)
	}
	wantAblation := [][]string{
		{"1a", "5.950", "15.12", "14.57", "26.75"},
		{"1b", "104.4", "14.60", "113.4", "27.60"},
		{"2a", "26.88", "48.55", "46.20", "110.3"},
		{"2b", "1.757", "2.167", "43.74", "104.5"},
		{"3b", "2.117", "2.527", "78.89", "209.5"},
	}
	if got := RenderIndexAblation(a).Rows; !reflect.DeepEqual(got, wantAblation) {
		t.Errorf("index ablation rows changed:\ngot  %v\nwant %v", got, wantAblation)
	}
	if a.IndexPages != 344 || a.TreeHeight != 2 {
		t.Errorf("index footprint: %d pages, height %d (want 344, 2)", a.IndexPages, a.TreeHeight)
	}
	rows, err := paperSuite(t).Table7()
	if err != nil {
		t.Fatal(err)
	}
	wantT7 := [][]string{
		{"DSM", "75.78", "51.89", "100.6", "53.94"},
		{"DASDBS-DSM", "41.60", "19.67", "55.00", "20.79"},
		{"NSM+index", "26.88", "1.757", "30.48", "1.747"},
		{"DASDBS-NSM", "25.73", "1.900", "30.52", "2.013"},
	}
	if got := RenderTable7(rows).Rows; !reflect.DeepEqual(got, wantT7) {
		t.Errorf("Table 7 rows changed:\ngot  %v\nwant %v", got, wantT7)
	}
}

func TestPolicyAblation(t *testing.T) {
	rows, err := paperSuite(t).PolicyAblation()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("policy ablation rows: %d", len(rows))
	}
	for _, r := range rows {
		if r.LRU <= 0 || r.Clock <= 0 {
			t.Errorf("%s: empty measurements", r.Model)
		}
		// The paper's conclusions must be policy-robust: within 15%.
		diff := r.Clock - r.LRU
		if diff < 0 {
			diff = -diff
		}
		if diff/r.LRU > 0.15 {
			t.Errorf("%s: LRU %.2f vs Clock %.2f differ by >15%%", r.Model, r.LRU, r.Clock)
		}
	}
	tbl := RenderPolicyAblation(rows)
	if len(tbl.Rows) != 3 {
		t.Error("render lost rows")
	}
}

func TestTableCosts(t *testing.T) {
	s := paperSuite(t)
	rows, err := s.TableCosts(Disk1990())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("cost rows: %d", len(rows))
	}
	byModel := map[string]CostRow{}
	for _, r := range rows {
		byModel[r.Model] = r
	}
	// On a seek-dominated device the per-call weight matters: pure NSM's
	// one-page-per-call scans make its value query slower than DSM's even
	// though it reads fewer pages (the paper's §5.2 point about calls).
	if byModel["NSM"].Ms["1b"] <= byModel["DSM"].Ms["1b"] {
		t.Errorf("1990 disk: NSM 1b %.0f ms not above DSM %.0f ms",
			byModel["NSM"].Ms["1b"], byModel["DSM"].Ms["1b"])
	}
	// The navigation ordering survives any positive weights.
	if !(byModel["DASDBS-NSM"].Ms["2b"] < byModel["DASDBS-DSM"].Ms["2b"] &&
		byModel["DASDBS-DSM"].Ms["2b"] < byModel["DSM"].Ms["2b"]) {
		t.Error("2b cost ordering violated")
	}
	if !math.IsNaN(byModel["NSM"].Ms["1a"]) {
		t.Error("NSM 1a should be NaN")
	}
	tbl := RenderTableCosts("x", Disk1990(), rows)
	if len(tbl.Rows) != 5 {
		t.Error("render lost rows")
	}
}

func TestCharts(t *testing.T) {
	s := paperSuite(t)
	f5, err := s.ChartFigure5()
	if err != nil {
		t.Fatal(err)
	}
	if len(f5) != 3 {
		t.Fatalf("figure 5 charts: %d", len(f5))
	}
	f6, err := s.ChartFigure6()
	if err != nil {
		t.Fatal(err)
	}
	if len(f6) != 3 {
		t.Fatalf("figure 6 charts: %d", len(f6))
	}
	for _, c := range append(f5, f6...) {
		if !strings.Contains(c, "|") || !strings.Contains(c, "*") {
			t.Errorf("chart looks empty:\n%s", c)
		}
	}
}

func TestDistributionAblation(t *testing.T) {
	s := paperSuite(t)
	rows, err := s.DistributionAblation(8)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("distribution rows: %d", len(rows))
	}
	var def, skew NodeBalance
	for _, r := range rows {
		switch r.Extension {
		case "default":
			def = r
		case "skew":
			skew = r
		}
	}
	// Cluster-wide averages stay comparable (same expected workload)...
	if math.Abs(skew.MeanPages-def.MeanPages)/def.MeanPages > 0.25 {
		t.Errorf("mean pages diverge: %.0f vs %.0f", def.MeanPages, skew.MeanPages)
	}
	// ...but the skewed extension produces heavier single-loop bursts on
	// individual nodes (the paper's §5.5 conjecture).
	if skew.HottestLoopPages <= 1.3*def.HottestLoopPages {
		t.Errorf("skew hottest loop %.0f not heavier than default %.0f",
			skew.HottestLoopPages, def.HottestLoopPages)
	}
	if def.CV < 0 || skew.CV < 0 {
		t.Error("negative CV")
	}
	if _, err := s.DistributionAblation(1); err == nil {
		t.Error("single-node cluster accepted")
	}
	if len(RenderDistribution(rows).Rows) != 2 {
		t.Error("render lost rows")
	}
}

func TestBufferSweep(t *testing.T) {
	points, err := paperSuite(t).BufferSweep()
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != len(BufferSizes)*3 {
		t.Fatalf("buffer sweep points: %d", len(points))
	}
	get := func(model string, bp int) BufferPoint {
		for _, p := range points {
			if p.Model == model && p.BufferPages == bp {
				return p
			}
		}
		t.Fatalf("missing point %s/%d", model, bp)
		return BufferPoint{}
	}
	for _, model := range []string{"DSM", "DASDBS-DSM", "DASDBS-NSM"} {
		// Monotone (within noise): more cache never makes it worse by >5%.
		prev := get(model, BufferSizes[0])
		for _, bp := range BufferSizes[1:] {
			cur := get(model, bp)
			if cur.Measured > prev.Measured*1.05 {
				t.Errorf("%s: measured grew with cache %d->%d: %.2f -> %.2f",
					model, prev.BufferPages, bp, prev.Measured, cur.Measured)
			}
			if cur.HitRatio+1e-9 < prev.HitRatio-0.02 {
				t.Errorf("%s: hit ratio fell with more cache", model)
			}
			prev = cur
		}
		// A big-enough cache reaches the best case.
		big := get(model, 4800)
		if big.Measured > 1.25*big.BestCase {
			t.Errorf("%s: 4800-page cache still %.2f vs best %.2f",
				model, big.Measured, big.BestCase)
		}
		// A tiny cache sits near the worst case for the direct models.
		if model != "DASDBS-NSM" {
			small := get(model, 150)
			if small.Measured < 0.7*small.WorstCase {
				t.Errorf("%s: 150-page cache %.2f far below worst case %.2f",
					model, small.Measured, small.WorstCase)
			}
		}
	}
	// DASDBS-NSM needs far less cache to hit its best case than DSM.
	if get("DASDBS-NSM", 600).Measured > 1.2*get("DASDBS-NSM", 4800).Measured {
		t.Error("DASDBS-NSM still cache-bound at 600 pages")
	}
	if len(RenderBufferSweep(points)) != 3 {
		t.Error("render lost tables")
	}
}
