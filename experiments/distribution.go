package experiments

import (
	"fmt"
	"math"

	"complexobj/cobench"
	"complexobj/internal/store"
	"complexobj/internal/xrand"
	"complexobj/report"
)

// NodeBalance summarizes how evenly the navigation I/O of query 2b spreads
// over the nodes of a hypothetical shared-nothing cluster, when each
// complex object lives entirely on one node.
type NodeBalance struct {
	Extension string // "default" or "skew"
	Nodes     int
	// MeanPages and MaxPages are per-node page I/O totals over the whole
	// run; CV is the coefficient of variation (stddev/mean) across nodes.
	MeanPages float64
	MaxPages  float64
	CV        float64
	// HottestLoopPages is the largest single-loop page burst hitting one
	// node (tail latency proxy).
	HottestLoopPages float64
}

// DistributionAblation works the paper's closing §5.5 remark into an
// experiment: "in a distributed system the data skew might cause more
// effects ... For, with data skew the disk I/Os are likely to be less
// equally distributed over the nodes if we store a single object on a
// single node."
//
// Stations are placed on nodes round-robin (the paper's single-object-per-
// node clustering); the query 2b navigation trace then charges each
// touched object's pages — measured on a per-object basis from the DSM
// layout — to the owning node. The default and the skewed extension run
// the identical trace schedule, so differences are pure placement effects
// of the object-size and fan-out tails.
func (s *Suite) DistributionAblation(nodes int) ([]NodeBalance, error) {
	if nodes <= 1 {
		return nil, fmt.Errorf("experiments: need at least 2 nodes, got %d", nodes)
	}
	var out []NodeBalance
	for _, variant := range []struct {
		name string
		gen  cobench.Config
	}{
		{"default", s.cfg.Gen},
		{"skew", s.cfg.Gen.Skewed()},
	} {
		nb, err := s.nodeBalance(variant.name, variant.gen, nodes)
		if err != nil {
			return nil, err
		}
		out = append(out, nb)
	}
	return out, nil
}

func (s *Suite) nodeBalance(name string, gen cobench.Config, nodes int) (NodeBalance, error) {
	stations, err := cobench.Generate(gen)
	if err != nil {
		return NodeBalance{}, err
	}
	// Per-object page footprint under direct storage: measure the loaded
	// layout rather than guessing from byte counts.
	opts, err := s.storeOptions()
	if err != nil {
		return NodeBalance{}, err
	}
	m, err := s.openLoaded(store.DSM, opts, gen, stations)
	if err != nil {
		return NodeBalance{}, err
	}
	defer m.Engine().Close()
	perObject, err := objectPages(m, len(stations))
	if err != nil {
		return NodeBalance{}, err
	}
	loops := s.cfg.Workload.Loops
	if loops <= 0 {
		loops = cobench.LoopsFor(len(stations))
	}
	// The same deterministic root schedule the workload driver uses.
	rng := xrand.New(xrand.Mix(s.cfg.Workload.Seed, uint64(cobench.Q2b)+100))
	nodePages := make([]float64, nodes)
	hottest := 0.0
	for l := 0; l < loops; l++ {
		root := rng.Intn(len(stations))
		loopNode := make([]float64, nodes)
		charge := func(obj int) {
			loopNode[obj%nodes] += perObject[obj]
		}
		charge(root)
		for _, c := range stations[root].Children() {
			charge(int(c))
			for _, g := range stations[c].Children() {
				charge(int(g))
			}
		}
		for n, v := range loopNode {
			nodePages[n] += v
			if v > hottest {
				hottest = v
			}
		}
	}
	var sum, sumSq, max float64
	for _, v := range nodePages {
		sum += v
		sumSq += v * v
		if v > max {
			max = v
		}
	}
	mean := sum / float64(nodes)
	variance := sumSq/float64(nodes) - mean*mean
	if variance < 0 {
		variance = 0
	}
	cv := 0.0
	if mean > 0 {
		cv = math.Sqrt(variance) / mean
	}
	return NodeBalance{
		Extension:        name,
		Nodes:            nodes,
		MeanPages:        mean,
		MaxPages:         max,
		CV:               cv,
		HottestLoopPages: hottest,
	}, nil
}

// objectPages returns the direct-storage page footprint of every object,
// probed with cold-cache single-object fetches.
func objectPages(m store.Model, n int) ([]float64, error) {
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		if err := m.Engine().ColdCache(); err != nil {
			return nil, err
		}
		m.Engine().ResetStats()
		if _, err := m.FetchByAddress(i); err != nil {
			return nil, err
		}
		out[i] = float64(m.Engine().Stats().PagesRead)
	}
	return out, nil
}

// RenderDistribution renders the node-balance comparison.
func RenderDistribution(rows []NodeBalance) *report.Table {
	t := &report.Table{
		Title:  "Extension (§5.5 remark): query 2b I/O balance over a shared-nothing cluster",
		Header: []string{"EXTENSION", "nodes", "mean pages/node", "max pages/node", "CV", "hottest loop"},
		Notes: []string{
			"objects placed whole on nodes (round-robin); the skewed extension concentrates I/O",
			"into heavier per-loop bursts even though cluster-wide averages stay equal",
		},
	}
	for _, r := range rows {
		t.AddRow(r.Extension, report.Int(r.Nodes), report.Num(r.MeanPages),
			report.Num(r.MaxPages), report.Num(r.CV), report.Num(r.HottestLoopPages))
	}
	return t
}
