package experiments

import (
	"sync"
	"testing"

	"complexobj/cobench"
)

// TestGenShare pins the transient generation share: overlapping acquires
// of one configuration generate once, the entry dies with its last user,
// and a later acquire regenerates — nothing is retained between cells.
func TestGenShare(t *testing.T) {
	g := newGenShare()
	gen := cobench.DefaultConfig().WithN(30)

	var wg sync.WaitGroup
	releases := make([]func(), 8)
	stations := make([][]*cobench.Station, 8)
	for i := range releases {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			st, release, err := g.acquire(gen)
			if err != nil {
				t.Error(err)
				return
			}
			stations[i], releases[i] = st, release
		}(i)
	}
	wg.Wait()
	if g.generations() != 1 {
		t.Fatalf("8 overlapping acquires generated %d times, want 1", g.generations())
	}
	for _, st := range stations[1:] {
		if len(st) != len(stations[0]) {
			t.Fatal("acquirers got different extensions")
		}
	}
	for _, release := range releases[:7] {
		release()
	}
	if g.inFlight() != 1 {
		t.Fatalf("entry dropped while a user is live (inFlight %d)", g.inFlight())
	}
	releases[7]()
	releases[7]() // idempotent per acquisition
	if g.inFlight() != 0 {
		t.Fatalf("entry retained after last release (inFlight %d)", g.inFlight())
	}

	// A fresh acquire after the drop regenerates, deterministically.
	st, release, err := g.acquire(gen)
	if err != nil {
		t.Fatal(err)
	}
	defer release()
	if g.generations() != 2 {
		t.Fatalf("re-acquire generated %d times total, want 2", g.generations())
	}
	if len(st) != 30 {
		t.Fatalf("regenerated extension has %d stations, want 30", len(st))
	}

	// Distinct configurations never share an entry.
	_, release2, err := g.acquire(gen.WithN(40))
	if err != nil {
		t.Fatal(err)
	}
	defer release2()
	if g.inFlight() != 2 || g.generations() != 3 {
		t.Fatalf("distinct config: inFlight %d generations %d, want 2 and 3", g.inFlight(), g.generations())
	}
}
