package experiments

import (
	"fmt"

	"complexobj/report"
)

// ChartFigure6 renders the Figure 6 sweep as an ASCII chart per model:
// measured points against the best-case and worst-case lines over a
// logarithmic database-size axis, like the paper's plot.
func (s *Suite) ChartFigure6() ([]string, error) {
	points, err := s.Figure6()
	if err != nil {
		return nil, err
	}
	var out []string
	for _, k := range fig5Models {
		var meas, best, worst []report.Point
		for _, p := range points {
			if p.Model != k.String() {
				continue
			}
			x := float64(p.N)
			meas = append(meas, report.Point{X: x, Y: p.Measured})
			best = append(best, report.Point{X: x, Y: p.BestCase})
			worst = append(worst, report.Point{X: x, Y: p.WorstCase})
		}
		c := &report.Chart{
			Title:  fmt.Sprintf("Figure 6 (%s): query 2b pages/loop vs database size", k),
			XLabel: "objects",
			YLabel: "pages per loop",
			LogX:   true,
			Series: []report.Series{
				{Name: "measured", Points: meas},
				{Name: "best case", Points: best},
				{Name: "worst case", Points: worst},
			},
		}
		out = append(out, c.Text())
	}
	return out, nil
}

// ChartFigure5 renders the Figure 5 object-size sweep as one ASCII chart
// per query (pages/loop vs max sightseeings, one series per model).
func (s *Suite) ChartFigure5() ([]string, error) {
	cells, err := s.Figure5()
	if err != nil {
		return nil, err
	}
	queries := []struct {
		name string
		get  func(Fig5Cell) float64
	}{
		{"1c", func(c Fig5Cell) float64 { return c.Q1c }},
		{"2b", func(c Fig5Cell) float64 { return c.Q2b }},
		{"3b", func(c Fig5Cell) float64 { return c.Q3b }},
	}
	var out []string
	for _, q := range queries {
		var series []report.Series
		for _, k := range fig5Models {
			var pts []report.Point
			for _, c := range cells {
				if c.Model == k.String() {
					pts = append(pts, report.Point{X: float64(c.MaxSeeing), Y: q.get(c)})
				}
			}
			series = append(series, report.Series{Name: k.String(), Points: pts})
		}
		c := &report.Chart{
			Title:  fmt.Sprintf("Figure 5 (query %s): pages vs max sightseeings", q.name),
			XLabel: "max sightseeings",
			YLabel: "pages per object/loop",
			Series: series,
		}
		out = append(out, c.Text())
	}
	return out, nil
}
