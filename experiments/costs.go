package experiments

import (
	"fmt"

	"complexobj/costmodel"
	"complexobj/report"
)

// DeviceWeights are the d1/d2 coefficients of the paper's Equation 1,
// C = d1 · X_calls + d2 · X_pages: the fixed cost of issuing one I/O call
// (seek + rotational latency) and the transfer cost per 2-KiB page.
type DeviceWeights struct {
	// PerCallMs is d1 in milliseconds (a late-1980s SCSI disk of the kind
	// under the paper's Sun 3/60 averages ~20 ms positioning time).
	PerCallMs float64
	// PerPageMs is d2 in milliseconds (~2 ms to transfer 2 KiB at
	// ~1 MB/s).
	PerPageMs float64
}

// Disk1990 is a representative device of the paper's era.
func Disk1990() DeviceWeights { return DeviceWeights{PerCallMs: 20, PerPageMs: 2} }

// DiskModern is a contemporary NVMe-like device, where the per-call
// penalty almost vanishes. The comparison shows which of the paper's
// conclusions are era-dependent: the page-count ordering carries over, the
// call-batching advantage of DSM does not matter any more.
func DiskModern() DeviceWeights { return DeviceWeights{PerCallMs: 0.02, PerPageMs: 0.01} }

// CostRow is one model's estimated device time per query unit (object or
// loop) under Equation 1.
type CostRow struct {
	Model string
	// Milliseconds per unit, by query label ("1a".."3b"); NaN where the
	// model does not support the query.
	Ms map[string]float64
}

// TableCosts folds the measured calls and pages of Tables 4/5 into the
// paper's Equation 1, giving a response-time proxy per query. The paper
// introduces the equation but reports X_calls and X_pages separately;
// this table completes the calculation for a concrete device.
func (s *Suite) TableCosts(w DeviceWeights) ([]CostRow, error) {
	m, err := s.Matrix()
	if err != nil {
		return nil, err
	}
	var rows []CostRow
	for _, model := range m.Models() {
		row := CostRow{Model: model, Ms: map[string]float64{}}
		for _, q := range queryLabels {
			c, ok := m.Get(model, q)
			if !ok || !c.Supported {
				row.Ms[q] = nan()
				continue
			}
			row.Ms[q] = costmodel.WeightedCost(w.PerCallMs, w.PerPageMs, c.Calls, c.Pages)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// RenderTableCosts renders the Equation 1 cost table.
func RenderTableCosts(title string, w DeviceWeights, rows []CostRow) *report.Table {
	t := &report.Table{
		Title: fmt.Sprintf("%s (Eq. 1: d1=%.2f ms/call, d2=%.2f ms/page)",
			title, w.PerCallMs, w.PerPageMs),
		Header: append([]string{"MODEL"}, queryLabels...),
		Notes: []string{
			"estimated device milliseconds per object (1a-1c) / per loop (2a-3b), folding Tables 4 and 5 into Equation 1",
		},
	}
	for _, r := range rows {
		cells := []string{r.Model}
		for _, q := range queryLabels {
			cells = append(cells, report.Num(r.Ms[q]))
		}
		t.AddRow(cells...)
	}
	return t
}
