package experiments

import (
	"complexobj/cobench"
	"complexobj/costmodel"
	"complexobj/internal/fanout"
	"complexobj/report"
)

// BufferPoint is one measurement of the buffer-size sweep: query 2b at the
// default database size under a given cache capacity.
type BufferPoint struct {
	Model       string
	BufferPages int
	Measured    float64
	BestCase    float64
	WorstCase   float64
	HitRatio    float64
}

// BufferSizes is the sweep axis (the paper fixes 1200 pages; the sweep
// shows the same §5.4 crossover from the other side).
var BufferSizes = []int{150, 300, 600, 1200, 2400, 4800}

// BufferSweep complements Figure 6: instead of growing the database past a
// fixed cache, it shrinks and grows the cache under the fixed 1500-object
// extension. The same mechanics appear: with a cache big enough for the
// working set every model sits at its best case; below that the direct
// models degrade toward the worst case first because their working set is
// p pages per touched object.
//
// The (buffer size, model) cells fan out over the suite's worker pool;
// each cell builds a private engine with its own cache capacity.
func (s *Suite) BufferSweep() ([]BufferPoint, error) {
	if s.bufferSweep != nil {
		return s.bufferSweep, nil
	}
	params, _, err := s.DerivedParams()
	if err != nil {
		return nil, err
	}
	baseOpts, err := s.storeOptions()
	if err != nil {
		return nil, err
	}
	wl := costmodel.Workload{
		N:        float64(s.cfg.Gen.N),
		Children: costmodel.PaperWorkload().Children,
		Grand:    costmodel.PaperWorkload().Grand,
		Loops:    float64(s.cfg.Workload.Loops),
	}
	// All cells measure the default extension; generate it once and share
	// it read-only across the workers. On the shared-base path the cache
	// collapses the whole sweep onto one frozen base per model — the
	// buffer size is a runtime knob of the view, not part of the base key.
	stations, err := s.extension()
	if err != nil {
		return nil, err
	}
	points := make([]BufferPoint, len(BufferSizes)*len(fig5Models))
	err = fanout.Run(len(points), s.workers(), func(i int) error {
		bp := BufferSizes[i/len(fig5Models)]
		k := fig5Models[i%len(fig5Models)]
		opts := baseOpts
		opts.BufferPages = bp
		res, err := s.runQueriesLoaded(k, opts, s.cfg.Gen, stations, s.cfg.Workload, cobench.Q2b)
		if err != nil {
			return err
		}
		m := res[cobench.Q2b]
		hit := 0.0
		if m.Fixes > 0 {
			hit = m.Hits / m.Fixes
		}
		est := costmodel.Estimate(kindToCostModel(k), params, wl)
		points[i] = BufferPoint{
			Model:       k.String(),
			BufferPages: bp,
			Measured:    m.Pages,
			BestCase:    est.Q2b,
			WorstCase:   est.Q2a,
			HitRatio:    hit,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	s.bufferSweep = points
	return points, nil
}

// RenderBufferSweep renders the buffer-size sweep, one table per model.
func RenderBufferSweep(points []BufferPoint) []*report.Table {
	var out []*report.Table
	for _, k := range fig5Models {
		t := &report.Table{
			Title:  "Extension: query 2b pages/loop vs buffer size, N=1500 (" + k.String() + ")",
			Header: []string{"buffer pages", "measured", "best case", "worst case", "hit ratio"},
			Notes: []string{
				"the dual of Figure 6: shrinking the cache under a fixed database reproduces the same overflow story",
			},
		}
		for _, p := range points {
			if p.Model != k.String() {
				continue
			}
			t.AddRow(report.Int(p.BufferPages), report.Num(p.Measured),
				report.Num(p.BestCase), report.Num(p.WorstCase), report.Num(p.HitRatio))
		}
		out = append(out, t)
	}
	return out
}
