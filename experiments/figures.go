package experiments

import (
	"fmt"

	"complexobj/cobench"
	"complexobj/costmodel"
	"complexobj/internal/fanout"
	"complexobj/internal/store"
	"complexobj/report"
)

// fig5Models are the storage models Figure 5 compares ("Since 'pure' NSM
// has not shown to be particularly suited for complex object storage, we
// do not consider this storage model any longer", §5.3).
var fig5Models = []store.Kind{store.DSM, store.DASDBSDSM, store.DASDBSNSM}

// Fig5Cell is one bar group of Figure 5: the measured page I/Os of one
// model under one maximum sightseeing count.
type Fig5Cell struct {
	Model      string
	MaxSeeing  int
	AvgSeeings float64
	Q1c        float64
	Q2b        float64
	Q3b        float64
}

// Figure5 reproduces the object-size experiment of §5.3: the benchmark is
// regenerated with at most 0, 15 and 30 sightseeings per station (realised
// averages ~0/7.5/15) and queries 1c, 2b and 3b are measured for DSM,
// DASDBS-DSM and DASDBS-NSM. The generator draws sightseeings from an
// independent random stream, so the platform/connection graph is identical
// across the sweep and the figure isolates the pure object-size effect.
//
// The (maxSeeing, model) cells are independent — each builds its own
// extension and engine — so they fan out over the suite's worker pool;
// results land at fixed indices and are byte-identical to a serial run.
func (s *Suite) Figure5() ([]Fig5Cell, error) {
	if s.fig5 != nil {
		return s.fig5, nil
	}
	opts, err := s.storeOptions()
	if err != nil {
		return nil, err
	}
	maxSees := []int{0, 15, 30}
	// Generate each maxSeeing extension once; the three model cells of a
	// column share it read-only (and, on the shared-base path, the column
	// whose maxSeeing equals the suite default shares its frozen bases
	// with the matrix and the buffer sweep).
	gens := make([]cobench.Config, len(maxSees))
	extensions := make([][]*cobench.Station, len(maxSees))
	genStats := make([]cobench.Stats, len(maxSees))
	for i, maxSee := range maxSees {
		gens[i] = s.cfg.Gen.WithMaxSeeing(maxSee)
		stations, err := cobench.Generate(gens[i])
		if err != nil {
			return nil, err
		}
		extensions[i] = stations
		genStats[i] = cobench.Describe(stations)
	}
	cells := make([]Fig5Cell, len(maxSees)*len(fig5Models))
	err = fanout.Run(len(cells), s.workers(), func(i int) error {
		col := i / len(fig5Models)
		k := fig5Models[i%len(fig5Models)]
		res, err := s.runQueriesLoaded(k, opts, gens[col], extensions[col], s.cfg.Workload,
			cobench.Q1c, cobench.Q2b, cobench.Q3b)
		if err != nil {
			return err
		}
		cells[i] = Fig5Cell{
			Model:      k.String(),
			MaxSeeing:  maxSees[col],
			AvgSeeings: genStats[col].AvgSeeings,
			Q1c:        res[cobench.Q1c].Pages,
			Q2b:        res[cobench.Q2b].Pages,
			Q3b:        res[cobench.Q3b].Pages,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	s.fig5 = cells
	return cells, nil
}

// RenderFigure5 renders the Figure 5 data as one table per query, bar
// groups as rows.
func RenderFigure5(cells []Fig5Cell) []*report.Table {
	queries := []struct {
		name string
		get  func(Fig5Cell) float64
	}{
		{"1c", func(c Fig5Cell) float64 { return c.Q1c }},
		{"2b", func(c Fig5Cell) float64 { return c.Q2b }},
		{"3b", func(c Fig5Cell) float64 { return c.Q3b }},
	}
	var out []*report.Table
	for _, q := range queries {
		t := &report.Table{
			Title:  fmt.Sprintf("Figure 5 (query %s): measured page I/Os while max sightseeings is 0, 15, 30", q.name),
			Header: []string{"MODEL", "maxSee=0", "maxSee=15", "maxSee=30"},
		}
		for _, k := range fig5Models {
			cells3 := []string{k.String()}
			for _, maxSee := range []int{0, 15, 30} {
				for _, c := range cells {
					if c.Model == k.String() && c.MaxSeeing == maxSee {
						cells3 = append(cells3, report.Num(q.get(c)))
					}
				}
			}
			t.AddRow(cells3...)
		}
		out = append(out, t)
	}
	return out
}

// Fig6Point is one point of Figure 6: query 2b pages per loop at one
// database size, measured against the analytical best and worst case.
type Fig6Point struct {
	Model     string
	N         int
	Loops     int
	Measured  float64
	BestCase  float64
	WorstCase float64
}

// Fig6Sizes is the database-size axis of Figure 6 (the paper sweeps 100 to
// 1500 objects on a logarithmic axis).
var Fig6Sizes = []int{100, 200, 400, 700, 1000, 1500}

// Figure6 reproduces the caching experiment of §5.4: query 2b is run with
// loops = N/5 for increasing database sizes; without cache overflow the
// measured values sit at the analytical best case, with overflow the
// direct models degrade toward the worst case (the query 2a estimate).
//
// The (N, model) points fan out over the suite's worker pool with
// per-point engines; only the analytical envelope is computed up front.
func (s *Suite) Figure6() ([]Fig6Point, error) {
	if s.fig6 != nil {
		return s.fig6, nil
	}
	params, _, err := s.DerivedParams()
	if err != nil {
		return nil, err
	}
	opts, err := s.storeOptions()
	if err != nil {
		return nil, err
	}
	baseN := float64(s.cfg.Gen.N)
	points := make([]Fig6Point, len(Fig6Sizes)*len(fig5Models))
	err = fanout.Run(len(points), s.workers(), func(i int) error {
		n := Fig6Sizes[i/len(fig5Models)]
		k := fig5Models[i%len(fig5Models)]
		gen := s.cfg.Gen.WithN(n)
		w := s.cfg.Workload
		w.Loops = cobench.LoopsFor(n)
		res, err := s.runQueriesOn(k, opts, gen, w, cobench.Q2b)
		if err != nil {
			return err
		}
		cm := kindToCostModel(k)
		scaled := params.Scaled(float64(n), baseN)
		wl := costmodel.Workload{
			N:        float64(n),
			Children: costmodel.PaperWorkload().Children,
			Grand:    costmodel.PaperWorkload().Grand,
			Loops:    float64(w.Loops),
		}
		points[i] = Fig6Point{
			Model:     k.String(),
			N:         n,
			Loops:     w.Loops,
			Measured:  res[cobench.Q2b].Pages,
			BestCase:  costmodel.Estimate(cm, scaled, wl).Q2b,
			WorstCase: costmodel.Estimate(cm, scaled, wl).Q2a,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	s.fig6 = points
	return points, nil
}

func kindToCostModel(k store.Kind) costmodel.Model {
	switch k {
	case store.DSM:
		return costmodel.DSM
	case store.DASDBSDSM:
		return costmodel.DASDBSDSM
	case store.NSM:
		return costmodel.NSM
	case store.NSMIndex:
		return costmodel.NSMIndex
	default:
		return costmodel.DASDBSNSM
	}
}

// RenderFigure6 renders the Figure 6 data, one table per model.
func RenderFigure6(points []Fig6Point) []*report.Table {
	var out []*report.Table
	for _, k := range fig5Models {
		t := &report.Table{
			Title:  fmt.Sprintf("Figure 6 (%s): query 2b pages/loop vs database size (loops = N/5)", k),
			Header: []string{"N", "loops", "measured", "best case", "worst case"},
			Notes: []string{
				"best case: Eq. 8 cache model with derived layout constants; worst case: the query 2a estimate (§5.4)",
			},
		}
		for _, p := range points {
			if p.Model != k.String() {
				continue
			}
			t.AddRow(report.Int(p.N), report.Int(p.Loops),
				report.Num(p.Measured), report.Num(p.BestCase), report.Num(p.WorstCase))
		}
		out = append(out, t)
	}
	return out
}

// Table3Sections renders the analytical-estimate block: Table 3 under the
// paper's and under the derived layout constants plus the analytical
// I/O-call counterpart.
func (s *Suite) Table3Sections() ([]*report.Table, error) {
	out := []*report.Table{
		RenderTable3("Table 3 (paper layout constants): estimated page I/Os", s.Table3Paper()),
	}
	t3d, err := s.Table3Derived()
	if err != nil {
		return nil, err
	}
	out = append(out, RenderTable3("Table 3 (derived layout constants): estimated page I/Os", t3d))
	out = append(out, RenderTable3("Analytical I/O calls (Table 5 counterpart, paper layout constants)",
		costmodel.EstimateAllCalls(costmodel.PaperParams(), costmodel.PaperWorkload())))
	return out, nil
}

// CostSections renders the estimated-device-time tables for the 1990 disk
// and a modern flash device.
func (s *Suite) CostSections() ([]*report.Table, error) {
	var out []*report.Table
	for _, dev := range []struct {
		name string
		w    DeviceWeights
	}{
		{"Estimated device time, 1990 disk", Disk1990()},
		{"Estimated device time, modern flash", DiskModern()},
	} {
		rows, err := s.TableCosts(dev.w)
		if err != nil {
			return nil, err
		}
		out = append(out, RenderTableCosts(dev.name, dev.w, rows))
	}
	return out, nil
}

// All regenerates every table and figure in paper order and returns the
// rendered tables: the concatenation of every Section.
func (s *Suite) All() ([]*report.Table, error) {
	var out []*report.Table
	for _, sec := range Sections() {
		ts, err := sec.Build(s)
		if err != nil {
			return nil, err
		}
		out = append(out, ts...)
	}
	return out, nil
}
