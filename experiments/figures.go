package experiments

import (
	"fmt"

	"complexobj/cobench"
	"complexobj/costmodel"
	"complexobj/internal/store"
	"complexobj/report"
)

// fig5Models are the storage models Figure 5 compares ("Since 'pure' NSM
// has not shown to be particularly suited for complex object storage, we
// do not consider this storage model any longer", §5.3).
var fig5Models = []store.Kind{store.DSM, store.DASDBSDSM, store.DASDBSNSM}

// Fig5Cell is one bar group of Figure 5: the measured page I/Os of one
// model under one maximum sightseeing count.
type Fig5Cell struct {
	Model      string
	MaxSeeing  int
	AvgSeeings float64
	Q1c        float64
	Q2b        float64
	Q3b        float64
}

// Figure5 reproduces the object-size experiment of §5.3: the benchmark is
// regenerated with at most 0, 15 and 30 sightseeings per station (realised
// averages ~0/7.5/15) and queries 1c, 2b and 3b are measured for DSM,
// DASDBS-DSM and DASDBS-NSM. The generator draws sightseeings from an
// independent random stream, so the platform/connection graph is identical
// across the sweep and the figure isolates the pure object-size effect.
func (s *Suite) Figure5() ([]Fig5Cell, error) {
	if s.fig5 != nil {
		return s.fig5, nil
	}
	var cells []Fig5Cell
	for _, maxSee := range []int{0, 15, 30} {
		gen := s.cfg.Gen.WithMaxSeeing(maxSee)
		stations, err := cobench.Generate(gen)
		if err != nil {
			return nil, err
		}
		gs := cobench.Describe(stations)
		for _, k := range fig5Models {
			res, err := s.runQueriesOn(k, gen, s.cfg.Workload,
				cobench.Q1c, cobench.Q2b, cobench.Q3b)
			if err != nil {
				return nil, err
			}
			cells = append(cells, Fig5Cell{
				Model:      k.String(),
				MaxSeeing:  maxSee,
				AvgSeeings: gs.AvgSeeings,
				Q1c:        res[cobench.Q1c].Pages,
				Q2b:        res[cobench.Q2b].Pages,
				Q3b:        res[cobench.Q3b].Pages,
			})
		}
	}
	s.fig5 = cells
	return cells, nil
}

// RenderFigure5 renders the Figure 5 data as one table per query, bar
// groups as rows.
func RenderFigure5(cells []Fig5Cell) []*report.Table {
	queries := []struct {
		name string
		get  func(Fig5Cell) float64
	}{
		{"1c", func(c Fig5Cell) float64 { return c.Q1c }},
		{"2b", func(c Fig5Cell) float64 { return c.Q2b }},
		{"3b", func(c Fig5Cell) float64 { return c.Q3b }},
	}
	var out []*report.Table
	for _, q := range queries {
		t := &report.Table{
			Title:  fmt.Sprintf("Figure 5 (query %s): measured page I/Os while max sightseeings is 0, 15, 30", q.name),
			Header: []string{"MODEL", "maxSee=0", "maxSee=15", "maxSee=30"},
		}
		for _, k := range fig5Models {
			cells3 := []string{k.String()}
			for _, maxSee := range []int{0, 15, 30} {
				for _, c := range cells {
					if c.Model == k.String() && c.MaxSeeing == maxSee {
						cells3 = append(cells3, report.Num(q.get(c)))
					}
				}
			}
			t.AddRow(cells3...)
		}
		out = append(out, t)
	}
	return out
}

// Fig6Point is one point of Figure 6: query 2b pages per loop at one
// database size, measured against the analytical best and worst case.
type Fig6Point struct {
	Model     string
	N         int
	Loops     int
	Measured  float64
	BestCase  float64
	WorstCase float64
}

// Fig6Sizes is the database-size axis of Figure 6 (the paper sweeps 100 to
// 1500 objects on a logarithmic axis).
var Fig6Sizes = []int{100, 200, 400, 700, 1000, 1500}

// Figure6 reproduces the caching experiment of §5.4: query 2b is run with
// loops = N/5 for increasing database sizes; without cache overflow the
// measured values sit at the analytical best case, with overflow the
// direct models degrade toward the worst case (the query 2a estimate).
func (s *Suite) Figure6() ([]Fig6Point, error) {
	if s.fig6 != nil {
		return s.fig6, nil
	}
	params, _, err := s.DerivedParams()
	if err != nil {
		return nil, err
	}
	baseN := float64(s.cfg.Gen.N)
	var points []Fig6Point
	for _, n := range Fig6Sizes {
		gen := s.cfg.Gen.WithN(n)
		w := s.cfg.Workload
		w.Loops = cobench.LoopsFor(n)
		for _, k := range fig5Models {
			res, err := s.runQueriesOn(k, gen, w, cobench.Q2b)
			if err != nil {
				return nil, err
			}
			cm := kindToCostModel(k)
			scaled := params.Scaled(float64(n), baseN)
			wl := costmodel.Workload{
				N:        float64(n),
				Children: costmodel.PaperWorkload().Children,
				Grand:    costmodel.PaperWorkload().Grand,
				Loops:    float64(w.Loops),
			}
			points = append(points, Fig6Point{
				Model:     k.String(),
				N:         n,
				Loops:     w.Loops,
				Measured:  res[cobench.Q2b].Pages,
				BestCase:  costmodel.Estimate(cm, scaled, wl).Q2b,
				WorstCase: costmodel.Estimate(cm, scaled, wl).Q2a,
			})
		}
	}
	s.fig6 = points
	return points, nil
}

func kindToCostModel(k store.Kind) costmodel.Model {
	switch k {
	case store.DSM:
		return costmodel.DSM
	case store.DASDBSDSM:
		return costmodel.DASDBSDSM
	case store.NSM:
		return costmodel.NSM
	case store.NSMIndex:
		return costmodel.NSMIndex
	default:
		return costmodel.DASDBSNSM
	}
}

// RenderFigure6 renders the Figure 6 data, one table per model.
func RenderFigure6(points []Fig6Point) []*report.Table {
	var out []*report.Table
	for _, k := range fig5Models {
		t := &report.Table{
			Title:  fmt.Sprintf("Figure 6 (%s): query 2b pages/loop vs database size (loops = N/5)", k),
			Header: []string{"N", "loops", "measured", "best case", "worst case"},
			Notes: []string{
				"best case: Eq. 8 cache model with derived layout constants; worst case: the query 2a estimate (§5.4)",
			},
		}
		for _, p := range points {
			if p.Model != k.String() {
				continue
			}
			t.AddRow(report.Int(p.N), report.Int(p.Loops),
				report.Num(p.Measured), report.Num(p.BestCase), report.Num(p.WorstCase))
		}
		out = append(out, t)
	}
	return out
}

// All regenerates every table and figure in paper order and returns the
// rendered tables.
func (s *Suite) All() ([]*report.Table, error) {
	var out []*report.Table
	out = append(out, Table1())

	t2, err := s.Table2()
	if err != nil {
		return nil, err
	}
	out = append(out, RenderTable2(t2))

	out = append(out, RenderTable3("Table 3 (paper layout constants): estimated page I/Os", s.Table3Paper()))
	t3d, err := s.Table3Derived()
	if err != nil {
		return nil, err
	}
	out = append(out, RenderTable3("Table 3 (derived layout constants): estimated page I/Os", t3d))
	out = append(out, RenderTable3("Analytical I/O calls (Table 5 counterpart, paper layout constants)",
		costmodel.EstimateAllCalls(costmodel.PaperParams(), costmodel.PaperWorkload())))

	m, err := s.Matrix()
	if err != nil {
		return nil, err
	}
	out = append(out, m.Table4(), m.Table5(), m.Table6())

	t7, err := s.Table7()
	if err != nil {
		return nil, err
	}
	out = append(out, RenderTable7(t7))

	t8, err := m.Table8()
	if err != nil {
		return nil, err
	}
	out = append(out, RenderTable8(t8))

	f5, err := s.Figure5()
	if err != nil {
		return nil, err
	}
	out = append(out, RenderFigure5(f5)...)

	f6, err := s.Figure6()
	if err != nil {
		return nil, err
	}
	out = append(out, RenderFigure6(f6)...)

	ia, err := s.IndexAblation()
	if err != nil {
		return nil, err
	}
	out = append(out, RenderIndexAblation(ia))

	pa, err := s.PolicyAblation()
	if err != nil {
		return nil, err
	}
	out = append(out, RenderPolicyAblation(pa))

	for _, dev := range []struct {
		name string
		w    DeviceWeights
	}{
		{"Estimated device time, 1990 disk", Disk1990()},
		{"Estimated device time, modern flash", DiskModern()},
	} {
		rows, err := s.TableCosts(dev.w)
		if err != nil {
			return nil, err
		}
		out = append(out, RenderTableCosts(dev.name, dev.w, rows))
	}

	dist, err := s.DistributionAblation(8)
	if err != nil {
		return nil, err
	}
	out = append(out, RenderDistribution(dist))

	bs, err := s.BufferSweep()
	if err != nil {
		return nil, err
	}
	out = append(out, RenderBufferSweep(bs)...)
	return out, nil
}
