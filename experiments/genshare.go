package experiments

import (
	"sync"

	"complexobj/cobench"
)

// genShare is a transient, in-flight-scoped cache of generated benchmark
// extensions for the sweep cells that measure non-default configurations
// (the Figure 6 database sizes, the Table 7 skew extension): the up to
// three per-kind cells of one configuration running concurrently share a
// single generation instead of each regenerating it, and the extension is
// dropped as soon as the last in-flight user releases — unlike the
// suite-lifetime extension cache, nothing is retained beyond the cells
// that are actually running. A configuration acquired again after its
// entry was dropped simply regenerates, deterministically.
type genShare struct {
	mu      sync.Mutex
	entries map[cobench.Config]*genEntry
	built   int64
}

type genEntry struct {
	once     sync.Once
	stations []*cobench.Station
	err      error
	users    int
}

func newGenShare() *genShare {
	return &genShare{entries: make(map[cobench.Config]*genEntry)}
}

// acquire returns the generated extension of gen, generating it at most
// once per set of overlapping acquisitions, plus a release function the
// caller must invoke (exactly once) when its cell no longer needs the
// stations. The returned slice is shared read-only.
func (g *genShare) acquire(gen cobench.Config) ([]*cobench.Station, func(), error) {
	g.mu.Lock()
	e, ok := g.entries[gen]
	if !ok {
		e = &genEntry{}
		g.entries[gen] = e
	}
	e.users++
	g.mu.Unlock()
	e.once.Do(func() {
		e.stations, e.err = cobench.Generate(gen)
		if e.err == nil {
			g.mu.Lock()
			g.built++
			g.mu.Unlock()
		}
	})
	var once sync.Once
	release := func() {
		once.Do(func() {
			g.mu.Lock()
			e.users--
			if e.users == 0 && g.entries[gen] == e {
				delete(g.entries, gen)
			}
			g.mu.Unlock()
		})
	}
	if e.err != nil {
		release()
		return nil, nil, e.err
	}
	return e.stations, release, nil
}

// generations returns how many extensions were generated through the
// share (diagnostics; in-flight overlap makes it ≤ the acquire count).
func (g *genShare) generations() int64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.built
}

// inFlight returns the number of live entries (must be 0 between
// experiments — the share retains nothing).
func (g *genShare) inFlight() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return len(g.entries)
}
