package experiments

import (
	"os"
	"reflect"
	"testing"

	"complexobj/cobench"
)

// smallConfig is a reduced-scale configuration that keeps the determinism
// tests fast while still exercising every model × query cell, including the
// update queries whose write-back paths are the most scheduling-sensitive.
// The backend follows the CI matrix axis (COMPLEXOBJ_BACKEND), so all
// determinism guarantees are pinned on the file backend too.
func smallConfig() Config {
	cfg := DefaultConfig()
	cfg.Gen = cobench.DefaultConfig().WithN(150)
	cfg.Workload = cobench.Workload{Loops: 40, Samples: 8, Seed: 1993}
	cfg.BufferPages = 300
	cfg.Backend = os.Getenv("COMPLEXOBJ_BACKEND")
	return cfg
}

// TestMatrixParallelDeterminism asserts the tentpole invariant of the
// parallel harness: the (model, query) worker pool produces measurements
// byte-identical to the serial path, for any worker count, because every
// worker owns its engines and every query starts from a cold cache with
// reset counters.
func TestMatrixParallelDeterminism(t *testing.T) {
	serialCfg := smallConfig()
	serialCfg.Workers = 1
	serialSuite := New(serialCfg)
	defer serialSuite.Close()
	serial, err := serialSuite.Matrix()
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 16} {
		cfg := smallConfig()
		cfg.Workers = workers
		parSuite := New(cfg)
		parallel, err := parSuite.Matrix()
		parSuite.Close()
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(parallel.Rows) != len(serial.Rows) {
			t.Fatalf("workers=%d: %d rows, serial has %d", workers, len(parallel.Rows), len(serial.Rows))
		}
		for i := range serial.Rows {
			if !reflect.DeepEqual(parallel.Rows[i], serial.Rows[i]) {
				t.Errorf("workers=%d row %d differs:\nparallel: %+v\nserial:   %+v",
					workers, i, parallel.Rows[i], serial.Rows[i])
			}
		}
	}
}

// TestMatrixParallelTableBytes renders Tables 4-6 from a serial and a
// parallel suite and compares the emitted text byte for byte — the form in
// which cotables publishes the reproduction.
func TestMatrixParallelTableBytes(t *testing.T) {
	serialCfg := smallConfig()
	serialCfg.Workers = 1
	serialSuite := New(serialCfg)
	defer serialSuite.Close()
	ms, err := serialSuite.Matrix()
	if err != nil {
		t.Fatal(err)
	}
	parCfg := smallConfig()
	parCfg.Workers = 8
	parSuite := New(parCfg)
	defer parSuite.Close()
	mp, err := parSuite.Matrix()
	if err != nil {
		t.Fatal(err)
	}
	pairs := []struct {
		name             string
		serial, parallel string
	}{
		{"table4", ms.Table4().Text(), mp.Table4().Text()},
		{"table5", ms.Table5().Text(), mp.Table5().Text()},
		{"table6", ms.Table6().Text(), mp.Table6().Text()},
	}
	for _, p := range pairs {
		if p.serial != p.parallel {
			t.Errorf("%s differs between serial and parallel run:\n--- serial ---\n%s\n--- parallel ---\n%s",
				p.name, p.serial, p.parallel)
		}
	}
}

// TestMatrixRowOrder asserts the paper's row ordering survives the
// parallel scheduling: models in AllKinds order, each with its seven
// queries in benchmark order.
func TestMatrixRowOrder(t *testing.T) {
	cfg := smallConfig()
	cfg.Workers = 8
	s := New(cfg)
	defer s.Close()
	m, err := s.Matrix()
	if err != nil {
		t.Fatal(err)
	}
	wantModels := []string{"DSM", "DASDBS-DSM", "NSM", "NSM+index", "DASDBS-NSM"}
	wantQueries := []string{"1a", "1b", "1c", "2a", "2b", "3a", "3b"}
	if len(m.Rows) != len(wantModels)*len(wantQueries) {
		t.Fatalf("got %d rows", len(m.Rows))
	}
	for i, r := range m.Rows {
		if r.Model != wantModels[i/len(wantQueries)] || r.Query != wantQueries[i%len(wantQueries)] {
			t.Errorf("row %d = (%s, %s), want (%s, %s)", i, r.Model, r.Query,
				wantModels[i/len(wantQueries)], wantQueries[i%len(wantQueries)])
		}
	}
}
