package experiments

import "complexobj/report"

// Section is one independently computable group of output tables. The
// static Titles mirror the titles the Build function emits, so a consumer
// (cotables -only) can decide whether a section is worth computing at all
// before doing any work — the lever that lets a snapshot replay of
// Tables 4-6 skip every other experiment. TestSectionTitlesMatch pins the
// static titles against the actually emitted ones.
type Section struct {
	// Titles are the titles (or static title prefixes, where a title
	// embeds computed values) of the tables Build produces.
	Titles []string
	// Build computes and renders the section's tables.
	Build func(*Suite) ([]*report.Table, error)
}

// Sections lists every table and figure of the reproduction in paper
// order. All() is the concatenation of all sections.
func Sections() []Section {
	one := func(f func(*Suite) (*report.Table, error)) func(*Suite) ([]*report.Table, error) {
		return func(s *Suite) ([]*report.Table, error) {
			t, err := f(s)
			if err != nil {
				return nil, err
			}
			return []*report.Table{t}, nil
		}
	}
	return []Section{
		{Titles: []string{"Table 1: explanation of the (nested tuple) parameters"},
			Build: one(func(*Suite) (*report.Table, error) { return Table1(), nil })},
		{Titles: []string{"Table 2: average sizes of benchmark tuples (measured vs paper)"},
			Build: one(func(s *Suite) (*report.Table, error) {
				rows, err := s.Table2()
				if err != nil {
					return nil, err
				}
				return RenderTable2(rows), nil
			})},
		{Titles: []string{
			"Table 3 (paper layout constants): estimated page I/Os",
			"Table 3 (derived layout constants): estimated page I/Os",
			"Analytical I/O calls (Table 5 counterpart, paper layout constants)",
		}, Build: (*Suite).Table3Sections},
		{Titles: []string{
			"Table 4: measured physical page I/Os (pages per object/loop)",
			"Table 5: measured I/O calls (calls per object/loop)",
			"Table 6: measured buffer fixes (fixes per object/loop)",
		}, Build: func(s *Suite) ([]*report.Table, error) {
			m, err := s.Matrix()
			if err != nil {
				return nil, err
			}
			return []*report.Table{m.Table4(), m.Table5(), m.Table6()}, nil
		}},
		{Titles: []string{"Table 7: query 2 under data skew (prob 0.2, fanout 8) vs default extension"},
			Build: one(func(s *Suite) (*report.Table, error) {
				rows, err := s.Table7()
				if err != nil {
					return nil, err
				}
				return RenderTable7(rows), nil
			})},
		{Titles: []string{"Table 8: overall evaluation of all storage models (derived from measurements)"},
			Build: one(func(s *Suite) (*report.Table, error) {
				m, err := s.Matrix()
				if err != nil {
					return nil, err
				}
				rows, err := m.Table8()
				if err != nil {
					return nil, err
				}
				return RenderTable8(rows), nil
			})},
		{Titles: []string{
			"Figure 5 (query 1c): measured page I/Os while max sightseeings is 0, 15, 30",
			"Figure 5 (query 2b): measured page I/Os while max sightseeings is 0, 15, 30",
			"Figure 5 (query 3b): measured page I/Os while max sightseeings is 0, 15, 30",
		}, Build: func(s *Suite) ([]*report.Table, error) {
			cells, err := s.Figure5()
			if err != nil {
				return nil, err
			}
			return RenderFigure5(cells), nil
		}},
		{Titles: []string{
			"Figure 6 (DSM): query 2b pages/loop vs database size (loops = N/5)",
			"Figure 6 (DASDBS-DSM): query 2b pages/loop vs database size (loops = N/5)",
			"Figure 6 (DASDBS-NSM): query 2b pages/loop vs database size (loops = N/5)",
		}, Build: func(s *Suite) ([]*report.Table, error) {
			points, err := s.Figure6()
			if err != nil {
				return nil, err
			}
			return RenderFigure6(points), nil
		}},
		// Title prefix only: the full title embeds the measured index size.
		{Titles: []string{"Ablation: NSM+index with counted B+-tree index I/O"},
			Build: one(func(s *Suite) (*report.Table, error) {
				a, err := s.IndexAblation()
				if err != nil {
					return nil, err
				}
				return RenderIndexAblation(a), nil
			})},
		{Titles: []string{"Ablation: query 2b pages/loop under LRU vs Clock replacement"},
			Build: one(func(s *Suite) (*report.Table, error) {
				rows, err := s.PolicyAblation()
				if err != nil {
					return nil, err
				}
				return RenderPolicyAblation(rows), nil
			})},
		{Titles: []string{"Estimated device time, 1990 disk", "Estimated device time, modern flash"},
			Build: (*Suite).CostSections},
		{Titles: []string{"Extension (§5.5 remark): query 2b I/O balance over a shared-nothing cluster"},
			Build: one(func(s *Suite) (*report.Table, error) {
				dist, err := s.DistributionAblation(8)
				if err != nil {
					return nil, err
				}
				return RenderDistribution(dist), nil
			})},
		{Titles: []string{
			"Extension: query 2b pages/loop vs buffer size, N=1500 (DSM)",
			"Extension: query 2b pages/loop vs buffer size, N=1500 (DASDBS-DSM)",
			"Extension: query 2b pages/loop vs buffer size, N=1500 (DASDBS-NSM)",
		},
			Build: func(s *Suite) ([]*report.Table, error) {
				bs, err := s.BufferSweep()
				if err != nil {
					return nil, err
				}
				return RenderBufferSweep(bs), nil
			}},
	}
}
