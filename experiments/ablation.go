package experiments

import (
	"fmt"

	"complexobj/cobench"
	"complexobj/internal/buffer"
	"complexobj/internal/store"
	"complexobj/internal/workload"
	"complexobj/report"
)

// IndexAblationRow compares one query under the paper's free in-memory
// index against a disk-resident B+-tree whose page accesses are counted.
type IndexAblationRow struct {
	Query        string
	FreePages    float64
	CountedPages float64
	FreeFixes    float64
	CountedFixes float64
}

// IndexAblation holds the index-accounting ablation results.
type IndexAblation struct {
	Rows []IndexAblationRow
	// IndexPages is the total footprint of the four B+-trees; TreeHeight
	// the height of the station key tree.
	IndexPages int
	TreeHeight int
}

// ablationQueries are the queries where index accounting can matter.
var ablationQueries = []cobench.Query{cobench.Q1a, cobench.Q1b, cobench.Q2a, cobench.Q2b, cobench.Q3b}

// IndexAblation quantifies the paper's accounting convention that index
// accesses are free (§5.1: "we did not account for additional I/Os needed
// ... to retrieve the tables with addresses"): it re-runs NSM+index with
// real disk-resident B+-trees (station key plus one positional tree per
// sub-relation) whose node fetches go through the buffer pool like any
// other page.
//
// Two effects compose: navigation pays a little more (tree descents are
// extra page fetches until the hot index pages are cached), while the
// value query 1b collapses from a root-relation scan to a logarithmic
// descent — a real key index is strictly more capable than the paper's
// address table.
func (s *Suite) IndexAblation() (*IndexAblation, error) {
	stations, err := s.extension()
	if err != nil {
		return nil, err
	}
	run := func(counted bool) (map[cobench.Query]Measured, int, int, error) {
		opts, err := s.storeOptions()
		if err != nil {
			return nil, 0, 0, err
		}
		opts.CountIndexIO = counted
		m, err := store.New(store.NSMIndex, opts)
		if err != nil {
			return nil, 0, 0, err
		}
		defer m.Engine().Close()
		if err := m.Load(stations); err != nil {
			return nil, 0, 0, err
		}
		runner := workload.NewRunner(m, s.cfg.Workload)
		out := make(map[cobench.Query]Measured, len(ablationQueries))
		for _, q := range ablationQueries {
			res, err := runner.Run(q)
			if err != nil {
				return nil, 0, 0, err
			}
			out[q] = toMeasured(res)
		}
		pages, height := 0, 0
		if ix, ok := m.(interface{ IndexStats() (int, int) }); ok {
			pages, height = ix.IndexStats()
		}
		return out, pages, height, nil
	}
	free, _, _, err := run(false)
	if err != nil {
		return nil, fmt.Errorf("experiments: index ablation (free): %w", err)
	}
	counted, pages, height, err := run(true)
	if err != nil {
		return nil, fmt.Errorf("experiments: index ablation (counted): %w", err)
	}
	out := &IndexAblation{IndexPages: pages, TreeHeight: height}
	for _, q := range ablationQueries {
		out.Rows = append(out.Rows, IndexAblationRow{
			Query:        q.String(),
			FreePages:    free[q].Pages,
			CountedPages: counted[q].Pages,
			FreeFixes:    free[q].Fixes,
			CountedFixes: counted[q].Fixes,
		})
	}
	return out, nil
}

// RenderIndexAblation renders the index-accounting ablation.
func RenderIndexAblation(a *IndexAblation) *report.Table {
	t := &report.Table{
		Title: fmt.Sprintf("Ablation: NSM+index with counted B+-tree index I/O (index: %d pages, height %d)",
			a.IndexPages, a.TreeHeight),
		Header: []string{"QUERY", "pages (free index)", "pages (counted)", "fixes (free)", "fixes (counted)"},
		Notes: []string{
			"the paper counts no index I/O (§5.1); 'counted' charges every B+-tree node fetch;",
			"query 1b flips: a real key index replaces the root-relation scan by a tree descent",
		},
	}
	for _, r := range a.Rows {
		t.AddRow(r.Query, report.Num(r.FreePages), report.Num(r.CountedPages),
			report.Num(r.FreeFixes), report.Num(r.CountedFixes))
	}
	return t
}

// PolicyRow compares one model's warm navigation under LRU and Clock
// replacement.
type PolicyRow struct {
	Model string
	LRU   float64
	Clock float64
}

// PolicyAblation re-runs the cache-sensitive query 2b under the Clock
// replacement policy. The paper never names DASDBS's policy; this
// ablation shows the Figure 6 conclusions do not depend on the choice.
func (s *Suite) PolicyAblation() ([]PolicyRow, error) {
	stations, err := s.extension()
	if err != nil {
		return nil, err
	}
	var rows []PolicyRow
	for _, k := range fig5Models {
		row := PolicyRow{Model: k.String()}
		for _, clock := range []bool{false, true} {
			opts, err := s.storeOptions()
			if err != nil {
				return nil, err
			}
			opts.Policy = buffer.LRU
			if clock {
				opts.Policy = buffer.Clock
			}
			res, err := func() (workload.Result, error) {
				// The replacement policy is a runtime knob of the view, so
				// both halves of the ablation share one frozen base on the
				// shared-base path.
				m, err := s.openLoaded(k, opts, s.cfg.Gen, stations)
				if err != nil {
					return workload.Result{}, err
				}
				defer m.Engine().Close()
				return workload.NewRunner(m, s.cfg.Workload).Run(cobench.Q2b)
			}()
			if err != nil {
				return nil, err
			}
			if clock {
				row.Clock = toMeasured(res).Pages
			} else {
				row.LRU = toMeasured(res).Pages
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// RenderPolicyAblation renders the replacement-policy ablation.
func RenderPolicyAblation(rows []PolicyRow) *report.Table {
	t := &report.Table{
		Title:  "Ablation: query 2b pages/loop under LRU vs Clock replacement",
		Header: []string{"MODEL", "LRU", "Clock"},
		Notes: []string{
			"the paper does not name DASDBS's replacement policy; the cache-overflow story is policy-robust",
		},
	}
	for _, r := range rows {
		t.AddRow(r.Model, report.Num(r.LRU), report.Num(r.Clock))
	}
	return t
}
