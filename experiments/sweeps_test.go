package experiments

import (
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"complexobj/internal/snapshot"
	"complexobj/internal/store"
)

// shrinkSweeps temporarily reduces the sweep axes so the determinism tests
// stay fast, restoring the paper axes afterwards.
func shrinkSweeps(t *testing.T) {
	t.Helper()
	savedFig6, savedBuf := Fig6Sizes, BufferSizes
	Fig6Sizes = []int{60, 120}
	BufferSizes = []int{100, 300}
	t.Cleanup(func() { Fig6Sizes, BufferSizes = savedFig6, savedBuf })
}

// TestSweepParallelDeterminism pins the satellite guarantee for the
// parallelized sweeps: Figure 5, Figure 6, the buffer sweep and Table 7
// produce byte-identical results for any worker count, because every cell
// owns a private engine over a deterministic generation.
func TestSweepParallelDeterminism(t *testing.T) {
	shrinkSweeps(t)
	type sweeps struct {
		fig5 []Fig5Cell
		fig6 []Fig6Point
		buf  []BufferPoint
		t7   []SkewRow
	}
	run := func(workers int) sweeps {
		cfg := smallConfig()
		cfg.Workers = workers
		s := New(cfg)
		defer s.Close()
		var out sweeps
		var err error
		if out.fig5, err = s.Figure5(); err != nil {
			t.Fatalf("workers=%d figure5: %v", workers, err)
		}
		if out.fig6, err = s.Figure6(); err != nil {
			t.Fatalf("workers=%d figure6: %v", workers, err)
		}
		if out.buf, err = s.BufferSweep(); err != nil {
			t.Fatalf("workers=%d buffersweep: %v", workers, err)
		}
		if out.t7, err = s.Table7(); err != nil {
			t.Fatalf("workers=%d table7: %v", workers, err)
		}
		return out
	}
	serial := run(1)
	for _, workers := range []int{3, 8} {
		parallel := run(workers)
		if !reflect.DeepEqual(serial.fig5, parallel.fig5) {
			t.Errorf("workers=%d: Figure 5 differs from serial", workers)
		}
		if !reflect.DeepEqual(serial.fig6, parallel.fig6) {
			t.Errorf("workers=%d: Figure 6 differs from serial", workers)
		}
		if !reflect.DeepEqual(serial.buf, parallel.buf) {
			t.Errorf("workers=%d: buffer sweep differs from serial", workers)
		}
		if !reflect.DeepEqual(serial.t7, parallel.t7) {
			t.Errorf("workers=%d: Table 7 differs from serial", workers)
		}
	}
}

// TestSweepSharedBaseDeterminism is the tentpole acceptance test of the
// config-keyed base cache: every sweep section (Figure 5, Figure 6, the
// buffer sweep and Table 7) is byte-identical between private engines
// (mem backend, serial — the cache never engages) and copy-on-write views
// over cached frozen bases (cow backend, 8 workers), both when the bases
// are frozen from freshly loaded models and when they are opened from a
// .codb snapshot (mmap'ed in place on platforms that support it).
func TestSweepSharedBaseDeterminism(t *testing.T) {
	shrinkSweeps(t)
	type sweeps struct {
		fig5 []Fig5Cell
		fig6 []Fig6Point
		buf  []BufferPoint
		t7   []SkewRow
	}
	run := func(label string, cfg Config) (sweeps, *Suite) {
		s := New(cfg)
		var out sweeps
		var err error
		if out.fig5, err = s.Figure5(); err != nil {
			t.Fatalf("%s figure5: %v", label, err)
		}
		if out.fig6, err = s.Figure6(); err != nil {
			t.Fatalf("%s figure6: %v", label, err)
		}
		if out.buf, err = s.BufferSweep(); err != nil {
			t.Fatalf("%s buffersweep: %v", label, err)
		}
		if out.t7, err = s.Table7(); err != nil {
			t.Fatalf("%s table7: %v", label, err)
		}
		return out, s
	}
	check := func(label string, want, got sweeps) {
		t.Helper()
		if !reflect.DeepEqual(want.fig5, got.fig5) {
			t.Errorf("%s: Figure 5 differs from private-engine run", label)
		}
		if !reflect.DeepEqual(want.fig6, got.fig6) {
			t.Errorf("%s: Figure 6 differs from private-engine run", label)
		}
		if !reflect.DeepEqual(want.buf, got.buf) {
			t.Errorf("%s: buffer sweep differs from private-engine run", label)
		}
		if !reflect.DeepEqual(want.t7, got.t7) {
			t.Errorf("%s: Table 7 differs from private-engine run", label)
		}
	}

	memCfg := smallConfig()
	memCfg.Backend = "mem"
	memCfg.Workers = 1
	private, memSuite := run("mem/serial", memCfg)
	defer memSuite.Close()

	cowCfg := smallConfig()
	cowCfg.Backend = "cow"
	cowCfg.Workers = 8
	shared, cowSuite := run("cow/8", cowCfg)
	check("cow/8", private, shared)
	// The cache must actually have been shared: one base built per
	// distinct (kind, generator config), far fewer than the number of
	// sweep cells. With the shrunk axes: 5 default-gen kinds (matrix via
	// Table 7; the Figure 5 maxSee=15 column and the whole buffer sweep
	// reuse them), 2x3 non-default Figure 5 columns, 2x3 Figure 6 sizes,
	// 4 skew kinds.
	cells := len(shared.fig5)*3 + len(shared.fig6) + len(shared.buf) + len(shared.t7) + 5*7
	if want := int64(5 + 6 + 6 + 4); cowSuite.bases.Built() != want {
		t.Errorf("base cache built %d bases, want %d (of %d measured cells)",
			cowSuite.bases.Built(), want, cells)
	}
	// ... but only the pinned default-configuration bases are retained:
	// every one-off sweep configuration was acquired scoped and dropped
	// when the last cell of its configuration finished.
	if want := 5; cowSuite.bases.Len() != want {
		t.Errorf("base cache retains %d entries, want %d (scoped sweep bases must be released)",
			cowSuite.bases.Len(), want)
	}
	// The transient generation share retained nothing either; every
	// non-default extension was generated at most once per overlapping
	// set of cells (2 Figure 6 sizes x 3 kinds, 1 skew config x 4 kinds —
	// between 3 generations under full overlap and 10 under none).
	if n := cowSuite.gens.inFlight(); n != 0 {
		t.Errorf("generation share retains %d entries, want 0", n)
	}
	if got := cowSuite.gens.generations(); got < 3 || got > 10 {
		t.Errorf("generation share built %d extensions, want between 3 (full overlap) and 10 (none)", got)
	}
	cowSuite.Close()

	// Snapshot-backed bases: the default-gen bases now come straight from
	// the .codb file (one mmap per kind on Linux) instead of load+freeze.
	stations, err := memSuite.extension()
	if err != nil {
		t.Fatal(err)
	}
	var models []store.Model
	for _, k := range store.AllKinds() {
		m, err := store.New(k, store.Options{BufferPages: memCfg.BufferPages})
		if err != nil {
			t.Fatal(err)
		}
		defer m.Engine().Close()
		if err := m.Load(stations); err != nil {
			t.Fatal(err)
		}
		models = append(models, m)
	}
	path := filepath.Join(t.TempDir(), "sweeps.codb")
	if err := snapshot.Write(path, memCfg.Gen, models...); err != nil {
		t.Fatal(err)
	}
	snapCfg := smallConfig()
	snapCfg.Backend = "cow"
	snapCfg.Workers = 8
	snapCfg.Snapshot = path
	fromSnap, snapSuite := run("cow/snapshot", snapCfg)
	defer snapSuite.Close()
	check("cow/snapshot", private, fromSnap)
}

// TestMatrixBackendEquivalence asserts the acceptance property at the
// harness level, three ways: the full paper query matrix is bit-identical
// between the memory, file and copy-on-write backends. (The cow run here
// exercises the serial path over bare overlays; the shared-base parallel
// path is pinned by TestMatrixSharedBaseDeterminism.)
func TestMatrixBackendEquivalence(t *testing.T) {
	memCfg := smallConfig()
	memCfg.Backend = "mem"
	memSuite := New(memCfg)
	defer memSuite.Close()
	mem, err := memSuite.Matrix()
	if err != nil {
		t.Fatal(err)
	}
	for _, backend := range []string{"file:" + t.TempDir(), "cow"} {
		cfg := smallConfig()
		cfg.Backend = backend
		s := New(cfg)
		m, err := s.Matrix()
		if err != nil {
			s.Close()
			t.Fatalf("%s: %v", backend, err)
		}
		if !reflect.DeepEqual(mem.Rows, m.Rows) {
			t.Errorf("matrix differs between memory and %s backend", backend)
		}
		s.Close()
	}
}

// TestMatrixFromSnapshot asserts the cotables -db path: a matrix computed
// from snapshot-restored models equals the matrix from freshly generated
// and loaded ones, and mismatched snapshots are rejected.
func TestMatrixFromSnapshot(t *testing.T) {
	cfg := smallConfig()
	freshSuite := New(cfg)
	defer freshSuite.Close()
	fresh, err := freshSuite.Matrix()
	if err != nil {
		t.Fatal(err)
	}

	// Build the snapshot the way cogen does: load every model with the
	// suite's options, then serialize.
	opts := store.Options{BufferPages: cfg.BufferPages}
	stations, err := freshSuite.extension()
	if err != nil {
		t.Fatal(err)
	}
	var models []store.Model
	for _, k := range store.AllKinds() {
		m, err := store.New(k, opts)
		if err != nil {
			t.Fatal(err)
		}
		defer m.Engine().Close()
		if err := m.Load(stations); err != nil {
			t.Fatal(err)
		}
		models = append(models, m)
	}
	path := filepath.Join(t.TempDir(), "matrix.codb")
	if err := snapshot.Write(path, cfg.Gen, models...); err != nil {
		t.Fatal(err)
	}

	snapCfg := smallConfig()
	snapCfg.Snapshot = path
	snapSuite := New(snapCfg)
	defer snapSuite.Close()
	snap, err := snapSuite.Matrix()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fresh.Rows, snap.Rows) {
		t.Error("matrix from snapshot differs from freshly loaded matrix")
	}

	// A snapshot of a different extension must be refused, not measured.
	wrongCfg := smallConfig()
	wrongCfg.Gen = wrongCfg.Gen.WithN(wrongCfg.Gen.N + 1)
	wrongCfg.Snapshot = path
	wrongSuite := New(wrongCfg)
	defer wrongSuite.Close()
	if _, err := wrongSuite.Matrix(); err == nil {
		t.Error("mismatched snapshot accepted")
	}
}

// TestSectionTitlesMatch pins the static Section.Titles (which drive
// cotables' compute-only-what--only-matches behaviour) against the titles
// the Build functions actually emit: every emitted title must begin with
// its declared static title, one declaration per table, in order.
func TestSectionTitlesMatch(t *testing.T) {
	s := paperSuite(t)
	for si, sec := range Sections() {
		tables, err := sec.Build(s)
		if err != nil {
			t.Fatalf("section %d: %v", si, err)
		}
		if len(tables) != len(sec.Titles) {
			t.Errorf("section %d emits %d tables but declares %d titles", si, len(tables), len(sec.Titles))
			continue
		}
		for i, tbl := range tables {
			if !strings.HasPrefix(tbl.Title, sec.Titles[i]) {
				t.Errorf("section %d table %d: emitted title %q does not start with declared %q",
					si, i, tbl.Title, sec.Titles[i])
			}
		}
	}
}
