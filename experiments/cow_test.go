package experiments

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"strconv"
	"strings"
	"testing"

	"complexobj/internal/disk"
	"complexobj/internal/snapshot"
	"complexobj/internal/store"
)

// diskCOWStats reports the COW memory split of a model's engine.
func diskCOWStats(m store.Model) (disk.COWStats, bool) {
	return disk.COWStatsOf(m.Engine().Dev.Backend())
}

// TestMatrixSharedBaseDeterminism is the tentpole acceptance test: the
// 8-worker matrix over shared copy-on-write bases produces rows
// bit-identical to the serial run on the memory backend — the three-way
// (mem vs file vs cow) closure of the backend-equivalence guarantee at
// matrix level, with the sharing actually engaged (workers > 1).
func TestMatrixSharedBaseDeterminism(t *testing.T) {
	serialCfg := smallConfig()
	serialCfg.Backend = "mem"
	serialCfg.Workers = 1
	serialSuite := New(serialCfg)
	defer serialSuite.Close()
	serial, err := serialSuite.Matrix()
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 8} {
		cfg := smallConfig()
		cfg.Backend = "cow"
		cfg.Workers = workers
		cowSuite := New(cfg)
		cow, err := cowSuite.Matrix()
		if err != nil {
			cowSuite.Close()
			t.Fatalf("cow workers=%d: %v", workers, err)
		}
		if !reflect.DeepEqual(serial.Rows, cow.Rows) {
			t.Errorf("cow workers=%d: matrix differs from serial/mem", workers)
		}
		cowSuite.Close()
	}
}

// TestMatrixSharedBaseFromSnapshot pins the snapshot variant: workers
// opening COW views of a base read once from a .codb file measure
// identically to freshly loaded private engines.
func TestMatrixSharedBaseFromSnapshot(t *testing.T) {
	cfg := smallConfig()
	freshSuite := New(cfg)
	defer freshSuite.Close()
	fresh, err := freshSuite.Matrix()
	if err != nil {
		t.Fatal(err)
	}
	stations, err := freshSuite.extension()
	if err != nil {
		t.Fatal(err)
	}
	var models []store.Model
	for _, k := range store.AllKinds() {
		m, err := store.New(k, store.Options{BufferPages: cfg.BufferPages})
		if err != nil {
			t.Fatal(err)
		}
		defer m.Engine().Close()
		if err := m.Load(stations); err != nil {
			t.Fatal(err)
		}
		models = append(models, m)
	}
	path := filepath.Join(t.TempDir(), "cow.codb")
	if err := snapshot.Write(path, cfg.Gen, models...); err != nil {
		t.Fatal(err)
	}

	snapCfg := smallConfig()
	snapCfg.Backend = "cow"
	snapCfg.Workers = 8
	snapCfg.Snapshot = path
	snapSuite := New(snapCfg)
	defer snapSuite.Close()
	snap, err := snapSuite.Matrix()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fresh.Rows, snap.Rows) {
		t.Error("cow-from-snapshot matrix differs from freshly loaded matrix")
	}
}

// TestMatrixSharedBaseMemory is the deterministic memory smoke: after an
// 8-worker cow matrix, the suite's adopted models must be COW views whose
// private overlays are small next to the shared arenas — i.e. the sharing
// actually happened and peak page memory is ~one loaded extension per
// kind, not per worker.
func TestMatrixSharedBaseMemory(t *testing.T) {
	cfg := smallConfig()
	cfg.Backend = "cow"
	cfg.Workers = 8
	s := New(cfg)
	defer s.Close()
	if _, err := s.Matrix(); err != nil {
		t.Fatal(err)
	}
	baseBytes, overlayBytes, views := 0, 0, 0
	for k, m := range s.models {
		st, ok := diskCOWStats(m)
		if !ok {
			t.Fatalf("%s: adopted matrix model is not a COW view", k)
		}
		views++
		baseBytes += st.BaseBytes
		overlayBytes += st.OverlayBytes
	}
	if views != 5 {
		t.Fatalf("adopted %d models, want 5", views)
	}
	if baseBytes == 0 {
		t.Fatal("no shared base bytes accounted")
	}
	// The update queries dirty only root/update pages; the overlays must
	// stay far below one extra database copy.
	if overlayBytes*4 > baseBytes {
		t.Errorf("overlays (%d bytes) not small next to shared bases (%d bytes)", overlayBytes, baseBytes)
	}
}

// TestMatrixPeakRSS logs the process peak RSS after an 8-worker matrix at
// paper scale on the backend named by COMPLEXOBJ_BACKEND. It asserts
// nothing by itself — CI runs it once per backend in separate processes
// and compares the two figures (cow must not exceed mem); BENCH_3.json
// records the numbers. Gated behind COMPLEXOBJ_RSS so the regular test
// runs do not pay a paper-scale matrix twice.
func TestMatrixPeakRSS(t *testing.T) {
	if os.Getenv("COMPLEXOBJ_RSS") == "" {
		t.Skip("set COMPLEXOBJ_RSS=1 to measure peak RSS")
	}
	if runtime.GOOS != "linux" {
		t.Skip("peak RSS via /proc is Linux-only")
	}
	cfg := DefaultConfig()
	cfg.Backend = os.Getenv("COMPLEXOBJ_BACKEND")
	cfg.Workers = 8
	s := New(cfg)
	defer s.Close()
	if _, err := s.Matrix(); err != nil {
		t.Fatal(err)
	}
	hwm, err := peakRSSKB()
	if err != nil {
		t.Fatal(err)
	}
	backend := cfg.Backend
	if backend == "" {
		backend = "mem"
	}
	fmt.Printf("peak-rss-kb backend=%s workers=8 kb=%d\n", backend, hwm)
}

// peakRSSKB reads VmHWM (the process peak resident set) in KiB.
func peakRSSKB() (int, error) {
	f, err := os.Open("/proc/self/status")
	if err != nil {
		return 0, err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		if rest, ok := strings.CutPrefix(sc.Text(), "VmHWM:"); ok {
			return strconv.Atoi(strings.TrimSuffix(strings.TrimSpace(rest), " kB"))
		}
	}
	return 0, fmt.Errorf("VmHWM not found in /proc/self/status")
}
