package experiments

import (
	"bufio"
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"runtime/debug"
	"strconv"
	"strings"
	"testing"

	"complexobj/cobench"
	"complexobj/internal/disk"
	"complexobj/internal/snapshot"
	"complexobj/internal/store"
	"complexobj/internal/workload"
)

// diskCOWStats reports the COW memory split of a model's engine.
func diskCOWStats(m store.Model) (disk.COWStats, bool) {
	return disk.COWStatsOf(m.Engine().Dev.Backend())
}

// TestMatrixSharedBaseDeterminism is the tentpole acceptance test: the
// 8-worker matrix over shared copy-on-write bases produces rows
// bit-identical to the serial run on the memory backend — the three-way
// (mem vs file vs cow) closure of the backend-equivalence guarantee at
// matrix level, with the sharing actually engaged (workers > 1).
func TestMatrixSharedBaseDeterminism(t *testing.T) {
	serialCfg := smallConfig()
	serialCfg.Backend = "mem"
	serialCfg.Workers = 1
	serialSuite := New(serialCfg)
	defer serialSuite.Close()
	serial, err := serialSuite.Matrix()
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 8} {
		cfg := smallConfig()
		cfg.Backend = "cow"
		cfg.Workers = workers
		cowSuite := New(cfg)
		cow, err := cowSuite.Matrix()
		if err != nil {
			cowSuite.Close()
			t.Fatalf("cow workers=%d: %v", workers, err)
		}
		if !reflect.DeepEqual(serial.Rows, cow.Rows) {
			t.Errorf("cow workers=%d: matrix differs from serial/mem", workers)
		}
		cowSuite.Close()
	}
}

// TestMatrixSharedBaseFromSnapshot pins the snapshot variant: workers
// opening COW views of a base read once from a .codb file measure
// identically to freshly loaded private engines.
func TestMatrixSharedBaseFromSnapshot(t *testing.T) {
	cfg := smallConfig()
	freshSuite := New(cfg)
	defer freshSuite.Close()
	fresh, err := freshSuite.Matrix()
	if err != nil {
		t.Fatal(err)
	}
	stations, err := freshSuite.extension()
	if err != nil {
		t.Fatal(err)
	}
	var models []store.Model
	for _, k := range store.AllKinds() {
		m, err := store.New(k, store.Options{BufferPages: cfg.BufferPages})
		if err != nil {
			t.Fatal(err)
		}
		defer m.Engine().Close()
		if err := m.Load(stations); err != nil {
			t.Fatal(err)
		}
		models = append(models, m)
	}
	path := filepath.Join(t.TempDir(), "cow.codb")
	if err := snapshot.Write(path, cfg.Gen, models...); err != nil {
		t.Fatal(err)
	}

	snapCfg := smallConfig()
	snapCfg.Backend = "cow"
	snapCfg.Workers = 8
	snapCfg.Snapshot = path
	snapSuite := New(snapCfg)
	defer snapSuite.Close()
	snap, err := snapSuite.Matrix()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fresh.Rows, snap.Rows) {
		t.Error("cow-from-snapshot matrix differs from freshly loaded matrix")
	}
}

// TestMatrixSharedBaseMemory is the deterministic memory smoke: after an
// 8-worker cow matrix, the suite's adopted models must be COW views whose
// private overlays are small next to the shared arenas — i.e. the sharing
// actually happened and peak page memory is ~one loaded extension per
// kind, not per worker.
func TestMatrixSharedBaseMemory(t *testing.T) {
	cfg := smallConfig()
	cfg.Backend = "cow"
	cfg.Workers = 8
	s := New(cfg)
	defer s.Close()
	if _, err := s.Matrix(); err != nil {
		t.Fatal(err)
	}
	baseBytes, overlayBytes, views := 0, 0, 0
	for k, m := range s.models {
		st, ok := diskCOWStats(m)
		if !ok {
			t.Fatalf("%s: adopted matrix model is not a COW view", k)
		}
		views++
		baseBytes += st.BaseBytes
		overlayBytes += st.OverlayBytes
	}
	if views != 5 {
		t.Fatalf("adopted %d models, want 5", views)
	}
	if baseBytes == 0 {
		t.Fatal("no shared base bytes accounted")
	}
	// Only the update queries dirty pages, so an adopted view's overlay is
	// bounded by its kind's query-3 write set no matter which queries the
	// adopted worker happened to claim. Measuring that worst case directly
	// (every kind running 3a+3b on one view) gives 28% of the base bytes
	// at this scale — assert half, which any scheduling stays below.
	if overlayBytes*2 > baseBytes {
		t.Errorf("overlays (%d bytes) not small next to shared bases (%d bytes)", overlayBytes, baseBytes)
	}
}

// TestOpenBaseMappedEquivalence pins the zero-copy snapshot path: views
// over an mmap'ed base measure bit-identically to views over a heap-copy
// base — including an update query, which extends the overlay-never-
// mutates-base regression to the mapped variant (the snapshot file must
// be byte-identical after the whole lifecycle).
func TestOpenBaseMappedEquivalence(t *testing.T) {
	cfg := smallConfig()
	stations, err := cobench.Generate(cfg.Gen)
	if err != nil {
		t.Fatal(err)
	}
	var models []store.Model
	for _, k := range []store.Kind{store.DSM, store.DASDBSNSM} {
		m, err := store.New(k, store.Options{BufferPages: cfg.BufferPages})
		if err != nil {
			t.Fatal(err)
		}
		defer m.Engine().Close()
		if err := m.Load(stations); err != nil {
			t.Fatal(err)
		}
		models = append(models, m)
	}
	path := filepath.Join(t.TempDir(), "mapped.codb")
	if err := snapshot.Write(path, cfg.Gen, models...); err != nil {
		t.Fatal(err)
	}
	pristine, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	// Queries 2b (navigation) and 3b (update: dirties pages) per kind.
	queries := []cobench.Query{cobench.Q2b, cobench.Q3b}
	for _, k := range []store.Kind{store.DSM, store.DASDBSNSM} {
		heapResults := make(map[cobench.Query]Measured, len(queries))
		heapBase, err := snapshot.OpenBaseHeap(path, k)
		if err != nil {
			t.Fatal(err)
		}
		mapBase, err := snapshot.OpenBase(path, k)
		if err != nil {
			t.Fatal(err)
		}
		if disk.CanMapBase && !mapBase.Mapped() {
			t.Fatalf("%s: OpenBase did not map the arena on a mmap-capable platform", k)
		}
		if mapBase.Mapped() && heapBase.Mapped() {
			t.Fatalf("%s: OpenBaseHeap produced a mapped arena", k)
		}
		for _, base := range []*store.SharedBase{heapBase, mapBase} {
			view, err := base.Open(store.Options{BufferPages: cfg.BufferPages})
			if err != nil {
				t.Fatal(err)
			}
			runner := workload.NewRunner(view, cfg.Workload)
			for _, q := range queries {
				res, err := runner.Run(q)
				if err != nil {
					t.Fatalf("%s %s: %v", k, q, err)
				}
				if base == heapBase {
					heapResults[q] = toMeasured(res)
				} else if !reflect.DeepEqual(heapResults[q], toMeasured(res)) {
					t.Errorf("%s %s: mapped-base counters differ from heap-base counters", k, q)
				}
			}
			if err := view.Flush(); err != nil {
				t.Fatal(err)
			}
			if err := view.Engine().Close(); err != nil {
				t.Fatal(err)
			}
		}
		if err := heapBase.Release(); err != nil {
			t.Fatal(err)
		}
		if err := mapBase.Release(); err != nil {
			t.Fatal(err)
		}
	}
	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(pristine, after) {
		t.Fatal("snapshot file changed under mapped views (flushed updates must stay in overlays)")
	}
}

// TestMatrixPeakRSS logs the process peak RSS after an 8-worker matrix at
// paper scale on the backend named by COMPLEXOBJ_BACKEND (restored from
// the snapshot named by COMPLEXOBJ_SNAPSHOT when set, so CI can compare
// heap-loaded against snapshot-mapped bases). It asserts nothing by
// itself — CI runs it once per configuration in separate processes and
// compares the figures (cow must not exceed mem; cow over a mapped
// snapshot must not exceed plain cow); BENCH_4.json records the numbers.
// Gated behind COMPLEXOBJ_RSS so the regular test runs do not pay a
// paper-scale matrix repeatedly.
func TestMatrixPeakRSS(t *testing.T) {
	if os.Getenv("COMPLEXOBJ_RSS") == "" {
		t.Skip("set COMPLEXOBJ_RSS=1 to measure peak RSS")
	}
	if runtime.GOOS != "linux" {
		t.Skip("peak RSS via /proc is Linux-only")
	}
	cfg := DefaultConfig()
	cfg.Backend = os.Getenv("COMPLEXOBJ_BACKEND")
	cfg.Snapshot = os.Getenv("COMPLEXOBJ_SNAPSHOT")
	cfg.Workers = 8
	s := New(cfg)
	defer s.Close()
	if _, err := s.Matrix(); err != nil {
		t.Fatal(err)
	}
	hwm, err := peakRSSKB()
	if err != nil {
		t.Fatal(err)
	}
	backend := cfg.Backend
	if backend == "" {
		backend = "mem"
	}
	if cfg.Snapshot != "" {
		backend += "+db"
	}
	fmt.Printf("peak-rss-kb backend=%s workers=8 kb=%d\n", backend, hwm)
}

// TestSnapshotBaseRSS is the COMPLEXOBJ_RSS smoke for the mmap base: at
// paper scale, opening every model of a snapshot as mapped bases must add
// almost no resident memory, while heap-copy bases pay the full arenas.
func TestSnapshotBaseRSS(t *testing.T) {
	if os.Getenv("COMPLEXOBJ_RSS") == "" {
		t.Skip("set COMPLEXOBJ_RSS=1 to measure RSS")
	}
	if runtime.GOOS != "linux" {
		t.Skip("RSS via /proc is Linux-only")
	}
	if !disk.CanMapBase {
		t.Skip("platform cannot map bases")
	}
	cfg := DefaultConfig()
	stations, err := cobench.Generate(cfg.Gen)
	if err != nil {
		t.Fatal(err)
	}
	var models []store.Model
	for _, k := range store.AllKinds() {
		m, err := store.New(k, store.Options{BufferPages: cfg.BufferPages})
		if err != nil {
			t.Fatal(err)
		}
		if err := m.Load(stations); err != nil {
			t.Fatal(err)
		}
		models = append(models, m)
	}
	path := filepath.Join(t.TempDir(), "rss.codb")
	if err := snapshot.Write(path, cfg.Gen, models...); err != nil {
		t.Fatal(err)
	}
	for _, m := range models {
		m.Engine().Close()
	}
	stations, models = nil, nil

	openAll := func(open func(string, store.Kind) (*store.SharedBase, error)) (int, int) {
		debug.FreeOSMemory()
		before, err := currentRSSKB()
		if err != nil {
			t.Fatal(err)
		}
		var bases []*store.SharedBase
		arena := 0
		for _, k := range store.AllKinds() {
			b, err := open(path, k)
			if err != nil {
				t.Fatal(err)
			}
			arena += b.ArenaBytes()
			bases = append(bases, b)
		}
		after, err := currentRSSKB()
		if err != nil {
			t.Fatal(err)
		}
		for _, b := range bases {
			if err := b.Release(); err != nil {
				t.Fatal(err)
			}
		}
		return after - before, arena
	}
	mappedDelta, arenaBytes := openAll(snapshot.OpenBase)
	heapDelta, _ := openAll(snapshot.OpenBaseHeap)
	fmt.Printf("base-rss-kb arenas=%d mapped=%d heap=%d\n", arenaBytes/1024, mappedDelta, heapDelta)
	// The mapped bases must be far below both the heap copies and the raw
	// arena footprint (they fault pages in only when views touch them).
	if mappedDelta*4 > heapDelta {
		t.Errorf("mapped bases resident %d KiB, not ≪ heap bases %d KiB", mappedDelta, heapDelta)
	}
	if mappedDelta*4 > arenaBytes/1024 {
		t.Errorf("mapped bases resident %d KiB, not ≪ arena size %d KiB", mappedDelta, arenaBytes/1024)
	}
}

// currentRSSKB reads VmRSS (the current resident set) in KiB.
func currentRSSKB() (int, error) {
	f, err := os.Open("/proc/self/status")
	if err != nil {
		return 0, err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		if rest, ok := strings.CutPrefix(sc.Text(), "VmRSS:"); ok {
			return strconv.Atoi(strings.TrimSuffix(strings.TrimSpace(rest), " kB"))
		}
	}
	return 0, fmt.Errorf("VmRSS not found in /proc/self/status")
}

// peakRSSKB reads VmHWM (the process peak resident set) in KiB.
func peakRSSKB() (int, error) {
	f, err := os.Open("/proc/self/status")
	if err != nil {
		return 0, err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		if rest, ok := strings.CutPrefix(sc.Text(), "VmHWM:"); ok {
			return strconv.Atoi(strings.TrimSuffix(strings.TrimSpace(rest), " kB"))
		}
	}
	return 0, fmt.Errorf("VmHWM not found in /proc/self/status")
}
