// Package experiments regenerates every table and figure of the paper's
// evaluation: the analytical estimates of Table 3, the measured physical
// page I/Os, I/O calls and buffer fixes of Tables 4-6, the data-skew
// comparison of Table 7, the qualitative ranking of Table 8, the
// object-size sweep of Figure 5 and the database-size/cache sweep of
// Figure 6.
//
// A Suite caches the generated extension, the loaded storage models and
// the full query matrix, so asking for several tables runs the expensive
// work once. All runs are deterministic for a given configuration.
package experiments

import (
	"fmt"
	"runtime"
	"sync"

	"complexobj/cobench"
	"complexobj/internal/buffer"
	"complexobj/internal/disk"
	"complexobj/internal/fanout"
	"complexobj/internal/faultdisk"
	"complexobj/internal/snapshot"
	"complexobj/internal/store"
	"complexobj/internal/workload"
)

// Config parameterizes a reproduction run.
type Config struct {
	// Gen is the benchmark extension configuration (default: the paper's
	// 1500-station extension).
	Gen cobench.Config
	// Workload holds loop and sample counts (default: 300 loops).
	Workload cobench.Workload
	// BufferPages is the cache size (default 1200 pages, §5.1).
	BufferPages int
	// PageSize is the raw page size (default 2048).
	PageSize int
	// UseClock switches the buffer replacement policy from LRU to Clock
	// (an ablation; the paper does not name DASDBS's policy).
	UseClock bool
	// Workers bounds the number of concurrent workers used by Matrix and
	// by the sweep experiments (Figures 5/6, the buffer sweep, Table 7).
	// 0 means GOMAXPROCS; 1 forces the serial path. Every worker owns
	// its engines (device + buffer pool), so workers never share mutable
	// state and the measured counters are identical to a serial run
	// regardless of scheduling.
	Workers int
	// Backend selects the device backend for every engine the suite
	// builds: "" or "mem" (default), "file", "file:DIR" or "cow".
	// Counters are bit-identical across backends; the choice only moves
	// the page bytes. With "cow" every experiment routes model
	// acquisition through one config-keyed frozen-base cache: the first
	// cell to need a (model kind, generator config) pair builds and
	// freezes it once, and every other cell — matrix workers, Figure 5/6
	// columns, all buffer-sweep pool sizes, Table 7 variants — opens a
	// copy-on-write view instead of re-inserting the extension, so both
	// peak memory and load work stop scaling with the cell count.
	Backend string
	// Snapshot is the path of a cogen-built .codb snapshot. When set,
	// models of the suite's own extension are restored from the snapshot
	// instead of regenerating and reloading; the snapshot's stored
	// generator configuration must match Gen, and with Backend "cow" the
	// snapshot's arena regions are mmap'ed read-only in place (one
	// mapping per model kind, shared by every view, paged in on demand).
	// Sweeps that need non-default extensions still generate.
	Snapshot string
	// Faults is an optional seeded fault-injection schedule (the
	// faultdisk grammar, e.g. "seed=7,read=0.02") armed under every
	// engine the suite builds. Injected faults surface as errors from the
	// experiments and never alter the counters of runs that complete, so
	// tables produced under a transient-only schedule are byte-identical
	// to the fault-free tables — the resilience property the chaos tests
	// pin.
	Faults string
}

// DefaultConfig mirrors the paper's installation.
func DefaultConfig() Config {
	return Config{
		Gen:         cobench.DefaultConfig(),
		Workload:    cobench.DefaultWorkload(),
		BufferPages: 1200,
	}
}

// Suite caches everything derived from one configuration. A Suite is not
// safe for concurrent use; run one experiment at a time (they are
// deterministic and order-independent).
type Suite struct {
	cfg         Config
	storeOpts   store.Options
	optsErr     error
	snapMu      sync.Mutex
	snapChecked bool
	snapErr     error
	genOnce     sync.Once
	genErr      error
	stations    []*cobench.Station
	genStats    *cobench.Stats
	bases       *store.BaseCache
	gens        *genShare
	models      map[store.Kind]store.Model
	matrix      *Matrix
	fig5        []Fig5Cell
	fig6        []Fig6Point
	table7      []SkewRow
	bufferSweep []BufferPoint
}

// New creates a suite for the given configuration.
func New(cfg Config) *Suite {
	if cfg.Gen.N == 0 {
		cfg.Gen = cobench.DefaultConfig()
	}
	if cfg.Workload.Loops == 0 && cfg.Workload.Samples == 0 {
		cfg.Workload = cobench.DefaultWorkload()
	}
	if cfg.BufferPages == 0 {
		cfg.BufferPages = 1200
	}
	s := &Suite{cfg: cfg, models: make(map[store.Kind]store.Model), bases: store.NewBaseCache(), gens: newGenShare()}
	s.storeOpts = store.Options{PageSize: cfg.PageSize, BufferPages: cfg.BufferPages}
	if cfg.UseClock {
		s.storeOpts.Policy = buffer.Clock
	}
	s.storeOpts.Backend, s.optsErr = disk.ParseBackendSpec(cfg.Backend)
	if s.optsErr == nil && cfg.Faults != "" {
		var spec faultdisk.Spec
		if spec, s.optsErr = faultdisk.ParseSpec(cfg.Faults); s.optsErr == nil {
			// One injector for the whole suite: every engine gets its own
			// deterministic schedule stream from it, and the counters
			// accumulate across all experiments.
			s.storeOpts.Faults = faultdisk.New(spec)
		}
	}
	return s
}

// Default creates a suite with the paper's configuration.
func Default() *Suite { return New(DefaultConfig()) }

// Config returns the suite's effective configuration.
func (s *Suite) Config() Config { return s.cfg }

// Close releases the engines of every model the suite has cached (file
// backends unmap and delete their anonymous arena files) and then the
// frozen-base cache (dropping heap bases and snapshot file mappings).
// The suite must not be used afterwards.
func (s *Suite) Close() error {
	var first error
	for k, m := range s.models {
		if err := m.Engine().Close(); err != nil && first == nil {
			first = err
		}
		delete(s.models, k)
	}
	if err := s.bases.Close(); err != nil && first == nil {
		first = err
	}
	return first
}

func (s *Suite) storeOptions() (store.Options, error) {
	return s.storeOpts, s.optsErr
}

// workers resolves the effective worker count shared by the matrix and
// the sweeps.
func (s *Suite) workers() int {
	if s.cfg.Workers > 0 {
		return s.cfg.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// snapshotOK validates (once) that the configured snapshot holds the
// extension the suite is asked to measure. Safe for concurrent use: the
// base cache validates from concurrent build closures.
func (s *Suite) snapshotOK() error {
	if s.cfg.Snapshot == "" {
		return fmt.Errorf("experiments: no snapshot configured")
	}
	s.snapMu.Lock()
	defer s.snapMu.Unlock()
	if s.snapChecked {
		return s.snapErr
	}
	s.snapChecked = true
	info, err := snapshot.Stat(s.cfg.Snapshot)
	if err != nil {
		s.snapErr = fmt.Errorf("experiments: snapshot: %w", err)
	} else if info.Gen != s.cfg.Gen {
		s.snapErr = fmt.Errorf("experiments: snapshot %s was built from %+v, configuration wants %+v",
			s.cfg.Snapshot, info.Gen, s.cfg.Gen)
	}
	return s.snapErr
}

// useSharedBases reports whether the suite's engines should be
// copy-on-write views over cached frozen bases: the cow backend without
// an externally supplied base. With any other backend every cell keeps
// its private arena (the pre-cache behaviour), which the determinism
// tests compare the shared path against.
func (s *Suite) useSharedBases() bool {
	return s.optsErr == nil &&
		s.storeOpts.Backend.Kind == disk.COWArena && s.storeOpts.Backend.Base == nil
}

// sharedBase returns the frozen base for (k, gen), building it at most
// once per suite across every experiment — the matrix, Figures 5/6, the
// buffer sweep, Table 7 and the serially cached models all land in the
// same cache, so e.g. the Figure 5 default-sightseeing column reuses the
// bases the matrix froze. The base comes from the configured snapshot
// when gen is the suite's own extension (mmap'ed in place where the
// platform allows), otherwise from loading stations — or a deterministic
// regeneration of gen when the caller has none — and freezing the result.
func (s *Suite) sharedBase(k store.Kind, gen cobench.Config, stations []*cobench.Station) (*store.SharedBase, error) {
	key := store.BaseKey{Kind: k, PageSize: s.storeOpts.PageSize, Gen: gen}
	return s.bases.Get(key, s.buildBase(k, gen, stations))
}

// scopedBase is sharedBase for one-off configurations: the cache entry is
// released — its base dropped — as soon as every cell that acquired it
// has called the returned release function, so a paper-scale sweep over
// many non-default configurations (Figure 5/6 columns, the Table 7 skew
// extension) holds only the bases of cells in flight instead of retaining
// all of them until Suite.Close.
func (s *Suite) scopedBase(k store.Kind, gen cobench.Config, stations []*cobench.Station) (*store.SharedBase, func() error, error) {
	key := store.BaseKey{Kind: k, PageSize: s.storeOpts.PageSize, Gen: gen}
	return s.bases.GetScoped(key, s.buildBase(k, gen, stations))
}

// buildBase is the build closure shared by the pinned and the scoped
// cache paths: snapshot-backed for the suite's own extension, otherwise
// load-and-freeze over a generation.
func (s *Suite) buildBase(k store.Kind, gen cobench.Config, stations []*cobench.Station) func() (*store.SharedBase, error) {
	return func() (*store.SharedBase, error) {
		if s.cfg.Snapshot != "" && gen == s.cfg.Gen {
			if err := s.snapshotOK(); err != nil {
				return nil, err
			}
			return snapshot.OpenBase(s.cfg.Snapshot, k)
		}
		if stations == nil {
			var err error
			if gen == s.cfg.Gen {
				stations, err = s.extension()
			} else {
				stations, err = cobench.Generate(gen)
			}
			if err != nil {
				return nil, err
			}
		}
		// Load over a contiguous mem arena, not the cow spec's bare
		// overlay: the loader exists only to be frozen, and the flat
		// arena makes both the load and the Freeze dump single memmoves
		// instead of per-page overlay traffic.
		loaderOpts := s.storeOpts
		loaderOpts.Backend = disk.BackendSpec{Kind: disk.MemArena}
		loader, err := store.New(k, loaderOpts)
		if err != nil {
			return nil, err
		}
		defer loader.Engine().Close()
		if err := loader.Load(stations); err != nil {
			return nil, fmt.Errorf("experiments: load %s: %w", k, err)
		}
		return store.Freeze(loader)
	}
}

// openLoaded builds one loaded model of kind k over the extension
// described by gen (stations may carry a pre-generated copy, or be nil).
// On the shared-base path the model is a copy-on-write view of the cached
// frozen base — cells sharing (kind, gen) pay for one load — and
// otherwise a private engine loaded (or snapshot-restored) from scratch.
// Either way the model starts with a cold cache and zeroed counters and
// measures bit-identically (TestSweepSharedBaseDeterminism); the caller
// owns the engine.
func (s *Suite) openLoaded(k store.Kind, opts store.Options, gen cobench.Config, stations []*cobench.Station) (store.Model, error) {
	if s.useSharedBases() {
		base, err := s.sharedBase(k, gen, stations)
		if err != nil {
			return nil, err
		}
		return base.Open(opts)
	}
	if s.cfg.Snapshot != "" && gen == s.cfg.Gen {
		if err := s.snapshotOK(); err != nil {
			return nil, err
		}
		return snapshot.Open(s.cfg.Snapshot, k, opts)
	}
	if stations == nil {
		var err error
		if gen == s.cfg.Gen {
			stations, err = s.extension()
		} else {
			stations, err = cobench.Generate(gen)
		}
		if err != nil {
			return nil, err
		}
	}
	m, err := store.New(k, opts)
	if err != nil {
		return nil, err
	}
	if err := m.Load(stations); err != nil {
		m.Engine().Close()
		return nil, fmt.Errorf("experiments: load %s: %w", k, err)
	}
	return m, nil
}

// openModel builds one loaded default-configuration model: a COW view of
// the cached base (cow backend), restored from the snapshot, or generated
// and loaded. The caller owns the model's engine.
func (s *Suite) openModel(k store.Kind) (store.Model, error) {
	opts, err := s.storeOptions()
	if err != nil {
		return nil, err
	}
	return s.openLoaded(k, opts, s.cfg.Gen, nil)
}

// extension generates (once) and returns the benchmark database. Safe
// for concurrent use: base-cache build closures for different model
// kinds race to it.
func (s *Suite) extension() ([]*cobench.Station, error) {
	s.genOnce.Do(func() {
		st, err := cobench.Generate(s.cfg.Gen)
		if err != nil {
			s.genErr = fmt.Errorf("experiments: generate: %w", err)
			return
		}
		s.stations = st
		gs := cobench.Describe(st)
		s.genStats = &gs
	})
	return s.stations, s.genErr
}

// ExtensionStats describes the generated extension (realised averages,
// reported alongside Table 4 in §5.1).
func (s *Suite) ExtensionStats() (cobench.Stats, error) {
	if _, err := s.extension(); err != nil {
		return cobench.Stats{}, err
	}
	return *s.genStats, nil
}

// model loads (once) one storage model over the suite's extension (or
// from the configured snapshot) and caches it on the suite.
func (s *Suite) model(k store.Kind) (store.Model, error) {
	if m, ok := s.models[k]; ok {
		return m, nil
	}
	m, err := s.openModel(k)
	if err != nil {
		return nil, err
	}
	s.models[k] = m
	return m, nil
}

// Measured is one model × query measurement, normalized per unit (objects
// for query family 1, loops for families 2 and 3).
type Measured struct {
	Model     string
	Query     string
	Supported bool
	Units     float64

	Pages        float64
	PagesRead    float64
	PagesWritten float64
	Calls        float64
	ReadCalls    float64
	WriteCalls   float64
	Fixes        float64
	Hits         float64
}

// Matrix holds the full measurement grid of Tables 4-6.
type Matrix struct {
	Rows []Measured
}

// Get returns the measurement for one model × query cell.
func (m *Matrix) Get(model, query string) (Measured, bool) {
	for _, r := range m.Rows {
		if r.Model == model && r.Query == query {
			return r, true
		}
	}
	return Measured{}, false
}

// Models lists the distinct model names in row order.
func (m *Matrix) Models() []string {
	var out []string
	seen := map[string]bool{}
	for _, r := range m.Rows {
		if !seen[r.Model] {
			seen[r.Model] = true
			out = append(out, r.Model)
		}
	}
	return out
}

// Matrix runs (once) every benchmark query on every storage model.
//
// The grid is computed by a bounded pool of workers over the (model, query)
// cells. Each worker owns private engines (simulated device + buffer pool)
// per storage model, so cells never contend on shared state, and every
// query starts from a cold cache with freshly reset counters — which makes
// the measured numbers independent of scheduling and byte-identical to a
// serial run (asserted by TestMatrixParallelDeterminism). Row order is
// always the paper's: models in AllKinds order, queries in AllQueries
// order.
func (s *Suite) Matrix() (*Matrix, error) {
	if s.matrix != nil {
		return s.matrix, nil
	}
	workers := s.workers()
	kinds := store.AllKinds()
	queries := cobench.AllQueries()
	if workers > len(kinds)*len(queries) {
		workers = len(kinds) * len(queries)
	}
	var rows []Measured
	var err error
	if workers <= 1 {
		rows, err = s.matrixSerial(kinds)
	} else {
		rows, err = s.matrixParallel(workers, kinds, queries)
	}
	if err != nil {
		return nil, err
	}
	s.matrix = &Matrix{Rows: rows}
	return s.matrix, nil
}

// matrixSerial is the single-threaded path: one model at a time, all its
// queries in order, reusing the models cached on the Suite.
func (s *Suite) matrixSerial(kinds []store.Kind) ([]Measured, error) {
	var rows []Measured
	for _, k := range kinds {
		m, err := s.model(k)
		if err != nil {
			return nil, err
		}
		results, err := workload.NewRunner(m, s.cfg.Workload).RunAll()
		if err != nil {
			return nil, fmt.Errorf("experiments: %s: %w", k, err)
		}
		for _, res := range results {
			rows = append(rows, toMeasured(res))
		}
	}
	return rows, nil
}

// matrixParallel fans the (model, query) cells out to a bounded worker
// pool. Workers lazily open their own engine for each storage model they
// are handed, so no locking is needed around the storage substrate.
// Because loading a model is expensive, cells are not dealt out blindly: a
// worker keeps claiming queries of the model it already has loaded, and
// only when that queue is empty claims the model with the most queries
// left. Loads therefore stay near one per (worker, model actually touched)
// instead of one per cell.
//
// What "opening an engine" costs depends on the backend. With the mem and
// file backends every worker restores (or loads) a private arena, so peak
// memory scales with the worker count. With the cow backend the scheduler
// instead builds one immutable shared base per model kind — read from the
// snapshot, or loaded once and frozen — and hands each worker a
// copy-on-write view of it: per-worker memory is only the pages the
// worker's queries dirty. The measured counters are unchanged either way
// (a restored view measures bit-identically to a fresh load, pinned by
// TestMatrixSharedBaseDeterminism), so the rows stay byte-identical to a
// serial run.
//
// After the run, one loaded copy of each model is adopted into the Suite's
// model cache, so later experiments that only need layout metadata
// (Table 2, derived cost-model parameters) do not reload from scratch.
func (s *Suite) matrixParallel(workers int, kinds []store.Kind, queries []cobench.Query) ([]Measured, error) {
	opts, err := s.storeOptions()
	if err != nil {
		return nil, err
	}
	// Workers either restore their model copies from the snapshot or load
	// them over the shared, read-only extension; pre-flight the expensive
	// shared inputs so every worker fails (or proceeds) the same way.
	var stations []*cobench.Station
	if s.cfg.Snapshot != "" {
		if err := s.snapshotOK(); err != nil {
			return nil, err
		}
	} else {
		if stations, err = s.extension(); err != nil {
			return nil, err
		}
	}
	// Shared-base mode (cow backend): the first worker to touch a model
	// kind builds its immutable base exactly once — in the suite's
	// config-keyed cache, where the sweeps and later experiments find it
	// again; bases for different kinds build concurrently.
	openWorkerModel := func(ki int) (store.Model, error) {
		return s.openLoaded(kinds[ki], opts, s.cfg.Gen, stations)
	}
	rows := make([]Measured, len(kinds)*len(queries))
	var (
		mu      sync.Mutex
		nextQ   = make([]int, len(kinds)) // next unclaimed query per kind
		aborted bool
	)
	// claim hands out one (kind, query) cell, preferring the worker's
	// current kind; ok is false when no work is left (or a worker failed).
	claim := func(preferred int) (ki, qi int, ok bool) {
		mu.Lock()
		defer mu.Unlock()
		if aborted {
			return 0, 0, false
		}
		if preferred >= 0 && nextQ[preferred] < len(queries) {
			qi = nextQ[preferred]
			nextQ[preferred]++
			return preferred, qi, true
		}
		best, bestRem := -1, 0
		for k := range kinds {
			if rem := len(queries) - nextQ[k]; rem > bestRem {
				best, bestRem = k, rem
			}
		}
		if best < 0 {
			return 0, 0, false
		}
		qi = nextQ[best]
		nextQ[best]++
		return best, qi, true
	}
	abort := func() {
		mu.Lock()
		aborted = true
		mu.Unlock()
	}
	workerModels := make([]map[store.Kind]store.Model, workers)
	err = fanout.Run(workers, workers, func(w int) error {
		models := make(map[store.Kind]store.Model, len(kinds))
		workerModels[w] = models
		cur := -1
		for {
			ki, qi, ok := claim(cur)
			if !ok {
				return nil
			}
			cur = ki
			k, q := kinds[ki], queries[qi]
			m, loaded := models[k]
			if !loaded {
				var err error
				if m, err = openWorkerModel(ki); err != nil {
					abort()
					return fmt.Errorf("experiments: open %s: %w", k, err)
				}
				models[k] = m
			}
			res, err := workload.NewRunner(m, s.cfg.Workload).Run(q)
			if err != nil {
				abort()
				return fmt.Errorf("experiments: %s %s: %w", k, q, err)
			}
			rows[ki*len(queries)+qi] = toMeasured(res)
		}
	})
	if err != nil {
		// Release every worker's engines: with a file backend each holds
		// an mmap, a descriptor and an anonymous arena file.
		for _, wm := range workerModels {
			for _, m := range wm {
				m.Engine().Close()
			}
		}
		return nil, err
	}
	// Adopt one loaded copy of each model into the Suite cache; close the
	// engines of redundant copies so file-backed arenas are released. The
	// adopted copies differ from a serial run only in which queries they
	// executed, which cannot affect the layout metadata (Sizes) that
	// cached models serve.
	var closeErr error
	for _, wm := range workerModels {
		for k, m := range wm {
			if _, ok := s.models[k]; !ok {
				s.models[k] = m
			} else if err := m.Engine().Close(); err != nil && closeErr == nil {
				closeErr = err
			}
		}
	}
	if closeErr != nil {
		return nil, closeErr
	}
	return rows, nil
}

func toMeasured(res workload.Result) Measured {
	m := Measured{
		Model:     res.Model.String(),
		Query:     res.Query.String(),
		Supported: res.Supported,
		Units:     res.Units,
	}
	if !res.Supported {
		return m
	}
	n := res.PerUnit()
	m.Pages = n.Pages
	m.PagesRead = n.PagesRead
	m.PagesWritten = n.PagesWritten
	m.Calls = n.Calls
	m.ReadCalls = n.ReadCalls
	m.WriteCalls = n.WriteCalls
	m.Fixes = n.Fixes
	m.Hits = n.Hits
	return m
}

// runQueriesOn obtains a loaded model of kind k under the generator
// configuration gen and runs the selected queries with the given
// workload, releasing the cell's engine afterwards. Used by the sweeps
// (Table 7, Figures 5 and 6), which need configurations other than the
// suite default. On the shared-base path the model is a COW view of the
// config-keyed cached base; otherwise a private engine over a fresh
// generation. Only concurrency-safe Suite state is touched, so sweep
// cells can fan out over a worker pool.
func (s *Suite) runQueriesOn(k store.Kind, opts store.Options, gen cobench.Config, w cobench.Workload, queries ...cobench.Query) (map[cobench.Query]Measured, error) {
	return s.runQueriesLoaded(k, opts, gen, nil, w, queries...)
}

// runQueriesLoaded is runQueriesOn with optionally pre-generated stations
// of gen (callers that already share one generation across cells pass it;
// nil regenerates on demand).
//
// Non-default configurations get cell-scoped sharing and release: the
// extension comes from the transient generation share (cells of the same
// configuration running concurrently generate it once; nothing outlives
// the cells), and on the shared-base path the frozen base is acquired
// scoped — dropped from the cache as soon as the last cell of its
// configuration finishes — so a sweep's memory tracks the cells in
// flight, not the number of configurations swept.
func (s *Suite) runQueriesLoaded(k store.Kind, opts store.Options, gen cobench.Config, stations []*cobench.Station, w cobench.Workload, queries ...cobench.Query) (map[cobench.Query]Measured, error) {
	if stations == nil && gen != s.cfg.Gen {
		st, release, err := s.gens.acquire(gen)
		if err != nil {
			return nil, err
		}
		defer release()
		stations = st
	}
	var m store.Model
	if s.useSharedBases() && gen != s.cfg.Gen {
		base, release, err := s.scopedBase(k, gen, stations)
		if err != nil {
			return nil, err
		}
		defer release()
		if m, err = base.Open(opts); err != nil {
			return nil, err
		}
	} else {
		var err error
		if m, err = s.openLoaded(k, opts, gen, stations); err != nil {
			return nil, err
		}
	}
	defer m.Engine().Close()
	runner := workload.NewRunner(m, w)
	out := make(map[cobench.Query]Measured, len(queries))
	for _, q := range queries {
		res, err := runner.Run(q)
		if err != nil {
			return nil, fmt.Errorf("experiments: %s %s: %w", k, q, err)
		}
		out[q] = toMeasured(res)
	}
	return out, nil
}
