// Package experiments regenerates every table and figure of the paper's
// evaluation: the analytical estimates of Table 3, the measured physical
// page I/Os, I/O calls and buffer fixes of Tables 4-6, the data-skew
// comparison of Table 7, the qualitative ranking of Table 8, the
// object-size sweep of Figure 5 and the database-size/cache sweep of
// Figure 6.
//
// A Suite caches the generated extension, the loaded storage models and
// the full query matrix, so asking for several tables runs the expensive
// work once. All runs are deterministic for a given configuration.
package experiments

import (
	"fmt"

	"complexobj/cobench"
	"complexobj/internal/buffer"
	"complexobj/internal/store"
	"complexobj/internal/workload"
)

// Config parameterizes a reproduction run.
type Config struct {
	// Gen is the benchmark extension configuration (default: the paper's
	// 1500-station extension).
	Gen cobench.Config
	// Workload holds loop and sample counts (default: 300 loops).
	Workload cobench.Workload
	// BufferPages is the cache size (default 1200 pages, §5.1).
	BufferPages int
	// PageSize is the raw page size (default 2048).
	PageSize int
	// UseClock switches the buffer replacement policy from LRU to Clock
	// (an ablation; the paper does not name DASDBS's policy).
	UseClock bool
}

// DefaultConfig mirrors the paper's installation.
func DefaultConfig() Config {
	return Config{
		Gen:         cobench.DefaultConfig(),
		Workload:    cobench.DefaultWorkload(),
		BufferPages: 1200,
	}
}

// Suite caches everything derived from one configuration. A Suite is not
// safe for concurrent use; run one experiment at a time (they are
// deterministic and order-independent).
type Suite struct {
	cfg         Config
	stations    []*cobench.Station
	genStats    *cobench.Stats
	models      map[store.Kind]store.Model
	matrix      *Matrix
	fig5        []Fig5Cell
	fig6        []Fig6Point
	table7      []SkewRow
	bufferSweep []BufferPoint
}

// New creates a suite for the given configuration.
func New(cfg Config) *Suite {
	if cfg.Gen.N == 0 {
		cfg.Gen = cobench.DefaultConfig()
	}
	if cfg.Workload.Loops == 0 && cfg.Workload.Samples == 0 {
		cfg.Workload = cobench.DefaultWorkload()
	}
	if cfg.BufferPages == 0 {
		cfg.BufferPages = 1200
	}
	return &Suite{cfg: cfg, models: make(map[store.Kind]store.Model)}
}

// Default creates a suite with the paper's configuration.
func Default() *Suite { return New(DefaultConfig()) }

// Config returns the suite's effective configuration.
func (s *Suite) Config() Config { return s.cfg }

func (s *Suite) storeOptions() store.Options {
	o := store.Options{PageSize: s.cfg.PageSize, BufferPages: s.cfg.BufferPages}
	if s.cfg.UseClock {
		o.Policy = buffer.Clock
	}
	return o
}

// extension generates (once) and returns the benchmark database.
func (s *Suite) extension() ([]*cobench.Station, error) {
	if s.stations == nil {
		st, err := cobench.Generate(s.cfg.Gen)
		if err != nil {
			return nil, fmt.Errorf("experiments: generate: %w", err)
		}
		s.stations = st
		gs := cobench.Describe(st)
		s.genStats = &gs
	}
	return s.stations, nil
}

// ExtensionStats describes the generated extension (realised averages,
// reported alongside Table 4 in §5.1).
func (s *Suite) ExtensionStats() (cobench.Stats, error) {
	if _, err := s.extension(); err != nil {
		return cobench.Stats{}, err
	}
	return *s.genStats, nil
}

// model loads (once) one storage model over the suite's extension.
func (s *Suite) model(k store.Kind) (store.Model, error) {
	if m, ok := s.models[k]; ok {
		return m, nil
	}
	stations, err := s.extension()
	if err != nil {
		return nil, err
	}
	m := store.New(k, s.storeOptions())
	if err := m.Load(stations); err != nil {
		return nil, fmt.Errorf("experiments: load %s: %w", k, err)
	}
	s.models[k] = m
	return m, nil
}

// Measured is one model × query measurement, normalized per unit (objects
// for query family 1, loops for families 2 and 3).
type Measured struct {
	Model     string
	Query     string
	Supported bool
	Units     float64

	Pages        float64
	PagesRead    float64
	PagesWritten float64
	Calls        float64
	ReadCalls    float64
	WriteCalls   float64
	Fixes        float64
	Hits         float64
}

// Matrix holds the full measurement grid of Tables 4-6.
type Matrix struct {
	Rows []Measured
}

// Get returns the measurement for one model × query cell.
func (m *Matrix) Get(model, query string) (Measured, bool) {
	for _, r := range m.Rows {
		if r.Model == model && r.Query == query {
			return r, true
		}
	}
	return Measured{}, false
}

// Models lists the distinct model names in row order.
func (m *Matrix) Models() []string {
	var out []string
	seen := map[string]bool{}
	for _, r := range m.Rows {
		if !seen[r.Model] {
			seen[r.Model] = true
			out = append(out, r.Model)
		}
	}
	return out
}

// Matrix runs (once) every benchmark query on every storage model.
func (s *Suite) Matrix() (*Matrix, error) {
	if s.matrix != nil {
		return s.matrix, nil
	}
	var rows []Measured
	for _, k := range store.AllKinds() {
		m, err := s.model(k)
		if err != nil {
			return nil, err
		}
		results, err := workload.NewRunner(m, s.cfg.Workload).RunAll()
		if err != nil {
			return nil, fmt.Errorf("experiments: %s: %w", k, err)
		}
		for _, res := range results {
			rows = append(rows, toMeasured(res))
		}
	}
	s.matrix = &Matrix{Rows: rows}
	return s.matrix, nil
}

func toMeasured(res workload.Result) Measured {
	m := Measured{
		Model:     res.Model.String(),
		Query:     res.Query.String(),
		Supported: res.Supported,
		Units:     res.Units,
	}
	if !res.Supported {
		return m
	}
	n := res.PerUnit()
	m.Pages = n.Pages
	m.PagesRead = n.PagesRead
	m.PagesWritten = n.PagesWritten
	m.Calls = n.Calls
	m.ReadCalls = n.ReadCalls
	m.WriteCalls = n.WriteCalls
	m.Fixes = n.Fixes
	m.Hits = n.Hits
	return m
}

// runQueriesOn builds a fresh model of kind k over the given extension and
// runs the selected queries with the given workload. Used by the sweeps
// (Table 7, Figures 5 and 6), which need configurations other than the
// suite default.
func (s *Suite) runQueriesOn(k store.Kind, gen cobench.Config, w cobench.Workload, queries ...cobench.Query) (map[cobench.Query]Measured, error) {
	stations, err := cobench.Generate(gen)
	if err != nil {
		return nil, err
	}
	m := store.New(k, s.storeOptions())
	if err := m.Load(stations); err != nil {
		return nil, err
	}
	runner := workload.NewRunner(m, w)
	out := make(map[cobench.Query]Measured, len(queries))
	for _, q := range queries {
		res, err := runner.Run(q)
		if err != nil {
			return nil, fmt.Errorf("experiments: %s %s: %w", k, q, err)
		}
		out[q] = toMeasured(res)
	}
	return out, nil
}
