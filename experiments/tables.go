package experiments

import (
	"fmt"
	"math"
	"sort"

	"complexobj/cobench"
	"complexobj/costmodel"
	"complexobj/internal/fanout"
	"complexobj/internal/store"
	"complexobj/report"
)

var queryLabels = []string{"1a", "1b", "1c", "2a", "2b", "3a", "3b"}

// Table1 renders the parameter glossary (the paper's Table 1).
func Table1() *report.Table {
	t := &report.Table{
		Title:  "Table 1: explanation of the (nested tuple) parameters",
		Header: []string{"PARAM", "MEANING"},
	}
	t.AddRow("g", "number of tuples in a cluster of tuples")
	t.AddRow("k", "nr. of (small) tuples stored on a single page")
	t.AddRow("m", "nr. of pages for storing an entire relation")
	t.AddRow("p", "nr. of pages to store a single (large) tuple")
	t.AddRow("t", "total number of tuples to be retrieved")
	t.AddRow("C_X", "cost related to the aspect X")
	t.AddRow("S_X", "size in byte of a unit called X")
	t.AddRow("X_f", "number of events X under condition f")
	return t
}

// RelationRow is one line of Table 2: the measured physical layout of one
// relation under one storage model, next to the paper's published constants
// where these are legible (NaN otherwise).
type RelationRow struct {
	Model           string
	Relation        string
	TuplesPerObject float64
	Tuples          int
	AvgTupleBytes   float64
	K               float64 // tuples per page (0: large tuples)
	P               float64 // pages per tuple (0: shared pages)
	M               int     // total pages

	PaperTupleBytes float64
	PaperK          float64
	PaperP          float64
	PaperM          float64
}

// paperTable2 holds the legible cells of the paper's Table 2 keyed by
// relation name; garbled cells are NaN.
var paperTable2 = map[string][4]float64{ // S_tuple, k, p, m
	"DSM_Station":           {6078, nan(), 4, 6000},
	"DASDBS-DSM_Station":    {6078, nan(), 4, 6000},
	"NSM_Station":           {nan(), 13, nan(), 116},
	"NSM+index_Station":     {nan(), 13, nan(), 116},
	"NSM_Connection":        {170, 11, nan(), 559},
	"NSM+index_Connection":  {170, 11, nan(), 559},
	"NSM_Sightseeing":       {456, 4, nan(), 2813},
	"NSM+index_Sightseeing": {456, 4, nan(), 2813},
	"DASDBS-NSM_Connection": {nan(), nan(), nan(), 500},
}

func nan() float64 { return math.NaN() }

// Table2 measures the physical sizes of every relation (the paper's
// Table 2: "Average DASDBS-sizes of benchmark tuples"). Like the paper's
// table it lists each distinct layout once: DASDBS-DSM shares DSM's layout
// and NSM+index shares NSM's.
func (s *Suite) Table2() ([]RelationRow, error) {
	var rows []RelationRow
	for _, k := range []store.Kind{store.DSM, store.NSM, store.DASDBSNSM} {
		m, err := s.model(k)
		if err != nil {
			return nil, err
		}
		rep := m.Sizes()
		for _, rel := range rep.Relations {
			row := RelationRow{
				Model:           rep.Model,
				Relation:        rel.Name,
				TuplesPerObject: rel.TuplesPerObject,
				Tuples:          rel.Tuples,
				AvgTupleBytes:   rel.AvgTupleBytes,
				K:               rel.K,
				P:               rel.P,
				M:               rel.M,
				PaperTupleBytes: nan(),
				PaperK:          nan(),
				PaperP:          nan(),
				PaperM:          nan(),
			}
			lookup := rel.Name
			if _, ok := paperTable2[lookup]; !ok {
				lookup = rep.Model + "_" + trimPrefix(rel.Name)
			}
			if ref, ok := paperTable2[lookup]; ok {
				row.PaperTupleBytes, row.PaperK, row.PaperP, row.PaperM = ref[0], ref[1], ref[2], ref[3]
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

func trimPrefix(name string) string {
	for i := len(name) - 1; i >= 0; i-- {
		if name[i] == '_' {
			return name[i+1:]
		}
	}
	return name
}

// RenderTable2 renders Table 2 rows.
func RenderTable2(rows []RelationRow) *report.Table {
	t := &report.Table{
		Title: "Table 2: average sizes of benchmark tuples (measured vs paper)",
		Header: []string{"RELATION", "TUPLES/OBJ", "TUPLES", "S_tuple", "k", "p", "m",
			"paper S", "paper k", "paper p", "paper m"},
		Notes: []string{
			"paper columns show the legible cells of the published Table 2; our leaner NF² encoding has no DASDBS internal overheads, hence smaller S_tuple/m",
		},
	}
	for _, r := range rows {
		t.AddRow(r.Relation,
			report.Num(r.TuplesPerObject), report.Int(r.Tuples), report.Num(r.AvgTupleBytes),
			numOrDash(r.K), numOrDash(r.P), report.Int(r.M),
			report.Num(r.PaperTupleBytes), report.Num(r.PaperK), report.Num(r.PaperP), report.Num(r.PaperM))
	}
	return t
}

func numOrDash(v float64) string {
	if v == 0 {
		return "-"
	}
	return report.Num(v)
}

// DerivedParams builds cost-model parameters from the actually loaded
// databases, so that the analytical and simulated numbers in EXPERIMENTS.md
// share one set of layout constants.
func (s *Suite) DerivedParams() (costmodel.Params, costmodel.Workload, error) {
	gs, err := s.ExtensionStats()
	if err != nil {
		return costmodel.Params{}, costmodel.Workload{}, err
	}
	w := costmodel.Workload{
		N:        float64(gs.N),
		Children: gs.AvgConnections,
		Grand:    gs.AvgGrand,
		Loops:    float64(s.cfg.Workload.Loops),
	}
	if w.Loops == 0 {
		w.Loops = float64(cobench.LoopsFor(gs.N))
	}

	p := costmodel.Params{Name: "derived", SPage: 2012}
	dsm, err := s.model(store.DSM)
	if err != nil {
		return p, w, err
	}
	drel := dsm.Sizes().Relations[0]
	perObj := float64(drel.M) / float64(gs.N)
	p.DirectP = perObj
	p.DirectUsefulP = perObj // our layout has no artificial allocation waste
	p.DirectNavP = 2
	p.DirectRootP = 2
	p.DirectM = float64(drel.M)
	p.DirectUsefulM = float64(drel.M)

	nsm, err := s.model(store.NSM)
	if err != nil {
		return p, w, err
	}
	for _, rel := range nsm.Sizes().Relations {
		r := costmodel.Rel{PerObject: rel.TuplesPerObject, K: rel.K, P: rel.P, M: float64(rel.M)}
		switch trimPrefix(rel.Name) {
		case "Station":
			p.NSMStation = r
		case "Platform":
			p.NSMPlatform = r
		case "Connection":
			p.NSMConnection = r
		case "Sightseeing":
			p.NSMSightseeing = r
		}
	}
	dnsm, err := s.model(store.DASDBSNSM)
	if err != nil {
		return p, w, err
	}
	for _, rel := range dnsm.Sizes().Relations {
		r := costmodel.Rel{PerObject: rel.TuplesPerObject, K: rel.K, P: rel.P, M: float64(rel.M)}
		switch trimPrefix(rel.Name) {
		case "Station":
			p.DNSMStation = r
		case "Platform":
			p.DNSMPlatform = r
		case "Connection":
			p.DNSMConnection = r
		case "Sightseeing":
			p.DNSMSightseeing = r
		}
	}
	return p, w, nil
}

// Table3Paper returns the analytical estimates under the paper's published
// layout constants.
func (s *Suite) Table3Paper() []costmodel.QueryEstimates {
	return costmodel.EstimateAll(costmodel.PaperParams(), costmodel.PaperWorkload())
}

// Table3Derived returns the analytical estimates under the layout
// constants measured from our own loaded databases.
func (s *Suite) Table3Derived() ([]costmodel.QueryEstimates, error) {
	p, w, err := s.DerivedParams()
	if err != nil {
		return nil, err
	}
	return costmodel.EstimateAll(p, w), nil
}

// RenderTable3 renders one block of Table 3.
func RenderTable3(title string, rows []costmodel.QueryEstimates) *report.Table {
	t := &report.Table{
		Title:  title,
		Header: append([]string{"MODEL"}, queryLabels...),
		Notes: []string{
			"queries 1a-1c per object, 2a-3b per loop; all estimates best case (large cache, Eq. 8 for loop queries)",
		},
	}
	for _, r := range rows {
		t.AddRow(r.Model.String(),
			report.Num(r.Q1a), report.Num(r.Q1b), report.Num(r.Q1c),
			report.Num(r.Q2a), report.Num(r.Q2b), report.Num(r.Q3a), report.Num(r.Q3b))
	}
	return t
}

// measuredTable renders one Tables-4/5/6 style grid for the chosen metric.
func (m *Matrix) measuredTable(title string, metric func(Measured) float64) *report.Table {
	t := &report.Table{
		Title:  title,
		Header: append([]string{"MODEL"}, queryLabels...),
	}
	for _, model := range m.Models() {
		cells := []string{model}
		for _, q := range queryLabels {
			r, ok := m.Get(model, q)
			if !ok || !r.Supported {
				cells = append(cells, "-")
				continue
			}
			cells = append(cells, report.Num(metric(r)))
		}
		t.AddRow(cells...)
	}
	return t
}

// Table4 is the measured number of physical page I/Os X_{I/O pages}.
func (m *Matrix) Table4() *report.Table {
	return m.measuredTable("Table 4: measured physical page I/Os (pages per object/loop)",
		func(r Measured) float64 { return r.Pages })
}

// Table5 is the measured number of I/O calls X_{I/O calls}.
func (m *Matrix) Table5() *report.Table {
	return m.measuredTable("Table 5: measured I/O calls (calls per object/loop)",
		func(r Measured) float64 { return r.Calls })
}

// Table6 is the measured number of buffer fixes (the paper's CPU-load
// indicator).
func (m *Matrix) Table6() *report.Table {
	return m.measuredTable("Table 6: measured buffer fixes (fixes per object/loop)",
		func(r Measured) float64 { return r.Fixes })
}

// RankRow is one line of Table 8: per-cost-factor symbols from best (++)
// to worst (--), derived from the measured matrix like the paper's
// qualitative judgement.
type RankRow struct {
	Model     string
	PagesRank int
	CallsRank int
	FixesRank int
	JoinRank  int
	Pages     float64
	Calls     float64
	Fixes     float64
}

// joinRanks encodes the paper's qualitative join-cost judgement (§6): the
// direct models need no joins at all; DASDBS-NSM joins with address
// support; pure NSM "suffers from these joins".
var joinRanks = map[string]int{
	"DSM": 1, "DASDBS-DSM": 1, "DASDBS-NSM": 3, "NSM+index": 4, "NSM": 5,
}

// Table8 computes the overall evaluation from the measured matrix. Models
// are ranked per cost factor by the sum of their per-unit costs over
// queries 1b, 1c, 2b and 3b — one representative of each access pattern,
// including the value query that drives the paper's "with NSM ... small
// queries [are] inefficient" judgement.
func (m *Matrix) Table8() ([]RankRow, error) {
	models := m.Models()
	rows := make([]RankRow, 0, len(models))
	for _, model := range models {
		var r RankRow
		r.Model = model
		r.JoinRank = joinRanks[model]
		for _, q := range []string{"1b", "1c", "2b", "3b"} {
			c, ok := m.Get(model, q)
			if !ok || !c.Supported {
				return nil, fmt.Errorf("experiments: missing cell %s/%s", model, q)
			}
			r.Pages += c.Pages
			r.Calls += c.Calls
			r.Fixes += c.Fixes
		}
		rows = append(rows, r)
	}
	rank := func(get func(RankRow) float64, set func(*RankRow, int)) {
		idx := make([]int, len(rows))
		for i := range idx {
			idx[i] = i
		}
		sort.SliceStable(idx, func(a, b int) bool { return get(rows[idx[a]]) < get(rows[idx[b]]) })
		for pos, i := range idx {
			set(&rows[i], pos+1)
		}
	}
	rank(func(r RankRow) float64 { return r.Pages }, func(r *RankRow, v int) { r.PagesRank = v })
	rank(func(r RankRow) float64 { return r.Calls }, func(r *RankRow, v int) { r.CallsRank = v })
	rank(func(r RankRow) float64 { return r.Fixes }, func(r *RankRow, v int) { r.FixesRank = v })
	return rows, nil
}

// symbol maps a 1-based rank among n models to the paper's ++/--
// notation.
func symbol(rank, n int) string {
	if n <= 1 {
		return "++"
	}
	switch {
	case rank == 1:
		return "++"
	case rank == 2:
		return "+"
	case rank == n:
		return "--"
	case rank == n-1:
		return "-"
	default:
		return "o"
	}
}

// RenderTable8 renders the overall evaluation.
func RenderTable8(rows []RankRow) *report.Table {
	t := &report.Table{
		Title:  "Table 8: overall evaluation of all storage models (derived from measurements)",
		Header: []string{"MODEL", "buf fixes", "C_join", "I/O calls", "I/O pages", "overall"},
		Notes: []string{
			"symbols rank the models per cost factor from best (++) to worst (--), as in the paper;",
			"C_join is the paper's qualitative judgement (joins were excluded from measurements there too)",
		},
	}
	n := len(rows)
	type scored struct {
		row   RankRow
		total int
	}
	var sc []scored
	for _, r := range rows {
		sc = append(sc, scored{r, r.PagesRank + r.CallsRank + r.FixesRank + r.JoinRank})
	}
	// Ties break on the join/processor cost: the paper's C_total folds in
	// the join effort it calls "unacceptably large with NSM", preferring
	// the address-supported joins of DASDBS-NSM.
	sort.SliceStable(sc, func(a, b int) bool {
		if sc[a].total != sc[b].total {
			return sc[a].total < sc[b].total
		}
		return sc[a].row.JoinRank < sc[b].row.JoinRank
	})
	for pos, s := range sc {
		t.AddRow(s.row.Model,
			symbol(s.row.FixesRank, n), symbol(s.row.JoinRank, n),
			symbol(s.row.CallsRank, n), symbol(s.row.PagesRank, n),
			fmt.Sprintf("#%d", pos+1))
	}
	return t
}

// SkewRow is one line of Table 7: query 2 costs under the default and the
// skewed extension.
type SkewRow struct {
	Model      string
	DefaultQ2a float64
	DefaultQ2b float64
	SkewQ2a    float64
	SkewQ2b    float64
}

// Table7 compares the default extension with the §5.5 data-skew extension
// (probability 20%, fanout 8) on the navigation queries. The default
// columns come from the (already parallel) matrix; the per-model skew
// runs fan out over the suite's worker pool.
func (s *Suite) Table7() ([]SkewRow, error) {
	if s.table7 != nil {
		return s.table7, nil
	}
	m, err := s.Matrix()
	if err != nil {
		return nil, err
	}
	opts, err := s.storeOptions()
	if err != nil {
		return nil, err
	}
	skewGen := s.cfg.Gen.Skewed()
	var kinds []store.Kind
	for _, k := range store.AllKinds() {
		if k != store.NSM { // the paper drops pure NSM after §5.2
			kinds = append(kinds, k)
		}
	}
	rows := make([]SkewRow, len(kinds))
	err = fanout.Run(len(kinds), s.workers(), func(i int) error {
		k := kinds[i]
		def2a, _ := m.Get(k.String(), "2a")
		def2b, _ := m.Get(k.String(), "2b")
		skew, err := s.runQueriesOn(k, opts, skewGen, s.cfg.Workload, cobench.Q2a, cobench.Q2b)
		if err != nil {
			return err
		}
		rows[i] = SkewRow{
			Model:      k.String(),
			DefaultQ2a: def2a.Pages,
			DefaultQ2b: def2b.Pages,
			SkewQ2a:    skew[cobench.Q2a].Pages,
			SkewQ2b:    skew[cobench.Q2b].Pages,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	s.table7 = rows
	return rows, nil
}

// RenderTable7 renders the data-skew comparison.
func RenderTable7(rows []SkewRow) *report.Table {
	t := &report.Table{
		Title:  "Table 7: query 2 under data skew (prob 0.2, fanout 8) vs default extension",
		Header: []string{"MODEL", "2a default", "2b default", "2a skew", "2b skew"},
		Notes: []string{
			"means are unchanged by construction; the paper found 'the overall figures are similar to those of the original benchmark'",
		},
	}
	for _, r := range rows {
		t.AddRow(r.Model, report.Num(r.DefaultQ2a), report.Num(r.DefaultQ2b),
			report.Num(r.SkewQ2a), report.Num(r.SkewQ2b))
	}
	return t
}
