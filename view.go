package complexobj

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"complexobj/cobench"
	"complexobj/internal/disk"
	"complexobj/internal/store"
)

// View is a request-scoped handle on a Base: an independent database view
// (copy-on-write overlay, private buffer pool, private I/O counters) that
// costs almost nothing to open and nothing to reuse. Views are how a
// long-lived process serves concurrent traffic from one loaded database —
// each in-flight request runs on its own view, measures its own counters,
// and the shared base is never copied. A View is not safe for concurrent
// use; run one request on it at a time.
//
// Views come from Base.NewView (standalone; Close destroys it) or from a
// ViewPool (Close recycles it back into the pool).
type View struct {
	kind ModelKind
	sv   *store.View
	pool *ViewPool
	// closed flips on Close, making a double Close an error instead of a
	// double release. A View is one lease: pools hand every acquisition a
	// fresh wrapper, so a stale closed handle can never reach the engine
	// of a later lease.
	closed atomic.Bool
	// damaged flips on Quarantine: Close then destroys the engine
	// instead of recycling it into the pool.
	damaged atomic.Bool
}

// NewView opens a fresh standalone view of the base, with a cold cache
// and zeroed counters. The options follow the same rules as Base.Open.
func (b *Base) NewView(opts Options) (*View, error) {
	so, err := b.viewOptions(opts)
	if err != nil {
		return nil, err
	}
	sv, err := b.base.NewView(so)
	if err != nil {
		return nil, err
	}
	return &View{kind: b.kind, sv: sv}, nil
}

// viewOptions validates facade options for opening views of the base.
func (b *Base) viewOptions(opts Options) (store.Options, error) {
	so, err := opts.internal()
	if err != nil {
		return store.Options{}, err
	}
	if so.Backend.Kind != disk.MemArena && so.Backend.Kind != disk.COWArena {
		return store.Options{}, fmt.Errorf("complexobj: backend %q cannot open a shared base (views are copy-on-write)", opts.Backend)
	}
	return so, nil
}

// Kind returns the storage model the view executes.
func (v *View) Kind() ModelKind { return v.kind }

// NumObjects returns the number of objects in the base extension (0
// after Close).
func (v *View) NumObjects() int {
	if v.closed.Load() {
		return 0
	}
	return v.sv.NumObjects()
}

// Run executes one benchmark query on the view and returns its
// measurement. This is the same execution path as DB.Run — the same
// runner over the same interface — so a view measures bit-identically to
// a freshly loaded batch database. Running on a closed view is an error:
// for a pooled view the engine may already be serving another lease.
func (v *View) Run(q cobench.Query, w cobench.Workload) (QueryResult, error) {
	return v.RunContext(nil, q, w)
}

// RunContext is Run bounded by ctx: the query checks the context between
// object visits and stops with its error (wrapping context.DeadlineExceeded
// or context.Canceled), so a deadlined request frees its view promptly
// instead of finishing a scan nobody waits for. An interrupted run
// reports no counters at all — never a truncated measurement. A nil ctx
// never interrupts.
func (v *View) RunContext(ctx context.Context, q cobench.Query, w cobench.Workload) (QueryResult, error) {
	if v.closed.Load() {
		return QueryResult{}, fmt.Errorf("complexobj: Run on a closed view")
	}
	return runQuery(ctx, v.kind, v.sv, q, w)
}

// Quarantine marks the view damaged — a request panicked on it, or an
// engine-level fault (a permanently poisoned page) makes its reuse
// unsafe. Close then destroys the engine instead of recycling it into
// the pool, and the pool counts it as Quarantined; for a standalone view
// Quarantine changes nothing (Close destroys it anyway).
func (v *View) Quarantine() { v.damaged.Store(true) }

// Stats returns the view's private accumulated I/O counters (zero after
// Close — the engine may already belong to another lease).
func (v *View) Stats() Stats {
	if v.closed.Load() {
		return Stats{}
	}
	s := v.sv.Engine().Stats()
	return Stats{
		PagesRead:    s.PagesRead,
		PagesWritten: s.PagesWritten,
		ReadCalls:    s.ReadCalls,
		WriteCalls:   s.WriteCalls,
		BufferFixes:  s.Fixes,
		BufferHits:   s.Hits,
	}
}

// ViewMemStats describes what a view costs beyond its shared base.
type ViewMemStats struct {
	// BaseBytes is the size of the shared arena (paid once per base, not
	// per view).
	BaseBytes int
	// OverlayPages is the number of base pages this view has privately
	// materialized by writing; OverlayBytes is their memory.
	OverlayPages int
	OverlayBytes int
}

// MemStats reports the view's private memory split (the buffer pool, of
// capacity Options.BufferPages, comes on top; zero after Close).
func (v *View) MemStats() ViewMemStats {
	if v.closed.Load() {
		return ViewMemStats{}
	}
	cs, _ := disk.COWStatsOf(v.sv.Engine().Dev.Backend())
	return ViewMemStats{BaseBytes: cs.BaseBytes, OverlayPages: cs.OverlayPages, OverlayBytes: cs.OverlayBytes}
}

// Close finishes the request the view was serving. A pooled view is
// recycled back into its pool (overlay dropped, pool emptied, counters
// zeroed — the next request finds it indistinguishable from fresh); a
// standalone view releases its engine.
func (v *View) Close() error {
	if !v.closed.CompareAndSwap(false, true) {
		return fmt.Errorf("complexobj: view closed twice")
	}
	if v.pool != nil {
		return v.pool.release(v)
	}
	return v.sv.Close()
}

// ErrPoolClosed reports Acquire on a closed ViewPool.
var ErrPoolClosed = errors.New("complexobj: view pool is closed")

// ViewPool serves request-scoped views of one Base and recycles them:
// releasing a view resets it to the pristine base state (reusing its
// engine, buffer-frame free lists and overlay index) instead of tearing
// it down, so a steady-state server allocates next to nothing per
// request. The pool also bounds concurrency — at most MaxViews views are
// out at once, further Acquires block — which caps the server's memory at
// MaxViews × (buffer pool + dirtied overlay pages) over the shared base.
//
// The pool does not own its Base: close the pool first, the base after
// (views in flight keep the base arena alive either way, but opening new
// views from a closed base is a bug).
type ViewPool struct {
	base *Base
	opts Options
	max  int
	sem  chan struct{}
	done chan struct{}

	mu sync.Mutex
	// idle holds the recycled engines. Acquire wraps each handout in a
	// fresh *View, so a stale handle from a previous lease — including a
	// duplicate Close racing a later request — can never touch the engine
	// its new holder is using; the one-word wrapper is the entire
	// per-request allocation.
	idle        []*store.View
	closed      bool
	created     int64
	reused      int64
	destroyed   int64
	recycled    int64
	rebuilt     int64
	quarantined int64
	stale       int64
}

// closeAll tears down retired views outside the pool lock.
func closeAll(svs []*store.View) {
	for _, sv := range svs {
		sv.Close()
	}
}

// NewViewPool builds a pool over base. maxViews bounds the views alive at
// once (and therefore the concurrent requests served from this base);
// maxViews <= 0 defaults to 8. The options apply to every view and follow
// the same rules as Base.Open.
func NewViewPool(base *Base, opts Options, maxViews int) (*ViewPool, error) {
	if _, err := base.viewOptions(opts); err != nil {
		return nil, err
	}
	if maxViews <= 0 {
		maxViews = 8
	}
	return &ViewPool{
		base: base,
		opts: opts,
		max:  maxViews,
		sem:  make(chan struct{}, maxViews),
		done: make(chan struct{}),
	}, nil
}

// Base returns the pool's underlying base.
func (p *ViewPool) Base() *Base { return p.base }

// Acquire returns a view ready for one request, blocking while MaxViews
// views are already out. Close the view to return it.
func (p *ViewPool) Acquire() (*View, error) {
	return p.AcquireContext(context.Background())
}

// AcquireContext is Acquire, giving up when ctx is done (so e.g. an HTTP
// request canceled while waiting for a view stops waiting).
func (p *ViewPool) AcquireContext(ctx context.Context) (*View, error) {
	select {
	case p.sem <- struct{}{}:
	case <-p.done:
		return nil, ErrPoolClosed
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		<-p.sem
		return nil, ErrPoolClosed
	}
	gen := p.base.base.Gen()
	var stale []*store.View
	for len(p.idle) > 0 {
		n := len(p.idle)
		sv := p.idle[n-1]
		p.idle = p.idle[:n-1]
		// An idle view left behind by a commit reads a superseded
		// generation; retire it and keep looking.
		if sv.Gen() != gen {
			stale = append(stale, sv)
			p.stale++
			p.destroyed++
			continue
		}
		p.reused++
		p.mu.Unlock()
		closeAll(stale)
		return &View{kind: p.base.kind, sv: sv, pool: p}, nil
	}
	p.mu.Unlock()
	closeAll(stale)
	v, err := p.base.NewView(p.opts)
	if err != nil {
		<-p.sem
		return nil, err
	}
	v.pool = p
	p.mu.Lock()
	p.created++
	p.mu.Unlock()
	return v, nil
}

// release recycles v back into the pool (or destroys it if it was
// quarantined, recycling failed or the pool has closed) and frees its
// concurrency slot.
func (p *ViewPool) release(v *View) error {
	defer func() { <-p.sem }()
	if v.damaged.Load() {
		p.mu.Lock()
		p.quarantined++
		p.destroyed++
		p.mu.Unlock()
		return v.sv.Close()
	}
	rebuilt, err := v.sv.Recycle()
	p.mu.Lock()
	if err == nil {
		p.recycled++
		if rebuilt {
			p.rebuilt++
		}
	}
	// A recycled view resets to the generation it opened against; if the
	// base has been promoted past it (this view committed, or another one
	// did), keeping it would serve superseded state. Retire it — the next
	// Acquire builds a view of the current generation.
	if err == nil && v.sv.Gen() != p.base.base.Gen() {
		p.stale++
		p.destroyed++
		p.mu.Unlock()
		return v.sv.Close()
	}
	if err == nil && !p.closed {
		p.idle = append(p.idle, v.sv)
		p.mu.Unlock()
		return nil
	}
	p.destroyed++
	p.mu.Unlock()
	if cerr := v.sv.Close(); err == nil {
		err = cerr
	}
	return err
}

// ViewPoolStats describes pool effectiveness over the pool's lifetime:
// Reused counts acquisitions served by a recycled view (the steady
// state), Created the views built from the base, Recycled the successful
// view resets, Rebuilt the subset of those that had to restore directory
// metadata after a mutating request, Destroyed the views torn down
// (quarantine, recycle failure or pool shutdown), Quarantined the subset
// of Destroyed retired via View.Quarantine (panicked request, permanent
// engine fault), Stale the subset retired because a commit promoted the
// base past their generation.
type ViewPoolStats struct {
	MaxViews    int
	InUse       int
	Idle        int
	Created     int64
	Reused      int64
	Destroyed   int64
	Recycled    int64
	Rebuilt     int64
	Quarantined int64
	Stale       int64
}

// Stats returns a snapshot of the pool counters.
func (p *ViewPool) Stats() ViewPoolStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return ViewPoolStats{
		MaxViews:    p.max,
		InUse:       len(p.sem),
		Idle:        len(p.idle),
		Created:     p.created,
		Reused:      p.reused,
		Destroyed:   p.destroyed,
		Recycled:    p.recycled,
		Rebuilt:     p.rebuilt,
		Quarantined: p.quarantined,
		Stale:       p.stale,
	}
}

// Close marks the pool closed (unblocking and failing pending Acquires)
// and destroys the idle views. Views still in flight are destroyed as
// they are released.
func (p *ViewPool) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	idle := p.idle
	p.idle = nil
	p.mu.Unlock()
	close(p.done)
	var first error
	for _, sv := range idle {
		if err := sv.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
