package complexobj

import (
	"errors"
	"path/filepath"
	"testing"

	"complexobj/cobench"
)

// TestOpenPersistentRoundTrip pins the persistent-database lifecycle: a
// database created in a directory, loaded and closed reopens with its
// full contents, a cold cache and zeroed counters — and without any
// .codb export in between.
func TestOpenPersistentRoundTrip(t *testing.T) {
	stations, err := cobench.Generate(cobench.DefaultConfig().WithN(60))
	if err != nil {
		t.Fatal(err)
	}
	for _, kind := range AllModels() {
		t.Run(kind.String(), func(t *testing.T) {
			dir := t.TempDir()
			db, err := OpenPersistent(dir, kind, Options{BufferPages: 128})
			if err != nil {
				t.Fatal(err)
			}
			if err := db.Load(stations); err != nil {
				t.Fatal(err)
			}
			if err := db.UpdateObject(7, func(s *cobench.Station) error {
				s.Name = "persisted"
				return nil
			}); err != nil {
				t.Fatal(err)
			}
			if err := db.Close(); err != nil {
				t.Fatal(err)
			}

			re, err := OpenPersistent(dir, kind, Options{BufferPages: 128})
			if err != nil {
				t.Fatalf("reopen: %v", err)
			}
			defer re.Close()
			if re.NumObjects() != len(stations) {
				t.Fatalf("reopened with %d objects, want %d", re.NumObjects(), len(stations))
			}
			if s := re.Stats(); s.Calls() != 0 || s.BufferFixes != 0 {
				t.Fatalf("reopened counters not zero: %+v", s)
			}
			got, err := re.FetchByKey(stations[7].Key)
			if err != nil {
				t.Fatal(err)
			}
			if got.Name != "persisted" {
				t.Fatalf("update lost across reopen: %q", got.Name)
			}

			// A conflicting page size is a configuration error, not silent
			// re-creation.
			if _, err := OpenPersistent(dir, kind, Options{PageSize: 4096}); err == nil {
				t.Fatal("conflicting page size accepted")
			}
			// Persistence implies the file backend; everything else is
			// rejected up front.
			if _, err := OpenPersistent(dir, kind, Options{Backend: "mem"}); err == nil {
				t.Fatal("mem backend accepted for a persistent database")
			}
		})
	}
}

// TestOpenPersistentFresh: an empty directory yields an empty database,
// usable immediately.
func TestOpenPersistentFresh(t *testing.T) {
	db, err := OpenPersistent(t.TempDir(), NSM, Options{BufferPages: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if db.NumObjects() != 0 {
		t.Fatalf("fresh persistent database holds %d objects", db.NumObjects())
	}
}

// seedSnapshot writes a .codb seed for one model and returns its path
// plus the generated extension.
func seedSnapshot(t *testing.T, kind ModelKind, n int) (string, []*cobench.Station) {
	t.Helper()
	cfg := cobench.DefaultConfig().WithN(n)
	stations, err := cobench.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	db, err := Open(kind, Options{BufferPages: 128})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if err := db.Load(stations); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "seed.codb")
	if err := WriteSnapshot(path, cfg, db); err != nil {
		t.Fatal(err)
	}
	return path, stations
}

// TestCommitLogLifecycle drives the durable serving lifecycle end to end:
// seed snapshot → commit log → durable commits → restart replays them →
// checkpoint compacts the log → restart from the sidecar alone.
func TestCommitLogLifecycle(t *testing.T) {
	const kind = DASDBSNSM
	snap, stations := seedSnapshot(t, kind, 40)
	walDir := t.TempDir()

	clog, err := OpenCommitLog(walDir)
	if err != nil {
		t.Fatal(err)
	}
	base, err := clog.OpenBase(kind, snap)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := clog.OpenBase(kind, snap); err == nil {
		t.Fatal("duplicate model registration accepted")
	}

	// Commits before Recover must fail: the log is not armed yet.
	early, err := base.NewView(Options{BufferPages: 128})
	if err != nil {
		t.Fatal(err)
	}
	if err := early.sv.UpdateRoots([]int32{3}, func(i int32, r *cobench.RootRecord) {
		r.Name = "too early"
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := early.Commit(clog); !errors.Is(err, ErrNotRecovered) {
		t.Fatalf("commit before Recover: %v, want ErrNotRecovered", err)
	}
	early.Close()

	if n, err := clog.Recover(); err != nil || n != 0 {
		t.Fatalf("fresh recover: %d, %v", n, err)
	}
	if _, err := clog.Recover(); err == nil {
		t.Fatal("double Recover accepted")
	}

	commit := func(name string) CommitInfo {
		t.Helper()
		v, err := base.NewView(Options{BufferPages: 128})
		if err != nil {
			t.Fatal(err)
		}
		defer v.Close()
		if err := v.sv.UpdateRoots([]int32{5, 9}, func(i int32, r *cobench.RootRecord) {
			r.Name = name
		}); err != nil {
			t.Fatal(err)
		}
		info, err := v.Commit(clog)
		if err != nil {
			t.Fatal(err)
		}
		return info
	}
	if info := commit("first"); info.Seq != 1 || info.Gen != 1 || info.Pages == 0 {
		t.Fatalf("first commit: %+v", info)
	}
	if info := commit("second"); info.Seq != 2 || info.Gen != 2 {
		t.Fatalf("second commit: %+v", info)
	}
	s := clog.Stats()
	if s.Commits != 2 || s.LastSeq != 2 || s.SizeBytes == 0 || s.Syncs == 0 {
		t.Fatalf("stats after two commits: %+v", s)
	}
	if err := clog.Close(); err != nil {
		t.Fatal(err)
	}
	if err := base.Close(); err != nil {
		t.Fatal(err)
	}

	// "Crash" restart: no checkpoint ran, so the base re-seeds from the
	// snapshot and both commits replay from the log.
	clog2, err := OpenCommitLog(walDir)
	if err != nil {
		t.Fatal(err)
	}
	base2, err := clog2.OpenBase(kind, snap)
	if err != nil {
		t.Fatal(err)
	}
	if n, err := clog2.Recover(); err != nil || n != 2 {
		t.Fatalf("recover replayed %d, %v; want 2", n, err)
	}
	if got := clog2.Stats(); got.Recovered != 2 || got.LastSeq != 2 {
		t.Fatalf("post-recovery stats: %+v", got)
	}
	if base2.Gen() != 2 {
		t.Fatalf("recovered base at generation %d", base2.Gen())
	}
	v, err := base2.NewView(Options{BufferPages: 128})
	if err != nil {
		t.Fatal(err)
	}
	got, err := v.sv.FetchByKey(stations[9].Key)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != "second" {
		t.Fatalf("recovered view reads %q, want the last committed name", got.Name)
	}
	v.Close()

	// Checkpoint: sidecars written, log truncated, sequence preserved.
	if err := clog2.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if s := clog2.Stats(); s.SizeBytes != 0 || s.Checkpoints != 1 {
		t.Fatalf("post-checkpoint stats: %+v", s)
	}
	clog2.Close()
	base2.Close()

	// Restart from the checkpoint alone: no seed snapshot needed, nothing
	// to replay, and the next commit continues the sequence.
	clog3, err := OpenCommitLog(walDir)
	if err != nil {
		t.Fatal(err)
	}
	defer clog3.Close()
	base3, err := clog3.OpenBase(kind, "")
	if err != nil {
		t.Fatalf("open from checkpoint: %v", err)
	}
	defer base3.Close()
	if n, err := clog3.Recover(); err != nil || n != 0 {
		t.Fatalf("recover after checkpoint: %d, %v", n, err)
	}
	v3, err := base3.NewView(Options{BufferPages: 128})
	if err != nil {
		t.Fatal(err)
	}
	if got, err := v3.sv.FetchByKey(stations[5].Key); err != nil || got.Name != "second" {
		t.Fatalf("checkpointed state reads %q, %v", got.Name, err)
	}
	if err := v3.sv.UpdateRoots([]int32{1}, func(i int32, r *cobench.RootRecord) {
		r.Name = "after checkpoint"
	}); err != nil {
		t.Fatal(err)
	}
	info, err := v3.Commit(clog3)
	if err != nil {
		t.Fatal(err)
	}
	if info.Seq != 3 {
		t.Fatalf("sequence after checkpoint restart: %d, want 3", info.Seq)
	}
	v3.Close()
}

// TestCommitLogMaybeCheckpoint pins the size-triggered compaction valve.
func TestCommitLogMaybeCheckpoint(t *testing.T) {
	snap, _ := seedSnapshot(t, NSM, 30)
	clog, err := OpenCommitLog(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer clog.Close()
	base, err := clog.OpenBase(NSM, snap)
	if err != nil {
		t.Fatal(err)
	}
	defer base.Close()
	if _, err := clog.Recover(); err != nil {
		t.Fatal(err)
	}
	v, err := base.NewView(Options{BufferPages: 128})
	if err != nil {
		t.Fatal(err)
	}
	defer v.Close()
	if err := v.sv.UpdateRoots([]int32{2}, func(i int32, r *cobench.RootRecord) {
		r.Name = "grow the log"
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := v.Commit(clog); err != nil {
		t.Fatal(err)
	}
	if ran, err := clog.MaybeCheckpoint(1 << 30); err != nil || ran {
		t.Fatalf("huge threshold checkpointed: %v, %v", ran, err)
	}
	if ran, err := clog.MaybeCheckpoint(0); err != nil || ran {
		t.Fatalf("disabled threshold checkpointed: %v, %v", ran, err)
	}
	if ran, err := clog.MaybeCheckpoint(1); err != nil || !ran {
		t.Fatalf("tiny threshold did not checkpoint: %v, %v", ran, err)
	}
	if s := clog.Stats(); s.SizeBytes != 0 || s.Checkpoints != 1 {
		t.Fatalf("stats after MaybeCheckpoint: %+v", s)
	}
}

// TestViewPoolRetiresStaleViews: once a commit promotes the base, views
// of the superseded generation — idle or in flight — are destroyed
// instead of recycled, and fresh acquisitions read the new generation.
func TestViewPoolRetiresStaleViews(t *testing.T) {
	db := smallDB(t, DASDBSNSM)
	defer db.Close()
	base, err := db.Freeze()
	if err != nil {
		t.Fatal(err)
	}
	defer base.Close()
	pool, err := NewViewPool(base, Options{BufferPages: 128}, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()

	// Hold two views of generation 0, then park one idle.
	a, err := pool.Acquire()
	if err != nil {
		t.Fatal(err)
	}
	b, err := pool.Acquire()
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}

	// Commit through the second view, promoting the base to generation 1.
	if err := b.sv.UpdateRoots([]int32{4}, func(i int32, r *cobench.RootRecord) {
		r.Name = "promoted"
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Commit(nil); err != nil {
		t.Fatal(err)
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}

	// Both the committed view and the parked idle one are stale now; a
	// fresh acquisition must read the promoted generation.
	c, err := pool.Acquire()
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if c.Gen() != 1 {
		t.Fatalf("acquired view at generation %d, want 1", c.Gen())
	}
	if got, err := c.sv.FetchByAddress(4); err != nil || got.Name != "promoted" {
		t.Fatalf("stale pool served old state: %q, %v", got.Name, err)
	}
	s := pool.Stats()
	if s.Stale != 2 {
		t.Fatalf("stale retirements: %+v, want Stale=2", s)
	}
	if s.Idle != 0 {
		t.Fatalf("stale view left idle: %+v", s)
	}
}
