#!/usr/bin/env bash
# Multi-process scale-out benchmark: aggregate read throughput of the
# sharded deployment (N coserve backends behind coshard) against a single
# coserve over the unsplit snapshot, with the aggregate /stats counter
# cells required to stay bit-identical across topologies.
#
# Methodology. The paper's cost model is physical device I/O, so the
# bench makes wall time proportional to counted I/O: every node arms the
# fault injector's latency clause (-faults latency=DELAY), which sleeps
# once per device call and touches no counter. Every node — single or
# backend — runs the identical per-node configuration: GOMAXPROCS=1, the
# same injected device latency, and the same admission envelope
# (-max-inflight CAP), which is the per-node capacity sharding
# aggregates. The closed-loop client count scales with the deployment's
# aggregate capacity (CAP x nodes), the standard cluster-scaling drive.
# Shards are split by measured I/O share (cogen -strategy explicit:...,
# from the per-model readCalls+writeCalls of a calibration run): model
# costs differ by factors, so hash/range splits would measure the
# imbalance, not the scaling.
#
# Writes BENCH_10.json (repo root by default; override with $OUT).
set -euo pipefail

cd "$(dirname "$0")/.."
OUT=${OUT:-BENCH_10.json}
WORK=${WORK:-$(mktemp -d /tmp/multinode-bench.XXXXXX)}
N=${N:-300}          # generator stations
LOOPS=${LOOPS:-60}   # query loop count
REPEAT=${REPEAT:-6}  # matrix passes per drive
CAP=${CAP:-6}        # per-node admission envelope (-max-inflight)
DELAY=${DELAY:-200us} # injected device latency per call
FAULTS="latency=${DELAY}"
# Service-share-balanced splits, calibrated from the /stats meanMicros
# of a latency-injected single-node run at these parameters:
# DSM 40.0%, DASDBS-DSM 28.3%, NSM 16.1%, DASDBS-NSM 8.1%, NSM+index 7.5%.
SPLIT2="explicit:dsm,dnsm/ddsm,nsm,nsmx"  # 48.1% / 51.9% -> ideal 1.93x
SPLIT4="explicit:dsm/ddsm/nsm,nsmx/dnsm"  # 40.0/28.3/23.6/8.1 -> ideal 2.5x
# (model granularity caps N=4: the largest model alone is 40% of the work)

PIDS=()
cleanup() {
  for pid in "${PIDS[@]:-}"; do kill "$pid" 2>/dev/null || true; done
  wait 2>/dev/null || true
}
trap cleanup EXIT

echo "== build"
go build -o "$WORK/coserve" ./cmd/coserve
go build -o "$WORK/coshard" ./cmd/coshard
go build -o "$WORK/cobench" ./cmd/cobench

echo "== snapshots"
mkdir -p "$WORK/single" "$WORK/n2" "$WORK/n4"
go run ./cmd/cogen -n "$N" -db "$WORK/single/bench.codb" >/dev/null
go run ./cmd/cogen -n "$N" -db "$WORK/n2/bench.codb" -split 2 -strategy "$SPLIT2" >/dev/null
go run ./cmd/cogen -n "$N" -db "$WORK/n4/bench.codb" -split 4 -strategy "$SPLIT4" >/dev/null

wait_health() {
  for _ in $(seq 1 100); do
    curl -fs "http://127.0.0.1:$1/healthz" >/dev/null 2>&1 && return 0
    sleep 0.1
  done
  echo "port $1 never became healthy" >&2
  return 1
}

start_backend() { # port, extra args...
  local port=$1; shift
  GOMAXPROCS=1 "$WORK/coserve" -addr "127.0.0.1:$port" -max-inflight "$CAP" \
    -faults "$FAULTS" "$@" &> "$WORK/serve-$port.log" &
  PIDS+=($!)
}

drive() { # url, clients, report
  "$WORK/cobench" -n "$N" -loops "$LOOPS" -serve-url "$1" -clients "$2" \
    -repeat "$REPEAT" -report "$3" > "$4" 2> "$WORK/drive.log"
}

echo "== single node (cap $CAP, 1 core)"
start_backend 8077 -db "$WORK/single/bench.codb"
wait_health 8077
drive http://127.0.0.1:8077 "$CAP" "$WORK/report-single.json" "$WORK/table-single.txt"
curl -fs http://127.0.0.1:8077/stats > "$WORK/stats-single.json"
cleanup; PIDS=()

run_cluster() { # n, mapdir, routerport, baseport
  local n=$1 dir=$2 rport=$3 base=$4 backends=""
  for i in $(seq 0 $((n - 1))); do
    start_backend $((base + i)) -shard-map "$dir/bench.shards.json" -shards "$i"
    backends+="${backends:+,}http://127.0.0.1:$((base + i))"
  done
  for i in $(seq 0 $((n - 1))); do wait_health $((base + i)); done
  "$WORK/coshard" -shard-map "$dir/bench.shards.json" -backends "$backends" \
    -addr "127.0.0.1:$rport" &> "$WORK/coshard-$rport.log" &
  PIDS+=($!)
  wait_health "$rport"
  drive "http://127.0.0.1:$rport" $((CAP * n)) "$WORK/report-n$n.json" "$WORK/table-n$n.txt"
  curl -fs "http://127.0.0.1:$rport/stats" > "$WORK/stats-n$n.json"
  curl -fs "http://127.0.0.1:$rport/metrics" > "$WORK/metrics-n$n.txt"
  cleanup; PIDS=()
}

echo "== N=2 (2 backends + router, cap $CAP each)"
run_cluster 2 "$WORK/n2" 8070 8081
echo "== N=4 (4 backends + router, cap $CAP each)"
run_cluster 4 "$WORK/n4" 8071 8083

echo "== verdict"
diff "$WORK/table-single.txt" "$WORK/table-n2.txt"
diff "$WORK/table-single.txt" "$WORK/table-n4.txt"
WORK="$WORK" OUT="$OUT" N="$N" LOOPS="$LOOPS" REPEAT="$REPEAT" CAP="$CAP" DELAY="$DELAY" \
python3 - <<'EOF'
import json, os

work, out = os.environ['WORK'], os.environ['OUT']

def strip(path):
    s = json.load(open(path))
    s.pop('uptimeSeconds', None)
    for c in s['cells']:
        c.pop('meanMicros', None)
        c.pop('maxMicros', None)
    return s

single = strip(f'{work}/stats-single.json')
reports = {1: json.load(open(f'{work}/report-single.json'))}
identical = {}
for n in (2, 4):
    reports[n] = json.load(open(f'{work}/report-n{n}.json'))
    routed = strip(f'{work}/stats-n{n}.json')
    identical[n] = routed == single
    assert identical[n], f'N={n}: aggregate /stats diverge from single node'
    assert not any(c['divergent'] for c in routed['cells']), f'N={n}: divergent cells'
assert single['cells'], 'no cells measured'

base = reports[1]['throughputRPS']
result = {
    'bench': 'scale-out serving: coshard router over model-granular shards',
    'methodology': (
        'wall time is made proportional to counted physical I/O by arming the '
        'fault injector latency clause (one sleep per device call, counters '
        'untouched); every node runs GOMAXPROCS=1 with the same admission '
        'envelope, and closed-loop clients scale with aggregate capacity '
        '(cap x nodes). Shards are split by measured per-model I/O share '
        '(cogen -strategy explicit:...). The driven tables and the '
        'timing-stripped aggregate /stats cells must be bit-identical across '
        'topologies.'
    ),
    'params': {
        'stations': int(os.environ['N']),
        'loops': int(os.environ['LOOPS']),
        'repeat': int(os.environ['REPEAT']),
        'perNodeMaxInflight': int(os.environ['CAP']),
        'deviceLatency': os.environ['DELAY'],
        'gomaxprocsPerNode': 1,
        'split2': 'DSM,DASDBS-NSM / DASDBS-DSM,NSM,NSM+index',
        'split4': 'DSM / DASDBS-DSM / NSM,NSM+index / DASDBS-NSM',
    },
    'singleNode': {
        'throughputRPS': base,
        'requests': reports[1]['requests'],
        'wallSeconds': reports[1]['wallSeconds'],
        'p50Micros': reports[1]['latency']['p50Micros'],
    },
    'sharded': {},
}
for n in (2, 4):
    r = reports[n]
    result['sharded'][f'n{n}'] = {
        'backends': n,
        'throughputRPS': r['throughputRPS'],
        'requests': r['requests'],
        'wallSeconds': r['wallSeconds'],
        'p50Micros': r['latency']['p50Micros'],
        'speedupVsSingle': round(r['throughputRPS'] / base, 3),
        'statsCellsBitIdentical': identical[n],
    }
s2 = result['sharded']['n2']['speedupVsSingle']
s4 = result['sharded']['n4']['speedupVsSingle']
assert s2 >= 1.7, f'N=2 speedup {s2} < 1.7'
with open(out, 'w') as f:
    json.dump(result, f, indent=2)
    f.write('\n')
print(f"single {base:.1f} req/s | N=2 {result['sharded']['n2']['throughputRPS']:.1f} req/s "
      f"({s2}x) | N=4 {result['sharded']['n4']['throughputRPS']:.1f} req/s ({s4}x)")
print(f'wrote {out}')
EOF
