module complexobj

go 1.24
