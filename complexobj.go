// Package complexobj is a reproduction of Teeuw, Rich, Scholl and Blanken,
// "An Evaluation of Physical Disk I/Os for Complex Object Processing"
// (ICDE 1993): a storage system for hierarchical complex objects (NF²
// nested tuples with object references) implementing the paper's four
// storage models over a simulated DASDBS page engine, together with the
// revised Altair benchmark and the analytical disk-I/O cost model.
//
// This root package is the facade: open a database under one of the
// storage models, load a benchmark extension, run queries, and read the
// exact I/O statistics the paper reports (physical page I/Os, I/O calls,
// buffer fixes). The companion packages provide the building blocks:
//
//   - cobench: the benchmark objects, generator and workload (paper §2);
//   - nf2: the complex object model and binary encoding;
//   - costmodel: the analytical estimators, Equations 2-8 (paper §3-4);
//   - experiments: the harness regenerating every table and figure (§4-5);
//   - report: plain-text/Markdown/CSV rendering for the above.
package complexobj

import (
	"context"
	"errors"
	"fmt"
	"time"

	"complexobj/cobench"
	"complexobj/internal/buffer"
	"complexobj/internal/disk"
	"complexobj/internal/snapshot"
	"complexobj/internal/store"
	"complexobj/internal/workload"
)

// ModelKind selects one of the paper's storage models.
type ModelKind int

const (
	// DSM is the direct storage model (§3.1): whole objects clustered on
	// as few pages as possible, always transferred entirely.
	DSM ModelKind = iota
	// DASDBSDSM adds the DASDBS object header: only the pages actually
	// used by a query are transferred (§3.2).
	DASDBSDSM
	// NSM is the normalized storage model: four flat relations with
	// foreign keys, no index (§3.3).
	NSM
	// NSMIndex is NSM with a zero-cost in-memory index.
	NSMIndex
	// DASDBSNSM is the nested-normalized model with a transformation
	// table (§3.4) — the paper's overall winner.
	DASDBSNSM
)

// String implements fmt.Stringer using the paper's names.
func (k ModelKind) String() string { return k.internal().String() }

func (k ModelKind) internal() store.Kind {
	switch k {
	case DSM:
		return store.DSM
	case DASDBSDSM:
		return store.DASDBSDSM
	case NSM:
		return store.NSM
	case NSMIndex:
		return store.NSMIndex
	case DASDBSNSM:
		return store.DASDBSNSM
	default:
		panic(fmt.Sprintf("complexobj: unknown model kind %d", int(k)))
	}
}

// AllModels lists the storage models in the paper's order.
func AllModels() []ModelKind { return []ModelKind{DSM, DASDBSDSM, NSM, NSMIndex, DASDBSNSM} }

// ModelByName resolves the paper's model names (case-sensitive, as printed
// by String) plus the short aliases dsm, ddsm, nsm, nsmx and dnsm.
func ModelByName(name string) (ModelKind, error) {
	switch name {
	case "DSM", "dsm":
		return DSM, nil
	case "DASDBS-DSM", "ddsm":
		return DASDBSDSM, nil
	case "NSM", "nsm":
		return NSM, nil
	case "NSM+index", "nsmx", "nsm+index":
		return NSMIndex, nil
	case "DASDBS-NSM", "dnsm":
		return DASDBSNSM, nil
	default:
		return 0, fmt.Errorf("complexobj: unknown storage model %q", name)
	}
}

// Options configure the simulated installation. The zero value uses the
// paper's setup: 2048-byte pages, a 1200-page LRU cache, free index I/O,
// page images in memory.
type Options struct {
	// PageSize is the raw page size in bytes (default 2048).
	PageSize int
	// BufferPages is the cache capacity in pages (default 1200).
	BufferPages int
	// ClockReplacement switches the cache from LRU to the Clock policy.
	ClockReplacement bool
	// CountIndexIO equips the NSMIndex model with disk-resident B+-tree
	// indexes whose page accesses are counted, instead of the paper's
	// free in-memory address tables (§5.1). See experiments.IndexAblation
	// for the quantified effect.
	CountIndexIO bool
	// Backend selects where the simulated device keeps its page images:
	// "" or "mem" for the in-memory arena (default), "file" for an arena
	// file in the OS temp directory, "file:DIR" for an arena file in DIR,
	// or "cow" for a copy-on-write overlay arena (reads shared through an
	// immutable base where one exists — see OpenBase and DB.Freeze — and
	// private page copies for writes). The backend changes only where the
	// bytes live; the measured counters are bit-identical across backends.
	Backend string
	// Faults, when non-nil, injects the plan's seeded fault schedule
	// under every engine opened with these options (see ParseFaultPlan).
	// Injected faults surface as errors; the counters of successful
	// operations are never altered — the device counts only completed
	// transfers, so a retried transient fault is invisible in the
	// paper's statistics.
	Faults *FaultPlan
}

func (o Options) internal() (store.Options, error) {
	spec, err := disk.ParseBackendSpec(o.Backend)
	if err != nil {
		return store.Options{}, err
	}
	so := store.Options{
		PageSize:     o.PageSize,
		BufferPages:  o.BufferPages,
		CountIndexIO: o.CountIndexIO,
		Backend:      spec,
		Faults:       o.Faults.injector(),
	}
	if o.ClockReplacement {
		so.Policy = buffer.Clock
	}
	return so, nil
}

// Stats are the I/O counters of a database, the quantities the paper
// evaluates: transferred pages (Table 4), I/O calls (Table 5) and buffer
// fixes (Table 6).
type Stats struct {
	PagesRead    int64
	PagesWritten int64
	ReadCalls    int64
	WriteCalls   int64
	BufferFixes  int64
	BufferHits   int64
}

// Pages returns total transferred pages, the paper's X_{I/O pages}.
func (s Stats) Pages() int64 { return s.PagesRead + s.PagesWritten }

// Calls returns total I/O calls, the paper's X_{I/O calls}.
func (s Stats) Calls() int64 { return s.ReadCalls + s.WriteCalls }

// DB is one database instance: a storage model over its own simulated
// disk and buffer pool. DB is not safe for concurrent use.
type DB struct {
	kind  ModelKind
	model store.Model
	// persistDir, when set, is the directory an OpenPersistent database
	// lives in; Close writes the meta sidecar there before releasing the
	// backend.
	persistDir string
}

// Open creates an empty database under the given storage model and
// backend spec.
func Open(kind ModelKind, opts Options) (*DB, error) {
	so, err := opts.internal()
	if err != nil {
		return nil, err
	}
	m, err := store.New(kind.internal(), so)
	if err != nil {
		return nil, err
	}
	return &DB{kind: kind, model: m}, nil
}

// OpenLoaded creates a database and loads a freshly generated benchmark
// extension into it; statistics start at zero with a cold cache.
func OpenLoaded(kind ModelKind, opts Options, gen cobench.Config) (*DB, error) {
	stations, err := cobench.Generate(gen)
	if err != nil {
		return nil, err
	}
	db, err := Open(kind, opts)
	if err != nil {
		return nil, err
	}
	if err := db.Load(stations); err != nil {
		db.Close()
		return nil, err
	}
	return db, nil
}

// Kind returns the database's storage model.
func (db *DB) Kind() ModelKind { return db.kind }

// Close flushes dirty pages and releases the storage backend (unmapping
// and, for anonymous file arenas, deleting the arena file). A persistent
// database (OpenPersistent) additionally records its directory metadata
// in the meta sidecar so the next open restores it. The database must
// not be used afterwards. Close is a no-op for repeated calls only in
// the sense that errors repeat; call it once.
func (db *DB) Close() error {
	if db.persistDir != "" {
		if err := db.writePersistentMeta(); err != nil {
			db.model.Engine().Close()
			return err
		}
	}
	return db.model.Engine().Close()
}

// WriteSnapshot serializes the loaded databases into a .codb snapshot
// file. The generator configuration is stored alongside so consumers can
// verify which extension the snapshot holds. Each database keeps working
// after the snapshot (dirty pages are flushed as a side effect).
func WriteSnapshot(path string, gen cobench.Config, dbs ...*DB) error {
	models := make([]store.Model, len(dbs))
	for i, db := range dbs {
		models[i] = db.model
	}
	return snapshot.Write(path, gen, models...)
}

// ExtractSnapshot writes a new .codb snapshot at dst holding only the
// selected models of src, copying their meta and arena bytes verbatim —
// the segment-split primitive of the scale-out layer (cogen -split).
// A base opened from the extracted segment is bit-identical to one opened
// from the full snapshot, so handing a shard to another node is a file
// move plus an mmap, never a reload.
func ExtractSnapshot(src, dst string, models []ModelKind) error {
	kinds := make([]store.Kind, len(models))
	for i, m := range models {
		kinds[i] = m.internal()
	}
	return snapshot.Extract(src, dst, kinds)
}

// OpenSnapshot restores one storage model from a .codb snapshot file,
// skipping generation and loading entirely. The restored database starts
// with a cold cache and zeroed counters and measures bit-identically to a
// freshly loaded one.
//
// With Options.Backend "cow" this takes the shared-base fast path: the
// snapshot arena is read once into an immutable base and the database is
// a copy-on-write view of it — equivalent to OpenBase + Base.Open, for
// callers who only need one view.
func OpenSnapshot(path string, kind ModelKind, opts Options) (*DB, error) {
	so, err := opts.internal()
	if err != nil {
		return nil, err
	}
	if so.Backend.Kind == disk.COWArena {
		base, err := OpenBase(path, kind)
		if err != nil {
			return nil, err
		}
		db, err := base.Open(opts)
		// The throwaway Base handle is released either way: the view holds
		// its own reference, so closing the database also drops the arena
		// (unmapping the snapshot region where it was mmap'ed).
		base.Close()
		return db, err
	}
	m, err := snapshot.Open(path, kind.internal(), so)
	if err != nil {
		return nil, err
	}
	return &DB{kind: kind, model: m}, nil
}

// Base is the frozen, immutable state of one loaded database: the device
// arena plus the model's directory metadata. Opening a Base yields an
// independent database that reads through the shared arena and keeps its
// writes in a private copy-on-write overlay, so n open views cost one
// loaded extension plus only the pages each view actually dirties. Views
// are independent databases (each with its own engine and counters) and
// may be used from different goroutines; the Base itself is immutable and
// safe to share.
//
// The base storage is reference-counted: the Base handle holds one
// reference and every open view another, so Close releases the arena —
// including the snapshot file mapping where OpenBase mmap'ed it — only
// after the last view is closed too.
type Base struct {
	kind ModelKind
	base *store.SharedBase
}

// OpenBase lifts one storage model of a .codb snapshot into a shareable
// base, paying for the arena exactly once. Where the platform supports it
// (Linux) the snapshot's arena region is mmap'ed read-only in place
// instead of copied to the heap: views start with near-zero resident
// arena and fault base pages in on demand. The snapshot file must not be
// truncated or rewritten in place while the base or any of its views is
// open (atomically replacing it via WriteSnapshot is safe).
func OpenBase(path string, kind ModelKind) (*Base, error) {
	b, err := snapshot.OpenBase(path, kind.internal())
	if err != nil {
		return nil, err
	}
	return &Base{kind: kind, base: b}, nil
}

// Freeze copies the database's current state into an immutable Base
// (flushing dirty pages as a side effect). The database keeps working;
// the Base never observes later changes.
func (db *DB) Freeze() (*Base, error) {
	b, err := store.Freeze(db.model)
	if err != nil {
		return nil, err
	}
	return &Base{kind: db.kind, base: b}, nil
}

// Kind returns the storage model the base holds.
func (b *Base) Kind() ModelKind { return b.kind }

// NumPages returns the number of frozen pages.
func (b *Base) NumPages() int { return b.base.NumPages() }

// ArenaBytes returns the size of the shared arena in bytes — paid once no
// matter how many views are open.
func (b *Base) ArenaBytes() int { return b.base.ArenaBytes() }

// Mapped reports whether the base arena is an mmap of the snapshot file
// (paged in on demand) rather than a heap copy.
func (b *Base) Mapped() bool { return b.base.Mapped() }

// Close drops the Base handle's reference on the arena. Open views keep
// the arena alive until they are closed; opening new views after Close is
// a bug. Closing a Base is optional for heap-backed bases (the garbage
// collector reclaims them) but required to unmap snapshot-mapped ones
// before the process exits or the snapshot file is rewritten in place.
func (b *Base) Close() error { return b.base.Release() }

// Open builds a database over a fresh copy-on-write view of the base.
// opts.Backend must be empty, "mem" (the parse default, treated the
// same) or "cow" — a view's substrate is by definition the COW overlay,
// so file backends are rejected; opts.CountIndexIO is rejected, like for
// snapshots, because counted indexes are rebuilt per run. The view starts
// with a cold cache and zeroed counters and measures bit-identically to a
// freshly loaded database.
func (b *Base) Open(opts Options) (*DB, error) {
	so, err := b.viewOptions(opts)
	if err != nil {
		return nil, err
	}
	m, err := b.base.Open(so)
	if err != nil {
		return nil, err
	}
	return &DB{kind: b.kind, model: m}, nil
}

// SnapshotInfo describes a .codb snapshot file.
type SnapshotInfo struct {
	// Gen is the generator configuration the snapshot was built from.
	Gen cobench.Config
	// Models lists the stored storage models in file order.
	Models []ModelKind
	// PageSize is the device page size of the stored models.
	PageSize int
}

// StatSnapshot reads a snapshot file's header without restoring anything.
func StatSnapshot(path string) (SnapshotInfo, error) {
	info, err := snapshot.Stat(path)
	if err != nil {
		return SnapshotInfo{}, err
	}
	out := SnapshotInfo{Gen: info.Gen, PageSize: info.PageSize}
	for _, k := range info.Kinds {
		for _, mk := range AllModels() {
			if mk.internal() == k {
				out.Models = append(out.Models, mk)
			}
		}
	}
	return out, nil
}

// Load bulk-loads the given stations. Load may be called once; it leaves
// the cache cold and the statistics zeroed, so subsequent measurements
// exclude load-time I/O (the paper's convention).
func (db *DB) Load(stations []*cobench.Station) error {
	if err := db.model.Load(stations); err != nil {
		return err
	}
	if err := db.model.Engine().ColdCache(); err != nil {
		return err
	}
	db.model.Engine().ResetStats()
	return nil
}

// NumObjects returns the number of loaded objects.
func (db *DB) NumObjects() int { return db.model.NumObjects() }

// FetchByAddress retrieves a whole object by its physical address (the
// paper's query 1a). Pure NSM returns ErrNoAddressAccess.
func (db *DB) FetchByAddress(i int) (*cobench.Station, error) {
	return db.model.FetchByAddress(i)
}

// ErrNoAddressAccess reports that the storage model has no object
// addresses (pure NSM).
var ErrNoAddressAccess = store.ErrNoAddressAccess

// FetchByKey retrieves a whole object by a value selection on its key
// (query 1b): a physical scan of the root relation.
func (db *DB) FetchByKey(key int32) (*cobench.Station, error) {
	return db.model.FetchByKey(key)
}

// ScanAll retrieves every object (query 1c).
func (db *DB) ScanAll(fn func(i int, s *cobench.Station) error) error {
	return db.model.ScanAll(fn)
}

// Navigate reads the object's root record and the station indices its
// connections refer to, transferring only the pages the model needs.
func (db *DB) Navigate(i int) (cobench.RootRecord, []int32, error) {
	return db.model.Navigate(i)
}

// ReadRoot reads just the root record of an object.
func (db *DB) ReadRoot(i int) (cobench.RootRecord, error) {
	return db.model.ReadRoot(i)
}

// UpdateRoots applies mutate to the root records of the given objects and
// writes them back through the model's update mechanism (whole-tuple
// replacement, in-place update, or DASDBS-DSM's write-through
// change-attribute operations).
func (db *DB) UpdateRoots(idxs []int32, mutate func(i int32, r *cobench.RootRecord)) error {
	return db.model.UpdateRoots(idxs, mutate)
}

// UpdateObject applies an arbitrary — possibly structural — mutation to
// one object and stores the result. This goes beyond the paper's
// benchmark (whose updates never change the object structure): objects
// may grow or shrink, direct objects relocate when their page footprint
// changes, and normalized sub-tuples are deleted and reinserted. The
// NoPlatform/NoSeeing counters are refreshed automatically.
func (db *DB) UpdateObject(i int, mutate func(s *cobench.Station) error) error {
	return db.model.UpdateObject(i, mutate)
}

// Flush writes all deferred (dirty) pages back to disk, the paper's
// "database disconnect".
func (db *DB) Flush() error { return db.model.Flush() }

// ColdCache flushes and empties the buffer pool.
func (db *DB) ColdCache() error { return db.model.Engine().ColdCache() }

// Stats returns the accumulated I/O counters.
func (db *DB) Stats() Stats {
	s := db.model.Engine().Stats()
	return Stats{
		PagesRead:    s.PagesRead,
		PagesWritten: s.PagesWritten,
		ReadCalls:    s.ReadCalls,
		WriteCalls:   s.WriteCalls,
		BufferFixes:  s.Fixes,
		BufferHits:   s.Hits,
	}
}

// ResetStats zeroes the I/O counters without touching the cache.
func (db *DB) ResetStats() { db.model.Engine().ResetStats() }

// RelationSize describes the physical layout of one stored relation, in
// the units of the paper's Table 2.
type RelationSize struct {
	Name            string
	TuplesPerObject float64
	Tuples          int
	AvgTupleBytes   float64
	TuplesPerPage   float64 // the paper's k (0 for large tuples)
	PagesPerTuple   float64 // the paper's p (0 for shared pages)
	Pages           int     // the paper's m
}

// Sizes reports the physical layout of every relation of the model.
func (db *DB) Sizes() []RelationSize {
	rep := db.model.Sizes()
	out := make([]RelationSize, 0, len(rep.Relations))
	for _, r := range rep.Relations {
		out = append(out, RelationSize{
			Name:            r.Name,
			TuplesPerObject: r.TuplesPerObject,
			Tuples:          r.Tuples,
			AvgTupleBytes:   r.AvgTupleBytes,
			TuplesPerPage:   r.K,
			PagesPerTuple:   r.P,
			Pages:           r.M,
		})
	}
	return out
}

// QueryResult is the outcome of running one benchmark query, normalized
// per unit (objects for query family 1, loops for families 2 and 3).
type QueryResult struct {
	Query     cobench.Query
	Model     ModelKind
	Supported bool
	Units     float64
	Raw       Stats

	// Normalized counters (per object / per loop).
	Pages        float64
	PagesRead    float64
	PagesWritten float64
	Calls        float64
	ReadCalls    float64
	WriteCalls   float64
	Fixes        float64
	Hits         float64

	// Elapsed is the wall-clock service time of the query execution,
	// measured inside the workload runner. Observability only: it feeds
	// the server's latency histograms and never any paper counter (a
	// served drive reconstructing results from the wire leaves it zero).
	Elapsed time.Duration
}

// Run executes one of the paper's benchmark queries against the database
// and returns its measurement. The cache is reset before the query, as in
// the experiment harness.
func (db *DB) Run(q cobench.Query, w cobench.Workload) (QueryResult, error) {
	return runQuery(nil, db.kind, db.model, q, w)
}

// runQuery is the one execution path every surface shares: batch
// databases (DB.Run), request-scoped views (View.Run/RunContext) and,
// through them, the benchmark server all drive the same workload.Runner
// over the workload.View interface — which is what makes served counters
// bit-identical to the batch tables. A non-nil ctx bounds the query (the
// runner checks it between object visits); a nil ctx never interrupts.
func runQuery(ctx context.Context, kind ModelKind, v workload.View, q cobench.Query, w cobench.Workload) (QueryResult, error) {
	r := workload.NewRunner(v, w)
	if ctx != nil {
		r = r.WithContext(ctx)
	}
	res, err := r.Run(q)
	if err != nil {
		return QueryResult{}, err
	}
	out := QueryResult{
		Query:     res.Query,
		Model:     kind,
		Supported: res.Supported,
		Units:     res.Units,
		Elapsed:   res.Elapsed,
		Raw: Stats{
			PagesRead:    res.Stats.PagesRead,
			PagesWritten: res.Stats.PagesWritten,
			ReadCalls:    res.Stats.ReadCalls,
			WriteCalls:   res.Stats.WriteCalls,
			BufferFixes:  res.Stats.Fixes,
			BufferHits:   res.Stats.Hits,
		},
	}
	if res.Supported {
		n := res.PerUnit()
		out.Pages = n.Pages
		out.PagesRead = n.PagesRead
		out.PagesWritten = n.PagesWritten
		out.Calls = n.Calls
		out.ReadCalls = n.ReadCalls
		out.WriteCalls = n.WriteCalls
		out.Fixes = n.Fixes
		out.Hits = n.Hits
	}
	return out, nil
}

// RunBenchmark executes all seven benchmark queries in paper order.
func (db *DB) RunBenchmark(w cobench.Workload) ([]QueryResult, error) {
	var out []QueryResult
	for _, q := range cobench.AllQueries() {
		r, err := db.Run(q, w)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}

// ErrNotLoaded reports queries against an empty database.
var ErrNotLoaded = store.ErrNotLoaded

// IsNotLoaded reports whether err indicates an empty database.
func IsNotLoaded(err error) bool { return errors.Is(err, store.ErrNotLoaded) }
