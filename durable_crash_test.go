package complexobj

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"complexobj/cobench"
)

// The crash battery below complements the torn/short fault injection in
// internal/wal (which exercises the record codec under a faulty device)
// at the facade level: every way a serving process can die — the log cut
// at an arbitrary byte, a record corrupted in place, the process killed
// right after an fsync — must recover onto exactly one of the committed
// generations, never a torn hybrid, and the log must accept the next
// commit afterwards.

// crashHistory builds a commit-log directory with a known committed
// history: commits 1..n each rename root rootIdx to "crash gen i". It
// returns the seed snapshot path, the wal bytes, the log size after each
// commit (boundaries[i] = bytes holding exactly i commits) and the
// expected root name per generation (expected[0] is the seeded name).
func crashHistory(t *testing.T, kind ModelKind, n int) (snap string, walBytes []byte, boundaries []int64, expected []string) {
	t.Helper()
	const rootIdx = 6
	snap, stations := seedSnapshot(t, kind, 24)
	walDir := t.TempDir()

	clog, err := OpenCommitLog(walDir)
	if err != nil {
		t.Fatal(err)
	}
	base, err := clog.OpenBase(kind, snap)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := clog.Recover(); err != nil {
		t.Fatal(err)
	}
	boundaries = []int64{0}
	expected = []string{stations[rootIdx].Name}
	for i := 1; i <= n; i++ {
		name := fmt.Sprintf("crash gen %d", i)
		v, err := base.NewView(Options{BufferPages: 128})
		if err != nil {
			t.Fatal(err)
		}
		if err := v.sv.UpdateRoots([]int32{rootIdx}, func(_ int32, r *cobench.RootRecord) {
			r.Name = name
		}); err != nil {
			t.Fatal(err)
		}
		if _, err := v.Commit(clog); err != nil {
			t.Fatal(err)
		}
		v.Close()
		boundaries = append(boundaries, clog.Stats().SizeBytes)
		expected = append(expected, name)
	}
	clog.Close()
	base.Close()

	walBytes, err = os.ReadFile(filepath.Join(walDir, WALFileName))
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(walBytes)) != boundaries[n] {
		t.Fatalf("wal file is %d bytes, stats recorded %d", len(walBytes), boundaries[n])
	}
	return snap, walBytes, boundaries, expected
}

// recoverFrom replays a synthesized wal image in a fresh directory and
// returns the number of replayed commits after verifying the base landed
// on that committed generation (root name matches, generation counter
// agrees) and that the log accepts a follow-up commit continuing the
// sequence.
func recoverFrom(t *testing.T, kind ModelKind, snap string, walImage []byte, expected []string) int {
	t.Helper()
	const rootIdx = 6
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, WALFileName), walImage, 0o644); err != nil {
		t.Fatal(err)
	}
	clog, err := OpenCommitLog(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer clog.Close()
	base, err := clog.OpenBase(kind, snap)
	if err != nil {
		t.Fatal(err)
	}
	defer base.Close()
	n, err := clog.Recover()
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	if n < 0 || n >= len(expected) {
		t.Fatalf("recovered %d commits, history holds %d", n, len(expected)-1)
	}
	if got := base.Gen(); got != uint64(n) {
		t.Fatalf("recovered %d commits but base is at generation %d", n, got)
	}
	v, err := base.NewView(Options{BufferPages: 128})
	if err != nil {
		t.Fatal(err)
	}
	defer v.Close()
	got, err := v.sv.FetchByAddress(rootIdx)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != expected[n] {
		t.Fatalf("recovered state reads %q, generation %d committed %q", got.Name, n, expected[n])
	}
	if err := v.sv.UpdateRoots([]int32{rootIdx}, func(_ int32, r *cobench.RootRecord) {
		r.Name = "after recovery"
	}); err != nil {
		t.Fatal(err)
	}
	info, err := v.Commit(clog)
	if err != nil {
		t.Fatalf("commit after recovery: %v", err)
	}
	if info.Seq != uint64(n)+1 {
		t.Fatalf("post-recovery commit got seq %d, want %d", info.Seq, n+1)
	}
	return n
}

// TestCommitLogTruncationSweep cuts the log at a sweep of byte offsets —
// every commit boundary, its neighbours and a stride across the whole
// file — and proves each cut recovers the longest committed prefix below
// it: exactly the generations whose commit marker survived, never a
// torn in-between state.
func TestCommitLogTruncationSweep(t *testing.T) {
	const kind = DASDBSNSM
	snap, walBytes, boundaries, expected := crashHistory(t, kind, 3)
	size := int64(len(walBytes))

	cuts := make(map[int64]bool)
	for _, b := range boundaries {
		for _, c := range []int64{b - 1, b, b + 1} {
			if c >= 0 && c <= size {
				cuts[c] = true
			}
		}
	}
	stride := size / 40
	if stride < 1 {
		stride = 1
	}
	for c := int64(0); c <= size; c += stride {
		cuts[c] = true
	}

	// wantCommits: the highest boundary at or below the cut.
	wantCommits := func(cut int64) int {
		n := 0
		for i, b := range boundaries {
			if b <= cut {
				n = i
			}
		}
		return n
	}
	for cut := range cuts {
		n := recoverFrom(t, kind, snap, walBytes[:cut], expected)
		if want := wantCommits(cut); n != want {
			t.Fatalf("cut at %d: recovered %d commits, want %d (boundaries %v)", cut, n, want, boundaries)
		}
	}
}

// TestCommitLogCorruptionBattery flips a byte inside each commit's
// record region (and in each commit marker's trailing bytes): the
// checksum must reject the damaged batch and recovery must land on the
// last intact committed generation before it.
func TestCommitLogCorruptionBattery(t *testing.T) {
	const kind = NSMIndex
	snap, walBytes, boundaries, expected := crashHistory(t, kind, 3)

	for i := 1; i < len(boundaries); i++ {
		for _, off := range []int64{
			(boundaries[i-1] + boundaries[i]) / 2, // mid-batch, usually a page image
			boundaries[i] - 5,                     // inside the commit marker
		} {
			corrupt := append([]byte(nil), walBytes...)
			corrupt[off] ^= 0x40
			n := recoverFrom(t, kind, snap, corrupt, expected)
			if n != i-1 {
				t.Fatalf("flip at %d (batch %d): recovered %d commits, want %d", off, i, n, i-1)
			}
		}
	}
}

// TestCommitLogKillAfterSync crashes the committing process (a panic
// standing in for kill -9) right after the Nth WAL fsync, for several N:
// the synced-but-unacknowledged commit is allowed to survive, every
// acknowledged one must, and recovery lands on a committed generation
// either way.
func TestCommitLogKillAfterSync(t *testing.T) {
	const (
		kind    = DASDBSDSM
		rootIdx = 6
		total   = 4
	)
	snap, stations := seedSnapshot(t, kind, 24)

	for kill := 1; kill <= 3; kill++ {
		t.Run(fmt.Sprintf("kill=%d", kill), func(t *testing.T) {
			walDir := t.TempDir()
			clog, err := OpenCommitLog(walDir)
			if err != nil {
				t.Fatal(err)
			}
			base, err := clog.OpenBase(kind, snap)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := clog.Recover(); err != nil {
				t.Fatal(err)
			}
			syncs := 0
			clog.handle().SetSyncHook(func(int64) {
				syncs++
				if syncs == kill {
					panic("simulated crash after fsync")
				}
			})

			acked := 0
			crashed := false
			commitOne := func(name string) {
				defer func() {
					if recover() != nil {
						crashed = true
					}
				}()
				v, err := base.NewView(Options{BufferPages: 128})
				if err != nil {
					t.Fatal(err)
				}
				defer v.Close()
				if err := v.sv.UpdateRoots([]int32{rootIdx}, func(_ int32, r *cobench.RootRecord) {
					r.Name = name
				}); err != nil {
					t.Fatal(err)
				}
				if _, err := v.Commit(clog); err != nil {
					t.Fatal(err)
				}
				acked++
			}
			for i := 1; i <= total && !crashed; i++ {
				commitOne(fmt.Sprintf("kill gen %d", i))
			}
			if !crashed {
				t.Fatalf("sync hook never fired (%d syncs seen)", syncs)
			}
			clog.Close()
			base.Close()

			// Restart: everything acknowledged must be there; the commit
			// that died between its fsync and its acknowledgment may be.
			re, err := OpenCommitLog(walDir)
			if err != nil {
				t.Fatal(err)
			}
			defer re.Close()
			base2, err := re.OpenBase(kind, snap)
			if err != nil {
				t.Fatal(err)
			}
			defer base2.Close()
			n, err := re.Recover()
			if err != nil {
				t.Fatal(err)
			}
			if n < acked || n > acked+1 {
				t.Fatalf("recovered %d commits with %d acknowledged", n, acked)
			}
			v, err := base2.NewView(Options{BufferPages: 128})
			if err != nil {
				t.Fatal(err)
			}
			defer v.Close()
			got, err := v.sv.FetchByAddress(rootIdx)
			if err != nil {
				t.Fatal(err)
			}
			want := stations[rootIdx].Name
			if n > 0 {
				want = fmt.Sprintf("kill gen %d", n)
			}
			if got.Name != want {
				t.Fatalf("recovered state reads %q, want %q (replayed %d)", got.Name, want, n)
			}
		})
	}
}

// TestDurableReadPathCountersBitIdentical pins the acceptance bar of the
// durable write path: arming the commit log must not move a single
// read-path paper counter. The full query set measures identically on a
// plain snapshot restore (mem and file backends), a copy-on-write view
// of the shared base, a view over a commit-log base — and again after a
// durable commit has promoted a new generation.
func TestDurableReadPathCountersBitIdentical(t *testing.T) {
	w := cobench.Workload{Loops: 10, Samples: 8, Seed: 1993}
	queries := cobench.AllQueries()
	opts := Options{BufferPages: 128}

	// runAll executes the query set in order and strips the wall-clock
	// field, which is observability, not a counter.
	runAll := func(t *testing.T, run func(cobench.Query, cobench.Workload) (QueryResult, error)) []QueryResult {
		t.Helper()
		out := make([]QueryResult, 0, len(queries))
		for _, q := range queries {
			res, err := run(q, w)
			if err != nil {
				t.Fatalf("%s: %v", q, err)
			}
			res.Elapsed = 0
			out = append(out, res)
		}
		return out
	}

	for _, kind := range AllModels() {
		t.Run(kind.String(), func(t *testing.T) {
			snap, _ := seedSnapshot(t, kind, 30)

			db, err := OpenSnapshot(snap, kind, opts)
			if err != nil {
				t.Fatal(err)
			}
			baseline := runAll(t, db.Run)
			db.Close()

			fdb, err := OpenSnapshot(snap, kind, Options{BufferPages: 128, Backend: "file"})
			if err != nil {
				t.Fatal(err)
			}
			if got := runAll(t, fdb.Run); !reflect.DeepEqual(got, baseline) {
				t.Fatalf("file backend diverged:\n got %+v\nwant %+v", got, baseline)
			}
			fdb.Close()

			cowBase, err := OpenBase(snap, kind)
			if err != nil {
				t.Fatal(err)
			}
			cdb, err := cowBase.Open(opts)
			if err != nil {
				t.Fatal(err)
			}
			if got := runAll(t, cdb.Run); !reflect.DeepEqual(got, baseline) {
				t.Fatalf("cow backend diverged:\n got %+v\nwant %+v", got, baseline)
			}
			cdb.Close()
			cowBase.Close()

			clog, err := OpenCommitLog(t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			defer clog.Close()
			wbase, err := clog.OpenBase(kind, snap)
			if err != nil {
				t.Fatal(err)
			}
			defer wbase.Close()
			if _, err := clog.Recover(); err != nil {
				t.Fatal(err)
			}
			v, err := wbase.NewView(opts)
			if err != nil {
				t.Fatal(err)
			}
			if got := runAll(t, v.Run); !reflect.DeepEqual(got, baseline) {
				t.Fatalf("wal-armed view diverged:\n got %+v\nwant %+v", got, baseline)
			}
			// Commit the mutations the update queries made: size-preserving
			// stamps, so the promoted generation must measure identically.
			if _, err := v.Commit(clog); err != nil {
				t.Fatal(err)
			}
			v.Close()
			v2, err := wbase.NewView(opts)
			if err != nil {
				t.Fatal(err)
			}
			defer v2.Close()
			if wbase.Gen() == 0 {
				t.Fatal("commit did not promote a generation")
			}
			if got := runAll(t, v2.Run); !reflect.DeepEqual(got, baseline) {
				t.Fatalf("post-commit generation diverged:\n got %+v\nwant %+v", got, baseline)
			}
		})
	}
}
