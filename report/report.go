// Package report renders the experiment harness's tables as aligned plain
// text, Markdown or CSV. It is deliberately tiny: a Table is a header row
// plus string cells; formatting of numbers happens at the call site so
// each experiment controls its own precision.
package report

import (
	"fmt"
	"math"
	"strings"
)

// Table is a rectangular grid with a title and a header row.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
	// Notes are appended below the table (substitutions, caveats).
	Notes []string
}

// AddRow appends a row; short rows are padded with empty cells.
func (t *Table) AddRow(cells ...string) {
	for len(cells) < len(t.Header) {
		cells = append(cells, "")
	}
	t.Rows = append(t.Rows, cells)
}

// Num formats a measurement the way the paper prints its tables: three
// significant digits, fixed notation, "-" for NaN (not applicable).
func Num(v float64) string {
	if math.IsNaN(v) {
		return "-"
	}
	if v == 0 {
		return "0"
	}
	a := math.Abs(v)
	switch {
	case a >= 1000:
		return fmt.Sprintf("%.0f", v)
	case a >= 100:
		return fmt.Sprintf("%.1f", v)
	case a >= 10:
		return fmt.Sprintf("%.2f", v)
	default:
		return fmt.Sprintf("%.3f", v)
	}
}

// Int formats an integer cell.
func Int(v int) string { return fmt.Sprintf("%d", v) }

func (t *Table) widths() []int {
	w := make([]int, len(t.Header))
	for i, h := range t.Header {
		w[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(w) && len(c) > w[i] {
				w[i] = len(c)
			}
		}
	}
	return w
}

// Text renders the table as aligned monospace text.
func (t *Table) Text() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	w := t.widths()
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", w[i], c)
		}
		b.WriteString("\n")
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", w[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// Markdown renders the table as GitHub-flavoured Markdown.
func (t *Table) Markdown() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "### %s\n\n", t.Title)
	}
	fmt.Fprintf(&b, "| %s |\n", strings.Join(t.Header, " | "))
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = "---"
	}
	fmt.Fprintf(&b, "| %s |\n", strings.Join(sep, " | "))
	for _, row := range t.Rows {
		cells := make([]string, len(row))
		for i, c := range row {
			cells[i] = strings.ReplaceAll(c, "|", "\\|")
		}
		fmt.Fprintf(&b, "| %s |\n", strings.Join(cells, " | "))
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "\n*Note: %s*\n", n)
	}
	return b.String()
}

// CSV renders the table as comma-separated values (RFC 4180 quoting for
// cells containing commas or quotes).
func (t *Table) CSV() string {
	var b strings.Builder
	esc := func(c string) string {
		if strings.ContainsAny(c, ",\"\n") {
			return `"` + strings.ReplaceAll(c, `"`, `""`) + `"`
		}
		return c
	}
	row := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString(",")
			}
			b.WriteString(esc(c))
		}
		b.WriteString("\n")
	}
	row(t.Header)
	for _, r := range t.Rows {
		row(r)
	}
	return b.String()
}
