package report

import (
	"math"
	"strings"
	"testing"
)

func sample() *Table {
	t := &Table{
		Title:  "Table X: sample",
		Header: []string{"MODEL", "1a", "1b"},
	}
	t.AddRow("DSM", Num(4.0), Num(6000))
	t.AddRow("NSM", Num(math.NaN())) // padded short row
	t.Notes = append(t.Notes, "estimates are best case")
	return t
}

func TestNumFormatting(t *testing.T) {
	cases := map[float64]string{
		0:       "0",
		4:       "4.000",
		19.7:    "19.70",
		86.9:    "86.90",
		154:     "154.0",
		6000:    "6000",
		0.387:   "0.387",
		-12.345: "-12.35",
	}
	for v, want := range cases {
		if got := Num(v); got != want {
			t.Errorf("Num(%v) = %q, want %q", v, got, want)
		}
	}
	if Num(math.NaN()) != "-" {
		t.Errorf("Num(NaN) = %q", Num(math.NaN()))
	}
	if Int(42) != "42" {
		t.Errorf("Int(42) = %q", Int(42))
	}
}

func TestTextAlignment(t *testing.T) {
	out := sample().Text()
	if !strings.Contains(out, "Table X: sample") {
		t.Error("missing title")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// title, header, separator, two rows, one note
	if len(lines) != 6 {
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[2], "-----") {
		t.Errorf("separator line missing: %q", lines[2])
	}
	if !strings.Contains(lines[4], "-") {
		t.Error("NaN cell not rendered as -")
	}
	if !strings.Contains(lines[5], "note:") {
		t.Error("note missing")
	}
}

func TestMarkdown(t *testing.T) {
	out := sample().Markdown()
	for _, want := range []string{"### Table X", "| MODEL | 1a | 1b |", "| --- | --- | --- |", "| DSM |", "*Note:"} {
		if !strings.Contains(out, want) {
			t.Errorf("markdown missing %q:\n%s", want, out)
		}
	}
	// Pipes in cells must be escaped.
	tb := &Table{Header: []string{"a"}}
	tb.AddRow("x|y")
	if !strings.Contains(tb.Markdown(), `x\|y`) {
		t.Error("pipe not escaped")
	}
}

func TestCSV(t *testing.T) {
	tb := &Table{Header: []string{"a", "b"}}
	tb.AddRow(`say "hi"`, "1,5")
	out := tb.CSV()
	if !strings.Contains(out, `"say ""hi""","1,5"`) {
		t.Errorf("CSV quoting wrong:\n%s", out)
	}
	if !strings.HasPrefix(out, "a,b\n") {
		t.Errorf("CSV header wrong:\n%s", out)
	}
}

func TestShortRowPadding(t *testing.T) {
	tb := &Table{Header: []string{"a", "b", "c"}}
	tb.AddRow("only")
	if len(tb.Rows[0]) != 3 {
		t.Errorf("row not padded: %v", tb.Rows[0])
	}
}

func TestChartRendersSeries(t *testing.T) {
	c := &Chart{
		Title:  "test chart",
		XLabel: "x",
		YLabel: "y",
		Series: []Series{
			{Name: "up", Points: []Point{{1, 1}, {2, 2}, {3, 3}}},
			{Name: "flat", Points: []Point{{1, 2}, {2, 2}, {3, 2}}},
		},
		Width:  30,
		Height: 8,
	}
	out := c.Text()
	for _, want := range []string{"test chart", "* up", "o flat", "(x)", "y: y"} {
		if !strings.Contains(out, want) {
			t.Errorf("chart missing %q:\n%s", want, out)
		}
	}
	// Both marks must appear in the plot area.
	if !strings.Contains(out, "*") || !strings.Contains(out, "o") {
		t.Error("marks missing")
	}
}

func TestChartEmpty(t *testing.T) {
	c := &Chart{Title: "empty"}
	if !strings.Contains(c.Text(), "(no data)") {
		t.Error("empty chart not handled")
	}
}

func TestChartLogX(t *testing.T) {
	c := &Chart{
		LogX:   true,
		Series: []Series{{Name: "s", Points: []Point{{100, 1}, {1000, 2}}}},
	}
	out := c.Text()
	if !strings.Contains(out, "log scale") {
		t.Errorf("log axis not labelled:\n%s", out)
	}
	if !strings.Contains(out, "100") || !strings.Contains(out, "1000") {
		t.Errorf("x labels missing:\n%s", out)
	}
}

func TestChartSingularRanges(t *testing.T) {
	// One point, zero span in both axes: must not divide by zero.
	c := &Chart{Series: []Series{{Name: "p", Points: []Point{{5, 0}}}}}
	if out := c.Text(); !strings.Contains(out, "*") {
		t.Errorf("single point not plotted:\n%s", out)
	}
}
