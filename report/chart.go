package report

import (
	"fmt"
	"math"
	"strings"
)

// Point is one chart sample.
type Point struct {
	X, Y float64
}

// Series is a named sequence of points.
type Series struct {
	Name   string
	Points []Point
}

// Chart renders series as a monospace scatter/line chart, good enough to
// eyeball the Figure 5/6 shapes in a terminal. Marks are assigned per
// series ('*', 'o', '+', 'x', ...); axes are linear; LogX switches the X
// axis to log scale (the paper's Figure 6 uses a logarithmic size axis).
type Chart struct {
	Title  string
	XLabel string
	YLabel string
	Series []Series
	Width  int // plot columns (default 60)
	Height int // plot rows (default 16)
	LogX   bool
}

var chartMarks = []byte{'*', 'o', '+', 'x', '#', '@'}

// Text renders the chart.
func (c *Chart) Text() string {
	w, h := c.Width, c.Height
	if w <= 0 {
		w = 60
	}
	if h <= 0 {
		h = 16
	}
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := 0.0, math.Inf(-1) // Y axis anchored at 0 like the paper's figures
	n := 0
	for _, s := range c.Series {
		for _, p := range s.Points {
			x := c.xval(p.X)
			minX, maxX = math.Min(minX, x), math.Max(maxX, x)
			maxY = math.Max(maxY, p.Y)
			n++
		}
	}
	var b strings.Builder
	if c.Title != "" {
		fmt.Fprintf(&b, "%s\n", c.Title)
	}
	if n == 0 {
		b.WriteString("(no data)\n")
		return b.String()
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}
	grid := make([][]byte, h)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", w))
	}
	for si, s := range c.Series {
		mark := chartMarks[si%len(chartMarks)]
		for _, p := range s.Points {
			col := int(math.Round((c.xval(p.X) - minX) / (maxX - minX) * float64(w-1)))
			row := int(math.Round((p.Y - minY) / (maxY - minY) * float64(h-1)))
			r := h - 1 - row
			if r >= 0 && r < h && col >= 0 && col < w {
				grid[r][col] = mark
			}
		}
	}
	yLab := func(v float64) string { return fmt.Sprintf("%8.1f", v) }
	for i, row := range grid {
		switch i {
		case 0:
			fmt.Fprintf(&b, "%s |%s|\n", yLab(maxY), row)
		case h - 1:
			fmt.Fprintf(&b, "%s |%s|\n", yLab(minY), row)
		case h / 2:
			fmt.Fprintf(&b, "%s |%s|\n", yLab((maxY+minY)/2), row)
		default:
			fmt.Fprintf(&b, "%9s|%s|\n", "", row)
		}
	}
	axis := fmt.Sprintf("%9s+%s+", "", strings.Repeat("-", w))
	b.WriteString(axis + "\n")
	left := fmt.Sprintf("%.0f", c.unxval(minX))
	right := fmt.Sprintf("%.0f", c.unxval(maxX))
	pad := w - len(left) - len(right)
	if pad < 1 {
		pad = 1
	}
	fmt.Fprintf(&b, "%10s%s%s%s", "", left, strings.Repeat(" ", pad), right)
	switch {
	case c.XLabel != "" && c.LogX:
		fmt.Fprintf(&b, "  (%s, log scale)", c.XLabel)
	case c.XLabel != "":
		fmt.Fprintf(&b, "  (%s)", c.XLabel)
	case c.LogX:
		b.WriteString("  (log scale)")
	}
	b.WriteString("\n")
	var legend []string
	for si, s := range c.Series {
		legend = append(legend, fmt.Sprintf("%c %s", chartMarks[si%len(chartMarks)], s.Name))
	}
	if c.YLabel != "" {
		fmt.Fprintf(&b, "%10sy: %s\n", "", c.YLabel)
	}
	fmt.Fprintf(&b, "%10s%s\n", "", strings.Join(legend, "   "))
	return b.String()
}

func (c *Chart) xval(x float64) float64 {
	if c.LogX && x > 0 {
		return math.Log10(x)
	}
	return x
}

func (c *Chart) unxval(x float64) float64 {
	if c.LogX {
		return math.Pow(10, x)
	}
	return x
}
