package cobench

import "fmt"

// Query identifies one of the seven benchmark queries of the paper's §2.2.
type Query int

const (
	// Q1a retrieves a single Station given its address (OID).
	Q1a Query = iota
	// Q1b retrieves a single Station given its key value.
	Q1b
	// Q1c retrieves all Stations; results are normalized per object.
	Q1c
	// Q2a navigates once: a random station, its children (≈4.1) and the
	// root records of its grand-children (≈16.7).
	Q2a
	// Q2b runs the navigation 300 times consecutively; results are
	// normalized per loop ("almost all objects are referred to at least
	// once, and the probability of buffer hits or buffer overflow will
	// increase").
	Q2b
	// Q3a is Q2a followed by an update of the grand-children root records.
	Q3a
	// Q3b is Q2b with an update of the grand-children at the end of each
	// loop.
	Q3b
)

// AllQueries lists the benchmark queries in paper order.
func AllQueries() []Query { return []Query{Q1a, Q1b, Q1c, Q2a, Q2b, Q3a, Q3b} }

// QueryByName resolves a query by its printed name ("1a" … "3b") — the
// shared lookup for every surface that accepts query names (CLI flags,
// server requests), so they cannot drift.
func QueryByName(name string) (Query, bool) {
	for _, q := range AllQueries() {
		if q.String() == name {
			return q, true
		}
	}
	return 0, false
}

// String implements fmt.Stringer.
func (q Query) String() string {
	switch q {
	case Q1a:
		return "1a"
	case Q1b:
		return "1b"
	case Q1c:
		return "1c"
	case Q2a:
		return "2a"
	case Q2b:
		return "2b"
	case Q3a:
		return "3a"
	case Q3b:
		return "3b"
	default:
		return fmt.Sprintf("Query(%d)", int(q))
	}
}

// Updates reports whether the query writes (query family 3).
func (q Query) Updates() bool { return q == Q3a || q == Q3b }

// Looped reports whether the query is the 300-loop warm-cache variant.
func (q Query) Looped() bool { return q == Q2b || q == Q3b }

// Workload fixes the execution parameters of the benchmark driver.
type Workload struct {
	// Loops is the number of consecutive navigation loops for Q2b/Q3b
	// (paper: 300 for the 1500-object extension; the Figure 6 sweep uses
	// N/5 so that "about the same percentage of the total number of
	// objects is retrieved for each database size").
	Loops int
	// Samples is how many independent cold-cache repetitions the
	// single-shot queries (1a, 1b, 2a, 3a) are averaged over. The paper
	// measured a single hand-picked "average" object; averaging over a
	// sample removes the arbitrariness while preserving the metric.
	Samples int
	// Seed drives the random object selections of queries 2 and 3.
	Seed uint64
}

// DefaultWorkload mirrors the paper's run parameters.
func DefaultWorkload() Workload { return Workload{Loops: 300, Samples: 40, Seed: 42} }

// LoopsFor returns the loop count for a database of n objects, following
// the Figure 6 convention Loops = n/5.
func LoopsFor(n int) int {
	l := n / 5
	if l < 1 {
		l = 1
	}
	return l
}
