// Package cobench implements the complex object benchmark of the paper's
// §2: a revised version of the Altair complex object benchmark. The
// database extension consists of Station complex objects with nested
// Platform/Connection and Sightseeing sub-relations; connections carry
// references to other stations, which queries 2 and 3 navigate.
//
// The package provides the domain types, their NF² schema, the seeded data
// generator (§2.1) and the benchmark workload constants (§2.2).
package cobench

import (
	"fmt"

	"complexobj/nf2"
)

// Station is the benchmark complex object (paper Figure 1). Field sizes
// follow the paper: INT attributes are 4 bytes, STR attributes have a
// fixed 100-byte capacity.
type Station struct {
	Key        int32
	NoPlatform int32
	NoSeeing   int32
	Name       string
	Platforms  []Platform
	Seeings    []Sightseeing
}

// Platform is a nested sub-object of Station; its Connection sub-relation
// nests one level deeper.
type Platform struct {
	Nr          int32
	NoLine      int32
	TicketCode  int32
	Information string
	Conns       []Connection
}

// Connection links a platform to a neighbouring station. OidConnection is
// the paper's LINK attribute: a reference to the target Station, stored
// here as the logical station index (the storage models resolve it through
// their zero-cost address tables, the paper's convention in §5.1).
type Connection struct {
	LineNr         int32
	KeyConnection  int32
	OidConnection  int32
	DepartureTimes string
}

// Sightseeing describes a tourist attraction near the station; it is dead
// weight for queries 2 and 3, which is exactly what makes the DASDBS-DSM
// partial reads pay off (paper §5.3, Figure 5).
type Sightseeing struct {
	Nr          int32
	Description string
	Location    string
	History     string
	Remarks     string
}

// RootRecord is the atomic root part of a Station: what query 2 reads for
// the grand-children and what query 3 updates ("We update atomic
// attributes, that is, the object structure is not changed").
type RootRecord struct {
	Key        int32
	NoPlatform int32
	NoSeeing   int32
	Name       string
}

// Root extracts the station's root record.
func (s *Station) Root() RootRecord {
	return RootRecord{Key: s.Key, NoPlatform: s.NoPlatform, NoSeeing: s.NoSeeing, Name: s.Name}
}

// SetRoot applies a root record to the station's atomic attributes.
func (s *Station) SetRoot(r RootRecord) {
	s.Key, s.NoPlatform, s.NoSeeing, s.Name = r.Key, r.NoPlatform, r.NoSeeing, r.Name
}

// Children returns the station indices referenced by the station's
// connections, in platform/connection order (the paper's "find the
// identifiers of the objects it refers to").
func (s *Station) Children() []int32 {
	var out []int32
	for _, p := range s.Platforms {
		for _, c := range p.Conns {
			out = append(out, c.OidConnection)
		}
	}
	return out
}

// NumConnections returns the total connection count across platforms.
func (s *Station) NumConnections() int {
	n := 0
	for _, p := range s.Platforms {
		n += len(p.Conns)
	}
	return n
}

// Attribute positions in the schemas below; storage models use them for
// partial decoding.
const (
	StKey = iota
	StNoPlatform
	StNoSeeing
	StName
	StPlatforms
	StSeeings
)

const (
	PlNr = iota
	PlNoLine
	PlTicketCode
	PlInformation
	PlConns
)

const (
	CoLineNr = iota
	CoKeyConnection
	CoOid
	CoDepartureTimes
)

const (
	SeNr = iota
	SeDescription
	SeLocation
	SeHistory
	SeRemarks
)

// StrSize is the fixed capacity of every STR attribute in the benchmark
// (100 bytes, paper Figure 1).
const StrSize = 100

// The benchmark NF² schemas (paper Figure 1).
var (
	// ConnectionType is the innermost subtuple schema.
	ConnectionType = nf2.MustTupleType("Connection",
		nf2.Attr{Name: "LineNr", Type: nf2.IntType()},
		nf2.Attr{Name: "KeyConnection", Type: nf2.IntType()},
		nf2.Attr{Name: "OidConnection", Type: nf2.LinkType()},
		nf2.Attr{Name: "DepartureTimes", Type: nf2.StringType(StrSize)},
	)
	// PlatformType nests ConnectionType.
	PlatformType = nf2.MustTupleType("Platform",
		nf2.Attr{Name: "PlatformNr", Type: nf2.IntType()},
		nf2.Attr{Name: "NoLine", Type: nf2.IntType()},
		nf2.Attr{Name: "TicketCode", Type: nf2.IntType()},
		nf2.Attr{Name: "Information", Type: nf2.StringType(StrSize)},
		nf2.Attr{Name: "Connection", Type: nf2.RelType(ConnectionType)},
	)
	// SightseeingType is the second, navigation-irrelevant sub-relation.
	SightseeingType = nf2.MustTupleType("Sightseeing",
		nf2.Attr{Name: "SeeingNr", Type: nf2.IntType()},
		nf2.Attr{Name: "Description", Type: nf2.StringType(StrSize)},
		nf2.Attr{Name: "Location", Type: nf2.StringType(StrSize)},
		nf2.Attr{Name: "History", Type: nf2.StringType(StrSize)},
		nf2.Attr{Name: "Remarks", Type: nf2.StringType(StrSize)},
	)
	// StationType is the complete benchmark complex object.
	StationType = nf2.MustTupleType("Station",
		nf2.Attr{Name: "Key", Type: nf2.IntType()},
		nf2.Attr{Name: "NoPlatform", Type: nf2.IntType()},
		nf2.Attr{Name: "NoSeeing", Type: nf2.IntType()},
		nf2.Attr{Name: "Name", Type: nf2.StringType(StrSize)},
		nf2.Attr{Name: "Platform", Type: nf2.RelType(PlatformType)},
		nf2.Attr{Name: "Sightseeing", Type: nf2.RelType(SightseeingType)},
	)
)

// Tuple converts the station to its NF² representation.
func (s *Station) Tuple() nf2.Tuple {
	plats := make([]nf2.Tuple, len(s.Platforms))
	for i, p := range s.Platforms {
		conns := make([]nf2.Tuple, len(p.Conns))
		for j, c := range p.Conns {
			conns[j] = nf2.NewTuple(
				nf2.IntValue(c.LineNr),
				nf2.IntValue(c.KeyConnection),
				nf2.LinkValue(c.OidConnection),
				nf2.StringValue(c.DepartureTimes),
			)
		}
		plats[i] = nf2.NewTuple(
			nf2.IntValue(p.Nr),
			nf2.IntValue(p.NoLine),
			nf2.IntValue(p.TicketCode),
			nf2.StringValue(p.Information),
			nf2.RelValue(conns),
		)
	}
	sees := make([]nf2.Tuple, len(s.Seeings))
	for i, g := range s.Seeings {
		sees[i] = nf2.NewTuple(
			nf2.IntValue(g.Nr),
			nf2.StringValue(g.Description),
			nf2.StringValue(g.Location),
			nf2.StringValue(g.History),
			nf2.StringValue(g.Remarks),
		)
	}
	return nf2.NewTuple(
		nf2.IntValue(s.Key),
		nf2.IntValue(s.NoPlatform),
		nf2.IntValue(s.NoSeeing),
		nf2.StringValue(s.Name),
		nf2.RelValue(plats),
		nf2.RelValue(sees),
	)
}

// StationFromTuple converts an NF² tuple back into a Station.
func StationFromTuple(t nf2.Tuple) (*Station, error) {
	if err := StationType.Validate(t); err != nil {
		return nil, fmt.Errorf("cobench: %w", err)
	}
	s := &Station{
		Key:        t.Vals[StKey].Int(),
		NoPlatform: t.Vals[StNoPlatform].Int(),
		NoSeeing:   t.Vals[StNoSeeing].Int(),
		Name:       t.Vals[StName].Str(),
	}
	for _, pt := range t.Vals[StPlatforms].Tuples() {
		p := Platform{
			Nr:          pt.Vals[PlNr].Int(),
			NoLine:      pt.Vals[PlNoLine].Int(),
			TicketCode:  pt.Vals[PlTicketCode].Int(),
			Information: pt.Vals[PlInformation].Str(),
		}
		for _, ct := range pt.Vals[PlConns].Tuples() {
			p.Conns = append(p.Conns, Connection{
				LineNr:         ct.Vals[CoLineNr].Int(),
				KeyConnection:  ct.Vals[CoKeyConnection].Int(),
				OidConnection:  ct.Vals[CoOid].Int(),
				DepartureTimes: ct.Vals[CoDepartureTimes].Str(),
			})
		}
		s.Platforms = append(s.Platforms, p)
	}
	for _, gt := range t.Vals[StSeeings].Tuples() {
		s.Seeings = append(s.Seeings, Sightseeing{
			Nr:          gt.Vals[SeNr].Int(),
			Description: gt.Vals[SeDescription].Str(),
			Location:    gt.Vals[SeLocation].Str(),
			History:     gt.Vals[SeHistory].Str(),
			Remarks:     gt.Vals[SeRemarks].Str(),
		})
	}
	return s, nil
}

// Equal reports deep equality of two stations.
func (s *Station) Equal(o *Station) bool {
	if s == nil || o == nil {
		return s == o
	}
	return StationType.Equal(s.Tuple(), o.Tuple())
}
