package cobench

import (
	"math"
	"strings"
	"testing"

	"complexobj/nf2"
)

func TestDefaultConfigMatchesPaper(t *testing.T) {
	c := DefaultConfig()
	if c.N != 1500 || c.Prob != 0.80 || c.Fanout != 2 || c.MaxSeeing != 15 {
		t.Errorf("default config %+v does not match the paper", c)
	}
}

func TestExpectedValuesMatchPaper(t *testing.T) {
	c := DefaultConfig()
	if got := c.ExpectedPlatforms(); math.Abs(got-1.6) > 1e-9 {
		t.Errorf("ExpectedPlatforms = %f, want 1.6", got)
	}
	// Paper: "each Station has ... = 4.10 children" on average.
	if got := c.ExpectedChildren(); math.Abs(got-4.096) > 1e-9 {
		t.Errorf("ExpectedChildren = %f, want 4.096", got)
	}
	// Paper: "0-64, on the average 16.7" grand-children.
	if got := c.ExpectedGrandChildren(); math.Abs(got-16.777216) > 1e-6 {
		t.Errorf("ExpectedGrandChildren = %f, want 16.777", got)
	}
	if got := c.ExpectedSeeings(); got != 7.5 {
		t.Errorf("ExpectedSeeings = %f, want 7.5", got)
	}
}

func TestSkewedConfigKeepsMeans(t *testing.T) {
	s := DefaultConfig().Skewed()
	if s.Prob != 0.20 || s.Fanout != 8 {
		t.Errorf("skewed config %+v, want prob 0.2 fanout 8", s)
	}
	d := DefaultConfig()
	if math.Abs(s.ExpectedChildren()-d.ExpectedChildren()) > 1e-9 {
		t.Errorf("skew changes expected children: %f vs %f",
			s.ExpectedChildren(), d.ExpectedChildren())
	}
	if math.Abs(s.ExpectedPlatforms()-d.ExpectedPlatforms()) > 1e-9 {
		t.Errorf("skew changes expected platforms")
	}
}

func TestConfigValidate(t *testing.T) {
	good := DefaultConfig()
	if err := good.Validate(); err != nil {
		t.Errorf("default config invalid: %v", err)
	}
	for name, c := range map[string]Config{
		"zeroN":      good.WithN(0),
		"negProb":    {N: 1, Prob: -0.1, Fanout: 2},
		"probOver1":  {N: 1, Prob: 1.1, Fanout: 2},
		"zeroFanout": {N: 1, Prob: 0.5, Fanout: 0},
		"negSeeing":  {N: 1, Prob: 0.5, Fanout: 2, MaxSeeing: -1},
	} {
		if err := c.Validate(); err == nil {
			t.Errorf("%s: invalid config accepted", name)
		}
	}
}

func TestGenerateDeterminism(t *testing.T) {
	c := DefaultConfig().WithN(50)
	a, err := Generate(c)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(c)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if !a[i].Equal(b[i]) {
			t.Fatalf("station %d differs between same-seed generations", i)
		}
	}
	c2 := c
	c2.Seed++
	d, err := Generate(c2)
	if err != nil {
		t.Fatal(err)
	}
	same := 0
	for i := range a {
		if a[i].Equal(d[i]) {
			same++
		}
	}
	if same == len(a) {
		t.Error("different seeds produced identical extensions")
	}
}

func TestGenerateDistribution(t *testing.T) {
	c := DefaultConfig()
	stations, err := Generate(c)
	if err != nil {
		t.Fatal(err)
	}
	st := Describe(stations)
	// Sampling tolerances: with n=1500, means should land near the paper's
	// published realisation (1.59 platforms, 4.04 connections, 7.64
	// sightseeings).
	if math.Abs(st.AvgPlatforms-1.6) > 0.08 {
		t.Errorf("avg platforms = %f, want ~1.6", st.AvgPlatforms)
	}
	if math.Abs(st.AvgConnections-4.096) > 0.25 {
		t.Errorf("avg connections = %f, want ~4.10", st.AvgConnections)
	}
	if math.Abs(st.AvgSeeings-7.5) > 0.35 {
		t.Errorf("avg sightseeings = %f, want ~7.5", st.AvgSeeings)
	}
	if math.Abs(st.AvgGrand-16.78) > 1.6 {
		t.Errorf("avg grand-children = %f, want ~16.7", st.AvgGrand)
	}
	// Bounds from the structure: at most fanout platforms, fanout² conns
	// per platform.
	if st.MaxPlatforms > c.Fanout {
		t.Errorf("max platforms %d > fanout %d", st.MaxPlatforms, c.Fanout)
	}
	if st.MaxConnections > c.Fanout*c.Fanout*c.Fanout {
		t.Errorf("max connections %d > %d", st.MaxConnections, c.Fanout*c.Fanout*c.Fanout)
	}
	if st.MaxSeeings > c.MaxSeeing {
		t.Errorf("max sightseeings %d > %d", st.MaxSeeings, c.MaxSeeing)
	}
}

func TestGenerateSkewedDistribution(t *testing.T) {
	stations, err := Generate(DefaultConfig().Skewed())
	if err != nil {
		t.Fatal(err)
	}
	st := Describe(stations)
	// Paper §5.5: the skewed extension realised 1.57 platforms and 3.99
	// connections per station — the same means as the default extension.
	if math.Abs(st.AvgPlatforms-1.6) > 0.12 {
		t.Errorf("skew avg platforms = %f, want ~1.6", st.AvgPlatforms)
	}
	if math.Abs(st.AvgConnections-4.096) > 0.4 {
		t.Errorf("skew avg connections = %f, want ~4.10", st.AvgConnections)
	}
	// Heavier tails: the paper observed up to 6 platforms and 34
	// connections per station.
	def := Describe(mustGenerate(t, DefaultConfig()))
	if st.MaxPlatforms <= def.MaxPlatforms {
		t.Errorf("skew max platforms %d not heavier than default %d",
			st.MaxPlatforms, def.MaxPlatforms)
	}
	if st.MaxConnections <= def.MaxConnections {
		t.Errorf("skew max connections %d not heavier than default %d",
			st.MaxConnections, def.MaxConnections)
	}
}

func mustGenerate(t *testing.T, c Config) []*Station {
	t.Helper()
	s, err := Generate(c)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestGenerateMaxSeeingSweep(t *testing.T) {
	// Figure 5 uses maxSeeing 0, 15, 30; realised averages were 0, 7.64, 15.3.
	for _, m := range []int{0, 15, 30} {
		st := Describe(mustGenerate(t, DefaultConfig().WithMaxSeeing(m)))
		want := float64(m) / 2
		if math.Abs(st.AvgSeeings-want) > 0.7 {
			t.Errorf("maxSeeing=%d: avg %f, want ~%f", m, st.AvgSeeings, want)
		}
	}
}

func TestChildrenReferencesValid(t *testing.T) {
	c := DefaultConfig().WithN(200)
	stations := mustGenerate(t, c)
	for i, s := range stations {
		if s.Key != KeyOf(i) {
			t.Fatalf("station %d has key %d, want %d", i, s.Key, KeyOf(i))
		}
		for _, child := range s.Children() {
			if child < 0 || int(child) >= c.N {
				t.Fatalf("station %d references out-of-range child %d", i, child)
			}
		}
		for _, p := range s.Platforms {
			for _, conn := range p.Conns {
				if conn.KeyConnection != KeyOf(int(conn.OidConnection)) {
					t.Fatalf("station %d: KeyConnection %d inconsistent with OID %d",
						i, conn.KeyConnection, conn.OidConnection)
				}
			}
		}
		if int(s.NoPlatform) != len(s.Platforms) || int(s.NoSeeing) != len(s.Seeings) {
			t.Fatalf("station %d counters inconsistent", i)
		}
	}
}

func TestKeyIndexRoundTrip(t *testing.T) {
	if IndexOf(KeyOf(42), 100) != 42 {
		t.Error("IndexOf(KeyOf(42)) != 42")
	}
	if IndexOf(KeyOf(100), 100) != -1 {
		t.Error("IndexOf out of range not detected")
	}
	if IndexOf(5, 100) != -1 {
		t.Error("IndexOf below base not detected")
	}
}

func TestTupleRoundTrip(t *testing.T) {
	stations := mustGenerate(t, DefaultConfig().WithN(30))
	for i, s := range stations {
		tup := s.Tuple()
		if err := StationType.Validate(tup); err != nil {
			t.Fatalf("station %d tuple invalid: %v", i, err)
		}
		back, err := StationFromTuple(tup)
		if err != nil {
			t.Fatal(err)
		}
		if !s.Equal(back) {
			t.Fatalf("station %d tuple round trip mismatch", i)
		}
	}
}

func TestTupleEncodeRoundTrip(t *testing.T) {
	stations := mustGenerate(t, DefaultConfig().WithN(30))
	for i, s := range stations {
		buf, err := StationType.Encode(s.Tuple())
		if err != nil {
			t.Fatalf("station %d: %v", i, err)
		}
		tup, err := StationType.Decode(buf)
		if err != nil {
			t.Fatal(err)
		}
		back, err := StationFromTuple(tup)
		if err != nil {
			t.Fatal(err)
		}
		if !s.Equal(back) {
			t.Fatalf("station %d binary round trip mismatch", i)
		}
	}
}

func TestStationFromTupleRejectsWrongShape(t *testing.T) {
	if _, err := StationFromTuple(nf2.NewTuple(nf2.IntValue(1))); err == nil {
		t.Error("malformed tuple accepted")
	}
}

func TestRootRecord(t *testing.T) {
	s := mustGenerate(t, DefaultConfig().WithN(5))[0]
	r := s.Root()
	if r.Key != s.Key || r.Name != s.Name {
		t.Error("Root() lost fields")
	}
	r.Name = "renamed"
	s.SetRoot(r)
	if s.Name != "renamed" {
		t.Error("SetRoot did not apply")
	}
}

func TestQueryStrings(t *testing.T) {
	want := []string{"1a", "1b", "1c", "2a", "2b", "3a", "3b"}
	for i, q := range AllQueries() {
		if q.String() != want[i] {
			t.Errorf("query %d String = %q, want %q", i, q.String(), want[i])
		}
	}
	if !Q3a.Updates() || Q2a.Updates() {
		t.Error("Updates() wrong")
	}
	if !Q2b.Looped() || Q2a.Looped() {
		t.Error("Looped() wrong")
	}
}

func TestLoopsFor(t *testing.T) {
	if LoopsFor(1500) != 300 {
		t.Errorf("LoopsFor(1500) = %d, want 300 (paper)", LoopsFor(1500))
	}
	if LoopsFor(100) != 20 {
		t.Errorf("LoopsFor(100) = %d, want 20 (Figure 6)", LoopsFor(100))
	}
	if LoopsFor(3) != 1 {
		t.Errorf("LoopsFor(3) = %d, want 1", LoopsFor(3))
	}
}

func TestNamesRespectCapacity(t *testing.T) {
	for _, s := range mustGenerate(t, DefaultConfig().WithN(100)) {
		if len(s.Name) > StrSize {
			t.Fatalf("name %q exceeds STR capacity", s.Name)
		}
		for _, p := range s.Platforms {
			if len(p.Information) > StrSize {
				t.Fatalf("information exceeds STR capacity")
			}
		}
	}
}

func TestDescribeEmpty(t *testing.T) {
	st := Describe(nil)
	if st.N != 0 || st.AvgPlatforms != 0 {
		t.Errorf("Describe(nil) = %+v", st)
	}
}

func TestAverageObjectSizeBallpark(t *testing.T) {
	// The paper's DASDBS measured 6078 bytes per average station (Table 2)
	// including DASDBS internal overheads; our leaner encoding must land in
	// the same ballpark (a few KiB), since the raw payload alone is ~3.8 KiB.
	st := Describe(mustGenerate(t, DefaultConfig()))
	if st.AvgEncodedBytes < 3500 || st.AvgEncodedBytes > 6500 {
		t.Errorf("avg encoded station = %.0f bytes, expected 3.5-6.5 KiB", st.AvgEncodedBytes)
	}
	if testing.Verbose() {
		t.Logf("avg encoded station size: %.1f bytes", st.AvgEncodedBytes)
	}
}

func TestSchemaMatchesFigure1(t *testing.T) {
	s := StationType.String()
	for _, attr := range []string{"Key", "NoPlatform", "NoSeeing", "Name", "Platform", "Sightseeing"} {
		if !strings.Contains(s, attr) {
			t.Errorf("station schema missing %s: %s", attr, s)
		}
	}
	if ConnectionType.Attrs[CoOid].Type.Kind != nf2.Link {
		t.Error("OidConnection is not a LINK attribute")
	}
}

func TestStructureInvariantAcrossMaxSeeing(t *testing.T) {
	// The Figure 5 sweep varies only the sightseeing payload; platforms and
	// connections must stay identical so the experiment isolates the
	// object-size effect.
	a := mustGenerate(t, DefaultConfig().WithN(80).WithMaxSeeing(0))
	b := mustGenerate(t, DefaultConfig().WithN(80).WithMaxSeeing(30))
	for i := range a {
		sa, sb := a[i], b[i]
		if len(sa.Platforms) != len(sb.Platforms) {
			t.Fatalf("station %d platform count differs across maxSeeing", i)
		}
		ka, kb := sa.Children(), sb.Children()
		if len(ka) != len(kb) {
			t.Fatalf("station %d child count differs across maxSeeing", i)
		}
		for j := range ka {
			if ka[j] != kb[j] {
				t.Fatalf("station %d child %d differs across maxSeeing", i, j)
			}
		}
	}
}

func TestSizeHistogram(t *testing.T) {
	stations := mustGenerate(t, DefaultConfig().WithN(400))
	hist := SizeHistogram(stations)
	if len(hist) == 0 {
		t.Fatal("empty histogram")
	}
	total := 0
	for i, b := range hist {
		if b.Pages != i+1 {
			t.Errorf("bucket %d pages = %d", i, b.Pages)
		}
		total += b.Count
	}
	if total != 400 {
		t.Errorf("histogram counts %d objects, want 400", total)
	}
	// With maxSeeing=0 every object fits one or two pages.
	small := SizeHistogram(mustGenerate(t, DefaultConfig().WithN(200).WithMaxSeeing(0)))
	if len(small) > 2 {
		t.Errorf("tiny objects spread over %d buckets", len(small))
	}
	if SizeHistogram(nil) != nil {
		t.Error("nil input should give nil histogram")
	}
}
