package cobench

import (
	"errors"
	"fmt"

	"complexobj/internal/xrand"
)

// Config parameterizes the benchmark extension generator (paper §2.1 and
// the variations of §5.3 and §5.5).
type Config struct {
	// N is the number of Station objects (paper default: 1500).
	N int
	// Prob is the independent generation probability of each platform,
	// railroad and connection slot (paper default: 0.80).
	Prob float64
	// Fanout is the number of slots per level: platforms per station,
	// railroads per platform and connections per railroad (paper default:
	// 2; the data-skew experiment uses 8).
	Fanout int
	// MaxSeeing is the maximum number of sightseeing sub-objects; the
	// actual count is uniform in [0, MaxSeeing] (paper default: 15; the
	// object-size experiment of Figure 5 uses 0 and 30).
	MaxSeeing int
	// Seed drives the deterministic generator.
	Seed uint64
}

// DefaultConfig returns the paper's standard benchmark extension.
func DefaultConfig() Config {
	return Config{N: 1500, Prob: 0.80, Fanout: 2, MaxSeeing: 15, Seed: 1993}
}

// WithN returns a copy with a different database size (Figure 6 sweep).
func (c Config) WithN(n int) Config { c.N = n; return c }

// WithMaxSeeing returns a copy with a different sightseeing bound
// (Figure 5 sweep).
func (c Config) WithMaxSeeing(m int) Config { c.MaxSeeing = m; return c }

// Skewed returns the paper's §5.5 data-skew configuration: generation
// probability 20% and fanout 8, which keeps the sub-object means but makes
// the tails much heavier.
func (c Config) Skewed() Config { c.Prob = 0.20; c.Fanout = 8; return c }

// Validate checks the configuration.
func (c Config) Validate() error {
	switch {
	case c.N <= 0:
		return errors.New("cobench: N must be positive")
	case c.Prob < 0 || c.Prob > 1:
		return errors.New("cobench: Prob must be in [0,1]")
	case c.Fanout < 1:
		return errors.New("cobench: Fanout must be at least 1")
	case c.MaxSeeing < 0:
		return errors.New("cobench: MaxSeeing must be non-negative")
	}
	return nil
}

// ExpectedPlatforms returns the expected number of platforms per station:
// Fanout slots, each generated with probability Prob (paper: 2·0.8 = 1.6).
func (c Config) ExpectedPlatforms() float64 { return float64(c.Fanout) * c.Prob }

// ExpectedChildren returns the expected number of connections (children)
// per station: (Fanout·Prob)³, i.e. platforms × railroads × connections
// (paper: 1.6·2.56 = 4.10 children on average).
func (c Config) ExpectedChildren() float64 {
	fp := float64(c.Fanout) * c.Prob
	return fp * fp * fp
}

// ExpectedGrandChildren returns ExpectedChildren squared (paper: 16.7 on
// average).
func (c Config) ExpectedGrandChildren() float64 {
	ch := c.ExpectedChildren()
	return ch * ch
}

// ExpectedSeeings returns MaxSeeing/2 (uniform draw over [0, MaxSeeing]).
func (c Config) ExpectedSeeings() float64 { return float64(c.MaxSeeing) / 2 }

// KeyBase is the key of station index 0; station i has key KeyBase+i, so
// keys are unique and disjoint from indices (catching index/key mixups in
// tests).
const KeyBase = 10000

// KeyOf returns the station key for a station index.
func KeyOf(index int) int32 { return int32(KeyBase + index) }

// IndexOf inverts KeyOf; it returns -1 for keys outside the extension.
func IndexOf(key int32, n int) int {
	i := int(key) - KeyBase
	if i < 0 || i >= n {
		return -1
	}
	return i
}

var cityNames = []string{
	"Enschede", "Zurich", "Ulm", "Hengelo", "Almelo", "Deventer", "Apeldoorn",
	"Amersfoort", "Utrecht", "Gouda", "Delft", "Rotterdam", "Basel", "Bern",
	"Chur", "Geneva", "Lausanne", "Lugano", "Luzern", "Winterthur",
}

var words = []string{
	"express", "local", "regional", "museum", "cathedral", "bridge", "tower",
	"garden", "market", "harbour", "castle", "gallery", "fountain", "abbey",
	"theatre", "arcade", "panorama", "monument", "quarter", "terrace",
}

func pick(rng *xrand.Source, list []string) string { return list[rng.Intn(len(list))] }

// Generate produces a benchmark extension. The same Config always yields
// the same database, bit for bit. Each station draws from two independent
// streams keyed by (Seed, index): one for the platform/connection
// structure, one for the sightseeings. Consequently the object graph is
// identical across MaxSeeing settings, which lets the Figure 5 experiment
// isolate the pure object-size effect.
func Generate(c Config) ([]*Station, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	stations := make([]*Station, c.N)
	for i := range stations {
		st, err := genStation(c, i)
		if err != nil {
			return nil, err
		}
		stations[i] = st
	}
	return stations, nil
}

func genStation(c Config, index int) (*Station, error) {
	rng := xrand.New(xrand.Mix(c.Seed, uint64(index)*2))
	seeRng := xrand.New(xrand.Mix(c.Seed, uint64(index)*2+1))
	s := &Station{
		Key:  KeyOf(index),
		Name: truncate(fmt.Sprintf("%s Centraal %d (%s line)", pick(rng, cityNames), index, pick(rng, words)), StrSize),
	}
	for slot := 0; slot < c.Fanout; slot++ {
		if !rng.Bool(c.Prob) {
			continue
		}
		p := Platform{
			Nr:          int32(slot + 1),
			TicketCode:  int32(rng.Intn(9000) + 1000),
			Information: truncate(fmt.Sprintf("platform %d: %s services, %s side", slot+1, pick(rng, words), pick(rng, words)), StrSize),
		}
		// Each of Fanout railroads exists with probability Prob; each
		// existing railroad establishes Fanout connections, each again with
		// probability Prob (paper: at most 4 connections per platform, each
		// effectively with probability 0.8² = 0.64).
		for rail := 0; rail < c.Fanout; rail++ {
			if !rng.Bool(c.Prob) {
				continue
			}
			p.NoLine++
			for conn := 0; conn < c.Fanout; conn++ {
				if !rng.Bool(c.Prob) {
					continue
				}
				target := rng.Intn(c.N)
				p.Conns = append(p.Conns, Connection{
					LineNr:         int32(rail + 1),
					KeyConnection:  KeyOf(target),
					OidConnection:  int32(target),
					DepartureTimes: truncate(fmt.Sprintf("%02d:%02d %02d:%02d %02d:%02d", rng.Intn(24), rng.Intn(60), rng.Intn(24), rng.Intn(60), rng.Intn(24), rng.Intn(60)), StrSize),
				})
			}
		}
		s.Platforms = append(s.Platforms, p)
	}
	nsee := seeRng.Intn(c.MaxSeeing + 1)
	for j := 0; j < nsee; j++ {
		s.Seeings = append(s.Seeings, Sightseeing{
			Nr:          int32(j + 1),
			Description: truncate(fmt.Sprintf("the old %s of %s", pick(seeRng, words), pick(seeRng, cityNames)), StrSize),
			Location:    truncate(fmt.Sprintf("%s street %d", pick(seeRng, words), seeRng.Intn(200)+1), StrSize),
			History:     truncate(fmt.Sprintf("built %d, restored %d", 1500+seeRng.Intn(400), 1900+seeRng.Intn(90)), StrSize),
			Remarks:     truncate(fmt.Sprintf("open %d-%d, %s", 8+seeRng.Intn(3), 16+seeRng.Intn(6), pick(seeRng, words)), StrSize),
		})
	}
	s.NoPlatform = int32(len(s.Platforms))
	s.NoSeeing = int32(len(s.Seeings))
	if enc := StationType.EncodedSize(s.Tuple()); enc > 60000 {
		return nil, fmt.Errorf("cobench: station %d encodes to %d bytes, too large for the engine", index, enc)
	}
	return s, nil
}

func truncate(s string, n int) string {
	if len(s) > n {
		return s[:n]
	}
	return s
}

// Stats summarizes a generated extension; the paper reports the realised
// averages of its extension in §5.1 (1.59 platforms, 4.04 connections,
// 7.64 sightseeings).
type Stats struct {
	N               int
	AvgPlatforms    float64
	AvgConnections  float64
	AvgSeeings      float64
	AvgGrand        float64 // realised average grand-children per station
	MaxPlatforms    int
	MaxConnections  int // per station
	MaxSeeings      int
	AvgEncodedBytes float64 // average encoded NF² object size
}

// Describe computes extension statistics.
func Describe(stations []*Station) Stats {
	st := Stats{N: len(stations)}
	if st.N == 0 {
		return st
	}
	var plat, conn, see, grand, bytes float64
	for _, s := range stations {
		nc := s.NumConnections()
		plat += float64(len(s.Platforms))
		conn += float64(nc)
		see += float64(len(s.Seeings))
		bytes += float64(StationType.EncodedSize(s.Tuple()))
		for _, child := range s.Children() {
			grand += float64(stations[child].NumConnections())
		}
		if len(s.Platforms) > st.MaxPlatforms {
			st.MaxPlatforms = len(s.Platforms)
		}
		if nc > st.MaxConnections {
			st.MaxConnections = nc
		}
		if len(s.Seeings) > st.MaxSeeings {
			st.MaxSeeings = len(s.Seeings)
		}
	}
	n := float64(st.N)
	st.AvgPlatforms = plat / n
	st.AvgConnections = conn / n
	st.AvgSeeings = see / n
	st.AvgGrand = grand / n
	st.AvgEncodedBytes = bytes / n
	return st
}

// SizeBucket is one bar of an object-size histogram.
type SizeBucket struct {
	// Pages is the object footprint under direct storage, approximated as
	// ceil(encoded/effectivePage) with a 2012-byte effective page.
	Pages int
	Count int
}

// SizeHistogram buckets the extension's objects by their direct-storage
// page footprint. The shape explains the Figure 5/6 behaviour: the wider
// the distribution, the more the ceiling effects and cache misses of the
// direct models hurt.
func SizeHistogram(stations []*Station) []SizeBucket {
	const effPage = 2012
	counts := map[int]int{}
	maxPages := 0
	for _, s := range stations {
		enc := StationType.EncodedSize(s.Tuple())
		pages := (enc + effPage - 1) / effPage
		counts[pages]++
		if pages > maxPages {
			maxPages = pages
		}
	}
	var out []SizeBucket
	for p := 1; p <= maxPages; p++ {
		out = append(out, SizeBucket{Pages: p, Count: counts[p]})
	}
	return out
}
