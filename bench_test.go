// Benchmark harness: one testing.B benchmark per table and figure of the
// paper, plus micro-benchmarks of the substrate. Each iteration of a
// table/figure benchmark regenerates that experiment from scratch
// (generation, load, queries) and reports the experiment's headline
// numbers as custom metrics, so
//
//	go test -bench=. -benchmem
//
// both times the harness and reprints the reproduced values. Run with
// -benchtime=1x for a single reproduction pass.
package complexobj_test

import (
	"fmt"
	"runtime"
	"testing"

	"complexobj"
	"complexobj/cobench"
	"complexobj/costmodel"
	"complexobj/experiments"
	"complexobj/nf2"
)

// benchSuite builds a fresh suite per iteration so no cached results leak
// between iterations.
func benchConfig() experiments.Config {
	return experiments.DefaultConfig()
}

// BenchmarkTable2Sizes regenerates the physical layout survey of Table 2:
// every storage model loaded with the full 1500-station extension.
func BenchmarkTable2Sizes(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := experiments.New(benchConfig())
		rows, err := s.Table2()
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Relation == "DSM_Station" {
				b.ReportMetric(float64(r.M), "DSM-pages")
			}
		}
	}
}

// BenchmarkTable3Analytical evaluates the full analytical model (Equations
// 2-8 for all six model rows) under the paper's layout constants.
func BenchmarkTable3Analytical(b *testing.B) {
	p, w := costmodel.PaperParams(), costmodel.PaperWorkload()
	var rows []costmodel.QueryEstimates
	for i := 0; i < b.N; i++ {
		rows = costmodel.EstimateAll(p, w)
	}
	for _, r := range rows {
		if r.Model == costmodel.DSM {
			b.ReportMetric(r.Q2b, "DSM-q2b-pages/loop")
		}
	}
}

// BenchmarkTable4PageIOs reproduces the measured page-I/O matrix (Table 4;
// Tables 5 and 6 come from the same run). One iteration is the complete
// 5-model × 7-query benchmark at paper scale.
func BenchmarkTable4PageIOs(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := experiments.New(benchConfig())
		m, err := s.Matrix()
		if err != nil {
			b.Fatal(err)
		}
		if c, ok := m.Get("DASDBS-NSM", "2b"); ok {
			b.ReportMetric(c.Pages, "DNSM-q2b-pages/loop")
		}
		if c, ok := m.Get("DSM", "2b"); ok {
			b.ReportMetric(c.Pages, "DSM-q2b-pages/loop")
		}
	}
}

// BenchmarkMatrixWorkers measures the full 5-model × 7-query measurement
// matrix at paper scale: once through the serial path (Workers=1) and once
// through the bounded (model, query) worker pool sized to the machine
// (Workers=0 → GOMAXPROCS). Every worker owns its engines, so the speedup
// scales with cores while the emitted numbers stay byte-identical.
func BenchmarkMatrixWorkers(b *testing.B) {
	for _, bc := range []struct {
		name    string
		workers int
	}{
		{"serial", 1},
		{fmt.Sprintf("gomaxprocs=%d", runtime.GOMAXPROCS(0)), 0},
	} {
		b.Run(bc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := benchConfig()
				cfg.Workers = bc.workers
				s := experiments.New(cfg)
				if _, err := s.Matrix(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTable5IOCalls isolates the I/O-call metric of Table 5 on the
// loop queries (the full matrix is exercised by BenchmarkTable4PageIOs).
func BenchmarkTable5IOCalls(b *testing.B) {
	gen := cobench.DefaultConfig()
	w := cobench.DefaultWorkload()
	for i := 0; i < b.N; i++ {
		db, err := complexobj.OpenLoaded(complexobj.DSM, complexobj.Options{}, gen)
		if err != nil {
			b.Fatal(err)
		}
		res, err := db.Run(cobench.Q2b, w)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Calls, "DSM-q2b-calls/loop")
		b.ReportMetric(res.Pages/res.Calls, "DSM-pages/call")
	}
}

// BenchmarkTable6BufferFixes isolates the buffer-fix metric of Table 6.
func BenchmarkTable6BufferFixes(b *testing.B) {
	gen := cobench.DefaultConfig()
	w := cobench.DefaultWorkload()
	for i := 0; i < b.N; i++ {
		db, err := complexobj.OpenLoaded(complexobj.DASDBSNSM, complexobj.Options{}, gen)
		if err != nil {
			b.Fatal(err)
		}
		res, err := db.Run(cobench.Q2b, w)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Fixes, "DNSM-q2b-fixes/loop")
	}
}

// BenchmarkTable7DataSkew reproduces the §5.5 data-skew comparison.
func BenchmarkTable7DataSkew(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := experiments.New(benchConfig())
		rows, err := s.Table7()
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Model == "DASDBS-NSM" {
				b.ReportMetric(r.SkewQ2b, "DNSM-q2b-skew-pages/loop")
			}
		}
	}
}

// BenchmarkTable8Ranking derives the overall qualitative evaluation.
func BenchmarkTable8Ranking(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := experiments.New(benchConfig())
		m, err := s.Matrix()
		if err != nil {
			b.Fatal(err)
		}
		if _, err := m.Table8(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure5ObjectSize reproduces the object-size sweep of Figure 5
// (max sightseeings 0/15/30 × three models × queries 1c, 2b, 3b).
func BenchmarkFigure5ObjectSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := experiments.New(benchConfig())
		cells, err := s.Figure5()
		if err != nil {
			b.Fatal(err)
		}
		for _, c := range cells {
			if c.Model == "DSM" && c.MaxSeeing == 30 {
				b.ReportMetric(c.Q2b, "DSM-q2b-maxSee30-pages/loop")
			}
		}
	}
}

// BenchmarkFigure6Caching reproduces the database-size/cache sweep of
// Figure 6 (six sizes × three models, measured vs analytical).
func BenchmarkFigure6Caching(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := experiments.New(benchConfig())
		points, err := s.Figure6()
		if err != nil {
			b.Fatal(err)
		}
		for _, p := range points {
			if p.Model == "DSM" && p.N == 1500 {
				b.ReportMetric(p.Measured/p.BestCase, "DSM-overflow-factor")
			}
		}
	}
}

// --- per-model micro benchmarks --------------------------------------------

// BenchmarkNavigateWarm measures one warm navigation step per model on a
// mid-size database: the hot operation of queries 2 and 3.
func BenchmarkNavigateWarm(b *testing.B) {
	gen := cobench.DefaultConfig().WithN(300)
	for _, kind := range complexobj.AllModels() {
		b.Run(kind.String(), func(b *testing.B) {
			db, err := complexobj.OpenLoaded(kind, complexobj.Options{}, gen)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := db.Navigate(i % 300); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFetchByAddress measures whole-object assembly per model.
func BenchmarkFetchByAddress(b *testing.B) {
	gen := cobench.DefaultConfig().WithN(300)
	for _, kind := range complexobj.AllModels() {
		if kind == complexobj.NSM {
			continue // no address access
		}
		b.Run(kind.String(), func(b *testing.B) {
			db, err := complexobj.OpenLoaded(kind, complexobj.Options{}, gen)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := db.FetchByAddress(i % 300); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkEncodeStation measures NF² encoding of an average benchmark
// object (the serialization cost under every storage model).
func BenchmarkEncodeStation(b *testing.B) {
	stations, err := cobench.Generate(cobench.DefaultConfig().WithN(50))
	if err != nil {
		b.Fatal(err)
	}
	tup := stations[7].Tuple()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cobench.StationType.Encode(tup); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDecodeStation measures full NF² decoding.
func BenchmarkDecodeStation(b *testing.B) {
	stations, err := cobench.Generate(cobench.DefaultConfig().WithN(50))
	if err != nil {
		b.Fatal(err)
	}
	buf, err := cobench.StationType.Encode(stations[7].Tuple())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cobench.StationType.Decode(buf); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDecodePartial measures projecting a single attribute out of an
// encoded object — the partial-access path DASDBS-DSM relies on.
func BenchmarkDecodePartial(b *testing.B) {
	stations, err := cobench.Generate(cobench.DefaultConfig().WithN(50))
	if err != nil {
		b.Fatal(err)
	}
	buf, err := cobench.StationType.Encode(stations[7].Tuple())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cobench.StationType.DecodeAttr(buf, cobench.StKey); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGenerate measures extension generation throughput.
func BenchmarkGenerate(b *testing.B) {
	cfg := cobench.DefaultConfig().WithN(500)
	for i := 0; i < b.N; i++ {
		if _, err := cobench.Generate(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCostModel measures a single full-model estimate (all queries,
// one storage model).
func BenchmarkCostModel(b *testing.B) {
	p, w := costmodel.PaperParams(), costmodel.PaperWorkload()
	for i := 0; i < b.N; i++ {
		costmodel.Estimate(costmodel.DASDBSNSM, p, w)
	}
}

var sinkTuple nf2.Tuple

// BenchmarkQuickNF2RoundTrip measures encode+decode of a small nested
// tuple, the unit cost behind every storage operation.
func BenchmarkQuickNF2RoundTrip(b *testing.B) {
	inner := nf2.MustTupleType("I",
		nf2.Attr{Name: "A", Type: nf2.IntType()},
		nf2.Attr{Name: "B", Type: nf2.StringType(32)},
	)
	tt := nf2.MustTupleType("T",
		nf2.Attr{Name: "K", Type: nf2.IntType()},
		nf2.Attr{Name: "R", Type: nf2.RelType(inner)},
	)
	tup := nf2.NewTuple(nf2.IntValue(1), nf2.RelValue([]nf2.Tuple{
		nf2.NewTuple(nf2.IntValue(2), nf2.StringValue("hello")),
		nf2.NewTuple(nf2.IntValue(3), nf2.StringValue("world")),
	}))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf, err := tt.Encode(tup)
		if err != nil {
			b.Fatal(err)
		}
		out, err := tt.Decode(buf)
		if err != nil {
			b.Fatal(err)
		}
		sinkTuple = out
	}
}

// BenchmarkIndexAblation reproduces the index-accounting ablation: the
// indexed model with free in-memory tables vs counted B+-tree I/O.
func BenchmarkIndexAblation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := experiments.New(benchConfig())
		a, err := s.IndexAblation()
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range a.Rows {
			if r.Query == "2b" {
				b.ReportMetric(r.CountedPages, "counted-q2b-pages/loop")
				b.ReportMetric(r.FreePages, "free-q2b-pages/loop")
			}
		}
	}
}

// BenchmarkPolicyAblation reproduces the LRU-vs-Clock ablation.
func BenchmarkPolicyAblation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := experiments.New(benchConfig())
		rows, err := s.PolicyAblation()
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Model == "DSM" {
				b.ReportMetric(r.Clock/r.LRU, "DSM-clock/lru")
			}
		}
	}
}

// BenchmarkBTreeGet measures one warm B+-tree lookup.
func BenchmarkBTreeGet(b *testing.B) {
	db, err := complexobj.OpenLoaded(complexobj.NSMIndex,
		complexobj.Options{CountIndexIO: true}, cobench.DefaultConfig().WithN(500))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.ReadRoot(i % 500); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDistributionAblation reproduces the §5.5 shared-nothing
// balance extension (default vs skew over 8 nodes).
func BenchmarkDistributionAblation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := experiments.New(benchConfig())
		rows, err := s.DistributionAblation(8)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Extension == "skew" {
				b.ReportMetric(r.HottestLoopPages, "skew-hottest-loop-pages")
			}
		}
	}
}

// BenchmarkBufferSweep reproduces the buffer-size sweep extension.
func BenchmarkBufferSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := experiments.New(benchConfig())
		points, err := s.BufferSweep()
		if err != nil {
			b.Fatal(err)
		}
		for _, p := range points {
			if p.Model == "DSM" && p.BufferPages == 4800 {
				b.ReportMetric(p.Measured, "DSM-q2b-bigcache-pages/loop")
			}
		}
	}
}
