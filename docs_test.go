package complexobj_test

import (
	"fmt"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestInternalPackageDocs is the godoc-presence check (run in CI): every
// internal package must carry a doc.go whose package comment documents
// the package contract. Keeping the comment in a dedicated doc.go (rather
// than scattered over implementation files) is what makes this check — and
// the review habit it enforces — trivial.
func TestInternalPackageDocs(t *testing.T) {
	dirs, err := os.ReadDir("internal")
	if err != nil {
		t.Fatal(err)
	}
	if len(dirs) == 0 {
		t.Fatal("no internal packages found")
	}
	for _, d := range dirs {
		if !d.IsDir() {
			continue
		}
		dir := filepath.Join("internal", d.Name())
		t.Run(d.Name(), func(t *testing.T) {
			docPath := filepath.Join(dir, "doc.go")
			if _, err := os.Stat(docPath); err != nil {
				t.Fatalf("%s: missing doc.go (package comments live there)", dir)
			}
			fset := token.NewFileSet()
			f, err := parser.ParseFile(fset, docPath, nil, parser.ParseComments|parser.PackageClauseOnly)
			if err != nil {
				t.Fatal(err)
			}
			if f.Doc == nil || len(strings.TrimSpace(f.Doc.Text())) < 80 {
				t.Errorf("%s: doc.go has no substantive package comment", dir)
			}
			if !strings.HasPrefix(f.Doc.Text(), "Package "+f.Name.Name) {
				t.Errorf("%s: package comment does not start with %q", dir, "Package "+f.Name.Name)
			}
			// doc.go must stay documentation-only and the comment must not
			// be duplicated on another file's package clause.
			pkgs, err := parser.ParseDir(fset, dir, nil, parser.ParseComments)
			if err != nil {
				t.Fatal(err)
			}
			for _, pkg := range pkgs {
				for path, file := range pkg.Files {
					if filepath.Base(path) != "doc.go" && file.Doc != nil {
						t.Errorf("%s: second package comment in %s (keep it in doc.go)", dir, path)
					}
				}
			}
		})
	}
}

// TestPaperMapCoverage pins the acceptance bar for docs/PAPER_MAP.md: it
// must cover every table (1-8) and figure (5-6) of the paper, name the
// -list discovery flag, and be cross-linked from the README.
func TestPaperMapCoverage(t *testing.T) {
	raw, err := os.ReadFile(filepath.Join("docs", "PAPER_MAP.md"))
	if err != nil {
		t.Fatal(err)
	}
	doc := string(raw)
	for i := 1; i <= 8; i++ {
		if want := fmt.Sprintf("### Table %d", i); !strings.Contains(doc, want) {
			t.Errorf("PAPER_MAP.md missing a %q section", want)
		}
	}
	for _, fig := range []int{5, 6} {
		if want := fmt.Sprintf("### Figure %d", fig); !strings.Contains(doc, want) {
			t.Errorf("PAPER_MAP.md missing a %q section", want)
		}
	}
	for _, needle := range []string{"cotables -list", "experiments.Suite.Matrix()", "change-attribute", "Index I/O"} {
		if !strings.Contains(doc, needle) {
			t.Errorf("PAPER_MAP.md does not mention %q", needle)
		}
	}

	readme, err := os.ReadFile("README.md")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(readme), "docs/PAPER_MAP.md") {
		t.Error("README does not link docs/PAPER_MAP.md")
	}
	if !strings.Contains(string(readme), "## Parallelism & memory") {
		t.Error("README missing the 'Parallelism & memory' section")
	}
}
