package nf2

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Binary encoding of a tuple (all integers big-endian):
//
//	u16                total encoded length, including this header
//	u16 × numAttrs     offset of each attribute payload from tuple start
//	attribute payloads in schema order:
//	  Int / Link       4 bytes
//	  String           u16 actual length + declared-capacity fixed bytes
//	  Rel              u16 subtuple count
//	                   u16 × count offsets of each subtuple relative to the
//	                                relation payload start
//	                   encoded subtuples
//
// The overheads are therefore explicit and small, in the spirit of the
// DASDBS mini-directories: 2+2·n bytes per tuple of n attributes, 2 bytes
// per string, 2+2·c bytes per relation of c subtuples. Fixed-capacity
// string payloads keep the paper's byte accounting (a STR is its declared
// size on disk regardless of content). The offset directory is what allows
// partial decoding (DecodeAttr) and hence the DASDBS-style access to parts
// of an object without materializing all of it.

// Encoding errors.
var (
	ErrTupleTooLarge = errors.New("nf2: encoded tuple exceeds 64 KiB")
	ErrCorrupt       = errors.New("nf2: corrupt encoding")
)

const maxEncoded = 1<<16 - 1

// EncodedSize returns the exact number of bytes Encode will produce for t.
// It does not validate; call Validate first for untrusted tuples.
func (tt *TupleType) EncodedSize(t Tuple) int {
	n := 2 + 2*len(tt.Attrs)
	for i, a := range tt.Attrs {
		switch a.Type.Kind {
		case Int, Link:
			n += 4
		case String:
			n += 2 + a.Type.Size
		case Rel:
			subs := t.Vals[i].rel
			n += 2 + 2*len(subs)
			for _, sub := range subs {
				n += a.Type.Elem.EncodedSize(sub)
			}
		}
	}
	return n
}

// Encode validates t against the schema and serializes it.
func (tt *TupleType) Encode(t Tuple) ([]byte, error) {
	if err := tt.Validate(t); err != nil {
		return nil, err
	}
	size := tt.EncodedSize(t)
	if size > maxEncoded {
		return nil, fmt.Errorf("%w: %s is %d bytes", ErrTupleTooLarge, tt.Name, size)
	}
	buf := make([]byte, 0, size)
	buf, err := tt.appendTuple(buf, t)
	if err != nil {
		return nil, err
	}
	if len(buf) != size {
		return nil, fmt.Errorf("nf2: internal size mismatch for %s: computed %d, wrote %d",
			tt.Name, size, len(buf))
	}
	return buf, nil
}

func (tt *TupleType) appendTuple(buf []byte, t Tuple) ([]byte, error) {
	base := len(buf)
	size := tt.EncodedSize(t)
	if size > maxEncoded {
		return nil, fmt.Errorf("%w: %s is %d bytes", ErrTupleTooLarge, tt.Name, size)
	}
	buf = append(buf, 0, 0)
	binary.BigEndian.PutUint16(buf[base:], uint16(size))
	dirBase := len(buf)
	for range tt.Attrs {
		buf = append(buf, 0, 0)
	}
	for i, a := range tt.Attrs {
		binary.BigEndian.PutUint16(buf[dirBase+2*i:], uint16(len(buf)-base))
		v := t.Vals[i]
		switch a.Type.Kind {
		case Int, Link:
			buf = append(buf, 0, 0, 0, 0)
			binary.BigEndian.PutUint32(buf[len(buf)-4:], uint32(v.i))
		case String:
			buf = append(buf, 0, 0)
			binary.BigEndian.PutUint16(buf[len(buf)-2:], uint16(len(v.s)))
			buf = append(buf, v.s...)
			for pad := a.Type.Size - len(v.s); pad > 0; pad-- {
				buf = append(buf, 0)
			}
		case Rel:
			relBase := len(buf)
			buf = append(buf, 0, 0)
			binary.BigEndian.PutUint16(buf[relBase:], uint16(len(v.rel)))
			subDir := len(buf)
			for range v.rel {
				buf = append(buf, 0, 0)
			}
			for j, sub := range v.rel {
				binary.BigEndian.PutUint16(buf[subDir+2*j:], uint16(len(buf)-relBase))
				var err error
				buf, err = a.Type.Elem.appendTuple(buf, sub)
				if err != nil {
					return nil, err
				}
			}
		}
	}
	return buf, nil
}

// EncodedLen returns the total length header of an encoded tuple, so
// callers can split concatenated encodings.
func EncodedLen(buf []byte) (int, error) {
	if len(buf) < 2 {
		return 0, fmt.Errorf("%w: short header", ErrCorrupt)
	}
	n := int(binary.BigEndian.Uint16(buf))
	if n < 2 || n > len(buf) {
		return 0, fmt.Errorf("%w: length %d of %d", ErrCorrupt, n, len(buf))
	}
	return n, nil
}

// Decode deserializes one tuple from the start of buf (which may contain
// trailing bytes beyond the encoded tuple).
func (tt *TupleType) Decode(buf []byte) (Tuple, error) {
	t := Tuple{Vals: make([]Value, len(tt.Attrs))}
	for i := range tt.Attrs {
		v, err := tt.DecodeAttr(buf, i)
		if err != nil {
			return Tuple{}, err
		}
		t.Vals[i] = v
	}
	return t, nil
}

// VisitRel iterates the elements of Rel attribute i without materializing
// any tuples: fn is invoked once per element with its index, the element
// count and the element's encoded bytes (aliasing buf — valid only during
// the call), and decodes what it needs via Elem's DecodeAttr. This is the
// allocation-free counterpart of DecodeAttr for relation attributes; the
// object-assembly hot paths use it so that decoding a stored object
// allocates only the values that end up in the result.
func (tt *TupleType) VisitRel(buf []byte, i int, fn func(j, n int, elem []byte) error) error {
	if i < 0 || i >= len(tt.Attrs) {
		return fmt.Errorf("nf2: attribute %d out of range for %s", i, tt.Name)
	}
	a := tt.Attrs[i]
	if a.Type.Kind != Rel {
		return fmt.Errorf("nf2: %s.%s is not a relation attribute", tt.Name, a.Name)
	}
	total, err := EncodedLen(buf)
	if err != nil {
		return err
	}
	buf = buf[:total]
	need := 2 + 2*len(tt.Attrs)
	if total < need {
		return fmt.Errorf("%w: %s directory truncated", ErrCorrupt, tt.Name)
	}
	off := int(binary.BigEndian.Uint16(buf[2+2*i:]))
	if off < need || off > total {
		return fmt.Errorf("%w: %s.%s offset %d", ErrCorrupt, tt.Name, a.Name, off)
	}
	if off+2 > total {
		return fmt.Errorf("%w: %s.%s rel count", ErrCorrupt, tt.Name, a.Name)
	}
	count := int(binary.BigEndian.Uint16(buf[off:]))
	dir := off + 2
	if dir+2*count > total {
		return fmt.Errorf("%w: %s.%s rel directory", ErrCorrupt, tt.Name, a.Name)
	}
	for j := 0; j < count; j++ {
		rel := int(binary.BigEndian.Uint16(buf[dir+2*j:]))
		subOff := off + rel
		if rel < 2+2*count || subOff >= total {
			return fmt.Errorf("%w: %s.%s[%d] offset", ErrCorrupt, tt.Name, a.Name, j)
		}
		if err := fn(j, count, buf[subOff:]); err != nil {
			return err
		}
	}
	return nil
}

// DecodeAttr decodes only attribute i of the encoded tuple, using the
// offset directory for random access. This is the CPU-level counterpart of
// the paper's "only the attributes tuples that are needed will be
// projected/selected" (§2.2): storage models use it to read single
// attributes (e.g. the child references) without materializing the rest.
func (tt *TupleType) DecodeAttr(buf []byte, i int) (Value, error) {
	if i < 0 || i >= len(tt.Attrs) {
		return Value{}, fmt.Errorf("nf2: attribute %d out of range for %s", i, tt.Name)
	}
	total, err := EncodedLen(buf)
	if err != nil {
		return Value{}, err
	}
	buf = buf[:total]
	need := 2 + 2*len(tt.Attrs)
	if total < need {
		return Value{}, fmt.Errorf("%w: %s directory truncated", ErrCorrupt, tt.Name)
	}
	off := int(binary.BigEndian.Uint16(buf[2+2*i:]))
	if off < need || off > total {
		return Value{}, fmt.Errorf("%w: %s.%s offset %d", ErrCorrupt, tt.Name, tt.Attrs[i].Name, off)
	}
	a := tt.Attrs[i]
	switch a.Type.Kind {
	case Int, Link:
		if off+4 > total {
			return Value{}, fmt.Errorf("%w: %s.%s int payload", ErrCorrupt, tt.Name, a.Name)
		}
		v := int32(binary.BigEndian.Uint32(buf[off:]))
		if a.Type.Kind == Link {
			return LinkValue(v), nil
		}
		return IntValue(v), nil
	case String:
		if off+2+a.Type.Size > total {
			return Value{}, fmt.Errorf("%w: %s.%s string payload", ErrCorrupt, tt.Name, a.Name)
		}
		n := int(binary.BigEndian.Uint16(buf[off:]))
		if n > a.Type.Size {
			return Value{}, fmt.Errorf("%w: %s.%s string length %d > %d",
				ErrCorrupt, tt.Name, a.Name, n, a.Type.Size)
		}
		return StringValue(string(buf[off+2 : off+2+n])), nil
	case Rel:
		if off+2 > total {
			return Value{}, fmt.Errorf("%w: %s.%s rel count", ErrCorrupt, tt.Name, a.Name)
		}
		count := int(binary.BigEndian.Uint16(buf[off:]))
		dir := off + 2
		if dir+2*count > total {
			return Value{}, fmt.Errorf("%w: %s.%s rel directory", ErrCorrupt, tt.Name, a.Name)
		}
		subs := make([]Tuple, count)
		for j := 0; j < count; j++ {
			rel := int(binary.BigEndian.Uint16(buf[dir+2*j:]))
			subOff := off + rel
			if rel < 2+2*count || subOff >= total {
				return Value{}, fmt.Errorf("%w: %s.%s[%d] offset", ErrCorrupt, tt.Name, a.Name, j)
			}
			sub, err := a.Type.Elem.Decode(buf[subOff:])
			if err != nil {
				return Value{}, err
			}
			subs[j] = sub
		}
		return RelValue(subs), nil
	default:
		return Value{}, fmt.Errorf("nf2: unknown kind %v", a.Type.Kind)
	}
}
