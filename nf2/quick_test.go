package nf2

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// randTuple draws a random valid tuple for the given schema.
func randTuple(tt *TupleType, rng *rand.Rand, depthBudget int) Tuple {
	vals := make([]Value, len(tt.Attrs))
	for i, a := range tt.Attrs {
		switch a.Type.Kind {
		case Int:
			vals[i] = IntValue(int32(rng.Uint32()))
		case Link:
			vals[i] = LinkValue(int32(rng.Uint32()))
		case String:
			n := rng.Intn(a.Type.Size + 1)
			b := make([]byte, n)
			for j := range b {
				b[j] = byte('a' + rng.Intn(26))
			}
			vals[i] = StringValue(string(b))
		case Rel:
			count := 0
			if depthBudget > 0 {
				count = rng.Intn(5)
			}
			subs := make([]Tuple, count)
			for j := range subs {
				subs[j] = randTuple(a.Type.Elem, rng, depthBudget-1)
			}
			vals[i] = RelValue(subs)
		}
	}
	return Tuple{Vals: vals}
}

// quickTuple adapts randTuple to testing/quick generation.
type quickTuple struct{ T Tuple }

var quickSchema = MustTupleType("Q",
	Attr{"K", IntType()},
	Attr{"S", StringType(30)},
	Attr{"L", LinkType()},
	Attr{"R", RelType(MustTupleType("QInner",
		Attr{"A", IntType()},
		Attr{"B", StringType(12)},
		Attr{"C", RelType(MustTupleType("QLeaf",
			Attr{"V", LinkType()},
			Attr{"W", StringType(4)},
		))},
	))},
)

// Generate implements quick.Generator.
func (quickTuple) Generate(rng *rand.Rand, _ int) reflect.Value {
	return reflect.ValueOf(quickTuple{T: randTuple(quickSchema, rng, 2)})
}

// Property: every randomly generated valid tuple validates, round-trips
// through Encode/Decode, and EncodedSize predicts the encoding length.
func TestQuickRoundTrip(t *testing.T) {
	f := func(q quickTuple) bool {
		if err := quickSchema.Validate(q.T); err != nil {
			return false
		}
		buf, err := quickSchema.Encode(q.T)
		if err != nil {
			return false
		}
		if len(buf) != quickSchema.EncodedSize(q.T) {
			return false
		}
		out, err := quickSchema.Decode(buf)
		if err != nil {
			return false
		}
		return quickSchema.Equal(q.T, out)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: partial attribute decoding agrees with full decoding for every
// attribute position.
func TestQuickDecodeAttrAgreesWithDecode(t *testing.T) {
	f := func(q quickTuple) bool {
		buf, err := quickSchema.Encode(q.T)
		if err != nil {
			return false
		}
		full, err := quickSchema.Decode(buf)
		if err != nil {
			return false
		}
		for i := range quickSchema.Attrs {
			v, err := quickSchema.DecodeAttr(buf, i)
			if err != nil {
				return false
			}
			probe := Tuple{Vals: make([]Value, len(quickSchema.Attrs))}
			copy(probe.Vals, full.Vals)
			probe.Vals[i] = v
			if !quickSchema.Equal(full, probe) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: decoding never panics on arbitrary byte garbage (it may error).
func TestQuickDecodeGarbageNeverPanics(t *testing.T) {
	f := func(data []byte) bool {
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("Decode panicked on %v: %v", data, r)
			}
		}()
		_, _ = quickSchema.Decode(data)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// Property: flipping a single byte of a valid encoding either errors or
// yields a tuple that still validates (no memory-unsafe behaviour, no
// panic). This guards the bounds checks in DecodeAttr.
func TestQuickSingleByteCorruption(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	base := randTuple(quickSchema, rng, 2)
	buf, err := quickSchema.Encode(base)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 500; trial++ {
		c := make([]byte, len(buf))
		copy(c, buf)
		c[rng.Intn(len(c))] ^= byte(1 + rng.Intn(255))
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("panic on corrupted buffer: %v", r)
				}
			}()
			if out, err := quickSchema.Decode(c); err == nil {
				if err := quickSchema.Validate(out); err != nil {
					t.Fatalf("decoded invalid tuple without error: %v", err)
				}
			}
		}()
	}
}
