// Package nf2 implements the hierarchical complex object model of the paper:
// nested (NF², "non first normal form") tuples built from integer, fixed-size
// string, object-reference (LINK) and relation-valued attributes, together
// with a binary storage encoding.
//
// The paper (§1) restricts itself to "tuples with relation-valued
// attributes, the so-called nested or NF² tuples, as examples of complex
// objects"; this package is the corresponding data model. Storage models
// consume the encoding produced here, so every byte of tuple overhead is
// explicit and documented (see Encode).
package nf2

import (
	"errors"
	"fmt"
)

// Kind enumerates the attribute type constructors of the model.
type Kind uint8

const (
	// Int is a 4-byte signed integer (the paper's INT, 4 bytes).
	Int Kind = iota
	// String is a fixed-capacity string (the paper's STR, e.g. 100 bytes).
	String
	// Link is a 4-byte object reference (the paper's LINK), holding a
	// logical object identifier resolved through an address table.
	Link
	// Rel is a relation-valued attribute: an ordered set of subtuples
	// (the paper's {( ... )} constructor).
	Rel
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case Int:
		return "INT"
	case String:
		return "STR"
	case Link:
		return "LINK"
	case Rel:
		return "REL"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Type describes one attribute type.
type Type struct {
	Kind Kind
	// Size is the fixed capacity in bytes for String attributes.
	Size int
	// Elem is the subtuple type for Rel attributes.
	Elem *TupleType
}

// IntType returns the 4-byte integer type.
func IntType() Type { return Type{Kind: Int} }

// StringType returns a fixed-capacity string type of n bytes.
func StringType(n int) Type { return Type{Kind: String, Size: n} }

// LinkType returns the 4-byte object reference type.
func LinkType() Type { return Type{Kind: Link} }

// RelType returns a relation-valued type with the given subtuple schema.
func RelType(elem *TupleType) Type { return Type{Kind: Rel, Elem: elem} }

// Attr is a named attribute of a tuple type.
type Attr struct {
	Name string
	Type Type
}

// TupleType is the schema of a (possibly nested) tuple.
type TupleType struct {
	Name  string
	Attrs []Attr

	index map[string]int
}

// Schema validation errors.
var (
	ErrEmptySchema = errors.New("nf2: tuple type needs at least one attribute")
	ErrDupAttr     = errors.New("nf2: duplicate attribute name")
	ErrBadString   = errors.New("nf2: string attribute needs positive size")
	ErrNilElem     = errors.New("nf2: relation attribute needs an element type")
)

// NewTupleType builds and validates a tuple schema.
func NewTupleType(name string, attrs ...Attr) (*TupleType, error) {
	if len(attrs) == 0 {
		return nil, fmt.Errorf("%w: %s", ErrEmptySchema, name)
	}
	tt := &TupleType{Name: name, Attrs: attrs, index: make(map[string]int, len(attrs))}
	for i, a := range attrs {
		if a.Name == "" {
			return nil, fmt.Errorf("nf2: %s attribute %d has no name", name, i)
		}
		if _, dup := tt.index[a.Name]; dup {
			return nil, fmt.Errorf("%w: %s.%s", ErrDupAttr, name, a.Name)
		}
		tt.index[a.Name] = i
		switch a.Type.Kind {
		case String:
			if a.Type.Size <= 0 {
				return nil, fmt.Errorf("%w: %s.%s", ErrBadString, name, a.Name)
			}
		case Rel:
			if a.Type.Elem == nil {
				return nil, fmt.Errorf("%w: %s.%s", ErrNilElem, name, a.Name)
			}
		case Int, Link:
		default:
			return nil, fmt.Errorf("nf2: %s.%s has unknown kind %d", name, a.Name, a.Type.Kind)
		}
	}
	return tt, nil
}

// MustTupleType is NewTupleType that panics on error; intended for
// statically known schemas such as the benchmark's.
func MustTupleType(name string, attrs ...Attr) *TupleType {
	tt, err := NewTupleType(name, attrs...)
	if err != nil {
		panic(err)
	}
	return tt
}

// AttrIndex returns the position of the named attribute, or -1.
func (tt *TupleType) AttrIndex(name string) int {
	if i, ok := tt.index[name]; ok {
		return i
	}
	return -1
}

// NumAttrs returns the number of attributes.
func (tt *TupleType) NumAttrs() int { return len(tt.Attrs) }

// String renders the schema in the paper's notation.
func (tt *TupleType) String() string {
	s := tt.Name + " = ("
	for i, a := range tt.Attrs {
		if i > 0 {
			s += ", "
		}
		switch a.Type.Kind {
		case String:
			s += fmt.Sprintf("%s STR(%d)", a.Name, a.Type.Size)
		case Rel:
			s += fmt.Sprintf("%s {(%s)}", a.Name, a.Type.Elem.Name)
		default:
			s += fmt.Sprintf("%s %s", a.Name, a.Type.Kind)
		}
	}
	return s + ")"
}
