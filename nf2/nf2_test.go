package nf2

import (
	"errors"
	"strings"
	"testing"
)

// testSchema builds a small two-level schema exercising all four kinds.
func testSchema(t *testing.T) *TupleType {
	t.Helper()
	inner := MustTupleType("Inner",
		Attr{"A", IntType()},
		Attr{"B", StringType(10)},
		Attr{"C", LinkType()},
	)
	return MustTupleType("Outer",
		Attr{"K", IntType()},
		Attr{"Name", StringType(20)},
		Attr{"Subs", RelType(inner)},
	)
}

func sampleTuple() Tuple {
	return NewTuple(
		IntValue(7),
		StringValue("hello"),
		RelValue([]Tuple{
			NewTuple(IntValue(1), StringValue("x"), LinkValue(100)),
			NewTuple(IntValue(2), StringValue("yy"), LinkValue(200)),
		}),
	)
}

func TestNewTupleTypeValidation(t *testing.T) {
	cases := []struct {
		name  string
		attrs []Attr
		want  error
	}{
		{"empty", nil, ErrEmptySchema},
		{"dup", []Attr{{"A", IntType()}, {"A", IntType()}}, ErrDupAttr},
		{"badstr", []Attr{{"S", StringType(0)}}, ErrBadString},
		{"nilrel", []Attr{{"R", Type{Kind: Rel}}}, ErrNilElem},
	}
	for _, c := range cases {
		if _, err := NewTupleType(c.name, c.attrs...); !errors.Is(err, c.want) {
			t.Errorf("%s: err = %v, want %v", c.name, err, c.want)
		}
	}
	if _, err := NewTupleType("ok", Attr{"A", IntType()}); err != nil {
		t.Errorf("valid schema rejected: %v", err)
	}
}

func TestAttrIndex(t *testing.T) {
	tt := testSchema(t)
	if i := tt.AttrIndex("Name"); i != 1 {
		t.Errorf("AttrIndex(Name) = %d", i)
	}
	if i := tt.AttrIndex("nope"); i != -1 {
		t.Errorf("AttrIndex(nope) = %d", i)
	}
	if tt.NumAttrs() != 3 {
		t.Errorf("NumAttrs = %d", tt.NumAttrs())
	}
}

func TestSchemaString(t *testing.T) {
	s := testSchema(t).String()
	for _, want := range []string{"Outer", "K INT", "Name STR(20)", "Subs {(Inner)}"} {
		if !strings.Contains(s, want) {
			t.Errorf("schema string %q missing %q", s, want)
		}
	}
}

func TestValidate(t *testing.T) {
	tt := testSchema(t)
	if err := tt.Validate(sampleTuple()); err != nil {
		t.Fatalf("valid tuple rejected: %v", err)
	}
	bad := sampleTuple()
	bad.Vals = bad.Vals[:2]
	if err := tt.Validate(bad); !errors.Is(err, ErrArity) {
		t.Errorf("arity err = %v", err)
	}
	bad = sampleTuple()
	bad.Vals[0] = StringValue("no")
	if err := tt.Validate(bad); !errors.Is(err, ErrKindMismatch) {
		t.Errorf("kind err = %v", err)
	}
	bad = sampleTuple()
	bad.Vals[1] = StringValue(strings.Repeat("x", 21))
	if err := tt.Validate(bad); !errors.Is(err, ErrStringTooBig) {
		t.Errorf("string size err = %v", err)
	}
	bad = sampleTuple()
	bad.Vals[2] = RelValue([]Tuple{NewTuple(IntValue(1))})
	if err := tt.Validate(bad); !errors.Is(err, ErrArity) {
		t.Errorf("nested arity err = %v", err)
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	tt := testSchema(t)
	in := sampleTuple()
	buf, err := tt.Encode(in)
	if err != nil {
		t.Fatal(err)
	}
	out, err := tt.Decode(buf)
	if err != nil {
		t.Fatal(err)
	}
	if !tt.Equal(in, out) {
		t.Errorf("round trip mismatch:\n in=%v\nout=%v", in, out)
	}
}

func TestEncodedSizeMatchesEncode(t *testing.T) {
	tt := testSchema(t)
	in := sampleTuple()
	buf, err := tt.Encode(in)
	if err != nil {
		t.Fatal(err)
	}
	if got := tt.EncodedSize(in); got != len(buf) {
		t.Errorf("EncodedSize = %d, len(Encode) = %d", got, len(buf))
	}
}

func TestEncodedSizeArithmetic(t *testing.T) {
	// Verify the documented overhead model on a flat tuple:
	// 2 (len) + 2*n (dir) + 4 (int) + 2+cap (string) + 4 (link).
	tt := MustTupleType("Flat",
		Attr{"I", IntType()},
		Attr{"S", StringType(100)},
		Attr{"L", LinkType()},
	)
	want := 2 + 2*3 + 4 + (2 + 100) + 4
	got := tt.EncodedSize(NewTuple(IntValue(1), StringValue("abc"), LinkValue(2)))
	if got != want {
		t.Errorf("flat tuple size = %d, want %d", got, want)
	}
}

func TestFixedStringFootprint(t *testing.T) {
	// Paper convention: a STR attribute occupies its declared size
	// regardless of content.
	tt := MustTupleType("S", Attr{"S", StringType(100)})
	short := tt.EncodedSize(NewTuple(StringValue("")))
	long := tt.EncodedSize(NewTuple(StringValue(strings.Repeat("x", 100))))
	if short != long {
		t.Errorf("string footprint varies with content: %d vs %d", short, long)
	}
}

func TestDecodeAttrPartial(t *testing.T) {
	tt := testSchema(t)
	buf, _ := tt.Encode(sampleTuple())
	v, err := tt.DecodeAttr(buf, 1)
	if err != nil {
		t.Fatal(err)
	}
	if v.Str() != "hello" {
		t.Errorf("DecodeAttr(1) = %q", v.Str())
	}
	v, err = tt.DecodeAttr(buf, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(v.Tuples()) != 2 || v.Tuples()[1].Vals[2].Int() != 200 {
		t.Errorf("DecodeAttr(2) = %v", v)
	}
	if _, err := tt.DecodeAttr(buf, 5); err == nil {
		t.Error("out-of-range attribute accepted")
	}
}

func TestEmptyRelation(t *testing.T) {
	tt := testSchema(t)
	in := NewTuple(IntValue(1), StringValue(""), RelValue(nil))
	buf, err := tt.Encode(in)
	if err != nil {
		t.Fatal(err)
	}
	out, err := tt.Decode(buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Vals[2].Tuples()) != 0 {
		t.Errorf("empty relation decoded as %v", out.Vals[2])
	}
}

func TestDeepNesting(t *testing.T) {
	leaf := MustTupleType("Leaf", Attr{"V", IntType()})
	mid := MustTupleType("Mid", Attr{"Ls", RelType(leaf)})
	top := MustTupleType("Top", Attr{"Ms", RelType(mid)})
	in := NewTuple(RelValue([]Tuple{
		NewTuple(RelValue([]Tuple{NewTuple(IntValue(1)), NewTuple(IntValue(2))})),
		NewTuple(RelValue(nil)),
		NewTuple(RelValue([]Tuple{NewTuple(IntValue(3))})),
	}))
	buf, err := top.Encode(in)
	if err != nil {
		t.Fatal(err)
	}
	out, err := top.Decode(buf)
	if err != nil {
		t.Fatal(err)
	}
	if !top.Equal(in, out) {
		t.Error("three-level nesting round trip failed")
	}
}

func TestEncodeRejectsInvalid(t *testing.T) {
	tt := testSchema(t)
	bad := sampleTuple()
	bad.Vals[0] = StringValue("wrong")
	if _, err := tt.Encode(bad); err == nil {
		t.Error("Encode accepted invalid tuple")
	}
}

func TestEncodeRejectsOversized(t *testing.T) {
	inner := MustTupleType("I", Attr{"S", StringType(1000)})
	tt := MustTupleType("T", Attr{"R", RelType(inner)})
	subs := make([]Tuple, 70) // 70 KiB of payload > 64 KiB limit
	for i := range subs {
		subs[i] = NewTuple(StringValue("x"))
	}
	if _, err := tt.Encode(NewTuple(RelValue(subs))); !errors.Is(err, ErrTupleTooLarge) {
		t.Errorf("oversized tuple err = %v", err)
	}
}

func TestDecodeCorrupt(t *testing.T) {
	tt := testSchema(t)
	buf, _ := tt.Encode(sampleTuple())
	cases := map[string]func([]byte) []byte{
		"empty":        func(b []byte) []byte { return nil },
		"shortHeader":  func(b []byte) []byte { return b[:1] },
		"truncated":    func(b []byte) []byte { return b[:8] },
		"lenTooShort":  func(b []byte) []byte { c := clone(b); c[0], c[1] = 0, 1; return c },
		"badAttrOff":   func(b []byte) []byte { c := clone(b); c[2], c[3] = 0xFF, 0xFF; return c },
		"badStringLen": func(b []byte) []byte { c := clone(b); off := 2 + 2*3 + 4; c[off], c[off+1] = 0xFF, 0xFF; return c },
	}
	for name, corrupt := range cases {
		if _, err := tt.Decode(corrupt(buf)); err == nil {
			t.Errorf("%s: corrupt buffer decoded successfully", name)
		}
	}
}

func clone(b []byte) []byte {
	c := make([]byte, len(b))
	copy(c, b)
	return c
}

func TestEncodedLen(t *testing.T) {
	tt := testSchema(t)
	buf, _ := tt.Encode(sampleTuple())
	n, err := EncodedLen(buf)
	if err != nil || n != len(buf) {
		t.Errorf("EncodedLen = %d,%v; want %d", n, err, len(buf))
	}
	// With trailing bytes.
	n, err = EncodedLen(append(clone(buf), 1, 2, 3))
	if err != nil || n != len(buf) {
		t.Errorf("EncodedLen with trailer = %d,%v", n, err)
	}
}

func TestEqual(t *testing.T) {
	tt := testSchema(t)
	a, b := sampleTuple(), sampleTuple()
	if !tt.Equal(a, b) {
		t.Error("identical tuples not equal")
	}
	b.Vals[2].Tuples()[1].Vals[0] = IntValue(99)
	if tt.Equal(a, b) {
		t.Error("tuples differing in a subtuple reported equal")
	}
	short := NewTuple(IntValue(1))
	if tt.Equal(a, short) {
		t.Error("invalid tuple reported equal")
	}
}

func TestKindString(t *testing.T) {
	for k, want := range map[Kind]string{Int: "INT", String: "STR", Link: "LINK", Rel: "REL"} {
		if k.String() != want {
			t.Errorf("Kind(%d).String() = %q", k, k.String())
		}
	}
}

func TestValueString(t *testing.T) {
	for v, want := range map[*Value]string{
		ptr(IntValue(5)):      "5",
		ptr(LinkValue(9)):     "->9",
		ptr(StringValue("a")): `"a"`,
		ptr(RelValue(nil)):    "{0 tuples}",
	} {
		if v.String() != want {
			t.Errorf("Value.String() = %q, want %q", v.String(), want)
		}
	}
}

func ptr[T any](v T) *T { return &v }
