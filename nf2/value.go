package nf2

import (
	"errors"
	"fmt"
)

// Value is one attribute value: a tagged union over the four kinds.
// The zero Value is the Int value 0.
type Value struct {
	kind Kind
	i    int32
	s    string
	rel  []Tuple
}

// IntValue wraps a 4-byte integer.
func IntValue(v int32) Value { return Value{kind: Int, i: v} }

// StringValue wraps a string (capacity is checked by Validate/Encode
// against the schema, not here).
func StringValue(s string) Value { return Value{kind: String, s: s} }

// LinkValue wraps an object reference.
func LinkValue(oid int32) Value { return Value{kind: Link, i: oid} }

// RelValue wraps a set of subtuples. The slice is aliased, not copied.
func RelValue(ts []Tuple) Value { return Value{kind: Rel, rel: ts} }

// Kind returns the value's kind tag.
func (v Value) Kind() Kind { return v.kind }

// Int returns the integer payload (Int or Link kinds).
func (v Value) Int() int32 { return v.i }

// Str returns the string payload.
func (v Value) Str() string { return v.s }

// Tuples returns the subtuple payload of a Rel value.
func (v Value) Tuples() []Tuple { return v.rel }

// String implements fmt.Stringer for debugging output.
func (v Value) String() string {
	switch v.kind {
	case Int:
		return fmt.Sprintf("%d", v.i)
	case Link:
		return fmt.Sprintf("->%d", v.i)
	case String:
		return fmt.Sprintf("%q", v.s)
	case Rel:
		return fmt.Sprintf("{%d tuples}", len(v.rel))
	default:
		return "?"
	}
}

// Tuple is an ordered list of attribute values conforming to a TupleType.
type Tuple struct {
	Vals []Value
}

// NewTuple builds a tuple from values.
func NewTuple(vals ...Value) Tuple { return Tuple{Vals: vals} }

// Validation errors.
var (
	ErrArity        = errors.New("nf2: tuple arity does not match schema")
	ErrKindMismatch = errors.New("nf2: value kind does not match schema")
	ErrStringTooBig = errors.New("nf2: string exceeds declared capacity")
)

// Validate checks t (recursively) against the schema.
func (tt *TupleType) Validate(t Tuple) error {
	if len(t.Vals) != len(tt.Attrs) {
		return fmt.Errorf("%w: %s has %d values, schema %d",
			ErrArity, tt.Name, len(t.Vals), len(tt.Attrs))
	}
	for i, a := range tt.Attrs {
		v := t.Vals[i]
		if v.kind != a.Type.Kind {
			return fmt.Errorf("%w: %s.%s is %v, schema %v",
				ErrKindMismatch, tt.Name, a.Name, v.kind, a.Type.Kind)
		}
		switch a.Type.Kind {
		case String:
			if len(v.s) > a.Type.Size {
				return fmt.Errorf("%w: %s.%s %d > %d",
					ErrStringTooBig, tt.Name, a.Name, len(v.s), a.Type.Size)
			}
		case Rel:
			for j, sub := range v.rel {
				if err := a.Type.Elem.Validate(sub); err != nil {
					return fmt.Errorf("%s.%s[%d]: %w", tt.Name, a.Name, j, err)
				}
			}
		}
	}
	return nil
}

// Equal reports deep equality of two tuples under the schema. Tuples that
// do not validate are never equal.
func (tt *TupleType) Equal(a, b Tuple) bool {
	if tt.Validate(a) != nil || tt.Validate(b) != nil {
		return false
	}
	return tt.equalValid(a, b)
}

func (tt *TupleType) equalValid(a, b Tuple) bool {
	for i, attr := range tt.Attrs {
		va, vb := a.Vals[i], b.Vals[i]
		switch attr.Type.Kind {
		case Int, Link:
			if va.i != vb.i {
				return false
			}
		case String:
			if va.s != vb.s {
				return false
			}
		case Rel:
			if len(va.rel) != len(vb.rel) {
				return false
			}
			for j := range va.rel {
				if !attr.Type.Elem.equalValid(va.rel[j], vb.rel[j]) {
					return false
				}
			}
		}
	}
	return true
}
