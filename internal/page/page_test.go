package page

import (
	"bytes"
	"errors"
	"testing"

	"complexobj/internal/disk"
	"complexobj/internal/xrand"
)

func newPage() Page {
	p := Wrap(make([]byte, disk.DefaultPageSize))
	p.Init()
	return p
}

func rec(b byte, n int) []byte {
	r := make([]byte, n)
	for i := range r {
		r[i] = b
	}
	return r
}

func TestCapacityMatchesPaperGeometry(t *testing.T) {
	// 2048 raw - 36 system header - 6 page header - 4 slot = 2002 usable for
	// a single record; k for 170-byte tuples must be 11, matching Table 2's
	// NSM_Connection row.
	if c := Capacity(disk.DefaultPageSize); c != 2002 {
		t.Errorf("Capacity = %d, want 2002", c)
	}
	p := newPage()
	n := 0
	for {
		if _, err := p.Insert(rec(1, 170)); err != nil {
			break
		}
		n++
	}
	if n != 11 {
		t.Errorf("170-byte tuples per page = %d, want 11 (paper Table 2, k for NSM_Connection)", n)
	}
}

func TestInsertGetRoundTrip(t *testing.T) {
	p := newPage()
	a, err := p.Insert(rec(0xA, 100))
	if err != nil {
		t.Fatal(err)
	}
	b, err := p.Insert(rec(0xB, 50))
	if err != nil {
		t.Fatal(err)
	}
	if a == b {
		t.Fatal("duplicate slot")
	}
	ga, _ := p.Get(a)
	gb, _ := p.Get(b)
	if !bytes.Equal(ga, rec(0xA, 100)) || !bytes.Equal(gb, rec(0xB, 50)) {
		t.Error("record content mismatch")
	}
	if p.Live() != 2 || p.NumSlots() != 2 {
		t.Errorf("Live=%d NumSlots=%d", p.Live(), p.NumSlots())
	}
}

func TestInsertTooLarge(t *testing.T) {
	p := newPage()
	if _, err := p.Insert(rec(1, Capacity(disk.DefaultPageSize)+1)); !errors.Is(err, ErrTooLarge) {
		t.Errorf("oversized insert err = %v", err)
	}
	if _, err := p.Insert(rec(1, Capacity(disk.DefaultPageSize))); err != nil {
		t.Errorf("max-size insert failed: %v", err)
	}
}

func TestPageFull(t *testing.T) {
	p := newPage()
	for {
		if _, err := p.Insert(rec(1, 200)); err != nil {
			if !errors.Is(err, ErrPageFull) {
				t.Fatalf("want ErrPageFull, got %v", err)
			}
			break
		}
	}
}

func TestDeleteAndSlotReuse(t *testing.T) {
	p := newPage()
	a, _ := p.Insert(rec(1, 100))
	p.Insert(rec(2, 100))
	if err := p.Delete(a); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Get(a); !errors.Is(err, ErrBadSlot) {
		t.Errorf("Get deleted slot err = %v", err)
	}
	if err := p.Delete(a); !errors.Is(err, ErrBadSlot) {
		t.Errorf("double delete err = %v", err)
	}
	c, _ := p.Insert(rec(3, 40))
	if c != a {
		t.Errorf("deleted slot not reused: got %d want %d", c, a)
	}
	if p.Live() != 2 {
		t.Errorf("Live = %d, want 2", p.Live())
	}
}

func TestDeleteReclaimsSpaceViaCompaction(t *testing.T) {
	p := newPage()
	var slots []int
	for {
		s, err := p.Insert(rec(1, 150))
		if err != nil {
			break
		}
		slots = append(slots, s)
	}
	// Free every other record, then insert records that only fit when the
	// freed bytes are compacted together.
	freed := 0
	for i := 0; i < len(slots); i += 2 {
		p.Delete(slots[i])
		freed++
	}
	inserted := 0
	for {
		if _, err := p.Insert(rec(9, 150)); err != nil {
			break
		}
		inserted++
	}
	if inserted < freed {
		t.Errorf("reinserted %d records after freeing %d", inserted, freed)
	}
}

func TestUpdateSameSizeInPlace(t *testing.T) {
	p := newPage()
	s, _ := p.Insert(rec(1, 80))
	if err := p.Update(s, rec(7, 80)); err != nil {
		t.Fatal(err)
	}
	g, _ := p.Get(s)
	if !bytes.Equal(g, rec(7, 80)) {
		t.Error("in-place update lost data")
	}
}

func TestUpdateShrink(t *testing.T) {
	p := newPage()
	s, _ := p.Insert(rec(1, 80))
	p.Insert(rec(2, 80))
	if err := p.Update(s, rec(5, 30)); err != nil {
		t.Fatal(err)
	}
	g, _ := p.Get(s)
	if !bytes.Equal(g, rec(5, 30)) {
		t.Error("shrink update lost data")
	}
}

func TestUpdateGrow(t *testing.T) {
	p := newPage()
	s, _ := p.Insert(rec(1, 30))
	other, _ := p.Insert(rec(2, 80))
	if err := p.Update(s, rec(5, 200)); err != nil {
		t.Fatal(err)
	}
	g, _ := p.Get(s)
	if !bytes.Equal(g, rec(5, 200)) {
		t.Error("grow update lost data")
	}
	go2, _ := p.Get(other)
	if !bytes.Equal(go2, rec(2, 80)) {
		t.Error("grow update corrupted sibling record")
	}
}

func TestUpdateGrowBeyondCapacityFailsCleanly(t *testing.T) {
	p := newPage()
	s, _ := p.Insert(rec(1, 100))
	for {
		if _, err := p.Insert(rec(2, 150)); err != nil {
			break
		}
	}
	err := p.Update(s, rec(3, 1900))
	if !errors.Is(err, ErrPageFull) {
		t.Fatalf("grow on full page err = %v", err)
	}
	// Original record must be intact after the failed update.
	g, gerr := p.Get(s)
	if gerr != nil || !bytes.Equal(g, rec(1, 100)) {
		t.Error("failed grow corrupted original record")
	}
}

func TestUpdateGrowUsesGarbage(t *testing.T) {
	p := newPage()
	var slots []int
	for {
		s, err := p.Insert(rec(1, 400))
		if err != nil {
			break
		}
		slots = append(slots, s)
	}
	p.Delete(slots[0])
	p.Delete(slots[1])
	// Contiguous free space is small, but garbage allows the grow.
	target := slots[2]
	if err := p.Update(target, rec(8, 700)); err != nil {
		t.Fatalf("grow into garbage failed: %v", err)
	}
	g, _ := p.Get(target)
	if !bytes.Equal(g, rec(8, 700)) {
		t.Error("grown record corrupted")
	}
}

func TestBadSlotErrors(t *testing.T) {
	p := newPage()
	if _, err := p.Get(0); !errors.Is(err, ErrBadSlot) {
		t.Errorf("Get(0) on empty page: %v", err)
	}
	if err := p.Update(3, rec(1, 5)); !errors.Is(err, ErrBadSlot) {
		t.Errorf("Update bad slot: %v", err)
	}
	if err := p.Delete(-1); !errors.Is(err, ErrBadSlot) {
		t.Errorf("Delete(-1): %v", err)
	}
}

func TestRangeVisitsLiveRecordsInSlotOrder(t *testing.T) {
	p := newPage()
	a, _ := p.Insert(rec(0xA, 10))
	b, _ := p.Insert(rec(0xB, 10))
	c, _ := p.Insert(rec(0xC, 10))
	p.Delete(b)
	var got []int
	p.Range(func(slot int, r []byte) bool {
		got = append(got, slot)
		return true
	})
	if len(got) != 2 || got[0] != a || got[1] != c {
		t.Errorf("Range visited %v, want [%d %d]", got, a, c)
	}
	// Early stop.
	count := 0
	p.Range(func(int, []byte) bool { count++; return false })
	if count != 1 {
		t.Errorf("Range with early stop visited %d", count)
	}
}

func TestUsedBytes(t *testing.T) {
	p := newPage()
	if u := p.UsedBytes(); u != headerSize {
		t.Errorf("empty page UsedBytes = %d, want %d", u, headerSize)
	}
	p.Insert(rec(1, 100))
	if u := p.UsedBytes(); u != headerSize+slotSize+100 {
		t.Errorf("UsedBytes = %d, want %d", u, headerSize+slotSize+100)
	}
}

// Property test: random insert/update/delete traffic against a map-based
// shadow model; contents must always agree and the page must never report
// impossible free space.
func TestRandomOpsAgainstShadow(t *testing.T) {
	p := newPage()
	rng := xrand.New(2024)
	shadow := map[int][]byte{}
	nextVal := byte(0)
	for op := 0; op < 20000; op++ {
		switch rng.Intn(3) {
		case 0: // insert
			n := 1 + rng.Intn(300)
			nextVal++
			r := rec(nextVal, n)
			slot, err := p.Insert(r)
			if err != nil {
				if !errors.Is(err, ErrPageFull) && !errors.Is(err, ErrTooLarge) {
					t.Fatalf("op %d insert: %v", op, err)
				}
				continue
			}
			if _, exists := shadow[slot]; exists {
				t.Fatalf("op %d: slot %d reused while live", op, slot)
			}
			shadow[slot] = r
		case 1: // update random live slot
			slot, ok := anyKey(shadow, rng)
			if !ok {
				continue
			}
			n := 1 + rng.Intn(300)
			nextVal++
			r := rec(nextVal, n)
			if err := p.Update(slot, r); err != nil {
				if !errors.Is(err, ErrPageFull) {
					t.Fatalf("op %d update: %v", op, err)
				}
				continue
			}
			shadow[slot] = r
		case 2: // delete random live slot
			slot, ok := anyKey(shadow, rng)
			if !ok {
				continue
			}
			if err := p.Delete(slot); err != nil {
				t.Fatalf("op %d delete: %v", op, err)
			}
			delete(shadow, slot)
		}
		if p.Live() != len(shadow) {
			t.Fatalf("op %d: Live=%d shadow=%d", op, p.Live(), len(shadow))
		}
	}
	for slot, want := range shadow {
		got, err := p.Get(slot)
		if err != nil {
			t.Fatalf("final Get(%d): %v", slot, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("final slot %d content mismatch", slot)
		}
	}
}

func anyKey(m map[int][]byte, rng *xrand.Source) (int, bool) {
	if len(m) == 0 {
		return 0, false
	}
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	// Deterministic order before random pick.
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	return keys[rng.Intn(len(keys))], true
}
