package page

import (
	"encoding/binary"
	"errors"
	"fmt"

	"complexobj/internal/disk"
)

const (
	headerSize  = 6
	slotSize    = 4
	delSentinel = 0xFFFF
)

var (
	// ErrPageFull reports that the record does not fit even after compaction.
	ErrPageFull = errors.New("page: full")
	// ErrBadSlot reports access to a slot that does not exist or was deleted.
	ErrBadSlot = errors.New("page: bad slot")
	// ErrTooLarge reports a record that can never fit an empty page.
	ErrTooLarge = errors.New("page: record larger than page capacity")
)

// Page is a view over one raw page buffer. It does not own the buffer, so
// wrapping a buffer pool frame and mutating through Page mutates the frame.
type Page struct {
	buf []byte // payload area (raw page minus system header)
}

// Wrap interprets a raw page image (including its system header) as a
// slotted page. Call Init once on fresh pages.
func Wrap(raw []byte) Page {
	if len(raw) <= disk.SysHeaderSize {
		panic("page: raw buffer smaller than system header")
	}
	return Page{buf: raw[disk.SysHeaderSize:]}
}

// Capacity returns the maximum record bytes a single empty page can hold
// (payload minus header and one slot).
func Capacity(pageSize int) int {
	return pageSize - disk.SysHeaderSize - headerSize - slotSize
}

// Init formats the page as an empty slotted page.
func (p Page) Init() {
	for i := range p.buf {
		p.buf[i] = 0
	}
	p.setNumSlots(0)
	p.setFreeEnd(uint16(len(p.buf)))
	p.setGarbage(0)
}

func (p Page) numSlots() int       { return int(binary.BigEndian.Uint16(p.buf[0:2])) }
func (p Page) setNumSlots(n int)   { binary.BigEndian.PutUint16(p.buf[0:2], uint16(n)) }
func (p Page) freeEnd() int        { return int(binary.BigEndian.Uint16(p.buf[2:4])) }
func (p Page) setFreeEnd(v uint16) { binary.BigEndian.PutUint16(p.buf[2:4], v) }
func (p Page) garbage() int        { return int(binary.BigEndian.Uint16(p.buf[4:6])) }
func (p Page) setGarbage(v int)    { binary.BigEndian.PutUint16(p.buf[4:6], uint16(v)) }

func (p Page) slot(i int) (off, length int) {
	base := headerSize + slotSize*i
	return int(binary.BigEndian.Uint16(p.buf[base : base+2])),
		int(binary.BigEndian.Uint16(p.buf[base+2 : base+4]))
}

func (p Page) setSlot(i, off, length int) {
	base := headerSize + slotSize*i
	binary.BigEndian.PutUint16(p.buf[base:base+2], uint16(off))
	binary.BigEndian.PutUint16(p.buf[base+2:base+4], uint16(length))
}

// NumSlots returns the size of the slot directory, including deleted slots.
func (p Page) NumSlots() int { return p.numSlots() }

// Live returns the number of non-deleted records.
func (p Page) Live() int {
	n := 0
	for i := 0; i < p.numSlots(); i++ {
		if off, _ := p.slot(i); off != delSentinel {
			n++
		}
	}
	return n
}

// contiguousFree returns the bytes between the slot directory and freeEnd.
func (p Page) contiguousFree() int {
	return p.freeEnd() - headerSize - slotSize*p.numSlots()
}

// FreeFor reports the bytes available for one new record of any size,
// counting the slot directory entry it may need and reclaimable garbage.
func (p Page) FreeFor() int {
	free := p.contiguousFree() + p.garbage()
	if p.freeDeletedSlot() < 0 {
		free -= slotSize
	}
	if free < 0 {
		return 0
	}
	return free
}

// CanFit reports whether a record of n bytes fits (possibly after
// compaction).
func (p Page) CanFit(n int) bool { return n <= p.FreeFor() }

func (p Page) freeDeletedSlot() int {
	for i := 0; i < p.numSlots(); i++ {
		if off, _ := p.slot(i); off == delSentinel {
			return i
		}
	}
	return -1
}

// Insert stores rec and returns its slot number.
func (p Page) Insert(rec []byte) (int, error) {
	if len(rec) > len(p.buf)-headerSize-slotSize {
		return 0, fmt.Errorf("%w: %d bytes", ErrTooLarge, len(rec))
	}
	slot := p.freeDeletedSlot()
	needSlot := 0
	if slot < 0 {
		needSlot = slotSize
	}
	if p.contiguousFree() < len(rec)+needSlot {
		if p.contiguousFree()+p.garbage() < len(rec)+needSlot {
			return 0, fmt.Errorf("%w: need %d, free %d", ErrPageFull, len(rec), p.FreeFor())
		}
		p.compact()
		if p.contiguousFree() < len(rec)+needSlot {
			return 0, fmt.Errorf("%w: need %d after compaction", ErrPageFull, len(rec))
		}
	}
	if slot < 0 {
		slot = p.numSlots()
		p.setNumSlots(slot + 1)
	}
	off := p.freeEnd() - len(rec)
	copy(p.buf[off:], rec)
	p.setFreeEnd(uint16(off))
	p.setSlot(slot, off, len(rec))
	return slot, nil
}

// Get returns a view of the record in slot i. The view aliases the page
// buffer; callers that retain the bytes must copy them.
func (p Page) Get(i int) ([]byte, error) {
	if i < 0 || i >= p.numSlots() {
		return nil, fmt.Errorf("%w: %d of %d", ErrBadSlot, i, p.numSlots())
	}
	off, length := p.slot(i)
	if off == delSentinel {
		return nil, fmt.Errorf("%w: %d deleted", ErrBadSlot, i)
	}
	return p.buf[off : off+length], nil
}

// Update replaces the record in slot i. Same-size updates happen in place;
// resizing updates relocate within the page and may trigger compaction.
func (p Page) Update(i int, rec []byte) error {
	if i < 0 || i >= p.numSlots() {
		return fmt.Errorf("%w: %d of %d", ErrBadSlot, i, p.numSlots())
	}
	off, length := p.slot(i)
	if off == delSentinel {
		return fmt.Errorf("%w: %d deleted", ErrBadSlot, i)
	}
	if len(rec) == length {
		copy(p.buf[off:], rec)
		return nil
	}
	if len(rec) < length {
		// Shrink in place: keep the record at the same offset tail-aligned
		// to its old slot to avoid moving bytes; account the slack as
		// garbage.
		copy(p.buf[off:], rec)
		p.setSlot(i, off, len(rec))
		p.setGarbage(p.garbage() + (length - len(rec)))
		return nil
	}
	// Grow: logically delete, then insert at the free area.
	p.setSlot(i, delSentinel, 0)
	p.setGarbage(p.garbage() + length)
	if p.contiguousFree() < len(rec) {
		if p.contiguousFree()+p.garbage() < len(rec) {
			// Roll back the logical delete so the page stays consistent.
			p.setSlot(i, off, length)
			p.setGarbage(p.garbage() - length)
			return fmt.Errorf("%w: grow %d->%d", ErrPageFull, length, len(rec))
		}
		p.compact()
	}
	noff := p.freeEnd() - len(rec)
	copy(p.buf[noff:], rec)
	p.setFreeEnd(uint16(noff))
	p.setSlot(i, noff, len(rec))
	return nil
}

// Delete removes the record in slot i. The slot number may be reused by a
// later Insert.
func (p Page) Delete(i int) error {
	if i < 0 || i >= p.numSlots() {
		return fmt.Errorf("%w: %d of %d", ErrBadSlot, i, p.numSlots())
	}
	off, length := p.slot(i)
	if off == delSentinel {
		return fmt.Errorf("%w: %d already deleted", ErrBadSlot, i)
	}
	p.setSlot(i, delSentinel, 0)
	p.setGarbage(p.garbage() + length)
	return nil
}

// compact rewrites all live records flush against the payload end,
// reclaiming garbage from deletions and resizes.
func (p Page) compact() {
	type rec struct {
		slot, off, length int
	}
	var live []rec
	for i := 0; i < p.numSlots(); i++ {
		off, length := p.slot(i)
		if off != delSentinel {
			live = append(live, rec{i, off, length})
		}
	}
	// Copy records out, then lay them back down from the end. The scratch
	// buffer is small (one page) and compaction is rare, so simplicity wins
	// over an in-place sliding scheme.
	scratch := make([]byte, len(p.buf))
	end := len(p.buf)
	for _, r := range live {
		copy(scratch[end-r.length:end], p.buf[r.off:r.off+r.length])
		end -= r.length
	}
	copy(p.buf[end:], scratch[end:])
	cur := len(p.buf)
	for _, r := range live {
		cur -= r.length
		p.setSlot(r.slot, cur, r.length)
	}
	p.setFreeEnd(uint16(cur))
	p.setGarbage(0)
}

// Range calls fn for every live record in slot order. fn receives a view
// into the page buffer; it must not retain it. Iteration stops early when
// fn returns false.
func (p Page) Range(fn func(slot int, rec []byte) bool) {
	for i := 0; i < p.numSlots(); i++ {
		off, length := p.slot(i)
		if off == delSentinel {
			continue
		}
		if !fn(i, p.buf[off:off+length]) {
			return
		}
	}
}

// UsedBytes returns the payload bytes consumed by live records, the slot
// directory and the page header (a measure of fill used by Table 2).
func (p Page) UsedBytes() int {
	used := headerSize + slotSize*p.numSlots()
	for i := 0; i < p.numSlots(); i++ {
		if off, length := p.slot(i); off != delSentinel {
			used += length
			_ = off
		}
	}
	return used
}
