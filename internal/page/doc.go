// Package page implements the slotted page layout used for all shared
// ("several tuples per page") storage in the repository. The geometry
// follows the paper's DASDBS description: a raw 2048-byte page carries a
// 36-byte system header, leaving an effective payload of 2012 bytes in
// which k tuples and their slot directory live. The paper's parameter
// k (tuples per page) therefore comes out of this package's arithmetic.
//
// Payload layout (offsets relative to the payload start):
//
//	[0:2)  uint16 number of slots
//	[2:4)  uint16 freeEnd: records occupy [freeEnd, len(payload))
//	[4:6)  uint16 garbage: bytes occupied by deleted records
//	[6:6+4*nslots) slot directory, 4 bytes per slot: uint16 off, uint16 len
//
// Records grow downward from the payload end; the slot directory grows
// upward. A deleted slot has off == delSentinel.
package page
