package heap

import (
	"bytes"
	"errors"
	"testing"

	"complexobj/internal/buffer"
	"complexobj/internal/disk"
	"complexobj/internal/page"
	"complexobj/internal/xrand"
)

func newHeap(t *testing.T, poolPages int) (*disk.Disk, *buffer.Pool, *Heap) {
	t.Helper()
	d := disk.New(disk.DefaultPageSize)
	p := buffer.New(d, poolPages, buffer.LRU)
	return d, p, New(d, p, "test")
}

func rec(b byte, n int) []byte {
	r := make([]byte, n)
	for i := range r {
		r[i] = b
	}
	return r
}

func TestInsertGetRoundTrip(t *testing.T) {
	_, _, h := newHeap(t, 16)
	r1, err := h.Insert(rec(1, 100))
	if err != nil {
		t.Fatal(err)
	}
	r2, err := h.Insert(rec(2, 200))
	if err != nil {
		t.Fatal(err)
	}
	g1, err := h.Get(r1)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := h.Get(r2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(g1, rec(1, 100)) || !bytes.Equal(g2, rec(2, 200)) {
		t.Error("round trip mismatch")
	}
	if h.NumRecords() != 2 || h.Bytes() != 300 {
		t.Errorf("counters: records=%d bytes=%d", h.NumRecords(), h.Bytes())
	}
}

func TestRecordsClusterSequentially(t *testing.T) {
	_, _, h := newHeap(t, 16)
	// 170-byte records: k=11 per page (paper Table 2 NSM_Connection).
	var rids []RID
	for i := 0; i < 25; i++ {
		r, err := h.Insert(rec(byte(i), 170))
		if err != nil {
			t.Fatal(err)
		}
		rids = append(rids, r)
	}
	if h.NumPages() != 3 {
		t.Fatalf("25 records of 170B on %d pages, want 3 (k=11)", h.NumPages())
	}
	// First 11 on page one, next 11 on page two, remainder on page three.
	for i, r := range rids {
		wantPage := h.Pages()[i/11]
		if r.Page != wantPage {
			t.Errorf("record %d on page %d, want %d", i, r.Page, wantPage)
		}
	}
	if k := h.TuplesPerPage(); k < 8 || k > 11 {
		t.Errorf("TuplesPerPage = %f", k)
	}
	if h.AvgRecordSize() != 170 {
		t.Errorf("AvgRecordSize = %f", h.AvgRecordSize())
	}
}

func TestInsertTooLarge(t *testing.T) {
	_, _, h := newHeap(t, 8)
	if _, err := h.Insert(rec(1, page.Capacity(disk.DefaultPageSize)+1)); !errors.Is(err, ErrTooLarge) {
		t.Errorf("oversized insert err = %v", err)
	}
}

func TestUpdateInPlace(t *testing.T) {
	_, pool, h := newHeap(t, 8)
	r, _ := h.Insert(rec(1, 100))
	if err := h.Update(r, rec(9, 100)); err != nil {
		t.Fatal(err)
	}
	g, _ := h.Get(r)
	if !bytes.Equal(g, rec(9, 100)) {
		t.Error("update lost")
	}
	// The dirty page must be written on flush.
	if err := pool.FlushAll(); err != nil {
		t.Fatal(err)
	}
}

func TestUpdateResizeWithinPage(t *testing.T) {
	_, _, h := newHeap(t, 8)
	r, _ := h.Insert(rec(1, 100))
	if err := h.Update(r, rec(2, 150)); err != nil {
		t.Fatal(err)
	}
	g, _ := h.Get(r)
	if !bytes.Equal(g, rec(2, 150)) {
		t.Error("grown record mismatch")
	}
	if h.Bytes() != 150 {
		t.Errorf("Bytes = %d after resize, want 150", h.Bytes())
	}
}

func TestUpdateBeyondPageFails(t *testing.T) {
	_, _, h := newHeap(t, 8)
	var rids []RID
	for i := 0; i < 11; i++ {
		r, err := h.Insert(rec(1, 170))
		if err != nil {
			t.Fatal(err)
		}
		rids = append(rids, r)
	}
	if err := h.Update(rids[0], rec(2, 1900)); err == nil {
		t.Error("cross-page growth accepted")
	}
}

func TestGetBadRID(t *testing.T) {
	_, _, h := newHeap(t, 8)
	h.Insert(rec(1, 10))
	if _, err := h.Get(RID{Page: 0, Slot: 99}); err == nil {
		t.Error("bad slot accepted")
	}
}

func TestScanOrderAndContent(t *testing.T) {
	_, _, h := newHeap(t, 16)
	const n = 40
	for i := 0; i < n; i++ {
		if _, err := h.Insert(rec(byte(i), 170)); err != nil {
			t.Fatal(err)
		}
	}
	i := 0
	err := h.Scan(func(rid RID, r []byte) bool {
		if r[0] != byte(i) {
			t.Fatalf("scan out of order at %d: got %d", i, r[0])
		}
		i++
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if i != n {
		t.Errorf("scan visited %d of %d", i, n)
	}
}

func TestScanEarlyStop(t *testing.T) {
	_, _, h := newHeap(t, 16)
	for i := 0; i < 30; i++ {
		h.Insert(rec(byte(i), 170))
	}
	count := 0
	h.Scan(func(RID, []byte) bool { count++; return count < 5 })
	if count != 5 {
		t.Errorf("early stop visited %d", count)
	}
}

func TestScanIsOnePageFixPerPage(t *testing.T) {
	d, pool, h := newHeap(t, 16)
	for i := 0; i < 33; i++ { // 3 pages at k=11
		h.Insert(rec(1, 170))
	}
	if err := pool.Reset(); err != nil {
		t.Fatal(err)
	}
	d.ResetStats()
	pool.ResetStats()
	h.Scan(func(RID, []byte) bool { return true })
	s := d.Stats()
	if s.PagesRead != 3 || s.ReadCalls != 3 {
		t.Errorf("scan: %d pages in %d calls, want 3 in 3 (single page per call)", s.PagesRead, s.ReadCalls)
	}
	if pool.Fixes() != 3 {
		t.Errorf("scan fixes = %d, want 3", pool.Fixes())
	}
}

func TestGetCostsOnePageRead(t *testing.T) {
	d, pool, h := newHeap(t, 16)
	var rids []RID
	for i := 0; i < 22; i++ {
		r, _ := h.Insert(rec(byte(i), 170))
		rids = append(rids, r)
	}
	pool.Reset()
	d.ResetStats()
	if _, err := h.Get(rids[5]); err != nil {
		t.Fatal(err)
	}
	if s := d.Stats(); s.PagesRead != 1 || s.ReadCalls != 1 {
		t.Errorf("Get: %v, want 1 page / 1 call", s)
	}
	// Second Get on same page: buffer hit, no disk I/O.
	if _, err := h.Get(rids[6]); err != nil {
		t.Fatal(err)
	}
	if s := d.Stats(); s.PagesRead != 1 {
		t.Errorf("clustered Get caused re-read: %v", s)
	}
}

func TestViewAvoidsCopy(t *testing.T) {
	_, _, h := newHeap(t, 8)
	r, _ := h.Insert(rec(7, 50))
	called := false
	err := h.View(r, func(b []byte) error {
		called = true
		if !bytes.Equal(b, rec(7, 50)) {
			t.Error("view content mismatch")
		}
		return nil
	})
	if err != nil || !called {
		t.Errorf("View err=%v called=%v", err, called)
	}
}

func TestHeapWorksUnderTinyPool(t *testing.T) {
	// Pool smaller than the heap: inserts and scans must still work, with
	// evictions writing dirty pages.
	d, pool, h := newHeap(t, 2)
	const n = 60
	var rids []RID
	for i := 0; i < n; i++ {
		r, err := h.Insert(rec(byte(i), 170))
		if err != nil {
			t.Fatal(err)
		}
		rids = append(rids, r)
	}
	if err := pool.FlushAll(); err != nil {
		t.Fatal(err)
	}
	for i, r := range rids {
		g, err := h.Get(r)
		if err != nil {
			t.Fatal(err)
		}
		if g[0] != byte(i) {
			t.Fatalf("record %d corrupted after evictions", i)
		}
	}
	if d.Stats().PagesWritten == 0 {
		t.Error("no write-back happened despite pool overflow")
	}
}

func TestRandomInsertUpdateAgainstShadow(t *testing.T) {
	_, pool, h := newHeap(t, 4)
	rng := xrand.New(31)
	type entry struct {
		rid RID
		val []byte
	}
	var entries []entry
	for op := 0; op < 2000; op++ {
		if len(entries) == 0 || rng.Bool(0.6) {
			n := 20 + rng.Intn(400)
			v := rec(byte(rng.Intn(256)), n)
			rid, err := h.Insert(v)
			if err != nil {
				t.Fatal(err)
			}
			entries = append(entries, entry{rid, v})
		} else {
			i := rng.Intn(len(entries))
			v := rec(byte(rng.Intn(256)), len(entries[i].val))
			if err := h.Update(entries[i].rid, v); err != nil {
				t.Fatal(err)
			}
			entries[i].val = v
		}
	}
	if err := pool.FlushAll(); err != nil {
		t.Fatal(err)
	}
	for i, e := range entries {
		g, err := h.Get(e.rid)
		if err != nil {
			t.Fatalf("entry %d: %v", i, err)
		}
		if !bytes.Equal(g, e.val) {
			t.Fatalf("entry %d content mismatch", i)
		}
	}
	if h.NumRecords() != len(entries) {
		t.Errorf("NumRecords = %d, want %d", h.NumRecords(), len(entries))
	}
}

func TestEmptyHeap(t *testing.T) {
	_, _, h := newHeap(t, 4)
	if h.NumPages() != 0 || h.NumRecords() != 0 || h.AvgRecordSize() != 0 || h.TuplesPerPage() != 0 {
		t.Error("empty heap has non-zero stats")
	}
	if err := h.Scan(func(RID, []byte) bool { return true }); err != nil {
		t.Errorf("scan on empty heap: %v", err)
	}
}

func TestDelete(t *testing.T) {
	_, pool, h := newHeap(t, 8)
	r1, _ := h.Insert(rec(1, 170))
	r2, _ := h.Insert(rec(2, 170))
	if err := h.Delete(r1); err != nil {
		t.Fatal(err)
	}
	if h.NumRecords() != 1 || h.Bytes() != 170 {
		t.Errorf("counters after delete: records=%d bytes=%d", h.NumRecords(), h.Bytes())
	}
	if _, err := h.Get(r1); err == nil {
		t.Error("deleted record still readable")
	}
	if g, err := h.Get(r2); err != nil || g[0] != 2 {
		t.Error("sibling record damaged")
	}
	if err := h.Delete(r1); err == nil {
		t.Error("double delete accepted")
	}
	// Deleted space is reusable on the same page.
	if _, err := h.Insert(rec(3, 170)); err != nil {
		t.Fatal(err)
	}
	if err := pool.FlushAll(); err != nil {
		t.Fatal(err)
	}
	// Scan skips deleted records.
	count := 0
	h.Scan(func(RID, []byte) bool { count++; return true })
	if count != 2 {
		t.Errorf("scan visited %d records, want 2", count)
	}
}
