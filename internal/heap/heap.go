package heap

import (
	"errors"
	"fmt"

	"complexobj/internal/buffer"
	"complexobj/internal/disk"
	"complexobj/internal/page"
	"complexobj/internal/wire"
)

// RID identifies a record: page and slot.
type RID struct {
	Page disk.PageID
	Slot uint16
}

// String implements fmt.Stringer.
func (r RID) String() string { return fmt.Sprintf("%d.%d", r.Page, r.Slot) }

// ErrTooLarge reports a record that cannot fit any page; callers store such
// records in a longobj.Store instead.
var ErrTooLarge = errors.New("heap: record larger than a page")

// Heap is one record file.
type Heap struct {
	name string
	dev  *disk.Disk
	pool *buffer.Pool

	pages   []disk.PageID
	records int
	bytes   int64
}

// New creates an empty heap named name (for error messages and reports).
func New(dev *disk.Disk, pool *buffer.Pool, name string) *Heap {
	return &Heap{name: name, dev: dev, pool: pool}
}

// Name returns the heap's name.
func (h *Heap) Name() string { return h.name }

// NumPages returns the number of pages, the paper's m parameter.
func (h *Heap) NumPages() int { return len(h.pages) }

// Pages returns the page IDs in allocation order. The caller must not
// modify the slice.
func (h *Heap) Pages() []disk.PageID { return h.pages }

// NumRecords returns the number of live records.
func (h *Heap) NumRecords() int { return h.records }

// Bytes returns the total bytes of live record payloads.
func (h *Heap) Bytes() int64 { return h.bytes }

// AvgRecordSize returns the mean record payload size, the paper's S_tuple.
func (h *Heap) AvgRecordSize() float64 {
	if h.records == 0 {
		return 0
	}
	return float64(h.bytes) / float64(h.records)
}

// TuplesPerPage returns records/pages, the paper's k parameter as realised
// on disk.
func (h *Heap) TuplesPerPage() float64 {
	if len(h.pages) == 0 {
		return 0
	}
	return float64(h.records) / float64(len(h.pages))
}

// AppendState serializes the heap's directory state (page list and record
// accounting) for a database snapshot. The records themselves live in the
// device pages and are not duplicated here.
func (h *Heap) AppendState(b []byte) []byte {
	b = wire.AppendU32(b, uint32(len(h.pages)))
	for _, p := range h.pages {
		b = wire.AppendU32(b, uint32(p))
	}
	b = wire.AppendU64(b, uint64(h.records))
	b = wire.AppendU64(b, uint64(h.bytes))
	return b
}

// RestoreState rebuilds the directory state from AppendState output. The
// heap must be empty and its device must already hold the page images.
func (h *Heap) RestoreState(r *wire.Reader) error {
	if len(h.pages) != 0 || h.records != 0 {
		return fmt.Errorf("heap %s: restore into non-empty heap", h.name)
	}
	n := r.Len(4) // one u32 PageID per page
	pages := make([]disk.PageID, n)
	for i := range pages {
		pages[i] = disk.PageID(r.U32())
	}
	records := int(r.U64())
	bytes := int64(r.U64())
	if err := r.Err(); err != nil {
		return fmt.Errorf("heap %s: %w", h.name, err)
	}
	h.pages, h.records, h.bytes = pages, records, bytes
	return nil
}

// Insert appends rec to the heap and returns its RID. Records of one
// object inserted consecutively land on the same or adjacent pages.
func (h *Heap) Insert(rec []byte) (RID, error) {
	if len(rec) > page.Capacity(h.dev.PageSize()) {
		return RID{}, fmt.Errorf("%w: %d bytes in %s", ErrTooLarge, len(rec), h.name)
	}
	if len(h.pages) > 0 {
		tail := h.pages[len(h.pages)-1]
		rid, ok, err := h.tryInsert(tail, rec)
		if err != nil {
			return RID{}, err
		}
		if ok {
			return rid, nil
		}
	}
	pid, err := h.dev.Allocate(1)
	if err != nil {
		return RID{}, err
	}
	f, err := h.pool.Fix(pid)
	if err != nil {
		return RID{}, err
	}
	h.pool.MarkDirty(f)
	page.Wrap(f.Data).Init()
	h.pool.Unfix(pid, true)
	h.pages = append(h.pages, pid)
	rid, ok, err := h.tryInsert(pid, rec)
	if err != nil {
		return RID{}, err
	}
	if !ok {
		return RID{}, fmt.Errorf("heap %s: record of %d bytes rejected by fresh page", h.name, len(rec))
	}
	return rid, nil
}

func (h *Heap) tryInsert(pid disk.PageID, rec []byte) (RID, bool, error) {
	f, err := h.pool.Fix(pid)
	if err != nil {
		return RID{}, false, err
	}
	if !page.Wrap(f.Data).CanFit(len(rec)) {
		h.pool.Unfix(pid, false)
		return RID{}, false, nil
	}
	h.pool.MarkDirty(f) // promotes a borrowed frame; re-wrap below
	slot, err := page.Wrap(f.Data).Insert(rec)
	if err != nil {
		h.pool.Unfix(pid, false)
		return RID{}, false, err
	}
	h.pool.Unfix(pid, true)
	h.records++
	h.bytes += int64(len(rec))
	return RID{Page: pid, Slot: uint16(slot)}, true, nil
}

// Get returns a copy of the record at rid (one page fix).
func (h *Heap) Get(rid RID) ([]byte, error) {
	f, err := h.pool.Fix(rid.Page)
	if err != nil {
		return nil, err
	}
	defer h.pool.Unfix(rid.Page, false)
	rec, err := page.Wrap(f.Data).Get(int(rid.Slot))
	if err != nil {
		return nil, fmt.Errorf("heap %s: %w", h.name, err)
	}
	out := make([]byte, len(rec))
	copy(out, rec)
	return out, nil
}

// View calls fn with a direct view of the record (no copy); fn must not
// retain the slice. Used on hot read paths to avoid allocation skew in
// CPU benchmarks.
func (h *Heap) View(rid RID, fn func(rec []byte) error) error {
	f, err := h.pool.Fix(rid.Page)
	if err != nil {
		return err
	}
	defer h.pool.Unfix(rid.Page, false)
	rec, err := page.Wrap(f.Data).Get(int(rid.Slot))
	if err != nil {
		return fmt.Errorf("heap %s: %w", h.name, err)
	}
	return fn(rec)
}

// Update replaces the record at rid in place. The new record must still
// fit the page (the benchmark only performs size-preserving root updates;
// growth within the page is supported, cross-page relocation is not).
func (h *Heap) Update(rid RID, rec []byte) error {
	f, err := h.pool.Fix(rid.Page)
	if err != nil {
		return err
	}
	old, err := page.Wrap(f.Data).Get(int(rid.Slot))
	if err != nil {
		h.pool.Unfix(rid.Page, false)
		return fmt.Errorf("heap %s: %w", h.name, err)
	}
	oldLen := len(old)
	h.pool.MarkDirty(f) // promotes a borrowed frame; re-wrap below
	if err := page.Wrap(f.Data).Update(int(rid.Slot), rec); err != nil {
		h.pool.Unfix(rid.Page, false)
		return fmt.Errorf("heap %s: %w", h.name, err)
	}
	h.bytes += int64(len(rec) - oldLen)
	h.pool.Unfix(rid.Page, true)
	return nil
}

// Delete removes the record at rid; its page space is reclaimed for later
// inserts on the same page. The heap does not reuse fully emptied pages
// for new clusters (clusters always append), matching the bulk-load-plus-
// updates lifecycle of the benchmark store.
func (h *Heap) Delete(rid RID) error {
	f, err := h.pool.Fix(rid.Page)
	if err != nil {
		return err
	}
	old, err := page.Wrap(f.Data).Get(int(rid.Slot))
	if err != nil {
		h.pool.Unfix(rid.Page, false)
		return fmt.Errorf("heap %s: %w", h.name, err)
	}
	oldLen := len(old)
	h.pool.MarkDirty(f) // promotes a borrowed frame; re-wrap below
	if err := page.Wrap(f.Data).Delete(int(rid.Slot)); err != nil {
		h.pool.Unfix(rid.Page, false)
		return fmt.Errorf("heap %s: %w", h.name, err)
	}
	h.records--
	h.bytes -= int64(oldLen)
	h.pool.Unfix(rid.Page, true)
	return nil
}

// Scan iterates over all records in physical order, one page fix per page
// (the DASDBS single-page-per-call access path). fn receives a view into
// the page; returning false stops the scan.
func (h *Heap) Scan(fn func(rid RID, rec []byte) bool) error {
	for _, pid := range h.pages {
		f, err := h.pool.Fix(pid)
		if err != nil {
			return err
		}
		stop := false
		page.Wrap(f.Data).Range(func(slot int, rec []byte) bool {
			if !fn(RID{Page: pid, Slot: uint16(slot)}, rec) {
				stop = true
				return false
			}
			return true
		})
		h.pool.Unfix(pid, false)
		if stop {
			return nil
		}
	}
	return nil
}

// ScanPages iterates page-wise without touching records; used by value
// scans that evaluate predicates via partial decoding.
func (h *Heap) ScanPages(fn func(pid disk.PageID, p page.Page) bool) error {
	for _, pid := range h.pages {
		f, err := h.pool.Fix(pid)
		if err != nil {
			return err
		}
		cont := fn(pid, page.Wrap(f.Data))
		h.pool.Unfix(pid, false)
		if !cont {
			return nil
		}
	}
	return nil
}
