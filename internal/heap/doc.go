// Package heap implements record files of small tuples over the buffer
// pool: the storage for everything that "shares pages" in the paper's
// terminology (flat NSM tuples, small nested tuples, small direct objects).
//
// Records never span pages (the paper's k = tuples-per-page model) and
// inserts append behind the previous record, so the tuples of one object
// loaded back-to-back stay physically clustered — the premise of the
// paper's Equations 6 and 7.
//
// Access is tuple-at-a-time through the buffer pool: one page fix per
// record access, one fix (and at most one I/O call) per page on scans,
// matching the DASDBS behaviour that "NSM even reads only a single page
// per retrieval call" (§5.2, Table 5).
package heap
