package iostat

import "fmt"

// Stats is the full set of counters maintained by a database engine.
// PagesRead/PagesWritten count page transfers between the simulated disk
// and the buffer pool; ReadCalls/WriteCalls count contiguous-run transfer
// operations (the paper's "I/O calls"); Fixes/Hits count buffer pool fixes
// and the subset of fixes satisfied without a disk read.
type Stats struct {
	PagesRead    int64
	PagesWritten int64
	ReadCalls    int64
	WriteCalls   int64
	Fixes        int64
	Hits         int64
}

// Add accumulates o into s.
func (s *Stats) Add(o Stats) {
	s.PagesRead += o.PagesRead
	s.PagesWritten += o.PagesWritten
	s.ReadCalls += o.ReadCalls
	s.WriteCalls += o.WriteCalls
	s.Fixes += o.Fixes
	s.Hits += o.Hits
}

// Sub returns s - o, the statistics accumulated between two snapshots.
func (s Stats) Sub(o Stats) Stats {
	return Stats{
		PagesRead:    s.PagesRead - o.PagesRead,
		PagesWritten: s.PagesWritten - o.PagesWritten,
		ReadCalls:    s.ReadCalls - o.ReadCalls,
		WriteCalls:   s.WriteCalls - o.WriteCalls,
		Fixes:        s.Fixes - o.Fixes,
		Hits:         s.Hits - o.Hits,
	}
}

// Pages returns the total number of pages transferred in either direction,
// the paper's X_{I/O pages}.
func (s Stats) Pages() int64 { return s.PagesRead + s.PagesWritten }

// Calls returns the total number of I/O calls in either direction, the
// paper's X_{I/O calls}.
func (s Stats) Calls() int64 { return s.ReadCalls + s.WriteCalls }

// Misses returns the number of buffer fixes that required a disk read.
func (s Stats) Misses() int64 { return s.Fixes - s.Hits }

// HitRatio returns Hits/Fixes, or 0 when no fix happened.
func (s Stats) HitRatio() float64 {
	if s.Fixes == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Fixes)
}

// Reset zeroes every counter.
func (s *Stats) Reset() { *s = Stats{} }

// String renders the counters in a compact single line, convenient for CLIs.
func (s Stats) String() string {
	return fmt.Sprintf("pagesR=%d pagesW=%d callsR=%d callsW=%d fixes=%d hits=%d",
		s.PagesRead, s.PagesWritten, s.ReadCalls, s.WriteCalls, s.Fixes, s.Hits)
}

// Normalized is a Stats scaled by a unit count (per object, per loop),
// matching the normalization used throughout the paper's tables.
type Normalized struct {
	PagesRead    float64
	PagesWritten float64
	Pages        float64
	ReadCalls    float64
	WriteCalls   float64
	Calls        float64
	Fixes        float64
	Hits         float64
}

// Normalize divides every counter by units. It panics on units <= 0 because
// a non-positive normalization always indicates a harness bug.
func (s Stats) Normalize(units float64) Normalized {
	if units <= 0 {
		panic("iostat: Normalize with non-positive unit count")
	}
	return Normalized{
		PagesRead:    float64(s.PagesRead) / units,
		PagesWritten: float64(s.PagesWritten) / units,
		Pages:        float64(s.Pages()) / units,
		ReadCalls:    float64(s.ReadCalls) / units,
		WriteCalls:   float64(s.WriteCalls) / units,
		Calls:        float64(s.Calls()) / units,
		Fixes:        float64(s.Fixes) / units,
		Hits:         float64(s.Hits) / units,
	}
}
