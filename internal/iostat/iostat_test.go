package iostat

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestAddSub(t *testing.T) {
	a := Stats{PagesRead: 10, PagesWritten: 2, ReadCalls: 5, WriteCalls: 1, Fixes: 20, Hits: 8}
	b := Stats{PagesRead: 3, PagesWritten: 1, ReadCalls: 2, WriteCalls: 1, Fixes: 4, Hits: 4}
	var s Stats
	s.Add(a)
	s.Add(b)
	if got := s.Sub(a); got != b {
		t.Fatalf("Sub: got %+v want %+v", got, b)
	}
	if got := s.Sub(b); got != a {
		t.Fatalf("Sub: got %+v want %+v", got, a)
	}
}

func TestDerivedQuantities(t *testing.T) {
	s := Stats{PagesRead: 7, PagesWritten: 3, ReadCalls: 4, WriteCalls: 2, Fixes: 10, Hits: 6}
	if s.Pages() != 10 {
		t.Errorf("Pages = %d, want 10", s.Pages())
	}
	if s.Calls() != 6 {
		t.Errorf("Calls = %d, want 6", s.Calls())
	}
	if s.Misses() != 4 {
		t.Errorf("Misses = %d, want 4", s.Misses())
	}
	if s.HitRatio() != 0.6 {
		t.Errorf("HitRatio = %f, want 0.6", s.HitRatio())
	}
}

func TestHitRatioNoFixes(t *testing.T) {
	var s Stats
	if s.HitRatio() != 0 {
		t.Errorf("HitRatio on zero stats = %f, want 0", s.HitRatio())
	}
}

func TestReset(t *testing.T) {
	s := Stats{PagesRead: 1, Fixes: 2}
	s.Reset()
	if s != (Stats{}) {
		t.Errorf("Reset left %+v", s)
	}
}

func TestNormalize(t *testing.T) {
	s := Stats{PagesRead: 30, PagesWritten: 10, ReadCalls: 6, WriteCalls: 4, Fixes: 50, Hits: 20}
	n := s.Normalize(10)
	if n.PagesRead != 3 || n.PagesWritten != 1 || n.Pages != 4 {
		t.Errorf("page normalization wrong: %+v", n)
	}
	if n.ReadCalls != 0.6 || n.WriteCalls != 0.4 || n.Calls != 1 {
		t.Errorf("call normalization wrong: %+v", n)
	}
	if n.Fixes != 5 || n.Hits != 2 {
		t.Errorf("fix normalization wrong: %+v", n)
	}
}

func TestNormalizePanicsOnZeroUnits(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Normalize(0) did not panic")
		}
	}()
	Stats{}.Normalize(0)
}

func TestStringMentionsEveryCounter(t *testing.T) {
	s := Stats{PagesRead: 1, PagesWritten: 2, ReadCalls: 3, WriteCalls: 4, Fixes: 5, Hits: 6}
	str := s.String()
	for _, want := range []string{"pagesR=1", "pagesW=2", "callsR=3", "callsW=4", "fixes=5", "hits=6"} {
		if !strings.Contains(str, want) {
			t.Errorf("String() = %q missing %q", str, want)
		}
	}
}

// Property: Add then Sub round-trips for arbitrary counter values.
func TestAddSubProperty(t *testing.T) {
	f := func(ar, aw, arc, awc, af, ah, br, bw, brc, bwc, bf, bh int32) bool {
		a := Stats{int64(ar), int64(aw), int64(arc), int64(awc), int64(af), int64(ah)}
		b := Stats{int64(br), int64(bw), int64(brc), int64(bwc), int64(bf), int64(bh)}
		s := a
		s.Add(b)
		return s.Sub(b) == a && s.Sub(a) == b
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
