// Package iostat collects the I/O and buffer statistics that the paper
// reports: physical page reads/writes (Table 4), I/O calls (Table 5) and
// buffer fixes (Table 6). The counters are deliberately dumb integers so
// that the storage engine can update them from hot paths without locking
// overhead dominating the simulation; the engine serializes access itself.
//
// Concurrency contract: a Stats value is owned by exactly one engine
// (simulated device or buffer pool), and that engine updates it only while
// holding its own mutex — Disk.Stats and Pool.Fixes/Hits take the same
// mutex to read, so snapshots are consistent. The parallel experiment
// harness relies on this per-engine ownership instead of atomic counters:
// every (model, query) worker owns a private device + pool, so counters
// are never shared across goroutines, hot-path increments stay plain adds,
// and the measured numbers are bit-identical to a serial run (verified by
// `go test -race` and the determinism tests in the experiments package).
// Stats values returned from snapshot methods are plain copies and may be
// freely passed between goroutines.
package iostat
