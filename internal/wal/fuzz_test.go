package wal

import (
	"bytes"
	"testing"
)

// FuzzLogOpen feeds arbitrary device images to the replay scanner. The
// invariants under fuzzing: Open never panics, never returns an error
// for plain corruption (only device errors abort recovery — a memDevice
// has none), never replays past the first malformed record, and always
// leaves the device in a state whose re-replay yields the same batches
// (recovery is idempotent and the truncation durable).
func FuzzLogOpen(f *testing.F) {
	// Seed with well-formed logs, torn prefixes of them, and noise.
	dev := newMemDevice(nil)
	l, err := Open(dev, nil)
	if err != nil {
		f.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		img := bytes.Repeat([]byte{byte(0x30 + i)}, 48)
		pages := []PageRecord{{Model: byte(i), Page: uint32(i), Image: img}}
		if _, err := l.Commit(pages, CommitRecord{Model: byte(i), NumPages: 4, Meta: []byte{1, byte(i)}}); err != nil {
			f.Fatal(err)
		}
	}
	full := dev.bytes()
	f.Add(full)
	f.Add(full[:len(full)/2])
	f.Add(full[:len(full)-3])
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xFF}, 64))
	f.Add(appendPage(nil, PageRecord{Model: 1, Page: 2, Image: []byte("img")}))
	f.Add(appendCommit(nil, CommitRecord{Model: 1, Seq: 9, NumPages: 3, Meta: []byte("m")}))

	f.Fuzz(func(t *testing.T, raw []byte) {
		var first []batch
		d1 := newMemDevice(raw)
		l1, err := Open(d1, collector(&first))
		if err != nil {
			t.Fatalf("Open on fuzz input: %v", err)
		}
		// Every replayed batch was read through the checksum path; sizes
		// are consistent with the truncation point.
		if l1.Size() > int64(len(raw)) {
			t.Fatalf("recovered size %d exceeds input %d", l1.Size(), len(raw))
		}
		// Idempotence: recovering the recovered device replays the same
		// batches and truncates nothing further.
		var second []batch
		l2, err := Open(d1, collector(&second))
		if err != nil {
			t.Fatalf("second Open: %v", err)
		}
		if len(second) != len(first) || l2.Size() != l1.Size() {
			t.Fatalf("recovery not idempotent: %d/%d batches, size %d/%d",
				len(first), len(second), l1.Size(), l2.Size())
		}
		for i := range first {
			if first[i].commit.Seq != second[i].commit.Seq ||
				!bytes.Equal(first[i].commit.Meta, second[i].commit.Meta) ||
				len(first[i].pages) != len(second[i].pages) {
				t.Fatalf("batch %d differs between replays", i)
			}
		}
		// The recovered log accepts appends.
		if _, err := l2.Commit(
			[]PageRecord{{Model: 1, Page: 0, Image: []byte("x")}},
			CommitRecord{Model: 1, NumPages: 1},
		); err != nil {
			t.Fatalf("commit after fuzz recovery: %v", err)
		}
	})
}

// FuzzRecordDecode feeds arbitrary header+payload splits to the shared
// record decoder: it must never panic and must reject every input whose
// checksum does not match.
func FuzzRecordDecode(f *testing.F) {
	good := appendPage(nil, PageRecord{Model: 3, Page: 12, Image: []byte("page image")})
	f.Add(good[:recordHeaderSize], good[recordHeaderSize:])
	gc := appendCommit(nil, CommitRecord{Model: 1, Seq: 7, NumPages: 2, Meta: []byte("meta")})
	f.Add(gc[:recordHeaderSize], gc[recordHeaderSize:])
	f.Add([]byte{}, []byte{})
	f.Add(make([]byte, recordHeaderSize), []byte{recCommit})

	f.Fuzz(func(t *testing.T, hdr, payload []byte) {
		pg, cm, isCommit, err := decodeRecord(hdr, payload)
		if err != nil {
			return
		}
		// A record that decodes re-encodes to the same bytes — the codec
		// round-trips, so replay and append agree on the format.
		var re []byte
		if isCommit {
			re = appendCommit(nil, cm)
		} else {
			re = appendPage(nil, pg)
		}
		if !bytes.Equal(re[:recordHeaderSize], hdr) || !bytes.Equal(re[recordHeaderSize:], payload) {
			t.Fatalf("decoded record does not re-encode to its input")
		}
	})
}
