package wal

import (
	"io"
	"sync"

	"complexobj/internal/disk"
)

// memDevice is the in-memory Device of the test battery. It tracks two
// images: data (every completed write) and synced (the state as of the
// last successful Sync) — so a test can simulate a crash at any point
// and recover from either image: synced is the pessimistic "only
// fsynced bytes survived" crash, data the optimistic "the kernel had
// already written the rest" one. The WAL contract must hold for both.
type memDevice struct {
	mu     sync.Mutex
	data   []byte
	synced []byte
	wave   int
	// syncHook, when set, runs at the start of each Sync with the wave
	// ordinal; returning an error fails the sync (the bytes do NOT
	// reach the synced image), panicking simulates a kill.
	syncHook func(wave int) error
}

func newMemDevice(initial []byte) *memDevice {
	d := &memDevice{}
	d.data = append(d.data, initial...)
	d.synced = append(d.synced, initial...)
	return d
}

func (d *memDevice) ReadAt(p []byte, off int64) (int, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if off < 0 || off >= int64(len(d.data)) {
		return 0, io.EOF
	}
	n := copy(p, d.data[off:])
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

func (d *memDevice) WriteAt(p []byte, off int64) (int, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if need := int(off) + len(p); need > len(d.data) {
		grown := make([]byte, need)
		copy(grown, d.data)
		d.data = grown
	}
	copy(d.data[off:], p)
	return len(p), nil
}

func (d *memDevice) Sync() error {
	d.mu.Lock()
	hook := d.syncHook
	d.wave++
	wave := d.wave
	d.mu.Unlock()
	if hook != nil {
		if err := hook(wave); err != nil {
			return err
		}
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	d.synced = append(d.synced[:0], d.data...)
	return nil
}

func (d *memDevice) Truncate(size int64) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	for int64(len(d.data)) < size {
		d.data = append(d.data, 0)
	}
	d.data = d.data[:size]
	return nil
}

// crash returns the device as a fresh process would find it: only the
// synced image when durableOnly, the full write image otherwise.
func (d *memDevice) crash(durableOnly bool) *memDevice {
	d.mu.Lock()
	defer d.mu.Unlock()
	if durableOnly {
		return newMemDevice(d.synced)
	}
	return newMemDevice(d.data)
}

// bytes returns a copy of the full write image.
func (d *memDevice) bytes() []byte {
	d.mu.Lock()
	defer d.mu.Unlock()
	return append([]byte(nil), d.data...)
}

// backendDevice adapts a disk.Backend — including one wrapped in
// faultdisk injection — to the wal.Device interface, which is how the
// log is validated against the same torn/short-write failure shapes the
// storage stack's resilience tests use. Backends never shrink, so the
// logical size is tracked here and Truncate only moves the watermark;
// stale backend bytes past it are invisible.
type backendDevice struct {
	b    disk.Backend
	size int64
}

func newBackendDevice(b disk.Backend) *backendDevice {
	return &backendDevice{b: b, size: int64(b.Len())}
}

func (d *backendDevice) ReadAt(p []byte, off int64) (int, error) {
	if off < 0 || off >= d.size {
		return 0, io.EOF
	}
	n := len(p)
	if max := int(d.size - off); n > max {
		n = max
	}
	if err := d.b.ReadAt(p[:n], int(off)); err != nil {
		return 0, err
	}
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

func (d *backendDevice) WriteAt(p []byte, off int64) (int, error) {
	if need := int(off) + len(p); need > d.b.Len() {
		if err := d.b.Grow(need); err != nil {
			return 0, err
		}
	}
	if err := d.b.WriteAt(p, int(off)); err != nil {
		return 0, err // a torn injection wrote a prefix; the log will overwrite it
	}
	if end := off + int64(len(p)); end > d.size {
		d.size = end
	}
	return len(p), nil
}

func (d *backendDevice) Sync() error { return d.b.Flush() }

func (d *backendDevice) Truncate(size int64) error {
	if size > d.size {
		if err := d.b.Grow(int(size)); err != nil {
			return err
		}
	}
	d.size = size
	return nil
}
