// Package wal is the write-ahead log behind the durable commit path: a
// single append-only log shared by every storage model of a serving
// process, holding checksummed, length-prefixed records — page images
// keyed by (model kind, page ID) plus commit markers carrying the
// model's directory metadata — that make a committed base generation
// reconstructible after a crash.
//
// The contract, in the order a commit flows through it:
//
//   - Appending. Log.Commit encodes one batch (the dirty overlay pages
//     of a view plus its commit marker) and appends it under the append
//     lock. The append offset advances only when the whole batch hit the
//     device, so a torn or failed write is overwritten by the retry and
//     can only ever corrupt the tail past the last durable record.
//
//   - Group commit. Durability is one fsync per sync wave, not per
//     committer: concurrent Commit calls pile onto the in-flight sync,
//     and a single Device.Sync covering their offsets wakes them all.
//     Commit returns only after a sync covering the batch completed —
//     an acknowledged commit is on stable storage.
//
//   - Replay. Open scans the log sequentially, verifying each record's
//     length prefix and CRC, buffering page records and applying a batch
//     only when its commit marker is reached — so a crash between append
//     and sync can never surface a half-committed batch. The first
//     malformed record ends the scan: the log is truncated back to the
//     end of the last committed batch (torn tails from crashes mid-append
//     are dropped, and replay never proceeds past a bad checksum).
//     Replaying page images is idempotent; recovering twice lands on the
//     same generation.
//
//   - Checkpointing. Reset truncates the log to empty once its contents
//     are captured by a checkpoint (per-model arena + meta sidecars,
//     written by the complexobj facade); commit sequence numbers keep
//     increasing across resets so acknowledgment accounting survives
//     compaction.
//
// The log talks to storage through the small Device interface.
// Production uses *os.File directly; tests drive the same code over
// in-memory devices wrapped in faultdisk torn/short-write injection and
// a kill-after-N-syncs crash hook, which is how the recovery guarantees
// are proven.
//
// Everything in this package sits outside the paper's I/O accounting:
// WAL appends, syncs and replay touch no simulated device and move no
// paper counter, exactly like snapshot writes.
package wal
