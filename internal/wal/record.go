package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// Record framing: every record is an 8-byte header — payload length and
// CRC-32C over the payload, both big-endian u32 — followed by the
// payload, whose first byte is the record type. The checksum covers the
// type byte too, so a record can never be misinterpreted as another kind
// by a bit flip. Torn tails fail either the length bound, the payload
// read or the checksum; the scanner stops at the first failure.
const (
	recordHeaderSize = 8

	recPage   = 1 // kind u8 | page u32 | page image
	recCommit = 2 // kind u8 | seq u64 | numPages u32 | metaLen u32 | meta

	// maxPayload bounds a decoded length prefix so a corrupt header
	// cannot drive a multi-gigabyte allocation. Generous: the largest
	// legitimate payload is one page image (a few KiB) or a meta blob
	// (a few MiB for paper-scale extensions).
	maxPayload = 1 << 28
)

// crcTable is the Castagnoli polynomial, hardware-accelerated on the
// platforms this runs on.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// ErrCorrupt reports a record that failed structural validation or its
// checksum. During replay it marks the torn tail: scanning stops and the
// log is truncated back to the last committed batch.
var ErrCorrupt = errors.New("wal: corrupt record")

// PageRecord is one page image of a commit batch, keyed by the storage
// model (store.Kind as a byte — this package stays below the store
// layer) and the device page number.
type PageRecord struct {
	Model byte
	Page  uint32
	Image []byte
}

// CommitRecord is the marker sealing one batch: replay applies the
// batch's page records only when it reads this. Seq is the global commit
// sequence (monotonic across checkpoints), NumPages the committed
// device size in pages, Meta the model's directory metadata snapshot —
// everything promotion needs beyond the page images themselves.
type CommitRecord struct {
	Model    byte
	Seq      uint64
	NumPages uint32
	Meta     []byte
}

// appendRecord frames one payload into buf.
func appendRecord(buf, payload []byte) []byte {
	var hdr [recordHeaderSize]byte
	binary.BigEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.BigEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, crcTable))
	buf = append(buf, hdr[:]...)
	return append(buf, payload...)
}

// appendPage encodes one page record into buf.
func appendPage(buf []byte, r PageRecord) []byte {
	payload := make([]byte, 0, 1+1+4+len(r.Image))
	payload = append(payload, recPage, r.Model)
	payload = binary.BigEndian.AppendUint32(payload, r.Page)
	payload = append(payload, r.Image...)
	return appendRecord(buf, payload)
}

// appendCommit encodes one commit marker into buf.
func appendCommit(buf []byte, c CommitRecord) []byte {
	payload := make([]byte, 0, 1+1+8+4+4+len(c.Meta))
	payload = append(payload, recCommit, c.Model)
	payload = binary.BigEndian.AppendUint64(payload, c.Seq)
	payload = binary.BigEndian.AppendUint32(payload, c.NumPages)
	payload = binary.BigEndian.AppendUint32(payload, uint32(len(c.Meta)))
	payload = append(payload, c.Meta...)
	return appendRecord(buf, payload)
}

// decodePage decodes a page-record payload (without the type byte).
func decodePage(body []byte) (PageRecord, error) {
	if len(body) < 1+4 {
		return PageRecord{}, fmt.Errorf("%w: page record of %d bytes", ErrCorrupt, len(body))
	}
	return PageRecord{
		Model: body[0],
		Page:  binary.BigEndian.Uint32(body[1:5]),
		Image: body[5:],
	}, nil
}

// decodeCommit decodes a commit-marker payload (without the type byte).
func decodeCommit(body []byte) (CommitRecord, error) {
	if len(body) < 1+8+4+4 {
		return CommitRecord{}, fmt.Errorf("%w: commit record of %d bytes", ErrCorrupt, len(body))
	}
	c := CommitRecord{
		Model:    body[0],
		Seq:      binary.BigEndian.Uint64(body[1:9]),
		NumPages: binary.BigEndian.Uint32(body[9:13]),
	}
	metaLen := int(binary.BigEndian.Uint32(body[13:17]))
	if metaLen != len(body)-17 {
		return CommitRecord{}, fmt.Errorf("%w: commit meta length %d in %d-byte body", ErrCorrupt, metaLen, len(body))
	}
	c.Meta = body[17:]
	return c, nil
}

// decodeRecord validates one framed record (header + payload as laid out
// on the device) and decodes it into page or commit form. It is the
// single decode path shared by the replay scanner and the fuzz target.
func decodeRecord(hdr, payload []byte) (pg PageRecord, cm CommitRecord, isCommit bool, err error) {
	if len(hdr) != recordHeaderSize {
		return pg, cm, false, fmt.Errorf("%w: header of %d bytes", ErrCorrupt, len(hdr))
	}
	if want := binary.BigEndian.Uint32(hdr[0:4]); int(want) != len(payload) {
		return pg, cm, false, fmt.Errorf("%w: payload length %d, header says %d", ErrCorrupt, len(payload), want)
	}
	if want := binary.BigEndian.Uint32(hdr[4:8]); crc32.Checksum(payload, crcTable) != want {
		return pg, cm, false, fmt.Errorf("%w: checksum mismatch", ErrCorrupt)
	}
	if len(payload) == 0 {
		return pg, cm, false, fmt.Errorf("%w: empty payload", ErrCorrupt)
	}
	switch payload[0] {
	case recPage:
		pg, err = decodePage(payload[1:])
		return pg, cm, false, err
	case recCommit:
		cm, err = decodeCommit(payload[1:])
		return pg, cm, true, err
	default:
		return pg, cm, false, fmt.Errorf("%w: record type %d", ErrCorrupt, payload[0])
	}
}
