package wal

import (
	"bytes"
	"testing"
)

func benchBatch(pages, pageBytes int) ([]PageRecord, CommitRecord) {
	recs := make([]PageRecord, pages)
	img := bytes.Repeat([]byte{0x5A}, pageBytes)
	for i := range recs {
		recs[i] = PageRecord{Model: 1, Page: uint32(i), Image: img}
	}
	return recs, CommitRecord{Model: 1, NumPages: uint32(pages), Meta: bytes.Repeat([]byte{0x01}, 128)}
}

// BenchmarkWALAppend measures the encode+append path of one commit batch
// of 8 2 KiB pages against an in-memory device (sync is a memcpy, so
// this is dominated by framing and checksums).
func BenchmarkWALAppend(b *testing.B) {
	dev := newMemDevice(nil)
	l, err := Open(dev, nil)
	if err != nil {
		b.Fatal(err)
	}
	pages, c := benchBatch(8, 2048)
	var total int64
	for _, p := range pages {
		total += int64(len(p.Image))
	}
	b.SetBytes(total)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := l.Commit(pages, c); err != nil {
			b.Fatal(err)
		}
		if l.Size() > 64<<20 {
			b.StopTimer()
			if err := l.Reset(); err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
		}
	}
}

// BenchmarkWALGroupCommit measures concurrent committers batching behind
// shared sync waves — the serving-path commit shape.
func BenchmarkWALGroupCommit(b *testing.B) {
	dev := newMemDevice(nil)
	l, err := Open(dev, nil)
	if err != nil {
		b.Fatal(err)
	}
	pages, c := benchBatch(4, 2048)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, err := l.Commit(pages, c); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkWALReplay measures recovery: scanning, checksumming and
// applying a log of 512 committed batches.
func BenchmarkWALReplay(b *testing.B) {
	dev := newMemDevice(nil)
	l, err := Open(dev, nil)
	if err != nil {
		b.Fatal(err)
	}
	pages, c := benchBatch(4, 2048)
	for i := 0; i < 512; i++ {
		if _, err := l.Commit(pages, c); err != nil {
			b.Fatal(err)
		}
	}
	img := dev.bytes()
	b.SetBytes(int64(len(img)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var n int
		if _, err := Open(newMemDevice(img), func(CommitRecord, []PageRecord) error {
			n++
			return nil
		}); err != nil {
			b.Fatal(err)
		}
		if n != 512 {
			b.Fatalf("replayed %d batches", n)
		}
	}
}
