package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
)

// Device is the storage the log appends to. *os.File satisfies it
// directly (the production path); tests substitute in-memory devices
// with fault injection and crash hooks. The log owns all offsets and
// never writes before its durable watermark; Sync must make every
// completed WriteAt durable.
type Device interface {
	io.ReaderAt
	io.WriterAt
	Sync() error
	Truncate(size int64) error
}

// Stats is a point-in-time snapshot of the log's counters. These are
// observability values (served on /metrics); none of them is a paper
// counter — WAL traffic sits entirely outside the simulated device.
type Stats struct {
	// AppendedBytes counts bytes appended over the log's lifetime
	// (monotonic across Reset).
	AppendedBytes int64
	// PayloadBytes counts the dirty-page image bytes inside those
	// appends (monotonic across Reset). AppendedBytes / PayloadBytes is
	// the log's write amplification: framing, commit markers and the
	// full-page write granularity on top of the payload the commits
	// actually carried.
	PayloadBytes int64
	// Syncs counts device sync waves; with group commit this is the
	// interesting ratio against Commits.
	Syncs int64
	// Commits counts acknowledged (synced) commit batches.
	Commits int64
	// LastSeq is the sequence number of the last acknowledged commit
	// (monotonic across Reset, so acknowledgment accounting survives
	// checkpoints).
	LastSeq uint64
	// SizeBytes is the current log length on the device.
	SizeBytes int64
}

// Log is the append-only write-ahead log. Safe for concurrent Commit
// calls: appends serialize under an internal lock, syncs batch into
// group-commit waves. See the package comment for the full contract.
type Log struct {
	mu  sync.Mutex // append lock: seq assignment, encode buffer, WriteAt, end
	dev Device
	end int64  // append offset; advances only on fully successful writes
	seq uint64 // last assigned commit sequence
	enc []byte // reusable encode buffer

	// endDurable mirrors end for the sync leader (which must not take
	// the append lock while a Reset may be waiting out its wave).
	endDurable atomic.Int64

	sc struct {
		sync.Mutex
		cond    *sync.Cond
		synced  int64 // device offset covered by a completed sync
		syncing bool  // a sync wave is in flight
		err     error // error of the last completed wave (for its waiters)
	}

	appended atomic.Int64
	payload  atomic.Int64
	syncs    atomic.Int64
	commits  atomic.Int64
	lastSeq  atomic.Uint64

	// syncHook, when set, runs after every successful device sync with
	// the wave ordinal — the kill-after-N-syncs crash point of the
	// recovery test battery. Set before sharing the log.
	syncHook func(wave int64)
}

// Open scans the log on dev, replays every committed batch through
// apply (in append order; nil skips application), truncates whatever
// follows the last committed batch — torn tails from crashes mid-append
// as well as appended-but-uncommitted page records — and returns a log
// ready to append after it. Scanning stops at the first malformed
// record (bad length, short read, checksum mismatch): nothing past a
// bad checksum is ever replayed. Replay is idempotent: page images are
// absolute, so recovering an already-recovered log reapplies the same
// states.
func Open(dev Device, apply func(c CommitRecord, pages []PageRecord) error) (*Log, error) {
	l := &Log{dev: dev}
	l.sc.cond = sync.NewCond(&l.sc.Mutex)

	var (
		off      int64
		validEnd int64
		pending  []PageRecord
		hdr      [recordHeaderSize]byte
	)
	// readFull distinguishes a short read at end of device (a torn tail,
	// ends the scan) from a device error (aborts recovery: truncating on
	// a transient read fault could discard committed records).
	readFull := func(p []byte, at int64) (bool, error) {
		n, err := dev.ReadAt(p, at)
		if n >= len(p) {
			return true, nil
		}
		if err == nil || errors.Is(err, io.EOF) {
			return false, nil
		}
		return false, err
	}
	for {
		ok, err := readFull(hdr[:], off)
		if err != nil {
			return nil, fmt.Errorf("wal: read header at %d: %w", off, err)
		}
		if !ok {
			break // clean end of log, or a torn header
		}
		payloadLen := int(binary.BigEndian.Uint32(hdr[0:4]))
		if payloadLen > maxPayload {
			break // corrupt length prefix
		}
		payload := make([]byte, payloadLen)
		ok, err = readFull(payload, off+recordHeaderSize)
		if err != nil {
			return nil, fmt.Errorf("wal: read record at %d: %w", off, err)
		}
		if !ok {
			break // torn payload
		}
		pg, cm, isCommit, err := decodeRecord(hdr[:], payload)
		if err != nil {
			break // checksum or structural failure: the torn tail starts here
		}
		off += int64(recordHeaderSize + payloadLen)
		if !isCommit {
			pending = append(pending, pg)
			continue
		}
		if apply != nil {
			if err := apply(cm, pending); err != nil {
				return nil, fmt.Errorf("wal: replay commit %d: %w", cm.Seq, err)
			}
		}
		pending = pending[:0]
		validEnd = off
		l.seq = cm.Seq
	}
	// Drop everything past the last committed batch and make the cut
	// durable, so a later recovery cannot resurrect the discarded tail.
	if err := dev.Truncate(validEnd); err != nil {
		return nil, fmt.Errorf("wal: truncate torn tail: %w", err)
	}
	if err := dev.Sync(); err != nil {
		return nil, fmt.Errorf("wal: sync after truncate: %w", err)
	}
	l.end = validEnd
	l.endDurable.Store(validEnd)
	l.sc.synced = validEnd
	l.lastSeq.Store(l.seq)
	return l, nil
}

// SetSyncHook installs the after-sync crash hook (tests only; see the
// syncHook field). Must be called before the log is shared.
func (l *Log) SetSyncHook(fn func(wave int64)) { l.syncHook = fn }

// SetSeq raises the commit sequence to at least seq. Checkpoints persist
// the last committed sequence and restore it here after reopening a
// truncated log, keeping sequence numbers monotonic across restarts.
// Never moves the sequence backwards. Call before the log is shared.
func (l *Log) SetSeq(seq uint64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if seq > l.seq {
		l.seq = seq
		l.lastSeq.Store(seq)
	}
}

// Commit appends one batch — the page images and their commit marker —
// and returns once a device sync covers it: an acknowledged commit is on
// stable storage. The sequence number is assigned here (c.Seq is
// overwritten) and returned. Concurrent commits are batched behind one
// sync wave (group commit). On a failed append the offset does not
// advance, so a retry overwrites the torn bytes.
func (l *Log) Commit(pages []PageRecord, c CommitRecord) (uint64, error) {
	l.mu.Lock()
	l.seq++
	c.Seq = l.seq
	buf := l.enc[:0]
	var payload int64
	for _, p := range pages {
		buf = appendPage(buf, p)
		payload += int64(len(p.Image))
	}
	buf = appendCommit(buf, c)
	l.enc = buf
	if _, err := l.dev.WriteAt(buf, l.end); err != nil {
		l.mu.Unlock()
		return 0, fmt.Errorf("wal: append commit %d: %w", c.Seq, err)
	}
	l.end += int64(len(buf))
	want := l.end
	l.endDurable.Store(l.end)
	l.mu.Unlock()
	l.appended.Add(int64(len(buf)))
	l.payload.Add(payload)

	if err := l.syncTo(want); err != nil {
		return 0, err
	}
	l.commits.Add(1)
	for {
		cur := l.lastSeq.Load()
		if c.Seq <= cur || l.lastSeq.CompareAndSwap(cur, c.Seq) {
			break
		}
	}
	return c.Seq, nil
}

// syncTo blocks until a completed sync covers offset want. At most one
// sync wave is in flight; latecomers wait on it and check whether its
// watermark covers them — the group-commit batching: n concurrent
// committers cost one or two syncs, not n.
func (l *Log) syncTo(want int64) error {
	s := &l.sc
	s.Lock()
	for s.synced < want {
		if s.syncing {
			s.cond.Wait()
			if s.err != nil && s.synced < want {
				err := s.err
				s.Unlock()
				return fmt.Errorf("wal: sync: %w", err)
			}
			continue
		}
		s.syncing = true
		s.err = nil
		s.Unlock()
		// The wave covers everything appended up to now, not just this
		// committer's offset — that is what batches the group.
		target := l.endDurable.Load()
		err := l.dev.Sync()
		wave := l.syncs.Add(1)
		if err == nil && l.syncHook != nil {
			l.syncHook(wave)
		}
		s.Lock()
		s.syncing = false
		if err == nil {
			if target > s.synced {
				s.synced = target
			}
		} else {
			s.err = err
		}
		s.cond.Broadcast()
		if err != nil {
			s.Unlock()
			return fmt.Errorf("wal: sync: %w", err)
		}
	}
	s.Unlock()
	return nil
}

// Reset truncates the log to empty once a checkpoint captured its
// contents. Sequence numbers keep increasing across resets. The caller
// must ensure no Commit is in flight (the facade's commit serialization
// does); an in-flight sync wave is waited out defensively.
func (l *Log) Reset() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	s := &l.sc
	s.Lock()
	for s.syncing {
		s.cond.Wait()
	}
	defer s.Unlock()
	if err := l.dev.Truncate(0); err != nil {
		return fmt.Errorf("wal: reset: %w", err)
	}
	if err := l.dev.Sync(); err != nil {
		return fmt.Errorf("wal: reset sync: %w", err)
	}
	l.end = 0
	l.endDurable.Store(0)
	s.synced = 0
	return nil
}

// Stats returns a snapshot of the log counters.
func (l *Log) Stats() Stats {
	return Stats{
		AppendedBytes: l.appended.Load(),
		PayloadBytes:  l.payload.Load(),
		Syncs:         l.syncs.Load(),
		Commits:       l.commits.Load(),
		LastSeq:       l.lastSeq.Load(),
		SizeBytes:     l.endDurable.Load(),
	}
}

// Size returns the current log length on the device (the checkpoint
// threshold input).
func (l *Log) Size() int64 { return l.endDurable.Load() }

// LastSeq returns the sequence of the last acknowledged commit.
func (l *Log) LastSeq() uint64 { return l.lastSeq.Load() }
