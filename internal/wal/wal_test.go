package wal

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"complexobj/internal/disk"
	"complexobj/internal/faultdisk"
)

// batch is one committed unit as seen by a replay callback.
type batch struct {
	commit CommitRecord
	pages  []PageRecord
}

// collector builds a replay callback that deep-copies what it sees (the
// scanner's buffers are reused).
func collector(out *[]batch) func(CommitRecord, []PageRecord) error {
	return func(c CommitRecord, pages []PageRecord) error {
		b := batch{commit: c}
		b.commit.Meta = append([]byte(nil), c.Meta...)
		for _, p := range pages {
			b.pages = append(b.pages, PageRecord{
				Model: p.Model, Page: p.Page, Image: append([]byte(nil), p.Image...),
			})
		}
		*out = append(*out, b)
		return nil
	}
}

// testBatch builds a deterministic batch for model kind with n pages.
func testBatch(kind byte, n int, stamp byte) ([]PageRecord, CommitRecord) {
	pages := make([]PageRecord, n)
	for i := range pages {
		img := bytes.Repeat([]byte{stamp + byte(i)}, 64)
		pages[i] = PageRecord{Model: kind, Page: uint32(10 + i), Image: img}
	}
	c := CommitRecord{Model: kind, NumPages: uint32(100 + n), Meta: []byte{0xAB, stamp}}
	return pages, c
}

func mustOpen(t *testing.T, dev Device, apply func(CommitRecord, []PageRecord) error) *Log {
	t.Helper()
	l, err := Open(dev, apply)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return l
}

func TestCommitReplayRoundTrip(t *testing.T) {
	dev := newMemDevice(nil)
	l := mustOpen(t, dev, nil)
	var want []batch
	for i := 0; i < 3; i++ {
		pages, c := testBatch(byte(i), i+1, byte(0x10*i))
		seq, err := l.Commit(pages, c)
		if err != nil {
			t.Fatalf("commit %d: %v", i, err)
		}
		if seq != uint64(i+1) {
			t.Fatalf("commit %d: seq %d, want %d", i, seq, i+1)
		}
		c.Seq = seq
		want = append(want, batch{commit: c, pages: pages})
	}
	if s := l.Stats(); s.Commits != 3 || s.LastSeq != 3 || s.SizeBytes == 0 {
		t.Fatalf("stats after 3 commits: %+v", s)
	}
	// The three batches carried 1+2+3 pages of 64 bytes each; everything
	// appended on top of that payload is framing — the amplification the
	// serving layer reports.
	if s := l.Stats(); s.PayloadBytes != 6*64 || s.AppendedBytes <= s.PayloadBytes {
		t.Fatalf("payload accounting: appended %d, payload %d (want payload %d and appended > payload)",
			s.AppendedBytes, s.PayloadBytes, 6*64)
	}

	// Recover from the durable (synced-only) crash image: every
	// acknowledged commit must be there.
	for round := 0; round < 2; round++ { // replay twice: idempotence
		var got []batch
		l2 := mustOpen(t, dev.crash(true), collector(&got))
		if len(got) != len(want) {
			t.Fatalf("round %d: replayed %d batches, want %d", round, len(got), len(want))
		}
		for i := range want {
			w, g := want[i], got[i]
			if g.commit.Seq != w.commit.Seq || g.commit.Model != w.commit.Model ||
				g.commit.NumPages != w.commit.NumPages || !bytes.Equal(g.commit.Meta, w.commit.Meta) {
				t.Fatalf("round %d batch %d: commit %+v, want %+v", round, i, g.commit, w.commit)
			}
			if len(g.pages) != len(w.pages) {
				t.Fatalf("round %d batch %d: %d pages, want %d", round, i, len(g.pages), len(w.pages))
			}
			for j := range w.pages {
				if g.pages[j].Model != w.pages[j].Model || g.pages[j].Page != w.pages[j].Page ||
					!bytes.Equal(g.pages[j].Image, w.pages[j].Image) {
					t.Fatalf("round %d batch %d page %d differs", round, i, j)
				}
			}
		}
		// Appending after recovery continues the sequence.
		if l2.LastSeq() != 3 {
			t.Fatalf("round %d: recovered LastSeq %d, want 3", round, l2.LastSeq())
		}
	}
}

// TestTornTailEveryCut crashes the log at every possible torn-write
// length inside the second batch: recovery must always land on exactly
// the first committed batch — never a torn one, never a partial second.
func TestTornTailEveryCut(t *testing.T) {
	dev := newMemDevice(nil)
	l := mustOpen(t, dev, nil)
	p1, c1 := testBatch(1, 2, 0x11)
	if _, err := l.Commit(p1, c1); err != nil {
		t.Fatal(err)
	}
	end1 := l.Size()
	p2, c2 := testBatch(2, 2, 0x22)
	if _, err := l.Commit(p2, c2); err != nil {
		t.Fatal(err)
	}
	full := dev.bytes()

	for cut := end1; cut <= int64(len(full)); cut++ {
		torn := newMemDevice(full[:cut])
		var got []batch
		l2, err := Open(torn, collector(&got))
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		wantBatches := 1
		if cut == int64(len(full)) {
			wantBatches = 2
		}
		if len(got) != wantBatches {
			t.Fatalf("cut %d: replayed %d batches, want %d", cut, len(got), wantBatches)
		}
		if got[0].commit.Seq != 1 {
			t.Fatalf("cut %d: first batch seq %d", cut, got[0].commit.Seq)
		}
		wantEnd := end1
		if wantBatches == 2 {
			wantEnd = int64(len(full))
		}
		if l2.Size() != wantEnd {
			t.Fatalf("cut %d: truncated to %d, want %d", cut, l2.Size(), wantEnd)
		}
		// The log stays appendable after truncation and replays cleanly.
		p3, c3 := testBatch(3, 1, 0x33)
		if _, err := l2.Commit(p3, c3); err != nil {
			t.Fatalf("cut %d: commit after recovery: %v", cut, err)
		}
		var again []batch
		mustOpen(t, torn, collector(&again))
		if len(again) != wantBatches+1 {
			t.Fatalf("cut %d: %d batches after recovery commit, want %d", cut, len(again), wantBatches+1)
		}
	}
}

// TestCorruptByteNeverReplaysPast flips every byte of the second batch
// in turn: the checksum must stop replay at batch one every time.
func TestCorruptByteNeverReplaysPast(t *testing.T) {
	dev := newMemDevice(nil)
	l := mustOpen(t, dev, nil)
	p1, c1 := testBatch(1, 1, 0x11)
	if _, err := l.Commit(p1, c1); err != nil {
		t.Fatal(err)
	}
	end1 := l.Size()
	p2, c2 := testBatch(2, 1, 0x22)
	if _, err := l.Commit(p2, c2); err != nil {
		t.Fatal(err)
	}
	full := dev.bytes()

	for i := end1; i < int64(len(full)); i++ {
		corrupt := append([]byte(nil), full...)
		corrupt[i] ^= 0xFF
		var got []batch
		l2, err := Open(newMemDevice(corrupt), collector(&got))
		if err != nil {
			t.Fatalf("flip %d: %v", i, err)
		}
		if len(got) != 1 || got[0].commit.Seq != 1 {
			t.Fatalf("flip %d: replayed %d batches (first seq %v), want only batch 1",
				i, len(got), got)
		}
		if l2.Size() != end1 {
			t.Fatalf("flip %d: truncated to %d, want %d", i, l2.Size(), end1)
		}
	}
}

// TestUncommittedTailDropped appends a valid page record with no commit
// marker after it (a crash between append and marker): replay must not
// surface it and recovery must truncate it.
func TestUncommittedTailDropped(t *testing.T) {
	dev := newMemDevice(nil)
	l := mustOpen(t, dev, nil)
	p1, c1 := testBatch(1, 1, 0x11)
	if _, err := l.Commit(p1, c1); err != nil {
		t.Fatal(err)
	}
	end1 := l.Size()
	orphan := appendPage(nil, PageRecord{Model: 9, Page: 7, Image: []byte("orphan")})
	if _, err := dev.WriteAt(orphan, end1); err != nil {
		t.Fatal(err)
	}
	var got []batch
	l2 := mustOpen(t, dev, collector(&got))
	if len(got) != 1 {
		t.Fatalf("replayed %d batches, want 1", len(got))
	}
	if l2.Size() != end1 {
		t.Fatalf("size %d after recovery, want %d", l2.Size(), end1)
	}
}

// TestGroupCommit pins the batching: the first sync wave is held open
// until all committers have appended, so 16 concurrent commits complete
// in at most two syncs (the held wave plus one covering the rest).
func TestGroupCommit(t *testing.T) {
	const committers = 16
	// Measure the encoded batch size on a scratch log.
	scratch := mustOpen(t, newMemDevice(nil), nil)
	pages, c := testBatch(1, 2, 0x11)
	if _, err := scratch.Commit(pages, c); err != nil {
		t.Fatal(err)
	}
	batchBytes := scratch.Size()

	dev := newMemDevice(nil)
	l := mustOpen(t, dev, nil) // Open issues one sync of its own
	holdWave := dev.wave + 1
	total := committers * batchBytes
	dev.syncHook = func(wave int) error {
		if wave != holdWave {
			return nil
		}
		deadline := time.Now().Add(5 * time.Second)
		for l.Size() < total {
			if time.Now().After(deadline) {
				return errors.New("timed out waiting for appends")
			}
			time.Sleep(100 * time.Microsecond)
		}
		return nil
	}
	var wg sync.WaitGroup
	errs := make([]error, committers)
	for i := 0; i < committers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			pages, c := testBatch(1, 2, 0x11)
			_, errs[i] = l.Commit(pages, c)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("committer %d: %v", i, err)
		}
	}
	s := l.Stats()
	if s.Commits != committers {
		t.Fatalf("commits %d, want %d", s.Commits, committers)
	}
	if s.Syncs > 2 {
		t.Fatalf("%d syncs for %d concurrent commits; group commit must batch them into at most 2", s.Syncs, committers)
	}
}

// TestSyncErrorFailsCommit pins that a failed sync fails the commit (no
// acknowledgment without durability) and the log recovers: a later
// commit succeeds and replay stays consistent.
func TestSyncErrorFailsCommit(t *testing.T) {
	dev := newMemDevice(nil)
	l := mustOpen(t, dev, nil)
	boom := errors.New("sync exploded")
	dev.syncHook = func(wave int) error { return boom }
	p1, c1 := testBatch(1, 1, 0x11)
	if _, err := l.Commit(p1, c1); !errors.Is(err, boom) {
		t.Fatalf("commit with failing sync: %v, want %v", err, boom)
	}
	if s := l.Stats(); s.Commits != 0 {
		t.Fatalf("failed commit acknowledged: %+v", s)
	}
	// The pessimistic crash image holds nothing committed.
	var got []batch
	mustOpen(t, dev.crash(true), collector(&got))
	if len(got) != 0 {
		t.Fatalf("unsynced commit visible in durable image: %d batches", len(got))
	}
	// The device heals; committing again succeeds and both batches (the
	// first one's bytes were appended, its marker is on the device) are
	// recoverable — recovering MORE than was acknowledged is fine, losing
	// acknowledged commits is not.
	dev.syncHook = nil
	p2, c2 := testBatch(2, 1, 0x22)
	if _, err := l.Commit(p2, c2); err != nil {
		t.Fatal(err)
	}
	got = nil
	mustOpen(t, dev.crash(true), collector(&got))
	if len(got) != 2 {
		t.Fatalf("replayed %d batches after recovery, want 2", len(got))
	}
}

// TestSetSeq pins the checkpoint contract: after a Reset truncates the
// log, the facade restores the persisted sequence so numbering stays
// monotonic across checkpoints and restarts.
func TestSetSeq(t *testing.T) {
	dev := newMemDevice(nil)
	l := mustOpen(t, dev, nil)
	p, c := testBatch(1, 1, 0x11)
	if _, err := l.Commit(p, c); err != nil {
		t.Fatal(err)
	}
	if err := l.Reset(); err != nil {
		t.Fatal(err)
	}
	if l.Size() != 0 {
		t.Fatalf("size %d after reset", l.Size())
	}
	if seq, err := l.Commit(p, c); err != nil || seq != 2 {
		t.Fatalf("post-reset commit: seq %d err %v, want 2", seq, err)
	}

	// A restart over the truncated log starts at zero unless the
	// checkpointed sequence is restored.
	l2 := mustOpen(t, newMemDevice(nil), nil)
	l2.SetSeq(17)
	if seq, err := l2.Commit(p, c); err != nil || seq != 18 {
		t.Fatalf("commit after SetSeq(17): seq %d err %v, want 18", seq, err)
	}
	l2.SetSeq(5) // never moves backwards
	if seq, err := l2.Commit(p, c); err != nil || seq != 19 {
		t.Fatalf("commit after backwards SetSeq: seq %d err %v, want 19", seq, err)
	}
}

// TestFaultdiskTornWrite drives the log over a faultdisk-wrapped
// backend injecting torn writes: the commit fails, the half-written
// garbage lands on the device, and recovery over the raw backend
// truncates it back to the last committed batch.
func TestFaultdiskTornWrite(t *testing.T) {
	mem := disk.NewMemBackend()
	clean := mustOpen(t, newBackendDevice(mem), nil)
	p1, c1 := testBatch(1, 2, 0x11)
	if _, err := clean.Commit(p1, c1); err != nil {
		t.Fatal(err)
	}
	end1 := clean.Size()

	spec, err := faultdisk.ParseSpec("seed=7,torn=1")
	if err != nil {
		t.Fatal(err)
	}
	inj := faultdisk.New(spec)
	torn := mustOpen(t, newBackendDevice(inj.Wrap(mem, 2048)), nil)
	torn.SetSeq(1)
	p2, c2 := testBatch(2, 2, 0x22)
	if _, err := torn.Commit(p2, c2); err == nil {
		t.Fatal("commit through a torn write succeeded")
	}
	if inj.Counters().TornWrites == 0 {
		t.Fatal("no torn write was injected")
	}

	// Crash and recover over the raw backend: the torn garbage is past
	// end1 (the backend grew for the attempted write) and must be cut.
	var got []batch
	recovered, err := Open(newBackendDevice(mem), collector(&got))
	if err != nil {
		t.Fatalf("recovery: %v", err)
	}
	if len(got) != 1 || got[0].commit.Seq != 1 {
		t.Fatalf("recovered %d batches, want the 1 committed one", len(got))
	}
	if recovered.Size() != end1 {
		t.Fatalf("recovered size %d, want %d", recovered.Size(), end1)
	}
	// And the log serves new commits afterwards.
	if _, err := recovered.Commit(p2, c2); err != nil {
		t.Fatal(err)
	}
}

// TestFaultdiskShortReadAborts pins the recovery-safety choice: a
// device READ error during replay aborts Open with an error instead of
// truncating — a transient short read must never cost committed data.
func TestFaultdiskShortReadAborts(t *testing.T) {
	mem := disk.NewMemBackend()
	l := mustOpen(t, newBackendDevice(mem), nil)
	p1, c1 := testBatch(1, 2, 0x11)
	if _, err := l.Commit(p1, c1); err != nil {
		t.Fatal(err)
	}
	spec, err := faultdisk.ParseSpec("seed=7,read=1,short=1")
	if err != nil {
		t.Fatal(err)
	}
	wrapped := faultdisk.New(spec).Wrap(mem, 2048)
	if _, err := Open(newBackendDevice(wrapped), nil); err == nil {
		t.Fatal("Open through injected short reads succeeded")
	}
	// The data was untouched: a clean reopen replays the batch.
	var got []batch
	mustOpen(t, newBackendDevice(mem), collector(&got))
	if len(got) != 1 {
		t.Fatalf("committed batch lost: %d batches", len(got))
	}
}

// TestReplayApplyErrorAborts: a failing apply callback must abort Open
// (the caller's base could not fold the batch; truncating would lose it).
func TestReplayApplyErrorAborts(t *testing.T) {
	dev := newMemDevice(nil)
	l := mustOpen(t, dev, nil)
	p, c := testBatch(1, 1, 0x11)
	if _, err := l.Commit(p, c); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("apply failed")
	if _, err := Open(dev, func(CommitRecord, []PageRecord) error { return boom }); !errors.Is(err, boom) {
		t.Fatalf("Open with failing apply: %v, want %v", err, boom)
	}
}

// TestEmptyAndGarbageLogs: opening empty or pure-garbage devices never
// panics and yields an empty, usable log.
func TestEmptyAndGarbageLogs(t *testing.T) {
	for _, raw := range [][]byte{
		nil,
		{0x01},
		bytes.Repeat([]byte{0xFF}, 4096),
		bytes.Repeat([]byte{0x00}, 4096),
		[]byte(fmt.Sprintf("%08d not a wal", 42)),
	} {
		var got []batch
		l, err := Open(newMemDevice(raw), collector(&got))
		if err != nil {
			t.Fatalf("garbage %d bytes: %v", len(raw), err)
		}
		if len(got) != 0 || l.Size() != 0 {
			t.Fatalf("garbage %d bytes: %d batches, size %d", len(raw), len(got), l.Size())
		}
		p, c := testBatch(1, 1, 0x11)
		if _, err := l.Commit(p, c); err != nil {
			t.Fatal(err)
		}
	}
}
