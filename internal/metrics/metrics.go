package metrics

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// The histogram is log-linear ("HDR-style"): bucket 0 holds subCount
// unit-width sub-buckets for values 0..subCount-1, and every further
// bucket b >= 1 covers [subCount<<(b-1), subCount<<b) with subHalf
// sub-buckets of width 1<<b. The relative width of any bucket is at most
// 1/subHalf (~3.1% with subBits = 6), which bounds the quantile error to
// one bucket width without per-value precision bookkeeping.
const (
	subBits  = 6
	subCount = 1 << subBits // sub-buckets in the linear bucket 0
	subHalf  = subCount / 2 // sub-buckets in every log bucket

	// maxLogBucket is the largest bucket index b: bits.Len64 of a positive
	// int64 is at most 63, so b = len - subBits never exceeds 63-subBits.
	maxLogBucket = 63 - subBits

	// NumBuckets is the total sub-bucket (counter) count. The histogram
	// covers all of [0, math.MaxInt64] — values never saturate or clip.
	NumBuckets = subCount + maxLogBucket*subHalf
)

// bucketIndex maps a non-negative value to its counter slot.
func bucketIndex(v int64) int {
	if v < subCount {
		return int(v)
	}
	b := bits.Len64(uint64(v)) - subBits // log bucket, >= 1 since v >= subCount
	sub := int(v>>uint(b)) - subHalf     // 0..subHalf-1
	return subCount + (b-1)*subHalf + sub
}

// bucketLower returns the smallest value mapping to counter slot idx.
func bucketLower(idx int) int64 {
	if idx < subCount {
		return int64(idx)
	}
	rel := idx - subCount
	b := rel/subHalf + 1
	sub := rel%subHalf + subHalf
	return int64(sub) << uint(b)
}

// bucketWidth returns the value width of counter slot idx.
func bucketWidth(idx int) int64 {
	if idx < subCount {
		return 1
	}
	return 1 << uint((idx-subCount)/subHalf+1)
}

// Histogram is a fixed-bucket log-linear latency histogram safe for
// concurrent recording: Record is a handful of atomic adds on a
// preallocated counter array — no locks, no allocation — so request paths
// can record inline. Negative values clamp to zero; the bucket layout
// covers the whole int64 range, so nothing ever saturates. Use Snapshot
// to read (quantiles, merging); a snapshot taken during concurrent
// recording is weakly consistent (each counter is read atomically, but
// the set of counters is not one atomic cut).
//
// The zero value is NOT ready to use; call NewHistogram (Min tracking
// needs a sentinel).
type Histogram struct {
	counts [NumBuckets]atomic.Int64
	count  atomic.Int64
	sum    atomic.Int64
	min    atomic.Int64
	max    atomic.Int64
}

// NewHistogram returns an empty histogram ready for concurrent Record.
func NewHistogram() *Histogram {
	h := &Histogram{}
	h.min.Store(math.MaxInt64)
	return h
}

// Record adds one observation. Negative values count as zero. Safe for
// concurrent use; performs no allocation.
func (h *Histogram) Record(v int64) {
	if v < 0 {
		v = 0
	}
	h.counts[bucketIndex(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	for {
		cur := h.min.Load()
		if v >= cur || h.min.CompareAndSwap(cur, v) {
			break
		}
	}
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			break
		}
	}
}

// Observe records a duration in nanoseconds (negative durations clamp to
// zero like Record).
func (h *Histogram) Observe(d time.Duration) { h.Record(int64(d)) }

// Count returns the number of recorded observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Snapshot copies the current counters into an immutable, mergeable
// snapshot.
func (h *Histogram) Snapshot() *Snapshot {
	s := &Snapshot{Min: h.min.Load(), Max: h.max.Load(), Sum: h.sum.Load()}
	for i := range h.counts {
		c := h.counts[i].Load()
		s.Counts[i] = c
		s.Count += c
	}
	if s.Count == 0 {
		s.Min, s.Max, s.Sum = 0, 0, 0
	}
	return s
}

// Snapshot is a point-in-time copy of a histogram: plain counters, no
// atomics. Snapshots merge (associatively and commutatively) and answer
// quantile queries; the zero value is an empty snapshot ready to Merge
// into.
type Snapshot struct {
	Counts [NumBuckets]int64
	Count  int64
	Sum    int64
	Min    int64
	Max    int64
}

// Merge folds o into s. Merging is associative and commutative: any
// merge order over a set of snapshots yields identical counters, so
// per-worker histograms can be combined in whatever order they finish.
func (s *Snapshot) Merge(o *Snapshot) {
	if o == nil || o.Count == 0 {
		return
	}
	if s.Count == 0 || o.Min < s.Min {
		s.Min = o.Min
	}
	if s.Count == 0 || o.Max > s.Max {
		s.Max = o.Max
	}
	for i, c := range o.Counts {
		s.Counts[i] += c
	}
	s.Count += o.Count
	s.Sum += o.Sum
}

// Quantile returns an estimate of the q-quantile (q in [0, 1]) of the
// recorded values: the upper edge of the bucket holding the rank-⌈q·n⌉
// observation, clamped to the recorded Max. The true value lies in the
// same bucket, so the estimate is within one bucket width (a relative
// error of at most 1/32 with the default layout). Returns 0 on an empty
// snapshot.
func (s *Snapshot) Quantile(q float64) int64 {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := int64(math.Ceil(q * float64(s.Count)))
	if rank < 1 {
		rank = 1
	}
	var seen int64
	for i, c := range s.Counts {
		seen += c
		if seen >= rank {
			hi := bucketLower(i) + bucketWidth(i) - 1
			if hi > s.Max {
				hi = s.Max
			}
			if hi < s.Min {
				hi = s.Min
			}
			return hi
		}
	}
	return s.Max
}

// Mean returns the arithmetic mean of the recorded values (0 when empty).
// Unlike quantiles the mean is exact: Sum accumulates true values, not
// bucket edges.
func (s *Snapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// Summary is the JSON shape of one latency distribution, in microseconds
// (the unit of the server's elapsed fields). Both the server's /info
// metrics block and cobench's -report run report use it, so the two
// renderings of one histogram cannot drift apart.
type Summary struct {
	Count      int64   `json:"count"`
	MinMicros  int64   `json:"minMicros"`
	MeanMicros float64 `json:"meanMicros"`
	MaxMicros  int64   `json:"maxMicros"`
	P50Micros  int64   `json:"p50Micros"`
	P90Micros  int64   `json:"p90Micros"`
	P99Micros  int64   `json:"p99Micros"`
	P999Micros int64   `json:"p999Micros"`
}

// Summarize renders a snapshot of nanosecond observations as the standard
// microsecond summary (zero value for an empty snapshot).
func Summarize(s *Snapshot) Summary {
	if s == nil || s.Count == 0 {
		return Summary{}
	}
	const us = int64(time.Microsecond)
	return Summary{
		Count:      s.Count,
		MinMicros:  s.Min / us,
		MeanMicros: s.Mean() / float64(us),
		MaxMicros:  s.Max / us,
		P50Micros:  s.Quantile(0.50) / us,
		P90Micros:  s.Quantile(0.90) / us,
		P99Micros:  s.Quantile(0.99) / us,
		P999Micros: s.Quantile(0.999) / us,
	}
}
