// Package metrics is the observability substrate of the serving path: a
// fixed-bucket log-linear latency histogram built for lock-free
// concurrent recording, mergeable snapshots with bounded-error quantile
// extraction, and a process memory sampler.
//
// # Contract
//
// Record is wait-free and allocation-free (pinned at 0 allocs/op by
// ci/bench-baseline.txt): a request path may record latencies inline
// without perturbing what it measures. The bucket layout is log-linear —
// a linear unit-width region for small values, then sub-divided
// power-of-two ranges — so any bucket's width is at most 1/32 of its
// value, and Snapshot.Quantile is exact to within one bucket width
// (TestHistogramQuantileWithinOneBucket pins this on random workloads).
// Snapshots Merge associatively and commutatively, so per-worker or
// per-step histograms combine in any completion order.
//
// Nothing in this package touches the paper's I/O accounting: recording
// a latency is arithmetic on private atomics, never a device or buffer
// operation, which is how the server's /metrics endpoint can promise
// that scraping leaves /stats counter cells byte-identical (pinned by
// TestMetricsStatsParity in internal/server).
package metrics
