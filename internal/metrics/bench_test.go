package metrics

import (
	"testing"
)

// BenchmarkHistogramRecord is the serving hot path: one latency recorded
// inline per request. ci/bench-baseline.txt pins it at 0 allocs/op.
func BenchmarkHistogramRecord(b *testing.B) {
	h := NewHistogram()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Record(int64(i) * 977)
	}
}

// BenchmarkHistogramRecordParallel exercises the lock-free claim: many
// goroutines recording into one histogram (also pinned at 0 allocs/op).
func BenchmarkHistogramRecordParallel(b *testing.B) {
	h := NewHistogram()
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		v := int64(1)
		for pb.Next() {
			h.Record(v)
			v = v*2862933555777941757 + 3037000493 // cheap LCG spread
			if v < 0 {
				v = -v
			}
		}
	})
}

// BenchmarkHistogramSnapshotQuantile prices the scrape path (one
// snapshot copy plus four quantile walks), the cost /metrics pays per
// cell.
func BenchmarkHistogramSnapshotQuantile(b *testing.B) {
	h := NewHistogram()
	for i := 0; i < 100000; i++ {
		h.Record(int64(i) * 1543)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := h.Snapshot()
		_ = s.Quantile(0.5)
		_ = s.Quantile(0.9)
		_ = s.Quantile(0.99)
		_ = s.Quantile(0.999)
	}
}
