package metrics

import (
	"fmt"
	"io"
	"strconv"
)

// PromWriter accumulates Prometheus text exposition (version 0.0.4),
// emitting each family's TYPE header once. It is shared by every process
// with a /metrics endpoint (coserve, coshard), so the scrape format stays
// uniform across the deployment.
type PromWriter struct {
	w     io.Writer
	typed map[string]bool
}

func NewPromWriter(w io.Writer) *PromWriter {
	return &PromWriter{w: w, typed: make(map[string]bool)}
}

func (p *PromWriter) family(name, kind string) {
	if !p.typed[name] {
		p.typed[name] = true
		fmt.Fprintf(p.w, "# TYPE %s %s\n", name, kind)
	}
}

func (p *PromWriter) num(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Sample emits one counter or gauge sample; labels come pre-rendered
// (`model="DSM"`) or empty.
func (p *PromWriter) Sample(name, kind, labels string, v float64) {
	p.family(name, kind)
	if labels == "" {
		fmt.Fprintf(p.w, "%s %s\n", name, p.num(v))
	} else {
		fmt.Fprintf(p.w, "%s{%s} %s\n", name, labels, p.num(v))
	}
}

// Summary renders one histogram snapshot as a Prometheus summary in
// seconds: the four serving quantiles plus _sum and _count.
func (p *PromWriter) Summary(name, labels string, s *Snapshot) {
	p.family(name, "summary")
	sep := ""
	if labels != "" {
		sep = ","
	}
	for _, q := range []struct {
		label string
		q     float64
	}{{"0.5", 0.5}, {"0.9", 0.9}, {"0.99", 0.99}, {"0.999", 0.999}} {
		fmt.Fprintf(p.w, "%s{%s%squantile=\"%s\"} %s\n",
			name, labels, sep, q.label, p.num(float64(s.Quantile(q.q))/1e9))
	}
	if labels == "" {
		fmt.Fprintf(p.w, "%s_sum %s\n", name, p.num(float64(s.Sum)/1e9))
		fmt.Fprintf(p.w, "%s_count %d\n", name, s.Count)
	} else {
		fmt.Fprintf(p.w, "%s_sum{%s} %s\n", name, labels, p.num(float64(s.Sum)/1e9))
		fmt.Fprintf(p.w, "%s_count{%s} %d\n", name, labels, s.Count)
	}
}
