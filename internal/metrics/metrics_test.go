package metrics

import (
	"math"
	"math/rand"
	"reflect"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestBucketMathRoundTrip pins the bucket layout: every value lands in
// exactly the bucket whose [lower, lower+width) range contains it, and
// bucket indices are monotone in the value.
func TestBucketMathRoundTrip(t *testing.T) {
	fixed := []int64{0, 1, subCount - 1, subCount, subCount + 1,
		2*subCount - 1, 2 * subCount, 1 << 20, math.MaxInt64 - 1, math.MaxInt64}
	rng := rand.New(rand.NewSource(7))
	vals := append([]int64{}, fixed...)
	for i := 0; i < 10000; i++ {
		vals = append(vals, rng.Int63n(1<<uint(1+rng.Intn(62))))
	}
	for _, v := range vals {
		idx := bucketIndex(v)
		if idx < 0 || idx >= NumBuckets {
			t.Fatalf("bucketIndex(%d) = %d out of [0, %d)", v, idx, NumBuckets)
		}
		lo, w := bucketLower(idx), bucketWidth(idx)
		if v < lo || (w < math.MaxInt64-lo && v >= lo+w) {
			t.Fatalf("value %d mapped to bucket %d = [%d, %d+%d)", v, idx, lo, lo, w)
		}
	}
	sorted := append([]int64{}, vals...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	for i := 1; i < len(sorted); i++ {
		if bucketIndex(sorted[i-1]) > bucketIndex(sorted[i]) {
			t.Fatalf("bucketIndex not monotone: %d -> %d but %d -> %d",
				sorted[i-1], bucketIndex(sorted[i-1]), sorted[i], bucketIndex(sorted[i]))
		}
	}
}

// exactQuantile returns the rank-⌈q·n⌉ element of sorted values, the
// definition Quantile estimates.
func exactQuantile(sorted []int64, q float64) int64 {
	rank := int(math.Ceil(q * float64(len(sorted))))
	if rank < 1 {
		rank = 1
	}
	return sorted[rank-1]
}

// TestHistogramQuantileWithinOneBucket is the accuracy property: on
// random workloads from several shapes of distribution, every quantile
// estimate is within one bucket width of the exact order statistic.
func TestHistogramQuantileWithinOneBucket(t *testing.T) {
	rng := rand.New(rand.NewSource(1993))
	distributions := map[string]func() int64{
		"uniform-small": func() int64 { return rng.Int63n(50) },
		"uniform-wide":  func() int64 { return rng.Int63n(10_000_000) },
		"exponential":   func() int64 { return int64(rng.ExpFloat64() * 2e6) },
		"bimodal": func() int64 {
			if rng.Intn(10) == 0 {
				return 5_000_000 + rng.Int63n(1_000_000)
			}
			return 1000 + rng.Int63n(5000)
		},
		"constant": func() int64 { return 123_456 },
	}
	quantiles := []float64{0, 0.1, 0.25, 0.5, 0.9, 0.99, 0.999, 1}
	for name, draw := range distributions {
		for _, n := range []int{1, 10, 1000, 20000} {
			h := NewHistogram()
			vals := make([]int64, n)
			for i := range vals {
				vals[i] = draw()
				h.Record(vals[i])
			}
			sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
			s := h.Snapshot()
			if s.Count != int64(n) {
				t.Fatalf("%s n=%d: snapshot count %d", name, n, s.Count)
			}
			for _, q := range quantiles {
				got := s.Quantile(q)
				want := exactQuantile(vals, q)
				width := bucketWidth(bucketIndex(want))
				if diff := got - want; diff < -width || diff > width {
					t.Errorf("%s n=%d q=%g: estimate %d, exact %d, |diff| %d > bucket width %d",
						name, n, q, got, want, diff, width)
				}
			}
			if s.Min != vals[0] || s.Max != vals[n-1] {
				t.Errorf("%s n=%d: min/max %d/%d, want %d/%d", name, n, s.Min, s.Max, vals[0], vals[n-1])
			}
			var sum int64
			for _, v := range vals {
				sum += v
			}
			if s.Sum != sum {
				t.Errorf("%s n=%d: sum %d, want %d (mean must be exact)", name, n, s.Sum, sum)
			}
		}
	}
}

// randomSnapshot builds a snapshot of n random observations.
func randomSnapshot(rng *rand.Rand, n int) *Snapshot {
	h := NewHistogram()
	for i := 0; i < n; i++ {
		h.Record(rng.Int63n(1 << uint(1+rng.Intn(40))))
	}
	return h.Snapshot()
}

// clone copies a snapshot by value.
func clone(s *Snapshot) *Snapshot { c := *s; return &c }

// TestSnapshotMergeAssociativeCommutative: any merge order over a set of
// snapshots produces identical counters — the property that lets
// per-step and per-worker histograms combine in completion order.
func TestSnapshotMergeAssociativeCommutative(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 20; trial++ {
		a := randomSnapshot(rng, rng.Intn(500))
		b := randomSnapshot(rng, rng.Intn(500))
		c := randomSnapshot(rng, rng.Intn(500))

		ab := clone(a)
		ab.Merge(b) // (a+b)
		ba := clone(b)
		ba.Merge(a) // (b+a)
		if !reflect.DeepEqual(ab, ba) {
			t.Fatalf("trial %d: merge not commutative", trial)
		}

		abc := clone(ab)
		abc.Merge(c) // (a+b)+c
		bc := clone(b)
		bc.Merge(c)
		a_bc := clone(a)
		a_bc.Merge(bc) // a+(b+c)
		if !reflect.DeepEqual(abc, a_bc) {
			t.Fatalf("trial %d: merge not associative", trial)
		}

		// Identity: merging an empty snapshot changes nothing.
		id := clone(abc)
		id.Merge(&Snapshot{})
		if !reflect.DeepEqual(id, abc) {
			t.Fatalf("trial %d: empty merge not identity", trial)
		}
	}
}

// TestHistogramConcurrentRecordLosesNothing is the race/loss pin: many
// goroutines record concurrently, an independent atomic tally counts what
// they pushed, and the snapshot must account for every sample — total
// count, per-bucket sum and value sum. Run under -race in CI.
func TestHistogramConcurrentRecordLosesNothing(t *testing.T) {
	const goroutines, perG = 16, 5000
	h := NewHistogram()
	var pushed, pushedSum atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < perG; i++ {
				v := rng.Int63n(1 << 30)
				h.Record(v)
				pushed.Add(1)
				pushedSum.Add(v)
			}
		}(g)
	}
	wg.Wait()
	s := h.Snapshot()
	if want := pushed.Load(); s.Count != want {
		t.Fatalf("snapshot count %d, atomic cross-check %d: samples lost", s.Count, want)
	}
	var bucketSum int64
	for _, c := range s.Counts {
		bucketSum += c
	}
	if bucketSum != int64(goroutines*perG) {
		t.Fatalf("bucket counts sum to %d, want %d", bucketSum, goroutines*perG)
	}
	if s.Sum != pushedSum.Load() {
		t.Fatalf("snapshot sum %d, atomic cross-check %d", s.Sum, pushedSum.Load())
	}
}

// TestHistogramRecordNoAlloc pins the hot path at zero allocations (the
// CI benchregress job pins the same through ci/bench-baseline.txt).
func TestHistogramRecordNoAlloc(t *testing.T) {
	h := NewHistogram()
	if n := testing.AllocsPerRun(1000, func() { h.Record(48_213) }); n != 0 {
		t.Fatalf("Record allocates %v allocs/op, want 0", n)
	}
	if n := testing.AllocsPerRun(1000, func() { h.Observe(37 * time.Microsecond) }); n != 0 {
		t.Fatalf("Observe allocates %v allocs/op, want 0", n)
	}
}

// TestSummarize pins the JSON summary shape both the server's /info and
// cobench's -report render from.
func TestSummarize(t *testing.T) {
	if got := Summarize(nil); got != (Summary{}) {
		t.Fatalf("Summarize(nil) = %+v, want zero", got)
	}
	h := NewHistogram()
	for i := 1; i <= 1000; i++ {
		h.Observe(time.Duration(i) * time.Microsecond) // 1..1000 µs
	}
	sum := Summarize(h.Snapshot())
	if sum.Count != 1000 || sum.MinMicros != 1 || sum.MaxMicros != 1000 {
		t.Fatalf("count/min/max = %d/%d/%d", sum.Count, sum.MinMicros, sum.MaxMicros)
	}
	if sum.MeanMicros < 500 || sum.MeanMicros > 501 {
		t.Fatalf("mean %.2f µs, want 500.5", sum.MeanMicros)
	}
	// Each estimate is within one bucket width (~3.1%) above the exact
	// order statistic.
	checks := []struct {
		got, exact int64
	}{{sum.P50Micros, 500}, {sum.P90Micros, 900}, {sum.P99Micros, 990}, {sum.P999Micros, 999}}
	for _, c := range checks {
		if c.got < c.exact || float64(c.got) > float64(c.exact)*1.04+1 {
			t.Errorf("quantile estimate %d µs for exact %d µs outside one bucket width", c.got, c.exact)
		}
	}
}

// TestReadProcStats smoke-checks the process sampler: heap figures are
// always live; the RSS figures are present on Linux.
func TestReadProcStats(t *testing.T) {
	ps := ReadProcStats()
	if ps.HeapSysBytes == 0 || ps.HeapAllocBytes == 0 {
		t.Fatalf("heap stats empty: %+v", ps)
	}
	if ps.RSSBytes > 0 && ps.PeakRSSBytes < ps.RSSBytes {
		t.Errorf("peak RSS %d below current RSS %d", ps.PeakRSSBytes, ps.RSSBytes)
	}
}
