package metrics

import (
	"os"
	"runtime"
	"strconv"
	"strings"
)

// ProcStats is the process memory block of the observability surface:
// resident-set figures from the OS (zero where /proc is unavailable) next
// to the Go heap view, so an RSS-growth gate can tell mapped-arena
// residency from heap retention.
type ProcStats struct {
	// RSSBytes and PeakRSSBytes are VmRSS and VmHWM from
	// /proc/self/status (0 when unreadable, e.g. off Linux).
	RSSBytes     int64 `json:"rssBytes"`
	PeakRSSBytes int64 `json:"peakRssBytes"`
	// HeapAllocBytes/HeapSysBytes/HeapInuseBytes are runtime.MemStats
	// figures; GCTotal is the completed GC cycle count.
	HeapAllocBytes int64 `json:"heapAllocBytes"`
	HeapSysBytes   int64 `json:"heapSysBytes"`
	HeapInuseBytes int64 `json:"heapInuseBytes"`
	GCTotal        int64 `json:"gcTotal"`
}

// ReadProcStats samples the process memory figures. The OS part degrades
// to zeros on platforms without /proc/self/status; the Go heap part is
// always present. Calling it stops the world briefly (ReadMemStats), so
// scrape it, don't put it on a request path.
func ReadProcStats() ProcStats {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	ps := ProcStats{
		HeapAllocBytes: int64(ms.HeapAlloc),
		HeapSysBytes:   int64(ms.HeapSys),
		HeapInuseBytes: int64(ms.HeapInuse),
		GCTotal:        int64(ms.NumGC),
	}
	ps.RSSBytes, ps.PeakRSSBytes = readRSS()
	return ps
}

// readRSS parses VmRSS and VmHWM (KiB lines) from /proc/self/status.
func readRSS() (rss, peak int64) {
	data, err := os.ReadFile("/proc/self/status")
	if err != nil {
		return 0, 0
	}
	for _, line := range strings.Split(string(data), "\n") {
		if rest, ok := strings.CutPrefix(line, "VmRSS:"); ok {
			rss = parseKB(rest)
		} else if rest, ok := strings.CutPrefix(line, "VmHWM:"); ok {
			peak = parseKB(rest)
		}
	}
	return rss, peak
}

func parseKB(s string) int64 {
	n, err := strconv.ParseInt(strings.TrimSpace(strings.TrimSuffix(strings.TrimSpace(s), "kB")), 10, 64)
	if err != nil {
		return 0
	}
	return n * 1024
}
