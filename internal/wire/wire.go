package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// ErrShort reports a truncated or overlong input.
var ErrShort = errors.New("wire: short or trailing input")

// AppendU8 appends one byte.
func AppendU8(b []byte, v uint8) []byte { return append(b, v) }

// AppendU16 appends a big-endian uint16.
func AppendU16(b []byte, v uint16) []byte { return binary.BigEndian.AppendUint16(b, v) }

// AppendU32 appends a big-endian uint32.
func AppendU32(b []byte, v uint32) []byte { return binary.BigEndian.AppendUint32(b, v) }

// AppendU64 appends a big-endian uint64.
func AppendU64(b []byte, v uint64) []byte { return binary.BigEndian.AppendUint64(b, v) }

// AppendBytes appends a u32 length prefix followed by the bytes.
func AppendBytes(b, v []byte) []byte {
	b = AppendU32(b, uint32(len(v)))
	return append(b, v...)
}

// Reader consumes values appended by the Append functions.
type Reader struct {
	buf []byte
	err error
}

// NewReader wraps buf.
func NewReader(buf []byte) *Reader { return &Reader{buf: buf} }

// Err returns the first decoding error, or nil.
func (r *Reader) Err() error { return r.err }

// Close returns the latched error, or ErrShort if input remains.
func (r *Reader) Close() error {
	if r.err != nil {
		return r.err
	}
	if len(r.buf) != 0 {
		return fmt.Errorf("%w: %d trailing bytes", ErrShort, len(r.buf))
	}
	return nil
}

func (r *Reader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if len(r.buf) < n {
		r.err = fmt.Errorf("%w: need %d bytes, have %d", ErrShort, n, len(r.buf))
		return nil
	}
	out := r.buf[:n]
	r.buf = r.buf[n:]
	return out
}

// U8 consumes one byte.
func (r *Reader) U8() uint8 {
	b := r.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

// U16 consumes a big-endian uint16.
func (r *Reader) U16() uint16 {
	b := r.take(2)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint16(b)
}

// U32 consumes a big-endian uint32.
func (r *Reader) U32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint32(b)
}

// U64 consumes a big-endian uint64.
func (r *Reader) U64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint64(b)
}

// Bytes consumes a u32 length prefix and that many bytes. The returned
// slice aliases the reader's buffer.
func (r *Reader) Bytes() []byte {
	n := int(r.U32())
	if r.err != nil {
		return nil
	}
	return r.take(n)
}

// Len consumes a u32 element count whose elements occupy at least
// elemSize bytes each and validates it against the bytes remaining in the
// buffer, so a corrupt count fails immediately instead of provoking a
// huge allocation before the first element read runs out of input.
func (r *Reader) Len(elemSize int) int {
	n := int(r.U32())
	if r.err == nil && int64(n)*int64(elemSize) > int64(len(r.buf)) {
		r.err = fmt.Errorf("%w: count %d of >=%d-byte elements exceeds %d remaining bytes",
			ErrShort, n, elemSize, len(r.buf))
	}
	if r.err != nil {
		return 0
	}
	return n
}
