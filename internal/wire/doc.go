// Package wire provides the tiny append/consume binary codec shared by the
// snapshot format and the storage-model metadata serializers. Everything is
// big-endian, matching the page encodings used throughout the engine.
//
// The Reader deliberately latches the first error instead of returning one
// per call: metadata decoding is a long linear sequence of reads, and the
// latched error keeps the restore code shaped like the save code.
package wire
