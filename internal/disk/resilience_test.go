// Resilience tests live in an external test package: they drive the
// device through the fault-injecting wrapper, and faultdisk itself
// imports disk.

package disk_test

import (
	"bytes"
	"errors"
	"testing"

	"complexobj/internal/buffer"
	"complexobj/internal/disk"
	"complexobj/internal/faultdisk"
)

const pageSize = 128

// openBackend builds one backend of each CLI-selectable flavor; file
// arenas land in a test temp dir so they never outlive the test.
func openBackend(t *testing.T, kind string) disk.Backend {
	t.Helper()
	spec, err := disk.ParseBackendSpec(kind)
	if err != nil {
		t.Fatal(err)
	}
	if spec.Kind == disk.FileArena {
		spec.Dir = t.TempDir()
	}
	b, err := spec.Open(pageSize)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// faultedDisk is a device over a wrapped backend of the given flavor with
// the given schedule, with four pages allocated and written fault-free
// (the injector is armed only afterwards via the returned arm function —
// tests that want faults during setup wrap themselves).
func faultedDisk(t *testing.T, kind string, spec faultdisk.Spec) (*disk.Disk, *faultdisk.Injector) {
	t.Helper()
	in := faultdisk.New(spec)
	d := disk.NewWithBackend(pageSize, in.Wrap(openBackend(t, kind), pageSize))
	t.Cleanup(func() { d.Close() })
	return d, in
}

func backendKinds() []string { return []string{"mem", "file", "cow"} }

// TestFaultsReturnErrorsNotPanics is the propagation table: for every
// backend flavor and every failing operation class, the device (and the
// buffer pool above it) must report an error, never panic, and must not
// count the failed transfer.
func TestFaultsReturnErrorsNotPanics(t *testing.T) {
	for _, kind := range backendKinds() {
		t.Run(kind, func(t *testing.T) {
			t.Run("grow", func(t *testing.T) {
				d, in := faultedDisk(t, kind, faultdisk.Spec{Grow: 1})
				if _, err := d.Allocate(2); err == nil {
					t.Fatal("Allocate over grow=1 succeeded")
				} else if !disk.IsTransient(err) {
					t.Errorf("grow fault not transient: %v", err)
				}
				if d.NumPages() != 0 {
					t.Errorf("failed Allocate left %d pages", d.NumPages())
				}
				if c := in.Counters(); c.GrowFaults == 0 {
					t.Error("no grow fault counted")
				}
			})
			t.Run("read", func(t *testing.T) {
				// perm=1 defeats the retry, so the error must surface.
				d, _ := faultedDisk(t, kind, faultdisk.Spec{})
				if _, err := d.Allocate(2); err != nil {
					t.Fatal(err)
				}
				d2, _ := faultedDisk(t, kind, faultdisk.Spec{Perm: 1})
				if _, err := d2.Allocate(2); err != nil {
					t.Fatal(err)
				}
				if _, err := d2.ReadCopy(0, 1); err == nil {
					t.Fatal("read over perm=1 succeeded")
				}
				if s := d2.Stats(); s.PagesRead != 0 || s.ReadCalls != 0 {
					t.Errorf("failed read counted: %+v", s)
				}
			})
			t.Run("write", func(t *testing.T) {
				d, _ := faultedDisk(t, kind, faultdisk.Spec{Write: 1})
				if _, err := d.Allocate(1); err != nil {
					t.Fatal(err)
				}
				if err := d.WriteRun(0, [][]byte{make([]byte, pageSize)}); err == nil {
					t.Fatal("write over write=1 succeeded")
				} else if !disk.IsTransient(err) {
					t.Errorf("write fault not transient: %v", err)
				}
				if s := d.Stats(); s.PagesWritten != 0 || s.WriteCalls != 0 {
					t.Errorf("failed write counted: %+v", s)
				}
			})
			t.Run("pool", func(t *testing.T) {
				d, _ := faultedDisk(t, kind, faultdisk.Spec{Perm: 1})
				if _, err := d.Allocate(2); err != nil {
					t.Fatal(err)
				}
				p := buffer.New(d, 2, buffer.LRU)
				if _, err := p.Fix(0); err == nil {
					t.Fatal("Fix over a poisoned page succeeded")
				}
				if _, err := p.FixRun([]disk.PageID{0, 1}); err == nil {
					t.Fatal("FixRun over poisoned pages succeeded")
				}
			})
			t.Run("pool-writeback", func(t *testing.T) {
				d, _ := faultedDisk(t, kind, faultdisk.Spec{Write: 1})
				if _, err := d.Allocate(1); err != nil {
					t.Fatal(err)
				}
				p := buffer.New(d, 1, buffer.LRU)
				if _, err := p.Fix(0); err != nil {
					t.Fatal(err)
				}
				if err := p.Unfix(0, true); err != nil {
					t.Fatal(err)
				}
				if err := p.FlushAll(); err == nil {
					t.Fatal("FlushAll over write=1 succeeded")
				} else if !disk.IsTransient(err) {
					t.Errorf("writeback fault not transient: %v", err)
				}
			})
		})
	}
}

// TestReadRetryRidesOutTransients pins the retry loop: under a schedule
// of independent transient read faults, reads that would fail on the
// first attempt succeed after bounded retries, the retried reads return
// the right bytes, and the retries never show up in the paper counters.
func TestReadRetryRidesOutTransients(t *testing.T) {
	for _, kind := range backendKinds() {
		t.Run(kind, func(t *testing.T) {
			d, in := faultedDisk(t, kind, faultdisk.Spec{Seed: 7, Read: 0.3})
			if _, err := d.Allocate(4); err != nil {
				t.Fatal(err)
			}
			want := make([][]byte, 4)
			for i := range want {
				want[i] = bytes.Repeat([]byte{byte(i + 1)}, pageSize)
			}
			if err := d.WriteRun(0, want); err != nil {
				t.Fatal(err)
			}
			succeeded := 0
			for i := 0; i < 50; i++ {
				pages, err := d.ReadCopy(disk.PageID(i%4), 1)
				if err != nil {
					// All attempts drew a fault — rare but legitimate;
					// it must still be a structured transient error.
					if !disk.IsTransient(err) {
						t.Fatalf("read %d: non-transient %v", i, err)
					}
					continue
				}
				succeeded++
				if !bytes.Equal(pages[0], want[i%4]) {
					t.Fatalf("read %d returned wrong bytes", i)
				}
			}
			if succeeded == 0 {
				t.Fatal("no read survived a 30% transient schedule")
			}
			if d.Retries() == 0 {
				t.Error("no retries recorded under read=0.3 (schedule never fired?)")
			}
			if in.Counters().ReadFaults == 0 {
				t.Error("no read faults injected")
			}
			if s := d.Stats(); s.PagesRead != int64(succeeded) || s.ReadCalls != int64(succeeded) {
				t.Errorf("stats %+v, want %d reads (retries must stay invisible)", s, succeeded)
			}
		})
	}
}

// TestPermanentFaultNotRetried: retrying a poisoned page is pointless and
// the policy must not try.
func TestPermanentFaultNotRetried(t *testing.T) {
	d, _ := faultedDisk(t, "mem", faultdisk.Spec{Perm: 1})
	if _, err := d.Allocate(1); err != nil {
		t.Fatal(err)
	}
	if _, err := d.ReadCopy(0, 1); err == nil {
		t.Fatal("poisoned read succeeded")
	}
	if n := d.Retries(); n != 0 {
		t.Errorf("%d retries on a permanent fault", n)
	}
}

// TestTornWriteLeavesBaseIntact drives a torn write through the wrapper
// into a COW backend: the materialized overlay page ends half new, half
// base, the error surfaces, and the shared base bytes stay immutable.
func TestTornWriteLeavesBaseIntact(t *testing.T) {
	baseBytes := bytes.Repeat([]byte{0xAB}, 2*pageSize)
	arena := disk.NewBaseArena(append([]byte(nil), baseBytes...))
	defer arena.Release()
	cow := disk.NewCOWBackend(arena, pageSize)
	in := faultdisk.New(faultdisk.Spec{Torn: 1})
	b := in.Wrap(cow, pageSize)
	defer b.Close()

	newPage := bytes.Repeat([]byte{0x11}, pageSize)
	err := b.WriteAt(newPage, 0)
	if err == nil {
		t.Fatal("torn=1 write succeeded")
	}
	var f *faultdisk.Fault
	if !errors.As(err, &f) || f.Kind != faultdisk.TornWrite {
		t.Fatalf("fault = %v", err)
	}
	// The overlay materialized a half-new page...
	got := make([]byte, pageSize)
	if err := cow.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got[:pageSize/2], newPage[:pageSize/2]) {
		t.Error("torn prefix not stored in the overlay")
	}
	if !bytes.Equal(got[pageSize/2:], baseBytes[pageSize/2:pageSize]) {
		t.Error("torn write clobbered the untouched half")
	}
	// ...and the shared base never moved.
	if !bytes.Equal(arena.Bytes(), baseBytes) {
		t.Error("torn write mutated the immutable base arena")
	}
}

// TestResetViewSeesThroughWrapper: COW view recycling (and COW stats)
// must find the cow backend under the fault wrapper, or pooled views
// silently stop recycling as soon as faults are armed.
func TestResetViewSeesThroughWrapper(t *testing.T) {
	arena := disk.NewBaseArena(make([]byte, 2*pageSize))
	defer arena.Release()
	in := faultdisk.New(faultdisk.Spec{Seed: 1}) // armed but inert
	d, err := disk.Open(pageSize, in.Wrap(disk.NewCOWBackend(arena, pageSize), pageSize))
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if d.NumPages() != 2 {
		t.Fatalf("NumPages = %d, want 2 (adopted base)", d.NumPages())
	}
	if _, err := d.Allocate(3); err != nil {
		t.Fatal(err)
	}
	if err := d.WriteRun(2, [][]byte{bytes.Repeat([]byte{1}, pageSize)}); err != nil {
		t.Fatal(err)
	}
	if cs, ok := disk.COWStatsOf(d.Backend()); !ok || cs.OverlayPages == 0 {
		t.Errorf("COWStatsOf through wrapper = %+v, %v", cs, ok)
	}
	if !d.ResetView() {
		t.Fatal("ResetView did not find the COW backend under the wrapper")
	}
	if d.NumPages() != 2 {
		t.Errorf("NumPages after reset = %d, want 2", d.NumPages())
	}
}
