//go:build !linux

package disk

import (
	"fmt"
	"io"
	"os"
)

// CanMapBase reports whether this platform supports mmap-backed base
// arenas. Where it is false, NewMappedBaseArena falls back to a heap copy.
const CanMapBase = false

// NewMappedBaseArena reads n bytes at offset off of the file at path into
// a heap-backed base arena: the portable fallback with identical
// semantics to the Linux mmap variant, minus the lazy paging (Mapped
// reports false). The lifecycle contract is unchanged — the arena is
// released when the last reference goes.
func NewMappedBaseArena(path string, off int64, n int) (*BaseArena, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("disk: map base: %w", err)
	}
	defer f.Close()
	return MapBaseArena(f, off, n)
}

// MapBaseArena is NewMappedBaseArena over an already-open file: callers
// that parsed offsets out of f must read through the same descriptor, so
// that a concurrent atomic replacement of the path cannot pair one
// file's offsets with another file's bytes.
func MapBaseArena(f *os.File, off int64, n int) (*BaseArena, error) {
	if off < 0 || n < 0 {
		return nil, fmt.Errorf("disk: map base [%d,%d+%d): negative range", off, off, n)
	}
	if n == 0 {
		return NewBaseArena(nil), nil
	}
	data := make([]byte, n)
	if _, err := f.ReadAt(data, off); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return nil, fmt.Errorf("disk: map base [%d,%d) past end of file", off, off+int64(n))
		}
		return nil, fmt.Errorf("disk: map base: %w", err)
	}
	return NewBaseArena(data), nil
}
