package disk

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"complexobj/internal/iostat"
)

// backends lists the built-in backends for table-driven device tests.
// "cow" runs with a nil base (fully private overlay), the drop-in mode of
// the CLI spec syntax; shared-base behaviour is pinned in cow_test.go.
func backends(t *testing.T) map[string]func() Backend {
	t.Helper()
	dir := t.TempDir()
	n := 0
	return map[string]func() Backend{
		"mem": func() Backend { return NewMemBackend() },
		"file": func() Backend {
			n++
			b, err := OpenFileBackend(filepath.Join(dir, "arena"+string(rune('0'+n))), FileBackendOptions{})
			if err != nil {
				t.Fatal(err)
			}
			return b
		},
		"cow": func() Backend { return NewCOWBackend(nil, DefaultPageSize) },
	}
}

// TestBackendGrowZeroes asserts fresh arena bytes read as zero on every
// backend, the invariant Allocate's "fresh zeroed pages" contract rests on.
func TestBackendGrowZeroes(t *testing.T) {
	for name, open := range backends(t) {
		t.Run(name, func(t *testing.T) {
			b := open()
			defer b.Close()
			if err := b.Grow(4096); err != nil {
				t.Fatal(err)
			}
			if b.Len() != 4096 {
				t.Fatalf("Grow(4096) left Len %d", b.Len())
			}
			arena := bytes.Repeat([]byte{0xAA}, 4096) // dirty buffer: ReadAt must overwrite it
			if err := b.ReadAt(arena, 0); err != nil {
				t.Fatal(err)
			}
			for i, v := range arena {
				if v != 0 {
					t.Fatalf("fresh byte %d is %d, want 0", i, v)
				}
			}
			if err := b.WriteAt([]byte("mark"), 0); err != nil {
				t.Fatal(err)
			}
			if err := b.Grow(3 * DefaultExtentBytes / 2); err != nil { // force a remap past one extent
				t.Fatal(err)
			}
			head := make([]byte, 4)
			if err := b.ReadAt(head, 0); err != nil {
				t.Fatal(err)
			}
			if string(head) != "mark" {
				t.Fatalf("contents lost across grow: %q", head)
			}
			tail := bytes.Repeat([]byte{0xAA}, 4096)
			if err := b.ReadAt(tail, b.Len()-4096); err != nil {
				t.Fatal(err)
			}
			for i, v := range tail {
				if v != 0 {
					t.Fatalf("grown byte %d is %d, want 0", i, v)
				}
			}
		})
	}
}

// TestBackendRangeChecks asserts out-of-arena accesses fail on every
// backend instead of silently clipping.
func TestBackendRangeChecks(t *testing.T) {
	for name, open := range backends(t) {
		t.Run(name, func(t *testing.T) {
			b := open()
			defer b.Close()
			if err := b.Grow(1024); err != nil {
				t.Fatal(err)
			}
			buf := make([]byte, 256)
			if err := b.ReadAt(buf, 1000); err == nil {
				t.Error("ReadAt past the arena succeeded")
			}
			if err := b.WriteAt(buf, 1000); err == nil {
				t.Error("WriteAt past the arena succeeded")
			}
			if err := b.ReadAt(buf, -1); err == nil {
				t.Error("ReadAt at negative offset succeeded")
			}
		})
	}
}

// TestFileBackendPersistsAcrossReopen pins the tentpole property of PR 2: a
// device over a file backend survives Close and reopens with identical
// pages and identical page count.
func TestFileBackendPersistsAcrossReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "arena.pages")
	b, err := OpenFileBackend(path, FileBackendOptions{})
	if err != nil {
		t.Fatal(err)
	}
	d := NewWithBackend(DefaultPageSize, b)
	if _, err := d.Allocate(7); err != nil {
		t.Fatal(err)
	}
	img := make([]byte, DefaultPageSize)
	for i := range img {
		img[i] = byte(i % 251)
	}
	if err := d.WriteRun(3, [][]byte{img}); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := st.Size(), int64(7*DefaultPageSize); got != want {
		t.Fatalf("closed arena file is %d bytes, want %d (truncated to allocated pages)", got, want)
	}

	b2, err := OpenFileBackend(path, FileBackendOptions{})
	if err != nil {
		t.Fatal(err)
	}
	d2, err := Open(DefaultPageSize, b2)
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	if got := d2.NumPages(); got != 7 {
		t.Fatalf("reopened device has %d pages, want 7", got)
	}
	back, err := d2.ReadCopy(3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(back[0], img) {
		t.Fatal("page image changed across close/reopen")
	}
	// Reopened devices keep allocating after the existing pages.
	id, err := d2.Allocate(1)
	if err != nil {
		t.Fatal(err)
	}
	if id != 7 {
		t.Fatalf("post-reopen allocation starts at page %d, want 7", id)
	}
}

// TestFileBackendRemoveOnClose asserts anonymous arenas clean up.
func TestFileBackendRemoveOnClose(t *testing.T) {
	spec := BackendSpec{Kind: FileArena, Dir: t.TempDir()}
	b, err := spec.Open(DefaultPageSize)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Grow(DefaultPageSize); err != nil {
		t.Fatal(err)
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	left, err := os.ReadDir(spec.Dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(left) != 0 {
		t.Fatalf("anonymous arena left %d files behind", len(left))
	}
}

// TestParseBackendSpec pins the CLI syntax.
func TestParseBackendSpec(t *testing.T) {
	cases := []struct {
		in   string
		want BackendSpec
		err  bool
	}{
		{in: "", want: BackendSpec{Kind: MemArena}},
		{in: "mem", want: BackendSpec{Kind: MemArena}},
		{in: "file", want: BackendSpec{Kind: FileArena}},
		{in: "file:/tmp/x", want: BackendSpec{Kind: FileArena, Dir: "/tmp/x"}},
		{in: "cow", want: BackendSpec{Kind: COWArena}},
		{in: "mmap", err: true},
	}
	for _, c := range cases {
		got, err := ParseBackendSpec(c.in)
		if c.err {
			if err == nil {
				t.Errorf("ParseBackendSpec(%q): want error", c.in)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseBackendSpec(%q): %v", c.in, err)
			continue
		}
		if got != c.want {
			t.Errorf("ParseBackendSpec(%q) = %+v, want %+v", c.in, got, c.want)
		}
		if got.String() != c.in && c.in != "" {
			t.Errorf("BackendSpec(%q).String() = %q", c.in, got.String())
		}
	}
}

// TestDiskRestoreDump round-trips a device through DumpTo/Restore across
// backend kinds and checks counters are untouched by both.
func TestDiskRestoreDump(t *testing.T) {
	src := New(512)
	if _, err := src.Allocate(5); err != nil {
		t.Fatal(err)
	}
	img := make([]byte, 512)
	copy(img, []byte("snapshot me"))
	if err := src.WriteRun(2, [][]byte{img}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := src.DumpTo(&buf); err != nil {
		t.Fatal(err)
	}

	for name, open := range backends(t) {
		t.Run(name, func(t *testing.T) {
			dst := NewWithBackend(512, open())
			defer dst.Close()
			if err := dst.Restore(bytes.NewReader(buf.Bytes()), 5); err != nil {
				t.Fatal(err)
			}
			if got := dst.Stats(); got != (iostat.Stats{}) {
				t.Fatalf("restore touched counters: %+v", got)
			}
			if dst.NumPages() != 5 {
				t.Fatalf("restored %d pages, want 5", dst.NumPages())
			}
			back, err := dst.ReadCopy(2, 1)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(back[0], img) {
				t.Fatal("restored page differs")
			}
			var dump bytes.Buffer
			if err := dst.DumpTo(&dump); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(dump.Bytes(), buf.Bytes()) {
				t.Fatal("dump of restored device differs from original dump")
			}
		})
	}
}
