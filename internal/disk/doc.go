// Package disk simulates the page-addressed secondary storage device of the
// paper's DASDBS installation. The paper's evaluation metric is the number
// of physical page I/Os and the number of I/O calls needed to transfer them
// (Equation 1: C = d1*X_calls + d2*X_pages); this device counts exactly
// those two quantities while holding page images in memory.
//
// One I/O call transfers a contiguous run of pages, mirroring the DASDBS
// behaviour described in §5.2 of the paper: the root/header page of a large
// object, its additional header pages, and its data pages are each fetched
// with separate calls, while a flush writes contiguous dirty pages together.
//
// Page images live in a single logical arena rather than one heap object
// per page, so a run transfer is a pair of memmoves over adjacent memory.
// ReadRun transfers into caller-provided buffers (the buffer pool passes
// recycled frame memory), so the steady-state read path performs no
// allocation at all.
//
// # Backend contract
//
// Where the arena bytes live is a pluggable Backend. A backend implements
// offset-based byte I/O (Len, Grow, ReadAt, WriteAt, Flush, Close) over
// one logical arena; backends whose arena is a single contiguous slice
// additionally expose it, and the device then bypasses the interface with
// direct memmoves. Three implementations exist:
//
//   - mem: the arena on the Go heap (the original in-memory device);
//   - file: the arena mapped onto a real file, grown in extents, so a
//     device survives the process;
//   - cow: a page-granular private overlay over a shared immutable
//     BaseArena (copy-on-write).
//
// The contract every backend must honour: Grow never shrinks and fresh
// bytes read as zero; ReadAt overwrites the whole destination buffer
// (callers pass recycled memory); neither ReadAt nor WriteAt retains the
// caller's slice; Close releases only resources the backend itself owns.
//
// # Copy-on-write semantics
//
// A COW backend layers a private overlay over a shared BaseArena. Reads
// fall through to the base until the first write to a page materializes a
// private copy (a full-page write skips even that copy); growth past the
// base is free until written. The base is immutable by construction —
// no code path writes it after NewBaseArena — so any number of engines
// can read through one base concurrently without synchronization, and
// closing a view releases only its overlay. This is what lets the
// parallel experiment matrix share one loaded extension across workers:
// per-worker memory is proportional to the pages a worker dirties, not to
// the database size, while the counters stay bit-identical to the other
// backends by construction (the device layer above is unchanged).
//
// # Base lifecycle
//
// A BaseArena outlives any single engine, so its storage is reference
// counted rather than tied to an owner: construction (NewBaseArena,
// NewMappedBaseArena) hands the creator one reference, every COW backend
// opened over the base takes another, Close on a view and Release on a
// handle each drop one, and the storage is freed exactly when the count
// reaches zero. The contract callers rely on: a base can never be
// released under a live view (the view's reference pins it, even after
// every other handle is gone), Bytes stays valid while at least one
// reference is held, and releasing an already-dead base is reported as an
// error instead of corrupting a neighbour.
//
// The counting pays off for the two base variants differently. A heap
// base (NewBaseArena) could in principle lean on the garbage collector;
// an mmap-backed base (NewMappedBaseArena, used for .codb snapshots)
// cannot — the file mapping must be unmapped explicitly, and unmapping
// while a view could still read it would be a crash, not a leak. The
// mapped variant is what makes `-db x.codb -backend cow` memory-cheap:
// the snapshot's arena region is mapped PROT_READ/MAP_PRIVATE, resident
// only in the pages views actually touch, immutable by page protection on
// top of immutable by construction.
//
// Backends change only the storage substrate — allocation, run transfers
// and the I/O counters are identical across backends by construction.
//
// # Stable pages (zero-copy reads)
//
// Backends whose page images live at stable addresses additionally
// implement StablePager: StablePage(off, n) returns a read-only slice
// aliasing the backend's own memory for a range inside one page. The
// slice is a live view, not a snapshot — it stays valid (and observes
// later writes through the device) until the backend is reset or closed;
// growth never moves existing pages. The mem and file backends serve
// stable pages from their arenas; the cow backend serves a materialized
// page from its private overlay image and a clean page from the shared
// base arena itself, which is what lets every view of one frozen base
// read the same physical bytes. Fault-injecting wrappers deliberately
// withhold the capability on pages their schedule targets, so faults
// cannot be bypassed through an alias.
//
// Disk.ReadRunShared is the counted entry point: for each page of a run
// it hands out a stable alias where the backend offers one and falls
// back to a caller-provided copy buffer where it does not, while
// incrementing ReadCalls and PagesRead exactly like ReadRun — callers
// above (the buffer pool's borrowed frames) inherit zero-copy reads
// without any change to the paper-visible counters.
//
// Disk.ResetView is the COW-only recycling hook: it drops every overlay
// page and truncates growth past the base, restoring the device to the
// pristine shared state so a request-scoped view can serve its next
// request without being torn down. Dropped overlay page images go to a
// free list inside the backend and are reused by the next writes, so a
// recycled view's overlay materializes without allocating.
package disk
