package disk

// OverlayPages visits every materialized overlay page of a copy-on-write
// backend in ascending page order, seeing through any stack of wrapping
// backends (fault injection). The images passed to fn are the live
// overlay pages — read-only for the caller, and invalid once the view
// resets or closes. Returns false, calling fn never, when b is not
// copy-on-write. This is the commit path's page collector: the overlay
// of a view is exactly its dirty page set relative to the shared base.
func OverlayPages(b Backend, fn func(pg int, img []byte)) bool {
	c, ok := asCOW(b)
	if !ok {
		return false
	}
	for pg, img := range c.over {
		if img != nil {
			fn(pg, img)
		}
	}
	return true
}

// NewPromotedArena folds one committed overlay into a base arena,
// producing the next generation: numPages*pageSize bytes of the old
// arena's content (extended with zeros or truncated to the committed
// device size) with the overlay images applied on top. The result is a
// fresh heap arena holding one reference owned by the caller; old is
// only read, its references untouched. Pages at or past numPages are
// ignored — the committed size is authoritative.
func NewPromotedArena(old *BaseArena, pageSize, numPages int, pages map[int][]byte) *BaseArena {
	data := make([]byte, numPages*pageSize)
	copy(data, old.Bytes())
	for pg, img := range pages {
		if pg < 0 || pg >= numPages {
			continue
		}
		n := pageSize
		if n > len(img) {
			n = len(img)
		}
		copy(data[pg*pageSize:], img[:n])
	}
	return NewBaseArena(data)
}
