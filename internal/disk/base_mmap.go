//go:build linux

package disk

import (
	"fmt"
	"os"
	"syscall"
)

// CanMapBase reports whether this platform supports mmap-backed base
// arenas. Where it is false, NewMappedBaseArena falls back to a heap copy.
const CanMapBase = true

// NewMappedBaseArena maps n bytes at offset off of the file at path into
// an immutable base arena. The mapping is PROT_READ/MAP_PRIVATE: the
// arena physically cannot be written (a stray store faults instead of
// corrupting the snapshot), pages are faulted in from the page cache on
// first access, and clean pages can be evicted again under memory
// pressure — so a view over a paper-scale snapshot starts with near-zero
// resident arena and only ever pays for the pages its queries touch.
//
// The file must not be truncated or rewritten while the base is alive
// (mapped reads would observe the change or fault); the snapshot writer's
// atomic rename keeps replaced snapshots safe, because the mapping pins
// the old inode. The mapping is released when the last reference goes
// (see BaseArena.Release); the file descriptor is closed immediately, the
// mapping keeps the file alive.
func NewMappedBaseArena(path string, off int64, n int) (*BaseArena, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("disk: map base: %w", err)
	}
	defer f.Close()
	return MapBaseArena(f, off, n)
}

// MapBaseArena is NewMappedBaseArena over an already-open file: callers
// that parsed offsets out of f must map through the same descriptor, so
// that a concurrent atomic replacement of the path cannot pair one
// file's offsets with another file's bytes. f may be closed once
// MapBaseArena returns.
func MapBaseArena(f *os.File, off int64, n int) (*BaseArena, error) {
	if off < 0 || n < 0 {
		return nil, fmt.Errorf("disk: map base [%d,%d+%d): negative range", off, off, n)
	}
	if n == 0 {
		return NewBaseArena(nil), nil
	}
	if st, err := f.Stat(); err != nil {
		return nil, fmt.Errorf("disk: map base: %w", err)
	} else if off+int64(n) > st.Size() {
		return nil, fmt.Errorf("disk: map base [%d,%d) past end of %d-byte file", off, off+int64(n), st.Size())
	}
	// mmap offsets must be page-aligned; map from the aligned-down offset
	// and slice the arena out of the mapping.
	pg := int64(os.Getpagesize())
	aligned := off &^ (pg - 1)
	head := int(off - aligned)
	m, err := syscall.Mmap(int(f.Fd()), aligned, head+n, syscall.PROT_READ, syscall.MAP_PRIVATE)
	if err != nil {
		return nil, fmt.Errorf("disk: map base: %w", err)
	}
	a := &BaseArena{data: m[head : head+n : head+n], mapped: true}
	a.unmap = func() error {
		if err := syscall.Munmap(m); err != nil {
			return fmt.Errorf("disk: unmap base: %w", err)
		}
		return nil
	}
	a.refs.Store(1)
	return a, nil
}
