//go:build linux

package disk

import (
	"fmt"
	"os"
	"syscall"
	"unsafe"
)

// fileBackend maps the page arena onto a real file with mmap. The file is
// grown in extents (ftruncate + remap), so the Disk's contiguous-arena
// invariant — page p at arena[p*pageSize:(p+1)*pageSize] — holds on real
// storage, and a run transfer is still a pair of memmoves. The mapping is
// MAP_SHARED: stores land in the page cache immediately and Flush/Close
// force them to the device with msync.
type fileBackend struct {
	f       *os.File
	path    string
	opts    FileBackendOptions
	mapped  []byte   // the whole mapped extent capacity
	size    int      // logical arena length (<= len(mapped))
	retired [][]byte // superseded mappings kept alive for stable slices
}

// OpenFileBackend opens (creating if absent) a file-backed arena. An
// existing file's contents are adopted: its size becomes the initial arena
// length, which is how a persistent device is reopened across runs.
func OpenFileBackend(path string, opts FileBackendOptions) (Backend, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("disk: open arena file: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("disk: stat arena file: %w", err)
	}
	b := &fileBackend{f: f, path: path, opts: opts, size: int(st.Size())}
	if b.size > 0 {
		if err := b.remap(roundUp(b.size, opts.extent())); err != nil {
			f.Close()
			return nil, err
		}
	}
	return b, nil
}

// remap grows the file to cap bytes and maps it, replacing any previous
// mapping. ftruncate zero-fills the extension, so fresh pages read as
// zeroes just like heap allocation.
//
// The superseded mapping is retired, not unmapped: stable slices handed
// out through StablePage may still point into it, and munmap would turn
// them into SIGSEGVs. Retired mappings are MAP_SHARED views of the same
// file, so they keep observing every write through the live mapping (the
// kernel backs all of them with the same page-cache pages); they cost
// address space, not memory, and are released on Close. Grow doubles the
// capacity, so the retained address space is bounded by the final arena
// size.
func (b *fileBackend) remap(capBytes int) error {
	if b.mapped != nil {
		b.retired = append(b.retired, b.mapped)
		b.mapped = nil
	}
	if err := b.f.Truncate(int64(capBytes)); err != nil {
		return fmt.Errorf("disk: grow arena file: %w", err)
	}
	m, err := syscall.Mmap(int(b.f.Fd()), 0, capBytes,
		syscall.PROT_READ|syscall.PROT_WRITE, syscall.MAP_SHARED)
	if err != nil {
		return fmt.Errorf("disk: mmap arena: %w", err)
	}
	b.mapped = m
	return nil
}

func (b *fileBackend) Bytes() []byte { return b.mapped[:b.size:b.size] }
func (b *fileBackend) Len() int      { return b.size }

func (b *fileBackend) Grow(n int) error {
	if n > len(b.mapped) {
		// Double the capacity (still extent-aligned) so the number of
		// retired mappings stays O(log n) and their summed address space
		// stays under the final capacity.
		capBytes := roundUp(n, b.opts.extent())
		if min := 2 * len(b.mapped); capBytes < min {
			capBytes = roundUp(min, b.opts.extent())
		}
		if err := b.remap(capBytes); err != nil {
			return err
		}
	}
	if n > b.size {
		b.size = n
	}
	return nil
}

func (b *fileBackend) ReadAt(p []byte, off int) error {
	if err := checkRange(off, len(p), b.size); err != nil {
		return err
	}
	copy(p, b.mapped[off:])
	return nil
}

func (b *fileBackend) WriteAt(p []byte, off int) error {
	if err := checkRange(off, len(p), b.size); err != nil {
		return err
	}
	copy(b.mapped[off:], p)
	return nil
}

// StablePage implements StablePager over the live mapping. Slices stay
// valid across Grow because superseded mappings are retired (see remap),
// and — being MAP_SHARED views of the same file — keep reflecting writes
// made through the current mapping.
func (b *fileBackend) StablePage(off, n int) ([]byte, bool) {
	if off < 0 || n <= 0 || off+n > b.size {
		return nil, false
	}
	return b.mapped[off : off+n : off+n], true
}

func (b *fileBackend) Flush() error {
	if len(b.mapped) == 0 {
		return nil
	}
	// The stdlib syscall package does not export Msync; issue it raw.
	_, _, errno := syscall.Syscall(syscall.SYS_MSYNC,
		uintptr(unsafe.Pointer(&b.mapped[0])), uintptr(len(b.mapped)), uintptr(syscall.MS_SYNC))
	if errno != 0 {
		return fmt.Errorf("disk: msync arena: %w", errno)
	}
	return nil
}

// Close syncs the mapping, unmaps, and truncates the file back to the
// logical arena length so that a later OpenFileBackend sees exactly the
// allocated pages (not the zero tail of the last extent). An anonymous
// arena about to be deleted skips the sync — writeback for a file that
// is unlinked two lines later is pure wasted blocking I/O.
func (b *fileBackend) Close() error {
	var firstErr error
	keep := func(err error) {
		if firstErr == nil && err != nil {
			firstErr = err
		}
	}
	if b.mapped != nil {
		if !b.opts.RemoveOnClose {
			keep(b.Flush())
		}
		keep(syscall.Munmap(b.mapped))
		b.mapped = nil
	}
	for _, m := range b.retired {
		keep(syscall.Munmap(m))
	}
	b.retired = nil
	keep(b.f.Truncate(int64(b.size)))
	keep(b.f.Close())
	keep(removeIfRequested(b.path, b.opts))
	return firstErr
}
