package disk

import (
	"bytes"
	"os"
	"testing"
)

// testBase builds a BaseArena of n pages with a recognizable per-byte
// pattern, plus a pristine copy for immutability checks.
func testBase(pageSize, n int) (*BaseArena, []byte) {
	data := make([]byte, pageSize*n)
	for i := range data {
		data[i] = byte((i*7 + i/pageSize) % 251)
	}
	pristine := append([]byte(nil), data...)
	return NewBaseArena(data), pristine
}

// TestCOWOverlayNeverMutatesBase is the central safety regression of the
// shared-arena design: writes through one COW view must never reach the
// base or any sibling view, no matter whether they are full-page,
// partial-range, or beyond-the-base writes.
func TestCOWOverlayNeverMutatesBase(t *testing.T) {
	const ps = 256
	base, pristine := testBase(ps, 8)

	a, err := Open(ps, NewCOWBackend(base, ps))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Open(ps, NewCOWBackend(base, ps))
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if a.NumPages() != 8 || b.NumPages() != 8 {
		t.Fatalf("views adopted %d/%d pages, want 8", a.NumPages(), b.NumPages())
	}

	// Full-page write through view a.
	img := bytes.Repeat([]byte{0xEE}, ps)
	if err := a.WriteRun(3, [][]byte{img}); err != nil {
		t.Fatal(err)
	}
	// Partial write through the backend (sub-page granularity).
	if err := a.Backend().WriteAt([]byte("partial"), 5*ps+100); err != nil {
		t.Fatal(err)
	}
	// Growth past the base plus a write into the new tail.
	if _, err := a.Allocate(2); err != nil {
		t.Fatal(err)
	}
	if err := a.WriteRun(9, [][]byte{img}); err != nil {
		t.Fatal(err)
	}

	if !bytes.Equal(base.Bytes(), pristine) {
		t.Fatal("writes through a COW view reached the shared base")
	}
	for pg := 0; pg < 8; pg++ {
		got, err := b.ReadCopy(PageID(pg), 1)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got[0], pristine[pg*ps:(pg+1)*ps]) {
			t.Fatalf("sibling view observes overlay write on page %d", pg)
		}
	}

	// The writing view observes its own overlay, base for the rest.
	got, err := a.ReadCopy(3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got[0], img) {
		t.Fatal("view does not observe its own full-page write")
	}
	got, err = a.ReadCopy(5, 1)
	if err != nil {
		t.Fatal(err)
	}
	want := append([]byte(nil), pristine[5*ps:6*ps]...)
	copy(want[100:], "partial")
	if !bytes.Equal(got[0], want) {
		t.Fatal("partial write did not preserve the rest of the base page")
	}
	got, err = a.ReadCopy(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got[0], pristine[2*ps:3*ps]) {
		t.Fatal("untouched page does not read through to the base")
	}

	// Close releases only the overlay; the base (and sibling) live on.
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(base.Bytes(), pristine) {
		t.Fatal("Close damaged the shared base")
	}
	if got, err := b.ReadCopy(3, 1); err != nil || !bytes.Equal(got[0], pristine[3*ps:4*ps]) {
		t.Fatalf("sibling view broken after Close: %v", err)
	}
}

// TestCOWGrownPagesReadZero asserts pages allocated past the base read as
// zero before their first write — including into dirty recycled buffers.
func TestCOWGrownPagesReadZero(t *testing.T) {
	const ps = 128
	base, _ := testBase(ps, 2)
	d, err := Open(ps, NewCOWBackend(base, ps))
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if _, err := d.Allocate(3); err != nil {
		t.Fatal(err)
	}
	dirty := bytes.Repeat([]byte{0xFF}, ps)
	if err := d.ReadRun(4, [][]byte{dirty}); err != nil {
		t.Fatal(err)
	}
	for i, v := range dirty {
		if v != 0 {
			t.Fatalf("grown page byte %d = %d, want 0", i, v)
		}
	}
}

// TestCOWStats pins the memory-accounting hook the matrix memory checks
// rely on: overlay usage counts materialized pages only.
func TestCOWStats(t *testing.T) {
	const ps = 256
	base, _ := testBase(ps, 10)
	b := NewCOWBackend(base, ps)
	d, err := Open(ps, b)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	st, ok := COWStatsOf(b)
	if !ok {
		t.Fatal("COWStatsOf rejected a COW backend")
	}
	if st.BaseBytes != 10*ps || st.OverlayPages != 0 || st.OverlayBytes != 0 {
		t.Fatalf("fresh view stats: %+v", st)
	}

	// Reads never materialize overlay pages.
	if _, err := d.ReadCopy(0, 10); err != nil {
		t.Fatal(err)
	}
	if st, _ = COWStatsOf(b); st.OverlayPages != 0 {
		t.Fatalf("reads materialized %d overlay pages", st.OverlayPages)
	}

	img := make([]byte, ps)
	if err := d.WriteRun(7, [][]byte{img, img}); err != nil {
		t.Fatal(err)
	}
	if st, _ = COWStatsOf(b); st.OverlayPages != 2 || st.OverlayBytes != 2*ps {
		t.Fatalf("after 2 page writes: %+v", st)
	}
	// Rewriting the same page does not grow the overlay.
	if err := d.WriteRun(7, [][]byte{img}); err != nil {
		t.Fatal(err)
	}
	if st, _ = COWStatsOf(b); st.OverlayPages != 2 {
		t.Fatalf("rewrite grew overlay: %+v", st)
	}

	if _, ok := COWStatsOf(NewMemBackend()); ok {
		t.Error("COWStatsOf accepted a mem backend")
	}
}

// TestBaseArenaRefcount pins the base lifecycle contract: every COW view
// holds one reference, the creator holds one, and the backing storage is
// released exactly when the last of them goes — never under a live view,
// even if the owner released its handle first.
func TestBaseArenaRefcount(t *testing.T) {
	const ps = 256
	base, pristine := testBase(ps, 4)
	if base.Refs() != 1 {
		t.Fatalf("fresh base refs = %d, want 1 (creator)", base.Refs())
	}
	v1 := NewCOWBackend(base, ps)
	v2 := NewCOWBackend(base, ps)
	if base.Refs() != 3 {
		t.Fatalf("refs with 2 views = %d, want 3", base.Refs())
	}
	if err := v1.Close(); err != nil {
		t.Fatal(err)
	}
	// Owner drops its handle while a view is still open: the base must
	// stay readable through the remaining view.
	if err := base.Release(); err != nil {
		t.Fatal(err)
	}
	if base.Refs() != 1 {
		t.Fatalf("refs after close+release = %d, want 1", base.Refs())
	}
	got := make([]byte, ps)
	if err := v2.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, pristine[:ps]) {
		t.Fatal("surviving view cannot read the base")
	}
	if err := v2.Close(); err != nil {
		t.Fatal(err)
	}
	if base.Refs() != 0 || base.Bytes() != nil {
		t.Fatalf("base not released after last view: refs=%d bytes=%v", base.Refs(), base.Bytes() != nil)
	}
	// Over-release is a bug and must be reported, not ignored.
	if err := base.Release(); err == nil {
		t.Error("over-release not reported")
	}
	// Double Close of a view must not double-release the base.
	if err := v1.Close(); err != nil {
		t.Errorf("double view close: %v", err)
	}
	// A nil base is a valid empty base for the whole lifecycle.
	var nilBase *BaseArena
	if nilBase.Retain() != nil || nilBase.Release() != nil || nilBase.Refs() != 0 || nilBase.Mapped() {
		t.Error("nil base lifecycle not inert")
	}
}

// TestMappedBaseArena pins the mmap-backed base variant against the heap
// one: same bytes at an unaligned file offset, immutable under overlay
// writes, and the mapping is released with the last reference. On
// platforms without mmap support the portable fallback must behave
// identically apart from Mapped().
func TestMappedBaseArena(t *testing.T) {
	const ps = 256
	_, pristine := testBase(ps, 8)
	// Bury the arena at an intentionally page-misaligned offset, as in a
	// .codb container where variable-length metadata precedes the arena.
	const off = 4096 + 123
	file := append(make([]byte, off), pristine...)
	file = append(file, 0xAB, 0xCD) // trailing bytes beyond the arena
	path := t.TempDir() + "/base.bin"
	if err := os.WriteFile(path, file, 0o644); err != nil {
		t.Fatal(err)
	}

	base, err := NewMappedBaseArena(path, off, len(pristine))
	if err != nil {
		t.Fatal(err)
	}
	if base.Mapped() != CanMapBase {
		t.Errorf("Mapped() = %v, CanMapBase = %v", base.Mapped(), CanMapBase)
	}
	if base.Len() != len(pristine) || !bytes.Equal(base.Bytes(), pristine) {
		t.Fatal("mapped base does not expose the file region")
	}

	// A view over the mapped base behaves exactly like over a heap base:
	// overlay writes stick to the view, the base (and file) are untouched.
	d, err := Open(ps, NewCOWBackend(base, ps))
	if err != nil {
		t.Fatal(err)
	}
	img := bytes.Repeat([]byte{0x5A}, ps)
	if err := d.WriteRun(2, [][]byte{img}); err != nil {
		t.Fatal(err)
	}
	if err := d.Backend().WriteAt([]byte("edge"), 6*ps+200); err != nil {
		t.Fatal(err)
	}
	if got, err := d.ReadCopy(2, 1); err != nil || !bytes.Equal(got[0], img) {
		t.Fatalf("view does not observe its overlay write: %v", err)
	}
	if !bytes.Equal(base.Bytes(), pristine) {
		t.Fatal("overlay write reached the mapped base")
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	if err := base.Release(); err != nil {
		t.Fatal(err)
	}
	if base.Refs() != 0 || base.Bytes() != nil {
		t.Fatal("mapped base not released with the last reference")
	}
	// The snapshot file itself must be byte-identical after the whole
	// view lifecycle (the mapping is read-only).
	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(after, file) {
		t.Fatal("view lifecycle modified the backing file")
	}

	// Range validation: mapping past EOF must fail up front, not fault.
	if _, err := NewMappedBaseArena(path, int64(len(file))-10, 20); err == nil {
		t.Error("mapping past EOF accepted")
	}
	if _, err := NewMappedBaseArena(path, -1, 10); err == nil {
		t.Error("negative offset accepted")
	}
	// A zero-length region is a valid empty base.
	empty, err := NewMappedBaseArena(path, off, 0)
	if err != nil || empty.Len() != 0 {
		t.Errorf("empty region: len=%d err=%v", empty.Len(), err)
	}
}

// TestCOWSpecOpen asserts the spec path: a spec carrying a Base opens
// views sharing it; a bare "cow" spec opens an empty private arena.
func TestCOWSpecOpen(t *testing.T) {
	const ps = 512
	base, pristine := testBase(ps, 4)
	spec := BackendSpec{Kind: COWArena, Base: base}
	b1, err := spec.Open(ps)
	if err != nil {
		t.Fatal(err)
	}
	defer b1.Close()
	if b1.Len() != 4*ps {
		t.Fatalf("spec view Len = %d, want %d", b1.Len(), 4*ps)
	}
	got := make([]byte, ps)
	if err := b1.ReadAt(got, ps); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, pristine[ps:2*ps]) {
		t.Fatal("spec view does not read the base")
	}

	bare, err := BackendSpec{Kind: COWArena}.Open(ps)
	if err != nil {
		t.Fatal(err)
	}
	defer bare.Close()
	if bare.Len() != 0 {
		t.Fatalf("bare cow spec Len = %d, want 0", bare.Len())
	}
}
