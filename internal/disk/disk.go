package disk

import (
	"errors"
	"fmt"
	"io"
	"sync"

	"complexobj/internal/iostat"
)

// PageID addresses a page on the simulated device. Pages are allocated
// contiguously in runs, so the clustering assumptions of the paper's cost
// formulas (objects stored on consecutive pages) hold physically.
type PageID uint32

// InvalidPage is a sentinel PageID never returned by Allocate.
const InvalidPage = PageID(^uint32(0))

// DefaultPageSize is the DASDBS page size used throughout the paper: 2048
// bytes, of which 36 bytes are a system header, leaving 2012 effective bytes.
const DefaultPageSize = 2048

// SysHeaderSize is the per-page system header the paper subtracts from the
// raw page size ("the DASDBS (effective) page size of 2012 byte (2048 byte
// minus a header of 36 byte)"). The simulated device reserves it so that the
// usable payload matches the paper's k and p parameters.
const SysHeaderSize = 36

var (
	// ErrOutOfRange reports access to an unallocated page.
	ErrOutOfRange = errors.New("disk: page out of range")
	// ErrBadRun reports a zero- or negative-length run request.
	ErrBadRun = errors.New("disk: invalid run length")
	// ErrBadBuffer reports a transfer buffer whose size is not one page.
	ErrBadBuffer = errors.New("disk: buffer is not page-sized")
)

// Disk is an in-memory array of pages with I/O accounting. Page p occupies
// arena bytes [p*pageSize, (p+1)*pageSize) of its backend.
//
// A Disk is safe for concurrent use, but the experiment harness gives every
// worker its own engine (device + pool), so the mutex is uncontended on the
// hot path.
type Disk struct {
	mu       sync.Mutex
	pageSize int
	numPages int
	backend  Backend
	flat     []byte      // contiguous arena fast path (nil for layered backends)
	stable   StablePager // zero-copy read capability (nil when unsupported)
	stats    iostat.Stats
	retry    RetryPolicy
	retries  int64 // backend read retries performed (diagnostics)
}

// New creates a device with the given raw page size over the default
// in-memory backend.
func New(pageSize int) *Disk {
	return NewWithBackend(pageSize, NewMemBackend())
}

// NewWithBackend creates an empty device whose arena lives on the given
// backend. A non-empty backend (a reopened arena file, a shared COW base)
// must go through Open instead.
func NewWithBackend(pageSize int, b Backend) *Disk {
	if pageSize <= SysHeaderSize {
		panic(fmt.Sprintf("disk: page size %d not larger than system header %d", pageSize, SysHeaderSize))
	}
	d := &Disk{pageSize: pageSize, backend: b, retry: DefaultRetryPolicy}
	d.refreshFlat()
	return d
}

// Open adopts a backend that already holds page images (a persistent
// arena file from an earlier run, or a COW view over a shared base):
// every complete page in the arena is considered allocated. The arena
// length must be an exact multiple of the page size.
func Open(pageSize int, b Backend) (*Disk, error) {
	d := NewWithBackend(pageSize, b)
	n := b.Len()
	if n%pageSize != 0 {
		return nil, fmt.Errorf("disk: arena of %d bytes is not a multiple of page size %d", n, pageSize)
	}
	d.numPages = n / pageSize
	return d, nil
}

// refreshFlat re-fetches the contiguous arena slice after construction and
// every Grow (growth may move the slice). Layered backends (COW) stay on
// the offset-based interface path.
func (d *Disk) refreshFlat() {
	if fb, ok := d.backend.(flatBackend); ok {
		d.flat = fb.Bytes()
	} else {
		d.flat = nil
	}
	d.stable, _ = d.backend.(StablePager)
}

// Backend exposes the storage substrate (diagnostics and memory
// accounting; see COWStatsOf). Callers must not bypass the device for
// page I/O — the counters live here — and must only inspect the backend
// while the device is quiescent: backend state is guarded by the device
// mutex, which inspection helpers like COWStatsOf do not take.
func (d *Disk) Backend() Backend { return d.backend }

// PageSize returns the raw page size in bytes.
func (d *Disk) PageSize() int { return d.pageSize }

// EffectivePageSize returns the usable payload bytes per page (raw size
// minus the 36-byte system header), the paper's S_page = 2012.
func (d *Disk) EffectivePageSize() int { return d.pageSize - SysHeaderSize }

// NumPages returns how many pages have been allocated so far.
func (d *Disk) NumPages() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.numPages
}

// page returns the flat-arena slice of page i. Caller holds d.mu and has
// checked d.flat != nil.
func (d *Disk) page(i int) []byte {
	off := i * d.pageSize
	return d.flat[off : off+d.pageSize : off+d.pageSize]
}

// Allocate reserves a contiguous run of n fresh zeroed pages and returns the
// first PageID. Allocation itself is free (space management is part of the
// data dictionary, whose I/Os the paper does not count).
func (d *Disk) Allocate(n int) (PageID, error) {
	if n <= 0 {
		return InvalidPage, ErrBadRun
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	start := PageID(d.numPages)
	need := (d.numPages + n) * d.pageSize
	if err := d.backend.Grow(need); err != nil {
		return InvalidPage, err
	}
	d.refreshFlat()
	d.numPages += n
	return start, nil
}

// ReadRun reads len(dst) contiguous pages starting at start with a single
// I/O call, filling the caller-provided buffers. Every buffer must be
// exactly one page long; the buffer pool passes recycled frame memory here
// so that steady-state reads allocate nothing.
func (d *Disk) ReadRun(start PageID, dst [][]byte) error {
	if len(dst) == 0 {
		return ErrBadRun
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if int(start)+len(dst) > d.numPages {
		return fmt.Errorf("%w: read [%d,%d) of %d", ErrOutOfRange, start, int(start)+len(dst), d.numPages)
	}
	for i, buf := range dst {
		if len(buf) != d.pageSize {
			return fmt.Errorf("%w: page %d buffer has size %d, want %d", ErrBadBuffer, int(start)+i, len(buf), d.pageSize)
		}
		if d.flat != nil {
			copy(buf, d.page(int(start)+i))
		} else if err := d.readBackend(buf, (int(start)+i)*d.pageSize); err != nil {
			return err
		}
	}
	d.stats.ReadCalls++
	d.stats.PagesRead += int64(len(dst))
	return nil
}

// ReadRunShared reads len(views) contiguous pages starting at start with
// a single counted I/O call, like ReadRun, but without copying pages the
// backend can share: views[i] either aliases backend-stable page memory
// (borrowed[i] = true) or is a page-sized buffer obtained from getBuf and
// filled with a private copy (borrowed[i] = false). Borrowed slices are
// read-only and stay valid until the backend is reset or closed — the
// buffer pool must drop every borrow before either happens (the
// Discard-before-ResetView ordering of view recycling).
//
// Accounting is identical to ReadRun — one read call, len(views) pages —
// so zero-copy is invisible to every paper counter. On error, entries
// already holding getBuf buffers keep them (borrowed[i] = false) and all
// remaining entries are nil, so the caller can reclaim its buffers.
func (d *Disk) ReadRunShared(start PageID, views [][]byte, borrowed []bool, getBuf func() []byte) error {
	if len(views) == 0 {
		return ErrBadRun
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if int(start)+len(views) > d.numPages {
		return fmt.Errorf("%w: read [%d,%d) of %d", ErrOutOfRange, start, int(start)+len(views), d.numPages)
	}
	fail := func(from int) {
		for i := from; i < len(views); i++ {
			views[i], borrowed[i] = nil, false
		}
	}
	for i := range views {
		off := (int(start) + i) * d.pageSize
		if d.stable != nil {
			if s, ok := d.stable.StablePage(off, d.pageSize); ok {
				views[i], borrowed[i] = s, true
				continue
			}
		}
		buf := getBuf()
		views[i], borrowed[i] = buf, false
		if len(buf) != d.pageSize {
			fail(i + 1)
			return fmt.Errorf("%w: page %d buffer has size %d, want %d", ErrBadBuffer, int(start)+i, len(buf), d.pageSize)
		}
		if d.flat != nil {
			copy(buf, d.page(int(start)+i))
		} else if err := d.readBackend(buf, off); err != nil {
			fail(i + 1)
			return err
		}
	}
	d.stats.ReadCalls++
	d.stats.PagesRead += int64(len(views))
	return nil
}

// ReadCopy reads n contiguous pages starting at start with a single I/O
// call into freshly allocated buffers (all carved from one allocation).
// Convenience for tests and one-shot inspection; hot paths use ReadRun with
// recycled buffers instead.
func (d *Disk) ReadCopy(start PageID, n int) ([][]byte, error) {
	if n <= 0 {
		return nil, ErrBadRun
	}
	block := make([]byte, n*d.pageSize)
	out := make([][]byte, n)
	for i := range out {
		out[i] = block[i*d.pageSize : (i+1)*d.pageSize : (i+1)*d.pageSize]
	}
	if err := d.ReadRun(start, out); err != nil {
		return nil, err
	}
	return out, nil
}

// WriteRun writes len(pages) contiguous pages starting at start with a
// single I/O call. Each buffer must be exactly one page long.
func (d *Disk) WriteRun(start PageID, pages [][]byte) error {
	if len(pages) == 0 {
		return ErrBadRun
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if int(start)+len(pages) > d.numPages {
		return fmt.Errorf("%w: write [%d,%d) of %d", ErrOutOfRange, start, int(start)+len(pages), d.numPages)
	}
	for i, p := range pages {
		if len(p) != d.pageSize {
			return fmt.Errorf("disk: page %d has size %d, want %d", int(start)+i, len(p), d.pageSize)
		}
		if d.flat != nil {
			copy(d.page(int(start)+i), p)
		} else if err := d.backend.WriteAt(p, (int(start)+i)*d.pageSize); err != nil {
			return err
		}
	}
	d.stats.WriteCalls++
	d.stats.PagesWritten += int64(len(pages))
	return nil
}

// Flush persists the arena through the backend (no-op for the memory
// backend). Flushing is a durability action, not an I/O-call in the
// paper's sense: the counters only track page traffic between device and
// buffer pool.
func (d *Disk) Flush() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.backend.Flush()
}

// Close flushes and releases the backend. For a COW view this releases
// only the private overlay — the shared base arena stays alive for every
// other engine reading through it. The device must not be used afterwards.
func (d *Disk) Close() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.flat = nil
	return d.backend.Close()
}

// ResetView restores a device layered over a copy-on-write backend to the
// pristine shared base: every overlay page is dropped, growth past the
// base is truncated (allocated page count back to the base's), and the
// device counters are untouched (the caller resets statistics as part of
// its own lifecycle). Any buffer pool over the device must have been
// emptied first — resident frames would otherwise alias pages that no
// longer exist. Returns false, changing nothing, when the backend is not
// copy-on-write; recycling is a COW-view affordance.
func (d *Disk) ResetView() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	c, ok := asCOW(d.backend)
	if !ok {
		return false
	}
	c.reset()
	d.numPages = c.size / d.pageSize
	return true
}

// DumpTo streams the raw images of all allocated pages to w, without
// touching the I/O counters (snapshots are a dictionary-level operation,
// like allocation).
func (d *Disk) DumpTo(w io.Writer) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	n := d.numPages * d.pageSize
	if d.flat != nil {
		_, err := w.Write(d.flat[:n])
		return err
	}
	buf := make([]byte, 64*d.pageSize)
	for off := 0; off < n; {
		chunk := buf
		if n-off < len(chunk) {
			chunk = chunk[:n-off]
		}
		if err := d.readBackend(chunk, off); err != nil {
			return err
		}
		if _, err := w.Write(chunk); err != nil {
			return err
		}
		off += len(chunk)
	}
	return nil
}

// Restore bulk-loads numPages page images from r into an empty device,
// without touching the I/O counters. Together with DumpTo it moves whole
// databases between backends (the snapshot path).
func (d *Disk) Restore(r io.Reader, numPages int) error {
	if numPages < 0 {
		return ErrBadRun
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.numPages != 0 {
		return fmt.Errorf("disk: restore into non-empty device (%d pages)", d.numPages)
	}
	n := numPages * d.pageSize
	if err := d.backend.Grow(n); err != nil {
		return err
	}
	d.refreshFlat()
	if d.flat != nil {
		if _, err := io.ReadFull(r, d.flat[:n]); err != nil {
			return fmt.Errorf("disk: restore arena: %w", err)
		}
	} else {
		buf := make([]byte, 64*d.pageSize)
		for off := 0; off < n; {
			chunk := buf
			if n-off < len(chunk) {
				chunk = chunk[:n-off]
			}
			if _, err := io.ReadFull(r, chunk); err != nil {
				return fmt.Errorf("disk: restore arena: %w", err)
			}
			if err := d.backend.WriteAt(chunk, off); err != nil {
				return err
			}
			off += len(chunk)
		}
	}
	d.numPages = numPages
	return nil
}

// Stats returns a snapshot of the device counters.
func (d *Disk) Stats() iostat.Stats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.stats
}

// ResetStats zeroes the device counters without touching page contents.
func (d *Disk) ResetStats() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.stats.Reset()
}
