// Package disk simulates the page-addressed secondary storage device of the
// paper's DASDBS installation. The paper's evaluation metric is the number
// of physical page I/Os and the number of I/O calls needed to transfer them
// (Equation 1: C = d1*X_calls + d2*X_pages); this device counts exactly
// those two quantities while holding page images in memory.
//
// One I/O call transfers a contiguous run of pages, mirroring the DASDBS
// behaviour described in §5.2 of the paper: the root/header page of a large
// object, its additional header pages, and its data pages are each fetched
// with separate calls, while a flush writes contiguous dirty pages together.
package disk

import (
	"errors"
	"fmt"
	"sync"

	"complexobj/internal/iostat"
)

// PageID addresses a page on the simulated device. Pages are allocated
// contiguously in runs, so the clustering assumptions of the paper's cost
// formulas (objects stored on consecutive pages) hold physically.
type PageID uint32

// InvalidPage is a sentinel PageID never returned by Allocate.
const InvalidPage = PageID(^uint32(0))

// DefaultPageSize is the DASDBS page size used throughout the paper: 2048
// bytes, of which 36 bytes are a system header, leaving 2012 effective bytes.
const DefaultPageSize = 2048

// SysHeaderSize is the per-page system header the paper subtracts from the
// raw page size ("the DASDBS (effective) page size of 2012 byte (2048 byte
// minus a header of 36 byte)"). The simulated device reserves it so that the
// usable payload matches the paper's k and p parameters.
const SysHeaderSize = 36

var (
	// ErrOutOfRange reports access to an unallocated page.
	ErrOutOfRange = errors.New("disk: page out of range")
	// ErrBadRun reports a zero- or negative-length run request.
	ErrBadRun = errors.New("disk: invalid run length")
)

// Disk is an in-memory array of pages with I/O accounting.
type Disk struct {
	mu       sync.Mutex
	pageSize int
	pages    [][]byte
	stats    iostat.Stats
}

// New creates a device with the given raw page size.
func New(pageSize int) *Disk {
	if pageSize <= SysHeaderSize {
		panic(fmt.Sprintf("disk: page size %d not larger than system header %d", pageSize, SysHeaderSize))
	}
	return &Disk{pageSize: pageSize}
}

// PageSize returns the raw page size in bytes.
func (d *Disk) PageSize() int { return d.pageSize }

// EffectivePageSize returns the usable payload bytes per page (raw size
// minus the 36-byte system header), the paper's S_page = 2012.
func (d *Disk) EffectivePageSize() int { return d.pageSize - SysHeaderSize }

// NumPages returns how many pages have been allocated so far.
func (d *Disk) NumPages() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.pages)
}

// Allocate reserves a contiguous run of n fresh zeroed pages and returns the
// first PageID. Allocation itself is free (space management is part of the
// data dictionary, whose I/Os the paper does not count).
func (d *Disk) Allocate(n int) (PageID, error) {
	if n <= 0 {
		return InvalidPage, ErrBadRun
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	start := PageID(len(d.pages))
	for i := 0; i < n; i++ {
		d.pages = append(d.pages, make([]byte, d.pageSize))
	}
	return start, nil
}

// ReadRun reads n contiguous pages starting at start with a single I/O call.
// The returned buffers are copies; callers own them.
func (d *Disk) ReadRun(start PageID, n int) ([][]byte, error) {
	if n <= 0 {
		return nil, ErrBadRun
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if int(start)+n > len(d.pages) {
		return nil, fmt.Errorf("%w: read [%d,%d) of %d", ErrOutOfRange, start, int(start)+n, len(d.pages))
	}
	out := make([][]byte, n)
	for i := 0; i < n; i++ {
		p := make([]byte, d.pageSize)
		copy(p, d.pages[int(start)+i])
		out[i] = p
	}
	d.stats.ReadCalls++
	d.stats.PagesRead += int64(n)
	return out, nil
}

// WriteRun writes len(pages) contiguous pages starting at start with a
// single I/O call. Each buffer must be exactly one page long.
func (d *Disk) WriteRun(start PageID, pages [][]byte) error {
	if len(pages) == 0 {
		return ErrBadRun
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if int(start)+len(pages) > len(d.pages) {
		return fmt.Errorf("%w: write [%d,%d) of %d", ErrOutOfRange, start, int(start)+len(pages), len(d.pages))
	}
	for i, p := range pages {
		if len(p) != d.pageSize {
			return fmt.Errorf("disk: page %d has size %d, want %d", int(start)+i, len(p), d.pageSize)
		}
		copy(d.pages[int(start)+i], p)
	}
	d.stats.WriteCalls++
	d.stats.PagesWritten += int64(len(pages))
	return nil
}

// Stats returns a snapshot of the device counters.
func (d *Disk) Stats() iostat.Stats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.stats
}

// ResetStats zeroes the device counters without touching page contents.
func (d *Disk) ResetStats() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.stats.Reset()
}
