// Package disk simulates the page-addressed secondary storage device of the
// paper's DASDBS installation. The paper's evaluation metric is the number
// of physical page I/Os and the number of I/O calls needed to transfer them
// (Equation 1: C = d1*X_calls + d2*X_pages); this device counts exactly
// those two quantities while holding page images in memory.
//
// One I/O call transfers a contiguous run of pages, mirroring the DASDBS
// behaviour described in §5.2 of the paper: the root/header page of a large
// object, its additional header pages, and its data pages are each fetched
// with separate calls, while a flush writes contiguous dirty pages together.
//
// Page images live in a single contiguous arena ([]byte) rather than one
// heap object per page, so the device costs the allocator one object no
// matter how large the database is, and a run transfer is a pair of
// memmoves over adjacent memory. ReadRun transfers into caller-provided
// buffers (the buffer pool passes recycled frame memory), so the
// steady-state read path performs no allocation at all.
//
// Where the arena bytes live is a pluggable Backend: the default keeps
// them on the Go heap (the original in-memory device), the file backend
// maps them onto a real file so a device survives the process. Backends
// change only the storage substrate — allocation, run transfers and the
// I/O counters are identical across backends by construction.
package disk

import (
	"errors"
	"fmt"
	"io"
	"sync"

	"complexobj/internal/iostat"
)

// PageID addresses a page on the simulated device. Pages are allocated
// contiguously in runs, so the clustering assumptions of the paper's cost
// formulas (objects stored on consecutive pages) hold physically.
type PageID uint32

// InvalidPage is a sentinel PageID never returned by Allocate.
const InvalidPage = PageID(^uint32(0))

// DefaultPageSize is the DASDBS page size used throughout the paper: 2048
// bytes, of which 36 bytes are a system header, leaving 2012 effective bytes.
const DefaultPageSize = 2048

// SysHeaderSize is the per-page system header the paper subtracts from the
// raw page size ("the DASDBS (effective) page size of 2012 byte (2048 byte
// minus a header of 36 byte)"). The simulated device reserves it so that the
// usable payload matches the paper's k and p parameters.
const SysHeaderSize = 36

var (
	// ErrOutOfRange reports access to an unallocated page.
	ErrOutOfRange = errors.New("disk: page out of range")
	// ErrBadRun reports a zero- or negative-length run request.
	ErrBadRun = errors.New("disk: invalid run length")
	// ErrBadBuffer reports a transfer buffer whose size is not one page.
	ErrBadBuffer = errors.New("disk: buffer is not page-sized")
)

// Disk is an in-memory array of pages with I/O accounting. All page images
// share one contiguous arena; page p occupies arena[p*pageSize:(p+1)*pageSize].
//
// A Disk is safe for concurrent use, but the experiment harness gives every
// worker its own engine (device + pool), so the mutex is uncontended on the
// hot path.
type Disk struct {
	mu       sync.Mutex
	pageSize int
	numPages int
	backend  Backend
	arena    []byte // backend.Bytes(), refreshed after every Grow
	stats    iostat.Stats
}

// New creates a device with the given raw page size over the default
// in-memory backend.
func New(pageSize int) *Disk {
	return NewWithBackend(pageSize, NewMemBackend())
}

// NewWithBackend creates an empty device whose arena lives on the given
// backend. A non-empty backend (a reopened arena file) must go through
// Open instead.
func NewWithBackend(pageSize int, b Backend) *Disk {
	if pageSize <= SysHeaderSize {
		panic(fmt.Sprintf("disk: page size %d not larger than system header %d", pageSize, SysHeaderSize))
	}
	return &Disk{pageSize: pageSize, backend: b, arena: b.Bytes()}
}

// Open adopts a backend that already holds page images (a persistent
// arena file from an earlier run): every complete page in the arena is
// considered allocated. The arena length must be an exact multiple of the
// page size.
func Open(pageSize int, b Backend) (*Disk, error) {
	d := NewWithBackend(pageSize, b)
	n := len(d.arena)
	if n%pageSize != 0 {
		return nil, fmt.Errorf("disk: arena of %d bytes is not a multiple of page size %d", n, pageSize)
	}
	d.numPages = n / pageSize
	return d, nil
}

// PageSize returns the raw page size in bytes.
func (d *Disk) PageSize() int { return d.pageSize }

// EffectivePageSize returns the usable payload bytes per page (raw size
// minus the 36-byte system header), the paper's S_page = 2012.
func (d *Disk) EffectivePageSize() int { return d.pageSize - SysHeaderSize }

// NumPages returns how many pages have been allocated so far.
func (d *Disk) NumPages() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.numPages
}

// page returns the arena slice of page i. Caller holds d.mu.
func (d *Disk) page(i int) []byte {
	off := i * d.pageSize
	return d.arena[off : off+d.pageSize : off+d.pageSize]
}

// Allocate reserves a contiguous run of n fresh zeroed pages and returns the
// first PageID. Allocation itself is free (space management is part of the
// data dictionary, whose I/Os the paper does not count).
func (d *Disk) Allocate(n int) (PageID, error) {
	if n <= 0 {
		return InvalidPage, ErrBadRun
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	start := PageID(d.numPages)
	need := (d.numPages + n) * d.pageSize
	arena, err := d.backend.Grow(need)
	if err != nil {
		return InvalidPage, err
	}
	d.arena = arena
	d.numPages += n
	return start, nil
}

// ReadRun reads len(dst) contiguous pages starting at start with a single
// I/O call, filling the caller-provided buffers. Every buffer must be
// exactly one page long; the buffer pool passes recycled frame memory here
// so that steady-state reads allocate nothing.
func (d *Disk) ReadRun(start PageID, dst [][]byte) error {
	if len(dst) == 0 {
		return ErrBadRun
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if int(start)+len(dst) > d.numPages {
		return fmt.Errorf("%w: read [%d,%d) of %d", ErrOutOfRange, start, int(start)+len(dst), d.numPages)
	}
	for i, buf := range dst {
		if len(buf) != d.pageSize {
			return fmt.Errorf("%w: page %d buffer has size %d, want %d", ErrBadBuffer, int(start)+i, len(buf), d.pageSize)
		}
		copy(buf, d.page(int(start)+i))
	}
	d.stats.ReadCalls++
	d.stats.PagesRead += int64(len(dst))
	return nil
}

// ReadCopy reads n contiguous pages starting at start with a single I/O
// call into freshly allocated buffers (all carved from one allocation).
// Convenience for tests and one-shot inspection; hot paths use ReadRun with
// recycled buffers instead.
func (d *Disk) ReadCopy(start PageID, n int) ([][]byte, error) {
	if n <= 0 {
		return nil, ErrBadRun
	}
	block := make([]byte, n*d.pageSize)
	out := make([][]byte, n)
	for i := range out {
		out[i] = block[i*d.pageSize : (i+1)*d.pageSize : (i+1)*d.pageSize]
	}
	if err := d.ReadRun(start, out); err != nil {
		return nil, err
	}
	return out, nil
}

// WriteRun writes len(pages) contiguous pages starting at start with a
// single I/O call. Each buffer must be exactly one page long.
func (d *Disk) WriteRun(start PageID, pages [][]byte) error {
	if len(pages) == 0 {
		return ErrBadRun
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if int(start)+len(pages) > d.numPages {
		return fmt.Errorf("%w: write [%d,%d) of %d", ErrOutOfRange, start, int(start)+len(pages), d.numPages)
	}
	for i, p := range pages {
		if len(p) != d.pageSize {
			return fmt.Errorf("disk: page %d has size %d, want %d", int(start)+i, len(p), d.pageSize)
		}
		copy(d.page(int(start)+i), p)
	}
	d.stats.WriteCalls++
	d.stats.PagesWritten += int64(len(pages))
	return nil
}

// Flush persists the arena through the backend (no-op for the memory
// backend). Flushing is a durability action, not an I/O-call in the
// paper's sense: the counters only track page traffic between device and
// buffer pool.
func (d *Disk) Flush() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.backend.Flush()
}

// Close flushes and releases the backend. The device must not be used
// afterwards.
func (d *Disk) Close() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.arena = nil
	return d.backend.Close()
}

// DumpTo streams the raw images of all allocated pages to w, without
// touching the I/O counters (snapshots are a dictionary-level operation,
// like allocation).
func (d *Disk) DumpTo(w io.Writer) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	_, err := w.Write(d.arena[:d.numPages*d.pageSize])
	return err
}

// Restore bulk-loads numPages page images from r into an empty device,
// without touching the I/O counters. Together with DumpTo it moves whole
// databases between backends (the snapshot path).
func (d *Disk) Restore(r io.Reader, numPages int) error {
	if numPages < 0 {
		return ErrBadRun
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.numPages != 0 {
		return fmt.Errorf("disk: restore into non-empty device (%d pages)", d.numPages)
	}
	arena, err := d.backend.Grow(numPages * d.pageSize)
	if err != nil {
		return err
	}
	d.arena = arena
	if _, err := io.ReadFull(r, d.arena[:numPages*d.pageSize]); err != nil {
		return fmt.Errorf("disk: restore arena: %w", err)
	}
	d.numPages = numPages
	return nil
}

// Stats returns a snapshot of the device counters.
func (d *Disk) Stats() iostat.Stats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.stats
}

// ResetStats zeroes the device counters without touching page contents.
func (d *Disk) ResetStats() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.stats.Reset()
}
