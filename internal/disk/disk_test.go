package disk

import (
	"bytes"
	"errors"
	"sync"
	"testing"
)

func newTestDisk(t *testing.T) *Disk {
	t.Helper()
	return New(DefaultPageSize)
}

func TestGeometry(t *testing.T) {
	d := newTestDisk(t)
	if d.PageSize() != 2048 {
		t.Errorf("PageSize = %d, want 2048", d.PageSize())
	}
	if d.EffectivePageSize() != 2012 {
		t.Errorf("EffectivePageSize = %d, want 2012 (paper's S_page)", d.EffectivePageSize())
	}
}

func TestNewPanicsOnTinyPage(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(36) did not panic")
		}
	}()
	New(SysHeaderSize)
}

func TestAllocateContiguous(t *testing.T) {
	d := newTestDisk(t)
	a, err := d.Allocate(3)
	if err != nil {
		t.Fatal(err)
	}
	b, err := d.Allocate(2)
	if err != nil {
		t.Fatal(err)
	}
	if a != 0 || b != 3 {
		t.Errorf("allocations at %d,%d; want 0,3", a, b)
	}
	if d.NumPages() != 5 {
		t.Errorf("NumPages = %d, want 5", d.NumPages())
	}
}

func TestAllocateRejectsNonPositive(t *testing.T) {
	d := newTestDisk(t)
	if _, err := d.Allocate(0); !errors.Is(err, ErrBadRun) {
		t.Errorf("Allocate(0) err = %v, want ErrBadRun", err)
	}
}

func TestReadWriteRoundTrip(t *testing.T) {
	d := newTestDisk(t)
	start, _ := d.Allocate(4)
	pages := make([][]byte, 4)
	for i := range pages {
		pages[i] = make([]byte, d.PageSize())
		for j := range pages[i] {
			pages[i][j] = byte(i + j)
		}
	}
	if err := d.WriteRun(start, pages); err != nil {
		t.Fatal(err)
	}
	got, err := d.ReadCopy(start, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if !bytes.Equal(got[i], pages[i]) {
			t.Fatalf("page %d mismatch", i)
		}
	}
}

func TestReadReturnsCopies(t *testing.T) {
	d := newTestDisk(t)
	start, _ := d.Allocate(1)
	got, _ := d.ReadCopy(start, 1)
	got[0][0] = 0xFF
	again, _ := d.ReadCopy(start, 1)
	if again[0][0] == 0xFF {
		t.Error("mutating a read buffer leaked into the device")
	}
}

func TestIOAccounting(t *testing.T) {
	d := newTestDisk(t)
	start, _ := d.Allocate(10)
	if s := d.Stats(); s.Pages() != 0 || s.Calls() != 0 {
		t.Fatalf("allocation should be free, got %v", s)
	}
	if _, err := d.ReadCopy(start, 4); err != nil {
		t.Fatal(err)
	}
	if _, err := d.ReadCopy(start+4, 1); err != nil {
		t.Fatal(err)
	}
	blank := make([][]byte, 3)
	for i := range blank {
		blank[i] = make([]byte, d.PageSize())
	}
	if err := d.WriteRun(start, blank); err != nil {
		t.Fatal(err)
	}
	s := d.Stats()
	if s.PagesRead != 5 || s.ReadCalls != 2 {
		t.Errorf("reads: %d pages in %d calls, want 5 in 2", s.PagesRead, s.ReadCalls)
	}
	if s.PagesWritten != 3 || s.WriteCalls != 1 {
		t.Errorf("writes: %d pages in %d calls, want 3 in 1", s.PagesWritten, s.WriteCalls)
	}
}

func TestResetStats(t *testing.T) {
	d := newTestDisk(t)
	start, _ := d.Allocate(1)
	d.ReadCopy(start, 1)
	d.ResetStats()
	if s := d.Stats(); s.Pages() != 0 || s.Calls() != 0 {
		t.Errorf("ResetStats left %v", s)
	}
	// Contents must survive a stats reset.
	if _, err := d.ReadCopy(start, 1); err != nil {
		t.Errorf("read after ResetStats: %v", err)
	}
}

func TestOutOfRange(t *testing.T) {
	d := newTestDisk(t)
	d.Allocate(2)
	if _, err := d.ReadCopy(1, 2); !errors.Is(err, ErrOutOfRange) {
		t.Errorf("read past end err = %v, want ErrOutOfRange", err)
	}
	if err := d.WriteRun(2, [][]byte{make([]byte, d.PageSize())}); !errors.Is(err, ErrOutOfRange) {
		t.Errorf("write past end err = %v, want ErrOutOfRange", err)
	}
}

func TestWriteRejectsWrongSize(t *testing.T) {
	d := newTestDisk(t)
	d.Allocate(1)
	if err := d.WriteRun(0, [][]byte{make([]byte, 10)}); err == nil {
		t.Error("short page write accepted")
	}
}

func TestZeroLengthRuns(t *testing.T) {
	d := newTestDisk(t)
	d.Allocate(1)
	if _, err := d.ReadCopy(0, 0); !errors.Is(err, ErrBadRun) {
		t.Errorf("ReadRun n=0 err = %v", err)
	}
	if err := d.WriteRun(0, nil); !errors.Is(err, ErrBadRun) {
		t.Errorf("WriteRun empty err = %v", err)
	}
}

func TestConcurrentAccess(t *testing.T) {
	d := newTestDisk(t)
	start, _ := d.Allocate(64)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			buf := [][]byte{make([]byte, d.PageSize())}
			for i := 0; i < 100; i++ {
				pid := start + PageID((g*100+i)%64)
				if err := d.WriteRun(pid, buf); err != nil {
					t.Errorf("write: %v", err)
					return
				}
				if _, err := d.ReadCopy(pid, 1); err != nil {
					t.Errorf("read: %v", err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	s := d.Stats()
	if s.PagesRead != 800 || s.PagesWritten != 800 {
		t.Errorf("concurrent accounting lost updates: %v", s)
	}
}

func TestReadRunFillsCallerBuffers(t *testing.T) {
	d := newTestDisk(t)
	start, _ := d.Allocate(3)
	pages := make([][]byte, 3)
	for i := range pages {
		pages[i] = make([]byte, d.PageSize())
		pages[i][0] = byte(i + 1)
	}
	if err := d.WriteRun(start, pages); err != nil {
		t.Fatal(err)
	}
	dst := make([][]byte, 3)
	for i := range dst {
		dst[i] = make([]byte, d.PageSize())
	}
	if err := d.ReadRun(start, dst); err != nil {
		t.Fatal(err)
	}
	for i := range dst {
		if dst[i][0] != byte(i+1) {
			t.Errorf("page %d: got %d, want %d", i, dst[i][0], i+1)
		}
	}
	if s := d.Stats(); s.ReadCalls != 1 || s.PagesRead != 3 {
		t.Errorf("accounting: %v, want 1 call / 3 pages", s)
	}
}

func TestReadRunRejectsWrongBufferSize(t *testing.T) {
	d := newTestDisk(t)
	d.Allocate(1)
	if err := d.ReadRun(0, [][]byte{make([]byte, 10)}); !errors.Is(err, ErrBadBuffer) {
		t.Errorf("short buffer err = %v, want ErrBadBuffer", err)
	}
}

func TestArenaGrowthPreservesContents(t *testing.T) {
	d := newTestDisk(t)
	start, _ := d.Allocate(1)
	page := make([][]byte, 1)
	page[0] = make([]byte, d.PageSize())
	page[0][7] = 0xAB
	if err := d.WriteRun(start, page); err != nil {
		t.Fatal(err)
	}
	// Force many arena regrowths.
	for i := 0; i < 200; i++ {
		if _, err := d.Allocate(17); err != nil {
			t.Fatal(err)
		}
	}
	got, err := d.ReadCopy(start, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got[0][7] != 0xAB {
		t.Errorf("arena growth lost page contents: byte = %#x", got[0][7])
	}
	// Fresh pages must be zeroed.
	last, err := d.ReadCopy(PageID(d.NumPages()-1), 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range last[0] {
		if b != 0 {
			t.Fatal("freshly allocated page not zeroed")
		}
	}
}
