package disk

import (
	"errors"
	"time"
)

// IsTransient reports whether err marks a failure a retry may clear. It
// walks the error chain for an implementation of `Transient() bool` (the
// convention fault-injecting and real backends use to classify their
// errors); permanent failures and plain errors report false.
func IsTransient(err error) bool {
	var t interface{ Transient() bool }
	return errors.As(err, &t) && t.Transient()
}

// RetryPolicy bounds the device's retry-with-backoff on transiently
// failing backend reads. Only reads are retried: a read retry is
// idempotent and invisible in the I/O counters (which increment solely on
// success), while failed writes propagate so the request is reported
// instead of papered over.
type RetryPolicy struct {
	// Attempts is the total number of tries (1 means no retry; 0 means
	// DefaultRetryPolicy.Attempts).
	Attempts int
	// Backoff is the sleep before the first retry, doubling on each
	// further one (0 means no sleep).
	Backoff time.Duration
}

// DefaultRetryPolicy is the device default: up to 4 attempts with a tiny
// doubling backoff, enough to ride out sporadic transient faults without
// stretching a genuinely failing request.
var DefaultRetryPolicy = RetryPolicy{Attempts: 4, Backoff: 50 * time.Microsecond}

func (p RetryPolicy) attempts() int {
	if p.Attempts <= 0 {
		return DefaultRetryPolicy.Attempts
	}
	return p.Attempts
}

// SetRetryPolicy replaces the device's read-retry policy (construction
// installs DefaultRetryPolicy).
func (d *Disk) SetRetryPolicy(p RetryPolicy) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.retry = p
}

// Retries returns how many backend read retries the device has performed.
// The count is diagnostics, not a paper counter: it survives ResetStats
// and never feeds the reported statistics.
func (d *Disk) Retries() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.retries
}

// readBackend is backend.ReadAt behind the retry policy: transient
// failures are retried with doubling backoff, anything else (or
// exhaustion) propagates. Caller holds d.mu.
func (d *Disk) readBackend(p []byte, off int) error {
	err := d.backend.ReadAt(p, off)
	backoff := d.retry.Backoff
	for attempt := 1; err != nil && attempt < d.retry.attempts() && IsTransient(err); attempt++ {
		if backoff > 0 {
			time.Sleep(backoff)
			backoff *= 2
		}
		d.retries++
		err = d.backend.ReadAt(p, off)
	}
	return err
}

// unwrapBackend peels one wrapping layer (fault injection, future
// instrumentation) off b. Wrappers advertise themselves by an
// `Unwrap() Backend` method, mirroring errors.Unwrap.
func unwrapBackend(b Backend) (Backend, bool) {
	u, ok := b.(interface{ Unwrap() Backend })
	if !ok {
		return nil, false
	}
	return u.Unwrap(), true
}

// asCOW finds the copy-on-write backend under any stack of wrappers.
func asCOW(b Backend) (*cowBackend, bool) {
	for b != nil {
		if c, ok := b.(*cowBackend); ok {
			return c, true
		}
		inner, ok := unwrapBackend(b)
		if !ok {
			return nil, false
		}
		b = inner
	}
	return nil, false
}
