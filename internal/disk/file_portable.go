//go:build !linux

package disk

import (
	"fmt"
	"io"
	"os"
)

// fileBackend is the portable (no mmap) file-backed arena: pages live in a
// heap buffer and are written back to the arena file on Flush and Close.
// It trades write-through coherence for portability; the Disk-level
// semantics (zeroed growth, adoption of existing contents, flush on Close)
// are identical to the mmap implementation, which the shared backend tests
// pin.
type fileBackend struct {
	f     *os.File
	path  string
	opts  FileBackendOptions
	arena []byte
}

// OpenFileBackend opens (creating if absent) a file-backed arena. An
// existing file's contents are adopted as the initial arena.
func OpenFileBackend(path string, opts FileBackendOptions) (Backend, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("disk: open arena file: %w", err)
	}
	b := &fileBackend{f: f, path: path, opts: opts}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("disk: stat arena file: %w", err)
	}
	if n := int(st.Size()); n > 0 {
		b.arena = make([]byte, n, roundUp(n, opts.extent()))
		if _, err := io.ReadFull(f, b.arena); err != nil {
			f.Close()
			return nil, fmt.Errorf("disk: read arena file: %w", err)
		}
	}
	return b, nil
}

func (b *fileBackend) Bytes() []byte { return b.arena }
func (b *fileBackend) Len() int      { return len(b.arena) }

func (b *fileBackend) Grow(n int) error {
	if n <= len(b.arena) {
		return nil
	}
	if n > cap(b.arena) {
		arena := make([]byte, n, roundUp(n, b.opts.extent()))
		copy(arena, b.arena)
		b.arena = arena
	} else {
		b.arena = b.arena[:n]
	}
	return nil
}

func (b *fileBackend) ReadAt(p []byte, off int) error {
	if err := checkRange(off, len(p), len(b.arena)); err != nil {
		return err
	}
	copy(p, b.arena[off:])
	return nil
}

func (b *fileBackend) WriteAt(p []byte, off int) error {
	if err := checkRange(off, len(p), len(b.arena)); err != nil {
		return err
	}
	copy(b.arena[off:], p)
	return nil
}

// StablePage implements StablePager over the heap arena, with the same
// copy-equivalent staleness across capacity growth as the memory backend.
func (b *fileBackend) StablePage(off, n int) ([]byte, bool) {
	if off < 0 || n <= 0 || off+n > len(b.arena) {
		return nil, false
	}
	return b.arena[off : off+n : off+n], true
}

func (b *fileBackend) Flush() error {
	if _, err := b.f.WriteAt(b.arena, 0); err != nil {
		return fmt.Errorf("disk: write arena file: %w", err)
	}
	if err := b.f.Truncate(int64(len(b.arena))); err != nil {
		return fmt.Errorf("disk: truncate arena file: %w", err)
	}
	return b.f.Sync()
}

func (b *fileBackend) Close() error {
	var firstErr error
	keep := func(err error) {
		if firstErr == nil && err != nil {
			firstErr = err
		}
	}
	if !b.opts.RemoveOnClose {
		// Skip the full-arena writeback for a file deleted two lines on.
		keep(b.Flush())
	}
	keep(b.f.Close())
	keep(removeIfRequested(b.path, b.opts))
	b.arena = nil
	return firstErr
}
