package disk

import (
	"fmt"
	"sync/atomic"
)

// BaseArena is an immutable page arena shared by any number of COW
// backends: the frozen state of one loaded database. Once constructed it
// is never written again — every COW overlay layered on top observes the
// same bytes forever, which is what lets the parallel experiment matrix
// hand each worker a view of one loaded extension instead of a private
// copy. A nil *BaseArena behaves as an empty base.
//
// A base is reference-counted so that it can outlive the engine that
// built it and be shared by a cache across many views: construction hands
// the creator one reference, every COW backend opened over the base takes
// another (released by its Close), and the backing storage — for a
// heap base the slice, for an mmap-backed base the file mapping — is
// released only when the last reference goes. Releasing is what makes the
// mmap variant safe: no view can ever observe an unmapped arena.
type BaseArena struct {
	data   []byte
	refs   atomic.Int64
	mapped bool
	unmap  func() error // releases the file mapping (mapped bases only)
}

// NewBaseArena freezes data into a shared base holding one reference,
// owned by the caller. The caller hands over ownership: the slice must
// not be mutated afterwards.
func NewBaseArena(data []byte) *BaseArena {
	a := &BaseArena{data: data}
	a.refs.Store(1)
	return a
}

// Len returns the base arena length in bytes.
func (a *BaseArena) Len() int {
	if a == nil {
		return 0
	}
	return len(a.data)
}

// Bytes exposes the frozen arena for inspection (checksums, dumps).
// Callers must treat the slice as read-only and must hold a reference
// (for a released mapped base the slice is gone).
func (a *BaseArena) Bytes() []byte {
	if a == nil {
		return nil
	}
	return a.data
}

// Mapped reports whether the arena is a read-only file mapping (pages
// faulted in from the snapshot file on demand) rather than a heap copy.
func (a *BaseArena) Mapped() bool { return a != nil && a.mapped }

// Refs returns the current reference count (diagnostics and tests).
func (a *BaseArena) Refs() int {
	if a == nil {
		return 0
	}
	return int(a.refs.Load())
}

// Retain takes one additional reference and returns the arena (nil-safe,
// so call sites can thread a possibly-empty base without branching).
func (a *BaseArena) Retain() *BaseArena {
	if a != nil {
		a.refs.Add(1)
	}
	return a
}

// Release drops one reference. When the last reference goes the backing
// storage is released: a heap base drops its slice, an mmap-backed base
// unmaps the snapshot file region. Releasing more often than retained is
// a bug and reported as an error.
func (a *BaseArena) Release() error {
	if a == nil {
		return nil
	}
	switch n := a.refs.Add(-1); {
	case n > 0:
		return nil
	case n < 0:
		return fmt.Errorf("disk: base arena over-released (refs %d)", n)
	}
	a.data = nil
	if a.unmap != nil {
		unmap := a.unmap
		a.unmap = nil
		return unmap()
	}
	return nil
}

// cowBackend is a copy-on-write arena: reads fall through to the shared
// immutable base, the first write to a page materializes a private copy in
// the overlay. Growth past the base is free until written (fresh pages
// read as zero straight from nowhere), so an engine over a large shared
// base costs only the pages it actually dirties.
type cowBackend struct {
	base *BaseArena
	gran int      // overlay granularity in bytes (the device page size)
	size int      // logical arena length
	over [][]byte // overlay page images indexed by page number; nil = base

	overlaid int      // number of materialized overlay pages
	freeImgs [][]byte // page images recycled by reset, ready for reuse
}

// NewCOWBackend layers a private overlay over base (nil means an empty
// base). pageBytes is the copy-on-write granularity — the device page
// size; 0 means DefaultPageSize. The arena starts at the base length, so
// a device opened over it adopts every base page. The backend takes one
// reference on the base, released by its Close — the base therefore
// cannot be released under a live view.
func NewCOWBackend(base *BaseArena, pageBytes int) Backend {
	if pageBytes <= 0 {
		pageBytes = DefaultPageSize
	}
	return &cowBackend{base: base.Retain(), gran: pageBytes, size: base.Len()}
}

func (b *cowBackend) Len() int { return b.size }

func (b *cowBackend) Grow(n int) error {
	if n > b.size {
		b.size = n
	}
	return nil
}

// overlayPage returns the overlay image of page pg, or nil.
func (b *cowBackend) overlayPage(pg int) []byte {
	if pg < len(b.over) {
		return b.over[pg]
	}
	return nil
}

func (b *cowBackend) ReadAt(p []byte, off int) error {
	if err := checkRange(off, len(p), b.size); err != nil {
		return err
	}
	base := b.base.Bytes()
	for len(p) > 0 {
		pg, po := off/b.gran, off%b.gran
		n := b.gran - po
		if n > len(p) {
			n = len(p)
		}
		if img := b.overlayPage(pg); img != nil {
			copy(p[:n], img[po:po+n])
		} else if off < len(base) {
			m := len(base) - off
			if m > n {
				m = n
			}
			copy(p[:m], base[off:off+m])
			clear(p[m:n]) // grown tail beyond the base reads as zero
		} else {
			clear(p[:n])
		}
		p = p[n:]
		off += n
	}
	return nil
}

func (b *cowBackend) WriteAt(p []byte, off int) error {
	if err := checkRange(off, len(p), b.size); err != nil {
		return err
	}
	base := b.base.Bytes()
	for len(p) > 0 {
		pg, po := off/b.gran, off%b.gran
		n := b.gran - po
		if n > len(p) {
			n = len(p)
		}
		img := b.overlayPage(pg)
		if img == nil {
			if k := len(b.freeImgs); k > 0 {
				img = b.freeImgs[k-1]
				b.freeImgs = b.freeImgs[:k-1]
			} else {
				img = make([]byte, b.gran)
			}
			if n < b.gran {
				// Partial-page write: materialize the underlying content
				// first so the untouched bytes of the page survive (and,
				// for a recycled image, no stale bytes either). A
				// full-page write (the device's normal unit) skips this.
				lo := pg * b.gran
				var m int
				if lo < len(base) {
					m = copy(img, base[lo:])
				}
				clear(img[m:])
			}
			if pg >= len(b.over) {
				grown := make([][]byte, (pg+1)*2)
				copy(grown, b.over)
				b.over = grown
			}
			b.over[pg] = img
			b.overlaid++
		}
		copy(img[po:po+n], p[:n])
		p = p[n:]
		off += n
	}
	return nil
}

// Flush is a no-op: the overlay is ephemeral by design (a worker's
// private view), and the base is immutable.
func (b *cowBackend) Flush() error { return nil }

// StablePage implements StablePager: a materialized page shares its
// overlay image, an unmaterialized one inside the base shares the base
// bytes directly — the zero-copy read path the whole COW design exists
// for. Grown-but-unwritten tail pages (which read as zero) and ranges
// spanning a page boundary stay on ReadAt. Overlay images are recycled by
// reset(), so the stability contract's reset clause is load-bearing here:
// every borrower must be gone before the view resets (the pool's
// Discard-before-ResetView ordering).
func (b *cowBackend) StablePage(off, n int) ([]byte, bool) {
	if off < 0 || n <= 0 || off+n > b.size {
		return nil, false
	}
	pg, po := off/b.gran, off%b.gran
	if po+n > b.gran {
		return nil, false
	}
	if img := b.overlayPage(pg); img != nil {
		return img[po : po+n : po+n], true
	}
	if base := b.base.Bytes(); off+n <= len(base) {
		return base[off : off+n : off+n], true
	}
	return nil, false
}

// reset drops every overlay page and truncates growth past the base, so
// the backend reads as the pristine shared base again. The overlay index
// keeps its capacity and the page images move to a free list (view
// recycling re-dirties a similar working set, so the next request's
// writes materialize pages without allocating).
func (b *cowBackend) reset() {
	for i, img := range b.over {
		if img != nil {
			b.freeImgs = append(b.freeImgs, img)
			b.over[i] = nil
		}
	}
	b.overlaid = 0
	b.size = b.base.Len()
}

// Close releases the overlay and the backend's reference on the shared
// base. Other engines keep reading through the base; only when the last
// reference (views plus the owner handle) goes is the base storage —
// heap slice or snapshot file mapping — actually released.
func (b *cowBackend) Close() error {
	base := b.base
	b.over = nil
	b.overlaid = 0
	b.freeImgs = nil
	b.base = nil
	b.size = 0
	return base.Release()
}

// COWStats describes the memory split of a COW backend.
type COWStats struct {
	// BaseBytes is the size of the shared immutable base arena.
	BaseBytes int
	// OverlayPages is the number of privately materialized pages.
	OverlayPages int
	// OverlayBytes is the private overlay memory (OverlayPages × page).
	OverlayBytes int
}

// COWStatsOf reports overlay usage when b is a COW backend, seeing
// through any stack of wrapping backends (fault injection).
func COWStatsOf(b Backend) (COWStats, bool) {
	c, ok := asCOW(b)
	if !ok {
		return COWStats{}, false
	}
	return COWStats{
		BaseBytes:    c.base.Len(),
		OverlayPages: c.overlaid,
		OverlayBytes: c.overlaid * c.gran,
	}, true
}
