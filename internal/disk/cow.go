package disk

// BaseArena is an immutable page arena shared by any number of COW
// backends: the frozen state of one loaded database. Once constructed it
// is never written again — every COW overlay layered on top observes the
// same bytes forever, which is what lets the parallel experiment matrix
// hand each worker a view of one loaded extension instead of a private
// copy. A nil *BaseArena behaves as an empty base.
type BaseArena struct {
	data []byte
}

// NewBaseArena freezes data into a shared base. The caller hands over
// ownership: the slice must not be mutated afterwards.
func NewBaseArena(data []byte) *BaseArena { return &BaseArena{data: data} }

// Len returns the base arena length in bytes.
func (a *BaseArena) Len() int {
	if a == nil {
		return 0
	}
	return len(a.data)
}

// Bytes exposes the frozen arena for inspection (checksums, dumps).
// Callers must treat the slice as read-only.
func (a *BaseArena) Bytes() []byte {
	if a == nil {
		return nil
	}
	return a.data
}

// cowBackend is a copy-on-write arena: reads fall through to the shared
// immutable base, the first write to a page materializes a private copy in
// the overlay. Growth past the base is free until written (fresh pages
// read as zero straight from nowhere), so an engine over a large shared
// base costs only the pages it actually dirties.
type cowBackend struct {
	base *BaseArena
	gran int      // overlay granularity in bytes (the device page size)
	size int      // logical arena length
	over [][]byte // overlay page images indexed by page number; nil = base

	overlaid int // number of materialized overlay pages
}

// NewCOWBackend layers a private overlay over base (nil means an empty
// base). pageBytes is the copy-on-write granularity — the device page
// size; 0 means DefaultPageSize. The arena starts at the base length, so
// a device opened over it adopts every base page.
func NewCOWBackend(base *BaseArena, pageBytes int) Backend {
	if pageBytes <= 0 {
		pageBytes = DefaultPageSize
	}
	return &cowBackend{base: base, gran: pageBytes, size: base.Len()}
}

func (b *cowBackend) Len() int { return b.size }

func (b *cowBackend) Grow(n int) error {
	if n > b.size {
		b.size = n
	}
	return nil
}

// overlayPage returns the overlay image of page pg, or nil.
func (b *cowBackend) overlayPage(pg int) []byte {
	if pg < len(b.over) {
		return b.over[pg]
	}
	return nil
}

func (b *cowBackend) ReadAt(p []byte, off int) error {
	if err := checkRange(off, len(p), b.size); err != nil {
		return err
	}
	base := b.base.Bytes()
	for len(p) > 0 {
		pg, po := off/b.gran, off%b.gran
		n := b.gran - po
		if n > len(p) {
			n = len(p)
		}
		if img := b.overlayPage(pg); img != nil {
			copy(p[:n], img[po:po+n])
		} else if off < len(base) {
			m := len(base) - off
			if m > n {
				m = n
			}
			copy(p[:m], base[off:off+m])
			clear(p[m:n]) // grown tail beyond the base reads as zero
		} else {
			clear(p[:n])
		}
		p = p[n:]
		off += n
	}
	return nil
}

func (b *cowBackend) WriteAt(p []byte, off int) error {
	if err := checkRange(off, len(p), b.size); err != nil {
		return err
	}
	base := b.base.Bytes()
	for len(p) > 0 {
		pg, po := off/b.gran, off%b.gran
		n := b.gran - po
		if n > len(p) {
			n = len(p)
		}
		img := b.overlayPage(pg)
		if img == nil {
			img = make([]byte, b.gran)
			if n < b.gran {
				// Partial-page write: materialize the underlying content
				// first so the untouched bytes of the page survive. A
				// full-page write (the device's normal unit) skips this.
				if lo := pg * b.gran; lo < len(base) {
					copy(img, base[lo:])
				}
			}
			if pg >= len(b.over) {
				grown := make([][]byte, (pg+1)*2)
				copy(grown, b.over)
				b.over = grown
			}
			b.over[pg] = img
			b.overlaid++
		}
		copy(img[po:po+n], p[:n])
		p = p[n:]
		off += n
	}
	return nil
}

// Flush is a no-op: the overlay is ephemeral by design (a worker's
// private view), and the base is immutable.
func (b *cowBackend) Flush() error { return nil }

// Close releases the overlay only. The shared base is untouched — other
// engines keep reading through it.
func (b *cowBackend) Close() error {
	b.over = nil
	b.overlaid = 0
	b.base = nil
	b.size = 0
	return nil
}

// COWStats describes the memory split of a COW backend.
type COWStats struct {
	// BaseBytes is the size of the shared immutable base arena.
	BaseBytes int
	// OverlayPages is the number of privately materialized pages.
	OverlayPages int
	// OverlayBytes is the private overlay memory (OverlayPages × page).
	OverlayBytes int
}

// COWStatsOf reports overlay usage when b is a COW backend.
func COWStatsOf(b Backend) (COWStats, bool) {
	c, ok := b.(*cowBackend)
	if !ok {
		return COWStats{}, false
	}
	return COWStats{
		BaseBytes:    c.base.Len(),
		OverlayPages: c.overlaid,
		OverlayBytes: c.overlaid * c.gran,
	}, true
}
