package disk

import (
	"bytes"
	"path/filepath"
	"testing"
)

// stableDevices builds one device per zero-copy backend kind. The cow
// device sits over a caller-visible base arena so tests can check
// aliasing and base integrity.
func stableDevices(t *testing.T) map[string]*Disk {
	t.Helper()
	fb, err := OpenFileBackend(filepath.Join(t.TempDir(), "arena"), FileBackendOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// The cow base matches the 4 pages TestStablePageSemantics allocates,
	// so its out-of-range cases sit outside the backend arena for every
	// backend kind (larger allocations simply grow the overlay).
	base := NewBaseArena(make([]byte, 4*DefaultPageSize))
	cow, err := Open(DefaultPageSize, NewCOWBackend(base, DefaultPageSize))
	if err != nil {
		t.Fatal(err)
	}
	devs := map[string]*Disk{
		"mem":  New(DefaultPageSize),
		"file": NewWithBackend(DefaultPageSize, fb),
		"cow":  cow,
	}
	for _, d := range devs {
		t.Cleanup(func() { d.Close() })
	}
	return devs
}

// TestStablePageSemantics pins the StablePager capability on every
// backend that implements it: in-range page-aligned requests return a
// read-only alias of the page bytes, out-of-range and page-spanning
// requests return false.
func TestStablePageSemantics(t *testing.T) {
	const ps = DefaultPageSize
	for name, d := range stableDevices(t) {
		t.Run(name, func(t *testing.T) {
			if _, err := d.Allocate(4); err != nil {
				t.Fatal(err)
			}
			want := bytes.Repeat([]byte{0xAB}, ps)
			if err := d.WriteRun(2, [][]byte{want}); err != nil {
				t.Fatal(err)
			}
			sp, ok := d.Backend().(StablePager)
			if !ok {
				t.Fatalf("%T does not implement StablePager", d.Backend())
			}
			s, ok := sp.StablePage(2*ps, ps)
			if !ok {
				t.Fatal("StablePage refused an in-range page")
			}
			if !bytes.Equal(s, want) {
				t.Error("StablePage bytes differ from the written page")
			}
			// A later write through the device must be visible through the
			// alias (it is a view, not a snapshot).
			want2 := bytes.Repeat([]byte{0xCD}, ps)
			if err := d.WriteRun(2, [][]byte{want2}); err != nil {
				t.Fatal(err)
			}
			s2, ok := sp.StablePage(2*ps, ps)
			if !ok || !bytes.Equal(s2, want2) {
				t.Error("StablePage after rewrite does not observe the new bytes")
			}
			for _, bad := range [][2]int{
				{-ps, ps},          // negative offset
				{4 * ps, ps},       // past the end
				{3*ps + 1, ps},     // spans two pages (cow) / past end by 1
				{2 * ps, 0},        // empty
				{2 * ps, -1},       // negative length
				{100 * ps, ps},     // far out of range
				{2 * ps, 100 * ps}, // run longer than the device
			} {
				if _, ok := sp.StablePage(bad[0], bad[1]); ok {
					t.Errorf("StablePage(%d, %d) accepted an invalid range", bad[0], bad[1])
				}
			}
		})
	}
}

// TestStablePageCOWAliasing pins the two cow cases: a non-materialized
// page aliases the shared base arena, a materialized page aliases its
// private overlay image — and writing through the overlay never moves
// the base.
func TestStablePageCOWAliasing(t *testing.T) {
	const ps = DefaultPageSize
	baseData := make([]byte, 8*ps)
	for i := range baseData {
		baseData[i] = byte(i % 251)
	}
	pristine := append([]byte(nil), baseData...)
	base := NewBaseArena(baseData)
	d, err := Open(ps, NewCOWBackend(base, ps))
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	sp := d.Backend().(StablePager)

	// Clean page: the stable slice is the base arena itself.
	s, ok := sp.StablePage(3*ps, ps)
	if !ok {
		t.Fatal("StablePage refused a clean base page")
	}
	if &s[0] != &base.Bytes()[3*ps] {
		t.Error("clean page does not alias the base arena")
	}

	// Materialize page 3 in the overlay; the stable slice must flip to
	// the overlay image and the base must stay pristine.
	img := bytes.Repeat([]byte{0x5A}, ps)
	if err := d.WriteRun(3, [][]byte{img}); err != nil {
		t.Fatal(err)
	}
	s, ok = sp.StablePage(3*ps, ps)
	if !ok {
		t.Fatal("StablePage refused a materialized page")
	}
	if &s[0] == &base.Bytes()[3*ps] {
		t.Error("materialized page still aliases the base")
	}
	if !bytes.Equal(s, img) {
		t.Error("materialized page does not show the overlay image")
	}
	if !bytes.Equal(base.Bytes(), pristine) {
		t.Fatal("overlay write mutated the shared base")
	}
}

// TestReadRunSharedMatchesReadRun pins that the zero-copy read path is
// invisible to the paper counters and returns the same bytes as ReadRun,
// borrowing every page a stable backend can share.
func TestReadRunSharedMatchesReadRun(t *testing.T) {
	const ps = DefaultPageSize
	for name, d := range stableDevices(t) {
		t.Run(name, func(t *testing.T) {
			if _, err := d.Allocate(8); err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 8; i++ {
				if err := d.WriteRun(PageID(i), [][]byte{bytes.Repeat([]byte{byte(i + 1)}, ps)}); err != nil {
					t.Fatal(err)
				}
			}
			d.ResetStats()
			plain := make([][]byte, 4)
			for i := range plain {
				plain[i] = make([]byte, ps)
			}
			if err := d.ReadRun(2, plain); err != nil {
				t.Fatal(err)
			}
			afterPlain := d.Stats()

			d.ResetStats()
			views := make([][]byte, 4)
			borrowed := make([]bool, 4)
			grabbed := 0
			getBuf := func() []byte { grabbed++; return make([]byte, ps) }
			if err := d.ReadRunShared(2, views, borrowed, getBuf); err != nil {
				t.Fatal(err)
			}
			if got := d.Stats(); got != afterPlain {
				t.Errorf("shared read counters %+v != plain read %+v", got, afterPlain)
			}
			for i := range views {
				if !bytes.Equal(views[i], plain[i]) {
					t.Errorf("page %d: shared bytes differ from ReadRun", i+2)
				}
				if !borrowed[i] {
					t.Errorf("page %d not borrowed from a stable backend", i+2)
				}
			}
			if grabbed != 0 {
				t.Errorf("stable backend still took %d copy buffers", grabbed)
			}
		})
	}
}

// opaque hides every optional capability of a backend (flatBackend,
// StablePager), forcing the buffered copy path: interface embedding
// promotes only Backend's method set.
type opaque struct{ Backend }

// TestReadRunSharedCopyFallback pins the fallback: a backend without the
// StablePager capability serves every page through getBuf copies with
// borrowed = false, same counters, same bytes.
func TestReadRunSharedCopyFallback(t *testing.T) {
	const ps = DefaultPageSize
	d := NewWithBackend(ps, opaque{NewMemBackend()})
	if _, err := d.Allocate(4); err != nil {
		t.Fatal(err)
	}
	want := bytes.Repeat([]byte{7}, ps)
	if err := d.WriteRun(1, [][]byte{want}); err != nil {
		t.Fatal(err)
	}
	d.ResetStats()
	views := make([][]byte, 2)
	borrowed := []bool{true, true} // must be cleared by the call
	grabbed := 0
	if err := d.ReadRunShared(1, views, borrowed, func() []byte { grabbed++; return make([]byte, ps) }); err != nil {
		t.Fatal(err)
	}
	if grabbed != 2 {
		t.Errorf("opaque backend took %d buffers, want 2", grabbed)
	}
	if borrowed[0] || borrowed[1] {
		t.Error("opaque backend produced borrowed views")
	}
	if !bytes.Equal(views[0], want) {
		t.Error("copied view bytes differ")
	}
	st := d.Stats()
	if st.ReadCalls != 1 || st.PagesRead != 2 {
		t.Errorf("accounting: %+v, want 1 call / 2 pages", st)
	}
}
