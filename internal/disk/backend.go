package disk

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

// Backend is the storage substrate behind a Disk: one contiguous byte
// arena holding every page image. The device layer owns all page-level
// semantics (allocation, run transfers, I/O accounting); a backend only
// decides where the arena bytes live — on the Go heap or mapped onto a
// real file. Swapping backends therefore can never change the counters
// the paper measures, only the persistence of the bytes.
//
// Backends are not safe for concurrent use; the owning Disk serializes
// access under its own mutex.
type Backend interface {
	// Bytes returns the current arena. The slice stays valid until the
	// next Grow or Close.
	Bytes() []byte
	// Grow extends the arena to exactly n bytes (n never shrinks) and
	// returns the new arena slice. Fresh bytes are zeroed. The returned
	// slice may alias different memory than the previous one.
	Grow(n int) ([]byte, error)
	// Flush persists the arena contents (no-op for memory backends).
	Flush() error
	// Close flushes and releases the backend. The arena slice is invalid
	// afterwards.
	Close() error
}

// memBackend keeps the arena on the Go heap: the zero-dependency default
// matching the original in-memory device. Growth doubles capacity so the
// allocator sees one object regardless of database size.
type memBackend struct {
	arena []byte
}

// NewMemBackend returns an in-memory arena backend.
func NewMemBackend() Backend { return &memBackend{} }

func (b *memBackend) Bytes() []byte { return b.arena }

func (b *memBackend) Grow(n int) ([]byte, error) {
	if n <= len(b.arena) {
		return b.arena, nil
	}
	if n > cap(b.arena) {
		grown := 2 * cap(b.arena)
		if grown < n {
			grown = n
		}
		arena := make([]byte, n, grown)
		copy(arena, b.arena)
		b.arena = arena
	} else {
		b.arena = b.arena[:n]
	}
	return b.arena, nil
}

func (b *memBackend) Flush() error { return nil }
func (b *memBackend) Close() error { b.arena = nil; return nil }

// BackendKind enumerates the built-in backend implementations.
type BackendKind int

const (
	// MemArena keeps page images on the Go heap (default).
	MemArena BackendKind = iota
	// FileArena maps the page arena onto a real file, grown in
	// page-aligned extents and flushed on Close.
	FileArena
)

// String implements fmt.Stringer.
func (k BackendKind) String() string {
	switch k {
	case MemArena:
		return "mem"
	case FileArena:
		return "file"
	default:
		return fmt.Sprintf("BackendKind(%d)", int(k))
	}
}

// BackendSpec describes how to construct a backend. Specs (not Backend
// instances) are what flows through configuration: every engine opens its
// own arena from the shared spec, so independent engines never collide.
type BackendSpec struct {
	Kind BackendKind
	// Path names an explicit arena file (FileArena only). When set, the
	// file is kept on Close and its existing contents are adopted.
	Path string
	// Dir is the directory for anonymous arena files (FileArena with no
	// Path; "" means the OS temp directory). Anonymous arenas are
	// removed on Close.
	Dir string
	// KeepFiles retains anonymous arena files on Close (diagnostics).
	KeepFiles bool
}

// ParseBackendSpec parses the CLI/config syntax:
//
//	""            -> memory arena (default)
//	"mem"         -> memory arena
//	"file"        -> file arenas in the OS temp directory
//	"file:DIR"    -> file arenas in DIR
func ParseBackendSpec(s string) (BackendSpec, error) {
	switch {
	case s == "" || s == "mem":
		return BackendSpec{Kind: MemArena}, nil
	case s == "file":
		return BackendSpec{Kind: FileArena}, nil
	case strings.HasPrefix(s, "file:"):
		return BackendSpec{Kind: FileArena, Dir: s[len("file:"):]}, nil
	default:
		return BackendSpec{}, fmt.Errorf("disk: unknown backend spec %q (want mem, file or file:DIR)", s)
	}
}

// String renders the spec back in ParseBackendSpec syntax.
func (s BackendSpec) String() string {
	if s.Kind == FileArena {
		if s.Path != "" {
			return "file:" + s.Path
		}
		if s.Dir != "" {
			return "file:" + s.Dir
		}
		return "file"
	}
	return "mem"
}

// Open constructs a fresh backend per the spec. FileArena specs without an
// explicit Path create a uniquely named arena file, so one spec can open
// arbitrarily many independent engines.
func (s BackendSpec) Open() (Backend, error) {
	switch s.Kind {
	case MemArena:
		return NewMemBackend(), nil
	case FileArena:
		if s.Path != "" {
			return OpenFileBackend(s.Path, FileBackendOptions{})
		}
		dir := s.Dir
		if dir == "" {
			dir = os.TempDir()
		}
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("disk: backend dir: %w", err)
		}
		f, err := os.CreateTemp(dir, "arena-*.pages")
		if err != nil {
			return nil, fmt.Errorf("disk: create arena file: %w", err)
		}
		path := f.Name()
		f.Close()
		return OpenFileBackend(path, FileBackendOptions{RemoveOnClose: !s.KeepFiles})
	default:
		return nil, fmt.Errorf("disk: unknown backend kind %d", int(s.Kind))
	}
}

// FileBackendOptions tune the file-backed arena.
type FileBackendOptions struct {
	// ExtentBytes is the granularity the arena file grows in (rounded up
	// to a multiple of the page size by the caller's layout; default
	// DefaultExtentBytes). Growing in extents keeps the remap/truncate
	// frequency O(log n) in the database size.
	ExtentBytes int
	// RemoveOnClose deletes the arena file on Close (anonymous arenas).
	RemoveOnClose bool
}

// DefaultExtentBytes is the default arena-file growth granularity: 1 MiB,
// i.e. 512 DASDBS pages per extent.
const DefaultExtentBytes = 1 << 20

func (o FileBackendOptions) extent() int {
	if o.ExtentBytes > 0 {
		return o.ExtentBytes
	}
	return DefaultExtentBytes
}

// roundUp rounds n up to a multiple of quantum.
func roundUp(n, quantum int) int {
	return (n + quantum - 1) / quantum * quantum
}

// removeIfRequested deletes an arena file if its options ask for it.
func removeIfRequested(path string, o FileBackendOptions) error {
	if !o.RemoveOnClose {
		return nil
	}
	if err := os.Remove(path); err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("disk: remove arena %s: %w", filepath.Base(path), err)
	}
	return nil
}
