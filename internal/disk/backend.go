package disk

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

// Backend is the storage substrate behind a Disk: one logical byte arena
// holding every page image. The device layer owns all page-level
// semantics (allocation, run transfers, I/O accounting); a backend only
// decides where the arena bytes live — on the Go heap, mapped onto a real
// file, or layered copy-on-write over a shared base. Swapping backends
// therefore can never change the counters the paper measures, only the
// persistence and sharing of the bytes.
//
// Backends are not safe for concurrent use; the owning Disk serializes
// access under its own mutex. Offsets and lengths are bytes; reads and
// writes must stay inside [0, Len()).
type Backend interface {
	// Len returns the current arena length in bytes.
	Len() int
	// Grow extends the arena to exactly n bytes (n never shrinks the
	// arena). Fresh bytes read as zero.
	Grow(n int) error
	// ReadAt fills p with the arena bytes at offset off. It must
	// overwrite all of p (recycled buffers are passed in), and must not
	// retain p.
	ReadAt(p []byte, off int) error
	// WriteAt stores p at offset off. It must not retain p.
	WriteAt(p []byte, off int) error
	// Flush persists the arena contents (no-op for memory backends).
	Flush() error
	// Close flushes and releases the backend.
	Close() error
}

// flatBackend is implemented by backends whose whole arena is one
// contiguous byte slice. The Disk uses it as a fast path: page transfers
// become direct memmoves against the slice instead of interface calls.
// The slice stays valid until the next Grow or Close.
type flatBackend interface {
	Bytes() []byte
}

// StablePager is the optional zero-copy read capability. A backend
// implements it when it can hand out a read-only slice of arena bytes
// whose memory stays valid — and keeps reflecting the backend's content
// for that range as written through this backend — until the backend is
// reset (COW views) or closed. Growth must not invalidate stable slices:
// backends that move their arena on Grow either retain the old memory
// (mmap'ed arenas retire superseded mappings until Close) or rely on the
// garbage collector (heap arenas), in which case a stale slice still
// holds the bytes it was handed, exactly as a private copy would.
//
// StablePage returns the n bytes at offset off, or ok=false when this
// particular range cannot be shared (spans a COW page boundary, lies
// beyond materialized storage, or — for fault-injecting wrappers — must
// keep flowing through ReadAt so scheduled faults still fire). Callers
// must treat the slice as read-only; writing through it would bypass
// both write accounting and copy-on-write materialization.
type StablePager interface {
	StablePage(off, n int) ([]byte, bool)
}

// checkRange validates a [off, off+n) access against an arena of l bytes.
func checkRange(off, n, l int) error {
	if off < 0 || n < 0 || off+n > l {
		return fmt.Errorf("disk: backend access [%d,%d) outside arena of %d bytes", off, off+n, l)
	}
	return nil
}

// memBackend keeps the arena on the Go heap: the zero-dependency default
// matching the original in-memory device. Growth doubles capacity so the
// allocator sees one object regardless of database size.
type memBackend struct {
	arena []byte
}

// NewMemBackend returns an in-memory arena backend.
func NewMemBackend() Backend { return &memBackend{} }

func (b *memBackend) Bytes() []byte { return b.arena }
func (b *memBackend) Len() int      { return len(b.arena) }

func (b *memBackend) Grow(n int) error {
	if n <= len(b.arena) {
		return nil
	}
	if n > cap(b.arena) {
		grown := 2 * cap(b.arena)
		if grown < n {
			grown = n
		}
		arena := make([]byte, n, grown)
		copy(arena, b.arena)
		b.arena = arena
	} else {
		b.arena = b.arena[:n]
	}
	return nil
}

func (b *memBackend) ReadAt(p []byte, off int) error {
	if err := checkRange(off, len(p), len(b.arena)); err != nil {
		return err
	}
	copy(p, b.arena[off:])
	return nil
}

func (b *memBackend) WriteAt(p []byte, off int) error {
	if err := checkRange(off, len(p), len(b.arena)); err != nil {
		return err
	}
	copy(b.arena[off:], p)
	return nil
}

func (b *memBackend) Flush() error { return nil }
func (b *memBackend) Close() error { b.arena = nil; return nil }

// StablePage implements StablePager over the heap arena. A Grow past the
// arena's capacity moves it, after which an outstanding slice keeps the
// old memory alive (GC-held) with the bytes it had when handed out —
// copy-equivalent staleness, which is all the contract promises.
func (b *memBackend) StablePage(off, n int) ([]byte, bool) {
	if off < 0 || n <= 0 || off+n > len(b.arena) {
		return nil, false
	}
	return b.arena[off : off+n : off+n], true
}

// BackendKind enumerates the built-in backend implementations.
type BackendKind int

const (
	// MemArena keeps page images on the Go heap (default).
	MemArena BackendKind = iota
	// FileArena maps the page arena onto a real file, grown in
	// page-aligned extents and flushed on Close.
	FileArena
	// COWArena layers a private page-granular overlay over a shared,
	// immutable base arena (copy-on-write). With a nil base it degenerates
	// to a fully private overlay arena.
	COWArena
)

// String implements fmt.Stringer.
func (k BackendKind) String() string {
	switch k {
	case MemArena:
		return "mem"
	case FileArena:
		return "file"
	case COWArena:
		return "cow"
	default:
		return fmt.Sprintf("BackendKind(%d)", int(k))
	}
}

// BackendSpec describes how to construct a backend. Specs (not Backend
// instances) are what flows through configuration: every engine opens its
// own arena from the shared spec, so independent engines never collide.
// The one deliberately shared piece of state is Base: COW engines opened
// from the same spec all read through the same immutable base arena.
type BackendSpec struct {
	Kind BackendKind
	// Path names an explicit arena file (FileArena only). When set, the
	// file is kept on Close and its existing contents are adopted.
	Path string
	// Dir is the directory for anonymous arena files (FileArena with no
	// Path; "" means the OS temp directory). Anonymous arenas are
	// removed on Close.
	Dir string
	// KeepFiles retains anonymous arena files on Close (diagnostics).
	KeepFiles bool
	// Base is the shared immutable base arena for COWArena backends.
	// nil means an empty base: every written page lives in the overlay,
	// which makes "cow" usable as a drop-in backend even without a
	// shared base (the CLI/env spec syntax).
	Base *BaseArena
}

// ParseBackendSpec parses the CLI/config syntax:
//
//	""            -> memory arena (default)
//	"mem"         -> memory arena
//	"file"        -> file arenas in the OS temp directory
//	"file:DIR"    -> file arenas in DIR
//	"cow"         -> copy-on-write arenas (shared base where the harness
//	                 provides one, private overlays everywhere)
func ParseBackendSpec(s string) (BackendSpec, error) {
	switch {
	case s == "" || s == "mem":
		return BackendSpec{Kind: MemArena}, nil
	case s == "file":
		return BackendSpec{Kind: FileArena}, nil
	case strings.HasPrefix(s, "file:"):
		return BackendSpec{Kind: FileArena, Dir: s[len("file:"):]}, nil
	case s == "cow":
		return BackendSpec{Kind: COWArena}, nil
	default:
		return BackendSpec{}, fmt.Errorf("disk: unknown backend spec %q (want mem, file, file:DIR or cow)", s)
	}
}

// String renders the spec back in ParseBackendSpec syntax.
func (s BackendSpec) String() string {
	switch s.Kind {
	case FileArena:
		if s.Path != "" {
			return "file:" + s.Path
		}
		if s.Dir != "" {
			return "file:" + s.Dir
		}
		return "file"
	case COWArena:
		return "cow"
	default:
		return "mem"
	}
}

// Open constructs a fresh backend per the spec, for a device with the
// given page size (the COW overlay granularity; 0 means DefaultPageSize).
// FileArena specs without an explicit Path create a uniquely named arena
// file, so one spec can open arbitrarily many independent engines;
// COWArena specs with a Base share that base across every engine opened
// from the spec.
func (s BackendSpec) Open(pageSize int) (Backend, error) {
	switch s.Kind {
	case MemArena:
		return NewMemBackend(), nil
	case FileArena:
		if s.Path != "" {
			return OpenFileBackend(s.Path, FileBackendOptions{})
		}
		dir := s.Dir
		if dir == "" {
			dir = os.TempDir()
		}
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("disk: backend dir: %w", err)
		}
		f, err := os.CreateTemp(dir, "arena-*.pages")
		if err != nil {
			return nil, fmt.Errorf("disk: create arena file: %w", err)
		}
		path := f.Name()
		f.Close()
		return OpenFileBackend(path, FileBackendOptions{RemoveOnClose: !s.KeepFiles})
	case COWArena:
		return NewCOWBackend(s.Base, pageSize), nil
	default:
		return nil, fmt.Errorf("disk: unknown backend kind %d", int(s.Kind))
	}
}

// FileBackendOptions tune the file-backed arena.
type FileBackendOptions struct {
	// ExtentBytes is the granularity the arena file grows in (rounded up
	// to a multiple of the page size by the caller's layout; default
	// DefaultExtentBytes). Growing in extents keeps the remap/truncate
	// frequency O(log n) in the database size.
	ExtentBytes int
	// RemoveOnClose deletes the arena file on Close (anonymous arenas).
	RemoveOnClose bool
}

// DefaultExtentBytes is the default arena-file growth granularity: 1 MiB,
// i.e. 512 DASDBS pages per extent.
const DefaultExtentBytes = 1 << 20

func (o FileBackendOptions) extent() int {
	if o.ExtentBytes > 0 {
		return o.ExtentBytes
	}
	return DefaultExtentBytes
}

// roundUp rounds n up to a multiple of quantum.
func roundUp(n, quantum int) int {
	return (n + quantum - 1) / quantum * quantum
}

// removeIfRequested deletes an arena file if its options ask for it.
func removeIfRequested(path string, o FileBackendOptions) error {
	if !o.RemoveOnClose {
		return nil
	}
	if err := os.Remove(path); err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("disk: remove arena %s: %w", filepath.Base(path), err)
	}
	return nil
}
