// Package btree implements a disk-resident B+-tree over the buffer pool:
// fixed-size uint64 keys mapping to uint64 values, with node pages going
// through the same fix/unfix and I/O accounting as every other access
// path in the engine.
//
// The paper deliberately does NOT count index I/O: its NSM+index and
// DASDBS-NSM models use "tables with addresses" whose accesses are free
// ("we did not account for additional I/Os needed to access the data
// dictionary, to retrieve the tables with addresses, etc.", §5.1). This
// package exists to *quantify* that assumption: the experiments package
// re-runs the indexed models with a real B+-tree whose page accesses are
// counted (see experiments.IndexAblation), showing how much of the
// normalized models' advantage survives honest index accounting.
//
// The tree supports Insert (unique keys), Get, and ascending range scans;
// the benchmark never deletes objects, so deletion is intentionally out
// of scope (append-only indexes are standard for bulk-loaded analytical
// stores). Keys are inserted in any order; pages split on overflow.
package btree
