package btree

import (
	"errors"
	"testing"

	"complexobj/internal/buffer"
	"complexobj/internal/disk"
	"complexobj/internal/xrand"
)

func newTree(t *testing.T, poolPages int) (*disk.Disk, *buffer.Pool, *Tree) {
	t.Helper()
	d := disk.New(disk.DefaultPageSize)
	p := buffer.New(d, poolPages, buffer.LRU)
	tr, err := New(d, p)
	if err != nil {
		t.Fatal(err)
	}
	return d, p, tr
}

func TestEmptyTree(t *testing.T) {
	_, _, tr := newTree(t, 16)
	if tr.Height() != 1 || tr.Pages() != 1 || tr.Len() != 0 {
		t.Errorf("empty tree: h=%d pages=%d len=%d", tr.Height(), tr.Pages(), tr.Len())
	}
	if _, err := tr.Get(42); !errors.Is(err, ErrNotFound) {
		t.Errorf("Get on empty tree: %v", err)
	}
	count := 0
	tr.Scan(0, ^uint64(0), func(uint64, uint64) bool { count++; return true })
	if count != 0 {
		t.Errorf("scan on empty tree visited %d", count)
	}
}

func TestInsertGetSmall(t *testing.T) {
	_, _, tr := newTree(t, 16)
	for i := uint64(0); i < 50; i++ {
		if err := tr.Insert(i*7%50, i); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
	}
	if tr.Len() != 50 {
		t.Errorf("Len = %d", tr.Len())
	}
	for i := uint64(0); i < 50; i++ {
		v, err := tr.Get(i * 7 % 50)
		if err != nil {
			t.Fatalf("get %d: %v", i*7%50, err)
		}
		if v != i {
			t.Fatalf("Get(%d) = %d, want %d", i*7%50, v, i)
		}
	}
}

func TestDuplicateRejected(t *testing.T) {
	_, _, tr := newTree(t, 16)
	if err := tr.Insert(5, 1); err != nil {
		t.Fatal(err)
	}
	if err := tr.Insert(5, 2); !errors.Is(err, ErrDuplicate) {
		t.Errorf("duplicate insert err = %v", err)
	}
	if v, _ := tr.Get(5); v != 1 {
		t.Errorf("duplicate overwrote: %d", v)
	}
}

// TestSplitsAscending inserts enough sequential keys to force leaf and
// root splits (leafCap is ~125 at 2 KiB pages).
func TestSplitsAscending(t *testing.T) {
	_, pool, tr := newTree(t, 64)
	const n = 5000
	for i := uint64(0); i < n; i++ {
		if err := tr.Insert(i, i*2); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
	}
	if tr.Height() < 2 {
		t.Errorf("height = %d after %d inserts", tr.Height(), n)
	}
	if err := pool.FlushAll(); err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < n; i++ {
		v, err := tr.Get(i)
		if err != nil || v != i*2 {
			t.Fatalf("Get(%d) = %d, %v", i, v, err)
		}
	}
}

func TestSplitsDescendingAndRandom(t *testing.T) {
	for name, gen := range map[string]func(i uint64) uint64{
		"descending": func(i uint64) uint64 { return 10000 - i },
		"random":     func(i uint64) uint64 { return (i*2654435761 + 7) % (1 << 30) },
	} {
		t.Run(name, func(t *testing.T) {
			_, _, tr := newTree(t, 64)
			const n = 4000
			seen := map[uint64]uint64{}
			for i := uint64(0); i < n; i++ {
				k := gen(i)
				if _, dup := seen[k]; dup {
					continue
				}
				seen[k] = i
				if err := tr.Insert(k, i); err != nil {
					t.Fatalf("insert %d: %v", k, err)
				}
			}
			for k, v := range seen {
				got, err := tr.Get(k)
				if err != nil || got != v {
					t.Fatalf("Get(%d) = %d, %v; want %d", k, got, err, v)
				}
			}
		})
	}
}

func TestScanOrderedComplete(t *testing.T) {
	_, _, tr := newTree(t, 64)
	rng := xrand.New(5)
	keys := map[uint64]bool{}
	for len(keys) < 3000 {
		keys[uint64(rng.Intn(1<<20))] = true
	}
	for k := range keys {
		if err := tr.Insert(k, k+1); err != nil {
			t.Fatal(err)
		}
	}
	var prev uint64
	first := true
	visited := 0
	err := tr.Scan(0, ^uint64(0), func(k, v uint64) bool {
		if !first && k <= prev {
			t.Fatalf("scan out of order: %d after %d", k, prev)
		}
		if v != k+1 {
			t.Fatalf("scan value mismatch at %d", k)
		}
		prev, first = k, false
		visited++
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if visited != len(keys) {
		t.Errorf("scan visited %d of %d (leaf chain broken?)", visited, len(keys))
	}
}

func TestScanRange(t *testing.T) {
	_, _, tr := newTree(t, 64)
	for i := uint64(0); i < 1000; i++ {
		tr.Insert(i*10, i)
	}
	var got []uint64
	tr.Scan(105, 205, func(k, v uint64) bool {
		got = append(got, k)
		return true
	})
	want := []uint64{110, 120, 130, 140, 150, 160, 170, 180, 190, 200}
	if len(got) != len(want) {
		t.Fatalf("range scan got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("range scan got %v", got)
		}
	}
	// Early stop.
	count := 0
	tr.Scan(0, ^uint64(0), func(uint64, uint64) bool { count++; return count < 3 })
	if count != 3 {
		t.Errorf("early stop visited %d", count)
	}
	// Inverted range.
	count = 0
	tr.Scan(10, 5, func(uint64, uint64) bool { count++; return true })
	if count != 0 {
		t.Errorf("inverted range visited %d", count)
	}
}

func TestGetCostsHeightFixes(t *testing.T) {
	_, pool, tr := newTree(t, 256)
	for i := uint64(0); i < 20000; i++ {
		tr.Insert(i, i)
	}
	h := tr.Height()
	if h < 3 {
		t.Fatalf("tree too shallow for the test: height %d", h)
	}
	pool.ResetStats()
	if _, err := tr.Get(12345); err != nil {
		t.Fatal(err)
	}
	if fixes := pool.Fixes(); int(fixes) != h {
		t.Errorf("Get cost %d fixes, want height %d", fixes, h)
	}
}

func TestPersistenceAcrossColdCache(t *testing.T) {
	_, pool, tr := newTree(t, 32)
	for i := uint64(0); i < 2000; i++ {
		tr.Insert(i, i^0xFF)
	}
	if err := pool.Reset(); err != nil {
		t.Fatal(err)
	}
	for _, k := range []uint64{0, 1, 999, 1500, 1999} {
		v, err := tr.Get(k)
		if err != nil || v != k^0xFF {
			t.Fatalf("after cold cache Get(%d) = %d, %v", k, v, err)
		}
	}
}

func TestRootPageStable(t *testing.T) {
	_, _, tr := newTree(t, 64)
	root := tr.Root()
	for i := uint64(0); i < 10000; i++ {
		tr.Insert(i, i)
	}
	if tr.Root() != root {
		t.Errorf("root moved from %d to %d", root, tr.Root())
	}
}

func TestPack(t *testing.T) {
	k := Pack(7, 3)
	if k != 7<<32|3 {
		t.Errorf("Pack = %x", k)
	}
	from, to := PackRange(7)
	if from != Pack(7, 0) || to != Pack(7, ^uint32(0)) {
		t.Errorf("PackRange = %x..%x", from, to)
	}
	// Group scan picks up exactly the group.
	_, _, tr := newTree(t, 32)
	for g := uint32(0); g < 20; g++ {
		for s := uint32(0); s < 5; s++ {
			tr.Insert(Pack(g, s), uint64(g*100+s))
		}
	}
	var got []uint64
	f, to2 := PackRange(7)
	tr.Scan(f, to2, func(k, v uint64) bool { got = append(got, v); return true })
	if len(got) != 5 || got[0] != 700 || got[4] != 704 {
		t.Errorf("group scan got %v", got)
	}
}

// Property test: random inserts against a shadow map under a tiny pool
// (constant eviction), then verify Get and full Scan agree with the model.
func TestRandomAgainstShadow(t *testing.T) {
	_, pool, tr := newTree(t, 8)
	rng := xrand.New(321)
	shadow := map[uint64]uint64{}
	for op := 0; op < 8000; op++ {
		k := uint64(rng.Intn(1 << 16))
		v := rng.Uint64()
		err := tr.Insert(k, v)
		if _, dup := shadow[k]; dup {
			if !errors.Is(err, ErrDuplicate) {
				t.Fatalf("op %d: duplicate %d accepted", op, k)
			}
			continue
		}
		if err != nil {
			t.Fatalf("op %d: insert(%d): %v", op, k, err)
		}
		shadow[k] = v
		if op%500 == 0 {
			if err := pool.FlushAll(); err != nil {
				t.Fatal(err)
			}
		}
	}
	if tr.Len() != len(shadow) {
		t.Fatalf("Len = %d, shadow %d", tr.Len(), len(shadow))
	}
	for k, v := range shadow {
		got, err := tr.Get(k)
		if err != nil || got != v {
			t.Fatalf("Get(%d) = %d, %v; want %d", k, got, err, v)
		}
	}
	// Full scan agrees with the sorted shadow.
	visited := 0
	var prev uint64
	first := true
	tr.Scan(0, ^uint64(0), func(k, v uint64) bool {
		if !first && k <= prev {
			t.Fatalf("scan order violated at %d", k)
		}
		if shadow[k] != v {
			t.Fatalf("scan value mismatch at %d", k)
		}
		prev, first = k, false
		visited++
		return true
	})
	if visited != len(shadow) {
		t.Errorf("scan visited %d of %d", visited, len(shadow))
	}
}

func TestStatsAccounting(t *testing.T) {
	_, _, tr := newTree(t, 64)
	for i := uint64(0); i < 1000; i++ {
		tr.Insert(i, i)
	}
	if tr.Pages() < 5 {
		t.Errorf("Pages = %d after 1000 inserts", tr.Pages())
	}
	if tr.Len() != 1000 {
		t.Errorf("Len = %d", tr.Len())
	}
}
