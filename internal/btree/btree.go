package btree

import (
	"encoding/binary"
	"errors"
	"fmt"

	"complexobj/internal/buffer"
	"complexobj/internal/disk"
)

// Node page layout (within the 2012-byte payload):
//
//	[0]    u8   flags (1 = leaf)
//	[1:3)  u16  number of entries
//	[3:7)  u32  rightmost child page (internal) / next leaf page (leaf)
//	entries:
//	  leaf:     u64 key + u64 value    (16 bytes)
//	  internal: u64 key + u32 child    (12 bytes; child holds keys <= key)
const (
	hdrSize       = 7
	leafEntry     = 16
	internalEntry = 12
	flagLeaf      = 1
)

// Errors returned by the tree.
var (
	ErrDuplicate = errors.New("btree: duplicate key")
	ErrNotFound  = errors.New("btree: key not found")
)

// Tree is a B+-tree rooted at a fixed page. The zero value is unusable;
// call New.
type Tree struct {
	dev  *disk.Disk
	pool *buffer.Pool
	root disk.PageID
	// capacity per node kind, derived from the page size.
	leafCap, internalCap int

	height  int
	pages   int
	entries int
}

// New allocates an empty tree.
func New(dev *disk.Disk, pool *buffer.Pool) (*Tree, error) {
	eff := dev.EffectivePageSize()
	t := &Tree{
		dev:         dev,
		pool:        pool,
		leafCap:     (eff - hdrSize) / leafEntry,
		internalCap: (eff - hdrSize) / internalEntry,
		height:      1,
		pages:       1,
	}
	pid, err := dev.Allocate(1)
	if err != nil {
		return nil, err
	}
	t.root = pid
	f, err := pool.Fix(pid)
	if err != nil {
		return nil, err
	}
	pool.MarkDirty(f)
	initNode(f.Data, true)
	pool.Unfix(pid, true)
	return t, nil
}

// Height returns the tree height in levels (1 = a single leaf).
func (t *Tree) Height() int { return t.height }

// Pages returns the number of node pages.
func (t *Tree) Pages() int { return t.pages }

// Len returns the number of stored entries.
func (t *Tree) Len() int { return t.entries }

// Root returns the root page (stable across splits: the root is copied,
// never moved).
func (t *Tree) Root() disk.PageID { return t.root }

// --- node accessors (operate on the raw page image) -------------------------

func payload(raw []byte) []byte { return raw[disk.SysHeaderSize:] }

func initNode(raw []byte, leaf bool) {
	p := payload(raw)
	for i := range p[:hdrSize] {
		p[i] = 0
	}
	if leaf {
		p[0] = flagLeaf
	}
	binary.BigEndian.PutUint32(p[3:7], uint32(disk.InvalidPage))
}

func isLeaf(raw []byte) bool { return payload(raw)[0]&flagLeaf != 0 }

func count(raw []byte) int { return int(binary.BigEndian.Uint16(payload(raw)[1:3])) }

func setCount(raw []byte, n int) { binary.BigEndian.PutUint16(payload(raw)[1:3], uint16(n)) }

func rightPtr(raw []byte) disk.PageID {
	return disk.PageID(binary.BigEndian.Uint32(payload(raw)[3:7]))
}

func setRightPtr(raw []byte, p disk.PageID) {
	binary.BigEndian.PutUint32(payload(raw)[3:7], uint32(p))
}

func leafKey(raw []byte, i int) uint64 {
	return binary.BigEndian.Uint64(payload(raw)[hdrSize+leafEntry*i:])
}

func leafVal(raw []byte, i int) uint64 {
	return binary.BigEndian.Uint64(payload(raw)[hdrSize+leafEntry*i+8:])
}

func setLeafEntry(raw []byte, i int, k, v uint64) {
	base := hdrSize + leafEntry*i
	binary.BigEndian.PutUint64(payload(raw)[base:], k)
	binary.BigEndian.PutUint64(payload(raw)[base+8:], v)
}

func internalKey(raw []byte, i int) uint64 {
	return binary.BigEndian.Uint64(payload(raw)[hdrSize+internalEntry*i:])
}

func internalChild(raw []byte, i int) disk.PageID {
	return disk.PageID(binary.BigEndian.Uint32(payload(raw)[hdrSize+internalEntry*i+8:]))
}

func setInternalEntry(raw []byte, i int, k uint64, child disk.PageID) {
	base := hdrSize + internalEntry*i
	binary.BigEndian.PutUint64(payload(raw)[base:], k)
	binary.BigEndian.PutUint32(payload(raw)[base+8:], uint32(child))
}

// shift moves entries [i, n) one slot right to make room at i.
func shiftEntries(raw []byte, i, n, entrySize int) {
	p := payload(raw)
	src := hdrSize + entrySize*i
	end := hdrSize + entrySize*n
	copy(p[src+entrySize:end+entrySize], p[src:end])
}

// lowerBound returns the first index whose key is >= k.
func lowerBound(raw []byte, k uint64, entrySize int, keyAt func([]byte, int) uint64) int {
	lo, hi := 0, count(raw)
	for lo < hi {
		mid := (lo + hi) / 2
		if keyAt(raw, mid) < k {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// --- operations --------------------------------------------------------------

// Get returns the value stored under key. Each node on the root-to-leaf
// path costs one buffer fix (and a disk read on a cache miss).
func (t *Tree) Get(key uint64) (uint64, error) {
	pid := t.root
	for {
		f, err := t.pool.Fix(pid)
		if err != nil {
			return 0, err
		}
		if isLeaf(f.Data) {
			i := lowerBound(f.Data, key, leafEntry, leafKey)
			var (
				val   uint64
				found bool
			)
			if i < count(f.Data) && leafKey(f.Data, i) == key {
				val, found = leafVal(f.Data, i), true
			}
			t.pool.Unfix(pid, false)
			if !found {
				return 0, fmt.Errorf("%w: %d", ErrNotFound, key)
			}
			return val, nil
		}
		next := t.descend(f.Data, key)
		t.pool.Unfix(pid, false)
		pid = next
	}
}

// descend picks the child to follow for key in an internal node.
func (t *Tree) descend(raw []byte, key uint64) disk.PageID {
	i := lowerBound(raw, key, internalEntry, internalKey)
	if i < count(raw) {
		return internalChild(raw, i)
	}
	return rightPtr(raw)
}

// Scan visits all entries with from <= key <= to in ascending key order;
// fn returning false stops the scan. Leaf pages are fixed one at a time
// following the next-leaf chain.
func (t *Tree) Scan(from, to uint64, fn func(k, v uint64) bool) error {
	if from > to {
		return nil
	}
	// Descend to the leaf containing from.
	pid := t.root
	for {
		f, err := t.pool.Fix(pid)
		if err != nil {
			return err
		}
		if isLeaf(f.Data) {
			t.pool.Unfix(pid, false)
			break
		}
		next := t.descend(f.Data, from)
		t.pool.Unfix(pid, false)
		pid = next
	}
	for pid != disk.InvalidPage {
		f, err := t.pool.Fix(pid)
		if err != nil {
			return err
		}
		n := count(f.Data)
		i := lowerBound(f.Data, from, leafEntry, leafKey)
		for ; i < n; i++ {
			k := leafKey(f.Data, i)
			if k > to {
				t.pool.Unfix(pid, false)
				return nil
			}
			if !fn(k, leafVal(f.Data, i)) {
				t.pool.Unfix(pid, false)
				return nil
			}
		}
		next := rightPtr(f.Data)
		t.pool.Unfix(pid, false)
		pid = next
	}
	return nil
}

// splitResult reports a child split to its parent: child (the original
// page) kept the lower half with sep as its largest key; right is the new
// page holding the upper half. The parent inserts (sep -> child) and
// redirects its old pointer to child onto right.
type splitResult struct {
	split bool
	sep   uint64
	child disk.PageID
	right disk.PageID
}

// Insert stores key -> value. Inserting an existing key fails with
// ErrDuplicate (compose unique keys for multi-maps; see Pack).
func (t *Tree) Insert(key, value uint64) error {
	res, err := t.insertAt(t.root, key, value)
	if err != nil {
		return err
	}
	if res.split {
		// Grow a new root in place: the root page ID must stay stable, so
		// the old root's content has already been copied out to new pages
		// by insertAt (root split path).
		return fmt.Errorf("btree: internal error: unhandled root split")
	}
	t.entries++
	return nil
}

// insertAt inserts into the subtree rooted at pid and handles splits of
// that node. Splitting the root is special-cased so the root page ID
// stays stable: both halves move to fresh pages and the root becomes an
// internal node over them.
func (t *Tree) insertAt(pid disk.PageID, key, value uint64) (splitResult, error) {
	f, err := t.pool.Fix(pid)
	if err != nil {
		return splitResult{}, err
	}
	if isLeaf(f.Data) {
		return t.insertLeaf(pid, f, key, value)
	}
	child := t.descend(f.Data, key)
	t.pool.Unfix(pid, false)
	res, err := t.insertAt(child, key, value)
	if err != nil {
		return splitResult{}, err
	}
	if !res.split {
		return splitResult{}, nil
	}
	// Install the new separator into this node: (sep -> child) slots in
	// before the old pointer to child, which is redirected to right.
	f, err = t.pool.Fix(pid)
	if err != nil {
		return splitResult{}, err
	}
	n := count(f.Data)
	i := lowerBound(f.Data, res.sep, internalEntry, internalKey)
	if n < t.internalCap {
		t.pool.MarkDirty(f) // promotes a borrowed frame before mutation
		shiftEntries(f.Data, i, n, internalEntry)
		setInternalEntry(f.Data, i, res.sep, res.child)
		setCount(f.Data, n+1)
		t.redirect(f.Data, i+1, res.child, res.right)
		t.pool.Unfix(pid, true)
		return splitResult{}, nil
	}
	out, err := t.splitInternal(pid, f, i, res.sep, res.child, res.right)
	if err != nil {
		return splitResult{}, err
	}
	return out, nil
}

// redirect rewires the first pointer at or after position from that
// references oldChild onto newChild (checking the rightmost pointer too).
func (t *Tree) redirect(raw []byte, from int, oldChild, newChild disk.PageID) {
	n := count(raw)
	for j := from; j < n; j++ {
		if internalChild(raw, j) == oldChild {
			setInternalEntry(raw, j, internalKey(raw, j), newChild)
			return
		}
	}
	if rightPtr(raw) == oldChild {
		setRightPtr(raw, newChild)
	}
}

func (t *Tree) insertLeaf(pid disk.PageID, f *buffer.Frame, key, value uint64) (splitResult, error) {
	n := count(f.Data)
	i := lowerBound(f.Data, key, leafEntry, leafKey)
	if i < n && leafKey(f.Data, i) == key {
		t.pool.Unfix(pid, false)
		return splitResult{}, fmt.Errorf("%w: %d", ErrDuplicate, key)
	}
	if n < t.leafCap {
		t.pool.MarkDirty(f) // promotes a borrowed frame before mutation
		shiftEntries(f.Data, i, n, leafEntry)
		setLeafEntry(f.Data, i, key, value)
		setCount(f.Data, n+1)
		t.pool.Unfix(pid, true)
		return splitResult{}, nil
	}
	return t.splitLeaf(pid, f, i, key, value)
}

// splitLeaf splits a full leaf and inserts (key, value) into the proper
// half. The original page keeps the lower half so the leaf chain stays
// valid; a new right sibling takes the upper half. For a root leaf both
// halves move to fresh pages (the root page ID stays stable).
func (t *Tree) splitLeaf(pid disk.PageID, f *buffer.Frame, i int, key, value uint64) (splitResult, error) {
	n := count(f.Data) // == leafCap
	// Gather all entries including the new one, in order.
	keys := make([]uint64, 0, n+1)
	vals := make([]uint64, 0, n+1)
	for j := 0; j < n; j++ {
		if j == i {
			keys = append(keys, key)
			vals = append(vals, value)
		}
		keys = append(keys, leafKey(f.Data, j))
		vals = append(vals, leafVal(f.Data, j))
	}
	if i == n {
		keys = append(keys, key)
		vals = append(vals, value)
	}
	mid := (n + 1) / 2

	if pid == t.root {
		// Root split: two fresh leaves, root becomes internal.
		leftPid, rightPid, err := t.allocatePair()
		if err != nil {
			t.pool.Unfix(pid, false)
			return splitResult{}, err
		}
		if err := t.fillLeafPair(leftPid, rightPid, keys, vals, mid); err != nil {
			t.pool.Unfix(pid, false)
			return splitResult{}, err
		}
		t.pool.MarkDirty(f)
		initNode(f.Data, false)
		setInternalEntry(f.Data, 0, keys[mid-1], leftPid)
		setCount(f.Data, 1)
		setRightPtr(f.Data, rightPid)
		t.pool.Unfix(pid, true)
		t.height++
		return splitResult{}, nil
	}

	// Non-root: new right sibling takes the upper half; pid keeps the
	// lower half and chains to the sibling, which inherits pid's old next
	// pointer.
	rightPid, err := t.allocateOne()
	if err != nil {
		t.pool.Unfix(pid, false)
		return splitResult{}, err
	}
	rf, err := t.pool.Fix(rightPid)
	if err != nil {
		t.pool.Unfix(pid, false)
		return splitResult{}, err
	}
	t.pool.MarkDirty(rf)
	initNode(rf.Data, true)
	for j := mid; j < len(keys); j++ {
		setLeafEntry(rf.Data, j-mid, keys[j], vals[j])
	}
	setCount(rf.Data, len(keys)-mid)
	setRightPtr(rf.Data, rightPtr(f.Data))
	t.pool.Unfix(rightPid, true)

	t.pool.MarkDirty(f)
	for j := 0; j < mid; j++ {
		setLeafEntry(f.Data, j, keys[j], vals[j])
	}
	setCount(f.Data, mid)
	setRightPtr(f.Data, rightPid)
	t.pool.Unfix(pid, true)
	return splitResult{split: true, sep: keys[mid-1], child: pid, right: rightPid}, nil
}

// splitInternal splits a full internal node while installing the child
// split (sep -> newChild, redirect to newRight) at position i. The
// original page keeps the lower half; a new page takes the upper half.
func (t *Tree) splitInternal(pid disk.PageID, f *buffer.Frame, i int, sep uint64, newChild, newRight disk.PageID) (splitResult, error) {
	n := count(f.Data) // == internalCap
	keys := make([]uint64, 0, n+1)
	kids := make([]disk.PageID, 0, n+2)
	for j := 0; j < n; j++ {
		if j == i {
			keys = append(keys, sep)
			kids = append(kids, newChild)
		}
		keys = append(keys, internalKey(f.Data, j))
		kids = append(kids, internalChild(f.Data, j))
	}
	if i == n {
		keys = append(keys, sep)
		kids = append(kids, newChild)
	}
	kids = append(kids, rightPtr(f.Data))
	// Redirect the old pointer to newChild (now covering only the lower
	// half) onto newRight; it is the first pointer after position i that
	// still references newChild.
	for j := i + 1; j < len(kids); j++ {
		if kids[j] == newChild {
			kids[j] = newRight
			break
		}
	}
	mid := (len(keys) + 1) / 2 // keys[mid-1] moves up

	if pid == t.root {
		leftPid, rightPid, err := t.allocatePair()
		if err != nil {
			t.pool.Unfix(pid, false)
			return splitResult{}, err
		}
		if err := t.fillInternalPair(leftPid, rightPid, keys, kids, mid); err != nil {
			t.pool.Unfix(pid, false)
			return splitResult{}, err
		}
		t.pool.MarkDirty(f)
		initNode(f.Data, false)
		setInternalEntry(f.Data, 0, keys[mid-1], leftPid)
		setCount(f.Data, 1)
		setRightPtr(f.Data, rightPid)
		t.pool.Unfix(pid, true)
		t.height++
		return splitResult{}, nil
	}

	rightPid, err := t.allocateOne()
	if err != nil {
		t.pool.Unfix(pid, false)
		return splitResult{}, err
	}
	rf, err := t.pool.Fix(rightPid)
	if err != nil {
		t.pool.Unfix(pid, false)
		return splitResult{}, err
	}
	t.pool.MarkDirty(rf)
	initNode(rf.Data, false)
	remain := keys[mid:]
	remainKids := kids[mid:]
	for j := range remain {
		setInternalEntry(rf.Data, j, remain[j], remainKids[j])
	}
	setCount(rf.Data, len(remain))
	setRightPtr(rf.Data, remainKids[len(remain)])
	t.pool.Unfix(rightPid, true)

	t.pool.MarkDirty(f)
	for j := 0; j < mid-1; j++ {
		setInternalEntry(f.Data, j, keys[j], kids[j])
	}
	setCount(f.Data, mid-1)
	setRightPtr(f.Data, kids[mid-1])
	t.pool.Unfix(pid, true)
	return splitResult{split: true, sep: keys[mid-1], child: pid, right: rightPid}, nil
}

func (t *Tree) allocateOne() (disk.PageID, error) {
	pid, err := t.dev.Allocate(1)
	if err != nil {
		return disk.InvalidPage, err
	}
	t.pages++
	return pid, nil
}

func (t *Tree) allocatePair() (disk.PageID, disk.PageID, error) {
	pid, err := t.dev.Allocate(2)
	if err != nil {
		return disk.InvalidPage, disk.InvalidPage, err
	}
	t.pages += 2
	return pid, pid + 1, nil
}

func (t *Tree) fillLeafPair(leftPid, rightPid disk.PageID, keys, vals []uint64, mid int) error {
	lf, err := t.pool.Fix(leftPid)
	if err != nil {
		return err
	}
	t.pool.MarkDirty(lf)
	initNode(lf.Data, true)
	for j := 0; j < mid; j++ {
		setLeafEntry(lf.Data, j, keys[j], vals[j])
	}
	setCount(lf.Data, mid)
	setRightPtr(lf.Data, rightPid)
	t.pool.Unfix(leftPid, true)

	rf, err := t.pool.Fix(rightPid)
	if err != nil {
		return err
	}
	t.pool.MarkDirty(rf)
	initNode(rf.Data, true)
	for j := mid; j < len(keys); j++ {
		setLeafEntry(rf.Data, j-mid, keys[j], vals[j])
	}
	setCount(rf.Data, len(keys)-mid)
	t.pool.Unfix(rightPid, true)
	return nil
}

func (t *Tree) fillInternalPair(leftPid, rightPid disk.PageID, keys []uint64, kids []disk.PageID, mid int) error {
	lf, err := t.pool.Fix(leftPid)
	if err != nil {
		return err
	}
	t.pool.MarkDirty(lf)
	initNode(lf.Data, false)
	for j := 0; j < mid-1; j++ {
		setInternalEntry(lf.Data, j, keys[j], kids[j])
	}
	setCount(lf.Data, mid-1)
	setRightPtr(lf.Data, kids[mid-1])
	t.pool.Unfix(leftPid, true)

	rf, err := t.pool.Fix(rightPid)
	if err != nil {
		return err
	}
	t.pool.MarkDirty(rf)
	initNode(rf.Data, false)
	remain := keys[mid:]
	remainKids := kids[mid:]
	for j := range remain {
		setInternalEntry(rf.Data, j, remain[j], remainKids[j])
	}
	setCount(rf.Data, len(remain))
	setRightPtr(rf.Data, remainKids[len(remain)])
	t.pool.Unfix(rightPid, true)
	return nil
}

// Pack builds a composite key from a group identifier and a sequence
// number, so multi-maps (one root key, many tuples) can use unique tree
// keys while Scan(PackRange(group)) retrieves the whole group in order.
func Pack(group uint32, seq uint32) uint64 { return uint64(group)<<32 | uint64(seq) }

// PackRange returns the key range covering every sequence number of a
// group.
func PackRange(group uint32) (from, to uint64) {
	return Pack(group, 0), Pack(group, ^uint32(0))
}
