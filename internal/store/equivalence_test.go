package store

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"complexobj/cobench"
)

// equivConfig is a randomly drawn small benchmark configuration for the
// cross-model equivalence property.
type equivConfig struct {
	N         int
	Prob      float64
	Fanout    int
	MaxSeeing int
	Seed      uint64
}

// Generate implements quick.Generator with bounds that keep each case
// cheap while covering degenerate shapes (no platforms, no sightseeings,
// high fanout).
func (equivConfig) Generate(rng *rand.Rand, _ int) reflect.Value {
	c := equivConfig{
		N:         5 + rng.Intn(40),
		Prob:      float64(rng.Intn(11)) / 10, // 0.0 .. 1.0
		Fanout:    1 + rng.Intn(4),
		MaxSeeing: rng.Intn(20),
		Seed:      rng.Uint64(),
	}
	return reflect.ValueOf(c)
}

// TestQuickCrossModelEquivalence is the central storage-correctness
// property: for any generated extension, every storage model must return
// exactly the same objects through every read path.
func TestQuickCrossModelEquivalence(t *testing.T) {
	f := func(c equivConfig) bool {
		cfg := cobench.Config{N: c.N, Prob: c.Prob, Fanout: c.Fanout, MaxSeeing: c.MaxSeeing, Seed: c.Seed}
		stations, err := cobench.Generate(cfg)
		if err != nil {
			t.Logf("generate: %v", err)
			return false
		}
		models := make([]Model, 0, len(AllKinds()))
		for _, k := range AllKinds() {
			m := mustNew(k, Options{BufferPages: 64})
			if err := m.Load(stations); err != nil {
				t.Logf("%s load: %v", k, err)
				return false
			}
			models = append(models, m)
		}
		// Scan equivalence.
		for _, m := range models {
			err := m.ScanAll(func(i int, s *cobench.Station) error {
				if !s.Equal(stations[i]) {
					return fmt.Errorf("%s: scan mismatch at %d", m.Kind(), i)
				}
				return nil
			})
			if err != nil {
				t.Log(err)
				return false
			}
		}
		// Point reads and navigation on a few sampled objects.
		for probe := 0; probe < 3; probe++ {
			i := (probe*7 + int(c.Seed%5)) % c.N
			want := stations[i]
			for _, m := range models {
				if m.Kind() != NSM {
					got, err := m.FetchByAddress(i)
					if err != nil || !got.Equal(want) {
						t.Logf("%s: FetchByAddress(%d): %v", m.Kind(), i, err)
						return false
					}
				}
				root, kids, err := m.Navigate(i)
				if err != nil || root != want.Root() || len(kids) != len(want.Children()) {
					t.Logf("%s: Navigate(%d): %v", m.Kind(), i, err)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickUpdateObjectEquivalence mutates random objects structurally on
// every model and checks the models still agree with an in-memory shadow.
func TestQuickUpdateObjectEquivalence(t *testing.T) {
	f := func(seed uint64) bool {
		cfg := cobench.DefaultConfig().WithN(20)
		cfg.Seed = seed
		stations, err := cobench.Generate(cfg)
		if err != nil {
			return false
		}
		// Shadow copy to mutate alongside the stores.
		shadow := make([]*cobench.Station, len(stations))
		for i, s := range stations {
			c := *s
			shadow[i] = &c
		}
		models := make([]Model, 0, len(AllKinds()))
		for _, k := range AllKinds() {
			m := mustNew(k, Options{BufferPages: 64})
			if err := m.Load(stations); err != nil {
				return false
			}
			models = append(models, m)
		}
		mutations := []func(s *cobench.Station) error{
			func(s *cobench.Station) error { s.Seeings = nil; return nil },
			func(s *cobench.Station) error {
				s.Seeings = append(s.Seeings, cobench.Sightseeing{
					Nr: 7, Description: "d", Location: "l", History: "h", Remarks: "r"})
				return nil
			},
			func(s *cobench.Station) error { s.Name = "mutated"; return nil },
			func(s *cobench.Station) error {
				if len(s.Platforms) > 0 {
					s.Platforms = s.Platforms[:len(s.Platforms)-1]
				}
				return nil
			},
		}
		for step := 0; step < 4; step++ {
			i := int((seed >> (step * 8)) % 20)
			mut := mutations[step%len(mutations)]
			sh := shadow[i]
			if err := mut(sh); err != nil {
				return false
			}
			sh.NoPlatform = int32(len(sh.Platforms))
			sh.NoSeeing = int32(len(sh.Seeings))
			for _, m := range models {
				if err := m.UpdateObject(i, mut); err != nil {
					t.Logf("%s: UpdateObject: %v", m.Kind(), err)
					return false
				}
			}
		}
		for _, m := range models {
			if err := m.Flush(); err != nil {
				return false
			}
			if err := m.Engine().ColdCache(); err != nil {
				return false
			}
			err := m.ScanAll(func(i int, s *cobench.Station) error {
				if !s.Equal(shadow[i]) {
					return fmt.Errorf("%s: object %d diverged from shadow", m.Kind(), i)
				}
				return nil
			})
			if err != nil {
				t.Log(err)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 8}); err != nil {
		t.Fatal(err)
	}
}
