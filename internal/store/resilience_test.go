package store

import (
	"testing"

	"complexobj/cobench"
	"complexobj/internal/disk"
	"complexobj/internal/faultdisk"
)

// TestNewEngineValidationErrors: invalid configurations must come back as
// errors, not construction panics.
func TestNewEngineValidationErrors(t *testing.T) {
	if _, err := NewEngine(Options{PageSize: disk.SysHeaderSize}); err == nil {
		t.Error("page size equal to the system header accepted")
	}
	if _, err := NewEngine(Options{PageSize: 16}); err == nil {
		t.Error("page size below the system header accepted")
	}
	if _, err := NewEngine(Options{BufferPages: -1}); err == nil {
		t.Error("negative buffer capacity accepted")
	}
}

// TestNewEngineFailureLeaksNoBaseRef: a constructor that fails validation
// over a COW spec must not have taken (and lost) a base-arena reference —
// the leak would keep snapshot mappings alive forever in a long-lived
// server that retries engine construction.
func TestNewEngineFailureLeaksNoBaseRef(t *testing.T) {
	arena := disk.NewBaseArena(make([]byte, 4*disk.DefaultPageSize))
	defer arena.Release()
	spec := disk.BackendSpec{Kind: disk.COWArena, Base: arena}

	if _, err := NewEngine(Options{PageSize: 16, Backend: spec}); err == nil {
		t.Fatal("invalid page size accepted")
	}
	if got := arena.Refs(); got != 1 {
		t.Errorf("refs after failed NewEngine (bad page size) = %d, want 1", got)
	}
	if _, err := NewEngine(Options{BufferPages: -5, Backend: spec}); err == nil {
		t.Fatal("negative buffer capacity accepted")
	}
	if got := arena.Refs(); got != 1 {
		t.Errorf("refs after failed NewEngine (bad buffer) = %d, want 1", got)
	}

	// A successful engine takes exactly one reference and returns it on
	// Close — the baseline the failure paths are measured against.
	eng, err := NewEngine(Options{Backend: spec})
	if err != nil {
		t.Fatal(err)
	}
	if got := arena.Refs(); got != 2 {
		t.Errorf("refs with one live engine = %d, want 2", got)
	}
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
	if got := arena.Refs(); got != 1 {
		t.Errorf("refs after engine Close = %d, want 1", got)
	}
}

// TestSharedBaseOpenFailureLeaksNoRef forces every failure stage of
// SharedBase.Open — pre-backend validation and post-engine metadata
// restore — and asserts the base arena's reference count is restored, so
// a server whose view construction fails under faults does not pin the
// snapshot mapping.
func TestSharedBaseOpenFailureLeaksNoRef(t *testing.T) {
	arena := disk.NewBaseArena(make([]byte, 4*disk.DefaultPageSize))
	defer arena.Release()
	base, err := NewSharedBase(DSM, disk.DefaultPageSize, []byte("not a meta blob"), arena)
	if err != nil {
		t.Fatal(err)
	}

	// Validation failures (before the engine exists).
	if _, err := base.Open(Options{PageSize: 1024}); err == nil {
		t.Error("conflicting page size accepted")
	}
	if _, err := base.Open(Options{CountIndexIO: true}); err == nil {
		t.Error("counted-index options accepted from a shared base")
	}
	if _, err := base.Open(Options{BufferPages: -1}); err == nil {
		t.Error("negative buffer capacity accepted")
	}
	if got := arena.Refs(); got != 1 {
		t.Errorf("refs after validation failures = %d, want 1", got)
	}

	// RestoreMeta failure (after the engine - and its base ref - exist).
	if _, err := base.Open(Options{BufferPages: 8}); err == nil {
		t.Fatal("garbage directory metadata restored")
	}
	if got := arena.Refs(); got != 1 {
		t.Errorf("refs after RestoreMeta failure = %d, want 1 (engine ref leaked)", got)
	}
}

// TestFaultedViewsLeakNoRefs is the end-to-end leak pin: open COW views
// under a hostile schedule, let some requests fail, close everything, and
// require the base arena back at exactly one reference.
func TestFaultedViewsLeakNoRefs(t *testing.T) {
	stations := testExtension(t, 20)
	orig := loadModel(t, DSM, stations)
	base, err := Freeze(orig)
	if err != nil {
		t.Fatal(err)
	}
	orig.Engine().Close()
	defer base.Release()

	in := faultdisk.New(faultdisk.Spec{Seed: 11, Read: 0.4, Write: 0.4, Perm: 0.05})
	for i := 0; i < 8; i++ {
		m, err := base.Open(Options{BufferPages: 8, Faults: in})
		if err != nil {
			continue // construction failed cleanly; ref must be returned
		}
		// Run a few operations; failures are expected and irrelevant -
		// only the ref accounting is under test.
		m.FetchByAddress(i % 20)
		m.UpdateRoots([]int32{int32(i % 20)}, func(i int32, r *cobench.RootRecord) { r.NoPlatform++ })
		m.Engine().Close()
	}
	if got := refsOf(base); got != 1 {
		t.Errorf("refs after faulted view churn = %d, want 1", got)
	}
}

// refsOf exposes the base arena's reference count to the leak tests.
func refsOf(b *SharedBase) int { return b.arena.Refs() }

// TestEngineWrapsBackendWithFaults: Options.Faults must interpose the
// injector under the device (visible through the Unwrap convention).
func TestEngineWrapsBackendWithFaults(t *testing.T) {
	in := faultdisk.New(faultdisk.Spec{Seed: 1})
	eng, err := NewEngine(Options{BufferPages: 8, Faults: in})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	u, ok := eng.Dev.Backend().(interface{ Unwrap() disk.Backend })
	if !ok {
		t.Fatal("engine backend is not the fault wrapper")
	}
	if u.Unwrap() == nil {
		t.Fatal("fault wrapper has no substrate")
	}
}

// TestTransientScheduleKeepsCountersIdentical is the bit-identity pin at
// the store level: a model under a transient-read-only schedule (absorbed
// by the device retry) measures exactly the counters of a fault-free
// model.
func TestTransientScheduleKeepsCountersIdentical(t *testing.T) {
	stations := testExtension(t, 30)

	clean := loadModel(t, DSM, stations)
	defer clean.Engine().Close()
	if err := clean.ScanAll(func(int, *cobench.Station) error { return nil }); err != nil {
		t.Fatal(err)
	}
	want := clean.Engine().Stats()

	in := faultdisk.New(faultdisk.Spec{Seed: 5, Read: 0.05})
	faulted, err := New(DSM, Options{BufferPages: 256, Faults: in})
	if err != nil {
		t.Fatal(err)
	}
	defer faulted.Engine().Close()
	if err := faulted.Load(stations); err != nil {
		t.Fatalf("load under transient reads: %v", err)
	}
	if err := faulted.Engine().ColdCache(); err != nil {
		t.Fatal(err)
	}
	faulted.Engine().ResetStats()
	if err := faulted.ScanAll(func(int, *cobench.Station) error { return nil }); err != nil {
		t.Fatalf("scan under transient reads: %v", err)
	}
	if got := faulted.Engine().Stats(); got != want {
		t.Errorf("counters diverged under transient faults:\n got %+v\nwant %+v", got, want)
	}
	if in.Counters().ReadFaults == 0 {
		t.Error("schedule injected no read faults; the pin is vacuous")
	}
	if faulted.Engine().Dev.Retries() == 0 {
		t.Error("no retries recorded; the pin is vacuous")
	}
}
