package store

import (
	"bytes"
	"errors"
	"fmt"
	"sync"

	"complexobj/internal/disk"
)

// ErrStaleBase reports a Promote built against a generation the base has
// already moved past: another commit folded first. The caller's overlay
// is untouched; it can re-run against a fresh view of the new generation.
var ErrStaleBase = errors.New("store: shared base generation moved")

// SharedBase is the frozen, immutable state of one loaded storage model:
// the raw device arena plus the model's directory metadata. Any number of
// engines can open copy-on-write views of one base concurrently — each
// view reads the shared arena and keeps its writes in a private
// page-granular overlay — so the parallel experiment matrix pays for one
// loaded extension per model kind instead of one per worker. A restored
// view starts with a cold cache and zeroed counters and measures
// bit-identically to a freshly loaded model (the same guarantee the .codb
// snapshot round-trip pins).
//
// A base advances through generations: the arena of any one generation
// stays immutable forever, but Promote can fold a committed overlay into
// a new arena and atomically swap it in as generation n+1. Views capture
// the generation they opened against and keep reading it — their COW
// backends hold their own arena references, so an old generation's
// storage drains only when its last view closes — while new views open
// over the promoted state. Every accessor that touches the swappable
// state is guarded; a *SharedBase is safe for concurrent use.
type SharedBase struct {
	kind     Kind
	pageSize int

	mu       sync.RWMutex
	gen      uint64
	numPages int
	meta     []byte
	arena    *disk.BaseArena
}

// NewSharedBase assembles a base from raw parts (the snapshot package uses
// this to lift one model of a .codb file into a shareable base without
// constructing a throwaway engine). The arena length must be an exact
// multiple of the page size.
func NewSharedBase(k Kind, pageSize int, meta []byte, arena *disk.BaseArena) (*SharedBase, error) {
	if pageSize <= 0 {
		return nil, fmt.Errorf("store: shared base with page size %d", pageSize)
	}
	if arena.Len()%pageSize != 0 {
		return nil, fmt.Errorf("store: shared base arena of %d bytes is not a multiple of page size %d",
			arena.Len(), pageSize)
	}
	return &SharedBase{
		kind:     k,
		pageSize: pageSize,
		numPages: arena.Len() / pageSize,
		meta:     meta,
		arena:    arena,
	}, nil
}

// Freeze flushes m and copies its device arena and directory metadata into
// an immutable SharedBase. The model keeps working afterwards (its dirty
// pages are flushed as a side effect); the base never observes later
// changes. This is the in-memory counterpart of writing and re-opening a
// snapshot, at the cost of one arena copy total — instead of one per
// engine that wants the loaded state.
func Freeze(m Model) (*SharedBase, error) {
	if err := m.Flush(); err != nil {
		return nil, fmt.Errorf("store: freeze flush %s: %w", m.Kind(), err)
	}
	meta, err := m.SnapshotMeta()
	if err != nil {
		return nil, fmt.Errorf("store: freeze meta %s: %w", m.Kind(), err)
	}
	dev := m.Engine().Dev
	n := dev.NumPages() * dev.PageSize()
	buf := bytes.NewBuffer(make([]byte, 0, n))
	if err := dev.DumpTo(buf); err != nil {
		return nil, fmt.Errorf("store: freeze arena %s: %w", m.Kind(), err)
	}
	return NewSharedBase(m.Kind(), dev.PageSize(), meta, disk.NewBaseArena(buf.Bytes()))
}

// Kind returns the storage model the base holds.
func (b *SharedBase) Kind() Kind { return b.kind }

// PageSize returns the device page size of the frozen arena.
func (b *SharedBase) PageSize() int { return b.pageSize }

// Gen returns the current generation: 0 for a freshly frozen base,
// incremented by every Promote. A view compares its captured generation
// against this to detect that it is reading superseded state.
func (b *SharedBase) Gen() uint64 {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return b.gen
}

// NumPages returns the number of frozen pages of the current generation.
func (b *SharedBase) NumPages() int {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return b.numPages
}

// ArenaBytes returns the size of the shared arena in bytes (memory
// accounting: this is paid once, regardless of how many views are open).
func (b *SharedBase) ArenaBytes() int {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return b.arena.Len()
}

// Mapped reports whether the base arena is an mmap of the snapshot file
// (paged in on demand) rather than a heap copy. Promotion always builds
// heap arenas, so this can flip to false after the first commit.
func (b *SharedBase) Mapped() bool {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return b.arena.Mapped()
}

// Meta returns the directory metadata of the current generation (the
// checkpoint writer persists it alongside the arena). Read-only.
func (b *SharedBase) Meta() []byte {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return b.meta
}

// Release drops the owner reference on the current arena. Open views hold
// their own references, so the arena storage — heap slice or snapshot
// file mapping — is released only once the last view closes too; opening
// new views after Release is a bug (the base may already be gone).
func (b *SharedBase) Release() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.arena.Release()
}

// SnapshotState captures one consistent generation for a checkpoint
// writer: the generation number, its page count and metadata, and the
// arena holding one extra reference owned by the caller (Release it when
// the checkpoint is written). A Promote racing this call produces either
// wholly the old or wholly the new generation, never a mix.
func (b *SharedBase) SnapshotState() (gen uint64, numPages int, meta []byte, arena *disk.BaseArena) {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return b.gen, b.numPages, b.meta, b.arena.Retain()
}

// baseState is the consistent snapshot a view captures at open: the
// generation it reads, and that generation's page count and metadata
// (Recycle restores these — a recycled view stays on its generation; the
// pool decides whether a stale view is worth keeping).
type baseState struct {
	gen      uint64
	numPages int
	meta     []byte
}

// openState builds a model over a fresh copy-on-write view of the
// current generation and returns the captured state. The arena reference
// is taken under the lock so a concurrent Promote cannot release the
// generation out from under the open.
func (b *SharedBase) openState(o Options) (Model, baseState, error) {
	if o.PageSize != 0 && o.PageSize != b.pageSize {
		return nil, baseState{}, fmt.Errorf("store: page size %d requested, shared base has %d", o.PageSize, b.pageSize)
	}
	if o.CountIndexIO {
		return nil, baseState{}, fmt.Errorf("store: counted index I/O is rebuilt per run and cannot open from a shared base")
	}
	b.mu.RLock()
	st := baseState{gen: b.gen, numPages: b.numPages, meta: b.meta}
	arena := b.arena.Retain()
	b.mu.RUnlock()
	defer arena.Release()
	o.PageSize = b.pageSize
	o.Backend = disk.BackendSpec{Kind: disk.COWArena, Base: arena}
	eng, err := NewEngine(o)
	if err != nil {
		return nil, baseState{}, err
	}
	m := NewWithEngine(b.kind, eng)
	if err := m.RestoreMeta(st.meta); err != nil {
		eng.Close()
		return nil, baseState{}, fmt.Errorf("store: open shared base %s: %w", b.kind, err)
	}
	return m, st, nil
}

// Open builds a model over a fresh copy-on-write view of the base. The
// options select the runtime knobs (buffer size, policy); the page size
// comes from the base and must not conflict with a non-zero o.PageSize,
// and any configured backend spec is superseded by the COW view. Closing
// the returned model's engine releases only its private overlay.
func (b *SharedBase) Open(o Options) (Model, error) {
	m, _, err := b.openState(o)
	return m, err
}

// Promote folds one committed overlay into the base as the next
// generation: a new arena of numPages pages — the fromGen arena's
// content with the overlay images applied — and the committed metadata
// are swapped in atomically, and the generation number advances. The
// images in pages are copied; the caller keeps ownership. fromGen must
// be the current generation (the optimistic-concurrency check: a commit
// is built against the generation its view read) or the promote fails
// with ErrStaleBase, changing nothing. The superseded arena's owner
// reference moves to the new one; in-flight views of old generations
// keep their own references and drain independently.
//
// Promotion is pure memory management: it moves no paper counter, like
// DumpTo/Restore and snapshot writes.
func (b *SharedBase) Promote(fromGen uint64, numPages int, meta []byte, pages map[int][]byte) (uint64, error) {
	if numPages < 0 {
		return 0, fmt.Errorf("store: promote %s to %d pages", b.kind, numPages)
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.gen != fromGen {
		return 0, fmt.Errorf("%w: %s at generation %d, commit built on %d", ErrStaleBase, b.kind, b.gen, fromGen)
	}
	next := disk.NewPromotedArena(b.arena, b.pageSize, numPages, pages)
	old := b.arena
	b.arena = next
	b.numPages = numPages
	b.meta = append([]byte(nil), meta...)
	b.gen++
	if err := old.Release(); err != nil {
		return 0, fmt.Errorf("store: promote %s: release generation %d: %w", b.kind, b.gen-1, err)
	}
	return b.gen, nil
}
