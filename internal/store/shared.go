package store

import (
	"bytes"
	"fmt"

	"complexobj/internal/disk"
)

// SharedBase is the frozen, immutable state of one loaded storage model:
// the raw device arena plus the model's directory metadata. Any number of
// engines can open copy-on-write views of one base concurrently — each
// view reads the shared arena and keeps its writes in a private
// page-granular overlay — so the parallel experiment matrix pays for one
// loaded extension per model kind instead of one per worker. A restored
// view starts with a cold cache and zeroed counters and measures
// bit-identically to a freshly loaded model (the same guarantee the .codb
// snapshot round-trip pins).
type SharedBase struct {
	kind     Kind
	pageSize int
	numPages int
	meta     []byte
	arena    *disk.BaseArena
}

// NewSharedBase assembles a base from raw parts (the snapshot package uses
// this to lift one model of a .codb file into a shareable base without
// constructing a throwaway engine). The arena length must be an exact
// multiple of the page size.
func NewSharedBase(k Kind, pageSize int, meta []byte, arena *disk.BaseArena) (*SharedBase, error) {
	if pageSize <= 0 {
		return nil, fmt.Errorf("store: shared base with page size %d", pageSize)
	}
	if arena.Len()%pageSize != 0 {
		return nil, fmt.Errorf("store: shared base arena of %d bytes is not a multiple of page size %d",
			arena.Len(), pageSize)
	}
	return &SharedBase{
		kind:     k,
		pageSize: pageSize,
		numPages: arena.Len() / pageSize,
		meta:     meta,
		arena:    arena,
	}, nil
}

// Freeze flushes m and copies its device arena and directory metadata into
// an immutable SharedBase. The model keeps working afterwards (its dirty
// pages are flushed as a side effect); the base never observes later
// changes. This is the in-memory counterpart of writing and re-opening a
// snapshot, at the cost of one arena copy total — instead of one per
// engine that wants the loaded state.
func Freeze(m Model) (*SharedBase, error) {
	if err := m.Flush(); err != nil {
		return nil, fmt.Errorf("store: freeze flush %s: %w", m.Kind(), err)
	}
	meta, err := m.SnapshotMeta()
	if err != nil {
		return nil, fmt.Errorf("store: freeze meta %s: %w", m.Kind(), err)
	}
	dev := m.Engine().Dev
	n := dev.NumPages() * dev.PageSize()
	buf := bytes.NewBuffer(make([]byte, 0, n))
	if err := dev.DumpTo(buf); err != nil {
		return nil, fmt.Errorf("store: freeze arena %s: %w", m.Kind(), err)
	}
	return NewSharedBase(m.Kind(), dev.PageSize(), meta, disk.NewBaseArena(buf.Bytes()))
}

// Kind returns the storage model the base holds.
func (b *SharedBase) Kind() Kind { return b.kind }

// PageSize returns the device page size of the frozen arena.
func (b *SharedBase) PageSize() int { return b.pageSize }

// NumPages returns the number of frozen pages.
func (b *SharedBase) NumPages() int { return b.numPages }

// ArenaBytes returns the size of the shared arena in bytes (memory
// accounting: this is paid once, regardless of how many views are open).
func (b *SharedBase) ArenaBytes() int { return b.arena.Len() }

// Mapped reports whether the base arena is an mmap of the snapshot file
// (paged in on demand) rather than a heap copy.
func (b *SharedBase) Mapped() bool { return b.arena.Mapped() }

// Release drops the owner reference on the base arena. Open views hold
// their own references, so the arena storage — heap slice or snapshot
// file mapping — is released only once the last view closes too; opening
// new views after Release is a bug (the base may already be gone).
func (b *SharedBase) Release() error { return b.arena.Release() }

// Open builds a model over a fresh copy-on-write view of the base. The
// options select the runtime knobs (buffer size, policy); the page size
// comes from the base and must not conflict with a non-zero o.PageSize,
// and any configured backend spec is superseded by the COW view. Closing
// the returned model's engine releases only its private overlay.
func (b *SharedBase) Open(o Options) (Model, error) {
	if o.PageSize != 0 && o.PageSize != b.pageSize {
		return nil, fmt.Errorf("store: page size %d requested, shared base has %d", o.PageSize, b.pageSize)
	}
	if o.CountIndexIO {
		return nil, fmt.Errorf("store: counted index I/O is rebuilt per run and cannot open from a shared base")
	}
	o.PageSize = b.pageSize
	o.Backend = disk.BackendSpec{Kind: disk.COWArena, Base: b.arena}
	eng, err := NewEngine(o)
	if err != nil {
		return nil, err
	}
	m := NewWithEngine(b.kind, eng)
	if err := m.RestoreMeta(b.meta); err != nil {
		eng.Close()
		return nil, fmt.Errorf("store: open shared base %s: %w", b.kind, err)
	}
	return m, nil
}
