package store

import (
	"bytes"
	"testing"

	"complexobj/cobench"
	"complexobj/internal/disk"
)

// TestSharedBaseRoundTrip freezes every loaded storage model and checks a
// COW view restores the full extension: same object count, same layout
// metadata, and every object readable and equal to the original.
func TestSharedBaseRoundTrip(t *testing.T) {
	stations, err := cobench.Generate(cobench.DefaultConfig().WithN(60))
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range AllKinds() {
		t.Run(k.String(), func(t *testing.T) {
			orig := loadModel(t, k, stations)
			defer orig.Engine().Close()
			base, err := Freeze(orig)
			if err != nil {
				t.Fatal(err)
			}
			if base.Kind() != k || base.NumPages() == 0 {
				t.Fatalf("base: kind %s, %d pages", base.Kind(), base.NumPages())
			}
			view, err := base.Open(Options{BufferPages: 200})
			if err != nil {
				t.Fatal(err)
			}
			defer view.Engine().Close()
			if view.NumObjects() != orig.NumObjects() {
				t.Fatalf("view has %d objects, want %d", view.NumObjects(), orig.NumObjects())
			}
			for _, i := range []int{0, 17, 59} {
				want, err := orig.FetchByKey(stations[i].Key)
				if err != nil {
					t.Fatal(err)
				}
				got, err := view.FetchByKey(stations[i].Key)
				if err != nil {
					t.Fatal(err)
				}
				if !want.Equal(got) {
					t.Errorf("object %d differs through the view", i)
				}
			}
			origSizes, viewSizes := orig.Sizes(), view.Sizes()
			if len(origSizes.Relations) != len(viewSizes.Relations) ||
				origSizes.TotalPages() != viewSizes.TotalPages() {
				t.Errorf("layout metadata differs: %+v vs %+v", origSizes, viewSizes)
			}
		})
	}
}

// TestSharedBaseViewIsolation is the store-level overlay regression: one
// view's updates must be invisible to the base and to sibling views, and
// closing the writing view must release only its overlay.
func TestSharedBaseViewIsolation(t *testing.T) {
	stations, err := cobench.Generate(cobench.DefaultConfig().WithN(40))
	if err != nil {
		t.Fatal(err)
	}
	orig := loadModel(t, DASDBSNSM, stations)
	base, err := Freeze(orig)
	if err != nil {
		t.Fatal(err)
	}
	orig.Engine().Close()
	pristineSum := append([]byte(nil), checksumBase(base)...)

	writer, err := base.Open(Options{BufferPages: 200})
	if err != nil {
		t.Fatal(err)
	}
	reader, err := base.Open(Options{BufferPages: 200})
	if err != nil {
		t.Fatal(err)
	}
	defer reader.Engine().Close()

	key := stations[5].Key
	idxs := []int32{5, 11, 23}
	// Same convention as query 3: overwrite the fixed-capacity name so the
	// object structure is unchanged.
	if err := writer.UpdateRoots(idxs, func(i int32, r *cobench.RootRecord) {
		r.Name = "mutated through writer view"
	}); err != nil {
		t.Fatal(err)
	}
	if err := writer.Flush(); err != nil {
		t.Fatal(err)
	}

	got, err := writer.FetchByKey(key)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != "mutated through writer view" {
		t.Fatal("writer does not observe its own flushed update")
	}
	unchanged, err := reader.FetchByKey(key)
	if err != nil {
		t.Fatal(err)
	}
	if unchanged.Name != stations[5].Name {
		t.Fatal("sibling view observes the writer's update")
	}
	if !bytes.Equal(checksumBase(base), pristineSum) {
		t.Fatal("update through a view mutated the shared base arena")
	}

	st, ok := disk.COWStatsOf(writer.Engine().Dev.Backend())
	if !ok {
		t.Fatal("writer view is not COW-backed")
	}
	if st.OverlayPages == 0 {
		t.Fatal("flushed update materialized no overlay pages")
	}
	if st.OverlayBytes >= base.ArenaBytes() {
		t.Fatalf("overlay (%d bytes) not smaller than the base (%d bytes)",
			st.OverlayBytes, base.ArenaBytes())
	}
	rst, _ := disk.COWStatsOf(reader.Engine().Dev.Backend())
	if rst.OverlayPages != 0 {
		t.Fatalf("read-only view materialized %d overlay pages", rst.OverlayPages)
	}

	if err := writer.Engine().Close(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(checksumBase(base), pristineSum) {
		t.Fatal("closing a view damaged the shared base")
	}
	if again, err := reader.FetchByKey(key); err != nil || again.Name != stations[5].Name {
		t.Fatalf("sibling view broken after writer close: %v", err)
	}
}

// checksumBase snapshots the full base arena content (equality probe).
func checksumBase(b *SharedBase) []byte {
	return b.arena.Bytes()
}

// TestSharedBaseRejectsConflicts pins the option validation.
func TestSharedBaseRejectsConflicts(t *testing.T) {
	stations, err := cobench.Generate(cobench.DefaultConfig().WithN(20))
	if err != nil {
		t.Fatal(err)
	}
	m := loadModel(t, NSMIndex, stations)
	defer m.Engine().Close()
	base, err := Freeze(m)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := base.Open(Options{PageSize: 1024}); err == nil {
		t.Error("conflicting page size accepted")
	}
	if _, err := base.Open(Options{CountIndexIO: true}); err == nil {
		t.Error("counted index I/O accepted from a shared base")
	}
}
