package store

import (
	"errors"
	"fmt"

	"complexobj/cobench"
	"complexobj/internal/buffer"
	"complexobj/internal/disk"
	"complexobj/internal/faultdisk"
	"complexobj/internal/iostat"
)

// Kind enumerates the storage models.
type Kind int

const (
	// DSM is the direct storage model (§3.1).
	DSM Kind = iota
	// DASDBSDSM is the direct model with header-directed partial access (§3.2).
	DASDBSDSM
	// NSM is the normalized storage model without any index (§3.3).
	NSM
	// NSMIndex is NSM supported by a (zero-cost, in-memory) index: "a page
	// is read then and only then if a tuple it stores is requested".
	NSMIndex
	// DASDBSNSM is the nested-normalized model with a transformation table (§3.4).
	DASDBSNSM
)

// String implements fmt.Stringer using the paper's names.
func (k Kind) String() string {
	switch k {
	case DSM:
		return "DSM"
	case DASDBSDSM:
		return "DASDBS-DSM"
	case NSM:
		return "NSM"
	case NSMIndex:
		return "NSM+index"
	case DASDBSNSM:
		return "DASDBS-NSM"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// AllKinds lists the storage models in the paper's order.
func AllKinds() []Kind { return []Kind{DSM, DASDBSDSM, NSM, NSMIndex, DASDBSNSM} }

// ErrNoAddressAccess reports that the model cannot fetch by address: "With
// NSM we have no identifiers ..., so query 1a is not relevant" (§4).
var ErrNoAddressAccess = errors.New("store: model has no address-based access")

// ErrNotLoaded reports use of a model before Load.
var ErrNotLoaded = errors.New("store: no database loaded")

// ErrBadObject reports an object index outside the loaded extension.
var ErrBadObject = errors.New("store: object index out of range")

// Options configure the simulated installation.
type Options struct {
	// PageSize is the raw page size (default 2048, the DASDBS page).
	PageSize int
	// BufferPages is the cache capacity (default 1200 pages, §5.1).
	BufferPages int
	// Policy selects the replacement policy (default LRU).
	Policy buffer.Policy
	// CountIndexIO replaces the zero-cost in-memory indexes of the
	// indexed models with disk-resident B+-trees whose page accesses are
	// counted. The paper explicitly excludes index I/O ("we did not
	// account for additional I/Os needed ... to retrieve the tables with
	// addresses", §5.1); this option quantifies that accounting choice
	// (see experiments.IndexAblation). Only NSMIndex honours it.
	CountIndexIO bool
	// Backend selects where the device arena lives (zero value: memory).
	// The backend never changes the measured counters, only where the
	// page bytes are stored.
	Backend disk.BackendSpec
	// Faults, when non-nil, wraps every backend opened through these
	// options in the injector's seeded fault schedule (transient and
	// permanent I/O errors, latency, short reads, torn writes). Injected
	// faults surface as errors and never alter the counters of
	// successful operations — the device counts only completed
	// transfers.
	Faults *faultdisk.Injector
}

// DefaultOptions mirrors the paper's installation.
func DefaultOptions() Options {
	return Options{PageSize: disk.DefaultPageSize, BufferPages: 1200, Policy: buffer.LRU}
}

func (o Options) withDefaults() Options {
	if o.PageSize == 0 {
		o.PageSize = disk.DefaultPageSize
	}
	if o.BufferPages == 0 {
		o.BufferPages = 1200
	}
	return o
}

// Engine bundles one simulated device and its buffer pool.
type Engine struct {
	Dev  *disk.Disk
	Pool *buffer.Pool
	opts Options
}

// NewEngine creates a device/pool pair over the backend named by the
// options. A backend that already holds page images (an explicit-path
// arena file from an earlier run, or a COW view over a shared base) is
// adopted: its pages count as allocated, so fresh allocations extend the
// persisted device instead of aliasing it.
func NewEngine(o Options) (*Engine, error) {
	o = o.withDefaults()
	// Validate before opening the backend: an invalid configuration must
	// come back as an error, not as a construction panic holding a base
	// reference or an arena file.
	if o.PageSize <= disk.SysHeaderSize {
		return nil, fmt.Errorf("store: page size %d not larger than the %d-byte system header", o.PageSize, disk.SysHeaderSize)
	}
	if o.BufferPages < 0 {
		return nil, fmt.Errorf("store: negative buffer capacity %d", o.BufferPages)
	}
	b, err := o.Backend.Open(o.PageSize)
	if err != nil {
		return nil, err
	}
	if o.Faults != nil {
		b = o.Faults.Wrap(b, o.PageSize)
	}
	var dev *disk.Disk
	if b.Len() > 0 {
		dev, err = disk.Open(o.PageSize, b)
		if err != nil {
			b.Close()
			return nil, err
		}
	} else {
		dev = disk.NewWithBackend(o.PageSize, b)
	}
	return &Engine{Dev: dev, Pool: buffer.New(dev, o.BufferPages, o.Policy), opts: o}, nil
}

// Options returns the engine's effective options.
func (e *Engine) Options() Options { return e.opts }

// Close flushes all dirty pages and releases the device backend
// (unmapping and, for anonymous file arenas, deleting the arena file).
// The engine must not be used afterwards.
func (e *Engine) Close() error {
	flushErr := e.Pool.FlushAll()
	if err := e.Dev.Close(); err != nil {
		return err
	}
	return flushErr
}

// Stats combines device and pool counters into one snapshot.
func (e *Engine) Stats() iostat.Stats {
	s := e.Dev.Stats()
	s.Fixes = e.Pool.Fixes()
	s.Hits = e.Pool.Hits()
	return s
}

// ResetStats zeroes all counters (cache contents are untouched).
func (e *Engine) ResetStats() {
	e.Dev.ResetStats()
	e.Pool.ResetStats()
}

// ColdCache flushes and empties the pool, so the next query starts cold.
func (e *Engine) ColdCache() error { return e.Pool.Reset() }

// Flush writes all dirty pages back ("database disconnect").
func (e *Engine) Flush() error { return e.Pool.FlushAll() }

// RelationSize describes one stored relation for Table 2.
type RelationSize struct {
	// Name of the relation (e.g. "NSM_Connection").
	Name string
	// TuplesPerObject is the average number of tuples one complex object
	// contributes.
	TuplesPerObject float64
	// Tuples is the total tuple count.
	Tuples int
	// AvgTupleBytes is the paper's S_tuple.
	AvgTupleBytes float64
	// K is tuples per page for page-sharing relations (0 when tuples span
	// pages).
	K float64
	// P is pages per tuple for large tuples (0 when tuples share pages).
	P float64
	// M is the total number of pages, the paper's m.
	M int
}

// SizeReport is a model's physical size summary (Table 2).
type SizeReport struct {
	Model     string
	Relations []RelationSize
}

// TotalPages sums the page counts of all relations.
func (r SizeReport) TotalPages() int {
	n := 0
	for _, rel := range r.Relations {
		n += rel.M
	}
	return n
}

// Model is the uniform storage-model API consumed by the benchmark driver.
// Object identity is the station index (0..N-1); the distinction between
// "by address" (1a) and "by key value" (1b) access is which physical path
// the model takes, mirroring the paper's accounting where address tables
// are in-memory and free (§5.1).
type Model interface {
	// Kind returns the model identity.
	Kind() Kind
	// Engine returns the underlying engine (for statistics and cache
	// control).
	Engine() *Engine
	// Load bulk-loads a generated extension. It must be called exactly
	// once; the harness resets statistics afterwards.
	Load(stations []*cobench.Station) error
	// NumObjects returns the extension size.
	NumObjects() int
	// FetchByAddress retrieves one whole object by its physical address
	// (query 1a). Models without addresses return ErrNoAddressAccess.
	FetchByAddress(i int) (*cobench.Station, error)
	// FetchByKey retrieves one whole object by a value selection on its
	// key (query 1b): a physical scan of the root relation (plus whatever
	// the model needs to assemble the rest).
	FetchByKey(key int32) (*cobench.Station, error)
	// ScanAll retrieves every object (query 1c).
	ScanAll(fn func(i int, s *cobench.Station) error) error
	// Navigate reads the object's root record and the identifiers of its
	// children, touching only the attributes needed (query 2 inner step).
	Navigate(i int) (cobench.RootRecord, []int32, error)
	// ReadRoot inputs just the root record of an object (query 2's
	// grand-children step).
	ReadRoot(i int) (cobench.RootRecord, error)
	// UpdateRoots applies mutate to the root records of the given objects
	// and writes them back using the model's update mechanism (query 3).
	UpdateRoots(idxs []int32, mutate func(i int32, r *cobench.RootRecord)) error
	// UpdateObject applies an arbitrary (structural) mutation to one
	// object and stores the result — an extension beyond the paper's
	// benchmark, whose updates never change the object structure (§2.2).
	// Objects may grow or shrink; direct objects relocate when their page
	// footprint changes, normalized sub-tuples are deleted and reinserted.
	UpdateObject(i int, mutate func(s *cobench.Station) error) error
	// Flush forces deferred writes out (end of query / disconnect).
	Flush() error
	// Sizes reports the physical layout for Table 2.
	Sizes() SizeReport
	// SnapshotMeta serializes the model's directory metadata — address
	// tables, heap/long-object directories, per-relation accounting —
	// so that a snapshot of the device arena plus this blob restores the
	// loaded model without regenerating and reloading the extension.
	SnapshotMeta() ([]byte, error)
	// RestoreMeta rebuilds the directory metadata from SnapshotMeta
	// output. The model must be freshly constructed and its engine's
	// device must already hold the snapshot's page images.
	RestoreMeta(meta []byte) error
}

// New constructs a model of the given kind over a fresh engine.
func New(k Kind, o Options) (Model, error) {
	e, err := NewEngine(o)
	if err != nil {
		return nil, err
	}
	return NewWithEngine(k, e), nil
}

// NewWithEngine constructs a model over an existing (empty) engine; the
// engine's options supply the model knobs. This is the snapshot-restore
// entry point: the caller populates the device first, then calls
// RestoreMeta.
func NewWithEngine(k Kind, e *Engine) Model {
	switch k {
	case DSM:
		return newDirect(e, false)
	case DASDBSDSM:
		return newDirect(e, true)
	case NSM:
		return newNSM(e, false)
	case NSMIndex:
		m := newNSM(e, true)
		m.countIndexIO = e.opts.CountIndexIO
		return m
	case DASDBSNSM:
		return newDNSM(e)
	default:
		panic(fmt.Sprintf("store: unknown kind %d", int(k)))
	}
}

// checkIndex validates an object index against the loaded extension.
func checkIndex(i, n int) error {
	if n == 0 {
		return ErrNotLoaded
	}
	if i < 0 || i >= n {
		return fmt.Errorf("%w: %d of %d", ErrBadObject, i, n)
	}
	return nil
}
