package store

import (
	"fmt"

	"complexobj/cobench"
	"complexobj/internal/btree"
	"complexobj/internal/disk"
	"complexobj/internal/heap"
	"complexobj/nf2"
)

// Flat relation schemas of the normalized storage model (paper Figure 3).
// Three key attributes preserve the object structure: a globally unique
// root foreign key, a parent foreign key, and an own key; superfluous keys
// are omitted exactly as in the paper (no parent key on the first nesting
// level, no own key on the lowest level, only the own key at the root).
var (
	// nsmStationType is identical to RootType: the root relation carries
	// only its own key plus the atomic attributes.
	nsmStationType = RootType

	nsmPlatformType = nf2.MustTupleType("NSM_Platform",
		nf2.Attr{Name: "RootKey", Type: nf2.IntType()},
		nf2.Attr{Name: "OwnKey", Type: nf2.IntType()},
		nf2.Attr{Name: "PlatformNr", Type: nf2.IntType()},
		nf2.Attr{Name: "NoLine", Type: nf2.IntType()},
		nf2.Attr{Name: "TicketCode", Type: nf2.IntType()},
		nf2.Attr{Name: "Information", Type: nf2.StringType(cobench.StrSize)},
	)

	nsmConnectionType = nf2.MustTupleType("NSM_Connection",
		nf2.Attr{Name: "RootKey", Type: nf2.IntType()},
		nf2.Attr{Name: "ParentKey", Type: nf2.IntType()},
		nf2.Attr{Name: "LineNr", Type: nf2.IntType()},
		nf2.Attr{Name: "KeyConnection", Type: nf2.IntType()},
		nf2.Attr{Name: "OidConnection", Type: nf2.LinkType()},
		nf2.Attr{Name: "DepartureTimes", Type: nf2.StringType(cobench.StrSize)},
	)

	nsmSightseeingType = nf2.MustTupleType("NSM_Sightseeing",
		nf2.Attr{Name: "RootKey", Type: nf2.IntType()},
		nf2.Attr{Name: "SeeingNr", Type: nf2.IntType()},
		nf2.Attr{Name: "Description", Type: nf2.StringType(cobench.StrSize)},
		nf2.Attr{Name: "Location", Type: nf2.StringType(cobench.StrSize)},
		nf2.Attr{Name: "History", Type: nf2.StringType(cobench.StrSize)},
		nf2.Attr{Name: "Remarks", Type: nf2.StringType(cobench.StrSize)},
	)
)

// nsm implements the normalized storage model (§3.3), in two flavours:
//
//   - pure NSM (indexed=false): value queries can only scan; object
//     assembly joins the four relations. Following the paper's §4
//     assumption ("all joins can be performed in main memory"), navigation
//     locates an object's tuples positionally but must still visit the
//     platform tuples to join stations to connections.
//   - NSM+index (indexed=true): a zero-cost in-memory index maps keys to
//     tuple positions, so "a page is read from disk then and only then if
//     a tuple it stores is requested".
type nsm struct {
	eng     *Engine
	indexed bool
	// countIndexIO replaces the free in-memory index with disk-resident
	// B+-trees whose page accesses are counted (the experiments package's
	// index-accounting ablation). Only meaningful with indexed=true.
	countIndexIO bool

	stations *heap.Heap
	plats    *heap.Heap
	conns    *heap.Heap
	seeings  *heap.Heap

	stationRID []heap.RID
	platRIDs   [][]heap.RID
	connRIDs   [][]heap.RID
	seeingRIDs [][]heap.RID
	keyIdx     map[int32]int
	nPlats     int
	nConns     int
	nSeeings   int

	// Disk-resident indexes (countIndexIO only): station key -> RID and
	// Pack(object, seq) -> RID per sub-relation.
	stationTree *btree.Tree
	platTree    *btree.Tree
	connTree    *btree.Tree
	seeingTree  *btree.Tree

	// ridScratch backs groupRIDs results between probes. Callers fully
	// consume the slice before the next probe, and countIndexIO models are
	// rejected by the shared (concurrent) open path, so one scratch per
	// model is safe.
	ridScratch []heap.RID
}

// packRID encodes a heap RID as a B+-tree value.
func packRID(r heap.RID) uint64 { return uint64(r.Page)<<16 | uint64(r.Slot) }

// unpackRID inverts packRID.
func unpackRID(v uint64) heap.RID {
	return heap.RID{Page: disk.PageID(v >> 16), Slot: uint16(v & 0xFFFF)}
}

func newNSM(e *Engine, indexed bool) *nsm {
	return &nsm{
		eng:      e,
		indexed:  indexed,
		stations: heap.New(e.Dev, e.Pool, "NSM_Station"),
		plats:    heap.New(e.Dev, e.Pool, "NSM_Platform"),
		conns:    heap.New(e.Dev, e.Pool, "NSM_Connection"),
		seeings:  heap.New(e.Dev, e.Pool, "NSM_Sightseeing"),
		keyIdx:   make(map[int32]int),
	}
}

// Kind implements Model.
func (m *nsm) Kind() Kind {
	if m.indexed {
		return NSMIndex
	}
	return NSM
}

// Engine implements Model.
func (m *nsm) Engine() *Engine { return m.eng }

// NumObjects implements Model.
func (m *nsm) NumObjects() int { return len(m.stationRID) }

// Load implements Model: objects are unnested into four flat relations,
// with the tuples of one object inserted back to back so they cluster.
func (m *nsm) Load(stations []*cobench.Station) error {
	if len(m.stationRID) > 0 {
		return fmt.Errorf("store: %s already loaded", m.Kind())
	}
	for i, s := range stations {
		root, err := EncodeRoot(s.Root())
		if err != nil {
			return err
		}
		rid, err := m.stations.Insert(root)
		if err != nil {
			return err
		}
		m.stationRID = append(m.stationRID, rid)
		m.keyIdx[s.Key] = i

		var prids, crids, grids []heap.RID
		for pi, p := range s.Platforms {
			pt, err := nsmPlatformType.Encode(nf2.NewTuple(
				nf2.IntValue(s.Key),
				nf2.IntValue(int32(pi+1)),
				nf2.IntValue(p.Nr),
				nf2.IntValue(p.NoLine),
				nf2.IntValue(p.TicketCode),
				nf2.StringValue(p.Information),
			))
			if err != nil {
				return err
			}
			prid, err := m.plats.Insert(pt)
			if err != nil {
				return err
			}
			prids = append(prids, prid)
			m.nPlats++
			for _, c := range p.Conns {
				ct, err := nsmConnectionType.Encode(nf2.NewTuple(
					nf2.IntValue(s.Key),
					nf2.IntValue(int32(pi+1)),
					nf2.IntValue(c.LineNr),
					nf2.IntValue(c.KeyConnection),
					nf2.LinkValue(c.OidConnection),
					nf2.StringValue(c.DepartureTimes),
				))
				if err != nil {
					return err
				}
				crid, err := m.conns.Insert(ct)
				if err != nil {
					return err
				}
				crids = append(crids, crid)
				m.nConns++
			}
		}
		for _, g := range s.Seeings {
			gt, err := nsmSightseeingType.Encode(nf2.NewTuple(
				nf2.IntValue(s.Key),
				nf2.IntValue(g.Nr),
				nf2.StringValue(g.Description),
				nf2.StringValue(g.Location),
				nf2.StringValue(g.History),
				nf2.StringValue(g.Remarks),
			))
			if err != nil {
				return err
			}
			grid, err := m.seeings.Insert(gt)
			if err != nil {
				return err
			}
			grids = append(grids, grid)
			m.nSeeings++
		}
		m.platRIDs = append(m.platRIDs, prids)
		m.connRIDs = append(m.connRIDs, crids)
		m.seeingRIDs = append(m.seeingRIDs, grids)
	}
	if m.countIndexIO {
		if err := m.buildTrees(stations); err != nil {
			return err
		}
	}
	return m.eng.Flush()
}

// buildTrees materializes the disk-resident indexes after the bulk load
// (load-time I/O is excluded from measurements by the harness).
func (m *nsm) buildTrees(stations []*cobench.Station) error {
	var err error
	if m.stationTree, err = btree.New(m.eng.Dev, m.eng.Pool); err != nil {
		return err
	}
	if m.platTree, err = btree.New(m.eng.Dev, m.eng.Pool); err != nil {
		return err
	}
	if m.connTree, err = btree.New(m.eng.Dev, m.eng.Pool); err != nil {
		return err
	}
	if m.seeingTree, err = btree.New(m.eng.Dev, m.eng.Pool); err != nil {
		return err
	}
	for i, s := range stations {
		if err := m.stationTree.Insert(uint64(uint32(s.Key)), packRID(m.stationRID[i])); err != nil {
			return err
		}
		for j, rid := range m.platRIDs[i] {
			if err := m.platTree.Insert(btree.Pack(uint32(i), uint32(j)), packRID(rid)); err != nil {
				return err
			}
		}
		for j, rid := range m.connRIDs[i] {
			if err := m.connTree.Insert(btree.Pack(uint32(i), uint32(j)), packRID(rid)); err != nil {
				return err
			}
		}
		for j, rid := range m.seeingRIDs[i] {
			if err := m.seeingTree.Insert(btree.Pack(uint32(i), uint32(j)), packRID(rid)); err != nil {
				return err
			}
		}
	}
	return nil
}

// stationRIDAt resolves the root tuple position of object i, through the
// counted index when enabled.
func (m *nsm) stationRIDAt(i int) (heap.RID, error) {
	if !m.countIndexIO {
		return m.stationRID[i], nil
	}
	v, err := m.stationTree.Get(uint64(uint32(cobench.KeyOf(i))))
	if err != nil {
		return heap.RID{}, err
	}
	return unpackRID(v), nil
}

// groupRIDs resolves the sub-relation tuple positions of object i.
func (m *nsm) groupRIDs(tree *btree.Tree, inMemory []heap.RID, i int) ([]heap.RID, error) {
	if !m.countIndexIO {
		return inMemory, nil
	}
	rids := m.ridScratch[:0]
	from, to := btree.PackRange(uint32(i))
	err := tree.Scan(from, to, func(_, v uint64) bool {
		rids = append(rids, unpackRID(v))
		return true
	})
	m.ridScratch = rids
	return rids, err
}

// IndexStats reports the disk-resident index footprint (countIndexIO
// only): total node pages and the station tree height.
func (m *nsm) IndexStats() (pages, height int) {
	if !m.countIndexIO {
		return 0, 0
	}
	pages = m.stationTree.Pages() + m.platTree.Pages() + m.connTree.Pages() + m.seeingTree.Pages()
	return pages, m.stationTree.Height()
}

// platRow and connRow carry the flat relations' join keys alongside the
// decoded result values during assembly. The decoders below read
// attribute-at-a-time straight off the record bytes (valid only during
// the heap view/scan callback) — no tuple scaffolding, only the values
// that end up in the station are allocated.
type platRow struct {
	own int32
	p   cobench.Platform
}

type connRow struct {
	parent int32
	c      cobench.Connection
}

func decodeNSMPlat(rec []byte) (platRow, error) {
	var r platRow
	for idx, dst := range [...]*int32{&r.own, &r.p.Nr, &r.p.NoLine, &r.p.TicketCode} {
		v, err := nsmPlatformType.DecodeAttr(rec, idx+1)
		if err != nil {
			return platRow{}, err
		}
		*dst = v.Int()
	}
	v, err := nsmPlatformType.DecodeAttr(rec, 5)
	if err != nil {
		return platRow{}, err
	}
	r.p.Information = v.Str()
	return r, nil
}

func decodeNSMConn(rec []byte) (connRow, error) {
	var r connRow
	for idx, dst := range [...]*int32{&r.parent, &r.c.LineNr, &r.c.KeyConnection, &r.c.OidConnection} {
		v, err := nsmConnectionType.DecodeAttr(rec, idx+1)
		if err != nil {
			return connRow{}, err
		}
		*dst = v.Int()
	}
	v, err := nsmConnectionType.DecodeAttr(rec, 5)
	if err != nil {
		return connRow{}, err
	}
	r.c.DepartureTimes = v.Str()
	return r, nil
}

func decodeNSMSee(rec []byte) (cobench.Sightseeing, error) {
	var g cobench.Sightseeing
	v, err := nsmSightseeingType.DecodeAttr(rec, 1)
	if err != nil {
		return cobench.Sightseeing{}, err
	}
	g.Nr = v.Int()
	for idx, dst := range [...]*string{&g.Description, &g.Location, &g.History, &g.Remarks} {
		v, err := nsmSightseeingType.DecodeAttr(rec, idx+2)
		if err != nil {
			return cobench.Sightseeing{}, err
		}
		*dst = v.Str()
	}
	return g, nil
}

// joinNSM assembles a station from its decoded relation rows.
func joinNSM(root cobench.RootRecord, plats []platRow, conns []connRow, sees []cobench.Sightseeing) (*cobench.Station, error) {
	s := &cobench.Station{
		Key:        root.Key,
		NoPlatform: root.NoPlatform,
		NoSeeing:   root.NoSeeing,
		Name:       root.Name,
	}
	byOwn := map[int32]int{}
	if len(plats) > 0 {
		s.Platforms = make([]cobench.Platform, 0, len(plats))
	}
	for _, pr := range plats {
		s.Platforms = append(s.Platforms, pr.p)
		byOwn[pr.own] = len(s.Platforms) - 1
	}
	for _, cr := range conns {
		pi, ok := byOwn[cr.parent]
		if !ok {
			return nil, fmt.Errorf("store: connection with unknown parent %d", cr.parent)
		}
		s.Platforms[pi].Conns = append(s.Platforms[pi].Conns, cr.c)
	}
	s.Seeings = sees
	return s, nil
}

// fetchAssembled reads all tuples of object i by position and joins them.
func (m *nsm) fetchAssembled(i int) (*cobench.Station, error) {
	srid, err := m.stationRIDAt(i)
	if err != nil {
		return nil, err
	}
	var root cobench.RootRecord
	if err := m.stations.View(srid, func(rec []byte) error {
		var err error
		root, err = DecodeRoot(rec)
		return err
	}); err != nil {
		return nil, err
	}
	// visit runs fn over each of the object's records in one relation,
	// through a zero-copy heap view (the decoders copy what they keep).
	visit := func(h *heap.Heap, tree *btree.Tree, inMemory []heap.RID, fn func(rec []byte) error) error {
		rids, err := m.groupRIDs(tree, inMemory, i)
		if err != nil {
			return err
		}
		for _, rid := range rids {
			if err := h.View(rid, fn); err != nil {
				return err
			}
		}
		return nil
	}
	var plats []platRow
	err = visit(m.plats, m.platTree, m.platRIDs[i], func(rec []byte) error {
		r, err := decodeNSMPlat(rec)
		if err == nil {
			plats = append(plats, r)
		}
		return err
	})
	if err != nil {
		return nil, err
	}
	var conns []connRow
	err = visit(m.conns, m.connTree, m.connRIDs[i], func(rec []byte) error {
		r, err := decodeNSMConn(rec)
		if err == nil {
			conns = append(conns, r)
		}
		return err
	})
	if err != nil {
		return nil, err
	}
	var sees []cobench.Sightseeing
	err = visit(m.seeings, m.seeingTree, m.seeingRIDs[i], func(rec []byte) error {
		g, err := decodeNSMSee(rec)
		if err == nil {
			sees = append(sees, g)
		}
		return err
	})
	if err != nil {
		return nil, err
	}
	return joinNSM(root, plats, conns, sees)
}

// FetchByAddress implements Model: only the indexed variant has an
// addressing mechanism ("With NSM we have no identifiers, so query 1a is
// not relevant").
func (m *nsm) FetchByAddress(i int) (*cobench.Station, error) {
	if !m.indexed {
		return nil, ErrNoAddressAccess
	}
	if err := checkIndex(i, len(m.stationRID)); err != nil {
		return nil, err
	}
	return m.fetchAssembled(i)
}

// FetchByKey implements Model. Pure NSM scans all four relations and joins
// the matching tuples; NSM+index scans only the root relation for the
// value selection and fetches the sub-relation tuples through the index.
func (m *nsm) FetchByKey(key int32) (*cobench.Station, error) {
	if len(m.stationRID) == 0 {
		return nil, ErrNotLoaded
	}
	if m.indexed {
		if m.countIndexIO {
			// A real key index turns the value selection into a tree
			// descent — the flip side of paying for index I/O elsewhere.
			if _, err := m.stationTree.Get(uint64(uint32(key))); err != nil {
				return nil, fmt.Errorf("store: no station with key %d: %w", key, err)
			}
			idx, ok := m.keyIdx[key]
			if !ok {
				return nil, fmt.Errorf("store: no station with key %d", key)
			}
			return m.fetchAssembled(idx)
		}
		idx := -1
		err := m.stations.Scan(func(_ heap.RID, rec []byte) bool {
			k, kerr := DecodeRootKey(rec)
			if kerr == nil && k == key {
				if j, ok := m.keyIdx[key]; ok {
					idx = j
				}
			}
			return true // set-oriented selection: no early exit
		})
		if err != nil {
			return nil, err
		}
		if idx < 0 {
			return nil, fmt.Errorf("store: no station with key %d", key)
		}
		return m.fetchAssembled(idx)
	}
	var root *cobench.RootRecord
	var plats []platRow
	var conns []connRow
	var sees []cobench.Sightseeing
	scan := func(h *heap.Heap, tt *nf2.TupleType, sink func(rec []byte)) error {
		return h.Scan(func(_ heap.RID, rec []byte) bool {
			v, err := tt.DecodeAttr(rec, 0) // root (foreign) key is attribute 0
			if err != nil || v.Int() != key {
				return true
			}
			sink(rec)
			return true
		})
	}
	err := scan(m.stations, nsmStationType, func(rec []byte) {
		if r, err := DecodeRoot(rec); err == nil {
			root = &r
		}
	})
	if err != nil {
		return nil, err
	}
	err = scan(m.plats, nsmPlatformType, func(rec []byte) {
		if r, err := decodeNSMPlat(rec); err == nil {
			plats = append(plats, r)
		}
	})
	if err != nil {
		return nil, err
	}
	err = scan(m.conns, nsmConnectionType, func(rec []byte) {
		if r, err := decodeNSMConn(rec); err == nil {
			conns = append(conns, r)
		}
	})
	if err != nil {
		return nil, err
	}
	err = scan(m.seeings, nsmSightseeingType, func(rec []byte) {
		if g, err := decodeNSMSee(rec); err == nil {
			sees = append(sees, g)
		}
	})
	if err != nil {
		return nil, err
	}
	if root == nil {
		return nil, fmt.Errorf("store: no station with key %d", key)
	}
	return joinNSM(*root, plats, conns, sees)
}

// ScanAll implements Model: one physical scan of each relation, joined in
// memory (the paper's best-case in-memory join assumption).
func (m *nsm) ScanAll(fn func(i int, s *cobench.Station) error) error {
	n := len(m.stationRID)
	if n == 0 {
		return ErrNotLoaded
	}
	roots := make([]cobench.RootRecord, n)
	plats := make([][]platRow, n)
	conns := make([][]connRow, n)
	sees := make([][]cobench.Sightseeing, n)
	idxOfKey := func(rec []byte, tt *nf2.TupleType) (int, error) {
		v, err := tt.DecodeAttr(rec, 0)
		if err != nil {
			return -1, err
		}
		i, ok := m.keyIdx[v.Int()]
		if !ok {
			return -1, fmt.Errorf("store: unknown root key %d", v.Int())
		}
		return i, nil
	}
	var scanErr error
	collect := func(h *heap.Heap, tt *nf2.TupleType, sink func(i int, rec []byte) error) error {
		err := h.Scan(func(_ heap.RID, rec []byte) bool {
			i, err := idxOfKey(rec, tt)
			if err != nil {
				scanErr = err
				return false
			}
			if err := sink(i, rec); err != nil {
				scanErr = err
				return false
			}
			return true
		})
		if err != nil {
			return err
		}
		return scanErr
	}
	err := collect(m.stations, nsmStationType, func(i int, rec []byte) error {
		var err error
		roots[i], err = DecodeRoot(rec)
		return err
	})
	if err != nil {
		return err
	}
	err = collect(m.plats, nsmPlatformType, func(i int, rec []byte) error {
		r, err := decodeNSMPlat(rec)
		if err == nil {
			plats[i] = append(plats[i], r)
		}
		return err
	})
	if err != nil {
		return err
	}
	err = collect(m.conns, nsmConnectionType, func(i int, rec []byte) error {
		r, err := decodeNSMConn(rec)
		if err == nil {
			conns[i] = append(conns[i], r)
		}
		return err
	})
	if err != nil {
		return err
	}
	err = collect(m.seeings, nsmSightseeingType, func(i int, rec []byte) error {
		g, err := decodeNSMSee(rec)
		if err == nil {
			sees[i] = append(sees[i], g)
		}
		return err
	})
	if err != nil {
		return err
	}
	for i := 0; i < n; i++ {
		s, err := joinNSM(roots[i], plats[i], conns[i], sees[i])
		if err != nil {
			return err
		}
		if err := fn(i, s); err != nil {
			return err
		}
	}
	return nil
}

// Navigate implements Model: the root tuple plus the object's connection
// tuples; pure NSM additionally joins through the platform tuples (no
// index to shortcut the Station->Platform->Connection path).
func (m *nsm) Navigate(i int) (cobench.RootRecord, []int32, error) {
	if err := checkIndex(i, len(m.stationRID)); err != nil {
		return cobench.RootRecord{}, nil, err
	}
	root, err := m.ReadRoot(i)
	if err != nil {
		return cobench.RootRecord{}, nil, err
	}
	if !m.indexed {
		for _, rid := range m.platRIDs[i] {
			if err := m.plats.View(rid, func([]byte) error { return nil }); err != nil {
				return cobench.RootRecord{}, nil, err
			}
		}
	}
	crids, err := m.groupRIDs(m.connTree, m.connRIDs[i], i)
	if err != nil {
		return cobench.RootRecord{}, nil, err
	}
	var children []int32
	for _, rid := range crids {
		err := m.conns.View(rid, func(rec []byte) error {
			v, err := nsmConnectionType.DecodeAttr(rec, 4) // OidConnection
			if err != nil {
				return err
			}
			children = append(children, v.Int())
			return nil
		})
		if err != nil {
			return cobench.RootRecord{}, nil, err
		}
	}
	return root, children, nil
}

// ReadRoot implements Model: one tuple access in the root relation.
func (m *nsm) ReadRoot(i int) (cobench.RootRecord, error) {
	if err := checkIndex(i, len(m.stationRID)); err != nil {
		return cobench.RootRecord{}, err
	}
	srid, err := m.stationRIDAt(i)
	if err != nil {
		return cobench.RootRecord{}, err
	}
	var root cobench.RootRecord
	err = m.stations.View(srid, func(rec []byte) error {
		r, err := DecodeRoot(rec)
		if err != nil {
			return err
		}
		root = r
		return nil
	})
	return root, err
}

// UpdateRoots implements Model: in-place updates of the small root tuples;
// many share a page, so a batch of updates dirties few pages which are
// written together at flush ("With DASDBS-NSM only small root tuples ...
// are updated, of which there are many on a single page" — the same holds
// for NSM's root relation).
func (m *nsm) UpdateRoots(idxs []int32, mutate func(i int32, r *cobench.RootRecord)) error {
	for _, idx := range idxs {
		i := int(idx)
		if err := checkIndex(i, len(m.stationRID)); err != nil {
			return err
		}
		root, err := m.ReadRoot(i)
		if err != nil {
			return err
		}
		mutate(idx, &root)
		rec, err := EncodeRoot(root)
		if err != nil {
			return err
		}
		srid, err := m.stationRIDAt(i)
		if err != nil {
			return err
		}
		if err := m.stations.Update(srid, rec); err != nil {
			return err
		}
	}
	return nil
}

// UpdateObject implements Model: the root tuple is updated in place (it
// has a fixed size) and the sub-relation tuples are deleted and
// reinserted. Reinserted tuples append at the relation tails, so heavy
// structural churn gradually erodes the load-time clustering — the
// realistic behaviour of a normalized store. Not supported under
// CountIndexIO (the ablation's B+-trees are append-only).
func (m *nsm) UpdateObject(i int, mutate func(s *cobench.Station) error) error {
	if err := checkIndex(i, len(m.stationRID)); err != nil {
		return err
	}
	if m.countIndexIO {
		return fmt.Errorf("store: %s: structural updates unsupported with counted index I/O", m.Kind())
	}
	st, err := m.fetchAssembled(i)
	if err != nil {
		return err
	}
	oldKey := st.Key
	if err := mutate(st); err != nil {
		return err
	}
	st.NoPlatform = int32(len(st.Platforms))
	st.NoSeeing = int32(len(st.Seeings))
	root, err := EncodeRoot(st.Root())
	if err != nil {
		return err
	}
	if err := m.stations.Update(m.stationRID[i], root); err != nil {
		return err
	}
	for _, rid := range m.platRIDs[i] {
		if err := m.plats.Delete(rid); err != nil {
			return err
		}
	}
	for _, rid := range m.connRIDs[i] {
		if err := m.conns.Delete(rid); err != nil {
			return err
		}
	}
	for _, rid := range m.seeingRIDs[i] {
		if err := m.seeings.Delete(rid); err != nil {
			return err
		}
	}
	m.nPlats -= len(m.platRIDs[i])
	m.nConns -= len(m.connRIDs[i])
	m.nSeeings -= len(m.seeingRIDs[i])
	var prids, crids, grids []heap.RID
	for pi, pl := range st.Platforms {
		pt, err := nsmPlatformType.Encode(nf2.NewTuple(
			nf2.IntValue(st.Key),
			nf2.IntValue(int32(pi+1)),
			nf2.IntValue(pl.Nr),
			nf2.IntValue(pl.NoLine),
			nf2.IntValue(pl.TicketCode),
			nf2.StringValue(pl.Information),
		))
		if err != nil {
			return err
		}
		prid, err := m.plats.Insert(pt)
		if err != nil {
			return err
		}
		prids = append(prids, prid)
		m.nPlats++
		for _, c := range pl.Conns {
			ct, err := nsmConnectionType.Encode(nf2.NewTuple(
				nf2.IntValue(st.Key),
				nf2.IntValue(int32(pi+1)),
				nf2.IntValue(c.LineNr),
				nf2.IntValue(c.KeyConnection),
				nf2.LinkValue(c.OidConnection),
				nf2.StringValue(c.DepartureTimes),
			))
			if err != nil {
				return err
			}
			crid, err := m.conns.Insert(ct)
			if err != nil {
				return err
			}
			crids = append(crids, crid)
			m.nConns++
		}
	}
	for _, g := range st.Seeings {
		gt, err := nsmSightseeingType.Encode(nf2.NewTuple(
			nf2.IntValue(st.Key),
			nf2.IntValue(g.Nr),
			nf2.StringValue(g.Description),
			nf2.StringValue(g.Location),
			nf2.StringValue(g.History),
			nf2.StringValue(g.Remarks),
		))
		if err != nil {
			return err
		}
		grid, err := m.seeings.Insert(gt)
		if err != nil {
			return err
		}
		grids = append(grids, grid)
		m.nSeeings++
	}
	m.platRIDs[i] = prids
	m.connRIDs[i] = crids
	m.seeingRIDs[i] = grids
	if st.Key != oldKey {
		delete(m.keyIdx, oldKey)
		m.keyIdx[st.Key] = i
	}
	return nil
}

// Flush implements Model.
func (m *nsm) Flush() error { return m.eng.Flush() }

// Sizes implements Model.
func (m *nsm) Sizes() SizeReport {
	n := len(m.stationRID)
	prefix := "NSM_"
	rel := func(h *heap.Heap, name string, tuples int) RelationSize {
		r := RelationSize{
			Name:          prefix + name,
			Tuples:        tuples,
			AvgTupleBytes: h.AvgRecordSize(),
			K:             h.TuplesPerPage(),
			M:             h.NumPages(),
		}
		if n > 0 {
			r.TuplesPerObject = float64(tuples) / float64(n)
		}
		return r
	}
	return SizeReport{
		Model: m.Kind().String(),
		Relations: []RelationSize{
			rel(m.stations, "Station", n),
			rel(m.plats, "Platform", m.nPlats),
			rel(m.conns, "Connection", m.nConns),
			rel(m.seeings, "Sightseeing", m.nSeeings),
		},
	}
}
