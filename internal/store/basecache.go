package store

import (
	"fmt"
	"sync"

	"complexobj/cobench"
	"complexobj/internal/disk"
)

// BaseKey identifies one frozen database state: the storage model, the
// device page size and the full generator configuration it was built
// from. Two experiment cells with equal keys are, by the determinism of
// the generator and loaders, measuring the same physical database — which
// is what makes it safe to hand both of them copy-on-write views of one
// frozen base instead of generating and loading the extension twice.
type BaseKey struct {
	Kind     Kind
	PageSize int
	Gen      cobench.Config
}

// BaseCache builds and retains one immutable SharedBase per BaseKey. It
// is the sharing point for every fan-out experiment: the first cell to
// need a (model, generator config) pair builds and freezes it exactly
// once — concurrent requesters for the same key block on that one build —
// and every later cell opens a COW view. The cache owns one reference per
// cached base; Close releases them all (views still open at that point
// keep their base alive until they close, see disk.BaseArena).
//
// BaseCache is safe for concurrent use. Builds for different keys run
// concurrently; a build error is cached and returned to every requester
// of that key (a failed generation is deterministic too).
type BaseCache struct {
	mu      sync.Mutex
	entries map[BaseKey]*baseCacheEntry
	built   int64
	closed  bool
}

type baseCacheEntry struct {
	once sync.Once
	base *SharedBase
	err  error

	// Scoped-release bookkeeping, guarded by the cache mutex. An entry
	// acquired via Get is pinned: it lives until Close, because later
	// experiments may come back for it. An entry only ever acquired via
	// GetScoped is released — the cache's base reference dropped, the
	// entry forgotten — as soon as its last outstanding user releases.
	pinned bool
	users  int
}

// NewBaseCache returns an empty cache.
func NewBaseCache() *BaseCache {
	return &BaseCache{entries: make(map[BaseKey]*baseCacheEntry)}
}

// Get returns the base cached under key, building it with build on the
// first request, and pins the entry until Close. A zero key.PageSize is
// normalized to the default page size, so callers with defaulted options
// and callers with explicit ones land on the same entry.
func (c *BaseCache) Get(key BaseKey, build func() (*SharedBase, error)) (*SharedBase, error) {
	base, _, err := c.acquire(key, build, true)
	return base, err
}

// GetScoped is Get for a caller whose use of the base is scoped: it
// returns a release function alongside the base, and once every scoped
// user of the key has released — and no Get ever pinned it — the cache
// drops its reference and forgets the entry, instead of retaining every
// base until Close. A paper-scale sweep over many one-off configurations
// (the Figure 5/6 columns, the Table 7 skew extension) therefore holds at
// most the bases of the cells currently in flight; a key that is needed
// again later simply rebuilds, deterministically. The release function is
// idempotent and must be called exactly once per successful GetScoped
// (views opened from the base keep their own arena references, so release
// order against view closes does not matter).
func (c *BaseCache) GetScoped(key BaseKey, build func() (*SharedBase, error)) (*SharedBase, func() error, error) {
	return c.acquire(key, build, false)
}

func (c *BaseCache) acquire(key BaseKey, build func() (*SharedBase, error), pin bool) (*SharedBase, func() error, error) {
	if key.PageSize == 0 {
		key.PageSize = disk.DefaultPageSize
	}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, nil, fmt.Errorf("store: base cache is closed")
	}
	e, ok := c.entries[key]
	if !ok {
		e = &baseCacheEntry{}
		c.entries[key] = e
	}
	if pin {
		e.pinned = true
	} else {
		e.users++
	}
	c.mu.Unlock()
	e.once.Do(func() {
		e.base, e.err = build()
		if e.err == nil {
			if got := e.base.PageSize(); got != key.PageSize {
				e.base.Release()
				e.base, e.err = nil, fmt.Errorf("store: base cache: built base has page size %d, key says %d", got, key.PageSize)
			}
		}
		if e.err == nil {
			c.mu.Lock()
			c.built++
			c.mu.Unlock()
		}
	})
	if pin {
		return e.base, nil, e.err
	}
	var once sync.Once
	release := func() error {
		var err error
		once.Do(func() { err = c.releaseScoped(key, e) })
		return err
	}
	if e.err != nil {
		release()
		return nil, nil, e.err
	}
	return e.base, release, nil
}

// releaseScoped drops one scoped use of e. The last scoped user of an
// unpinned entry evicts it and returns the cache's base reference.
func (c *BaseCache) releaseScoped(key BaseKey, e *baseCacheEntry) error {
	c.mu.Lock()
	e.users--
	evict := e.users == 0 && !e.pinned && !c.closed && c.entries[key] == e
	if evict {
		delete(c.entries, key)
	}
	c.mu.Unlock()
	if evict && e.base != nil {
		return e.base.Release()
	}
	return nil
}

// Len returns the number of cached entries, including failed builds
// (diagnostics and sharing assertions in tests).
func (c *BaseCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Built returns how many bases the cache has built over its lifetime,
// including entries since evicted by scoped release — together with Len
// this shows how much a run shared (cells measured vs bases built) and
// how much scoped release let go.
func (c *BaseCache) Built() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.built
}

// Close releases the cache's reference on every cached base and empties
// the cache. It waits for in-flight builds (their bases are released
// too, so nothing leaks), which also gives the reads below a
// happens-before edge with the builders; views opened from cached bases
// stay usable until they are closed themselves. Get fails after Close —
// a Get that was already in flight may hand its caller a base the cache
// has released, so close only once no new views will be opened.
func (c *BaseCache) Close() error {
	c.mu.Lock()
	entries := c.entries
	c.entries = nil
	c.closed = true
	c.mu.Unlock()
	var first error
	for _, e := range entries {
		e.once.Do(func() {}) // wait for (and synchronize with) the builder
		if e.base != nil {
			if err := e.base.Release(); err != nil && first == nil {
				first = err
			}
		}
	}
	return first
}
