package store

import (
	"fmt"

	"complexobj/cobench"
	"complexobj/internal/longobj"
	"complexobj/nf2"
)

// Nested-normalized relation schemas (paper Figure 4): the flat NSM tuples
// of one object are re-nested on the root (and parent) foreign keys, so
// exactly one tuple per relation per object remains and the foreign keys
// are not replicated in sibling tuples.
var (
	dnsmStationType = RootType

	dnsmPlatformType = nf2.MustTupleType("DASDBS-NSM_Platform",
		nf2.Attr{Name: "RootKey", Type: nf2.IntType()},
		nf2.Attr{Name: "Platforms", Type: nf2.RelType(nf2.MustTupleType("PlatformOfStation",
			nf2.Attr{Name: "OwnKey", Type: nf2.IntType()},
			nf2.Attr{Name: "PlatformNr", Type: nf2.IntType()},
			nf2.Attr{Name: "NoLine", Type: nf2.IntType()},
			nf2.Attr{Name: "TicketCode", Type: nf2.IntType()},
			nf2.Attr{Name: "Information", Type: nf2.StringType(cobench.StrSize)},
		))},
	)

	dnsmConnectionType = nf2.MustTupleType("DASDBS-NSM_Connection",
		nf2.Attr{Name: "RootKey", Type: nf2.IntType()},
		nf2.Attr{Name: "PerPlatform", Type: nf2.RelType(nf2.MustTupleType("ConnectionsOfPlatform",
			nf2.Attr{Name: "ParentKey", Type: nf2.IntType()},
			nf2.Attr{Name: "Connections", Type: nf2.RelType(nf2.MustTupleType("ConnectionOfStation",
				nf2.Attr{Name: "LineNr", Type: nf2.IntType()},
				nf2.Attr{Name: "KeyConnection", Type: nf2.IntType()},
				nf2.Attr{Name: "OidConnection", Type: nf2.LinkType()},
				nf2.Attr{Name: "DepartureTimes", Type: nf2.StringType(cobench.StrSize)},
			))},
		))},
	)

	dnsmSightseeingType = nf2.MustTupleType("DASDBS-NSM_Sightseeing",
		nf2.Attr{Name: "RootKey", Type: nf2.IntType()},
		nf2.Attr{Name: "Seeings", Type: nf2.RelType(nf2.MustTupleType("SightseeingOfStation",
			nf2.Attr{Name: "SeeingNr", Type: nf2.IntType()},
			nf2.Attr{Name: "Description", Type: nf2.StringType(cobench.StrSize)},
			nf2.Attr{Name: "Location", Type: nf2.StringType(cobench.StrSize)},
			nf2.Attr{Name: "History", Type: nf2.StringType(cobench.StrSize)},
			nf2.Attr{Name: "Remarks", Type: nf2.StringType(cobench.StrSize)},
		))},
	)
)

// dnsm implements DASDBS-NSM (§3.4): four relations of nested tuples, one
// tuple per relation per object, plus an in-memory transformation table
// that maps an object key to "the addresses of all the tuples that
// together store an object". Per the paper's accounting, the table itself
// costs no I/O (§5.1: "we did not account for additional I/Os needed ...
// to retrieve the tables with addresses").
type dnsm struct {
	eng *Engine

	stations *longobj.Store
	plats    *longobj.Store
	conns    *longobj.Store
	seeings  *longobj.Store

	refs   [][4]longobj.Ref // station, platform, connection, sightseeing
	keyIdx map[int32]int
}

// positions in refs entries.
const (
	dnsmStation = iota
	dnsmPlatform
	dnsmConnection
	dnsmSightseeing
)

func newDNSM(e *Engine) *dnsm {
	return &dnsm{
		eng:      e,
		stations: longobj.New(e.Dev, e.Pool, "DASDBS-NSM_Station"),
		plats:    longobj.New(e.Dev, e.Pool, "DASDBS-NSM_Platform"),
		conns:    longobj.New(e.Dev, e.Pool, "DASDBS-NSM_Connection"),
		seeings:  longobj.New(e.Dev, e.Pool, "DASDBS-NSM_Sightseeing"),
		keyIdx:   make(map[int32]int),
	}
}

// Kind implements Model.
func (m *dnsm) Kind() Kind { return DASDBSNSM }

// Engine implements Model.
func (m *dnsm) Engine() *Engine { return m.eng }

// NumObjects implements Model.
func (m *dnsm) NumObjects() int { return len(m.refs) }

// encode the four nested tuples of one station.
func dnsmTuples(s *cobench.Station) (station, plat, conn, seeing []byte, err error) {
	if station, err = EncodeRoot(s.Root()); err != nil {
		return
	}
	pts := make([]nf2.Tuple, len(s.Platforms))
	cts := make([]nf2.Tuple, 0, len(s.Platforms))
	for i, p := range s.Platforms {
		pts[i] = nf2.NewTuple(
			nf2.IntValue(int32(i+1)),
			nf2.IntValue(p.Nr),
			nf2.IntValue(p.NoLine),
			nf2.IntValue(p.TicketCode),
			nf2.StringValue(p.Information),
		)
		inner := make([]nf2.Tuple, len(p.Conns))
		for j, c := range p.Conns {
			inner[j] = nf2.NewTuple(
				nf2.IntValue(c.LineNr),
				nf2.IntValue(c.KeyConnection),
				nf2.LinkValue(c.OidConnection),
				nf2.StringValue(c.DepartureTimes),
			)
		}
		cts = append(cts, nf2.NewTuple(nf2.IntValue(int32(i+1)), nf2.RelValue(inner)))
	}
	if plat, err = dnsmPlatformType.Encode(nf2.NewTuple(nf2.IntValue(s.Key), nf2.RelValue(pts))); err != nil {
		return
	}
	if conn, err = dnsmConnectionType.Encode(nf2.NewTuple(nf2.IntValue(s.Key), nf2.RelValue(cts))); err != nil {
		return
	}
	gts := make([]nf2.Tuple, len(s.Seeings))
	for i, g := range s.Seeings {
		gts[i] = nf2.NewTuple(
			nf2.IntValue(g.Nr),
			nf2.StringValue(g.Description),
			nf2.StringValue(g.Location),
			nf2.StringValue(g.History),
			nf2.StringValue(g.Remarks),
		)
	}
	seeing, err = dnsmSightseeingType.Encode(nf2.NewTuple(nf2.IntValue(s.Key), nf2.RelValue(gts)))
	return
}

// Load implements Model.
func (m *dnsm) Load(stations []*cobench.Station) error {
	if len(m.refs) > 0 {
		return fmt.Errorf("store: %s already loaded", m.Kind())
	}
	for i, s := range stations {
		st, pl, co, se, err := dnsmTuples(s)
		if err != nil {
			return fmt.Errorf("store: encode station %d: %w", i, err)
		}
		var entry [4]longobj.Ref
		for slot, rec := range map[int][]byte{
			dnsmStation: st, dnsmPlatform: pl, dnsmConnection: co, dnsmSightseeing: se,
		} {
			ref, err := m.storeFor(slot).Insert([]longobj.Component{{Tag: 0, Data: rec}})
			if err != nil {
				return fmt.Errorf("store: insert station %d slot %d: %w", i, slot, err)
			}
			entry[slot] = ref
		}
		m.refs = append(m.refs, entry)
		m.keyIdx[s.Key] = i
	}
	return m.eng.Flush()
}

func (m *dnsm) storeFor(slot int) *longobj.Store {
	switch slot {
	case dnsmStation:
		return m.stations
	case dnsmPlatform:
		return m.plats
	case dnsmConnection:
		return m.conns
	default:
		return m.seeings
	}
}

// readTuple fetches the single nested tuple behind a ref.
func (m *dnsm) readTuple(slot, i int) ([]byte, error) {
	comps, err := m.storeFor(slot).ReadAllShared(m.refs[i][slot])
	if err != nil {
		return nil, err
	}
	if len(comps) != 1 {
		return nil, fmt.Errorf("store: nested tuple %d/%d has %d components", slot, i, len(comps))
	}
	return comps[0].Data, nil
}

// assemble rebuilds the station from its four nested tuples.
func (m *dnsm) assemble(i int) (*cobench.Station, error) {
	stRec, err := m.readTuple(dnsmStation, i)
	if err != nil {
		return nil, err
	}
	root, err := DecodeRoot(stRec)
	if err != nil {
		return nil, err
	}
	s := &cobench.Station{}
	s.SetRoot(root)

	// The nested relations decode attribute-at-a-time over VisitRel (no
	// tuple scaffolding): only the values that end up in the station are
	// allocated, which keeps the assembly hot path cheap under serving
	// load.
	plRec, err := m.readTuple(dnsmPlatform, i)
	if err != nil {
		return nil, err
	}
	byOwn := map[int32]int{}
	plElem := dnsmPlatformType.Attrs[1].Type.Elem
	err = dnsmPlatformType.VisitRel(plRec, 1, func(j, n int, elem []byte) error {
		if s.Platforms == nil {
			s.Platforms = make([]cobench.Platform, 0, n)
		}
		var p cobench.Platform
		var own int32
		for idx, dst := range [...]*int32{&own, &p.Nr, &p.NoLine, &p.TicketCode} {
			v, err := plElem.DecodeAttr(elem, idx)
			if err != nil {
				return err
			}
			*dst = v.Int()
		}
		v, err := plElem.DecodeAttr(elem, 4)
		if err != nil {
			return err
		}
		p.Information = v.Str()
		s.Platforms = append(s.Platforms, p)
		byOwn[own] = len(s.Platforms) - 1
		return nil
	})
	if err != nil {
		return nil, err
	}

	coRec, err := m.readTuple(dnsmConnection, i)
	if err != nil {
		return nil, err
	}
	groupElem := dnsmConnectionType.Attrs[1].Type.Elem
	connElem := groupElem.Attrs[1].Type.Elem
	err = dnsmConnectionType.VisitRel(coRec, 1, func(j, n int, group []byte) error {
		v, err := groupElem.DecodeAttr(group, 0)
		if err != nil {
			return err
		}
		pi, ok := byOwn[v.Int()]
		if !ok {
			return fmt.Errorf("store: connection group with unknown parent %d", v.Int())
		}
		return groupElem.VisitRel(group, 1, func(j, n int, elem []byte) error {
			if s.Platforms[pi].Conns == nil {
				s.Platforms[pi].Conns = make([]cobench.Connection, 0, n)
			}
			var c cobench.Connection
			for idx, dst := range [...]*int32{&c.LineNr, &c.KeyConnection, &c.OidConnection} {
				v, err := connElem.DecodeAttr(elem, idx)
				if err != nil {
					return err
				}
				*dst = v.Int()
			}
			v, err := connElem.DecodeAttr(elem, 3)
			if err != nil {
				return err
			}
			c.DepartureTimes = v.Str()
			s.Platforms[pi].Conns = append(s.Platforms[pi].Conns, c)
			return nil
		})
	})
	if err != nil {
		return nil, err
	}

	seRec, err := m.readTuple(dnsmSightseeing, i)
	if err != nil {
		return nil, err
	}
	seElem := dnsmSightseeingType.Attrs[1].Type.Elem
	err = dnsmSightseeingType.VisitRel(seRec, 1, func(j, n int, elem []byte) error {
		if s.Seeings == nil {
			s.Seeings = make([]cobench.Sightseeing, 0, n)
		}
		var g cobench.Sightseeing
		v, err := seElem.DecodeAttr(elem, 0)
		if err != nil {
			return err
		}
		g.Nr = v.Int()
		for idx, dst := range [...]*string{&g.Description, &g.Location, &g.History, &g.Remarks} {
			v, err := seElem.DecodeAttr(elem, idx+1)
			if err != nil {
				return err
			}
			*dst = v.Str()
		}
		s.Seeings = append(s.Seeings, g)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return s, nil
}

// FetchByAddress implements Model: the transformation table "immediately
// shows the addresses of all the tuples that together store an object".
func (m *dnsm) FetchByAddress(i int) (*cobench.Station, error) {
	if err := checkIndex(i, len(m.refs)); err != nil {
		return nil, err
	}
	return m.assemble(i)
}

// FetchByKey implements Model: "only the root tuple of the object is
// selected based on a value selection, whereupon we use the addresses in
// the index table to retrieve all other data by address" (§4). The value
// selection is a physical scan of the root relation (set-oriented, no
// early exit); the sub-relation tuples are then fetched by address.
func (m *dnsm) FetchByKey(key int32) (*cobench.Station, error) {
	if len(m.refs) == 0 {
		return nil, ErrNotLoaded
	}
	found := -1
	for i := range m.refs {
		rec, err := m.readTuple(dnsmStation, i)
		if err != nil {
			return nil, err
		}
		k, err := DecodeRootKey(rec)
		if err != nil {
			return nil, err
		}
		if k == key {
			found = i
		}
	}
	if found < 0 {
		return nil, fmt.Errorf("store: no station with key %d", key)
	}
	return m.assemble(found)
}

// ScanAll implements Model: every relation is read once; shared pages are
// touched once physically thanks to the cache.
func (m *dnsm) ScanAll(fn func(i int, s *cobench.Station) error) error {
	if len(m.refs) == 0 {
		return ErrNotLoaded
	}
	for i := range m.refs {
		s, err := m.assemble(i)
		if err != nil {
			return err
		}
		if err := fn(i, s); err != nil {
			return err
		}
	}
	return nil
}

// Navigate implements Model: the root tuple plus the object's single
// nested connection tuple. Platform and sightseeing relations stay
// untouched, which is why "the results for query 2b ... are independent of
// the number of Sightseeings" (§5.3).
func (m *dnsm) Navigate(i int) (cobench.RootRecord, []int32, error) {
	if err := checkIndex(i, len(m.refs)); err != nil {
		return cobench.RootRecord{}, nil, err
	}
	root, err := m.ReadRoot(i)
	if err != nil {
		return cobench.RootRecord{}, nil, err
	}
	coRec, err := m.readTuple(dnsmConnection, i)
	if err != nil {
		return cobench.RootRecord{}, nil, err
	}
	// Project only the LINK attributes out of the nested tuple.
	groups, err := dnsmConnectionType.DecodeAttr(coRec, 1)
	if err != nil {
		return cobench.RootRecord{}, nil, err
	}
	var children []int32
	for _, group := range groups.Tuples() {
		for _, ct := range group.Vals[1].Tuples() {
			children = append(children, ct.Vals[2].Int())
		}
	}
	return root, children, nil
}

// ReadRoot implements Model: one small-tuple access in the root relation.
func (m *dnsm) ReadRoot(i int) (cobench.RootRecord, error) {
	if err := checkIndex(i, len(m.refs)); err != nil {
		return cobench.RootRecord{}, err
	}
	rec, err := m.readTuple(dnsmStation, i)
	if err != nil {
		return cobench.RootRecord{}, err
	}
	return DecodeRoot(rec)
}

// UpdateRoots implements Model: replaces the small root tuples in place;
// the dirty shared pages are written back together at flush ("only small
// root tuples in the DASDBS-NSM_Station relation are updated, of which
// there are many on a single page").
func (m *dnsm) UpdateRoots(idxs []int32, mutate func(i int32, r *cobench.RootRecord)) error {
	for _, idx := range idxs {
		i := int(idx)
		if err := checkIndex(i, len(m.refs)); err != nil {
			return err
		}
		root, err := m.ReadRoot(i)
		if err != nil {
			return err
		}
		mutate(idx, &root)
		rec, err := EncodeRoot(root)
		if err != nil {
			return err
		}
		if err := m.stations.ReplaceAll(m.refs[i][dnsmStation], []longobj.Component{{Tag: 0, Data: rec}}); err != nil {
			return err
		}
	}
	return nil
}

// UpdateObject implements Model: the four nested tuples are re-encoded and
// replaced; tuples whose footprint changes relocate within their relation
// and the transformation table entry is refreshed.
func (m *dnsm) UpdateObject(i int, mutate func(s *cobench.Station) error) error {
	if err := checkIndex(i, len(m.refs)); err != nil {
		return err
	}
	st, err := m.assemble(i)
	if err != nil {
		return err
	}
	oldKey := st.Key
	if err := mutate(st); err != nil {
		return err
	}
	st.NoPlatform = int32(len(st.Platforms))
	st.NoSeeing = int32(len(st.Seeings))
	stRec, plRec, coRec, seRec, err := dnsmTuples(st)
	if err != nil {
		return err
	}
	for slot, rec := range map[int][]byte{
		dnsmStation: stRec, dnsmPlatform: plRec, dnsmConnection: coRec, dnsmSightseeing: seRec,
	} {
		ref, err := m.storeFor(slot).Replace(m.refs[i][slot], []longobj.Component{{Tag: 0, Data: rec}})
		if err != nil {
			return err
		}
		m.refs[i][slot] = ref
	}
	if st.Key != oldKey {
		delete(m.keyIdx, oldKey)
		m.keyIdx[st.Key] = i
	}
	return nil
}

// Flush implements Model.
func (m *dnsm) Flush() error { return m.eng.Flush() }

// Sizes implements Model.
func (m *dnsm) Sizes() SizeReport {
	n := len(m.refs)
	rel := func(s *longobj.Store, name string) RelationSize {
		shared := s.SharedHeap()
		r := RelationSize{
			Name:   "DASDBS-NSM_" + name,
			Tuples: shared.NumRecords() + s.NumLarge(),
			M:      s.TotalPages(),
		}
		if n > 0 {
			r.TuplesPerObject = float64(r.Tuples) / float64(n)
		}
		if r.Tuples > 0 {
			r.AvgTupleBytes = (float64(shared.Bytes()) + float64(s.LargeDataBytes())) / float64(r.Tuples)
		}
		if shared.NumPages() > 0 {
			r.K = shared.TuplesPerPage()
		}
		if s.NumLarge() > 0 {
			hdr, data := s.LargePages()
			r.P = float64(hdr+data) / float64(s.NumLarge())
		}
		return r
	}
	return SizeReport{
		Model: m.Kind().String(),
		Relations: []RelationSize{
			rel(m.stations, "Station"),
			rel(m.plats, "Platform"),
			rel(m.conns, "Connection"),
			rel(m.seeings, "Sightseeing"),
		},
	}
}
