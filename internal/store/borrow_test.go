package store

import (
	"bytes"
	"fmt"
	"testing"
)

// TestBorrowedViewsKeepBasePristine is the store-level borrow-safety
// regression for the zero-copy read path: a view over a frozen base
// serves requests from frames that alias the shared base arena, so a
// mutating request that skipped the copy-on-first-write promotion would
// corrupt the base for every sibling view. Several recycle generations of
// read + update traffic must leave the base arena byte-identical, with
// the pool actually borrowing (not silently falling back to copies).
func TestBorrowedViewsKeepBasePristine(t *testing.T) {
	stations := testExtension(t, 40)
	for _, k := range AllKinds() {
		t.Run(k.String(), func(t *testing.T) {
			loaded := loadModel(t, k, stations)
			base, err := Freeze(loaded)
			if err != nil {
				t.Fatal(err)
			}
			loaded.Engine().Close()
			defer base.Release()
			pristine := append([]byte(nil), checksumBase(base)...)

			v, err := base.NewView(Options{BufferPages: 200})
			if err != nil {
				t.Fatal(err)
			}
			defer v.Close()
			for gen := 0; gen < 3; gen++ {
				viewExercise(t, v.Model(), true)
				if got := v.Engine().Pool.Borrows(); got == 0 {
					t.Fatalf("generation %d: view served without borrowing a single frame", gen)
				}
				if !bytes.Equal(checksumBase(base), pristine) {
					t.Fatalf("generation %d: view traffic mutated the shared base arena", gen)
				}
				if _, err := v.Recycle(); err != nil {
					t.Fatal(err)
				}
			}
			// After the last recycle the base must still serve the original
			// data through a fresh read.
			root, err := v.Model().ReadRoot(2)
			if err != nil {
				t.Fatal(err)
			}
			if root.Name == fmt.Sprintf("upd #%d", 2) {
				t.Error("recycled view still shows the previous generation's update")
			}
			if !bytes.Equal(checksumBase(base), pristine) {
				t.Fatal("base arena mutated across recycles")
			}
		})
	}
}
