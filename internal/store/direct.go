package store

import (
	"fmt"

	"complexobj/cobench"
	"complexobj/internal/longobj"
)

// direct implements both direct storage models of §3.1 and §3.2. The
// physical layout is identical — each station is one clustered object with
// an object header — and only the access strategy differs:
//
//   - DSM (partial=false) always transfers every page of a touched object:
//     "complex objects are stored as a whole on as few disk pages as
//     possible" and are read back the same way;
//   - DASDBS-DSM (partial=true) consults the object header first and then
//     retrieves "only those pages ... that are actually used in a query",
//     and must therefore use per-tuple "change attribute" operations with
//     write-through page pools for updates (§5.3) instead of replacing the
//     whole tuple.
type direct struct {
	eng     *Engine
	partial bool
	objs    *longobj.Store
	addr    []longobj.Ref
	keyIdx  map[int32]int
}

func newDirect(e *Engine, partial bool) *direct {
	name := "DSM_Station"
	if partial {
		name = "DASDBS-DSM_Station"
	}
	return &direct{
		eng:     e,
		partial: partial,
		objs:    longobj.New(e.Dev, e.Pool, name),
		keyIdx:  make(map[int32]int),
	}
}

// Kind implements Model.
func (m *direct) Kind() Kind {
	if m.partial {
		return DASDBSDSM
	}
	return DSM
}

// Engine implements Model.
func (m *direct) Engine() *Engine { return m.eng }

// NumObjects implements Model.
func (m *direct) NumObjects() int { return len(m.addr) }

// Load implements Model.
func (m *direct) Load(stations []*cobench.Station) error {
	if len(m.addr) > 0 {
		return fmt.Errorf("store: %s already loaded", m.Kind())
	}
	for i, s := range stations {
		comps, err := EncodeComponents(s)
		if err != nil {
			return fmt.Errorf("store: encode station %d: %w", i, err)
		}
		ref, err := m.objs.Insert(comps)
		if err != nil {
			return fmt.Errorf("store: insert station %d: %w", i, err)
		}
		m.addr = append(m.addr, ref)
		m.keyIdx[s.Key] = i
	}
	return m.eng.Flush()
}

// fetch reads one whole object.
func (m *direct) fetch(i int) (*cobench.Station, error) {
	comps, err := m.objs.ReadAllShared(m.addr[i])
	if err != nil {
		return nil, err
	}
	return DecodeComponents(comps)
}

// FetchByAddress implements Model (query 1a): direct models resolve the
// address in memory and transfer the object's pages.
func (m *direct) FetchByAddress(i int) (*cobench.Station, error) {
	if err := checkIndex(i, len(m.addr)); err != nil {
		return nil, err
	}
	return m.fetch(i)
}

// FetchByKey implements Model (query 1b): a value selection has no address
// to go by, so the whole relation is scanned — every object is read and
// its key compared (the paper estimates the full m pages for this query,
// set-oriented selection without early termination).
func (m *direct) FetchByKey(key int32) (*cobench.Station, error) {
	if len(m.addr) == 0 {
		return nil, ErrNotLoaded
	}
	var found *cobench.Station
	for i := range m.addr {
		s, err := m.fetch(i)
		if err != nil {
			return nil, err
		}
		if s.Key == key {
			found = s
		}
	}
	if found == nil {
		return nil, fmt.Errorf("store: no station with key %d", key)
	}
	return found, nil
}

// ScanAll implements Model (query 1c).
func (m *direct) ScanAll(fn func(i int, s *cobench.Station) error) error {
	if len(m.addr) == 0 {
		return ErrNotLoaded
	}
	for i := range m.addr {
		s, err := m.fetch(i)
		if err != nil {
			return err
		}
		if err := fn(i, s); err != nil {
			return err
		}
	}
	return nil
}

// Navigate implements Model. DSM reads the whole object; DASDBS-DSM reads
// the header plus only the pages holding the root record and the platform
// components ("Since the Sightseeing sub-objects are not used in query 2
// and 3, we only need to retrieve the header page and a single data page").
func (m *direct) Navigate(i int) (cobench.RootRecord, []int32, error) {
	if err := checkIndex(i, len(m.addr)); err != nil {
		return cobench.RootRecord{}, nil, err
	}
	var comps []longobj.Component
	var err error
	if m.partial {
		comps, _, err = m.objs.ReadParts(m.addr[i], func(tag uint8, _ int) bool {
			return tag == TagRoot || tag == TagPlatform
		})
	} else {
		comps, err = m.objs.ReadAllShared(m.addr[i])
	}
	if err != nil {
		return cobench.RootRecord{}, nil, err
	}
	var root cobench.RootRecord
	var children []int32
	for _, c := range comps {
		switch c.Tag {
		case TagRoot:
			root, err = DecodeRoot(c.Data)
			if err != nil {
				return cobench.RootRecord{}, nil, err
			}
		case TagPlatform:
			kids, err := platformChildren(c.Data)
			if err != nil {
				return cobench.RootRecord{}, nil, err
			}
			children = append(children, kids...)
		}
	}
	return root, children, nil
}

// ReadRoot implements Model. DSM again pays the full object; DASDBS-DSM
// reads header + the root record's page only.
func (m *direct) ReadRoot(i int) (cobench.RootRecord, error) {
	if err := checkIndex(i, len(m.addr)); err != nil {
		return cobench.RootRecord{}, err
	}
	if m.partial {
		comps, _, err := m.objs.ReadParts(m.addr[i], func(tag uint8, _ int) bool {
			return tag == TagRoot
		})
		if err != nil {
			return cobench.RootRecord{}, err
		}
		if len(comps) != 1 {
			return cobench.RootRecord{}, fmt.Errorf("store: object %d has %d root components", i, len(comps))
		}
		return DecodeRoot(comps[0].Data)
	}
	comps, err := m.objs.ReadAllShared(m.addr[i])
	if err != nil {
		return cobench.RootRecord{}, err
	}
	for _, c := range comps {
		if c.Tag == TagRoot {
			return DecodeRoot(c.Data)
		}
	}
	return cobench.RootRecord{}, fmt.Errorf("store: object %d lost its root", i)
}

// UpdateRoots implements Model.
//
// DSM replaces the entire nested tuple — a batched "replace set of tuples"
// whose dirty pages are written together at the next flush/overflow.
//
// DASDBS-DSM "cannot replace the entire tuple since for each tuple only
// those pages are retrieved that are actually needed", so it issues one
// change-attribute operation per object, each paying an immediate page-pool
// write (§5.3) — the model's update anomaly.
func (m *direct) UpdateRoots(idxs []int32, mutate func(i int32, r *cobench.RootRecord)) error {
	for _, idx := range idxs {
		i := int(idx)
		if err := checkIndex(i, len(m.addr)); err != nil {
			return err
		}
		if m.partial {
			comps, cidx, err := m.objs.ReadParts(m.addr[i], func(tag uint8, _ int) bool {
				return tag == TagRoot
			})
			if err != nil {
				return err
			}
			if len(comps) != 1 {
				return fmt.Errorf("store: object %d has %d root components", i, len(comps))
			}
			root, err := DecodeRoot(comps[0].Data)
			if err != nil {
				return err
			}
			mutate(idx, &root)
			data, err := EncodeRoot(root)
			if err != nil {
				return err
			}
			if _, err := m.objs.ChangeComponent(m.addr[i], cidx[0], data); err != nil {
				return err
			}
			continue
		}
		comps, err := m.objs.ReadAllShared(m.addr[i])
		if err != nil {
			return err
		}
		replaced := false
		for ci := range comps {
			if comps[ci].Tag != TagRoot {
				continue
			}
			root, err := DecodeRoot(comps[ci].Data)
			if err != nil {
				return err
			}
			mutate(idx, &root)
			comps[ci].Data, err = EncodeRoot(root)
			if err != nil {
				return err
			}
			replaced = true
		}
		if !replaced {
			return fmt.Errorf("store: object %d lost its root", i)
		}
		if err := m.objs.ReplaceAll(m.addr[i], comps); err != nil {
			return err
		}
	}
	return nil
}

// UpdateObject implements Model: the whole object is re-encoded and
// replaced; if its page footprint changes it relocates to a fresh page run
// and the address table is updated (the in-memory table costs nothing, per
// the paper's accounting).
func (m *direct) UpdateObject(i int, mutate func(s *cobench.Station) error) error {
	if err := checkIndex(i, len(m.addr)); err != nil {
		return err
	}
	st, err := m.fetch(i)
	if err != nil {
		return err
	}
	oldKey := st.Key
	if err := mutate(st); err != nil {
		return err
	}
	st.NoPlatform = int32(len(st.Platforms))
	st.NoSeeing = int32(len(st.Seeings))
	comps, err := EncodeComponents(st)
	if err != nil {
		return err
	}
	ref, err := m.objs.Replace(m.addr[i], comps)
	if err != nil {
		return err
	}
	m.addr[i] = ref
	if st.Key != oldKey {
		delete(m.keyIdx, oldKey)
		m.keyIdx[st.Key] = i
	}
	return nil
}

// Flush implements Model.
func (m *direct) Flush() error { return m.eng.Flush() }

// Sizes implements Model.
func (m *direct) Sizes() SizeReport {
	n := len(m.addr)
	rel := RelationSize{Name: m.Kind().String() + "_Station", Tuples: n}
	if n > 0 {
		rel.TuplesPerObject = 1
		hdr, data := m.objs.LargePages()
		shared := m.objs.SharedHeap()
		rel.M = m.objs.TotalPages()
		rel.AvgTupleBytes = (float64(m.objs.LargeDataBytes()) + float64(shared.Bytes())) / float64(n)
		if m.objs.NumLarge() > 0 {
			rel.P = float64(hdr+data) / float64(m.objs.NumLarge())
		}
		if shared.NumPages() > 0 {
			rel.K = shared.TuplesPerPage()
		}
	}
	return SizeReport{Model: m.Kind().String(), Relations: []RelationSize{rel}}
}
