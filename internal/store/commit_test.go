package store

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"complexobj/cobench"
	"complexobj/internal/wal"
)

func openTestWAL(t *testing.T, path string) (*wal.Log, func(apply func(wal.CommitRecord, []wal.PageRecord) error) *wal.Log) {
	t.Helper()
	open := func(apply func(wal.CommitRecord, []wal.PageRecord) error) *wal.Log {
		f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { f.Close() })
		l, err := wal.Open(f, apply)
		if err != nil {
			t.Fatalf("wal open: %v", err)
		}
		return l
	}
	return open(nil), open
}

// TestViewCommitPromotesGeneration: a committed view's updates become the
// next base generation — visible to views opened after the commit,
// invisible to views opened before it (they drain on their generation).
func TestViewCommitPromotesGeneration(t *testing.T) {
	stations, err := cobench.Generate(cobench.DefaultConfig().WithN(40))
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range AllKinds() {
		t.Run(k.String(), func(t *testing.T) {
			orig := loadModel(t, k, stations)
			base, err := Freeze(orig)
			if err != nil {
				t.Fatal(err)
			}
			orig.Engine().Close()
			defer base.Release()
			if base.Gen() != 0 {
				t.Fatalf("fresh base at generation %d", base.Gen())
			}

			before, err := base.NewView(Options{BufferPages: 200})
			if err != nil {
				t.Fatal(err)
			}
			defer before.Close()

			writer, err := base.NewView(Options{BufferPages: 200})
			if err != nil {
				t.Fatal(err)
			}
			defer writer.Close()
			if err := writer.UpdateRoots([]int32{5, 11}, func(i int32, r *cobench.RootRecord) {
				r.Name = "committed update"
			}); err != nil {
				t.Fatal(err)
			}
			res, err := writer.Commit(nil)
			if err != nil {
				t.Fatalf("commit: %v", err)
			}
			if res.Gen != 1 || res.Pages == 0 {
				t.Fatalf("commit result %+v, want generation 1 with pages", res)
			}
			if base.Gen() != 1 {
				t.Fatalf("base at generation %d after commit", base.Gen())
			}
			if writer.Gen() != 0 {
				t.Fatalf("writer moved to generation %d; views stay on their open generation", writer.Gen())
			}

			after, err := base.NewView(Options{BufferPages: 200})
			if err != nil {
				t.Fatal(err)
			}
			defer after.Close()
			if after.Gen() != 1 {
				t.Fatalf("new view at generation %d", after.Gen())
			}
			got, err := after.FetchByKey(stations[5].Key)
			if err != nil {
				t.Fatal(err)
			}
			if got.Name != "committed update" {
				t.Fatal("view of the promoted generation does not observe the commit")
			}
			// The pre-commit view still reads the old generation, even
			// after recycling back to its pristine state.
			if _, err := before.Recycle(); err != nil {
				t.Fatal(err)
			}
			old, err := before.FetchByKey(stations[5].Key)
			if err != nil {
				t.Fatal(err)
			}
			if old.Name != stations[5].Name {
				t.Fatal("pre-commit view observes the promoted generation")
			}

			// An empty commit is a no-op: no promotion, generation stays.
			idle, err := base.NewView(Options{BufferPages: 200})
			if err != nil {
				t.Fatal(err)
			}
			defer idle.Close()
			if res, err := idle.Commit(nil); err != nil || res.Gen != 1 || res.Pages != 0 {
				t.Fatalf("empty commit: %+v, %v", res, err)
			}
			if base.Gen() != 1 {
				t.Fatalf("empty commit moved the base to generation %d", base.Gen())
			}
		})
	}
}

// TestPromoteStaleGeneration pins the optimistic-concurrency check.
func TestPromoteStaleGeneration(t *testing.T) {
	stations, err := cobench.Generate(cobench.DefaultConfig().WithN(20))
	if err != nil {
		t.Fatal(err)
	}
	orig := loadModel(t, NSM, stations)
	base, err := Freeze(orig)
	if err != nil {
		t.Fatal(err)
	}
	orig.Engine().Close()
	defer base.Release()
	meta := base.Meta()
	if _, err := base.Promote(0, base.NumPages(), meta, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := base.Promote(0, base.NumPages(), meta, nil); !errors.Is(err, ErrStaleBase) {
		t.Fatalf("stale promote: %v, want ErrStaleBase", err)
	}
	if base.Gen() != 1 {
		t.Fatalf("failed promote moved the generation to %d", base.Gen())
	}
}

// TestCommitWALReplayReconstructsGeneration is the tentpole round trip:
// commits logged through a real file-backed WAL, replayed over a second
// base frozen from the same original state, must land on a byte-identical
// arena and generation — the crash-recovery path in miniature.
func TestCommitWALReplayReconstructsGeneration(t *testing.T) {
	stations, err := cobench.Generate(cobench.DefaultConfig().WithN(40))
	if err != nil {
		t.Fatal(err)
	}
	orig := loadModel(t, DASDBSNSM, stations)
	live, err := Freeze(orig)
	if err != nil {
		t.Fatal(err)
	}
	recovered, err := Freeze(orig) // same pristine state, separate base
	if err != nil {
		t.Fatal(err)
	}
	orig.Engine().Close()
	defer live.Release()
	defer recovered.Release()

	log, reopen := openTestWAL(t, filepath.Join(t.TempDir(), "wal.log"))
	for round, name := range []string{"first committed name", "second committed name"} {
		v, err := live.NewView(Options{BufferPages: 200})
		if err != nil {
			t.Fatal(err)
		}
		if err := v.UpdateRoots([]int32{int32(round), 7}, func(i int32, r *cobench.RootRecord) {
			r.Name = name
		}); err != nil {
			t.Fatal(err)
		}
		res, err := v.Commit(log)
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if res.Seq != uint64(round+1) || res.Gen != uint64(round+1) {
			t.Fatalf("round %d: result %+v", round, res)
		}
		v.Close()
	}

	// "Crash": reopen the log and replay every committed batch onto the
	// recovered base.
	reopen(func(c wal.CommitRecord, pages []wal.PageRecord) error {
		if Kind(c.Model) != DASDBSNSM {
			t.Fatalf("replayed model %d", c.Model)
		}
		patches := make(map[int][]byte, len(pages))
		for _, p := range pages {
			patches[int(p.Page)] = p.Image
		}
		_, err := recovered.Promote(recovered.Gen(), int(c.NumPages), c.Meta, patches)
		return err
	})

	if recovered.Gen() != live.Gen() {
		t.Fatalf("recovered generation %d, live %d", recovered.Gen(), live.Gen())
	}
	if !bytes.Equal(checksumBase(recovered), checksumBase(live)) {
		t.Fatal("replayed arena differs from the live promoted arena")
	}
	v, err := recovered.NewView(Options{BufferPages: 200})
	if err != nil {
		t.Fatal(err)
	}
	defer v.Close()
	got, err := v.FetchByKey(stations[7].Key)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != "second committed name" {
		t.Fatalf("recovered view reads %q", got.Name)
	}
}
