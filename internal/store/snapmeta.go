package store

import (
	"errors"
	"fmt"

	"complexobj/internal/disk"
	"complexobj/internal/heap"
	"complexobj/internal/longobj"
	"complexobj/internal/wire"
)

// This file implements Model.SnapshotMeta / Model.RestoreMeta for the
// storage models: the serialization of everything a loaded model keeps
// outside the device pages — address tables, key indexes, heap and
// long-object directories. A snapshot is the device arena plus this blob;
// restoring both yields a model whose every subsequent query performs
// bit-identical I/O to the freshly loaded original (pinned by the
// snapshot round-trip tests).
//
// Each model versions its own blob so the formats can evolve
// independently of the snapshot container.

const (
	directMetaVersion = 1
	nsmMetaVersion    = 1
	dnsmMetaVersion   = 1
)

// ErrRestore reports an invalid or mismatched metadata blob.
var ErrRestore = errors.New("store: snapshot metadata restore failed")

func appendRID(b []byte, rid heap.RID) []byte {
	b = wire.AppendU32(b, uint32(rid.Page))
	return wire.AppendU16(b, rid.Slot)
}

func readRID(r *wire.Reader) heap.RID {
	return heap.RID{Page: disk.PageID(r.U32()), Slot: r.U16()}
}

// invertKeys rebuilds the dense key array from a key->index map.
func invertKeys(keyIdx map[int32]int, n int) ([]int32, error) {
	keys := make([]int32, n)
	seen := make([]bool, n)
	for k, i := range keyIdx {
		if i < 0 || i >= n || seen[i] {
			return nil, fmt.Errorf("%w: corrupt key index (key %d -> %d)", ErrRestore, k, i)
		}
		keys[i] = k
		seen[i] = true
	}
	for i, ok := range seen {
		if !ok {
			return nil, fmt.Errorf("%w: object %d has no key", ErrRestore, i)
		}
	}
	return keys, nil
}

// --- direct (DSM / DASDBS-DSM) ----------------------------------------------

// SnapshotMeta implements Model.
func (m *direct) SnapshotMeta() ([]byte, error) {
	keys, err := invertKeys(m.keyIdx, len(m.addr))
	if err != nil {
		return nil, err
	}
	b := wire.AppendU8(nil, directMetaVersion)
	b = wire.AppendU32(b, uint32(len(m.addr)))
	for i, ref := range m.addr {
		b = longobj.AppendRef(b, ref)
		b = wire.AppendU32(b, uint32(keys[i]))
	}
	return m.objs.AppendState(b), nil
}

// RestoreMeta implements Model.
func (m *direct) RestoreMeta(meta []byte) error {
	if len(m.addr) != 0 {
		return fmt.Errorf("%w: %s already loaded", ErrRestore, m.Kind())
	}
	r := wire.NewReader(meta)
	if v := r.U8(); v != directMetaVersion && r.Err() == nil {
		return fmt.Errorf("%w: direct meta version %d", ErrRestore, v)
	}
	n := r.Len(13) // Ref (9 bytes) + u32 key per object
	addr := make([]longobj.Ref, n)
	keyIdx := make(map[int32]int, n)
	for i := range addr {
		addr[i] = longobj.ReadRef(r)
		keyIdx[int32(r.U32())] = i
	}
	if err := r.Err(); err != nil {
		return fmt.Errorf("%w: %v", ErrRestore, err)
	}
	if err := m.objs.RestoreState(r); err != nil {
		return fmt.Errorf("%w: %v", ErrRestore, err)
	}
	if err := r.Close(); err != nil {
		return fmt.Errorf("%w: %v", ErrRestore, err)
	}
	m.addr, m.keyIdx = addr, keyIdx
	return nil
}

// --- nsm (NSM / NSM+index) --------------------------------------------------

// SnapshotMeta implements Model.
func (m *nsm) SnapshotMeta() ([]byte, error) {
	if m.countIndexIO {
		return nil, fmt.Errorf("store: %s: snapshots unsupported with counted index I/O (the ablation's B+-trees are rebuilt per run)", m.Kind())
	}
	n := len(m.stationRID)
	keys, err := invertKeys(m.keyIdx, n)
	if err != nil {
		return nil, err
	}
	b := wire.AppendU8(nil, nsmMetaVersion)
	b = wire.AppendU32(b, uint32(n))
	appendGroup := func(b []byte, rids []heap.RID) []byte {
		b = wire.AppendU32(b, uint32(len(rids)))
		for _, rid := range rids {
			b = appendRID(b, rid)
		}
		return b
	}
	for i := 0; i < n; i++ {
		b = appendRID(b, m.stationRID[i])
		b = wire.AppendU32(b, uint32(keys[i]))
		b = appendGroup(b, m.platRIDs[i])
		b = appendGroup(b, m.connRIDs[i])
		b = appendGroup(b, m.seeingRIDs[i])
	}
	for _, h := range []*heap.Heap{m.stations, m.plats, m.conns, m.seeings} {
		b = h.AppendState(b)
	}
	return b, nil
}

// RestoreMeta implements Model.
func (m *nsm) RestoreMeta(meta []byte) error {
	if len(m.stationRID) != 0 {
		return fmt.Errorf("%w: %s already loaded", ErrRestore, m.Kind())
	}
	if m.countIndexIO {
		return fmt.Errorf("%w: %s: snapshots unsupported with counted index I/O", ErrRestore, m.Kind())
	}
	r := wire.NewReader(meta)
	if v := r.U8(); v != nsmMetaVersion && r.Err() == nil {
		return fmt.Errorf("%w: nsm meta version %d", ErrRestore, v)
	}
	n := r.Len(22) // RID + key + three group counts per object
	stationRID := make([]heap.RID, n)
	keyIdx := make(map[int32]int, n)
	platRIDs := make([][]heap.RID, n)
	connRIDs := make([][]heap.RID, n)
	seeingRIDs := make([][]heap.RID, n)
	readGroup := func() []heap.RID {
		c := r.Len(6) // one RID per tuple
		if c == 0 {
			return nil
		}
		rids := make([]heap.RID, c)
		for i := range rids {
			rids[i] = readRID(r)
		}
		return rids
	}
	nPlats, nConns, nSeeings := 0, 0, 0
	for i := 0; i < n; i++ {
		stationRID[i] = readRID(r)
		keyIdx[int32(r.U32())] = i
		platRIDs[i] = readGroup()
		connRIDs[i] = readGroup()
		seeingRIDs[i] = readGroup()
		nPlats += len(platRIDs[i])
		nConns += len(connRIDs[i])
		nSeeings += len(seeingRIDs[i])
	}
	if err := r.Err(); err != nil {
		return fmt.Errorf("%w: %v", ErrRestore, err)
	}
	for _, h := range []*heap.Heap{m.stations, m.plats, m.conns, m.seeings} {
		if err := h.RestoreState(r); err != nil {
			return fmt.Errorf("%w: %v", ErrRestore, err)
		}
	}
	if err := r.Close(); err != nil {
		return fmt.Errorf("%w: %v", ErrRestore, err)
	}
	m.stationRID, m.keyIdx = stationRID, keyIdx
	m.platRIDs, m.connRIDs, m.seeingRIDs = platRIDs, connRIDs, seeingRIDs
	m.nPlats, m.nConns, m.nSeeings = nPlats, nConns, nSeeings
	return nil
}

// --- dnsm (DASDBS-NSM) ------------------------------------------------------

// SnapshotMeta implements Model.
func (m *dnsm) SnapshotMeta() ([]byte, error) {
	n := len(m.refs)
	keys, err := invertKeys(m.keyIdx, n)
	if err != nil {
		return nil, err
	}
	b := wire.AppendU8(nil, dnsmMetaVersion)
	b = wire.AppendU32(b, uint32(n))
	for i := 0; i < n; i++ {
		for slot := 0; slot < 4; slot++ {
			b = longobj.AppendRef(b, m.refs[i][slot])
		}
		b = wire.AppendU32(b, uint32(keys[i]))
	}
	for _, s := range []*longobj.Store{m.stations, m.plats, m.conns, m.seeings} {
		b = s.AppendState(b)
	}
	return b, nil
}

// RestoreMeta implements Model.
func (m *dnsm) RestoreMeta(meta []byte) error {
	if len(m.refs) != 0 {
		return fmt.Errorf("%w: %s already loaded", ErrRestore, m.Kind())
	}
	r := wire.NewReader(meta)
	if v := r.U8(); v != dnsmMetaVersion && r.Err() == nil {
		return fmt.Errorf("%w: dnsm meta version %d", ErrRestore, v)
	}
	n := r.Len(40) // four 9-byte Refs + u32 key per object
	refs := make([][4]longobj.Ref, n)
	keyIdx := make(map[int32]int, n)
	for i := 0; i < n; i++ {
		for slot := 0; slot < 4; slot++ {
			refs[i][slot] = longobj.ReadRef(r)
		}
		keyIdx[int32(r.U32())] = i
	}
	if err := r.Err(); err != nil {
		return fmt.Errorf("%w: %v", ErrRestore, err)
	}
	for _, s := range []*longobj.Store{m.stations, m.plats, m.conns, m.seeings} {
		if err := s.RestoreState(r); err != nil {
			return fmt.Errorf("%w: %v", ErrRestore, err)
		}
	}
	if err := r.Close(); err != nil {
		return fmt.Errorf("%w: %v", ErrRestore, err)
	}
	m.refs, m.keyIdx = refs, keyIdx
	return nil
}
