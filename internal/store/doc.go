// Package store implements the four complex-object storage models of the
// paper's §3 over the simulated DASDBS engine:
//
//   - DSM and DASDBS-DSM (direct.go): direct storage, objects clustered
//     as a whole; the DASDBS variant adds object headers, partial page
//     access and write-through change-attribute updates;
//   - NSM (nsm.go): normalized flat relations, with and without an index;
//   - DASDBS-NSM (dnsm.go): normalized nested relations plus a
//     transformation table.
//
// All models speak the same Model interface so the benchmark driver and
// the experiment harness treat them uniformly.
//
// An Engine (device + buffer pool) backs each model; engines are opened
// from a disk.BackendSpec, so where the page bytes live (heap, file, or a
// copy-on-write overlay) is a configuration choice that never changes the
// measured counters. A loaded model can be frozen into an immutable
// SharedBase (Freeze) from which any number of copy-on-write views open
// cheaply — one loaded extension shared across every worker of the
// parallel experiment matrix. Engine.Close on a view releases only the
// view's private overlay.
package store
