// Package store implements the four complex-object storage models of the
// paper's §3 over the simulated DASDBS engine:
//
//   - DSM and DASDBS-DSM (direct.go): direct storage, objects clustered
//     as a whole; the DASDBS variant adds object headers, partial page
//     access and write-through change-attribute updates;
//   - NSM (nsm.go): normalized flat relations, with and without an index;
//   - DASDBS-NSM (dnsm.go): normalized nested relations plus a
//     transformation table.
//
// All models speak the same Model interface so the benchmark driver and
// the experiment harness treat them uniformly.
//
// An Engine (device + buffer pool) backs each model; engines are opened
// from a disk.BackendSpec, so where the page bytes live (heap, file, or a
// copy-on-write overlay) is a configuration choice that never changes the
// measured counters. A loaded model can be frozen into an immutable
// SharedBase (Freeze) from which any number of copy-on-write views open
// cheaply — one loaded extension shared across every worker of the
// parallel experiment matrix. Engine.Close on a view releases only the
// view's private overlay; the base arena itself is reference counted
// (disk.BaseArena) and survives until its last view and its last handle
// are gone, so a SharedBase.Release never pulls a mapped snapshot out
// from under a running query.
//
// BaseCache keys frozen bases by (model kind, page size, generator
// configuration): the deterministic generator makes equal keys equal
// databases, so every fan-out experiment — the matrix, the sweeps,
// repeated CLI runs within one process — can route model acquisition
// through one cache and pay for each distinct database exactly once,
// with concurrent requesters blocking on a single build. Entries come in
// two lifetimes: Get pins an entry until Close (default-configuration
// bases that later experiments revisit), while GetScoped hands back a
// release function and the cache drops the base as soon as the last
// scoped user of a one-off configuration releases it — sweep memory
// tracks the cells in flight, not the number of configurations swept.
//
// View is the request-scoped execution handle built on a SharedBase: a
// copy-on-write model view that Recycle resets to the pristine base
// between requests (overlay dropped, pool emptied without write-back,
// counters zeroed, directory metadata rebuilt only after a mutating
// request), reusing the engine and its free lists instead of rebuilding
// them. A recycled view is indistinguishable from a fresh one — the
// benchmark server serves every request from one and measures
// bit-identically to a batch run.
package store
