package store

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"

	"complexobj/cobench"
	"complexobj/internal/disk"
)

// TestBaseCacheBuildsOnce pins the cache contract: one build per key, no
// matter how many concurrent requesters race for it; distinct keys get
// distinct bases; errors are cached like results.
func TestBaseCacheBuildsOnce(t *testing.T) {
	stations, err := cobench.Generate(cobench.DefaultConfig().WithN(30))
	if err != nil {
		t.Fatal(err)
	}
	c := NewBaseCache()
	defer c.Close()

	var builds atomic.Int64
	build := func(k Kind) func() (*SharedBase, error) {
		return func() (*SharedBase, error) {
			builds.Add(1)
			m := mustNew(k, Options{BufferPages: 128})
			defer m.Engine().Close()
			if err := m.Load(stations); err != nil {
				return nil, err
			}
			return Freeze(m)
		}
	}
	key := BaseKey{Kind: DASDBSNSM, Gen: cobench.DefaultConfig().WithN(30)}
	var wg sync.WaitGroup
	bases := make([]*SharedBase, 8)
	for i := range bases {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			b, err := c.Get(key, build(DASDBSNSM))
			if err != nil {
				t.Error(err)
				return
			}
			bases[i] = b
		}(i)
	}
	wg.Wait()
	if builds.Load() != 1 {
		t.Errorf("8 concurrent gets ran %d builds, want 1", builds.Load())
	}
	for _, b := range bases[1:] {
		if b != bases[0] {
			t.Fatal("concurrent gets returned distinct bases")
		}
	}

	// A different kind under the same generator config is a new key.
	if _, err := c.Get(BaseKey{Kind: DSM, Gen: key.Gen}, build(DSM)); err != nil {
		t.Fatal(err)
	}
	if builds.Load() != 2 || c.Len() != 2 {
		t.Errorf("after second kind: %d builds, %d entries", builds.Load(), c.Len())
	}

	// Zero page size normalizes onto the default-page-size entry.
	withPS := key
	withPS.PageSize = disk.DefaultPageSize
	b, err := c.Get(withPS, build(DASDBSNSM))
	if err != nil || b != bases[0] {
		t.Errorf("explicit default page size missed the cache (err %v)", err)
	}

	// Build errors are cached and replayed, not retried.
	boom := errors.New("boom")
	bad := BaseKey{Kind: NSM, Gen: key.Gen}
	for i := 0; i < 2; i++ {
		if _, err := c.Get(bad, func() (*SharedBase, error) { builds.Add(1); return nil, boom }); !errors.Is(err, boom) {
			t.Errorf("error not cached: %v", err)
		}
	}
	if builds.Load() != 3 {
		t.Errorf("failed build retried: %d builds", builds.Load())
	}
}

// TestBaseCacheReleaseLifecycle proves the satellite refcount guarantee
// at the store level: closing the cache releases its reference, but the
// base arena is actually released only after the last open view closes.
func TestBaseCacheReleaseLifecycle(t *testing.T) {
	stations, err := cobench.Generate(cobench.DefaultConfig().WithN(30))
	if err != nil {
		t.Fatal(err)
	}
	c := NewBaseCache()
	key := BaseKey{Kind: DASDBSDSM, Gen: cobench.DefaultConfig().WithN(30)}
	base, err := c.Get(key, func() (*SharedBase, error) {
		m := loadModel(t, DASDBSDSM, stations)
		defer m.Engine().Close()
		return Freeze(m)
	})
	if err != nil {
		t.Fatal(err)
	}
	v1, err := base.Open(Options{BufferPages: 128})
	if err != nil {
		t.Fatal(err)
	}
	v2, err := base.Open(Options{BufferPages: 128})
	if err != nil {
		t.Fatal(err)
	}
	if got := base.arena.Refs(); got != 3 {
		t.Fatalf("refs with cache + 2 views = %d, want 3", got)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if got := base.arena.Refs(); got != 2 {
		t.Fatalf("refs after cache close = %d, want 2 (views)", got)
	}
	// Views must stay fully usable after the cache let go.
	if _, err := v1.FetchByAddress(3); err != nil {
		t.Fatalf("view broken after cache close: %v", err)
	}
	if err := v1.Engine().Close(); err != nil {
		t.Fatal(err)
	}
	if got := base.arena.Refs(); got != 1 {
		t.Fatalf("refs after first view close = %d, want 1", got)
	}
	if _, err := v2.FetchByAddress(3); err != nil {
		t.Fatalf("last view broken: %v", err)
	}
	if err := v2.Engine().Close(); err != nil {
		t.Fatal(err)
	}
	if got := base.arena.Refs(); got != 0 {
		t.Fatalf("base not released after last view: refs = %d", got)
	}
	if _, err := c.Get(key, nil); err == nil {
		t.Error("Get after Close succeeded")
	}
}

// TestBaseCacheScopedRelease pins the scoped-acquisition contract: the
// cache drops a base — reference released, entry forgotten — when the
// last scoped user of its key releases, unless a pinning Get ever touched
// the key; a key acquired again after eviction rebuilds deterministically.
func TestBaseCacheScopedRelease(t *testing.T) {
	stations := testExtension(t, 30)
	c := NewBaseCache()
	defer c.Close()
	var builds atomic.Int64
	build := func() (*SharedBase, error) {
		builds.Add(1)
		m := loadModel(t, DASDBSNSM, stations)
		defer m.Engine().Close()
		return Freeze(m)
	}
	key := BaseKey{Kind: DASDBSNSM, Gen: cobench.DefaultConfig().WithN(30)}

	// Two overlapping scoped users share one build; the second release
	// evicts the entry and releases the base.
	b1, rel1, err := c.GetScoped(key, build)
	if err != nil {
		t.Fatal(err)
	}
	b2, rel2, err := c.GetScoped(key, build)
	if err != nil {
		t.Fatal(err)
	}
	if b1 != b2 || builds.Load() != 1 {
		t.Fatalf("overlapping scoped gets: %d builds, shared=%v", builds.Load(), b1 == b2)
	}
	if err := rel1(); err != nil {
		t.Fatal(err)
	}
	if c.Len() != 1 {
		t.Fatalf("entry evicted while a scoped user is live (len %d)", c.Len())
	}
	if err := rel1(); err != nil { // idempotent per acquisition
		t.Fatal(err)
	}
	if err := rel2(); err != nil {
		t.Fatal(err)
	}
	if c.Len() != 0 {
		t.Fatalf("entry not evicted after last scoped release (len %d)", c.Len())
	}
	if got := b1.arena.Refs(); got != 0 {
		t.Fatalf("scoped base not released: refs = %d", got)
	}

	// Re-acquiring the evicted key rebuilds.
	_, rel3, err := c.GetScoped(key, build)
	if err != nil {
		t.Fatal(err)
	}
	if builds.Load() != 2 {
		t.Fatalf("re-acquire after eviction ran %d builds, want 2", builds.Load())
	}

	// A pinning Get on the live entry disables eviction for good.
	b4, err := c.Get(key, build)
	if err != nil {
		t.Fatal(err)
	}
	if builds.Load() != 2 {
		t.Fatalf("pinning get rebuilt (builds %d)", builds.Load())
	}
	if err := rel3(); err != nil {
		t.Fatal(err)
	}
	if c.Len() != 1 {
		t.Fatalf("pinned entry evicted by scoped release (len %d)", c.Len())
	}
	if b4.arena.Refs() == 0 {
		t.Fatal("pinned base released by scoped release")
	}
	if c.Built() != 2 {
		t.Fatalf("Built() = %d, want 2", c.Built())
	}
}
