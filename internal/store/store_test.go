package store

import (
	"errors"
	"fmt"
	"testing"

	"complexobj/cobench"
)

// testExtension returns a small deterministic benchmark extension.
func testExtension(t *testing.T, n int) []*cobench.Station {
	t.Helper()
	cfg := cobench.DefaultConfig().WithN(n)
	stations, err := cobench.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return stations
}

// loadModel builds and loads a model over a fresh engine.
func loadModel(t *testing.T, k Kind, stations []*cobench.Station) Model {
	t.Helper()
	m := mustNew(k, Options{BufferPages: 256})
	if err := m.Load(stations); err != nil {
		t.Fatalf("%s load: %v", k, err)
	}
	if err := m.Engine().ColdCache(); err != nil {
		t.Fatal(err)
	}
	m.Engine().ResetStats()
	return m
}

func TestKindString(t *testing.T) {
	want := map[Kind]string{
		DSM: "DSM", DASDBSDSM: "DASDBS-DSM", NSM: "NSM",
		NSMIndex: "NSM+index", DASDBSNSM: "DASDBS-NSM",
	}
	for k, w := range want {
		if k.String() != w {
			t.Errorf("%d.String() = %q, want %q", k, k.String(), w)
		}
	}
	if len(AllKinds()) != 5 {
		t.Errorf("AllKinds() = %v", AllKinds())
	}
}

func TestFetchByAddressAllModels(t *testing.T) {
	stations := testExtension(t, 60)
	for _, k := range AllKinds() {
		t.Run(k.String(), func(t *testing.T) {
			m := loadModel(t, k, stations)
			for _, i := range []int{0, 7, 31, 59} {
				got, err := m.FetchByAddress(i)
				if k == NSM {
					if !errors.Is(err, ErrNoAddressAccess) {
						t.Fatalf("pure NSM FetchByAddress err = %v, want ErrNoAddressAccess", err)
					}
					return
				}
				if err != nil {
					t.Fatalf("FetchByAddress(%d): %v", i, err)
				}
				if !got.Equal(stations[i]) {
					t.Fatalf("station %d mismatch", i)
				}
			}
		})
	}
}

func TestFetchByKeyAllModels(t *testing.T) {
	stations := testExtension(t, 60)
	for _, k := range AllKinds() {
		t.Run(k.String(), func(t *testing.T) {
			m := loadModel(t, k, stations)
			for _, i := range []int{3, 42} {
				got, err := m.FetchByKey(cobench.KeyOf(i))
				if err != nil {
					t.Fatalf("FetchByKey: %v", err)
				}
				if !got.Equal(stations[i]) {
					t.Fatalf("station %d mismatch via key", i)
				}
			}
			if _, err := m.FetchByKey(999999); err == nil {
				t.Error("missing key accepted")
			}
		})
	}
}

func TestScanAllAllModels(t *testing.T) {
	stations := testExtension(t, 60)
	for _, k := range AllKinds() {
		t.Run(k.String(), func(t *testing.T) {
			m := loadModel(t, k, stations)
			seen := 0
			err := m.ScanAll(func(i int, s *cobench.Station) error {
				if !s.Equal(stations[i]) {
					return fmt.Errorf("station %d mismatch in scan", i)
				}
				seen++
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
			if seen != len(stations) {
				t.Errorf("scan visited %d of %d", seen, len(stations))
			}
		})
	}
}

func TestNavigateAllModels(t *testing.T) {
	stations := testExtension(t, 60)
	for _, k := range AllKinds() {
		t.Run(k.String(), func(t *testing.T) {
			m := loadModel(t, k, stations)
			for i, want := range stations {
				root, children, err := m.Navigate(i)
				if err != nil {
					t.Fatalf("Navigate(%d): %v", i, err)
				}
				if root != want.Root() {
					t.Fatalf("Navigate(%d) root mismatch", i)
				}
				wantKids := want.Children()
				if len(children) != len(wantKids) {
					t.Fatalf("Navigate(%d): %d children, want %d", i, len(children), len(wantKids))
				}
				for j := range children {
					if children[j] != wantKids[j] {
						t.Fatalf("Navigate(%d) child %d = %d, want %d", i, j, children[j], wantKids[j])
					}
				}
			}
		})
	}
}

func TestReadRootAllModels(t *testing.T) {
	stations := testExtension(t, 40)
	for _, k := range AllKinds() {
		t.Run(k.String(), func(t *testing.T) {
			m := loadModel(t, k, stations)
			for i, want := range stations {
				got, err := m.ReadRoot(i)
				if err != nil {
					t.Fatalf("ReadRoot(%d): %v", i, err)
				}
				if got != want.Root() {
					t.Fatalf("ReadRoot(%d) mismatch", i)
				}
			}
		})
	}
}

func TestUpdateRootsAllModels(t *testing.T) {
	stations := testExtension(t, 40)
	for _, k := range AllKinds() {
		t.Run(k.String(), func(t *testing.T) {
			m := loadModel(t, k, stations)
			idxs := []int32{1, 5, 9, 9, 20} // duplicate on purpose
			err := m.UpdateRoots(idxs, func(i int32, r *cobench.RootRecord) {
				r.Name = fmt.Sprintf("updated-%d", i)
			})
			if err != nil {
				t.Fatal(err)
			}
			if err := m.Flush(); err != nil {
				t.Fatal(err)
			}
			if err := m.Engine().ColdCache(); err != nil {
				t.Fatal(err)
			}
			// Updated roots visible after a cold restart.
			for _, i := range []int32{1, 5, 9, 20} {
				r, err := m.ReadRoot(int(i))
				if err != nil {
					t.Fatal(err)
				}
				if r.Name != fmt.Sprintf("updated-%d", i) {
					t.Errorf("root %d not updated: %q", i, r.Name)
				}
			}
			// Untouched object unchanged, structure preserved.
			var got *cobench.Station
			var err2 error
			if k == NSM {
				got, err2 = m.FetchByKey(cobench.KeyOf(2))
			} else {
				got, err2 = m.FetchByAddress(2)
			}
			if err2 != nil {
				t.Fatal(err2)
			}
			if !got.Equal(stations[2]) {
				t.Error("untouched station changed")
			}
			// The updated object keeps its sub-structure.
			if k == NSM {
				got, err2 = m.FetchByKey(cobench.KeyOf(9))
			} else {
				got, err2 = m.FetchByAddress(9)
			}
			if err2 != nil {
				t.Fatal(err2)
			}
			if got.Name != "updated-9" {
				t.Error("update lost after reload")
			}
			if len(got.Platforms) != len(stations[9].Platforms) ||
				len(got.Seeings) != len(stations[9].Seeings) {
				t.Error("update disturbed object structure")
			}
		})
	}
}

func TestErrorsOnEmptyAndBadIndex(t *testing.T) {
	for _, k := range AllKinds() {
		m := mustNew(k, Options{BufferPages: 16})
		if _, err := m.FetchByKey(1); !errors.Is(err, ErrNotLoaded) {
			t.Errorf("%s: FetchByKey empty err = %v", k, err)
		}
		if err := m.ScanAll(func(int, *cobench.Station) error { return nil }); !errors.Is(err, ErrNotLoaded) {
			t.Errorf("%s: ScanAll empty err = %v", k, err)
		}
	}
	stations := testExtension(t, 10)
	for _, k := range AllKinds() {
		m := loadModel(t, k, stations)
		if _, _, err := m.Navigate(99); !errors.Is(err, ErrBadObject) {
			t.Errorf("%s: Navigate(99) err = %v", k, err)
		}
		if _, err := m.ReadRoot(-1); !errors.Is(err, ErrBadObject) {
			t.Errorf("%s: ReadRoot(-1) err = %v", k, err)
		}
		if err := m.Load(stations); err == nil {
			t.Errorf("%s: double load accepted", k)
		}
	}
}

// --- I/O shape assertions (the paper's qualitative claims) -----------------

// coldStats runs fn on a cold cache and returns the I/O delta.
func coldStats(t *testing.T, m Model, fn func()) (pagesRead, readCalls, pagesWritten int64) {
	t.Helper()
	if err := m.Engine().ColdCache(); err != nil {
		t.Fatal(err)
	}
	m.Engine().ResetStats()
	fn()
	s := m.Engine().Stats()
	return s.PagesRead, s.ReadCalls, s.PagesWritten
}

func TestDirectReadRootShape(t *testing.T) {
	stations := testExtension(t, 40)
	dsm := loadModel(t, DSM, stations)
	ddsm := loadModel(t, DASDBSDSM, stations)
	// Pick an object that is certainly multi-page (many sightseeings).
	big := -1
	for i, s := range stations {
		if len(s.Seeings) >= 10 {
			big = i
			break
		}
	}
	if big < 0 {
		t.Fatal("no big object in extension")
	}
	dsmPages, _, _ := coldStats(t, dsm, func() {
		if _, err := dsm.ReadRoot(big); err != nil {
			t.Fatal(err)
		}
	})
	ddsmPages, ddsmCalls, _ := coldStats(t, ddsm, func() {
		if _, err := ddsm.ReadRoot(big); err != nil {
			t.Fatal(err)
		}
	})
	// Paper: "the direct storage models need at least two page fetches per
	// large tuple (header and data)"; DASDBS-DSM reads exactly header + the
	// root record's data page, DSM transfers the whole object.
	if ddsmPages != 2 {
		t.Errorf("DASDBS-DSM ReadRoot pages = %d, want 2 (header + one data page)", ddsmPages)
	}
	if ddsmCalls != 2 {
		t.Errorf("DASDBS-DSM ReadRoot calls = %d, want 2", ddsmCalls)
	}
	if dsmPages <= ddsmPages {
		t.Errorf("DSM ReadRoot pages = %d, not larger than DASDBS-DSM's %d", dsmPages, ddsmPages)
	}
}

func TestDirectNavigateSkipsSightseeings(t *testing.T) {
	stations := testExtension(t, 40)
	dsm := loadModel(t, DSM, stations)
	ddsm := loadModel(t, DASDBSDSM, stations)
	var dsmTotal, ddsmTotal int64
	for i, s := range stations {
		if len(s.Seeings) < 8 {
			continue
		}
		p1, _, _ := coldStats(t, dsm, func() { dsm.Navigate(i) })
		p2, _, _ := coldStats(t, ddsm, func() { ddsm.Navigate(i) })
		dsmTotal += p1
		ddsmTotal += p2
	}
	if ddsmTotal >= dsmTotal {
		t.Errorf("navigation pages: DASDBS-DSM %d >= DSM %d; partial access buys nothing",
			ddsmTotal, dsmTotal)
	}
}

func TestNSMValueQueryScansEverything(t *testing.T) {
	stations := testExtension(t, 120)
	pure := loadModel(t, NSM, stations)
	idx := loadModel(t, NSMIndex, stations)

	purePages, _, _ := coldStats(t, pure, func() {
		if _, err := pure.FetchByKey(cobench.KeyOf(50)); err != nil {
			t.Fatal(err)
		}
	})
	idxPages, _, _ := coldStats(t, idx, func() {
		if _, err := idx.FetchByKey(cobench.KeyOf(50)); err != nil {
			t.Fatal(err)
		}
	})
	total := int64(pure.Sizes().TotalPages())
	if purePages != total {
		t.Errorf("pure NSM value query read %d pages, want full scan of all relations (%d)",
			purePages, total)
	}
	stationPages := int64(0)
	for _, rel := range idx.Sizes().Relations {
		if rel.Name == "NSM_Station" {
			stationPages = int64(rel.M)
		}
	}
	if idxPages >= purePages {
		t.Errorf("NSM+index value query (%d pages) not cheaper than pure NSM (%d)", idxPages, purePages)
	}
	if idxPages < stationPages {
		t.Errorf("NSM+index value query read %d pages, below the root relation scan (%d)",
			idxPages, stationPages)
	}
	if idxPages > stationPages+12 {
		t.Errorf("NSM+index value query read %d pages, want ~scan(%d)+handful", idxPages, stationPages)
	}
}

func TestDNSMNavigateTouchesTwoRelations(t *testing.T) {
	stations := testExtension(t, 40)
	m := loadModel(t, DASDBSNSM, stations)
	pages, _, _ := coldStats(t, m, func() {
		if _, _, err := m.Navigate(5); err != nil {
			t.Fatal(err)
		}
	})
	// Root tuple page + connection tuple page.
	if pages != 2 {
		t.Errorf("DASDBS-NSM navigate cold pages = %d, want 2", pages)
	}
}

func TestDNSMNavigateIndependentOfSightseeings(t *testing.T) {
	// The same navigation must cost the same pages whether objects carry 0
	// or 30 sightseeings (Figure 5's flat DASDBS-NSM bars for query 2b).
	cost := func(maxSeeing int) int64 {
		cfg := cobench.DefaultConfig().WithN(40).WithMaxSeeing(maxSeeing)
		stations, err := cobench.Generate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		m := loadModel(t, DASDBSNSM, stations)
		pages, _, _ := coldStats(t, m, func() {
			for i := 0; i < 40; i++ {
				if _, _, err := m.Navigate(i); err != nil {
					t.Fatal(err)
				}
			}
		})
		return pages
	}
	c0, c30 := cost(0), cost(30)
	if c0 != c30 {
		t.Errorf("DASDBS-NSM navigation pages vary with sightseeings: %d vs %d", c0, c30)
	}
}

func TestUpdateWritePolicyShape(t *testing.T) {
	stations := testExtension(t, 40)
	grand := []int32{3, 8, 12, 17, 22, 28}
	mut := func(i int32, r *cobench.RootRecord) { r.Name = fmt.Sprintf("upd-%d", i) }

	// DSM: deferred batched writes (replace set of tuples).
	dsm := loadModel(t, DSM, stations)
	_, _, writesBeforeFlush := coldStats(t, dsm, func() {
		if err := dsm.UpdateRoots(grand, mut); err != nil {
			t.Fatal(err)
		}
	})
	if writesBeforeFlush != 0 {
		t.Errorf("DSM wrote %d pages before flush; replace-set-of-tuples must batch", writesBeforeFlush)
	}
	dsm.Engine().ResetStats()
	if err := dsm.Flush(); err != nil {
		t.Fatal(err)
	}
	if w := dsm.Engine().Stats().PagesWritten; w == 0 {
		t.Error("DSM flush wrote nothing")
	}

	// DASDBS-DSM: write-through page pool per updated tuple.
	ddsm := loadModel(t, DASDBSDSM, stations)
	_, _, ddsmWrites := coldStats(t, ddsm, func() {
		if err := ddsm.UpdateRoots(grand, mut); err != nil {
			t.Fatal(err)
		}
	})
	if ddsmWrites < int64(len(grand)) {
		t.Errorf("DASDBS-DSM wrote %d pages during %d change-attribute ops; want >= one per op (§5.3 anomaly)",
			ddsmWrites, len(grand))
	}

	// DASDBS-NSM: root tuples share pages; a batch of updates must write
	// far fewer pages than updates.
	dnsmM := loadModel(t, DASDBSNSM, stations)
	if err := dnsmM.Engine().ColdCache(); err != nil {
		t.Fatal(err)
	}
	dnsmM.Engine().ResetStats()
	if err := dnsmM.UpdateRoots(grand, mut); err != nil {
		t.Fatal(err)
	}
	if err := dnsmM.Flush(); err != nil {
		t.Fatal(err)
	}
	if w := dnsmM.Engine().Stats().PagesWritten; w >= int64(len(grand)) {
		t.Errorf("DASDBS-NSM wrote %d pages for %d root updates; shared pages must batch", w, len(grand))
	}
}

func TestSizesReports(t *testing.T) {
	stations := testExtension(t, 100)
	for _, k := range AllKinds() {
		m := loadModel(t, k, stations)
		rep := m.Sizes()
		if rep.Model != k.String() {
			t.Errorf("%s: report model %q", k, rep.Model)
		}
		wantRels := 1
		if k == NSM || k == NSMIndex || k == DASDBSNSM {
			wantRels = 4
		}
		if len(rep.Relations) != wantRels {
			t.Fatalf("%s: %d relations, want %d", k, len(rep.Relations), wantRels)
		}
		if rep.TotalPages() <= 0 {
			t.Errorf("%s: no pages reported", k)
		}
		for _, rel := range rep.Relations {
			if rel.Tuples < 0 || rel.M < 0 || rel.AvgTupleBytes < 0 {
				t.Errorf("%s: nonsense relation %+v", k, rel)
			}
		}
	}
}

func TestNormalizedSmallerThanDirect(t *testing.T) {
	// The flat normalized model avoids the per-object header/padding pages,
	// so its total footprint must be below the direct models' (paper
	// Table 2: 6000 pages for DSM vs ~3700 normalized). DASDBS-NSM pays a
	// header page per large sightseeing tuple, so it only has to stay in
	// the same ballpark as DSM here (the paper's wide 6000-vs-3800 gap is
	// driven by DASDBS's DSM tuple overhead, which our leaner encoding does
	// not replicate; see EXPERIMENTS.md).
	stations := testExtension(t, 200)
	direct := loadModel(t, DSM, stations).Sizes().TotalPages()
	norm := loadModel(t, NSM, stations).Sizes().TotalPages()
	dnsmPages := loadModel(t, DASDBSNSM, stations).Sizes().TotalPages()
	if norm >= direct {
		t.Errorf("NSM pages %d >= DSM pages %d", norm, direct)
	}
	if float64(dnsmPages) > 1.15*float64(direct) {
		t.Errorf("DASDBS-NSM pages %d far beyond DSM pages %d", dnsmPages, direct)
	}
}

func TestSmallObjectsShareDirectPages(t *testing.T) {
	// With maxSeeing=0 most stations fit a single page and must share pages
	// (Figure 5 discussion: "several objects will share a single page").
	cfg := cobench.DefaultConfig().WithN(100).WithMaxSeeing(0)
	stations, err := cobench.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m := loadModel(t, DSM, stations)
	rep := m.Sizes()
	if rep.TotalPages() >= 100 {
		t.Errorf("100 tiny objects on %d pages; page sharing broken", rep.TotalPages())
	}
}

func TestUpdateObjectStructural(t *testing.T) {
	stations := testExtension(t, 50)
	for _, k := range AllKinds() {
		t.Run(k.String(), func(t *testing.T) {
			m := loadModel(t, k, stations)
			// Grow: add a platform with a connection and three sightseeings.
			err := m.UpdateObject(4, func(s *cobench.Station) error {
				s.Platforms = append(s.Platforms, cobench.Platform{
					Nr: 9, NoLine: 1, TicketCode: 1234, Information: "new platform",
					Conns: []cobench.Connection{{LineNr: 1, KeyConnection: cobench.KeyOf(2), OidConnection: 2, DepartureTimes: "08:00"}},
				})
				for j := 0; j < 3; j++ {
					s.Seeings = append(s.Seeings, cobench.Sightseeing{
						Nr: int32(100 + j), Description: "added", Location: "here",
						History: "new", Remarks: "-",
					})
				}
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
			if err := m.Flush(); err != nil {
				t.Fatal(err)
			}
			if err := m.Engine().ColdCache(); err != nil {
				t.Fatal(err)
			}
			got, err := m.FetchByKey(cobench.KeyOf(4))
			if err != nil {
				t.Fatal(err)
			}
			wantPlat := len(stations[4].Platforms) + 1
			wantSee := len(stations[4].Seeings) + 3
			if len(got.Platforms) != wantPlat || len(got.Seeings) != wantSee {
				t.Fatalf("structural grow lost: %d platforms (want %d), %d seeings (want %d)",
					len(got.Platforms), wantPlat, len(got.Seeings), wantSee)
			}
			if got.NoPlatform != int32(wantPlat) || got.NoSeeing != int32(wantSee) {
				t.Error("root counters not refreshed")
			}
			// The new child is navigable.
			_, children, err := m.Navigate(4)
			if err != nil {
				t.Fatal(err)
			}
			found := false
			for _, c := range children {
				if c == 2 {
					found = true
				}
			}
			if !found {
				t.Error("added connection not visible to navigation")
			}
			// Shrink: drop all sightseeings (relocation back to small for
			// direct models).
			err = m.UpdateObject(4, func(s *cobench.Station) error {
				s.Seeings = nil
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
			if err := m.Flush(); err != nil {
				t.Fatal(err)
			}
			if err := m.Engine().ColdCache(); err != nil {
				t.Fatal(err)
			}
			got, err = m.FetchByKey(cobench.KeyOf(4))
			if err != nil {
				t.Fatal(err)
			}
			if len(got.Seeings) != 0 || got.NoSeeing != 0 {
				t.Fatal("shrink lost")
			}
			// Untouched neighbours unaffected.
			other, err := m.FetchByKey(cobench.KeyOf(5))
			if err != nil {
				t.Fatal(err)
			}
			if !other.Equal(stations[5]) {
				t.Error("neighbour object disturbed by relocation")
			}
		})
	}
}

func TestUpdateObjectErrors(t *testing.T) {
	stations := testExtension(t, 10)
	m := loadModel(t, DSM, stations)
	if err := m.UpdateObject(99, func(*cobench.Station) error { return nil }); !errors.Is(err, ErrBadObject) {
		t.Errorf("bad index err = %v", err)
	}
	sentinel := errors.New("boom")
	if err := m.UpdateObject(1, func(*cobench.Station) error { return sentinel }); !errors.Is(err, sentinel) {
		t.Errorf("mutate error not propagated: %v", err)
	}
	// Counted-index NSM rejects structural updates (append-only B+-trees).
	mi := mustNew(NSMIndex, Options{BufferPages: 128, CountIndexIO: true})
	if err := mi.Load(stations); err != nil {
		t.Fatal(err)
	}
	if err := mi.UpdateObject(1, func(s *cobench.Station) error {
		s.Seeings = nil
		return nil
	}); err == nil {
		t.Error("counted-index structural update accepted")
	}
}

func TestUpdateObjectRelocationAccounting(t *testing.T) {
	// Growing a station beyond its page run must relocate it and keep the
	// size report consistent.
	cfg := cobench.DefaultConfig().WithN(30)
	stations, err := cobench.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m := loadModel(t, DSM, stations)
	before := m.Sizes().TotalPages()
	err = m.UpdateObject(0, func(s *cobench.Station) error {
		for j := 0; j < 25; j++ {
			s.Seeings = append(s.Seeings, cobench.Sightseeing{
				Nr: int32(j), Description: "big", Location: "big", History: "big", Remarks: "big",
			})
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	after := m.Sizes().TotalPages()
	if after <= before {
		t.Errorf("relocated object did not grow the store: %d -> %d", before, after)
	}
	got, err := m.FetchByAddress(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Seeings) != len(stations[0].Seeings)+25 {
		t.Error("relocated object content wrong")
	}
}

// mustNew builds a model over a fresh in-memory engine; construction
// cannot fail for the memory backend.
func mustNew(k Kind, o Options) Model {
	m, err := New(k, o)
	if err != nil {
		panic(err)
	}
	return m
}
