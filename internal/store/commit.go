package store

import (
	"fmt"
	"sort"

	"complexobj/internal/disk"
	"complexobj/internal/wal"
)

// CommitResult describes one promoted commit.
type CommitResult struct {
	// Gen is the base generation the commit produced (unchanged when the
	// view had nothing to commit).
	Gen uint64
	// Seq is the WAL sequence that made the commit durable; 0 when the
	// commit ran without a log (volatile promotion) or was empty.
	Seq uint64
	// Pages is the number of dirty pages folded into the new generation.
	Pages int
	// Bytes is the page-image payload size (Pages × page size).
	Bytes int64
}

// Commit makes the view's mutations the next base generation: the buffer
// pool is flushed into the copy-on-write overlay, the dirty page set is
// appended to the write-ahead log together with a commit marker carrying
// the model's directory metadata (log nil skips durability — a volatile
// promotion), and once the log sync acknowledged the batch the overlay is
// folded into the shared base via Promote. The write-ahead ordering is
// the crash guarantee: the promotion is pure memory, so a crash after the
// log sync replays the batch onto the last checkpoint and lands on this
// same generation, and a crash before it recovers the previous one —
// nothing in between is observable.
//
// A view with no mutations commits to nothing: no log traffic, no
// promotion, Gen reports the view's own generation. After a non-empty
// commit the view still reads its original generation plus its own
// overlay — content-identical to the new generation — but recycling it
// would reset to the superseded base state, so pools retire it instead
// (Gen stays behind SharedBase.Gen).
//
// The caller serializes commits per base: concurrent commits from views
// of the same generation would race Promote, and the loser's durable
// batch would fail with ErrStaleBase after its log append. The serving
// layer holds a per-model commit lock across run+commit; batch callers
// commit sequentially by construction.
//
// Commit moves no paper counter. The pool flush writes through the
// simulated device exactly like the update query's own end-of-run Flush
// (which the workload has already issued by measurement end, so the pool
// is clean and the flush a no-op on the benchmark path); log append and
// promotion never touch the device.
func (v *View) Commit(log *wal.Log) (CommitResult, error) {
	eng := v.m.Engine()
	if err := eng.Pool.FlushAll(); err != nil {
		return CommitResult{}, fmt.Errorf("store: commit %s: flush: %w", v.base.kind, err)
	}
	var patches map[int][]byte
	if ok := disk.OverlayPages(eng.Dev.Backend(), func(pg int, img []byte) {
		if patches == nil {
			patches = make(map[int][]byte)
		}
		patches[pg] = img
	}); !ok {
		return CommitResult{}, fmt.Errorf("store: commit %s: view engine is not copy-on-write", v.base.kind)
	}
	numPages := eng.Dev.NumPages()
	if len(patches) == 0 && numPages == v.st.numPages {
		return CommitResult{Gen: v.st.gen}, nil
	}
	meta, err := v.m.SnapshotMeta()
	if err != nil {
		return CommitResult{}, fmt.Errorf("store: commit %s: meta: %w", v.base.kind, err)
	}
	res := CommitResult{Pages: len(patches), Bytes: int64(len(patches)) * int64(v.base.pageSize)}
	if log != nil {
		recs := make([]wal.PageRecord, 0, len(patches))
		for pg, img := range patches {
			recs = append(recs, wal.PageRecord{Model: byte(v.base.kind), Page: uint32(pg), Image: img})
		}
		sort.Slice(recs, func(i, j int) bool { return recs[i].Page < recs[j].Page })
		seq, err := log.Commit(recs, wal.CommitRecord{
			Model:    byte(v.base.kind),
			NumPages: uint32(numPages),
			Meta:     meta,
		})
		if err != nil {
			return CommitResult{}, fmt.Errorf("store: commit %s: %w", v.base.kind, err)
		}
		res.Seq = seq
	}
	gen, err := v.base.Promote(v.st.gen, numPages, meta, patches)
	if err != nil {
		// A durable batch that lost the promote race: the WAL holds it,
		// replay after a crash would apply it under the winner — the
		// caller's commit lock exists to prevent exactly this.
		return CommitResult{}, fmt.Errorf("store: commit %s: %w", v.base.kind, err)
	}
	res.Gen = gen
	return res, nil
}
