package store

import (
	"fmt"
	"reflect"
	"testing"

	"complexobj/cobench"
	"complexobj/internal/disk"
	"complexobj/internal/iostat"
)

// viewExercise runs a fixed request against any execution surface (a
// Model or a View — both provide the query methods) from a cold cache and
// returns the accumulated counters. With update=true the request mutates
// root records and flushes, like query 3.
func viewExercise(t *testing.T, m Model, update bool) iostat.Stats {
	t.Helper()
	if err := m.Engine().ColdCache(); err != nil {
		t.Fatal(err)
	}
	m.Engine().ResetStats()
	if m.Kind() == NSM {
		if _, err := m.FetchByKey(cobench.KeyOf(7)); err != nil {
			t.Fatal(err)
		}
	} else if _, err := m.FetchByAddress(7); err != nil {
		t.Fatal(err)
	}
	if _, _, err := m.Navigate(3); err != nil {
		t.Fatal(err)
	}
	if _, err := m.ReadRoot(11); err != nil {
		t.Fatal(err)
	}
	if update {
		err := m.UpdateRoots([]int32{2, 5, 9}, func(i int32, r *cobench.RootRecord) {
			r.Name = fmt.Sprintf("upd #%d", i)
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := m.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	return m.Engine().Stats()
}

// TestViewRecycle pins the view-recycling contract: a recycled view is
// indistinguishable from a fresh one — bit-identical counters, overlay
// reset to zero pages, metadata rebuilt only after mutating requests —
// and recycling holds no extra base references.
func TestViewRecycle(t *testing.T) {
	stations := testExtension(t, 40)
	for _, k := range AllKinds() {
		t.Run(k.String(), func(t *testing.T) {
			loaded := loadModel(t, k, stations)
			defer loaded.Engine().Close()
			wantRead := viewExercise(t, loaded, false)
			wantWrite := viewExercise(t, loaded, true)

			base, err := Freeze(loaded)
			if err != nil {
				t.Fatal(err)
			}
			defer base.Release()
			v, err := base.NewView(Options{BufferPages: 256})
			if err != nil {
				t.Fatal(err)
			}
			defer v.Close()
			refs := base.arena.Refs()

			// Fresh view, read-only request: counters match the loaded
			// model; the recycle is a cheap one (no metadata rebuild).
			if got := viewExercise(t, v.Model(), false); got != wantRead {
				t.Errorf("fresh view read request: counters %+v, want %+v", got, wantRead)
			}
			rebuilt, err := v.Recycle()
			if err != nil {
				t.Fatal(err)
			}
			if rebuilt {
				t.Error("read-only request forced a metadata rebuild")
			}

			// Mutating request: the overlay materializes pages, the recycle
			// rebuilds metadata, and the next request measures fresh again.
			if got := viewExercise(t, v.Model(), true); got != wantWrite {
				t.Errorf("view write request: counters %+v, want %+v", got, wantWrite)
			}
			if cs, ok := disk.COWStatsOf(v.Engine().Dev.Backend()); !ok || cs.OverlayPages == 0 {
				t.Fatalf("write request left no overlay pages (cow=%v, %+v)", ok, cs)
			}
			if rebuilt, err = v.Recycle(); err != nil {
				t.Fatal(err)
			}
			if !rebuilt {
				t.Error("mutating request did not rebuild metadata")
			}
			if cs, _ := disk.COWStatsOf(v.Engine().Dev.Backend()); cs.OverlayPages != 0 {
				t.Errorf("recycle left %d overlay pages", cs.OverlayPages)
			}
			if got := v.Engine().Stats(); got != (iostat.Stats{}) {
				t.Errorf("recycle left counters %+v", got)
			}
			if got := viewExercise(t, v.Model(), false); got != wantRead {
				t.Errorf("recycled view read request: counters %+v, want %+v", got, wantRead)
			}

			// The recycled view must also produce identical *content*.
			fetch := func(m interface {
				FetchByKey(int32) (*cobench.Station, error)
			}) (*cobench.Station, error) {
				return m.FetchByKey(cobench.KeyOf(7))
			}
			want, err := fetch(loaded)
			if err != nil {
				t.Fatal(err)
			}
			got, err := fetch(v)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(want, got) {
				t.Error("recycled view returns different object content")
			}

			// Recycling never costs base references.
			if now := base.arena.Refs(); now != refs {
				t.Errorf("base refs drifted across recycles: %d -> %d", refs, now)
			}
			if v.Recycles() < 2 || v.Rebuilds() != 1 {
				t.Errorf("recycle accounting: recycles=%d rebuilds=%d, want >=2 and 1",
					v.Recycles(), v.Rebuilds())
			}
		})
	}
}

// TestViewRecycleAfterGrowth covers the structural-update path: an
// UpdateObject that relocates/grows the database past the base must be
// fully undone by Recycle (allocated page count back to the base's).
func TestViewRecycleAfterGrowth(t *testing.T) {
	stations := testExtension(t, 30)
	loaded := loadModel(t, DSM, stations)
	defer loaded.Engine().Close()
	base, err := Freeze(loaded)
	if err != nil {
		t.Fatal(err)
	}
	defer base.Release()
	wantRead := viewExercise(t, loaded, false)

	v, err := base.NewView(Options{BufferPages: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer v.Close()
	grow := func(s *cobench.Station) error {
		for i := 0; i < 30; i++ {
			s.Seeings = append(s.Seeings, cobench.Sightseeing{
				Nr: int32(100 + i), Description: "grown", Location: "x", History: "y", Remarks: "z",
			})
		}
		s.NoSeeing = int32(len(s.Seeings))
		return nil
	}
	if err := v.Model().UpdateObject(4, grow); err != nil {
		t.Fatal(err)
	}
	if err := v.Model().Flush(); err != nil {
		t.Fatal(err)
	}
	if v.Engine().Dev.NumPages() <= base.NumPages() {
		t.Skip("structural update did not grow the device; nothing to pin")
	}
	rebuilt, err := v.Recycle()
	if err != nil {
		t.Fatal(err)
	}
	if !rebuilt {
		t.Error("growth did not rebuild metadata")
	}
	if got := v.Engine().Dev.NumPages(); got != base.NumPages() {
		t.Errorf("recycle left %d pages allocated, base has %d", got, base.NumPages())
	}
	if got := viewExercise(t, v.Model(), false); got != wantRead {
		t.Errorf("recycled view after growth: counters %+v, want %+v", got, wantRead)
	}
}
