package store

import (
	"fmt"

	"complexobj/cobench"
	"complexobj/internal/disk"
)

// View is a recyclable, request-scoped execution handle over a
// SharedBase: a copy-on-write model view (private overlay, private buffer
// pool, private counters) that can be reset to the pristine base between
// requests instead of being torn down and rebuilt. It implements the
// query surface the workload runner drives (workload.View), so a served
// request executes exactly the code path of a batch table cell and
// measures bit-identically to a freshly opened model.
//
// A View is not safe for concurrent use — one request at a time — but
// distinct views of one base are independent and run concurrently; that
// is the base's whole point.
type View struct {
	base *SharedBase
	opts Options
	m    Model
	st   baseState // the generation this view opened against

	recycles int64 // successful Recycle calls
	rebuilds int64 // recycles that had to restore directory metadata
}

// NewView opens a fresh copy-on-write view of the base's current
// generation, ready for its first request: cold cache, zeroed counters.
// The options follow the same rules as SharedBase.Open.
func (b *SharedBase) NewView(o Options) (*View, error) {
	m, st, err := b.openState(o)
	if err != nil {
		return nil, err
	}
	return &View{base: b, opts: o, m: m, st: st}, nil
}

// Gen returns the base generation the view reads. A view stays on its
// generation for its whole life — Recycle resets to it, not to the
// base's latest — so a pool compares this against SharedBase.Gen to
// retire views stranded on superseded generations.
func (v *View) Gen() uint64 { return v.st.gen }

// Model returns the current underlying model (diagnostics; the model
// identity changes when a recycle has to rebuild metadata).
func (v *View) Model() Model { return v.m }

// Recycles and Rebuilds report how often the view was recycled and how
// many of those recycles had to restore directory metadata after a
// mutating request (pool-efficiency diagnostics).
func (v *View) Recycles() int64 { return v.recycles }
func (v *View) Rebuilds() int64 { return v.rebuilds }

// dirty reports whether the last request may have diverged the view from
// the pristine base: a materialized overlay page (any flushed write), an
// unflushed dirty frame in the pool, or device growth past the base. Every
// mutation path of the storage models writes pages — through the pool or
// straight to the device — so a view with none of the three is untouched.
func (v *View) dirty() bool {
	eng := v.m.Engine()
	if cs, ok := disk.COWStatsOf(eng.Dev.Backend()); ok && cs.OverlayPages > 0 {
		return true
	}
	if eng.Pool.DirtyLen() > 0 {
		return true
	}
	return eng.Dev.NumPages() != v.st.numPages
}

// Recycle resets the view to the pristine base state between requests:
// the buffer pool is emptied without flushing (the dirty frames describe
// overlay pages about to be dropped), the copy-on-write overlay is reset,
// and the counters are zeroed — so the next request starts exactly like
// the first one, cold cache and all, reusing the engine, the pool's frame
// free-lists and the overlay index instead of reallocating them. When the
// previous request mutated the database the directory metadata is
// restored from the base as well (reported in rebuilt); read-only
// requests — the vast majority of the benchmark — skip that work
// entirely. On error the view is unusable and must be closed.
func (v *View) Recycle() (rebuilt bool, err error) {
	dirty := v.dirty()
	eng := v.m.Engine()
	if err := eng.Pool.Discard(); err != nil {
		return false, fmt.Errorf("store: recycle %s: %w", v.base.kind, err)
	}
	if !eng.Dev.ResetView() {
		return false, fmt.Errorf("store: recycle %s: view engine is not copy-on-write", v.base.kind)
	}
	eng.ResetStats()
	if dirty {
		m := NewWithEngine(v.base.kind, eng)
		if err := m.RestoreMeta(v.st.meta); err != nil {
			return false, fmt.Errorf("store: recycle %s: %w", v.base.kind, err)
		}
		v.m = m
		v.rebuilds++
	}
	v.recycles++
	return dirty, nil
}

// Close releases the view's engine: its private overlay, pool and — if
// this was the base's last reference — the base storage itself.
func (v *View) Close() error { return v.m.Engine().Close() }

// The workload.View query surface, delegated to the current model. The
// indirection (rather than exposing the model) is what lets Recycle swap
// the model out after a mutating request without invalidating the handle.

// Kind returns the storage model the view executes.
func (v *View) Kind() Kind { return v.m.Kind() }

// Engine exposes cache control and the view's private I/O counters.
func (v *View) Engine() *Engine { return v.m.Engine() }

// NumObjects returns the extension size.
func (v *View) NumObjects() int { return v.m.NumObjects() }

// FetchByAddress retrieves one whole object by address (query 1a).
func (v *View) FetchByAddress(i int) (*cobench.Station, error) { return v.m.FetchByAddress(i) }

// FetchByKey retrieves one whole object by key selection (query 1b).
func (v *View) FetchByKey(key int32) (*cobench.Station, error) { return v.m.FetchByKey(key) }

// ScanAll retrieves every object (query 1c).
func (v *View) ScanAll(fn func(i int, s *cobench.Station) error) error { return v.m.ScanAll(fn) }

// Navigate reads a root record and its children's identifiers.
func (v *View) Navigate(i int) (cobench.RootRecord, []int32, error) { return v.m.Navigate(i) }

// ReadRoot inputs just the root record of an object.
func (v *View) ReadRoot(i int) (cobench.RootRecord, error) { return v.m.ReadRoot(i) }

// UpdateRoots applies mutate to root records and writes them back.
func (v *View) UpdateRoots(idxs []int32, mutate func(i int32, r *cobench.RootRecord)) error {
	return v.m.UpdateRoots(idxs, mutate)
}

// Flush forces deferred writes out (end of an update query).
func (v *View) Flush() error { return v.m.Flush() }
