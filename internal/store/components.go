package store

import (
	"fmt"

	"complexobj/cobench"
	"complexobj/internal/longobj"
	"complexobj/nf2"
)

// Component tags for direct storage: the root record, each platform
// subtuple (with its nested connections) and each sightseeing subtuple are
// separately addressable parts of the stored object, which is what gives
// DASDBS-DSM its selective page access.
const (
	TagRoot        = 0
	TagPlatform    = 1
	TagSightseeing = 2
)

// RootType is the flat schema of a station's atomic root attributes. It
// doubles as the NSM_Station relation schema (Figure 3: "on the root level
// we only need the own root key").
var RootType = nf2.MustTupleType("StationRoot",
	nf2.Attr{Name: "Key", Type: nf2.IntType()},
	nf2.Attr{Name: "NoPlatform", Type: nf2.IntType()},
	nf2.Attr{Name: "NoSeeing", Type: nf2.IntType()},
	nf2.Attr{Name: "Name", Type: nf2.StringType(cobench.StrSize)},
)

// EncodeRoot serializes a root record; the result has a fixed size, which
// is what makes query 3's "update atomic attributes" a same-size in-place
// operation for every storage model.
func EncodeRoot(r cobench.RootRecord) ([]byte, error) {
	return RootType.Encode(nf2.NewTuple(
		nf2.IntValue(r.Key),
		nf2.IntValue(r.NoPlatform),
		nf2.IntValue(r.NoSeeing),
		nf2.StringValue(r.Name),
	))
}

// DecodeRoot parses an encoded root record.
func DecodeRoot(data []byte) (cobench.RootRecord, error) {
	t, err := RootType.Decode(data)
	if err != nil {
		return cobench.RootRecord{}, err
	}
	return cobench.RootRecord{
		Key:        t.Vals[0].Int(),
		NoPlatform: t.Vals[1].Int(),
		NoSeeing:   t.Vals[2].Int(),
		Name:       t.Vals[3].Str(),
	}, nil
}

// DecodeRootKey extracts only the key from an encoded root record (value
// selections evaluate their predicate without materializing the record).
func DecodeRootKey(data []byte) (int32, error) {
	v, err := RootType.DecodeAttr(data, 0)
	if err != nil {
		return 0, err
	}
	return v.Int(), nil
}

// encodePlatform serializes one platform subtuple (with nested
// connections) using the benchmark schema.
func encodePlatform(p cobench.Platform) ([]byte, error) {
	conns := make([]nf2.Tuple, len(p.Conns))
	for j, c := range p.Conns {
		conns[j] = nf2.NewTuple(
			nf2.IntValue(c.LineNr),
			nf2.IntValue(c.KeyConnection),
			nf2.LinkValue(c.OidConnection),
			nf2.StringValue(c.DepartureTimes),
		)
	}
	return cobench.PlatformType.Encode(nf2.NewTuple(
		nf2.IntValue(p.Nr),
		nf2.IntValue(p.NoLine),
		nf2.IntValue(p.TicketCode),
		nf2.StringValue(p.Information),
		nf2.RelValue(conns),
	))
}

func decodePlatform(data []byte) (cobench.Platform, error) {
	t, err := cobench.PlatformType.Decode(data)
	if err != nil {
		return cobench.Platform{}, err
	}
	p := cobench.Platform{
		Nr:          t.Vals[cobench.PlNr].Int(),
		NoLine:      t.Vals[cobench.PlNoLine].Int(),
		TicketCode:  t.Vals[cobench.PlTicketCode].Int(),
		Information: t.Vals[cobench.PlInformation].Str(),
	}
	for _, ct := range t.Vals[cobench.PlConns].Tuples() {
		p.Conns = append(p.Conns, cobench.Connection{
			LineNr:         ct.Vals[cobench.CoLineNr].Int(),
			KeyConnection:  ct.Vals[cobench.CoKeyConnection].Int(),
			OidConnection:  ct.Vals[cobench.CoOid].Int(),
			DepartureTimes: ct.Vals[cobench.CoDepartureTimes].Str(),
		})
	}
	return p, nil
}

// platformChildren extracts only the child references from an encoded
// platform subtuple (partial decoding: navigation projects the LINK
// attribute without materializing the strings).
func platformChildren(data []byte) ([]int32, error) {
	v, err := cobench.PlatformType.DecodeAttr(data, cobench.PlConns)
	if err != nil {
		return nil, err
	}
	var out []int32
	for _, ct := range v.Tuples() {
		out = append(out, ct.Vals[cobench.CoOid].Int())
	}
	return out, nil
}

func encodeSightseeing(g cobench.Sightseeing) ([]byte, error) {
	return cobench.SightseeingType.Encode(nf2.NewTuple(
		nf2.IntValue(g.Nr),
		nf2.StringValue(g.Description),
		nf2.StringValue(g.Location),
		nf2.StringValue(g.History),
		nf2.StringValue(g.Remarks),
	))
}

func decodeSightseeing(data []byte) (cobench.Sightseeing, error) {
	t, err := cobench.SightseeingType.Decode(data)
	if err != nil {
		return cobench.Sightseeing{}, err
	}
	return cobench.Sightseeing{
		Nr:          t.Vals[cobench.SeNr].Int(),
		Description: t.Vals[cobench.SeDescription].Str(),
		Location:    t.Vals[cobench.SeLocation].Str(),
		History:     t.Vals[cobench.SeHistory].Str(),
		Remarks:     t.Vals[cobench.SeRemarks].Str(),
	}, nil
}

// EncodeComponents splits a station into its direct-storage components:
// the root record first (so it lands on the first data page), then the
// platforms, then the sightseeings.
func EncodeComponents(s *cobench.Station) ([]longobj.Component, error) {
	root, err := EncodeRoot(s.Root())
	if err != nil {
		return nil, err
	}
	comps := []longobj.Component{{Tag: TagRoot, Data: root}}
	for _, p := range s.Platforms {
		data, err := encodePlatform(p)
		if err != nil {
			return nil, err
		}
		comps = append(comps, longobj.Component{Tag: TagPlatform, Data: data})
	}
	for _, g := range s.Seeings {
		data, err := encodeSightseeing(g)
		if err != nil {
			return nil, err
		}
		comps = append(comps, longobj.Component{Tag: TagSightseeing, Data: data})
	}
	return comps, nil
}

// DecodeComponents reassembles a station from direct-storage components.
func DecodeComponents(comps []longobj.Component) (*cobench.Station, error) {
	var s cobench.Station
	seenRoot := false
	for _, c := range comps {
		switch c.Tag {
		case TagRoot:
			r, err := DecodeRoot(c.Data)
			if err != nil {
				return nil, err
			}
			s.SetRoot(r)
			seenRoot = true
		case TagPlatform:
			p, err := decodePlatform(c.Data)
			if err != nil {
				return nil, err
			}
			s.Platforms = append(s.Platforms, p)
		case TagSightseeing:
			g, err := decodeSightseeing(c.Data)
			if err != nil {
				return nil, err
			}
			s.Seeings = append(s.Seeings, g)
		default:
			return nil, fmt.Errorf("store: unknown component tag %d", c.Tag)
		}
	}
	if !seenRoot {
		return nil, fmt.Errorf("store: object without root component")
	}
	return &s, nil
}
