package store

import (
	"fmt"

	"complexobj/cobench"
	"complexobj/internal/longobj"
	"complexobj/nf2"
)

// Component tags for direct storage: the root record, each platform
// subtuple (with its nested connections) and each sightseeing subtuple are
// separately addressable parts of the stored object, which is what gives
// DASDBS-DSM its selective page access.
const (
	TagRoot        = 0
	TagPlatform    = 1
	TagSightseeing = 2
)

// RootType is the flat schema of a station's atomic root attributes. It
// doubles as the NSM_Station relation schema (Figure 3: "on the root level
// we only need the own root key").
var RootType = nf2.MustTupleType("StationRoot",
	nf2.Attr{Name: "Key", Type: nf2.IntType()},
	nf2.Attr{Name: "NoPlatform", Type: nf2.IntType()},
	nf2.Attr{Name: "NoSeeing", Type: nf2.IntType()},
	nf2.Attr{Name: "Name", Type: nf2.StringType(cobench.StrSize)},
)

// EncodeRoot serializes a root record; the result has a fixed size, which
// is what makes query 3's "update atomic attributes" a same-size in-place
// operation for every storage model.
func EncodeRoot(r cobench.RootRecord) ([]byte, error) {
	return RootType.Encode(nf2.NewTuple(
		nf2.IntValue(r.Key),
		nf2.IntValue(r.NoPlatform),
		nf2.IntValue(r.NoSeeing),
		nf2.StringValue(r.Name),
	))
}

// DecodeRoot parses an encoded root record. Like the other decoders on
// the object-assembly hot path it reads attribute-at-a-time instead of
// materializing a Tuple, so the only allocations are the strings that end
// up in the result.
func DecodeRoot(data []byte) (cobench.RootRecord, error) {
	var r cobench.RootRecord
	for i, dst := range [...]*int32{&r.Key, &r.NoPlatform, &r.NoSeeing} {
		v, err := RootType.DecodeAttr(data, i)
		if err != nil {
			return cobench.RootRecord{}, err
		}
		*dst = v.Int()
	}
	v, err := RootType.DecodeAttr(data, 3)
	if err != nil {
		return cobench.RootRecord{}, err
	}
	r.Name = v.Str()
	return r, nil
}

// DecodeRootKey extracts only the key from an encoded root record (value
// selections evaluate their predicate without materializing the record).
func DecodeRootKey(data []byte) (int32, error) {
	v, err := RootType.DecodeAttr(data, 0)
	if err != nil {
		return 0, err
	}
	return v.Int(), nil
}

// encodePlatform serializes one platform subtuple (with nested
// connections) using the benchmark schema.
func encodePlatform(p cobench.Platform) ([]byte, error) {
	conns := make([]nf2.Tuple, len(p.Conns))
	for j, c := range p.Conns {
		conns[j] = nf2.NewTuple(
			nf2.IntValue(c.LineNr),
			nf2.IntValue(c.KeyConnection),
			nf2.LinkValue(c.OidConnection),
			nf2.StringValue(c.DepartureTimes),
		)
	}
	return cobench.PlatformType.Encode(nf2.NewTuple(
		nf2.IntValue(p.Nr),
		nf2.IntValue(p.NoLine),
		nf2.IntValue(p.TicketCode),
		nf2.StringValue(p.Information),
		nf2.RelValue(conns),
	))
}

func decodePlatform(data []byte) (cobench.Platform, error) {
	var p cobench.Platform
	pt := cobench.PlatformType
	for _, f := range [...]struct {
		idx int
		dst *int32
	}{{cobench.PlNr, &p.Nr}, {cobench.PlNoLine, &p.NoLine}, {cobench.PlTicketCode, &p.TicketCode}} {
		v, err := pt.DecodeAttr(data, f.idx)
		if err != nil {
			return cobench.Platform{}, err
		}
		*f.dst = v.Int()
	}
	v, err := pt.DecodeAttr(data, cobench.PlInformation)
	if err != nil {
		return cobench.Platform{}, err
	}
	p.Information = v.Str()
	ct := pt.Attrs[cobench.PlConns].Type.Elem
	err = pt.VisitRel(data, cobench.PlConns, func(j, n int, elem []byte) error {
		if p.Conns == nil {
			p.Conns = make([]cobench.Connection, 0, n)
		}
		var c cobench.Connection
		for _, f := range [...]struct {
			idx int
			dst *int32
		}{{cobench.CoLineNr, &c.LineNr}, {cobench.CoKeyConnection, &c.KeyConnection}, {cobench.CoOid, &c.OidConnection}} {
			v, err := ct.DecodeAttr(elem, f.idx)
			if err != nil {
				return err
			}
			*f.dst = v.Int()
		}
		v, err := ct.DecodeAttr(elem, cobench.CoDepartureTimes)
		if err != nil {
			return err
		}
		c.DepartureTimes = v.Str()
		p.Conns = append(p.Conns, c)
		return nil
	})
	if err != nil {
		return cobench.Platform{}, err
	}
	return p, nil
}

// platformChildren extracts only the child references from an encoded
// platform subtuple (partial decoding: navigation projects the LINK
// attribute without materializing the strings — or, since it rides on
// VisitRel, any tuple scaffolding at all).
func platformChildren(data []byte) ([]int32, error) {
	var out []int32
	pt := cobench.PlatformType
	ct := pt.Attrs[cobench.PlConns].Type.Elem
	err := pt.VisitRel(data, cobench.PlConns, func(j, n int, elem []byte) error {
		v, err := ct.DecodeAttr(elem, cobench.CoOid)
		if err != nil {
			return err
		}
		if out == nil {
			out = make([]int32, 0, n)
		}
		out = append(out, v.Int())
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

func encodeSightseeing(g cobench.Sightseeing) ([]byte, error) {
	return cobench.SightseeingType.Encode(nf2.NewTuple(
		nf2.IntValue(g.Nr),
		nf2.StringValue(g.Description),
		nf2.StringValue(g.Location),
		nf2.StringValue(g.History),
		nf2.StringValue(g.Remarks),
	))
}

func decodeSightseeing(data []byte) (cobench.Sightseeing, error) {
	var g cobench.Sightseeing
	st := cobench.SightseeingType
	v, err := st.DecodeAttr(data, cobench.SeNr)
	if err != nil {
		return cobench.Sightseeing{}, err
	}
	g.Nr = v.Int()
	for _, f := range [...]struct {
		idx int
		dst *string
	}{{cobench.SeDescription, &g.Description}, {cobench.SeLocation, &g.Location},
		{cobench.SeHistory, &g.History}, {cobench.SeRemarks, &g.Remarks}} {
		v, err := st.DecodeAttr(data, f.idx)
		if err != nil {
			return cobench.Sightseeing{}, err
		}
		*f.dst = v.Str()
	}
	return g, nil
}

// EncodeComponents splits a station into its direct-storage components:
// the root record first (so it lands on the first data page), then the
// platforms, then the sightseeings.
func EncodeComponents(s *cobench.Station) ([]longobj.Component, error) {
	root, err := EncodeRoot(s.Root())
	if err != nil {
		return nil, err
	}
	comps := []longobj.Component{{Tag: TagRoot, Data: root}}
	for _, p := range s.Platforms {
		data, err := encodePlatform(p)
		if err != nil {
			return nil, err
		}
		comps = append(comps, longobj.Component{Tag: TagPlatform, Data: data})
	}
	for _, g := range s.Seeings {
		data, err := encodeSightseeing(g)
		if err != nil {
			return nil, err
		}
		comps = append(comps, longobj.Component{Tag: TagSightseeing, Data: data})
	}
	return comps, nil
}

// DecodeComponents reassembles a station from direct-storage components.
func DecodeComponents(comps []longobj.Component) (*cobench.Station, error) {
	var s cobench.Station
	// Size the sub-object slices exactly: a station can carry dozens of
	// sightseeings, and append-doubling them per fetched object was a
	// measurable share of the serving path's allocations.
	var nPlat, nSee int
	for _, c := range comps {
		switch c.Tag {
		case TagPlatform:
			nPlat++
		case TagSightseeing:
			nSee++
		}
	}
	if nPlat > 0 {
		s.Platforms = make([]cobench.Platform, 0, nPlat)
	}
	if nSee > 0 {
		s.Seeings = make([]cobench.Sightseeing, 0, nSee)
	}
	seenRoot := false
	for _, c := range comps {
		switch c.Tag {
		case TagRoot:
			r, err := DecodeRoot(c.Data)
			if err != nil {
				return nil, err
			}
			s.SetRoot(r)
			seenRoot = true
		case TagPlatform:
			p, err := decodePlatform(c.Data)
			if err != nil {
				return nil, err
			}
			s.Platforms = append(s.Platforms, p)
		case TagSightseeing:
			g, err := decodeSightseeing(c.Data)
			if err != nil {
				return nil, err
			}
			s.Seeings = append(s.Seeings, g)
		default:
			return nil, fmt.Errorf("store: unknown component tag %d", c.Tag)
		}
	}
	if !seenRoot {
		return nil, fmt.Errorf("store: object without root component")
	}
	return &s, nil
}
