// Package profile is the tiny pprof harness shared by the CLIs: Start
// wires the -cpuprofile/-memprofile flags of cobench and cotables to
// runtime/pprof, so future performance work can attribute wall-clock and
// allocations to code without editing the harness. The contract is one
// Start per process and one call of the returned stop function before
// exit; the heap profile is taken after a GC so it shows the live set.
package profile
