package profile

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins CPU profiling into cpuPath and arranges for a heap profile
// to be written to memPath; either (or both) may be empty to skip that
// profile. The returned stop function ends the CPU profile and writes the
// heap profile (after a GC, so it shows live objects rather than garbage)
// and must be called exactly once, on every exit path that should produce
// usable profiles.
func Start(cpuPath, memPath string) (stop func() error, err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("profile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("profile: start cpu: %w", err)
		}
	}
	stopped := false
	return func() error {
		if stopped {
			return nil
		}
		stopped = true
		var first error
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil && first == nil {
				first = fmt.Errorf("profile: close cpu: %w", err)
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				if first == nil {
					first = fmt.Errorf("profile: %w", err)
				}
				return first
			}
			runtime.GC() // materialize the live set before the snapshot
			if err := pprof.WriteHeapProfile(f); err != nil && first == nil {
				first = fmt.Errorf("profile: write heap: %w", err)
			}
			if err := f.Close(); err != nil && first == nil {
				first = fmt.Errorf("profile: close heap: %w", err)
			}
		}
		return first
	}, nil
}
