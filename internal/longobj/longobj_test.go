package longobj

import (
	"bytes"
	"errors"
	"testing"

	"complexobj/internal/buffer"
	"complexobj/internal/disk"
	"complexobj/internal/xrand"
)

func newStore(t *testing.T, poolPages int) (*disk.Disk, *buffer.Pool, *Store) {
	t.Helper()
	d := disk.New(disk.DefaultPageSize)
	p := buffer.New(d, poolPages, buffer.LRU)
	return d, p, New(d, p, "objects")
}

func comp(tag uint8, b byte, n int) Component {
	data := make([]byte, n)
	for i := range data {
		data[i] = b
	}
	return Component{Tag: tag, Data: data}
}

func equalComps(a, b []Component) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Tag != b[i].Tag || !bytes.Equal(a[i].Data, b[i].Data) {
			return false
		}
	}
	return true
}

func TestSmallObjectSharedPage(t *testing.T) {
	d, pool, s := newStore(t, 8)
	c1 := []Component{comp(0, 1, 100), comp(1, 2, 150)}
	c2 := []Component{comp(0, 3, 120)}
	r1, err := s.Insert(c1)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := s.Insert(c2)
	if err != nil {
		t.Fatal(err)
	}
	if !r1.Small || !r2.Small {
		t.Fatal("small objects not stored inline")
	}
	if r1.RID.Page != r2.RID.Page {
		t.Error("two small objects did not share a page")
	}
	got1, err := s.ReadAll(r1)
	if err != nil {
		t.Fatal(err)
	}
	got2, err := s.ReadAll(r2)
	if err != nil {
		t.Fatal(err)
	}
	if !equalComps(got1, c1) || !equalComps(got2, c2) {
		t.Error("small object round trip mismatch")
	}
	pool.Reset()
	d.ResetStats()
	if _, err := s.ReadAll(r1); err != nil {
		t.Fatal(err)
	}
	if st := d.Stats(); st.PagesRead != 1 || st.ReadCalls != 1 {
		t.Errorf("small read cost %v, want 1 page / 1 call", st)
	}
}

func TestLargeObjectLayout(t *testing.T) {
	d, _, s := newStore(t, 16)
	// ~3.5 effective pages of data.
	comps := []Component{comp(0, 1, 2000), comp(1, 2, 2000), comp(2, 3, 3000)}
	ref, err := s.Insert(comps)
	if err != nil {
		t.Fatal(err)
	}
	if ref.Small {
		t.Fatal("large object stored inline")
	}
	if ref.HeaderPages != 1 {
		t.Errorf("header pages = %d, want 1", ref.HeaderPages)
	}
	eff := d.EffectivePageSize()
	wantData := (2000 + 2000 + 3000 + eff - 1) / eff
	if int(ref.DataPages) != wantData {
		t.Errorf("data pages = %d, want %d", ref.DataPages, wantData)
	}
	if ref.Pages() != 1+wantData {
		t.Errorf("Pages() = %d", ref.Pages())
	}
	got, err := s.ReadAll(ref)
	if err != nil {
		t.Fatal(err)
	}
	if !equalComps(got, comps) {
		t.Error("large object round trip mismatch")
	}
}

func TestLargeReadAllCost(t *testing.T) {
	d, pool, s := newStore(t, 16)
	comps := []Component{comp(0, 1, 2000), comp(1, 2, 2000), comp(2, 3, 3000)}
	ref, _ := s.Insert(comps)
	pool.Reset()
	d.ResetStats()
	if _, err := s.ReadAll(ref); err != nil {
		t.Fatal(err)
	}
	st := d.Stats()
	// DSM read path: one call for the header page, one for the contiguous
	// data run ("about 2 pages are read per I/O call" with ~2 data pages).
	if st.ReadCalls != 2 {
		t.Errorf("ReadAll calls = %d, want 2 (header + data run)", st.ReadCalls)
	}
	if int(st.PagesRead) != ref.Pages() {
		t.Errorf("ReadAll pages = %d, want %d", st.PagesRead, ref.Pages())
	}
}

func TestReadPartsTouchesOnlyNeededPages(t *testing.T) {
	d, pool, s := newStore(t, 16)
	eff := d.EffectivePageSize()
	// Component 0 fills page 1 exactly; component 1 fills page 2; component
	// 2 fills page 3. Selecting only component 0 must not read pages 2-3.
	comps := []Component{comp(0, 1, eff), comp(1, 2, eff), comp(2, 3, eff)}
	ref, _ := s.Insert(comps)
	pool.Reset()
	d.ResetStats()
	got, idxs, err := s.ReadParts(ref, func(tag uint8, idx int) bool { return tag == 0 })
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Tag != 0 || len(idxs) != 1 || idxs[0] != 0 {
		t.Fatalf("ReadParts returned %d comps, idxs %v", len(got), idxs)
	}
	if !bytes.Equal(got[0].Data, comps[0].Data) {
		t.Error("partial read data mismatch")
	}
	st := d.Stats()
	// Header page + 1 data page, in 2 calls (header first, then data) —
	// the paper's "we only need to retrieve the header page and a single
	// data page".
	if st.PagesRead != 2 {
		t.Errorf("partial read pages = %d, want 2", st.PagesRead)
	}
	if st.ReadCalls != 2 {
		t.Errorf("partial read calls = %d, want 2", st.ReadCalls)
	}
}

func TestReadPartsSpanningComponent(t *testing.T) {
	d, pool, s := newStore(t, 16)
	eff := d.EffectivePageSize()
	// Component 1 spans pages 2 and 3.
	comps := []Component{comp(0, 1, eff/2), comp(1, 2, eff+eff/2), comp(2, 3, eff)}
	ref, _ := s.Insert(comps)
	pool.Reset()
	d.ResetStats()
	got, _, err := s.ReadParts(ref, func(tag uint8, _ int) bool { return tag == 1 })
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got[0].Data, comps[1].Data) {
		t.Error("spanning component data mismatch")
	}
	// Header + data pages 1 and 2 (the span's two pages).
	if st := d.Stats(); st.PagesRead != 3 {
		t.Errorf("spanning partial read pages = %d, want 3", st.PagesRead)
	}
}

func TestReadPartsEverythingEqualsReadAll(t *testing.T) {
	_, _, s := newStore(t, 16)
	comps := []Component{comp(0, 1, 500), comp(1, 2, 2500), comp(2, 3, 1200)}
	ref, _ := s.Insert(comps)
	all, err := s.ReadAll(ref)
	if err != nil {
		t.Fatal(err)
	}
	parts, idxs, err := s.ReadParts(ref, func(uint8, int) bool { return true })
	if err != nil {
		t.Fatal(err)
	}
	if !equalComps(all, parts) {
		t.Error("ReadParts(all) != ReadAll")
	}
	if len(idxs) != len(comps) {
		t.Errorf("idxs = %v", idxs)
	}
}

func TestReadPartsNothing(t *testing.T) {
	_, _, s := newStore(t, 16)
	ref, _ := s.Insert([]Component{comp(0, 1, 5000)})
	got, idxs, err := s.ReadParts(ref, func(uint8, int) bool { return false })
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 || len(idxs) != 0 {
		t.Error("empty selection returned components")
	}
}

func TestReplaceAllLargeInPlace(t *testing.T) {
	d, pool, s := newStore(t, 16)
	comps := []Component{comp(0, 1, 2000), comp(1, 2, 3000)}
	ref, _ := s.Insert(comps)
	updated := []Component{comp(0, 9, 2000), comp(1, 8, 3000)}
	if err := s.ReplaceAll(ref, updated); err != nil {
		t.Fatal(err)
	}
	// Writes are deferred to flush (replace-set-of-tuples batching).
	d.ResetStats()
	if err := pool.FlushAll(); err != nil {
		t.Fatal(err)
	}
	st := d.Stats()
	if int(st.PagesWritten) != ref.Pages() {
		t.Errorf("flush wrote %d pages, want %d", st.PagesWritten, ref.Pages())
	}
	if st.WriteCalls != 1 {
		t.Errorf("flush calls = %d, want 1 (contiguous object)", st.WriteCalls)
	}
	pool.Reset()
	got, err := s.ReadAll(ref)
	if err != nil {
		t.Fatal(err)
	}
	if !equalComps(got, updated) {
		t.Error("replacement not visible after reload")
	}
}

func TestReplaceAllRejectsLayoutChange(t *testing.T) {
	_, _, s := newStore(t, 16)
	ref, _ := s.Insert([]Component{comp(0, 1, 2000), comp(1, 2, 3000)})
	err := s.ReplaceAll(ref, []Component{comp(0, 1, 9000)})
	if !errors.Is(err, ErrResize) {
		t.Errorf("layout-changing replace err = %v, want ErrResize", err)
	}
}

func TestReplaceAllSmall(t *testing.T) {
	_, pool, s := newStore(t, 16)
	ref, _ := s.Insert([]Component{comp(0, 1, 100), comp(1, 2, 100)})
	updated := []Component{comp(0, 7, 100), comp(1, 6, 100)}
	if err := s.ReplaceAll(ref, updated); err != nil {
		t.Fatal(err)
	}
	pool.FlushAll()
	pool.Reset()
	got, _ := s.ReadAll(ref)
	if !equalComps(got, updated) {
		t.Error("small replace mismatch")
	}
}

func TestChangeComponentWritesThrough(t *testing.T) {
	d, pool, s := newStore(t, 16)
	eff := d.EffectivePageSize()
	comps := []Component{comp(0, 1, 200), comp(1, 2, 2*eff)}
	ref, _ := s.Insert(comps)
	pool.Reset()
	d.ResetStats()
	newRoot := make([]byte, 200)
	for i := range newRoot {
		newRoot[i] = 0xEE
	}
	n, err := s.ChangeComponent(ref, 0, newRoot)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Errorf("pages written through = %d, want 1 (single-page pool)", n)
	}
	st := d.Stats()
	if st.PagesWritten != 1 || st.WriteCalls != 1 {
		t.Errorf("write-through stats %v, want immediate 1-page write", st)
	}
	pool.Reset()
	got, _ := s.ReadAll(ref)
	if !bytes.Equal(got[0].Data, newRoot) {
		t.Error("change not persisted")
	}
	if !bytes.Equal(got[1].Data, comps[1].Data) {
		t.Error("untouched component corrupted")
	}
}

func TestChangeComponentSmallObject(t *testing.T) {
	d, pool, s := newStore(t, 16)
	ref, _ := s.Insert([]Component{comp(0, 1, 100), comp(1, 2, 200)})
	pool.Reset()
	d.ResetStats()
	repl := make([]byte, 100)
	n, err := s.ChangeComponent(ref, 0, repl)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Errorf("small change wrote %d pages", n)
	}
	// Read page + immediate write = the §5.3 anomaly: every change-attr op
	// pays a physical write even though many objects share the page.
	if st := d.Stats(); st.PagesWritten != 1 {
		t.Errorf("small object change-attr wrote %d pages, want 1", st.PagesWritten)
	}
}

func TestChangeComponentRejectsLengthChange(t *testing.T) {
	_, _, s := newStore(t, 16)
	ref, _ := s.Insert([]Component{comp(0, 1, 200), comp(1, 2, 5000)})
	if _, err := s.ChangeComponent(ref, 0, make([]byte, 199)); !errors.Is(err, ErrSameLen) {
		t.Errorf("length change err = %v", err)
	}
	if _, err := s.ChangeComponent(ref, 5, make([]byte, 10)); !errors.Is(err, ErrBadComp) {
		t.Errorf("bad index err = %v", err)
	}
}

func TestManyHeaderPages(t *testing.T) {
	d, _, s := newStore(t, 64)
	// Enough components that the directory spills beyond one header page:
	// entries are 9 bytes, one page holds ~223.
	var comps []Component
	for i := 0; i < 300; i++ {
		comps = append(comps, comp(uint8(i%3), byte(i), 40))
	}
	ref, err := s.Insert(comps)
	if err != nil {
		t.Fatal(err)
	}
	if ref.HeaderPages < 2 {
		t.Fatalf("header pages = %d, want >= 2", ref.HeaderPages)
	}
	got, err := s.ReadAll(ref)
	if err != nil {
		t.Fatal(err)
	}
	if !equalComps(got, comps) {
		t.Error("multi-header object round trip failed")
	}
	_ = d
}

func TestStatsAccounting(t *testing.T) {
	_, _, s := newStore(t, 16)
	s.Insert([]Component{comp(0, 1, 100)})  // small
	s.Insert([]Component{comp(0, 1, 3000)}) // large: 1h + 2d
	s.Insert([]Component{comp(0, 1, 5000)}) // large: 1h + 3d
	if s.NumLarge() != 2 {
		t.Errorf("NumLarge = %d", s.NumLarge())
	}
	h, dd := s.LargePages()
	if h != 2 || dd != 5 {
		t.Errorf("LargePages = %d,%d; want 2,5", h, dd)
	}
	if s.SharedHeap().NumRecords() != 1 {
		t.Errorf("shared heap records = %d", s.SharedHeap().NumRecords())
	}
}

func TestEmptyComponentData(t *testing.T) {
	_, _, s := newStore(t, 16)
	comps := []Component{comp(0, 1, 0), comp(1, 2, 4000)}
	ref, err := s.Insert(comps)
	if err != nil {
		t.Fatal(err)
	}
	got, err := s.ReadAll(ref)
	if err != nil {
		t.Fatal(err)
	}
	if len(got[0].Data) != 0 || !bytes.Equal(got[1].Data, comps[1].Data) {
		t.Error("empty component round trip failed")
	}
	parts, _, err := s.ReadParts(ref, func(tag uint8, _ int) bool { return tag == 0 })
	if err != nil {
		t.Fatal(err)
	}
	if len(parts) != 1 || len(parts[0].Data) != 0 {
		t.Error("empty component partial read failed")
	}
}

func TestInsertEmptyObjectRejected(t *testing.T) {
	_, _, s := newStore(t, 16)
	if _, err := s.Insert(nil); err == nil {
		t.Error("empty object accepted")
	}
}

func TestRandomObjectsRoundTripUnderSmallPool(t *testing.T) {
	d, pool, s := newStore(t, 4)
	rng := xrand.New(77)
	type obj struct {
		ref   Ref
		comps []Component
	}
	var objs []obj
	for i := 0; i < 40; i++ {
		n := 1 + rng.Intn(5)
		var comps []Component
		for j := 0; j < n; j++ {
			comps = append(comps, comp(uint8(j), byte(rng.Intn(256)), rng.Intn(3000)))
		}
		ref, err := s.Insert(comps)
		if err != nil {
			t.Fatal(err)
		}
		objs = append(objs, obj{ref, comps})
	}
	if err := pool.FlushAll(); err != nil {
		t.Fatal(err)
	}
	for i, o := range objs {
		got, err := s.ReadAll(o.ref)
		if err != nil {
			t.Fatalf("object %d: %v", i, err)
		}
		if !equalComps(got, o.comps) {
			t.Fatalf("object %d round trip mismatch", i)
		}
		// Partial read of a random component agrees with the full read.
		k := rng.Intn(len(o.comps))
		parts, idxs, err := s.ReadParts(o.ref, func(_ uint8, idx int) bool { return idx == k })
		if err != nil {
			t.Fatal(err)
		}
		if len(parts) != 1 || idxs[0] != k || !bytes.Equal(parts[0].Data, o.comps[k].Data) {
			t.Fatalf("object %d partial read of comp %d mismatch", i, k)
		}
	}
	_ = d
}

func TestReplaceInPlaceKeepsRef(t *testing.T) {
	_, _, s := newStore(t, 16)
	ref, _ := s.Insert([]Component{comp(0, 1, 2000), comp(1, 2, 3000)})
	nref, err := s.Replace(ref, []Component{comp(0, 9, 2000), comp(1, 8, 3000)})
	if err != nil {
		t.Fatal(err)
	}
	if nref != ref {
		t.Error("same-layout replace relocated")
	}
}

func TestReplaceRelocatesLargeGrowth(t *testing.T) {
	d, _, s := newStore(t, 16)
	ref, _ := s.Insert([]Component{comp(0, 1, 3000)})
	grown := []Component{comp(0, 2, 3000), comp(1, 3, 6000)}
	nref, err := s.Replace(ref, grown)
	if err != nil {
		t.Fatal(err)
	}
	if nref == ref {
		t.Fatal("grown object not relocated")
	}
	got, err := s.ReadAll(nref)
	if err != nil {
		t.Fatal(err)
	}
	if !equalComps(got, grown) {
		t.Error("relocated content mismatch")
	}
	if s.FreedPages() == 0 {
		t.Error("relocation did not account freed pages")
	}
	if s.NumLarge() != 1 {
		t.Errorf("NumLarge = %d after relocation", s.NumLarge())
	}
	_ = d
}

func TestReplaceSmallGrowsToLarge(t *testing.T) {
	_, pool, s := newStore(t, 16)
	ref, _ := s.Insert([]Component{comp(0, 1, 100)})
	if !ref.Small {
		t.Fatal("setup: object not small")
	}
	big := []Component{comp(0, 2, 100), comp(1, 3, 5000)}
	nref, err := s.Replace(ref, big)
	if err != nil {
		t.Fatal(err)
	}
	if nref.Small {
		t.Fatal("grown object still small")
	}
	pool.FlushAll()
	pool.Reset()
	got, err := s.ReadAll(nref)
	if err != nil {
		t.Fatal(err)
	}
	if !equalComps(got, big) {
		t.Error("small-to-large migration lost data")
	}
	// Old slot must be gone from the shared heap.
	if s.SharedHeap().NumRecords() != 0 {
		t.Errorf("old small record lingers: %d", s.SharedHeap().NumRecords())
	}
}

func TestReplaceSmallWithinPage(t *testing.T) {
	_, _, s := newStore(t, 16)
	ref, _ := s.Insert([]Component{comp(0, 1, 100)})
	// Grow modestly: still fits the page, ref may stay identical.
	nref, err := s.Replace(ref, []Component{comp(0, 2, 150)})
	if err != nil {
		t.Fatal(err)
	}
	got, err := s.ReadAll(nref)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Data[0] != 2 || len(got[0].Data) != 150 {
		t.Error("in-page grow lost data")
	}
}

func TestReplaceSmallRelocatesWhenPageFull(t *testing.T) {
	_, _, s := newStore(t, 16)
	// Fill one shared page with several objects, then grow one of them so
	// it cannot stay on its page.
	var refs []Ref
	for i := 0; i < 4; i++ {
		r, err := s.Insert([]Component{comp(0, byte(i), 450)})
		if err != nil {
			t.Fatal(err)
		}
		refs = append(refs, r)
	}
	if refs[0].RID.Page != refs[3].RID.Page {
		t.Skip("objects did not share a page; geometry changed")
	}
	grown := []Component{comp(0, 9, 1200)}
	nref, err := s.Replace(refs[1], grown)
	if err != nil {
		t.Fatal(err)
	}
	got, err := s.ReadAll(nref)
	if err != nil {
		t.Fatal(err)
	}
	if !equalComps(got, grown) {
		t.Error("page-full relocation lost data")
	}
	// Neighbours unaffected.
	for _, i := range []int{0, 2, 3} {
		g, err := s.ReadAll(refs[i])
		if err != nil || g[0].Data[0] != byte(i) {
			t.Errorf("neighbour %d damaged: %v", i, err)
		}
	}
}
