package longobj

import (
	"testing"

	"complexobj/internal/buffer"
	"complexobj/internal/disk"
)

func newFreeStore(t *testing.T, poolPages int) (*disk.Disk, *buffer.Pool, *Store) {
	t.Helper()
	d := disk.New(disk.DefaultPageSize)
	p := buffer.New(d, poolPages, buffer.LRU)
	return d, p, New(d, p, "free_test")
}

// TestRelocationReachesStableDeviceSize is the free-space-map regression
// test: a relocate-heavy UpdateObject-style workload (objects repeatedly
// growing and shrinking across page-count boundaries) must stop growing
// the device once the free map holds enough recycled runs, instead of
// leaking every dead run forever.
func TestRelocationReachesStableDeviceSize(t *testing.T) {
	d, _, s := newFreeStore(t, 64)
	const objects = 8
	refs := make([]Ref, objects)
	for i := range refs {
		var err error
		refs[i], err = s.Insert([]Component{comp(0, byte(i), 3000)})
		if err != nil {
			t.Fatal(err)
		}
	}
	sizes := []int{3000, 9000, 5000, 12000, 3000}
	var after []int
	for round, size := range sizes {
		for i := range refs {
			nref, err := s.Replace(refs[i], []Component{comp(0, byte(round), size)})
			if err != nil {
				t.Fatal(err)
			}
			refs[i] = nref
		}
		after = append(after, d.NumPages())
	}
	// Re-run the same size cycle: the device must not grow again — every
	// relocation is served from runs recycled in the first cycle.
	stable := d.NumPages()
	for round, size := range sizes {
		for i := range refs {
			nref, err := s.Replace(refs[i], []Component{comp(0, byte(round), size)})
			if err != nil {
				t.Fatal(err)
			}
			refs[i] = nref
		}
	}
	if got := d.NumPages(); got != stable {
		t.Fatalf("device grew from %d to %d pages on the second size cycle (growth trace %v); free-space map not recycling", stable, got, after)
	}
	// Content sanity after heavy recycling.
	for i, ref := range refs {
		comps, err := s.ReadAll(ref)
		if err != nil {
			t.Fatal(err)
		}
		if len(comps) != 1 || len(comps[i%1].Data) != sizes[len(sizes)-1] {
			t.Fatalf("object %d corrupted after recycling", i)
		}
	}
}

// TestFreeRunMerging checks adjacent freed runs coalesce, so a large
// object can recycle the space of several smaller dead neighbours.
func TestFreeRunMerging(t *testing.T) {
	d, _, s := newFreeStore(t, 64)
	a, err := s.Insert([]Component{comp(0, 1, 5000)})
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Insert([]Component{comp(0, 2, 5000)})
	if err != nil {
		t.Fatal(err)
	}
	if a.Small || b.Small || a.Start+disk.PageID(a.Pages()) != b.Start {
		t.Fatalf("setup: objects not adjacent large runs: %+v %+v", a, b)
	}
	s.freeLarge(a)
	s.freeLarge(b)
	if len(s.free) != 1 {
		t.Fatalf("adjacent freed runs not merged: %+v", s.free)
	}
	if s.FreedPages() != a.Pages()+b.Pages() {
		t.Fatalf("FreedPages = %d, want %d", s.FreedPages(), a.Pages()+b.Pages())
	}
	// An object spanning both dead runs fits without growing the device.
	before := d.NumPages()
	big, err := s.Insert([]Component{comp(0, 3, 11000)})
	if err != nil {
		t.Fatal(err)
	}
	if big.Small {
		t.Fatal("big object unexpectedly small")
	}
	if got := d.NumPages(); got != before {
		t.Fatalf("device grew %d -> %d despite a merged free run of sufficient size", before, got)
	}
	got, err := s.ReadAll(big)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || len(got[0].Data) != 11000 {
		t.Fatal("recycled object content mismatch")
	}
}

// TestRecycledRunEvictsStaleFrames pins the cache-coherence contract: a
// page that was resident (even dirty) when its object died must not
// shadow the recycled page's new content.
func TestRecycledRunEvictsStaleFrames(t *testing.T) {
	_, pool, s := newFreeStore(t, 64)
	ref, err := s.Insert([]Component{comp(0, 1, 5000)})
	if err != nil {
		t.Fatal(err)
	}
	// Make the object's pages resident and dirty via an in-place change.
	if _, err := s.ReadAll(ref); err != nil {
		t.Fatal(err)
	}
	same := make([]byte, 5000)
	for i := range same {
		same[i] = 0xAB
	}
	if err := s.ReplaceAll(ref, []Component{comp2(0, same)}); err != nil {
		t.Fatal(err)
	}
	// Relocate (shrink): the old run goes to the free map while its dirty
	// frames are still pooled.
	nref, err := s.Replace(ref, []Component{comp(0, 9, 12000)})
	if err != nil {
		t.Fatal(err)
	}
	if nref == ref {
		t.Fatal("object did not relocate")
	}
	// Recycle the dead run and read the new object back through the pool.
	reref, err := s.Insert([]Component{comp(0, 7, 5000)})
	if err != nil {
		t.Fatal(err)
	}
	if reref.Start != ref.Start {
		t.Fatalf("expected recycling of run %d, got %d", ref.Start, reref.Start)
	}
	got, err := s.ReadAll(reref)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Tag != 0 || len(got[0].Data) != 5000 || got[0].Data[0] == 0xAB {
		t.Fatal("stale pooled frame leaked into recycled page")
	}
	_ = pool
}

// comp2 builds a component from explicit bytes.
func comp2(tag uint8, data []byte) Component { return Component{Tag: tag, Data: data} }
