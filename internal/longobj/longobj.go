package longobj

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"

	"complexobj/internal/buffer"
	"complexobj/internal/disk"
	"complexobj/internal/heap"
	"complexobj/internal/page"
	"complexobj/internal/wire"
)

// Component is one tagged piece of an object. Tags are defined by the
// storage model (e.g. root record vs platform vs sightseeing).
type Component struct {
	Tag  uint8
	Data []byte
}

// Ref addresses a stored object. It is the paper's "address" OID for
// direct storage models.
type Ref struct {
	Small       bool
	RID         heap.RID    // when Small
	Start       disk.PageID // when large: first header page
	HeaderPages uint16
	DataPages   uint16
}

// Pages returns the total number of pages the object occupies (1 for small
// objects, though that page is shared with other objects).
func (r Ref) Pages() int {
	if r.Small {
		return 1
	}
	return int(r.HeaderPages) + int(r.DataPages)
}

// Errors returned by the store.
var (
	ErrResize  = errors.New("longobj: replacement changes page layout")
	ErrBadRef  = errors.New("longobj: invalid reference")
	ErrBadComp = errors.New("longobj: invalid component index")
	ErrSameLen = errors.New("longobj: in-place change must preserve length")
)

// directory prologue: u16 component count + u32 total data bytes.
const dirPrologue = 6

// directory entry: u8 tag + u32 offset + u32 length.
const dirEntry = 9

// small-object inline encoding: u16 count, then per component u8 tag +
// u16 length, then the concatenated data.
const inlinePrologue = 2
const inlineEntry = 3

// pageRun is a contiguous run of recyclable pages in the free-space map.
type pageRun struct {
	start disk.PageID
	n     int
}

// Store manages small and large objects over one device/pool pair.
type Store struct {
	dev    *disk.Disk
	pool   *buffer.Pool
	shared *heap.Heap

	large       int
	headerPages int
	dataPages   int
	dataBytes   int64
	freedPages  int
	// free is the free-space map: the page runs released by relocating
	// replacements, sorted by start and with adjacent runs merged. New
	// large objects take a first fit from here before extending the
	// device, so relocation-heavy workloads reach a stable device size
	// instead of growing the arena unboundedly.
	free []pageRun

	// Scratch buffers reused across calls. A Store, like the engine it
	// belongs to, has a single owner (workers and views never share one),
	// so the reuse is safe: hdrScratch backs readHeader, spanScratch the
	// directory walk, and compScratch/blockScratch the components of
	// ReadAllShared (whose results are valid only until its next call).
	hdrScratch   []byte
	spanScratch  []dirSpan
	compScratch  []Component
	blockScratch []byte
}

// New creates a store whose small objects live in a shared heap called
// name.
func New(dev *disk.Disk, pool *buffer.Pool, name string) *Store {
	return &Store{dev: dev, pool: pool, shared: heap.New(dev, pool, name)}
}

// SharedHeap exposes the heap of small objects (for size reporting).
func (s *Store) SharedHeap() *heap.Heap { return s.shared }

// NumLarge returns the number of large (multi-page) objects.
func (s *Store) NumLarge() int { return s.large }

// LargePages returns total header and data pages of all large objects.
func (s *Store) LargePages() (header, data int) { return s.headerPages, s.dataPages }

// LargeDataBytes returns the total component payload bytes of all large
// objects (for size reporting).
func (s *Store) LargeDataBytes() int64 { return s.dataBytes }

// TotalPages returns every page the store occupies: shared heap pages plus
// the header and data pages of large objects (the paper's m for a
// direct-storage relation).
func (s *Store) TotalPages() int {
	return s.shared.NumPages() + s.headerPages + s.dataPages
}

// effSize returns usable payload bytes per page.
func (s *Store) effSize() int { return s.dev.EffectivePageSize() }

// inlineSize returns the encoded size of comps as a small-object record.
func inlineSize(comps []Component) int {
	n := inlinePrologue + inlineEntry*len(comps)
	for _, c := range comps {
		n += len(c.Data)
	}
	return n
}

// Insert stores the object and returns its address. Small objects share
// slotted pages; large objects are bulk-written to a fresh contiguous run
// (load-time I/O, reset by the harness before measuring).
func (s *Store) Insert(comps []Component) (Ref, error) {
	if len(comps) == 0 {
		return Ref{}, errors.New("longobj: object needs at least one component")
	}
	if inlineSize(comps) <= page.Capacity(s.dev.PageSize()) {
		rec := encodeInline(comps)
		rid, err := s.shared.Insert(rec)
		if err != nil {
			return Ref{}, err
		}
		return Ref{Small: true, RID: rid}, nil
	}
	return s.insertLarge(comps)
}

func encodeInline(comps []Component) []byte {
	buf := make([]byte, inlinePrologue+inlineEntry*len(comps))
	binary.BigEndian.PutUint16(buf, uint16(len(comps)))
	for i, c := range comps {
		base := inlinePrologue + inlineEntry*i
		buf[base] = c.Tag
		binary.BigEndian.PutUint16(buf[base+1:], uint16(len(c.Data)))
	}
	for _, c := range comps {
		buf = append(buf, c.Data...)
	}
	return buf
}

func decodeInline(rec []byte) ([]Component, error) {
	if len(rec) < inlinePrologue {
		return nil, fmt.Errorf("%w: short inline object", ErrBadRef)
	}
	n := int(binary.BigEndian.Uint16(rec))
	if len(rec) < inlinePrologue+inlineEntry*n {
		return nil, fmt.Errorf("%w: truncated inline directory", ErrBadRef)
	}
	comps := make([]Component, n)
	off := inlinePrologue + inlineEntry*n
	for i := 0; i < n; i++ {
		base := inlinePrologue + inlineEntry*i
		tag := rec[base]
		l := int(binary.BigEndian.Uint16(rec[base+1:]))
		if off+l > len(rec) {
			return nil, fmt.Errorf("%w: truncated inline component %d", ErrBadRef, i)
		}
		data := make([]byte, l)
		copy(data, rec[off:off+l])
		comps[i] = Component{Tag: tag, Data: data}
		off += l
	}
	return comps, nil
}

func (s *Store) insertLarge(comps []Component) (Ref, error) {
	eff := s.effSize()
	dirBytes := dirPrologue + dirEntry*len(comps)
	headerPages := (dirBytes + eff - 1) / eff
	total := 0
	for _, c := range comps {
		total += len(c.Data)
	}
	dataPages := (total + eff - 1) / eff
	if dataPages == 0 {
		dataPages = 1
	}
	if headerPages > 0xFFFF || dataPages > 0xFFFF {
		return Ref{}, fmt.Errorf("longobj: object too large: %d header, %d data pages", headerPages, dataPages)
	}
	start, err := s.claimRun(headerPages + dataPages)
	if err != nil {
		return Ref{}, err
	}
	images := make([][]byte, headerPages+dataPages)
	for i := range images {
		images[i] = make([]byte, s.dev.PageSize())
	}
	// Directory into header pages.
	dir := make([]byte, dirBytes)
	binary.BigEndian.PutUint16(dir, uint16(len(comps)))
	binary.BigEndian.PutUint32(dir[2:], uint32(total))
	off := 0
	for i, c := range comps {
		base := dirPrologue + dirEntry*i
		dir[base] = c.Tag
		binary.BigEndian.PutUint32(dir[base+1:], uint32(off))
		binary.BigEndian.PutUint32(dir[base+5:], uint32(len(c.Data)))
		off += len(c.Data)
	}
	spill(dir, images[:headerPages])
	// Component byte stream into data pages.
	stream := make([]byte, 0, total)
	for _, c := range comps {
		stream = append(stream, c.Data...)
	}
	spill(stream, images[headerPages:])
	if err := s.dev.WriteRun(start, images); err != nil {
		return Ref{}, err
	}
	s.large++
	s.headerPages += headerPages
	s.dataPages += dataPages
	s.dataBytes += int64(total)
	return Ref{Start: start, HeaderPages: uint16(headerPages), DataPages: uint16(dataPages)}, nil
}

// spill copies b across the payload areas of the given page images.
func spill(b []byte, images [][]byte) {
	for i := 0; len(b) > 0 && i < len(images); i++ {
		payload := images[i][disk.SysHeaderSize:]
		n := copy(payload, b)
		b = b[n:]
	}
}

// dirEntryAt decodes directory entry i from the header byte stream.
func dirEntryAt(hdr []byte, i int) (tag uint8, off, length int, err error) {
	base := dirPrologue + dirEntry*i
	if base+dirEntry > len(hdr) {
		return 0, 0, 0, fmt.Errorf("%w: directory entry %d", ErrBadRef, i)
	}
	return hdr[base],
		int(binary.BigEndian.Uint32(hdr[base+1:])),
		int(binary.BigEndian.Uint32(hdr[base+5:])),
		nil
}

// chunkSize bounds how many pages are pinned at once; objects larger than
// the pool are processed run by run (extra I/O calls only arise for
// objects bigger than the whole cache, which the benchmark never creates).
func (s *Store) chunkSize() int {
	c := s.pool.Capacity() / 2
	if c < 1 {
		c = 1
	}
	return c
}

// visitPages fixes the given pages in bounded contiguous chunks, invokes
// visit with each page's payload (index into ids, payload view), and
// unfixes immediately after the chunk is consumed. Pages of one chunk are
// fetched with a single I/O call when contiguous on disk. dirty marks
// every visited page dirty.
func (s *Store) visitPages(ids []disk.PageID, dirty bool, visit func(i int, payload []byte)) error {
	chunk := s.chunkSize()
	for start := 0; start < len(ids); start += chunk {
		end := start + chunk
		if end > len(ids) {
			end = len(ids)
		}
		frames, err := s.pool.FixRun(ids[start:end])
		if err != nil {
			return err
		}
		for i, f := range frames {
			if dirty {
				s.pool.MarkDirty(f) // promotes a borrowed frame before visit mutates
			}
			visit(start+i, f.Data[disk.SysHeaderSize:])
		}
		for _, id := range ids[start:end] {
			if err := s.pool.Unfix(id, dirty); err != nil {
				return err
			}
		}
	}
	return nil
}

// readHeader fetches the header pages (one I/O call: "DASDBS uses separate
// I/O calls to retrieve the root page ... the additional header pages ...
// and the data pages") and returns a copy of the assembled directory bytes.
func (s *Store) readHeader(ref Ref) ([]byte, error) {
	ids := make([]disk.PageID, ref.HeaderPages)
	for i := range ids {
		ids[i] = ref.Start + disk.PageID(i)
	}
	eff := s.effSize()
	need := int(ref.HeaderPages) * eff
	if cap(s.hdrScratch) < need {
		s.hdrScratch = make([]byte, need)
	}
	// The scratch is fully overwritten (every visited page copies eff
	// bytes) and only read until the caller returns — no call path reads
	// two headers at once.
	hdr := s.hdrScratch[:need]
	err := s.visitPages(ids, false, func(i int, payload []byte) {
		copy(hdr[i*eff:], payload)
	})
	if err != nil {
		return nil, err
	}
	return hdr, nil
}

// dirSpan is one directory entry resolved to its data-area interval.
type dirSpan struct {
	off, end int
	tag      uint8
}

// dataPageIDs returns the page IDs of the object's data area.
func (s *Store) dataPageIDs(ref Ref) []disk.PageID {
	ids := make([]disk.PageID, ref.DataPages)
	for i := range ids {
		ids[i] = ref.Start + disk.PageID(int(ref.HeaderPages)+i)
	}
	return ids
}

// ReadAll returns every component (DSM read path: header call + one call
// for the full contiguous data run). The returned components are freshly
// allocated and belong to the caller.
func (s *Store) ReadAll(ref Ref) ([]Component, error) {
	return s.readAll(ref, false)
}

// ReadAllShared is ReadAll over per-store scratch buffers: the returned
// slice and every component's Data are valid only until the next
// ReadAllShared call on this store. The storage models' fetch paths
// decode components into result objects immediately, so they ride on this
// variant and a steady-state object read allocates nothing beyond the
// decoded values — which is what keeps a serving process's allocation
// rate (and with it the GC's transient footprint) flat under load.
func (s *Store) ReadAllShared(ref Ref) ([]Component, error) {
	return s.readAll(ref, true)
}

// scratch returns the component and data scratch for a scratch-backed
// read, or fresh allocations for the plain contract.
func (s *Store) scratch(scratch bool, n, total int) ([]Component, []byte) {
	if !scratch {
		return make([]Component, n), make([]byte, total)
	}
	if cap(s.compScratch) < n {
		s.compScratch = make([]Component, n+8)
	}
	if cap(s.blockScratch) < total {
		s.blockScratch = make([]byte, total+total/2)
	}
	return s.compScratch[:n], s.blockScratch[:total]
}

func (s *Store) readAll(ref Ref, scratch bool) ([]Component, error) {
	if ref.Small {
		if !scratch {
			// decodeInline copies every component out of the record, so
			// decoding under the page view is safe and the record-sized
			// staging copy heap.Get would make disappears. Same single
			// buffer fix either way — the paper counters cannot move.
			var comps []Component
			err := s.shared.View(ref.RID, func(rec []byte) error {
				var err error
				comps, err = decodeInline(rec)
				return err
			})
			return comps, err
		}
		// Scratch path: decode straight out of the heap page view, so
		// even the record copy disappears.
		var comps []Component
		err := s.shared.View(ref.RID, func(rec []byte) error {
			var err error
			comps, err = s.decodeInlineShared(rec)
			return err
		})
		return comps, err
	}
	hdr, err := s.readHeader(ref)
	if err != nil {
		return nil, err
	}
	n := int(binary.BigEndian.Uint16(hdr))
	eff := s.effSize()
	// Decode the directory once, back every component with one shared
	// block, and copy each visited page straight into the components it
	// feeds — the object is moved exactly once, with at most two
	// allocations per read no matter how many components it has. (An
	// earlier version staged the whole object in a stream buffer and
	// copied every component out of it again; at serving rates that
	// staging was the single largest allocation site in the process.)
	dataLen := int(ref.DataPages) * eff
	if cap(s.spanScratch) < n {
		s.spanScratch = make([]dirSpan, n+8)
	}
	spans := s.spanScratch[:n]
	total := 0
	for i := 0; i < n; i++ {
		tag, off, length, err := dirEntryAt(hdr, i)
		if err != nil {
			return nil, err
		}
		if off+length > dataLen {
			return nil, fmt.Errorf("%w: component %d beyond data", ErrBadRef, i)
		}
		spans[i] = dirSpan{off: off, end: off + length, tag: tag}
		total += length
	}
	comps, block := s.scratch(scratch, n, total)
	pos := 0
	for i := range comps {
		length := spans[i].end - spans[i].off
		comps[i] = Component{Tag: spans[i].tag, Data: block[pos : pos+length : pos+length]}
		pos += length
	}
	err = s.visitPages(s.dataPageIDs(ref), false, func(p int, payload []byte) {
		pageLo := p * eff
		for i := range spans {
			lo, hi := max(spans[i].off, pageLo), min(spans[i].end, pageLo+eff)
			if lo < hi {
				copy(comps[i].Data[lo-spans[i].off:], payload[lo-pageLo:hi-pageLo])
			}
		}
	})
	if err != nil {
		return nil, err
	}
	return comps, nil
}

// decodeInlineShared is decodeInline over the store scratch; see
// ReadAllShared for the aliasing contract.
func (s *Store) decodeInlineShared(rec []byte) ([]Component, error) {
	if len(rec) < inlinePrologue {
		return nil, fmt.Errorf("%w: short inline object", ErrBadRef)
	}
	n := int(binary.BigEndian.Uint16(rec))
	if len(rec) < inlinePrologue+inlineEntry*n {
		return nil, fmt.Errorf("%w: truncated inline directory", ErrBadRef)
	}
	// Validate every directory length against the record before sizing
	// the scratch: a corrupt record must produce an error, not a huge
	// allocation retained on the store.
	total := 0
	end := inlinePrologue + inlineEntry*n
	for i := 0; i < n; i++ {
		l := int(binary.BigEndian.Uint16(rec[inlinePrologue+inlineEntry*i+1:]))
		if end+total+l > len(rec) {
			return nil, fmt.Errorf("%w: truncated inline component %d", ErrBadRef, i)
		}
		total += l
	}
	comps, block := s.scratch(true, n, total)
	off := end
	pos := 0
	for i := 0; i < n; i++ {
		base := inlinePrologue + inlineEntry*i
		l := int(binary.BigEndian.Uint16(rec[base+1:]))
		data := block[pos : pos+l : pos+l]
		copy(data, rec[off:off+l])
		comps[i] = Component{Tag: rec[base], Data: data}
		off += l
		pos += l
	}
	return comps, nil
}

// ReadParts returns the components selected by want (given tag and
// component index), reading only the data pages that hold them (DASDBS-DSM
// read path). For small objects the single shared page is read either way.
// The second result lists the selected component indices.
func (s *Store) ReadParts(ref Ref, want func(tag uint8, idx int) bool) ([]Component, []int, error) {
	if ref.Small {
		all, err := s.ReadAll(ref)
		if err != nil {
			return nil, nil, err
		}
		var comps []Component
		var idxs []int
		for i, c := range all {
			if want(c.Tag, i) {
				comps = append(comps, c)
				idxs = append(idxs, i)
			}
		}
		return comps, idxs, nil
	}
	hdr, err := s.readHeader(ref)
	if err != nil {
		return nil, nil, err
	}
	n := int(binary.BigEndian.Uint16(hdr))
	eff := s.effSize()

	type span struct {
		idx, off, length int
		tag              uint8
		data             []byte
	}
	var spans []*span
	pageSet := map[int]bool{} // data page index within the object
	for i := 0; i < n; i++ {
		tag, off, length, err := dirEntryAt(hdr, i)
		if err != nil {
			return nil, nil, err
		}
		if !want(tag, i) {
			continue
		}
		spans = append(spans, &span{idx: i, off: off, length: length, tag: tag, data: make([]byte, length)})
		for pg := off / eff; length > 0 && pg <= (off+length-1)/eff; pg++ {
			pageSet[pg] = true
		}
	}
	var pgs []int
	for pg := range pageSet {
		pgs = append(pgs, pg)
	}
	sortInts(pgs)
	ids := make([]disk.PageID, len(pgs))
	for i, pg := range pgs {
		ids[i] = ref.Start + disk.PageID(int(ref.HeaderPages)+pg)
	}
	err = s.visitPages(ids, false, func(i int, payload []byte) {
		pg := pgs[i]
		pageStart := pg * eff
		for _, sp := range spans {
			segStart := max(sp.off, pageStart)
			segEnd := min(sp.off+sp.length, pageStart+eff)
			if segStart < segEnd {
				copy(sp.data[segStart-sp.off:segEnd-sp.off], payload[segStart-pageStart:segEnd-pageStart])
			}
		}
	})
	if err != nil {
		return nil, nil, err
	}
	comps := make([]Component, 0, len(spans))
	idxs := make([]int, 0, len(spans))
	for _, sp := range spans {
		comps = append(comps, Component{Tag: sp.tag, Data: sp.data})
		idxs = append(idxs, sp.idx)
	}
	return comps, idxs, nil
}

// ReplaceAll overwrites the whole object in place (the paper's "replace
// entire tuple" update path used by DSM, NSM and DASDBS-NSM). The new
// component layout must occupy the same number of header and data pages;
// otherwise ErrResize is returned. Pages are marked dirty and written back
// at the next flush/overflow, so a batch of replacements costs one batched
// write (§5.3: "16.7 tuples are updated at the same time, which can be
// implemented in DASDBS as a single 'replace set of tuples' operation").
func (s *Store) ReplaceAll(ref Ref, comps []Component) error {
	if ref.Small {
		rec := encodeInline(comps)
		if len(rec) > page.Capacity(s.dev.PageSize()) {
			return fmt.Errorf("%w: small object grows beyond a page", ErrResize)
		}
		return s.shared.Update(ref.RID, rec)
	}
	eff := s.effSize()
	dirBytes := dirPrologue + dirEntry*len(comps)
	headerPages := (dirBytes + eff - 1) / eff
	total := 0
	for _, c := range comps {
		total += len(c.Data)
	}
	dataPages := (total + eff - 1) / eff
	if dataPages == 0 {
		dataPages = 1
	}
	if headerPages != int(ref.HeaderPages) || dataPages != int(ref.DataPages) {
		return fmt.Errorf("%w: %dh+%dd -> %dh+%dd", ErrResize,
			ref.HeaderPages, ref.DataPages, headerPages, dataPages)
	}
	dir := make([]byte, dirBytes)
	binary.BigEndian.PutUint16(dir, uint16(len(comps)))
	binary.BigEndian.PutUint32(dir[2:], uint32(total))
	off := 0
	for i, c := range comps {
		base := dirPrologue + dirEntry*i
		dir[base] = c.Tag
		binary.BigEndian.PutUint32(dir[base+1:], uint32(off))
		binary.BigEndian.PutUint32(dir[base+5:], uint32(len(c.Data)))
		off += len(c.Data)
	}
	stream := make([]byte, 0, total)
	for _, c := range comps {
		stream = append(stream, c.Data...)
	}
	ids := make([]disk.PageID, ref.Pages())
	for i := range ids {
		ids[i] = ref.Start + disk.PageID(i)
	}
	return s.visitPages(ids, true, func(i int, payload []byte) {
		var src []byte
		if i < headerPages {
			src = tail(dir, i*eff)
		} else {
			src = tail(stream, (i-headerPages)*eff)
		}
		n := copy(payload, src)
		for j := n; j < len(payload); j++ {
			payload[j] = 0
		}
	})
}

// tail returns b[off:] or nil when off is past the end.
func tail(b []byte, off int) []byte {
	if off >= len(b) {
		return nil
	}
	return b[off:]
}

// Replace stores the new component set for an existing object. When the
// new layout fits the old page footprint the replacement happens in place
// (deferred writes, as ReplaceAll); otherwise — a large object changing
// its page count, or a small object outgrowing the free space of its
// shared page — the object is relocated: the old storage is released and
// a fresh object is inserted, whose new address is returned. Callers must
// adopt the returned Ref.
func (s *Store) Replace(ref Ref, comps []Component) (Ref, error) {
	err := s.ReplaceAll(ref, comps)
	if err == nil {
		return ref, nil
	}
	if !errors.Is(err, ErrResize) && !errors.Is(err, page.ErrPageFull) {
		return Ref{}, err
	}
	if ref.Small {
		if err := s.shared.Delete(ref.RID); err != nil {
			return Ref{}, err
		}
	} else {
		s.freeLarge(ref)
	}
	return s.Insert(comps)
}

// freeLarge releases a relocated large object: its accounting is undone
// and its page run enters the free-space map for recycling by a later
// insert.
func (s *Store) freeLarge(ref Ref) {
	s.large--
	s.headerPages -= int(ref.HeaderPages)
	s.dataPages -= int(ref.DataPages)
	s.freeRun(ref.Start, ref.Pages())
}

// freeRun inserts [start, start+n) into the free-space map, keeping it
// sorted by start and merging adjacent runs.
func (s *Store) freeRun(start disk.PageID, n int) {
	i := sort.Search(len(s.free), func(i int) bool { return s.free[i].start >= start })
	s.free = append(s.free, pageRun{})
	copy(s.free[i+1:], s.free[i:])
	s.free[i] = pageRun{start: start, n: n}
	if i+1 < len(s.free) && s.free[i].start+disk.PageID(s.free[i].n) == s.free[i+1].start {
		s.free[i].n += s.free[i+1].n
		s.free = append(s.free[:i+1], s.free[i+2:]...)
	}
	if i > 0 && s.free[i-1].start+disk.PageID(s.free[i-1].n) == s.free[i].start {
		s.free[i-1].n += s.free[i].n
		s.free = append(s.free[:i], s.free[i+1:]...)
	}
	s.freedPages += n
}

// claimRun produces a contiguous run of n pages for a new large object:
// first fit from the free-space map, falling back to extending the device.
// A recycled run is purged from the buffer pool first — its frames, clean
// or dirty, describe the dead object and must not shadow the bulk write
// of the new one.
func (s *Store) claimRun(n int) (disk.PageID, error) {
	for i := range s.free {
		if s.free[i].n < n {
			continue
		}
		start := s.free[i].start
		if s.free[i].n == n {
			s.free = append(s.free[:i], s.free[i+1:]...)
		} else {
			s.free[i].start += disk.PageID(n)
			s.free[i].n -= n
		}
		s.freedPages -= n
		ids := make([]disk.PageID, n)
		for j := range ids {
			ids[j] = start + disk.PageID(j)
		}
		if err := s.pool.Drop(ids); err != nil {
			// Return the run to the map: a failed claim (a still-pinned
			// stale frame) must not leak the pages out of the free space.
			s.freeRun(start, n)
			return disk.InvalidPage, err
		}
		return start, nil
	}
	return s.dev.Allocate(n)
}

// FreedPages returns the number of pages currently sitting in the
// free-space map: dead space released by relocating replacements that the
// next large-object inserts will recycle.
func (s *Store) FreedPages() int { return s.freedPages }

// ChangeComponent overwrites component idx in place with same-length data
// and writes the affected pages through immediately (the DASDBS "change
// attribute" page-pool behaviour of §5.3: "each update operation allocates
// a page pool, of which all pages are written ... even though the page
// pool is only a single page in size"). Returns the number of pages
// written through.
func (s *Store) ChangeComponent(ref Ref, idx int, data []byte) (int, error) {
	if ref.Small {
		// Decode under the page view (decodeInline copies, nothing
		// aliases the frame) and drop the view before Update re-fixes
		// the page — the fix count stays identical to the old
		// Get-then-Update sequence.
		var comps []Component
		if err := s.shared.View(ref.RID, func(rec []byte) error {
			var err error
			comps, err = decodeInline(rec)
			return err
		}); err != nil {
			return 0, err
		}
		if idx < 0 || idx >= len(comps) {
			return 0, fmt.Errorf("%w: %d of %d", ErrBadComp, idx, len(comps))
		}
		if len(data) != len(comps[idx].Data) {
			return 0, fmt.Errorf("%w: %d -> %d bytes", ErrSameLen, len(comps[idx].Data), len(data))
		}
		comps[idx].Data = data
		if err := s.shared.Update(ref.RID, encodeInline(comps)); err != nil {
			return 0, err
		}
		if err := s.pool.FlushPages([]disk.PageID{ref.RID.Page}); err != nil {
			return 0, err
		}
		return 1, nil
	}
	hdr, err := s.readHeader(ref)
	if err != nil {
		return 0, err
	}
	n := int(binary.BigEndian.Uint16(hdr))
	if idx < 0 || idx >= n {
		return 0, fmt.Errorf("%w: %d of %d", ErrBadComp, idx, n)
	}
	_, off, length, err := dirEntryAt(hdr, idx)
	if err != nil {
		return 0, err
	}
	if len(data) != length {
		return 0, fmt.Errorf("%w: %d -> %d bytes", ErrSameLen, length, len(data))
	}
	eff := s.effSize()
	var ids []disk.PageID
	firstPg := 0
	if length > 0 {
		firstPg = off / eff
		last := (off + length - 1) / eff
		for pg := firstPg; pg <= last; pg++ {
			ids = append(ids, ref.Start+disk.PageID(int(ref.HeaderPages)+pg))
		}
	}
	if len(ids) == 0 {
		return 0, nil
	}
	err = s.visitPages(ids, true, func(i int, payload []byte) {
		pg := firstPg + i
		pageStart := pg * eff
		segStart := max(off, pageStart)
		segEnd := min(off+length, pageStart+eff)
		copy(payload[segStart-pageStart:segEnd-pageStart], data[segStart-off:segEnd-off])
	})
	if err != nil {
		return 0, err
	}
	if err := s.pool.FlushPages(ids); err != nil {
		return 0, err
	}
	return len(ids), nil
}

// AppendState serializes the store's directory state — object and page
// accounting plus the free-space map — for a database snapshot, followed
// by the shared heap's state. The page images themselves travel with the
// device arena.
func (s *Store) AppendState(b []byte) []byte {
	b = wire.AppendU64(b, uint64(s.large))
	b = wire.AppendU64(b, uint64(s.headerPages))
	b = wire.AppendU64(b, uint64(s.dataPages))
	b = wire.AppendU64(b, uint64(s.dataBytes))
	b = wire.AppendU64(b, uint64(s.freedPages))
	b = wire.AppendU32(b, uint32(len(s.free)))
	for _, r := range s.free {
		b = wire.AppendU32(b, uint32(r.start))
		b = wire.AppendU32(b, uint32(r.n))
	}
	return s.shared.AppendState(b)
}

// RestoreState rebuilds the directory state from AppendState output, over
// a device that already holds the page images. The store must be empty.
func (s *Store) RestoreState(r *wire.Reader) error {
	if s.large != 0 || s.shared.NumRecords() != 0 {
		return errors.New("longobj: restore into non-empty store")
	}
	s.large = int(r.U64())
	s.headerPages = int(r.U64())
	s.dataPages = int(r.U64())
	s.dataBytes = int64(r.U64())
	s.freedPages = int(r.U64())
	n := r.Len(8) // u32 start + u32 length per free run
	s.free = make([]pageRun, n)
	for i := range s.free {
		s.free[i] = pageRun{start: disk.PageID(r.U32()), n: int(r.U32())}
	}
	if err := r.Err(); err != nil {
		return fmt.Errorf("longobj: %w", err)
	}
	return s.shared.RestoreState(r)
}

// AppendRef serializes a Ref (9 bytes, either variant).
func AppendRef(b []byte, ref Ref) []byte {
	if ref.Small {
		b = wire.AppendU8(b, 1)
		b = wire.AppendU32(b, uint32(ref.RID.Page))
		b = wire.AppendU16(b, ref.RID.Slot)
		return wire.AppendU16(b, 0)
	}
	b = wire.AppendU8(b, 0)
	b = wire.AppendU32(b, uint32(ref.Start))
	b = wire.AppendU16(b, ref.HeaderPages)
	return wire.AppendU16(b, ref.DataPages)
}

// ReadRef consumes a Ref appended by AppendRef.
func ReadRef(r *wire.Reader) Ref {
	small := r.U8() == 1
	a := r.U32()
	h := r.U16()
	d := r.U16()
	if small {
		return Ref{Small: true, RID: heap.RID{Page: disk.PageID(a), Slot: h}}
	}
	return Ref{Start: disk.PageID(a), HeaderPages: h, DataPages: d}
}

func sortInts(xs []int) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}
