// Package longobj implements the DASDBS-style storage of large complex
// objects described in the paper's §4: "if a nested tuple is too large to
// be stored on a single page, the structure information is mapped onto a
// set of header pages, which is disjoint from the set of data pages that
// store the data".
//
// An object is a sequence of tagged components (the root record and each
// sub-object). Objects that fit one page are stored as ordinary records in
// a shared slotted heap ("with smaller objects ... several objects will
// share a single page", §5.3); larger objects get a contiguous run of
// pages: header page(s) holding the component directory, then dedicated
// data pages holding the component bytes back to back.
//
// Read paths mirror the two direct storage models:
//
//   - ReadAll fetches header and all data pages — the plain DSM behaviour
//     ("complex objects are stored as a whole ... the pages that store the
//     tuple will not be shared", §3.1);
//   - ReadParts fetches the header first and then only the data pages that
//     hold requested components — the DASDBS-DSM behaviour ("from the set
//     of pages that stores the object, only those pages are retrieved that
//     are actually used in a query", §3.2).
//
// ChangeComponent implements the §5.3 update anomaly: DASDBS "change
// attribute" operations allocate a page pool of which all pages are
// written immediately, making DASDBS-DSM updates expensive for small
// objects.
//
// A Store has a single owner (the engine it belongs to) and reuses
// scratch buffers across calls on that assumption. ReadAllShared is the
// scratch-backed ReadAll used by the storage models' fetch paths: its
// components are valid only until the next ReadAllShared call on the same
// store, and in exchange a steady-state object read allocates nothing
// beyond the values the caller decodes out — which keeps the benchmark
// server's allocation rate flat under sustained load.
package longobj
