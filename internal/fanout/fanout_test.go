package fanout

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestRunCoversAllJobs(t *testing.T) {
	const n = 100
	done := make([]int32, n)
	if err := Run(n, 7, func(i int) error {
		atomic.AddInt32(&done[i], 1)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for i, c := range done {
		if c != 1 {
			t.Fatalf("job %d ran %d times", i, c)
		}
	}
}

func TestRunBoundsWorkers(t *testing.T) {
	const workers = 3
	var cur, peak int32
	var mu sync.Mutex
	err := Run(50, workers, func(int) error {
		mu.Lock()
		cur++
		if cur > peak {
			peak = cur
		}
		mu.Unlock()
		time.Sleep(100 * time.Microsecond) // let jobs overlap
		mu.Lock()
		cur--
		mu.Unlock()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if peak > workers {
		t.Errorf("observed %d concurrent jobs, bound is %d", peak, workers)
	}
}

func TestRunReturnsFirstErrorAndStopsDispatch(t *testing.T) {
	boom := errors.New("boom")
	var ran atomic.Int32
	err := Run(1000, 2, func(i int) error {
		ran.Add(1)
		if i == 3 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if n := ran.Load(); n == 1000 {
		t.Error("error did not stop dispatch of remaining jobs")
	}
}

func TestRunZeroJobs(t *testing.T) {
	if err := Run(0, 4, func(int) error { t.Fatal("fn called"); return nil }); err != nil {
		t.Fatal(err)
	}
}
