package fanout

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Run invokes fn(i) for every i in [0, n) using at most workers concurrent
// goroutines (workers <= 0 means GOMAXPROCS). Jobs are dispatched in index
// order; output ordering is the caller's responsibility (write to slot i).
// The first error stops the dispatch of not-yet-started jobs and is
// returned after all running jobs finish.
func Run(n, workers int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	var (
		next     atomic.Int64
		failed   atomic.Bool
		mu       sync.Mutex
		firstErr error
		wg       sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if failed.Load() {
					continue
				}
				if err := fn(i); err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					failed.Store(true)
				}
			}
		}()
	}
	wg.Wait()
	return firstErr
}
