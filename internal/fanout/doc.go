// Package fanout provides the bounded, order-preserving worker pool shared
// by the experiment harness and the CLI drivers: n independent jobs are
// handed to at most `workers` goroutines, callers write results into
// caller-owned slices at the job index, and the first error wins.
//
// # Determinism guarantee
//
// Run contributes nothing nondeterministic beyond scheduling: jobs are
// dispatched in index order, each job runs exactly once, and results land
// wherever the caller's fn(i) writes them. The experiment harness builds
// its byte-identical-to-serial guarantee on top of that by making every
// job self-contained — each worker owns a private engine (device + buffer
// pool, or a copy-on-write view of a shared immutable base), every
// measurement starts from a cold cache with reset counters, and no job
// reads another job's output. Under those conditions the assembled result
// slice is independent of the worker count and of interleaving, which the
// determinism tests in the experiments package pin for the matrix and
// every sweep.
package fanout
