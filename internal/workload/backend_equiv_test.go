package workload

import (
	"testing"

	"complexobj/cobench"
	"complexobj/internal/disk"
	"complexobj/internal/store"
)

// TestBackendCounterEquivalence is the tentpole invariant test at the raw
// counter level: the full paper query matrix, run on every storage model,
// produces bit-identical iostat counters (page I/Os, I/O calls, buffer
// fixes and hits) whether the device arena lives in memory or on a
// mmap'ed file. The backend moves bytes, never measurements.
func TestBackendCounterEquivalence(t *testing.T) {
	stations, err := cobench.Generate(cobench.DefaultConfig().WithN(80))
	if err != nil {
		t.Fatal(err)
	}
	w := cobench.Workload{Loops: 20, Samples: 6, Seed: 7}
	for _, k := range store.AllKinds() {
		t.Run(k.String(), func(t *testing.T) {
			run := func(spec disk.BackendSpec) []Result {
				m, err := store.New(k, store.Options{BufferPages: 200, Backend: spec})
				if err != nil {
					t.Fatal(err)
				}
				defer m.Engine().Close()
				if err := m.Load(stations); err != nil {
					t.Fatal(err)
				}
				results, err := NewRunner(m, w).RunAll()
				if err != nil {
					t.Fatal(err)
				}
				return results
			}
			mem := run(disk.BackendSpec{Kind: disk.MemArena})
			file := run(disk.BackendSpec{Kind: disk.FileArena, Dir: t.TempDir()})
			if len(mem) != len(file) {
				t.Fatalf("result counts differ: %d vs %d", len(mem), len(file))
			}
			for i := range mem {
				if mem[i].Stats != file[i].Stats {
					t.Errorf("%s %s: counters differ across backends:\nmem:  %+v\nfile: %+v",
						k, mem[i].Query, mem[i].Stats, file[i].Stats)
				}
				if mem[i].Supported != file[i].Supported || mem[i].Units != file[i].Units {
					t.Errorf("%s %s: normalization differs across backends", k, mem[i].Query)
				}
			}
		})
	}
}
