package workload

import (
	"testing"

	"complexobj/cobench"
	"complexobj/internal/disk"
	"complexobj/internal/store"
)

// TestBackendCounterEquivalence is the tentpole invariant test at the raw
// counter level: the full paper query matrix, run on every storage model,
// produces bit-identical iostat counters (page I/Os, I/O calls, buffer
// fixes and hits) whether the device arena lives in memory, on a mmap'ed
// file, or in a copy-on-write overlay — both the bare overlay ("cow" with
// no base) and a view of a frozen shared base. The backend moves bytes,
// never measurements.
func TestBackendCounterEquivalence(t *testing.T) {
	stations, err := cobench.Generate(cobench.DefaultConfig().WithN(80))
	if err != nil {
		t.Fatal(err)
	}
	w := cobench.Workload{Loops: 20, Samples: 6, Seed: 7}
	for _, k := range store.AllKinds() {
		t.Run(k.String(), func(t *testing.T) {
			measure := func(m store.Model) []Result {
				defer m.Engine().Close()
				results, err := NewRunner(m, w).RunAll()
				if err != nil {
					t.Fatal(err)
				}
				return results
			}
			load := func(spec disk.BackendSpec) store.Model {
				m, err := store.New(k, store.Options{BufferPages: 200, Backend: spec})
				if err != nil {
					t.Fatal(err)
				}
				if err := m.Load(stations); err != nil {
					t.Fatal(err)
				}
				return m
			}
			run := func(spec disk.BackendSpec) []Result { return measure(load(spec)) }

			mem := run(disk.BackendSpec{Kind: disk.MemArena})
			got := map[string][]Result{
				"file": run(disk.BackendSpec{Kind: disk.FileArena, Dir: t.TempDir()}),
				"cow":  run(disk.BackendSpec{Kind: disk.COWArena}),
			}
			// Shared-base view: freeze one loaded model, measure a COW view.
			loader := load(disk.BackendSpec{Kind: disk.MemArena})
			base, err := store.Freeze(loader)
			if err != nil {
				t.Fatal(err)
			}
			loader.Engine().Close()
			view, err := base.Open(store.Options{BufferPages: 200})
			if err != nil {
				t.Fatal(err)
			}
			got["cow-shared-base"] = measure(view)

			for name, other := range got {
				if len(mem) != len(other) {
					t.Fatalf("%s: result counts differ: %d vs %d", name, len(mem), len(other))
				}
				for i := range mem {
					if mem[i].Stats != other[i].Stats {
						t.Errorf("%s %s: counters differ across backends:\nmem: %+v\n%s: %+v",
							k, mem[i].Query, mem[i].Stats, name, other[i].Stats)
					}
					if mem[i].Supported != other[i].Supported || mem[i].Units != other[i].Units {
						t.Errorf("%s %s: normalization differs on %s", k, mem[i].Query, name)
					}
				}
			}
		})
	}
}
