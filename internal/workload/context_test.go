package workload

import (
	"context"
	"errors"
	"testing"

	"complexobj/cobench"
	"complexobj/internal/store"
)

// TestRunInterruptedByContext: a canceled context stops every query with
// a structured error wrapping the context's, and an interrupted run
// reports no counters at all (never a truncated measurement).
func TestRunInterruptedByContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	r := loadedRunner(t, store.DSM, 60).WithContext(ctx)
	for _, q := range cobench.AllQueries() {
		_, err := r.Run(q)
		if err == nil {
			t.Errorf("%s ran to completion under a canceled context", q)
			continue
		}
		if !errors.Is(err, context.Canceled) {
			t.Errorf("%s: error %v does not wrap context.Canceled", q, err)
		}
	}
}

// TestRunWithBackgroundContext: an un-canceled context changes nothing —
// the run completes with the same counters as a context-free one.
func TestRunWithBackgroundContext(t *testing.T) {
	plain := loadedRunner(t, store.DASDBSNSM, 60)
	want, err := plain.Run(cobench.Q1c)
	if err != nil {
		t.Fatal(err)
	}
	bounded := loadedRunner(t, store.DASDBSNSM, 60).WithContext(context.Background())
	got, err := bounded.Run(cobench.Q1c)
	if err != nil {
		t.Fatal(err)
	}
	if got.Stats != want.Stats {
		t.Errorf("counters diverged under a background context:\n got %+v\nwant %+v", got.Stats, want.Stats)
	}
}

// TestRunCancelMidScan cancels during the scan callback and checks the
// run stops promptly with the context error instead of finishing.
func TestRunCancelMidScan(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	r := loadedRunner(t, store.NSM, 60).WithContext(ctx)
	cancel()
	if _, err := r.Run(cobench.Q1c); err == nil || !errors.Is(err, context.Canceled) {
		t.Errorf("mid-scan cancel: err = %v", err)
	}
}
