package workload

import (
	"context"
	"fmt"
	"time"

	"complexobj/cobench"
	"complexobj/internal/iostat"
	"complexobj/internal/store"
	"complexobj/internal/xrand"
)

// Result is the outcome of one query execution.
type Result struct {
	Query cobench.Query
	Model store.Kind
	// Supported is false when the model cannot run the query (pure NSM has
	// no address access, so query 1a "is not relevant").
	Supported bool
	// Units is the normalization divisor: objects for 1a-1c, loops for 2-3.
	Units float64
	// Stats holds the raw counters accumulated over the whole query.
	Stats iostat.Stats
	// Touched counts object visits during navigation (roots + children +
	// grand-children, including repeats), for diagnostics.
	Touched int64
	// Elapsed is the wall-clock service time of the query execution
	// itself, measured inside the runner (cache reset through final
	// flush) — the timing hook the serving path's latency metrics read.
	// Pure observability: it reflects no I/O accounting and never feeds a
	// paper counter (those compare Stats only).
	Elapsed time.Duration
}

// PerUnit returns the normalized counters (the numbers printed in the
// paper's tables).
func (r Result) PerUnit() iostat.Normalized {
	if !r.Supported || r.Units == 0 {
		return iostat.Normalized{}
	}
	return r.Stats.Normalize(r.Units)
}

// View is the execution surface a Runner drives: the query operations of
// a storage model plus the engine hooks for cache control and statistics.
// It is the narrow waist shared by every execution path — a full
// store.Model (the batch tables), a recyclable store.View over a frozen
// base (the benchmark server), and anything else that can answer the
// paper's queries. A Runner never loads, snapshots or restructures; a
// request-scoped handle therefore only has to provide the read/navigate/
// update operations below to measure bit-identically to a private model.
type View interface {
	// Kind returns the storage-model identity (for result rows).
	Kind() store.Kind
	// Engine exposes cache control and the I/O counters.
	Engine() *store.Engine
	// NumObjects returns the extension size.
	NumObjects() int
	// FetchByAddress retrieves one whole object by address (query 1a).
	FetchByAddress(i int) (*cobench.Station, error)
	// FetchByKey retrieves one whole object by key selection (query 1b).
	FetchByKey(key int32) (*cobench.Station, error)
	// ScanAll retrieves every object (query 1c).
	ScanAll(fn func(i int, s *cobench.Station) error) error
	// Navigate reads a root record and its children's identifiers (2/3).
	Navigate(i int) (cobench.RootRecord, []int32, error)
	// ReadRoot inputs just the root record of an object.
	ReadRoot(i int) (cobench.RootRecord, error)
	// UpdateRoots applies mutate to root records and writes them back (3).
	UpdateRoots(idxs []int32, mutate func(i int32, r *cobench.RootRecord)) error
	// Flush forces deferred writes out (end of an update query).
	Flush() error
}

// Runner executes queries against one loaded view.
type Runner struct {
	model View
	w     cobench.Workload
	ctx   context.Context
}

// NewRunner wraps a loaded view with workload parameters. store.Model is
// a superset of the View interface, so batch callers pass models directly.
func NewRunner(m View, w cobench.Workload) *Runner {
	return &Runner{model: m, w: w}
}

// WithContext bounds the runner's queries by ctx: execution checks the
// context between object visits (per sample, per scanned object, per
// navigation loop) and stops with the context's error, so a deadlined or
// canceled request releases its view promptly instead of finishing a long
// scan nobody is waiting for. A nil context (the default) never
// interrupts. The check granularity is an object, not a page — a query
// interrupted mid-object has still performed whole page transfers, which
// is why interrupted runs report no counters at all rather than a
// truncated measurement.
func (r *Runner) WithContext(ctx context.Context) *Runner {
	r.ctx = ctx
	return r
}

// interrupted reports the context's error once the runner's context is
// done (nil context: never).
func (r *Runner) interrupted() error {
	if r.ctx == nil {
		return nil
	}
	if err := r.ctx.Err(); err != nil {
		return fmt.Errorf("workload: interrupted: %w", err)
	}
	return nil
}

// Run executes one benchmark query and returns its measurement, with
// Result.Elapsed stamped around the execution (the timing hook of the
// observability layer — timing never alters the I/O counters).
func (r *Runner) Run(q cobench.Query) (Result, error) {
	if r.model.NumObjects() == 0 {
		return Result{}, store.ErrNotLoaded
	}
	start := time.Now()
	res, err := r.run(q)
	if err != nil {
		return res, err
	}
	res.Elapsed = time.Since(start)
	return res, nil
}

func (r *Runner) run(q cobench.Query) (Result, error) {
	switch q {
	case cobench.Q1a:
		return r.runQ1a()
	case cobench.Q1b:
		return r.runQ1b()
	case cobench.Q1c:
		return r.runQ1c()
	case cobench.Q2a:
		return r.runNav(cobench.Q2a, false)
	case cobench.Q3a:
		return r.runNav(cobench.Q3a, true)
	case cobench.Q2b:
		return r.runLoops(cobench.Q2b, false)
	case cobench.Q3b:
		return r.runLoops(cobench.Q3b, true)
	default:
		return Result{}, fmt.Errorf("workload: unknown query %v", q)
	}
}

// RunAll executes every benchmark query in paper order.
func (r *Runner) RunAll() ([]Result, error) {
	var out []Result
	for _, q := range cobench.AllQueries() {
		res, err := r.Run(q)
		if err != nil {
			return nil, fmt.Errorf("workload: %s on %s: %w", q, r.model.Kind(), err)
		}
		out = append(out, res)
	}
	return out, nil
}

// samples returns up to w.Samples distinct object indices, deterministic
// per (seed, query).
func (r *Runner) samples(q cobench.Query) []int {
	n := r.model.NumObjects()
	k := r.w.Samples
	if k <= 0 || k > n {
		k = n
	}
	rng := xrand.New(xrand.Mix(r.w.Seed, uint64(q)))
	perm := rng.Perm(n)
	return perm[:k]
}

// begin resets cache and statistics for a fresh measurement.
func (r *Runner) begin() error {
	if err := r.model.Engine().ColdCache(); err != nil {
		return err
	}
	r.model.Engine().ResetStats()
	return nil
}

func (r *Runner) result(q cobench.Query, units float64, touched int64) Result {
	return Result{
		Query:     q,
		Model:     r.model.Kind(),
		Supported: true,
		Units:     units,
		Stats:     r.model.Engine().Stats(),
		Touched:   touched,
	}
}

func (r *Runner) runQ1a() (Result, error) {
	if r.model.Kind() == store.NSM {
		return Result{Query: cobench.Q1a, Model: store.NSM, Supported: false}, nil
	}
	idxs := r.samples(cobench.Q1a)
	if err := r.begin(); err != nil {
		return Result{}, err
	}
	for _, i := range idxs {
		if err := r.interrupted(); err != nil {
			return Result{}, err
		}
		if _, err := r.model.FetchByAddress(i); err != nil {
			return Result{}, err
		}
		// Each retrieval is an independent cold-cache measurement, but the
		// statistics accumulate.
		if err := r.model.Engine().ColdCache(); err != nil {
			return Result{}, err
		}
	}
	return r.result(cobench.Q1a, float64(len(idxs)), int64(len(idxs))), nil
}

func (r *Runner) runQ1b() (Result, error) {
	idxs := r.samples(cobench.Q1b)
	// Value scans are expensive; a handful of repetitions is enough for a
	// stable average.
	if len(idxs) > 5 {
		idxs = idxs[:5]
	}
	if err := r.begin(); err != nil {
		return Result{}, err
	}
	for _, i := range idxs {
		if err := r.interrupted(); err != nil {
			return Result{}, err
		}
		if _, err := r.model.FetchByKey(cobench.KeyOf(i)); err != nil {
			return Result{}, err
		}
		if err := r.model.Engine().ColdCache(); err != nil {
			return Result{}, err
		}
	}
	return r.result(cobench.Q1b, float64(len(idxs)), int64(len(idxs))), nil
}

func (r *Runner) runQ1c() (Result, error) {
	if err := r.begin(); err != nil {
		return Result{}, err
	}
	count := 0
	err := r.model.ScanAll(func(int, *cobench.Station) error {
		if err := r.interrupted(); err != nil {
			return err
		}
		count++
		return nil
	})
	if err != nil {
		return Result{}, err
	}
	return r.result(cobench.Q1c, float64(count), int64(count)), nil
}

// loop performs one navigation loop from root: fetch the root's needed
// attributes, fetch its children, fetch the root records of the
// grand-children; with update=true the grand-children root records are then
// updated as one batch.
func (r *Runner) loop(root int, stamp int, update bool) (touched int64, err error) {
	_, children, err := r.model.Navigate(root)
	if err != nil {
		return 0, err
	}
	touched = 1
	var grand []int32
	for _, c := range children {
		_, kids, err := r.model.Navigate(int(c))
		if err != nil {
			return 0, err
		}
		touched++
		grand = append(grand, kids...)
	}
	for _, g := range grand {
		if _, err := r.model.ReadRoot(int(g)); err != nil {
			return 0, err
		}
		touched++
	}
	if update && len(grand) > 0 {
		err := r.model.UpdateRoots(grand, func(i int32, rec *cobench.RootRecord) {
			// Update atomic attributes without changing the object
			// structure (§2.2): overwrite the name with a stamped value of
			// unchanged encoded size (STR attributes are fixed-capacity).
			rec.Name = fmt.Sprintf("upd %d #%d", stamp, i)
		})
		if err != nil {
			return 0, err
		}
	}
	return touched, nil
}

func (r *Runner) runNav(q cobench.Query, update bool) (Result, error) {
	idxs := r.samples(q)
	if err := r.begin(); err != nil {
		return Result{}, err
	}
	var touched int64
	for s, root := range idxs {
		if err := r.interrupted(); err != nil {
			return Result{}, err
		}
		tc, err := r.loop(root, s, update)
		if err != nil {
			return Result{}, err
		}
		touched += tc
		if update {
			// End of query: flush ("query execution has been finished").
			if err := r.model.Flush(); err != nil {
				return Result{}, err
			}
		}
		if err := r.model.Engine().ColdCache(); err != nil {
			return Result{}, err
		}
	}
	return r.result(q, float64(len(idxs)), touched), nil
}

func (r *Runner) runLoops(q cobench.Query, update bool) (Result, error) {
	loops := r.w.Loops
	if loops <= 0 {
		loops = cobench.LoopsFor(r.model.NumObjects())
	}
	rng := xrand.New(xrand.Mix(r.w.Seed, uint64(q)+100))
	if err := r.begin(); err != nil {
		return Result{}, err
	}
	var touched int64
	for l := 0; l < loops; l++ {
		if err := r.interrupted(); err != nil {
			return Result{}, err
		}
		root := rng.Intn(r.model.NumObjects())
		tc, err := r.loop(root, l, update)
		if err != nil {
			return Result{}, err
		}
		touched += tc
	}
	if update {
		if err := r.model.Flush(); err != nil {
			return Result{}, err
		}
	}
	return r.result(q, float64(loops), touched), nil
}
