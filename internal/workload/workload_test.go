package workload

import (
	"math"
	"testing"

	"complexobj/cobench"
	"complexobj/internal/store"
)

func loadedRunner(t *testing.T, k store.Kind, n int) *Runner {
	t.Helper()
	cfg := cobench.DefaultConfig().WithN(n)
	stations, err := cobench.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m := mustNew(k, store.Options{BufferPages: 256})
	if err := m.Load(stations); err != nil {
		t.Fatal(err)
	}
	w := cobench.DefaultWorkload()
	w.Loops = 40
	w.Samples = 10
	return NewRunner(m, w)
}

func TestRunAllModelsAllQueries(t *testing.T) {
	for _, k := range store.AllKinds() {
		t.Run(k.String(), func(t *testing.T) {
			r := loadedRunner(t, k, 150)
			results, err := r.RunAll()
			if err != nil {
				t.Fatal(err)
			}
			if len(results) != 7 {
				t.Fatalf("got %d results", len(results))
			}
			for _, res := range results {
				if res.Query == cobench.Q1a && k == store.NSM {
					if res.Supported {
						t.Error("pure NSM claims to support query 1a")
					}
					continue
				}
				if !res.Supported {
					t.Errorf("%s unsupported on %s", res.Query, k)
					continue
				}
				if res.Units <= 0 {
					t.Errorf("%s: units %f", res.Query, res.Units)
				}
				n := res.PerUnit()
				if n.Pages <= 0 {
					t.Errorf("%s: no page I/O measured", res.Query)
				}
				if n.Calls <= 0 {
					t.Errorf("%s: no I/O calls measured", res.Query)
				}
				if n.Fixes <= 0 {
					t.Errorf("%s: no buffer fixes measured", res.Query)
				}
			}
		})
	}
}

func TestQ1cCountsEveryObject(t *testing.T) {
	r := loadedRunner(t, store.DSM, 120)
	res, err := r.Run(cobench.Q1c)
	if err != nil {
		t.Fatal(err)
	}
	if res.Units != 120 {
		t.Errorf("Q1c units = %f, want 120", res.Units)
	}
}

func TestQ2TouchedMatchesExpectation(t *testing.T) {
	// Touched objects per loop should be near 1 + children + grand-children
	// = 1 + 4.1 + 16.8 ≈ 21.9.
	r := loadedRunner(t, store.DASDBSNSM, 400)
	res, err := r.Run(cobench.Q2b)
	if err != nil {
		t.Fatal(err)
	}
	perLoop := float64(res.Touched) / res.Units
	if math.Abs(perLoop-21.9) > 6 {
		t.Errorf("touched/loop = %f, want ~21.9", perLoop)
	}
}

func TestQ3WritesQ2DoesNot(t *testing.T) {
	for _, k := range store.AllKinds() {
		r := loadedRunner(t, k, 150)
		q2, err := r.Run(cobench.Q2b)
		if err != nil {
			t.Fatal(err)
		}
		if q2.Stats.PagesWritten != 0 {
			t.Errorf("%s: query 2b wrote %d pages", k, q2.Stats.PagesWritten)
		}
		q3, err := r.Run(cobench.Q3b)
		if err != nil {
			t.Fatal(err)
		}
		if q3.Stats.PagesWritten == 0 {
			t.Errorf("%s: query 3b wrote nothing", k)
		}
	}
}

func TestUpdatesArePersistent(t *testing.T) {
	r := loadedRunner(t, store.DASDBSNSM, 150)
	if _, err := r.Run(cobench.Q3b); err != nil {
		t.Fatal(err)
	}
	// After the query, some roots must carry the update stamp.
	if err := r.model.Engine().ColdCache(); err != nil {
		t.Fatal(err)
	}
	stamped := 0
	for i := 0; i < 150; i++ {
		root, err := r.model.ReadRoot(i)
		if err != nil {
			t.Fatal(err)
		}
		if len(root.Name) > 3 && root.Name[:3] == "upd" {
			stamped++
		}
	}
	if stamped == 0 {
		t.Error("no station carries the update stamp after query 3b")
	}
}

func TestDeterministicResults(t *testing.T) {
	a := loadedRunner(t, store.DSM, 150)
	b := loadedRunner(t, store.DSM, 150)
	ra, err := a.Run(cobench.Q2b)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := b.Run(cobench.Q2b)
	if err != nil {
		t.Fatal(err)
	}
	if ra.Stats != rb.Stats {
		t.Errorf("same seed, different stats: %v vs %v", ra.Stats, rb.Stats)
	}
}

func TestRunOnEmptyModelFails(t *testing.T) {
	m := mustNew(store.DSM, store.Options{BufferPages: 16})
	r := NewRunner(m, cobench.DefaultWorkload())
	if _, err := r.Run(cobench.Q1a); err == nil {
		t.Error("query on empty model succeeded")
	}
}

func TestResultPerUnitUnsupported(t *testing.T) {
	res := Result{Supported: false}
	if res.PerUnit().Pages != 0 {
		t.Error("unsupported result produced numbers")
	}
}

func TestLoopsDefaultFromDatabaseSize(t *testing.T) {
	// Loops <= 0 falls back to the Figure 6 convention N/5.
	cfg := cobench.DefaultConfig().WithN(100)
	stations, err := cobench.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m := mustNew(store.DASDBSNSM, store.Options{BufferPages: 128})
	if err := m.Load(stations); err != nil {
		t.Fatal(err)
	}
	r := NewRunner(m, cobench.Workload{Loops: 0, Samples: 5, Seed: 3})
	res, err := r.Run(cobench.Q2b)
	if err != nil {
		t.Fatal(err)
	}
	if res.Units != 20 {
		t.Errorf("default loops = %f, want 20 (N/5)", res.Units)
	}
}

func TestSamplesClampedToDatabase(t *testing.T) {
	r := loadedRunner(t, store.DSM, 8) // workload asks for 10 samples
	res, err := r.Run(cobench.Q1a)
	if err != nil {
		t.Fatal(err)
	}
	if res.Units != 8 {
		t.Errorf("samples = %f, want clamped to 8", res.Units)
	}
}

func TestQ3aFlushesWithinMeasurement(t *testing.T) {
	r := loadedRunner(t, store.DSM, 100)
	res, err := r.Run(cobench.Q3a)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.PagesWritten == 0 {
		t.Error("query 3a counted no writes; flush must happen inside the measurement")
	}
	// After the query no dirty pages linger: an immediate flush is a no-op.
	r.model.Engine().ResetStats()
	if err := r.model.Flush(); err != nil {
		t.Fatal(err)
	}
	if w := r.model.Engine().Stats().PagesWritten; w != 0 {
		t.Errorf("post-query flush wrote %d pages", w)
	}
}

func TestSampleSchedulesAreQuerySpecific(t *testing.T) {
	r := loadedRunner(t, store.DSM, 200)
	a := r.samples(cobench.Q1a)
	b := r.samples(cobench.Q2a)
	same := true
	for i := range a {
		if a[i] != b[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different queries draw identical sample schedules")
	}
	// But the same query is deterministic.
	c := r.samples(cobench.Q1a)
	for i := range a {
		if a[i] != c[i] {
			t.Fatal("sample schedule not deterministic")
		}
	}
}

// mustNew builds a model over a fresh in-memory engine; construction
// cannot fail for the memory backend.
func mustNew(k store.Kind, o store.Options) store.Model {
	m, err := store.New(k, o)
	if err != nil {
		panic(err)
	}
	return m
}
