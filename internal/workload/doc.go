// Package workload drives the seven benchmark queries of the paper's §2.2
// against a storage model and collects the I/O statistics that Tables 4-7
// and Figures 5-6 report.
//
// Accounting conventions (matching §5.1):
//
//   - single-shot queries (1a, 1b, 2a, 3a) run on a cold cache and are
//     averaged over a sample of objects (the paper measured one hand-picked
//     "average" object; sampling removes the arbitrariness);
//   - looped queries (2b, 3b) run Loops consecutive navigation loops on a
//     warm cache and normalize per loop;
//   - the scan query (1c) runs once and normalizes per object;
//   - updates are written back at flush ("database disconnect") or on
//     buffer overflow, both inside the measurement window.
//
// The Runner executes against the View interface — the narrow query/
// engine surface of a storage model — rather than a concrete model. That
// interface is the single execution path shared by every measurement
// surface: batch databases (complexobj.DB), the request-scoped
// copy-on-write views the benchmark server hands out (store.View), and
// the experiments suite all drive the same Runner, which is what makes
// served counters bit-identical to the batch tables by construction.
package workload
