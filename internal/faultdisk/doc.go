// Package faultdisk injects deterministic, seeded I/O misbehavior under
// the simulated device: it wraps any disk.Backend in a fault schedule of
// transient and permanent errors, added latency, short reads and torn
// writes, at page granularity and with per-op counters of everything it
// inflicted.
//
// The wrapper exists to prove the system's robustness claim, which is a
// sharpening of the paper's measurement contract: the I/O counters the
// tables report must stay bit-identical — and the process must stay up —
// while the storage substrate misbehaves. Injection happens strictly
// below the device's accounting (device counters increment only after a
// fully successful page transfer), so a retried transient fault is
// invisible in the paper-visible statistics and a failed operation
// surfaces as an error, never as silently corrupted counters.
//
// One Injector owns one schedule (see ParseSpec for the textual grammar)
// and wraps every engine of a run; wrapped backends share the injector's
// counters but draw from per-engine pseudo-random streams keyed by
// (seed, wrap order), so the same spec and seed reproduce the same fault
// sequence. The wrapper deliberately hides the substrate's flat-arena
// fast path (forcing the device onto the interface path where faults can
// fire) and exposes Unwrap so copy-on-write affordances keep working.
package faultdisk
