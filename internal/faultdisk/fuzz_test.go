package faultdisk

import (
	"testing"
)

// FuzzParseSpec fuzzes the fault-schedule grammar: ParseSpec must never
// panic, and any spec it accepts must survive the documented round-trip
// — ParseSpec(spec.String()) reproduces spec exactly. The committed
// corpus seeds every clause of the grammar (including the degenerate
// latency forms that once broke the round-trip); go test runs the seeds
// as regular unit cases, go test -fuzz explores from them.
func FuzzParseSpec(f *testing.F) {
	for _, seed := range []string{
		"",
		"seed=7,read=0.02,short=0.005,latency=0.05:2ms",
		"seed=2026,read=0.03,short=0.01,latency=0.05:100us",
		"write=1,torn=0.5,pages=3-9",
		"grow=0.1,perm=0.001,panic=0.0001",
		"pages=5",
		"pages=5-",
		"latency=0:5ms",
		"latency=0.5:0s",
		"latency=1h",
		"seed=18446744073709551615,read=1e-300",
		"read=nope",
		"read=1.5",
		"read=-0.1",
		"pages=9-3",
		"latency=2:1ms",
		"bogus=1",
		"=,=",
		"seed=7,,read=0.5",
		" seed = 7 , read = 0.5 ",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		spec, err := ParseSpec(s)
		if err != nil {
			return // rejected input: the only contract is "no panic"
		}
		rendered := spec.String()
		if rendered == "" {
			// The spec parsed to the zero value (e.g. "seed=0"); the zero
			// spec renders empty and empty does not re-parse by design.
			if spec != (Spec{}) {
				t.Fatalf("ParseSpec(%q) = %+v renders empty but is not the zero spec", s, spec)
			}
			return
		}
		again, err := ParseSpec(rendered)
		if err != nil {
			t.Fatalf("ParseSpec(%q) ok, but its rendering %q does not re-parse: %v", s, rendered, err)
		}
		if again != spec {
			t.Fatalf("round-trip of %q changed the spec:\nfirst  %+v\nsecond %+v (via %q)", s, spec, again, rendered)
		}
	})
}
