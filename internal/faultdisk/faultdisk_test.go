package faultdisk

import (
	"bytes"
	"errors"
	"strings"
	"testing"
	"time"

	"complexobj/internal/disk"
)

func TestParseSpecRoundTrip(t *testing.T) {
	specs := []string{
		"seed=7,read=0.02",
		"read=0.1,write=0.05,grow=0.01,perm=0.001,short=0.02,torn=0.03,panic=0.004",
		"seed=42,latency=0.05:2ms",
		"seed=1,read=0.5,pages=3-9",
		"read=0.25,pages=4-",
	}
	for _, s := range specs {
		spec, err := ParseSpec(s)
		if err != nil {
			t.Fatalf("ParseSpec(%q): %v", s, err)
		}
		if !spec.Enabled() {
			t.Errorf("ParseSpec(%q).Enabled() = false", s)
		}
		again, err := ParseSpec(spec.String())
		if err != nil {
			t.Fatalf("ParseSpec(%q.String() = %q): %v", s, spec.String(), err)
		}
		if again != spec {
			t.Errorf("round trip of %q: got %+v, want %+v", s, again, spec)
		}
	}
}

func TestParseSpecErrors(t *testing.T) {
	for _, s := range []string{
		"",
		"   ",
		"read",           // not key=value
		"read=2",         // probability out of range
		"read=-0.1",      // negative probability
		"read=NaN",       // not a probability
		"bogus=0.1",      // unknown clause
		"seed=-1",        // negative seed
		"latency=2ms:x",  // duration first means the prob side fails
		"latency=0.5:-x", // bad duration
		"pages=5-3",      // inverted range
		"pages=-2",       // negative page
	} {
		if _, err := ParseSpec(s); err == nil {
			t.Errorf("ParseSpec(%q) accepted", s)
		}
	}
}

func TestParseSpecSinglePage(t *testing.T) {
	spec, err := ParseSpec("read=1,pages=5")
	if err != nil {
		t.Fatal(err)
	}
	if spec.PageLo != 5 || spec.PageHi != 5 {
		t.Fatalf("pages=5 parsed to [%d,%d], want [5,5]", spec.PageLo, spec.PageHi)
	}
	if spec.inRange(4) || !spec.inRange(5) || spec.inRange(6) {
		t.Error("pages=5 range does not isolate page 5")
	}
}

// memBackend is a minimal in-memory substrate for wrapper tests.
type memBackend struct {
	data []byte
}

func (m *memBackend) Len() int     { return len(m.data) }
func (m *memBackend) Flush() error { return nil }
func (m *memBackend) Close() error { return nil }
func (m *memBackend) Grow(n int) error {
	m.data = append(m.data, make([]byte, n-len(m.data))...)
	return nil
}
func (m *memBackend) ReadAt(p []byte, off int) error {
	copy(p, m.data[off:])
	return nil
}
func (m *memBackend) WriteAt(p []byte, off int) error {
	copy(m.data[off:], p)
	return nil
}

const testPage = 64

// drive runs a fixed deterministic op sequence against a wrapped backend
// and returns how many calls failed.
func drive(t *testing.T, b disk.Backend) int {
	t.Helper()
	failed := 0
	buf := make([]byte, testPage)
	for i := 0; i < 400; i++ {
		pg := i % 8
		var err error
		if i%3 == 0 {
			err = b.WriteAt(buf, pg*testPage)
		} else {
			err = b.ReadAt(buf, pg*testPage)
		}
		if err != nil {
			failed++
		}
	}
	return failed
}

func TestDeterministicSchedule(t *testing.T) {
	spec, err := ParseSpec("seed=99,read=0.1,write=0.1,perm=0.01,short=0.05,torn=0.05")
	if err != nil {
		t.Fatal(err)
	}
	run := func() (Counters, int) {
		in := New(spec)
		b := in.Wrap(&memBackend{data: make([]byte, 8*testPage)}, testPage)
		failed := drive(t, b)
		// A second wrapped backend draws from its own stream: same spec,
		// same wrap order, same schedule.
		b2 := in.Wrap(&memBackend{data: make([]byte, 8*testPage)}, testPage)
		failed += drive(t, b2)
		return in.Counters(), failed
	}
	c1, f1 := run()
	c2, f2 := run()
	if c1 != c2 || f1 != f2 {
		t.Errorf("same spec+seed diverged:\n%+v (%d failures)\n%+v (%d failures)", c1, f1, c2, f2)
	}
	if c1.Injected() == 0 {
		t.Error("schedule injected nothing; the determinism pin is vacuous")
	}
	if c1.Ops != 800 {
		t.Errorf("Ops = %d, want 800 (400 per wrapped backend)", c1.Ops)
	}

	other := spec
	other.Seed = 100
	in := New(other)
	b := in.Wrap(&memBackend{data: make([]byte, 8*testPage)}, testPage)
	drive(t, b)
	b2 := in.Wrap(&memBackend{data: make([]byte, 8*testPage)}, testPage)
	drive(t, b2)
	if in.Counters() == c1 {
		t.Error("different seeds produced identical counters (suspicious)")
	}
}

func TestTransientFaultIsTransient(t *testing.T) {
	in := New(Spec{Read: 1})
	b := in.Wrap(&memBackend{data: make([]byte, testPage)}, testPage)
	err := b.ReadAt(make([]byte, testPage), 0)
	if err == nil {
		t.Fatal("read=1 did not fail")
	}
	if !disk.IsTransient(err) {
		t.Errorf("transient read fault not transient: %v", err)
	}
	var f *Fault
	if !errors.As(err, &f) || f.Kind != Transient || f.Op != "read" || f.Page != 0 {
		t.Errorf("fault = %+v", f)
	}
}

func TestPermanentPoisoning(t *testing.T) {
	in := New(Spec{Perm: 1})
	b := in.Wrap(&memBackend{data: make([]byte, 2*testPage)}, testPage)
	err := b.ReadAt(make([]byte, testPage), 0)
	if err == nil {
		t.Fatal("perm=1 did not fail")
	}
	if disk.IsTransient(err) {
		t.Errorf("permanent fault reported transient: %v", err)
	}
	// The poisoned page keeps failing, and on the same page no new
	// poisoning is counted.
	if err := b.ReadAt(make([]byte, testPage), 0); err == nil {
		t.Fatal("poisoned page read succeeded")
	}
	if err := b.WriteAt(make([]byte, testPage), 0); err == nil {
		t.Fatal("poisoned page write succeeded")
	}
	c := in.Counters()
	if c.PoisonedPages != 1 {
		t.Errorf("PoisonedPages = %d, want 1", c.PoisonedPages)
	}
	if c.PermFaults != 3 {
		t.Errorf("PermFaults = %d, want 3", c.PermFaults)
	}
}

func TestShortReadFillsPrefixOnly(t *testing.T) {
	inner := &memBackend{data: bytes.Repeat([]byte{0xAB}, testPage)}
	in := New(Spec{Short: 1})
	b := in.Wrap(inner, testPage)
	p := bytes.Repeat([]byte{0xFF}, testPage)
	err := b.ReadAt(p, 0)
	if err == nil {
		t.Fatal("short=1 read succeeded")
	}
	var f *Fault
	if !errors.As(err, &f) || f.Kind != ShortRead {
		t.Fatalf("fault = %v", err)
	}
	if !bytes.Equal(p[:testPage/2], inner.data[:testPage/2]) {
		t.Error("short read did not fill the prefix")
	}
	if !bytes.Equal(p[testPage/2:], bytes.Repeat([]byte{0xFF}, testPage/2)) {
		t.Error("short read touched bytes beyond the prefix")
	}
}

func TestTornWriteStoresPrefixOnly(t *testing.T) {
	inner := &memBackend{data: bytes.Repeat([]byte{0xAB}, testPage)}
	in := New(Spec{Torn: 1})
	b := in.Wrap(inner, testPage)
	p := bytes.Repeat([]byte{0x11}, testPage)
	err := b.WriteAt(p, 0)
	if err == nil {
		t.Fatal("torn=1 write succeeded")
	}
	var f *Fault
	if !errors.As(err, &f) || f.Kind != TornWrite {
		t.Fatalf("fault = %v", err)
	}
	if !bytes.Equal(inner.data[:testPage/2], p[:testPage/2]) {
		t.Error("torn write did not store the prefix")
	}
	if !bytes.Equal(inner.data[testPage/2:], bytes.Repeat([]byte{0xAB}, testPage/2)) {
		t.Error("torn write stored bytes beyond the prefix")
	}
}

func TestGrowFault(t *testing.T) {
	in := New(Spec{Grow: 1})
	b := in.Wrap(&memBackend{}, testPage)
	if err := b.Grow(testPage); err == nil {
		t.Fatal("grow=1 succeeded")
	} else if !disk.IsTransient(err) {
		t.Errorf("grow fault not transient: %v", err)
	}
	if c := in.Counters(); c.GrowFaults != 1 {
		t.Errorf("GrowFaults = %d, want 1", c.GrowFaults)
	}
}

func TestPanicFault(t *testing.T) {
	in := New(Spec{Panic: 1})
	b := in.Wrap(&memBackend{data: make([]byte, testPage)}, testPage)
	defer func() {
		p := recover()
		if p == nil {
			t.Fatal("panic=1 did not panic")
		}
		f, ok := p.(*Fault)
		if !ok || f.Kind != PanicFault {
			t.Errorf("panicked with %v", p)
		}
		if c := in.Counters(); c.Panics != 1 {
			t.Errorf("Panics = %d, want 1", c.Panics)
		}
	}()
	b.ReadAt(make([]byte, testPage), 0)
}

func TestPageRangeConfinesInjection(t *testing.T) {
	in := New(Spec{Read: 1, PageLo: 3, PageHi: 3})
	b := in.Wrap(&memBackend{data: make([]byte, 8*testPage)}, testPage)
	p := make([]byte, testPage)
	for pg := 0; pg < 8; pg++ {
		err := b.ReadAt(p, pg*testPage)
		if pg == 3 && err == nil {
			t.Error("in-range page did not fault")
		}
		if pg != 3 && err != nil {
			t.Errorf("out-of-range page %d faulted: %v", pg, err)
		}
	}
	// Out-of-range ops never consult the schedule.
	if c := in.Counters(); c.Ops != 1 {
		t.Errorf("Ops = %d, want 1 (only the in-range access)", c.Ops)
	}
}

func TestLatencyInjection(t *testing.T) {
	in := New(Spec{LatencyProb: 1, Latency: time.Millisecond})
	var slept time.Duration
	in.sleep = func(d time.Duration) { slept += d }
	b := in.Wrap(&memBackend{data: make([]byte, testPage)}, testPage)
	for i := 0; i < 3; i++ {
		if err := b.ReadAt(make([]byte, testPage), 0); err != nil {
			t.Fatal(err)
		}
	}
	if slept != 3*time.Millisecond {
		t.Errorf("slept %v, want 3ms", slept)
	}
	if c := in.Counters(); c.Delays != 3 || c.Injected() != 0 {
		t.Errorf("counters = %+v: want 3 delays, 0 injected faults", c)
	}
}

func TestUnwrapExposesSubstrate(t *testing.T) {
	inner := &memBackend{data: make([]byte, testPage)}
	b := New(Spec{Read: 1}).Wrap(inner, testPage)
	u, ok := b.(interface{ Unwrap() disk.Backend })
	if !ok {
		t.Fatal("wrapped backend has no Unwrap")
	}
	if u.Unwrap() != disk.Backend(inner) {
		t.Error("Unwrap did not return the substrate")
	}
	if _, ok := b.(interface{ Bytes() []byte }); ok {
		t.Error("fault wrapper exposes a flat arena; faults would be bypassed")
	}
}

func TestFaultErrorText(t *testing.T) {
	e := (&Fault{Op: "read", Page: 7, Kind: ShortRead}).Error()
	for _, want := range []string{"injected", "short read", "read", "page 7"} {
		if !strings.Contains(e, want) {
			t.Errorf("fault error %q misses %q", e, want)
		}
	}
}

// TestStablePageSkipsFaultedRange pins the zero-copy/fault-injection
// contract: pages the schedule applies to are never handed out as stable
// slices (borrows would bypass ReadAt, where faults fire), pages outside
// the range delegate to the inner backend without consulting the
// schedule, and a wrapped backend without the capability shares nothing.
func TestStablePageSkipsFaultedRange(t *testing.T) {
	in := New(Spec{Read: 1, PageLo: 3, PageHi: 3})
	inner := disk.NewMemBackend()
	if err := inner.Grow(8 * testPage); err != nil {
		t.Fatal(err)
	}
	b := in.Wrap(inner, testPage).(disk.StablePager)

	if _, ok := b.StablePage(3*testPage, testPage); ok {
		t.Error("faulted page handed out as a stable slice")
	}
	s, ok := b.StablePage(2*testPage, testPage)
	if !ok {
		t.Fatal("out-of-range page not delegated to the stable inner backend")
	}
	ws, _ := inner.(disk.StablePager).StablePage(2*testPage, testPage)
	if &s[0] != &ws[0] {
		t.Error("delegated stable slice does not alias the inner arena")
	}
	// Neither call consulted the schedule: no ops, no draws — the fault
	// stream for later ReadAt calls is byte-for-byte what it would have
	// been without the stable probes.
	if c := in.Counters(); c.Ops != 0 {
		t.Errorf("StablePage moved the op counter: %+v", c)
	}
	// The faulted page still injects through the copying path.
	if err := b.(disk.Backend).ReadAt(make([]byte, testPage), 3*testPage); err == nil {
		t.Error("faulted page did not inject after stable probes")
	}

	// A non-stable inner backend shares nothing, faulted or not.
	plain := in.Wrap(&memBackend{data: make([]byte, 8*testPage)}, testPage).(disk.StablePager)
	if _, ok := plain.StablePage(0, testPage); ok {
		t.Error("wrapper invented a stable page over a non-stable inner backend")
	}
}
