package faultdisk

import (
	"fmt"
	"math"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"complexobj/internal/disk"
	"complexobj/internal/xrand"
)

// Kind classifies an injected fault.
type Kind int

const (
	// Transient is an I/O error that clears on retry (the schedule draws
	// independently per attempt).
	Transient Kind = iota
	// Permanent marks the page as poisoned: every later access to it
	// fails too, retrying never helps.
	Permanent
	// ShortRead fills only a prefix of the destination buffer before
	// failing — the bytes beyond the prefix are left untouched.
	ShortRead
	// TornWrite stores only a prefix of the source buffer before
	// failing — the page image ends up half old, half new.
	TornWrite
	// GrowFault fails an arena extension (transiently).
	GrowFault
	// PanicFault panics out of the backend call instead of returning an
	// error, exercising the caller's recovery path.
	PanicFault
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case Transient:
		return "transient"
	case Permanent:
		return "permanent"
	case ShortRead:
		return "short read"
	case TornWrite:
		return "torn write"
	case GrowFault:
		return "grow fault"
	case PanicFault:
		return "panic"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Fault is the error an injected fault surfaces as. It carries the
// operation, the page and the fault class, so tests and logs can tell an
// injected failure from a real one.
type Fault struct {
	// Op is the backend operation that faulted: "read", "write" or "grow".
	Op string
	// Page is the device page the fault hit (-1 when not page-addressed).
	Page int
	// Kind is the fault class.
	Kind Kind
}

// Error implements the error interface.
func (f *Fault) Error() string {
	if f.Page < 0 {
		return fmt.Sprintf("faultdisk: injected %s fault on %s", f.Kind, f.Op)
	}
	return fmt.Sprintf("faultdisk: injected %s fault on %s of page %d", f.Kind, f.Op, f.Page)
}

// Transient reports whether a retry of the failed operation may succeed
// (the schedule draws independently per attempt; only poisoned pages stay
// broken). disk.IsTransient keys its retry policy off this method.
func (f *Fault) Transient() bool { return f.Kind != Permanent }

// Spec is a parsed fault schedule: per-operation probabilities plus the
// seed that makes the schedule reproducible. The zero value injects
// nothing. Build specs with ParseSpec; see that function for the textual
// grammar.
type Spec struct {
	// Seed keys the pseudo-random schedule. Every wrapped backend draws
	// from its own stream derived from (Seed, wrap sequence number), so a
	// run that opens its engines in the same order sees the same faults.
	Seed uint64
	// Read, Write and Grow are the per-operation probabilities of a
	// transient error on reads, writes and arena growth.
	Read, Write, Grow float64
	// Perm is the per-operation probability of permanently poisoning the
	// touched page: the access fails and so does every later access to
	// that page through the same backend.
	Perm float64
	// Short is the per-read probability of a short read (a prefix of the
	// buffer filled, then an error).
	Short float64
	// Torn is the per-write probability of a torn write (a prefix of the
	// buffer stored, then an error).
	Torn float64
	// Panic is the per-operation probability of panicking out of the
	// backend call instead of returning an error.
	Panic float64
	// LatencyProb is the per-operation probability of sleeping Latency
	// before the operation proceeds.
	LatencyProb float64
	// Latency is the injected delay.
	Latency time.Duration
	// PageLo and PageHi restrict injection to operations touching pages
	// in [PageLo, PageHi] (inclusive). PageHi 0 means no upper bound, so
	// the zero values cover the whole arena.
	PageLo, PageHi int
}

// Enabled reports whether the spec can inject anything at all.
func (s Spec) Enabled() bool {
	return s.Read > 0 || s.Write > 0 || s.Grow > 0 || s.Perm > 0 ||
		s.Short > 0 || s.Torn > 0 || s.Panic > 0 ||
		(s.LatencyProb > 0 && s.Latency > 0)
}

// inRange reports whether injection applies to page pg.
func (s Spec) inRange(pg int) bool {
	hi := s.PageHi
	if hi <= 0 {
		hi = math.MaxInt
	}
	return pg >= s.PageLo && pg <= hi
}

// ParseSpec parses the textual fault-schedule grammar: a comma-separated
// list of key=value clauses,
//
//	seed=N        schedule seed (default 0)
//	read=P        transient read-error probability
//	write=P       transient write-error probability
//	grow=P        transient grow-error probability
//	perm=P        permanent page-poisoning probability
//	short=P       short-read probability
//	torn=P        torn-write probability
//	panic=P       backend-panic probability
//	latency=[P:]D injected delay D (Go duration) with probability P (default 1)
//	pages=A[-[B]] restrict injection to pages A..B (inclusive; open-ended
//	              when B is omitted)
//
// with every probability P in [0, 1]. Example:
//
//	seed=7,read=0.02,short=0.005,latency=0.05:2ms
func ParseSpec(s string) (Spec, error) {
	var out Spec
	if strings.TrimSpace(s) == "" {
		return Spec{}, fmt.Errorf("faultdisk: empty fault spec")
	}
	for _, clause := range strings.Split(s, ",") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		key, val, ok := strings.Cut(clause, "=")
		if !ok {
			return Spec{}, fmt.Errorf("faultdisk: clause %q is not key=value", clause)
		}
		key, val = strings.TrimSpace(key), strings.TrimSpace(val)
		switch key {
		case "seed":
			n, err := strconv.ParseUint(val, 10, 64)
			if err != nil {
				return Spec{}, fmt.Errorf("faultdisk: bad seed %q", val)
			}
			out.Seed = n
		case "read", "write", "grow", "perm", "short", "torn", "panic":
			p, err := parseProb(val)
			if err != nil {
				return Spec{}, fmt.Errorf("faultdisk: %s: %w", key, err)
			}
			switch key {
			case "read":
				out.Read = p
			case "write":
				out.Write = p
			case "grow":
				out.Grow = p
			case "perm":
				out.Perm = p
			case "short":
				out.Short = p
			case "torn":
				out.Torn = p
			case "panic":
				out.Panic = p
			}
		case "latency":
			prob, durs := 1.0, val
			if ps, ds, ok := strings.Cut(val, ":"); ok {
				p, err := parseProb(ps)
				if err != nil {
					return Spec{}, fmt.Errorf("faultdisk: latency: %w", err)
				}
				prob, durs = p, ds
			}
			d, err := time.ParseDuration(durs)
			if err != nil || d < 0 {
				return Spec{}, fmt.Errorf("faultdisk: bad latency duration %q", durs)
			}
			out.LatencyProb, out.Latency = prob, d
		case "pages":
			lo, hi, err := parsePageRange(val)
			if err != nil {
				return Spec{}, err
			}
			out.PageLo, out.PageHi = lo, hi
		default:
			return Spec{}, fmt.Errorf("faultdisk: unknown clause %q (want seed, read, write, grow, perm, short, torn, panic, latency or pages)", key)
		}
	}
	return out, nil
}

func parseProb(s string) (float64, error) {
	p, err := strconv.ParseFloat(s, 64)
	if err != nil || math.IsNaN(p) || p < 0 || p > 1 {
		return 0, fmt.Errorf("bad probability %q (want a number in [0,1])", s)
	}
	return p, nil
}

func parsePageRange(s string) (lo, hi int, err error) {
	los, his, dashed := strings.Cut(s, "-")
	lo, lerr := strconv.Atoi(strings.TrimSpace(los))
	if lerr != nil || lo < 0 {
		return 0, 0, fmt.Errorf("faultdisk: bad page range %q", s)
	}
	if !dashed || strings.TrimSpace(his) == "" {
		if !dashed {
			hi = lo // "pages=A": just page A
		}
		return lo, hi, nil // "pages=A-": open-ended (hi 0)
	}
	hi, herr := strconv.Atoi(strings.TrimSpace(his))
	if herr != nil || hi < lo {
		return 0, 0, fmt.Errorf("faultdisk: bad page range %q", s)
	}
	return lo, hi, nil
}

// String renders the spec back in ParseSpec grammar (empty for the zero
// spec). Round-trips: ParseSpec(s.String()) reproduces s.
func (s Spec) String() string {
	var parts []string
	add := func(k string, p float64) {
		if p > 0 {
			parts = append(parts, k+"="+strconv.FormatFloat(p, 'g', -1, 64))
		}
	}
	if s.Seed != 0 {
		parts = append(parts, "seed="+strconv.FormatUint(s.Seed, 10))
	}
	add("read", s.Read)
	add("write", s.Write)
	add("grow", s.Grow)
	add("perm", s.Perm)
	add("short", s.Short)
	add("torn", s.Torn)
	add("panic", s.Panic)
	// Degenerate-but-parseable latency clauses (probability or delay
	// zero) render too: the clause injects nothing, but dropping it would
	// break the round-trip for specs ParseSpec accepted.
	if s.LatencyProb > 0 || s.Latency > 0 {
		parts = append(parts, fmt.Sprintf("latency=%s:%s",
			strconv.FormatFloat(s.LatencyProb, 'g', -1, 64), s.Latency))
	}
	switch {
	case s.PageLo == 0 && s.PageHi == 0:
	case s.PageHi == 0:
		parts = append(parts, fmt.Sprintf("pages=%d-", s.PageLo))
	default:
		parts = append(parts, fmt.Sprintf("pages=%d-%d", s.PageLo, s.PageHi))
	}
	return strings.Join(parts, ",")
}

// Counters is a snapshot of the faults one Injector has inflicted across
// every backend wrapped from it. Counters only ever count injected
// misbehavior — they are invisible in the paper's I/O statistics, which
// increment solely on successful page transfers.
type Counters struct {
	// Ops counts backend operations that consulted the schedule.
	Ops int64
	// ReadFaults, WriteFaults and GrowFaults count injected transient
	// errors per operation class.
	ReadFaults, WriteFaults, GrowFaults int64
	// PermFaults counts operations failed on a poisoned page (including
	// the op that poisoned it); PoisonedPages counts the pages poisoned.
	PermFaults, PoisonedPages int64
	// ShortReads and TornWrites count injected partial transfers.
	ShortReads, TornWrites int64
	// Panics counts injected backend panics.
	Panics int64
	// Delays counts injected latency sleeps.
	Delays int64
}

// Injected returns the total number of injected faults (delays excluded:
// latency slows an operation but does not fail it).
func (c Counters) Injected() int64 {
	return c.ReadFaults + c.WriteFaults + c.GrowFaults + c.PermFaults +
		c.ShortReads + c.TornWrites + c.Panics
}

// Injector owns one fault schedule and wraps any number of backends in
// it. All wrapped backends share the injector's counters; each draws from
// its own pseudo-random stream keyed by (Spec.Seed, wrap order), so a run
// that opens its engines in a deterministic order injects a reproducible
// fault sequence. The counters are safe to read concurrently; each
// wrapped backend itself inherits the disk.Backend contract (serialized
// by its owning device).
type Injector struct {
	spec  Spec
	seq   atomic.Uint64
	sleep func(time.Duration) // test seam for injected latency

	ops, readFaults, writeFaults, growFaults atomic.Int64
	permFaults, poisonedPages                atomic.Int64
	shortReads, tornWrites                   atomic.Int64
	panics, delays                           atomic.Int64
}

// New builds an injector for the given schedule.
func New(spec Spec) *Injector {
	return &Injector{spec: spec, sleep: time.Sleep}
}

// Spec returns the injector's schedule.
func (in *Injector) Spec() Spec { return in.spec }

// Counters snapshots the injected-fault counters across all wrapped
// backends.
func (in *Injector) Counters() Counters {
	return Counters{
		Ops:           in.ops.Load(),
		ReadFaults:    in.readFaults.Load(),
		WriteFaults:   in.writeFaults.Load(),
		GrowFaults:    in.growFaults.Load(),
		PermFaults:    in.permFaults.Load(),
		PoisonedPages: in.poisonedPages.Load(),
		ShortReads:    in.shortReads.Load(),
		TornWrites:    in.tornWrites.Load(),
		Panics:        in.panics.Load(),
		Delays:        in.delays.Load(),
	}
}

// Wrap layers the injector's schedule over b, for a device with the given
// page size (0 means disk.DefaultPageSize). The wrapper deliberately does
// not expose a flat arena, so the owning device stays on the interface
// path where faults can fire; it does expose Unwrap, so device
// affordances that need the substrate (COW view recycling, overlay
// accounting) keep working.
func (in *Injector) Wrap(b disk.Backend, pageSize int) disk.Backend {
	if pageSize <= 0 {
		pageSize = disk.DefaultPageSize
	}
	seed := xrand.Mix(in.spec.Seed, in.seq.Add(1)-1)
	return &backend{in: in, inner: b, pageSize: pageSize, rng: xrand.New(seed)}
}

// backend is one wrapped disk.Backend drawing from its own stream.
type backend struct {
	in       *Injector
	inner    disk.Backend
	pageSize int
	rng      *xrand.Source
	poisoned map[int]bool
}

// Unwrap exposes the wrapped substrate (disk's COW helpers walk it).
func (b *backend) Unwrap() disk.Backend { return b.inner }

func (b *backend) Len() int     { return b.inner.Len() }
func (b *backend) Flush() error { return b.inner.Flush() }
func (b *backend) Close() error { return b.inner.Close() }

// StablePage implements disk.StablePager by delegation, but never for a
// page the fault schedule applies to: zero-copy borrows bypass ReadAt,
// which is where read faults, short reads, poisoning and latency live, so
// targeted pages must stay on the copying path to keep injecting. Pages
// outside the spec's range never consulted the schedule (no random draws)
// in ReadAt either, so sharing them leaves the fault stream and the op
// counters exactly as they were.
func (b *backend) StablePage(off, n int) ([]byte, bool) {
	if b.in.spec.Enabled() {
		if _, hit := b.target(off, n); hit {
			return nil, false
		}
	}
	sp, ok := b.inner.(disk.StablePager)
	if !ok {
		return nil, false
	}
	return sp.StablePage(off, n)
}

// target returns the first page of [off, off+n) the schedule applies to,
// or ok=false when the access is outside the spec's page range (then the
// operation passes through without consulting the schedule, keeping the
// random stream unperturbed).
func (b *backend) target(off, n int) (int, bool) {
	if n <= 0 {
		return 0, false
	}
	first, last := off/b.pageSize, (off+n-1)/b.pageSize
	for pg := first; pg <= last; pg++ {
		if b.in.spec.inRange(pg) {
			return pg, true
		}
	}
	return 0, false
}

// begin runs the schedule steps common to every op: count it, maybe
// sleep, maybe fail on (or poison) the page, maybe panic. A nil return
// means the operation should proceed to the per-op draws.
func (b *backend) begin(op string, pg int) error {
	spec := b.in.spec
	b.in.ops.Add(1)
	if spec.Latency > 0 && b.rng.Bool(spec.LatencyProb) {
		b.in.delays.Add(1)
		b.in.sleep(spec.Latency)
	}
	if b.poisoned[pg] {
		b.in.permFaults.Add(1)
		return &Fault{Op: op, Page: pg, Kind: Permanent}
	}
	if b.rng.Bool(spec.Perm) {
		if b.poisoned == nil {
			b.poisoned = make(map[int]bool)
		}
		b.poisoned[pg] = true
		b.in.poisonedPages.Add(1)
		b.in.permFaults.Add(1)
		return &Fault{Op: op, Page: pg, Kind: Permanent}
	}
	if b.rng.Bool(spec.Panic) {
		b.in.panics.Add(1)
		panic(&Fault{Op: op, Page: pg, Kind: PanicFault})
	}
	return nil
}

func (b *backend) ReadAt(p []byte, off int) error {
	pg, ok := b.target(off, len(p))
	if !ok {
		return b.inner.ReadAt(p, off)
	}
	if err := b.begin("read", pg); err != nil {
		return err
	}
	spec := b.in.spec
	if b.rng.Bool(spec.Read) {
		b.in.readFaults.Add(1)
		return &Fault{Op: "read", Page: pg, Kind: Transient}
	}
	if b.rng.Bool(spec.Short) {
		// Fill only a prefix, then fail: the caller's buffer ends half
		// stale, which is exactly what the device layer must treat as
		// garbage (the Backend contract says overwrite all of p).
		if err := b.inner.ReadAt(p[:len(p)/2], off); err != nil {
			return err
		}
		b.in.shortReads.Add(1)
		return &Fault{Op: "read", Page: pg, Kind: ShortRead}
	}
	return b.inner.ReadAt(p, off)
}

func (b *backend) WriteAt(p []byte, off int) error {
	pg, ok := b.target(off, len(p))
	if !ok {
		return b.inner.WriteAt(p, off)
	}
	if err := b.begin("write", pg); err != nil {
		return err
	}
	spec := b.in.spec
	if b.rng.Bool(spec.Write) {
		b.in.writeFaults.Add(1)
		return &Fault{Op: "write", Page: pg, Kind: Transient}
	}
	if b.rng.Bool(spec.Torn) {
		// Store only a prefix, then fail: the stored image is torn (half
		// old, half new bytes). Layers above must either not reuse the
		// page (buffer keeps the frame dirty) or rebuild it.
		if err := b.inner.WriteAt(p[:len(p)/2], off); err != nil {
			return err
		}
		b.in.tornWrites.Add(1)
		return &Fault{Op: "write", Page: pg, Kind: TornWrite}
	}
	return b.inner.WriteAt(p, off)
}

func (b *backend) Grow(n int) error {
	if b.in.spec.Grow > 0 {
		b.in.ops.Add(1)
		if b.rng.Bool(b.in.spec.Grow) {
			b.in.growFaults.Add(1)
			return &Fault{Op: "grow", Page: -1, Kind: GrowFault}
		}
	}
	return b.inner.Grow(n)
}
