package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"testing"

	"complexobj"
	"complexobj/cobench"
)

// benchServer builds a small served installation: snapshot every model,
// open a Server over it and return its handler. The scale is deliberately
// tiny — the benchmark measures the per-request serving overhead (view
// acquire, run, recycle, JSON), not the query work itself.
func benchServer(b *testing.B, n int) http.Handler {
	b.Helper()
	gen := cobench.DefaultConfig().WithN(n)
	stations, err := cobench.Generate(gen)
	if err != nil {
		b.Fatal(err)
	}
	var dbs []*complexobj.DB
	for _, k := range complexobj.AllModels() {
		db, err := complexobj.Open(k, complexobj.Options{BufferPages: 256})
		if err != nil {
			b.Fatal(err)
		}
		if err := db.Load(stations); err != nil {
			b.Fatal(err)
		}
		dbs = append(dbs, db)
	}
	path := filepath.Join(b.TempDir(), "serve.codb")
	if err := complexobj.WriteSnapshot(path, gen, dbs...); err != nil {
		b.Fatal(err)
	}
	for _, db := range dbs {
		db.Close()
	}
	srv, err := New(Config{Snapshot: path, BufferPages: 256, MaxViews: 2})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { srv.Close() })
	return srv.Handler()
}

// BenchmarkServeDrive measures one /run request end to end through the
// handler — admission, view acquire from the pool, query execution over
// the recycled copy-on-write view, JSON response — the unit of work the
// serving path repeats for every client request. Allocations here
// multiply by every request of a drive, so the allocs/op figure is
// regression-gated in CI (ci/bench-baseline.txt).
func BenchmarkServeDrive(b *testing.B) {
	h := benchServer(b, 40)
	w := cobench.Workload{Loops: 2, Samples: 3, Seed: 7}
	target := RunSpecFor(complexobj.DASDBSNSM, cobench.Q2b, w).Values().Encode()
	req := httptest.NewRequest(http.MethodGet, "/run?"+target, nil)
	// One warm-up request so pools, views and scratch reach steady state.
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		b.Fatalf("warm-up request: %d %s", rec.Code, rec.Body)
	}
	var rr RunResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &rr); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			b.Fatalf("request %d: %d", i, rec.Code)
		}
	}
}
