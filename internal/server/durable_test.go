package server

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"complexobj/cobench"
)

// durableRunURL is runURL plus the commit flag.
func durableRunURL(base, model, query string, w cobench.Workload) string {
	return runURL(base, model, query, w) + "&commit=1"
}

// TestServerDurableCommits drives the served commit path end to end:
// commit=1 runs acknowledge with monotonically increasing sequence and
// generation, their counters stay bit-identical to uncommitted runs of
// the same cell, a restart replays the log, and the sequence continues
// where the crashed process stopped.
func TestServerDurableCommits(t *testing.T) {
	path, _ := buildSnapshot(t, 40)
	walDir := t.TempDir()
	w := cobench.Workload{Loops: 8, Samples: 4, Seed: 1993}
	const model, query = "dsm", "3a"

	srv, err := New(Config{Snapshot: path, BufferPages: 128, MaxViews: 2, WALDir: walDir})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv.Handler())

	// Uncommitted baseline for the same cell: the counters a read-only
	// server would measure.
	var plain RunResponse
	getJSON(t, hs.Client(), runURL(hs.URL, model, query, w), &plain)
	if !plain.Supported {
		t.Fatalf("%s %s unsupported; pick another update cell", model, query)
	}
	if plain.Committed {
		t.Fatal("uncommitted run reports committed")
	}

	const commits = 3
	var lastGen uint64
	for i := 1; i <= commits; i++ {
		var got RunResponse
		getJSON(t, hs.Client(), durableRunURL(hs.URL, model, query, w), &got)
		if !got.Committed {
			t.Fatalf("commit run %d not acknowledged", i)
		}
		if got.CommitSeq != uint64(i) {
			t.Fatalf("commit run %d acknowledged seq %d", i, got.CommitSeq)
		}
		if got.CommitGen <= lastGen {
			t.Fatalf("commit run %d: generation %d did not advance past %d", i, got.CommitGen, lastGen)
		}
		lastGen = got.CommitGen
		// The paper counters must not know the difference.
		if got.Raw != plain.Raw || got.PerUnit != plain.PerUnit {
			t.Fatalf("committed counters diverge from uncommitted: %+v vs %+v", got.Raw, plain.Raw)
		}
	}

	var stats StatsResponse
	getJSON(t, hs.Client(), hs.URL+"/stats", &stats)
	for _, cell := range stats.Cells {
		if cell.Divergent {
			t.Fatalf("%s %s flagged divergent across committed and uncommitted runs", cell.Model, cell.Query)
		}
	}

	var info InfoResponse
	getJSON(t, hs.Client(), hs.URL+"/info", &info)
	if info.Durability == nil {
		t.Fatal("/info has no durability block on a -wal server")
	}
	if info.Durability.Commits != commits || info.Durability.LastSeq != commits {
		t.Fatalf("durability info %+v, want %d commits", info.Durability, commits)
	}
	if info.Durability.Syncs == 0 || info.Durability.AppendedBytes == 0 {
		t.Fatalf("durability info shows no WAL traffic: %+v", info.Durability)
	}
	for _, pi := range info.Models {
		if pi.Model == model && pi.Gen != lastGen {
			t.Fatalf("pool reports generation %d, last commit made %d", pi.Gen, lastGen)
		}
	}

	mresp, err := hs.Client().Get(hs.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	body := string(raw)
	for _, family := range []string{
		"complexobj_commits_total 3",
		"complexobj_wal_syncs_total",
		"complexobj_wal_appended_bytes_total",
		"complexobj_wal_last_seq 3",
		"complexobj_commit_seconds_count",
		"complexobj_base_generation",
	} {
		if !strings.Contains(body, family) {
			t.Errorf("/metrics lacks %q", family)
		}
	}

	hs.Close()
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart over the same directory: Close never checkpoints, so this
	// exercises the real recovery path — the log replays all commits and
	// the next one continues the sequence.
	srv2, err := New(Config{Snapshot: path, BufferPages: 128, MaxViews: 2, WALDir: walDir})
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()
	hs2 := httptest.NewServer(srv2.Handler())
	defer hs2.Close()

	var info2 InfoResponse
	getJSON(t, hs2.Client(), hs2.URL+"/info", &info2)
	if info2.Durability == nil || info2.Durability.Recovered != commits {
		t.Fatalf("restart recovered %+v, want %d replayed commits", info2.Durability, commits)
	}
	if info2.Durability.LastSeq != commits {
		t.Fatalf("restart lost the sequence: %+v", info2.Durability)
	}
	for _, pi := range info2.Models {
		if pi.Model == model && pi.Gen != uint64(commits) {
			t.Fatalf("restart serves generation %d, want %d", pi.Gen, commits)
		}
	}

	// Counters measured on the recovered generation still match.
	var after RunResponse
	getJSON(t, hs2.Client(), durableRunURL(hs2.URL, model, query, w), &after)
	if after.CommitSeq != commits+1 {
		t.Fatalf("post-restart commit got seq %d, want %d", after.CommitSeq, commits+1)
	}
	if after.Raw != plain.Raw {
		t.Fatalf("recovered counters diverge: %+v vs %+v", after.Raw, plain.Raw)
	}
}

// TestServerCommitValidation: commit=1 against a read-only server is a
// 400 (the client asked for durability the server cannot give), and a
// malformed commit value is rejected.
func TestServerCommitValidation(t *testing.T) {
	path, _ := buildSnapshot(t, 30)
	srv, err := New(Config{Snapshot: path, BufferPages: 128, MaxViews: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()
	w := cobench.Workload{Loops: 5, Samples: 3, Seed: 1}

	for _, bad := range []string{
		durableRunURL(hs.URL, "dsm", "3a", w),
		runURL(hs.URL, "dsm", "3a", w) + "&commit=yes",
	} {
		resp, err := hs.Client().Get(bad)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("GET %s: %s, want 400", bad, resp.Status)
		}
	}

	// commit=0 is explicitly fine everywhere.
	var got RunResponse
	getJSON(t, hs.Client(), runURL(hs.URL, "dsm", "3a", w)+"&commit=0", &got)
	if got.Committed {
		t.Error("commit=0 run reports committed")
	}
}
