package server

import (
	"testing"

	"complexobj"
	"complexobj/cobench"
)

// TestRunSpecRoundTrip pins the client/server wire contract: a spec built
// for a cell survives the URL encoding and resolves back to the exact
// model, query and workload the client asked for.
func TestRunSpecRoundTrip(t *testing.T) {
	w := cobench.Workload{Loops: 7, Samples: 120, Seed: 42}
	spec := RunSpecFor(complexobj.DASDBSNSM, cobench.Q2b, w)
	parsed := RunSpecFromValues(spec.Values())
	if parsed != spec {
		t.Fatalf("Values/FromValues round trip: %+v != %+v", parsed, spec)
	}
	kind, q, got, err := parsed.Resolve(cobench.Workload{})
	if err != nil {
		t.Fatal(err)
	}
	if kind != complexobj.DASDBSNSM || q != cobench.Q2b || got != w {
		t.Errorf("resolved (%v, %v, %+v), want (%v, %v, %+v)",
			kind, q, got, complexobj.DASDBSNSM, cobench.Q2b, w)
	}
}

// TestRunSpecDefaultsAndErrors pins default fall-through for omitted
// fields and the validation error strings the HTTP layer surfaces.
func TestRunSpecDefaultsAndErrors(t *testing.T) {
	defaults := cobench.Workload{Loops: 3, Samples: 50, Seed: 9}
	spec := RunSpec{Model: "dnsm", Query: "2b"}
	if enc := spec.Values().Encode(); enc != "model=dnsm&query=2b" {
		t.Errorf("empty workload fields leak into the wire form: %q", enc)
	}
	_, _, w, err := spec.Resolve(defaults)
	if err != nil {
		t.Fatal(err)
	}
	if w != defaults {
		t.Errorf("omitted fields resolved to %+v, want defaults %+v", w, defaults)
	}
	for _, tc := range []struct {
		spec RunSpec
		want string
	}{
		{RunSpec{Model: "dnsm", Query: "9z"}, `unknown query "9z"`},
		{RunSpec{Model: "dnsm", Query: "2b", Loops: "x"}, `bad loops "x"`},
		{RunSpec{Model: "dnsm", Query: "2b", Samples: "-1"}, `bad samples "-1"`},
		{RunSpec{Model: "dnsm", Query: "2b", Seed: "-1"}, `bad seed "-1"`},
	} {
		_, _, _, err := tc.spec.Resolve(defaults)
		if err == nil || err.Error() != tc.want {
			t.Errorf("%+v: error %v, want %q", tc.spec, err, tc.want)
		}
	}
}
