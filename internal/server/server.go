package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"complexobj"
	"complexobj/cobench"
	"complexobj/internal/shard"
)

// Config parameterizes a Server.
type Config struct {
	// Snapshot is the path of the cogen-built .codb snapshot to serve.
	Snapshot string
	// Models selects the storage models to serve (nil: every model the
	// snapshot holds). Each gets its own base and view pool.
	Models []complexobj.ModelKind
	// BufferPages is the buffer-pool capacity of every view (default
	// 1200, the paper's installation).
	BufferPages int
	// MaxViews bounds the views — and so the in-flight requests — per
	// model (default 8). Requests beyond the bound queue.
	MaxViews int
	// Workload supplies the request defaults for loops, samples and seed;
	// zero fields fall back to the benchmark defaults.
	Workload cobench.Workload
	// MaxInflight bounds the /run requests admitted concurrently across
	// every model — the deployment-level memory envelope on top of the
	// per-model view semaphores. 0 defaults to twice the summed view
	// bound (so admission queues before the pools do); negative means
	// unbounded. Requests beyond the bound wait until a slot frees or
	// their deadline expires, then are shed with 503 + Retry-After.
	MaxInflight int
	// RequestTimeout bounds one /run request end to end — waiting for
	// admission, acquiring a view and executing the query. 0 means no
	// deadline. Deadlined requests are shed with 503 + Retry-After and
	// report no counters at all (never a truncated measurement).
	RequestTimeout time.Duration
	// Faults arms the fault-injection schedule on every view engine
	// (nil: none). Injected faults never alter the counters of
	// successful responses; see complexobj.ParseFaultPlan.
	Faults *complexobj.FaultPlan
	// WALDir arms the durable commit path: the served bases open from
	// the directory's checkpoint sidecars (falling back to Snapshot on
	// first start), the write-ahead log replays on startup, and /run
	// requests carrying commit=1 fold their mutations into the served
	// base durably. Empty serves read-only classic behavior: mutations
	// are measured, then discarded with the view.
	WALDir string
	// CheckpointBytes compacts the write-ahead log whenever it exceeds
	// this size after a commit (0: never checkpoint automatically).
	// Only meaningful with WALDir.
	CheckpointBytes int64
	// ShardMap is the path of a shard-map file (cogen -split): the server
	// becomes one backend of a scale-out deployment, serving only the
	// models its shards own — from their per-shard .codb segments — and
	// rejecting out-of-shard models with 421 Misdirected Request (the
	// structured signal coshard re-routes on). Empty: classic unsharded
	// serving from Snapshot. Mutually exclusive with Models.
	ShardMap string
	// Shards selects the shard IDs this backend owns at startup (empty
	// with ShardMap set: every shard in the map). Ownership can change at
	// runtime through the /shards/acquire and /shards/release endpoints —
	// the rebalance protocol that makes a segment handoff between two
	// live backends a file open + mmap, never a copy or a restart.
	Shards []int
}

// Server serves benchmark queries from snapshot-backed shared bases. See
// the package comment for the endpoint list and the measurement contract.
type Server struct {
	cfg  Config
	info complexobj.SnapshotInfo

	// omu guards the ownership state below: which models this server
	// serves and out of which segment. Static for an unsharded server;
	// a sharded one mutates it through /shards/acquire and
	// /shards/release, so every reader (request routing, /info, /metrics)
	// takes the read lock. Held only for map access, never across a query.
	omu      sync.RWMutex
	models   []complexobj.ModelKind
	bases    map[complexobj.ModelKind]*complexobj.Base
	pools    map[complexobj.ModelKind]*complexobj.ViewPool
	segments map[complexobj.ModelKind]string // serving segment per model (info only)
	smap     *shard.Map                      // nil: unsharded
	owned    []int                           // sorted shard IDs currently owned

	start    time.Time
	requests atomic.Int64

	// admit is the server-wide admission semaphore (nil: unbounded).
	admit        chan struct{}
	maxInflight  int
	shedAdmit    atomic.Int64 // requests shed waiting for an admission slot
	shedDeadline atomic.Int64 // requests shed by their deadline after admission
	panics       atomic.Int64 // recovered /run panics (their views quarantined)

	mu         sync.Mutex
	agg        map[AggKey]*aggregate
	aggDropped int64

	// lat holds the per-(model, query) latency histograms behind /metrics
	// and the /info metrics block. Purely observational: recording is
	// atomic arithmetic beside the request, never an engine operation.
	lat *latencyCells

	// clog is the durable commit path (nil without -wal). commitMu
	// serializes commits per model across acquire→run→commit, the
	// serialization View.Commit requires; commitLat holds the per-model
	// commit-latency histograms (log append + fsync + promotion).
	clog      *complexobj.CommitLog
	commitMu  map[complexobj.ModelKind]*sync.Mutex
	commitLat *latencyCells
	commits   atomic.Int64
}

// New opens one shared base per served model from the snapshot (or, for
// a sharded backend, from its shards' segments) and builds the view
// pools. Close the server to release them.
func New(cfg Config) (*Server, error) {
	var (
		models   []complexobj.ModelKind
		segments = make(map[complexobj.ModelKind]string)
		smap     *shard.Map
		owned    []int
		info     complexobj.SnapshotInfo
		err      error
	)
	if cfg.ShardMap != "" {
		if len(cfg.Models) > 0 {
			return nil, errors.New("server: Models and ShardMap are mutually exclusive (the map decides ownership)")
		}
		smap, err = shard.Load(cfg.ShardMap)
		if err != nil {
			return nil, fmt.Errorf("server: %w", err)
		}
		ids := cfg.Shards
		if len(ids) == 0 {
			for _, sh := range smap.Shards {
				ids = append(ids, sh.ID)
			}
		}
		for _, id := range ids {
			sh, ok := smap.Shard(id)
			if !ok {
				return nil, fmt.Errorf("server: no shard %d in %s", id, cfg.ShardMap)
			}
			seg, err := segmentPath(cfg.ShardMap, cfg.Snapshot, sh)
			if err != nil {
				return nil, err
			}
			for _, name := range sh.Models {
				k, err := complexobj.ModelByName(name)
				if err != nil {
					return nil, fmt.Errorf("server: shard %d: %w", id, err)
				}
				if _, dup := segments[k]; dup {
					return nil, fmt.Errorf("server: model %s owned twice across -shards", k)
				}
				segments[k] = seg
				models = append(models, k)
			}
			owned = append(owned, id)
		}
		sort.Ints(owned)
		// The /info identity (generator config, page size) comes from any
		// reachable segment: Extract copies the header verbatim, so every
		// segment of a deployment agrees — including ones this backend
		// does not own, which covers a standby starting with zero shards.
		info, err = shardedInfo(cfg, smap, models, segments)
		if err != nil {
			return nil, err
		}
	} else {
		if cfg.Shards != nil {
			return nil, errors.New("server: Shards needs ShardMap")
		}
		info, err = complexobj.StatSnapshot(cfg.Snapshot)
		if err != nil {
			return nil, err
		}
		models = cfg.Models
		if len(models) == 0 {
			models = info.Models
		} else {
			// Deduplicate caller-supplied kinds: a duplicate would open a
			// second base+pool for the kind and leak the first (Close walks
			// the maps, which only keep the last).
			seen := make(map[complexobj.ModelKind]bool, len(models))
			dedup := models[:0:0]
			for _, k := range models {
				if !seen[k] {
					seen[k] = true
					dedup = append(dedup, k)
				}
			}
			models = dedup
		}
		for _, k := range models {
			segments[k] = cfg.Snapshot
		}
	}
	// Default field by field, so a caller setting only some workload
	// knobs (just a seed, just loops) keeps them and gets the benchmark
	// defaults for the rest. Seed is defaulted only when the whole
	// workload is unset: zero loops/samples are meaningless, but zero is
	// a perfectly good seed (`coserve -seed 0` must stay seed 0).
	def := cobench.DefaultWorkload()
	if cfg.Workload == (cobench.Workload{}) {
		cfg.Workload.Seed = def.Seed
	}
	if cfg.Workload.Loops == 0 {
		cfg.Workload.Loops = def.Loops
	}
	if cfg.Workload.Samples == 0 {
		cfg.Workload.Samples = def.Samples
	}
	if cfg.BufferPages == 0 {
		cfg.BufferPages = 1200 // the paper's installation; keeps /info truthful
	}
	s := &Server{
		cfg:      cfg,
		info:     info,
		models:   models,
		bases:    make(map[complexobj.ModelKind]*complexobj.Base, len(models)),
		pools:    make(map[complexobj.ModelKind]*complexobj.ViewPool, len(models)),
		segments: segments,
		smap:     smap,
		owned:    owned,
		start:    time.Now(),
		agg:      make(map[AggKey]*aggregate),
		lat:      newLatencyCells(),
	}
	// Admission envelope: by default twice the summed per-model view
	// bound, so the global gate queues (and sheds) before every pool is
	// saturated and the memory promise — MaxInflight × (buffer pool +
	// dirtied overlay) over the shared bases — holds whatever mix of
	// models the traffic hits. A sharded backend sizes the envelope over
	// the map's full model set, not its current subset: the bound must not
	// change when shards move, and a backend can end up owning everything.
	mv := cfg.MaxViews
	if mv <= 0 {
		mv = 8
	}
	envelope := len(models)
	if smap != nil {
		envelope = len(smap.Models())
	}
	s.maxInflight = cfg.MaxInflight
	if s.maxInflight == 0 {
		s.maxInflight = 2 * mv * envelope
	}
	if s.maxInflight > 0 {
		s.admit = make(chan struct{}, s.maxInflight)
	}
	if cfg.WALDir != "" {
		clog, err := complexobj.OpenCommitLog(cfg.WALDir)
		if err != nil {
			return nil, fmt.Errorf("server: %w", err)
		}
		s.clog = clog
		s.commitMu = make(map[complexobj.ModelKind]*sync.Mutex, len(models))
		s.commitLat = newLatencyCells()
	}
	for _, k := range models {
		if err := s.openModelLocked(k, segments[k]); err != nil {
			s.Close()
			return nil, err
		}
	}
	if s.clog != nil {
		// Replay whatever a previous process left in the log — after a
		// kill the served state is exactly the last acknowledged commit.
		if _, err := s.clog.Recover(); err != nil {
			s.Close()
			return nil, fmt.Errorf("server: %w", err)
		}
	}
	return s, nil
}

// Close releases the view pools and then the shared bases (dropping the
// snapshot file mappings).
func (s *Server) Close() error {
	s.omu.Lock()
	defer s.omu.Unlock()
	var first error
	for k, p := range s.pools {
		if err := p.Close(); err != nil && first == nil {
			first = err
		}
		delete(s.pools, k)
	}
	for k, b := range s.bases {
		if err := b.Close(); err != nil && first == nil {
			first = err
		}
		delete(s.bases, k)
	}
	if s.clog != nil {
		if err := s.clog.Close(); err != nil && first == nil {
			first = err
		}
		s.clog = nil
	}
	return first
}

// Info returns the snapshot metadata of the served database.
func (s *Server) Info() complexobj.SnapshotInfo { return s.info }

// TotalArenaBytes sums the shared arena sizes of every served base — the
// memory the bases cost if fully resident, paid once regardless of view
// count (the RSS smoke bounds the serving process against a multiple of
// this).
func (s *Server) TotalArenaBytes() int {
	s.omu.RLock()
	defer s.omu.RUnlock()
	n := 0
	for _, b := range s.bases {
		n += b.ArenaBytes()
	}
	return n
}

// WorkloadParams identifies the workload knobs of a request (and so of an
// aggregation cell).
type WorkloadParams struct {
	Loops   int    `json:"loops"`
	Samples int    `json:"samples"`
	Seed    uint64 `json:"seed"`
}

// Counters are raw I/O counters, JSON-shaped.
type Counters struct {
	PagesRead    int64 `json:"pagesRead"`
	PagesWritten int64 `json:"pagesWritten"`
	ReadCalls    int64 `json:"readCalls"`
	WriteCalls   int64 `json:"writeCalls"`
	BufferFixes  int64 `json:"bufferFixes"`
	BufferHits   int64 `json:"bufferHits"`
}

func toCounters(s complexobj.Stats) Counters {
	return Counters{
		PagesRead:    s.PagesRead,
		PagesWritten: s.PagesWritten,
		ReadCalls:    s.ReadCalls,
		WriteCalls:   s.WriteCalls,
		BufferFixes:  s.BufferFixes,
		BufferHits:   s.BufferHits,
	}
}

// Stats is the inverse of toCounters, kept adjacent so a counter added to
// one mapping cannot silently be dropped from the other (cobench's client
// mode reconstructs local results from served payloads through these).
func (c Counters) Stats() complexobj.Stats {
	return complexobj.Stats{
		PagesRead:    c.PagesRead,
		PagesWritten: c.PagesWritten,
		ReadCalls:    c.ReadCalls,
		WriteCalls:   c.WriteCalls,
		BufferFixes:  c.BufferFixes,
		BufferHits:   c.BufferHits,
	}
}

func (c *Counters) add(o Counters) {
	c.PagesRead += o.PagesRead
	c.PagesWritten += o.PagesWritten
	c.ReadCalls += o.ReadCalls
	c.WriteCalls += o.WriteCalls
	c.BufferFixes += o.BufferFixes
	c.BufferHits += o.BufferHits
}

// PerUnit are the normalized counters, the numbers of the paper's tables.
type PerUnit struct {
	Pages        float64 `json:"pages"`
	PagesRead    float64 `json:"pagesRead"`
	PagesWritten float64 `json:"pagesWritten"`
	Calls        float64 `json:"calls"`
	ReadCalls    float64 `json:"readCalls"`
	WriteCalls   float64 `json:"writeCalls"`
	Fixes        float64 `json:"fixes"`
	Hits         float64 `json:"hits"`
}

func toPerUnit(r complexobj.QueryResult) PerUnit {
	return PerUnit{
		Pages:        r.Pages,
		PagesRead:    r.PagesRead,
		PagesWritten: r.PagesWritten,
		Calls:        r.Calls,
		ReadCalls:    r.ReadCalls,
		WriteCalls:   r.WriteCalls,
		Fixes:        r.Fixes,
		Hits:         r.Hits,
	}
}

// Apply is the inverse of toPerUnit (see Counters.Stats for why the pair
// lives here): it writes the normalized counters back onto a result.
func (p PerUnit) Apply(r *complexobj.QueryResult) {
	r.Pages = p.Pages
	r.PagesRead = p.PagesRead
	r.PagesWritten = p.PagesWritten
	r.Calls = p.Calls
	r.ReadCalls = p.ReadCalls
	r.WriteCalls = p.WriteCalls
	r.Fixes = p.Fixes
	r.Hits = p.Hits
}

// RunResponse is the /run payload: one query execution with its private,
// per-request counters.
type RunResponse struct {
	Model     string         `json:"model"`
	Query     string         `json:"query"`
	Supported bool           `json:"supported"`
	Units     float64        `json:"units"`
	Workload  WorkloadParams `json:"workload"`
	Raw       Counters       `json:"raw"`
	PerUnit   PerUnit        `json:"perUnit"`
	ElapsedUS int64          `json:"elapsedMicros"`
	// Committed reports that the run's mutations were durably committed
	// (commit=1 against a -wal server); CommitSeq/CommitGen identify the
	// acknowledged commit, CommitUS its latency (log append + fsync +
	// promotion, outside the measured counters). Absent on read-only
	// runs.
	Committed bool   `json:"committed,omitempty"`
	CommitSeq uint64 `json:"commitSeq,omitempty"`
	CommitGen uint64 `json:"commitGen,omitempty"`
	CommitUS  int64  `json:"commitMicros,omitempty"`
}

// AggKey identifies one aggregation cell: everything that determines a
// deterministic measurement.
type AggKey struct {
	Model    string         `json:"model"`
	Query    string         `json:"query"`
	Workload WorkloadParams `json:"workload"`
}

type aggregate struct {
	count     int64
	supported bool
	rawSum    Counters
	perUnit   PerUnit // of the first run; later runs must match
	raw       Counters
	divergent bool
	elapsedUS int64
	maxUS     int64
}

// AggCell is one /stats row: every run of a deterministic cell must be
// identical, so PerUnit/Raw are per-run values and Divergent flags any
// run that broke the determinism contract.
type AggCell struct {
	AggKey
	Count     int64    `json:"count"`
	Supported bool     `json:"supported"`
	Raw       Counters `json:"raw"`
	RawSum    Counters `json:"rawSum"`
	PerUnit   PerUnit  `json:"perUnit"`
	Divergent bool     `json:"divergent"`
	MeanUS    int64    `json:"meanMicros"`
	MaxUS     int64    `json:"maxMicros"`
}

// StatsResponse is the /stats payload. DroppedCells counts runs whose
// distinct workload parameters arrived after the aggregate cap was
// reached (they were served, just not aggregated).
type StatsResponse struct {
	UptimeSeconds float64   `json:"uptimeSeconds"`
	Requests      int64     `json:"requests"`
	Cells         []AggCell `json:"cells"`
	DroppedCells  int64     `json:"droppedCells"`
}

// PoolInfo describes one served model in /info.
type PoolInfo struct {
	Model       string `json:"model"`
	ArenaBytes  int    `json:"arenaBytes"`
	NumPages    int    `json:"numPages"`
	Mapped      bool   `json:"mapped"`
	MaxViews    int    `json:"maxViews"`
	InUse       int    `json:"inUse"`
	Idle        int    `json:"idle"`
	Created     int64  `json:"created"`
	Reused      int64  `json:"reused"`
	Recycled    int64  `json:"recycled"`
	Rebuilt     int64  `json:"rebuilt"`
	Destroyed   int64  `json:"destroyed"`
	Quarantined int64  `json:"quarantined"`
	Stale       int64  `json:"stale"`
	// Gen is the base generation being served (0 until the first commit;
	// advances on every commit, including ones replayed at startup).
	Gen uint64 `json:"gen"`
}

// ResilienceInfo is the /info resilience block: the admission/deadline
// envelope and what degradation has cost so far.
type ResilienceInfo struct {
	MaxInflight      int    `json:"maxInflight"` // <= 0: unbounded
	InFlight         int    `json:"inFlight"`
	RequestTimeoutMS int64  `json:"requestTimeoutMillis"` // 0: no deadline
	ShedAdmission    int64  `json:"shedAdmission"`
	ShedDeadline     int64  `json:"shedDeadline"`
	Panics           int64  `json:"panics"`
	QuarantinedViews int64  `json:"quarantinedViews"`
	FaultSpec        string `json:"faultSpec,omitempty"`
	// Faults counts what the armed fault plan has injected (absent
	// without -faults). Injected faults never alter the counters of
	// successful responses.
	Faults *complexobj.FaultStats `json:"faults,omitempty"`
}

// DurabilityInfo is the /info durability block (present only with -wal):
// the write-ahead-log counters behind the durable commit path. Commits
// counts acknowledged commit batches — cobench's write-mode lost-update
// gate compares it against the client-side acknowledgment count.
type DurabilityInfo struct {
	WALDir        string `json:"walDir"`
	Commits       int64  `json:"commits"`
	Syncs         int64  `json:"syncs"`
	AppendedBytes int64  `json:"appendedBytes"`
	// PayloadBytes is the dirty-page image portion of AppendedBytes;
	// WriteAmplification is their ratio (0 until the first payload byte)
	// — the report axis cobench -report carries per write-mode run.
	PayloadBytes       int64   `json:"payloadBytes"`
	WriteAmplification float64 `json:"writeAmplification"`
	WALSizeBytes       int64   `json:"walSizeBytes"`
	LastSeq            uint64  `json:"lastSeq"`
	Checkpoints        int64   `json:"checkpoints"`
	Recovered          int64   `json:"recovered"`
	CheckpointBytes    int64   `json:"checkpointBytes"`
}

// InfoResponse is the /info payload.
type InfoResponse struct {
	Snapshot    string         `json:"snapshot"`
	Gen         cobench.Config `json:"gen"`
	PageSize    int            `json:"pageSize"`
	BufferPages int            `json:"bufferPages"`
	Workload    WorkloadParams `json:"defaultWorkload"`
	Models      []PoolInfo     `json:"models"`
	Resilience  ResilienceInfo `json:"resilience"`
	// Durability reports the write-ahead-log state (absent without -wal).
	Durability *DurabilityInfo `json:"durability,omitempty"`
	// Metrics is the structured twin of the /metrics endpoint: process
	// memory plus the per-cell latency split (queue wait vs service
	// time). Latency sits outside the paper's counter accounting.
	Metrics MetricsInfo `json:"metrics"`
	// Sharding reports the backend's place in a scale-out deployment
	// (absent without -shard-map): the map it loaded and the shards —
	// and so models — it currently owns.
	Sharding *ShardingInfo `json:"sharding,omitempty"`
}

// Handler returns the HTTP handler serving the package's endpoints.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/run", s.handleRun)
	mux.HandleFunc("/stats", s.handleStats)
	mux.HandleFunc("/info", s.handleInfo)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/shards/acquire", s.handleShardAcquire)
	mux.HandleFunc("/shards/release", s.handleShardRelease)
	return mux
}

// HealthResponse is the /healthz payload. Status is "ok" or "degraded";
// degraded means the admission gate is saturated (new requests queue or
// shed) — the process is still serving, so the HTTP status stays 200 and
// liveness probes keep passing.
type HealthResponse struct {
	Status      string `json:"status"`
	InFlight    int    `json:"inFlight"`
	MaxInflight int    `json:"maxInflight"`
	Shed        int64  `json:"shed"`
	Panics      int64  `json:"panics"`
	Quarantined int64  `json:"quarantinedViews"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	inFlight := 0
	if s.admit != nil {
		inFlight = len(s.admit)
	}
	status := "ok"
	if s.admit != nil && inFlight >= s.maxInflight {
		status = "degraded"
	}
	var quarantined int64
	s.omu.RLock()
	for _, p := range s.pools {
		quarantined += p.Stats().Quarantined
	}
	s.omu.RUnlock()
	writeJSON(w, HealthResponse{
		Status:      status,
		InFlight:    inFlight,
		MaxInflight: s.maxInflight,
		Shed:        s.shedAdmit.Load() + s.shedDeadline.Load(),
		Panics:      s.panics.Load(),
		Quarantined: quarantined,
	})
}

// unavailable reports graceful degradation: 503 with a Retry-After hint,
// the contract cobench's client-side retry loop keys off.
func (s *Server) unavailable(w http.ResponseWriter, format string, args ...any) {
	w.Header().Set("Retry-After", "1")
	httpError(w, http.StatusServiceUnavailable, format, args...)
}

func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	spec := RunSpecFromValues(r.URL.Query())
	kind, q, wl, err := spec.Resolve(s.cfg.Workload)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	commitReq, err := spec.CommitRequested()
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if commitReq && s.clog == nil {
		httpError(w, http.StatusBadRequest, "commit requested but the server has no write-ahead log (-wal)")
		return
	}
	// One read-locked snapshot of the ownership state: the pool, the
	// model's commit lock and — for the 421 payload — the shard view. The
	// pool pointer stays valid after the unlock (a released pool fails
	// AcquireContext with ErrPoolClosed, which the 503 below turns into a
	// router retry against the new owner); the lock is never held across
	// the query.
	s.omu.RLock()
	pool, ok := s.pools[kind]
	cmu := s.commitMu[kind]
	sharded := s.smap != nil
	var mapVer uint64
	var ownedIDs []int
	if !ok && sharded {
		mapVer = s.smap.Version
		ownedIDs = append([]int(nil), s.owned...)
	}
	s.omu.RUnlock()
	if !ok {
		if sharded {
			// 421 Misdirected Request: the model exists but lives on another
			// backend — the structured signal coshard re-resolves on, kept
			// distinct from 400 (bad request) and 503 (retry here later).
			misdirected(w, kind, mapVer, ownedIDs)
			return
		}
		httpError(w, http.StatusBadRequest, "model %s is not served", kind)
		return
	}

	ctx := r.Context()
	if s.cfg.RequestTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.cfg.RequestTimeout)
		defer cancel()
	}

	// Server-wide admission: the global envelope on top of the per-model
	// view semaphores. A full gate queues the request until a slot frees
	// or its deadline expires — then sheds it with 503 + Retry-After, the
	// signal a well-behaved client (cobench's retry loop) backs off on.
	// arrived anchors the queue-wait half of the latency split: admission
	// wait plus view-pool wait, everything spent before the query owns an
	// engine.
	arrived := time.Now()
	if s.admit != nil {
		select {
		case s.admit <- struct{}{}:
			defer func() { <-s.admit }()
		case <-ctx.Done():
			s.shedAdmit.Add(1)
			s.unavailable(w, "admission: %d requests in flight: %v", s.maxInflight, ctx.Err())
			return
		}
	}

	// A committing request holds the model's commit lock across
	// acquire→run→commit: View.Commit requires commits per base to be
	// serialized (two views of the same generation racing Promote would
	// fail one of them after its durable log append). Read-only requests
	// never touch the lock.
	if commitReq {
		cmu.Lock()
		defer cmu.Unlock()
	}

	start := time.Now()
	view, err := pool.AcquireContext(ctx)
	queueWait := time.Since(arrived)
	if err != nil {
		if ctx.Err() != nil {
			s.shedDeadline.Add(1)
			s.unavailable(w, "acquire view: %v", err)
			return
		}
		httpError(w, http.StatusServiceUnavailable, "acquire view: %v", err)
		return
	}
	// Run with panic containment: a panicking query path (an injected
	// backend panic, a latent bug) becomes a structured 500 and the view
	// is quarantined — closed for good, never recycled — so whatever the
	// panic left behind cannot leak into a later request. The engine's
	// deferred mutex unlocks make Close after an unwound panic safe.
	res, err := func() (res complexobj.QueryResult, err error) {
		defer func() {
			if p := recover(); p != nil {
				s.panics.Add(1)
				view.Quarantine()
				err = fmt.Errorf("panic: %v", p)
			}
		}()
		return view.RunContext(ctx, q, wl)
	}()
	if err != nil && complexobj.IsPermanentFault(err) {
		// The engine has a poisoned page; recycling would hand the next
		// request a view that can never read it. Retire it instead.
		view.Quarantine()
	}
	// Commit while the view is still alive, after a successful run. The
	// response is written only once the WAL fsync acknowledged the batch
	// — a client that saw committed:true finds the update after any
	// crash. A failed commit quarantines the view (its overlay may be
	// half-promoted state) and fails the request.
	var commit complexobj.CommitInfo
	var commitUS int64
	if err == nil && commitReq {
		cs := time.Now()
		commit, err = view.Commit(s.clog)
		commitUS = time.Since(cs).Microseconds()
		if err != nil {
			view.Quarantine()
			err = fmt.Errorf("commit: %w", err)
		} else {
			s.commits.Add(1)
			s.commitLat.observe(kind.String(), "commit", 0, time.Duration(commitUS)*time.Microsecond)
		}
	}
	if cerr := view.Close(); cerr != nil {
		// The request measured fine; a failed recycle only cost the pool
		// a view (visible as Destroyed in /info) — log it rather than
		// failing the response.
		log.Printf("server: %s %s: view recycle: %v", kind, q, cerr)
	}
	if err != nil {
		if errors.Is(err, context.DeadlineExceeded) {
			s.shedDeadline.Add(1)
			s.unavailable(w, "run %s %s: %v", kind, q, err)
			return
		}
		if errors.Is(err, context.Canceled) {
			// The client went away; nobody reads this response. Report it
			// as unavailable without counting it against the deadline
			// budget.
			s.unavailable(w, "run %s %s: %v", kind, q, err)
			return
		}
		httpError(w, http.StatusInternalServerError, "run %s %s: %v", kind, q, err)
		return
	}
	elapsed := time.Since(start).Microseconds()
	s.requests.Add(1)

	resp := RunResponse{
		Model:     res.Model.String(),
		Query:     res.Query.String(),
		Supported: res.Supported,
		Units:     res.Units,
		Workload:  WorkloadParams{Loops: wl.Loops, Samples: wl.Samples, Seed: wl.Seed},
		Raw:       toCounters(res.Raw),
		PerUnit:   toPerUnit(res),
		ElapsedUS: elapsed,
	}
	if commitReq {
		resp.Committed = true
		resp.CommitSeq = commit.Seq
		resp.CommitGen = commit.Gen
		resp.CommitUS = commitUS
		// Size-triggered compaction: bound the log — and the replay work
		// a crash inherits — without a background goroutine. Failure is
		// logged, not returned: the commit itself is already durable.
		if ran, cperr := s.clog.MaybeCheckpoint(s.cfg.CheckpointBytes); cperr != nil {
			log.Printf("server: checkpoint after %s commit: %v", kind, cperr)
		} else if ran {
			log.Printf("server: checkpointed write-ahead log (%s)", s.cfg.WALDir)
		}
	}
	s.record(resp)
	// Latency split, recorded on exactly the runs /stats aggregates:
	// queue wait measured here (admission + pool), service time stamped
	// by the workload runner around the query itself.
	s.lat.observe(resp.Model, resp.Query, queueWait, res.Elapsed)
	writeJSON(w, resp)
}

// maxAggCells bounds the aggregate map: the legitimate key space (model ×
// query × a handful of workloads) is tiny, but workload parameters come
// from the request, so without a cap a caller sweeping seeds would grow
// server memory without bound. Runs beyond the cap are still served and
// counted in Requests; only their per-cell aggregation is dropped
// (reported as DroppedCells in /stats).
const maxAggCells = 4096

// record folds one run into the aggregates and flags divergence: a
// deterministic cell must produce identical counters on every run.
func (s *Server) record(r RunResponse) {
	key := AggKey{Model: r.Model, Query: r.Query, Workload: r.Workload}
	s.mu.Lock()
	defer s.mu.Unlock()
	a, ok := s.agg[key]
	if !ok {
		if len(s.agg) >= maxAggCells {
			s.aggDropped++
			return
		}
		a = &aggregate{supported: r.Supported, perUnit: r.PerUnit, raw: r.Raw}
		s.agg[key] = a
	}
	a.count++
	a.rawSum.add(r.Raw)
	a.elapsedUS += r.ElapsedUS
	if r.ElapsedUS > a.maxUS {
		a.maxUS = r.ElapsedUS
	}
	if r.Raw != a.raw || r.PerUnit != a.perUnit || r.Supported != a.supported {
		a.divergent = true
	}
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	dropped := s.aggDropped
	cells := make([]AggCell, 0, len(s.agg))
	for key, a := range s.agg {
		cells = append(cells, AggCell{
			AggKey:    key,
			Count:     a.count,
			Supported: a.supported,
			Raw:       a.raw,
			RawSum:    a.rawSum,
			PerUnit:   a.perUnit,
			Divergent: a.divergent,
			MeanUS:    a.elapsedUS / a.count,
			MaxUS:     a.maxUS,
		})
	}
	s.mu.Unlock()
	sort.Slice(cells, func(i, j int) bool {
		a, b := cells[i], cells[j]
		if a.Model != b.Model {
			return a.Model < b.Model
		}
		if a.Query != b.Query {
			return a.Query < b.Query
		}
		// Same cell under different workload parameters: order those too,
		// so repeated /stats reads are byte-comparable.
		if a.Workload.Loops != b.Workload.Loops {
			return a.Workload.Loops < b.Workload.Loops
		}
		if a.Workload.Samples != b.Workload.Samples {
			return a.Workload.Samples < b.Workload.Samples
		}
		return a.Workload.Seed < b.Workload.Seed
	})
	writeJSON(w, StatsResponse{
		UptimeSeconds: time.Since(s.start).Seconds(),
		Requests:      s.requests.Load(),
		Cells:         cells,
		DroppedCells:  dropped,
	})
}

func (s *Server) handleInfo(w http.ResponseWriter, r *http.Request) {
	resp := InfoResponse{
		Snapshot:    s.cfg.Snapshot,
		Gen:         s.info.Gen,
		PageSize:    s.info.PageSize,
		BufferPages: s.cfg.BufferPages,
		Workload: WorkloadParams{
			Loops: s.cfg.Workload.Loops, Samples: s.cfg.Workload.Samples, Seed: s.cfg.Workload.Seed,
		},
	}
	var quarantined int64
	s.omu.RLock()
	resp.Sharding = s.shardingInfoLocked()
	for _, k := range s.models {
		base, pool := s.bases[k], s.pools[k]
		ps := pool.Stats()
		quarantined += ps.Quarantined
		resp.Models = append(resp.Models, PoolInfo{
			Model:       k.String(),
			ArenaBytes:  base.ArenaBytes(),
			NumPages:    base.NumPages(),
			Mapped:      base.Mapped(),
			MaxViews:    ps.MaxViews,
			InUse:       ps.InUse,
			Idle:        ps.Idle,
			Created:     ps.Created,
			Reused:      ps.Reused,
			Recycled:    ps.Recycled,
			Rebuilt:     ps.Rebuilt,
			Destroyed:   ps.Destroyed,
			Quarantined: ps.Quarantined,
			Stale:       ps.Stale,
			Gen:         base.Gen(),
		})
	}
	s.omu.RUnlock()
	if s.clog != nil {
		cs := s.clog.Stats()
		resp.Durability = &DurabilityInfo{
			WALDir:          cs.Dir,
			Commits:         cs.Commits,
			Syncs:           cs.Syncs,
			AppendedBytes:   cs.AppendedBytes,
			PayloadBytes:    cs.PayloadBytes,
			WALSizeBytes:    cs.SizeBytes,
			LastSeq:         cs.LastSeq,
			Checkpoints:     cs.Checkpoints,
			Recovered:       cs.Recovered,
			CheckpointBytes: s.cfg.CheckpointBytes,
		}
		if cs.PayloadBytes > 0 {
			resp.Durability.WriteAmplification = float64(cs.AppendedBytes) / float64(cs.PayloadBytes)
		}
	}
	resp.Resilience = ResilienceInfo{
		MaxInflight:      s.maxInflight,
		RequestTimeoutMS: s.cfg.RequestTimeout.Milliseconds(),
		ShedAdmission:    s.shedAdmit.Load(),
		ShedDeadline:     s.shedDeadline.Load(),
		Panics:           s.panics.Load(),
		QuarantinedViews: quarantined,
	}
	if s.admit != nil {
		resp.Resilience.InFlight = len(s.admit)
	}
	if s.cfg.Faults != nil {
		fs := s.cfg.Faults.Stats()
		resp.Resilience.FaultSpec = s.cfg.Faults.String()
		resp.Resilience.Faults = &fs
	}
	resp.Metrics = s.metricsInfo()
	writeJSON(w, resp)
}
