// Package server is the long-lived benchmark server: it loads one
// immutable complexobj.Base per storage model from a .codb snapshot at
// startup (mmap'ed read-only in place where the platform allows) and
// serves benchmark query requests over HTTP/JSON, each on a throwaway
// copy-on-write view acquired from a per-model ViewPool.
//
// The contract that makes the served numbers meaningful: a request runs
// exactly the batch execution path — the same workload.Runner over the
// same workload.View interface as DB.Run and the experiments suite — on a
// view with a private buffer pool, a private overlay and private
// counters, reset to the pristine base between requests. A served
// (model, query, workload) measurement is therefore bit-identical to the
// same cell of a serial batch table, no matter how many requests run
// concurrently (pinned by the tests in this package and by the CI smoke
// job that diffs cobench -serve-url output against the local run).
//
// Concurrency and memory are bounded by the view pools: at most MaxViews
// requests per model are in flight, the rest queue in Acquire; recycled
// views reuse their engines, so steady-state serving allocates almost
// nothing and the resident set stays near (shared bases) + MaxViews ×
// (buffer pool + dirtied overlay pages).
//
// Endpoints:
//
//	GET /run?model=dnsm&query=2b[&loops=300][&samples=40][&seed=1993]
//	    — execute one query, return its per-request counters.
//	GET /stats   — aggregate per-(model, query, workload) counters plus
//	               latency, with a divergence flag that must stay false
//	               (every repetition of a deterministic cell is identical).
//	GET /info    — snapshot metadata, per-model base and pool statistics.
//	GET /healthz — liveness.
//
// Command coserve wraps this package; cobench -serve-url is the matching
// load generator.
package server
