package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"net/url"
	"os"
	"runtime"
	"sync"
	"testing"

	"complexobj"
	"complexobj/cobench"
)

// TestServeDriveAllocMeasure is the BENCH measurement harness, not a
// gate: with COMPLEXOBJ_ALLOCS=1 it serves a paper-scale snapshot
// (N=1500) to 8 concurrent clients driving every (model, query) cell
// three times — the cobench -clients 8 drive, in process — and logs the
// total bytes allocated across the drive (runtime.MemStats.TotalAlloc
// delta). Client-side request/JSON allocation is included identically in
// every run of this harness, so deltas between binaries compare the
// serving path fairly.
func TestServeDriveAllocMeasure(t *testing.T) {
	if os.Getenv("COMPLEXOBJ_ALLOCS") == "" {
		t.Skip("set COMPLEXOBJ_ALLOCS=1 to run the allocation measurement drive")
	}
	path, _ := buildSnapshot(t, 1500)
	srv, err := New(Config{Snapshot: path, BufferPages: 1200, MaxViews: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()

	type cell struct{ model, query string }
	var cells []cell
	for rep := 0; rep < 3; rep++ {
		for _, k := range complexobj.AllModels() {
			for _, q := range cobench.AllQueries() {
				cells = append(cells, cell{k.String(), q.String()})
			}
		}
	}
	work := make(chan cell, len(cells))
	for _, c := range cells {
		work <- c
	}
	close(work)

	runtime.GC()
	var before runtime.MemStats
	runtime.ReadMemStats(&before)

	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			hc := hs.Client()
			for c := range work {
				params := url.Values{"model": {c.model}, "query": {c.query}}
				resp, err := hc.Get(hs.URL + "/run?" + params.Encode())
				if err != nil {
					errs <- err
					return
				}
				var rr RunResponse
				err = json.NewDecoder(resp.Body).Decode(&rr)
				resp.Body.Close()
				if err != nil {
					errs <- err
					return
				}
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("%s/%s: status %d", c.model, c.query, resp.StatusCode)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	runtime.GC()
	var after runtime.MemStats
	runtime.ReadMemStats(&after)
	alloc := after.TotalAlloc - before.TotalAlloc
	t.Logf("serve-drive-alloc requests=%d bytes=%d (%.2f GB)",
		len(cells), alloc, float64(alloc)/1e9)
}
