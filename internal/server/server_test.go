package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"net/url"
	"os"
	"path/filepath"
	"reflect"
	"runtime/debug"
	"strconv"
	"strings"
	"testing"

	"complexobj"
	"complexobj/cobench"
	"complexobj/internal/fanout"
)

// buildSnapshot writes a small .codb snapshot of every storage model.
func buildSnapshot(t *testing.T, n int) (string, cobench.Config) {
	t.Helper()
	gen := cobench.DefaultConfig().WithN(n)
	stations, err := cobench.Generate(gen)
	if err != nil {
		t.Fatal(err)
	}
	var dbs []*complexobj.DB
	for _, k := range complexobj.AllModels() {
		db, err := complexobj.Open(k, complexobj.Options{BufferPages: 256})
		if err != nil {
			t.Fatal(err)
		}
		if err := db.Load(stations); err != nil {
			t.Fatal(err)
		}
		dbs = append(dbs, db)
	}
	path := filepath.Join(t.TempDir(), "serve.codb")
	if err := complexobj.WriteSnapshot(path, gen, dbs...); err != nil {
		t.Fatal(err)
	}
	for _, db := range dbs {
		db.Close()
	}
	return path, gen
}

// batchBaseline measures every (model, query) cell the way the batch
// tools do: a fresh snapshot restore per model, serial DB.Run per query.
func batchBaseline(t *testing.T, path string, w cobench.Workload) map[AggKey]RunResponse {
	t.Helper()
	out := make(map[AggKey]RunResponse)
	for _, k := range complexobj.AllModels() {
		db, err := complexobj.OpenSnapshot(path, k, complexobj.Options{BufferPages: 256})
		if err != nil {
			t.Fatal(err)
		}
		for _, q := range cobench.AllQueries() {
			res, err := db.Run(q, w)
			if err != nil {
				t.Fatal(err)
			}
			key := AggKey{Model: k.String(), Query: q.String(),
				Workload: WorkloadParams{Loops: w.Loops, Samples: w.Samples, Seed: w.Seed}}
			out[key] = RunResponse{
				Model:     res.Model.String(),
				Query:     res.Query.String(),
				Supported: res.Supported,
				Units:     res.Units,
				Workload:  key.Workload,
				Raw:       toCounters(res.Raw),
				PerUnit:   toPerUnit(res),
			}
		}
		db.Close()
	}
	return out
}

// getJSON fetches and decodes one endpoint.
func getJSON(t *testing.T, hc *http.Client, url string, v any) {
	t.Helper()
	resp, err := hc.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %s", url, resp.Status)
	}
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
}

func runURL(base string, model, query string, w cobench.Workload) string {
	p := url.Values{}
	p.Set("model", model)
	p.Set("query", query)
	p.Set("loops", strconv.Itoa(w.Loops))
	p.Set("samples", strconv.Itoa(w.Samples))
	p.Set("seed", strconv.FormatUint(w.Seed, 10))
	return base + "/run?" + p.Encode()
}

// TestServerConcurrentClientsBitIdentical is the tentpole acceptance
// test: 8 concurrent clients hammer every (model, query) cell of a served
// snapshot, and every single response — each measured on its own pooled
// view with private counters — must be bit-identical to the serial batch
// run of the same cell. Run under -race in CI.
func TestServerConcurrentClientsBitIdentical(t *testing.T) {
	path, _ := buildSnapshot(t, 60)
	w := cobench.Workload{Loops: 15, Samples: 5, Seed: 1993}
	want := batchBaseline(t, path, w)

	srv, err := New(Config{Snapshot: path, BufferPages: 256, MaxViews: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()

	models := complexobj.AllModels()
	queries := cobench.AllQueries()
	const clients = 8
	err = fanout.Run(clients, clients, func(c int) error {
		hc := hs.Client()
		for i := range models {
			k := models[(i+c)%len(models)]
			for j := range queries {
				q := queries[(j+c)%len(queries)]
				var got RunResponse
				resp, err := hc.Get(runURL(hs.URL, k.String(), q.String(), w))
				if err != nil {
					return err
				}
				if resp.StatusCode != http.StatusOK {
					resp.Body.Close()
					return fmt.Errorf("client %d %s %s: %s", c, k, q, resp.Status)
				}
				if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
					resp.Body.Close()
					return err
				}
				resp.Body.Close()
				key := AggKey{Model: k.String(), Query: q.String(), Workload: got.Workload}
				exp, ok := want[key]
				if !ok {
					return fmt.Errorf("client %d: no baseline for %+v", c, key)
				}
				got.ElapsedUS = 0 // timing is the only nondeterministic field
				if !reflect.DeepEqual(got, exp) {
					return fmt.Errorf("client %d: served %s %s = %+v, want %+v", c, k, q, got, exp)
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}

	// The aggregates must agree: every cell measured clients times, no
	// divergence, per-run counters equal to the batch baseline.
	var stats StatsResponse
	getJSON(t, hs.Client(), hs.URL+"/stats", &stats)
	if len(stats.Cells) != len(want) {
		t.Fatalf("/stats has %d cells, want %d", len(stats.Cells), len(want))
	}
	for _, cell := range stats.Cells {
		if cell.Count != clients {
			t.Errorf("%s %s: count %d, want %d", cell.Model, cell.Query, cell.Count, clients)
		}
		if cell.Divergent {
			t.Errorf("%s %s: flagged divergent — concurrent runs were not identical", cell.Model, cell.Query)
		}
		exp := want[cell.AggKey]
		if cell.Raw != exp.Raw || cell.PerUnit != exp.PerUnit || cell.Supported != exp.Supported {
			t.Errorf("%s %s: aggregate diverges from batch baseline", cell.Model, cell.Query)
		}
		wantSum := exp.Raw
		for i := 1; i < clients; i++ {
			wantSum.add(exp.Raw)
		}
		if cell.RawSum != wantSum {
			t.Errorf("%s %s: raw sum %+v, want %d x %+v", cell.Model, cell.Query, cell.RawSum, clients, exp.Raw)
		}
	}

	// Pool accounting: views were bounded and recycled, the bases never
	// copied.
	var info InfoResponse
	getJSON(t, hs.Client(), hs.URL+"/info", &info)
	if len(info.Models) != len(models) {
		t.Fatalf("/info lists %d models, want %d", len(info.Models), len(models))
	}
	for _, pi := range info.Models {
		if pi.Created > int64(pi.MaxViews) {
			t.Errorf("%s: %d views created, bound is %d", pi.Model, pi.Created, pi.MaxViews)
		}
		if pi.Reused == 0 {
			t.Errorf("%s: views never reused", pi.Model)
		}
		if pi.InUse != 0 {
			t.Errorf("%s: %d views still in use after the drive", pi.Model, pi.InUse)
		}
	}
}

// TestServerRequestValidation pins the error surface: bad model/query/
// workload parameters are 400s, unsupported cells are 200s with
// supported=false (the batch tables print "-"), health answers.
func TestServerRequestValidation(t *testing.T) {
	path, _ := buildSnapshot(t, 30)
	srv, err := New(Config{Snapshot: path, BufferPages: 128, MaxViews: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()
	w := cobench.Workload{Loops: 5, Samples: 3, Seed: 1}

	for _, bad := range []string{
		"/run?model=nope&query=2b",
		"/run?model=dnsm&query=9z",
		"/run?model=dnsm&query=2b&loops=x",
		"/run?model=dnsm&query=2b&seed=-1",
	} {
		resp, err := hs.Client().Get(hs.URL + bad)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("GET %s: %s, want 400", bad, resp.Status)
		}
	}

	var got RunResponse
	getJSON(t, hs.Client(), runURL(hs.URL, "NSM", "1a", w), &got)
	if got.Supported {
		t.Error("NSM 1a served as supported; the paper says it is not relevant")
	}

	resp, err := hs.Client().Get(hs.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("/healthz: %s", resp.Status)
	}
}

// TestServerPeakRSS is the gated memory smoke for the acceptance bar:
// serving paper-scale concurrent traffic from mmap'ed snapshot bases must
// keep the process peak RSS within 2x the shared arenas' full size. Gated
// behind COMPLEXOBJ_RSS (and a pre-built COMPLEXOBJ_SNAPSHOT, so the
// load-phase RSS of building the snapshot never pollutes the measurement;
// CI builds it with cogen in a separate process).
func TestServerPeakRSS(t *testing.T) {
	if os.Getenv("COMPLEXOBJ_RSS") == "" {
		t.Skip("set COMPLEXOBJ_RSS=1 to measure peak RSS")
	}
	path := os.Getenv("COMPLEXOBJ_SNAPSHOT")
	if path == "" {
		t.Skip("set COMPLEXOBJ_SNAPSHOT to a cogen-built paper-scale snapshot")
	}
	// Run the way a memory-bounded deployment would. The shared bases are
	// mmap'ed and paid once; what RSS adds on top is (a) the retained per
	// view state — buffer pool and dirtied overlay pages, bounded by
	// admission control (MaxViews=1: one in-flight request per model,
	// i.e. five concurrent streams; the 8 driving clients queue on the
	// pools) — and (b) the GC's transient headroom for the whole-object
	// decode churn, bounded by a tighter GOGC plus a GOMEMLIMIT-style cap
	// on Go-owned memory. The concurrency acceptance (8 clients, larger
	// pools, bit-identical counters) lives in
	// TestServerConcurrentClientsBitIdentical; this test pins the memory
	// promise.
	defer debug.SetGCPercent(debug.SetGCPercent(25))
	srv, err := New(Config{Snapshot: path, BufferPages: 300, MaxViews: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	arena := srv.TotalArenaBytes()
	goLimit := int64(arena) - 16<<20
	if goLimit < 24<<20 {
		goLimit = 24 << 20
	}
	defer debug.SetMemoryLimit(debug.SetMemoryLimit(goLimit))
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()

	w := cobench.Workload{Loops: 40, Samples: 10, Seed: 1993}
	models := complexobj.AllModels()
	queries := cobench.AllQueries()
	err = fanout.Run(8, 8, func(c int) error {
		hc := hs.Client()
		for i := range models {
			k := models[(i+c)%len(models)]
			for _, q := range queries {
				resp, err := hc.Get(runURL(hs.URL, k.String(), q.String(), w))
				if err != nil {
					return err
				}
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					return fmt.Errorf("%s %s: %s", k, q, resp.Status)
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}

	hwmKB, err := peakRSSKB()
	if err != nil {
		t.Skipf("peak RSS unavailable: %v", err)
	}
	limitKB := 2 * arena / 1024
	fmt.Printf("server-peak-rss-kb kb=%d arena-kb=%d limit-kb=%d\n", hwmKB, arena/1024, limitKB)
	if hwmKB > limitKB {
		t.Errorf("server peak RSS %d KiB exceeds 2x shared arenas (%d KiB)", hwmKB, limitKB)
	}
}

// peakRSSKB reads VmHWM (the process peak resident set) in KiB.
func peakRSSKB() (int, error) {
	data, err := os.ReadFile("/proc/self/status")
	if err != nil {
		return 0, err
	}
	for _, line := range strings.Split(string(data), "\n") {
		if rest, ok := strings.CutPrefix(line, "VmHWM:"); ok {
			return strconv.Atoi(strings.TrimSpace(strings.TrimSuffix(rest, "kB")))
		}
	}
	return 0, fmt.Errorf("no VmHWM in /proc/self/status")
}
