package server

import (
	"fmt"
	"net/url"
	"strconv"

	"complexobj"
	"complexobj/cobench"
)

// RunSpec is the wire form of one /run request: the query-string
// parameters the server validates and cobench's served client sends.
// Fields hold the literal parameter strings; an empty field means "use
// the server default" on the optional workload knobs. Keeping one type on
// both sides of the wire guarantees the client can only ask for what the
// server parses, and vice versa.
type RunSpec struct {
	Model   string
	Query   string
	Loops   string
	Samples string
	Seed    string
	// Commit requests that the run's mutations be committed into the
	// served base ("1"/"true"; empty or "0"/"false" discards them, the
	// classic measurement behavior). Commit is not part of the
	// aggregation key: a committed run measures bit-identically to a
	// discarded one (the update stamps are fixed-size, the commit happens
	// after measurement), so both land in the same /stats cell.
	Commit string
}

// RunSpecFor builds the fully-specified wire form of one measurement
// cell, the request shape cobench's -serve-url client issues.
func RunSpecFor(k complexobj.ModelKind, q cobench.Query, w cobench.Workload) RunSpec {
	return RunSpec{
		Model:   k.String(),
		Query:   q.String(),
		Loops:   strconv.Itoa(w.Loops),
		Samples: strconv.Itoa(w.Samples),
		Seed:    strconv.FormatUint(w.Seed, 10),
	}
}

// RunSpecFromValues reads the spec off a request's query parameters.
func RunSpecFromValues(v url.Values) RunSpec {
	return RunSpec{
		Model:   v.Get("model"),
		Query:   v.Get("query"),
		Loops:   v.Get("loops"),
		Samples: v.Get("samples"),
		Seed:    v.Get("seed"),
		Commit:  v.Get("commit"),
	}
}

// Values renders the spec as URL query parameters; empty fields are
// omitted so defaults stay the server's business.
func (s RunSpec) Values() url.Values {
	v := url.Values{}
	set := func(key, val string) {
		if val != "" {
			v.Set(key, val)
		}
	}
	set("model", s.Model)
	set("query", s.Query)
	set("loops", s.Loops)
	set("samples", s.Samples)
	set("seed", s.Seed)
	set("commit", s.Commit)
	return v
}

// CommitRequested parses the commit flag (empty means false).
func (s RunSpec) CommitRequested() (bool, error) {
	switch s.Commit {
	case "", "0", "false":
		return false, nil
	case "1", "true":
		return true, nil
	default:
		return false, fmt.Errorf("bad commit %q", s.Commit)
	}
}

// Resolve validates the spec over the given workload defaults: the model
// and query must name existing ones, the workload fields must parse as
// non-negative numbers when present.
func (s RunSpec) Resolve(defaults cobench.Workload) (complexobj.ModelKind, cobench.Query, cobench.Workload, error) {
	w := defaults
	kind, err := complexobj.ModelByName(s.Model)
	if err != nil {
		return kind, 0, w, err
	}
	q, ok := cobench.QueryByName(s.Query)
	if !ok {
		return kind, q, w, fmt.Errorf("unknown query %q", s.Query)
	}
	if s.Loops != "" {
		n, err := strconv.Atoi(s.Loops)
		if err != nil || n < 0 {
			return kind, q, w, fmt.Errorf("bad loops %q", s.Loops)
		}
		w.Loops = n
	}
	if s.Samples != "" {
		n, err := strconv.Atoi(s.Samples)
		if err != nil || n < 0 {
			return kind, q, w, fmt.Errorf("bad samples %q", s.Samples)
		}
		w.Samples = n
	}
	if s.Seed != "" {
		n, err := strconv.ParseUint(s.Seed, 10, 64)
		if err != nil {
			return kind, q, w, fmt.Errorf("bad seed %q", s.Seed)
		}
		w.Seed = n
	}
	return kind, q, w, nil
}
