package server

import (
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"complexobj/internal/metrics"
)

// The observability layer sits strictly beside the paper's accounting:
// latency histograms and scrape handlers read private atomics, pool
// counters and the aggregate map — never an engine, a buffer pool or a
// device — so scraping /metrics cannot move a single /stats counter
// (TestMetricsStatsParity pins the cells byte-identical under a
// concurrent scraping load).

// cellKey identifies one (model, query) latency cell. Latency aggregates
// deliberately key coarser than /stats cells (which add the workload):
// the histogram answers "how fast is DSM 2b", whatever workload variants
// traffic mixes in.
type cellKey struct{ model, query string }

// cellMetrics holds the per-cell latency split: queue is the wait for
// admission plus the view-pool acquire, service the query execution
// inside the workload runner. Requests counts exactly the runs /stats
// aggregates (successful responses), which is what makes the /metrics ↔
// /stats parity checkable.
type cellMetrics struct {
	requests atomic.Int64
	queue    *metrics.Histogram
	service  *metrics.Histogram
}

// latencyCells is the lazily-populated (model, query) → histogram table.
type latencyCells struct {
	mu    sync.RWMutex
	cells map[cellKey]*cellMetrics
}

func newLatencyCells() *latencyCells {
	return &latencyCells{cells: make(map[cellKey]*cellMetrics)}
}

// get returns the cell, creating it on first use (double-checked so the
// steady state is one RLock).
func (l *latencyCells) get(model, query string) *cellMetrics {
	key := cellKey{model, query}
	l.mu.RLock()
	c := l.cells[key]
	l.mu.RUnlock()
	if c != nil {
		return c
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if c = l.cells[key]; c == nil {
		c = &cellMetrics{queue: metrics.NewHistogram(), service: metrics.NewHistogram()}
		l.cells[key] = c
	}
	return c
}

// observe folds one successful request into its cell.
func (l *latencyCells) observe(model, query string, queueWait, service time.Duration) {
	c := l.get(model, query)
	c.requests.Add(1)
	c.queue.Observe(queueWait)
	c.service.Observe(service)
}

// sortedKeys returns the populated cell keys in (model, query) order, so
// both /metrics and /info render deterministically.
func (l *latencyCells) sortedKeys() []cellKey {
	l.mu.RLock()
	keys := make([]cellKey, 0, len(l.cells))
	for k := range l.cells {
		keys = append(keys, k)
	}
	l.mu.RUnlock()
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].model != keys[j].model {
			return keys[i].model < keys[j].model
		}
		return keys[i].query < keys[j].query
	})
	return keys
}

// CellLatency is the /info latency block of one (model, query) cell.
type CellLatency struct {
	Model    string          `json:"model"`
	Query    string          `json:"query"`
	Requests int64           `json:"requests"`
	Queue    metrics.Summary `json:"queueWait"`
	Service  metrics.Summary `json:"service"`
}

// MetricsInfo is the structured twin of the /metrics endpoint inside
// /info: process memory plus the per-cell latency summaries. The
// Prometheus text rendering and this block read the same histograms.
type MetricsInfo struct {
	Process metrics.ProcStats `json:"process"`
	Cells   []CellLatency     `json:"cells"`
}

// metricsInfo builds the /info latency block.
func (s *Server) metricsInfo() MetricsInfo {
	info := MetricsInfo{Process: metrics.ReadProcStats()}
	for _, key := range s.lat.sortedKeys() {
		c := s.lat.get(key.model, key.query)
		info.Cells = append(info.Cells, CellLatency{
			Model:    key.model,
			Query:    key.query,
			Requests: c.requests.Load(),
			Queue:    metrics.Summarize(c.queue.Snapshot()),
			Service:  metrics.Summarize(c.service.Snapshot()),
		})
	}
	return info
}

// promWriter accumulates Prometheus text exposition, emitting each
// family's TYPE header once.
type promWriter struct {
	w     http.ResponseWriter
	typed map[string]bool
}

func (p *promWriter) family(name, kind string) {
	if !p.typed[name] {
		p.typed[name] = true
		fmt.Fprintf(p.w, "# TYPE %s %s\n", name, kind)
	}
}

func (p *promWriter) num(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// counter/gauge emit one sample; labels come pre-rendered (`model="DSM"`)
// or empty.
func (p *promWriter) sample(name, kind, labels string, v float64) {
	p.family(name, kind)
	if labels == "" {
		fmt.Fprintf(p.w, "%s %s\n", name, p.num(v))
	} else {
		fmt.Fprintf(p.w, "%s{%s} %s\n", name, labels, p.num(v))
	}
}

// summary renders one histogram snapshot as a Prometheus summary in
// seconds: the four serving quantiles plus _sum and _count.
func (p *promWriter) summary(name, labels string, s *metrics.Snapshot) {
	p.family(name, "summary")
	sep := ""
	if labels != "" {
		sep = ","
	}
	for _, q := range []struct {
		label string
		q     float64
	}{{"0.5", 0.5}, {"0.9", 0.9}, {"0.99", 0.99}, {"0.999", 0.999}} {
		fmt.Fprintf(p.w, "%s{%s%squantile=\"%s\"} %s\n",
			name, labels, sep, q.label, p.num(float64(s.Quantile(q.q))/1e9))
	}
	if labels == "" {
		fmt.Fprintf(p.w, "%s_sum %s\n", name, p.num(float64(s.Sum)/1e9))
		fmt.Fprintf(p.w, "%s_count %d\n", name, s.Count)
	} else {
		fmt.Fprintf(p.w, "%s_sum{%s} %s\n", name, labels, p.num(float64(s.Sum)/1e9))
		fmt.Fprintf(p.w, "%s_count{%s} %d\n", name, labels, s.Count)
	}
}

// handleMetrics serves the Prometheus text exposition. Everything it
// reads is observability state (atomics, pool mutexes, the aggregate
// mutex) — no engine, device or buffer state — so a scrape at any point
// of a load leaves every paper counter untouched.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	p := &promWriter{w: w, typed: make(map[string]bool)}

	p.sample("complexobj_uptime_seconds", "gauge", "", time.Since(s.start).Seconds())
	p.sample("complexobj_requests_total", "counter", "", float64(s.requests.Load()))
	p.sample("complexobj_requests_shed_total", "counter", `reason="admission"`, float64(s.shedAdmit.Load()))
	p.sample("complexobj_requests_shed_total", "counter", `reason="deadline"`, float64(s.shedDeadline.Load()))
	p.sample("complexobj_panics_total", "counter", "", float64(s.panics.Load()))

	inFlight := 0
	if s.admit != nil {
		inFlight = len(s.admit)
	}
	p.sample("complexobj_inflight_requests", "gauge", "", float64(inFlight))
	p.sample("complexobj_max_inflight_requests", "gauge", "", float64(s.maxInflight))

	s.mu.Lock()
	aggCells, aggDropped := len(s.agg), s.aggDropped
	s.mu.Unlock()
	p.sample("complexobj_stats_cells", "gauge", "", float64(aggCells))
	p.sample("complexobj_stats_dropped_cells_total", "counter", "", float64(aggDropped))

	// Per-model view pools: occupancy gauges plus the lifetime counters
	// (borrows = acquisitions served = created + reused).
	for _, k := range s.models {
		ps := s.pools[k].Stats()
		labels := fmt.Sprintf("model=%q", k.String())
		p.sample("complexobj_viewpool_max_views", "gauge", labels, float64(ps.MaxViews))
		p.sample("complexobj_viewpool_inuse_views", "gauge", labels, float64(ps.InUse))
		p.sample("complexobj_viewpool_idle_views", "gauge", labels, float64(ps.Idle))
		p.sample("complexobj_viewpool_borrows_total", "counter", labels, float64(ps.Created+ps.Reused))
		p.sample("complexobj_viewpool_created_total", "counter", labels, float64(ps.Created))
		p.sample("complexobj_viewpool_reused_total", "counter", labels, float64(ps.Reused))
		p.sample("complexobj_viewpool_recycled_total", "counter", labels, float64(ps.Recycled))
		p.sample("complexobj_viewpool_rebuilt_total", "counter", labels, float64(ps.Rebuilt))
		p.sample("complexobj_viewpool_destroyed_total", "counter", labels, float64(ps.Destroyed))
		p.sample("complexobj_viewpool_quarantined_total", "counter", labels, float64(ps.Quarantined))
		p.sample("complexobj_viewpool_stale_total", "counter", labels, float64(ps.Stale))
		p.sample("complexobj_base_generation", "gauge", labels, float64(s.bases[k].Gen()))
	}

	// Durable commit path (only with -wal): write-ahead-log counters plus
	// the per-model commit-latency summaries. All of it sits outside the
	// paper's I/O accounting, like the latency histograms above.
	if s.clog != nil {
		cs := s.clog.Stats()
		p.sample("complexobj_commits_total", "counter", "", float64(cs.Commits))
		p.sample("complexobj_wal_syncs_total", "counter", "", float64(cs.Syncs))
		p.sample("complexobj_wal_appended_bytes_total", "counter", "", float64(cs.AppendedBytes))
		p.sample("complexobj_wal_size_bytes", "gauge", "", float64(cs.SizeBytes))
		p.sample("complexobj_wal_last_seq", "gauge", "", float64(cs.LastSeq))
		p.sample("complexobj_checkpoints_total", "counter", "", float64(cs.Checkpoints))
		p.sample("complexobj_wal_recovered_commits", "gauge", "", float64(cs.Recovered))
		for _, key := range s.commitLat.sortedKeys() {
			c := s.commitLat.get(key.model, key.query)
			p.summary("complexobj_commit_seconds", fmt.Sprintf("model=%q", key.model), c.service.Snapshot())
		}
	}

	// Injected-fault counters (only when a schedule is armed). Injection
	// sits below device accounting: these count misbehavior, never paper
	// I/O.
	if s.cfg.Faults != nil {
		fs := s.cfg.Faults.Stats()
		p.sample("complexobj_fault_ops_total", "counter", "", float64(fs.Ops))
		for _, f := range []struct {
			kind string
			n    int64
		}{
			{"read", fs.ReadFaults}, {"write", fs.WriteFaults}, {"grow", fs.GrowFaults},
			{"permanent", fs.PermFaults}, {"short_read", fs.ShortReads},
			{"torn_write", fs.TornWrites}, {"panic", fs.Panics},
		} {
			p.sample("complexobj_faults_injected_total", "counter", fmt.Sprintf("kind=%q", f.kind), float64(f.n))
		}
		p.sample("complexobj_fault_delays_total", "counter", "", float64(fs.Delays))
		p.sample("complexobj_fault_poisoned_pages", "gauge", "", float64(fs.PoisonedPages))
	}

	// Process memory: OS resident set next to the Go heap, the figures
	// cobench's -soak RSS gate samples.
	ps := metrics.ReadProcStats()
	p.sample("complexobj_process_resident_memory_bytes", "gauge", "", float64(ps.RSSBytes))
	p.sample("complexobj_process_peak_resident_memory_bytes", "gauge", "", float64(ps.PeakRSSBytes))
	p.sample("complexobj_process_heap_alloc_bytes", "gauge", "", float64(ps.HeapAllocBytes))
	p.sample("complexobj_process_heap_sys_bytes", "gauge", "", float64(ps.HeapSysBytes))
	p.sample("complexobj_process_heap_inuse_bytes", "gauge", "", float64(ps.HeapInuseBytes))
	p.sample("complexobj_process_gc_total", "counter", "", float64(ps.GCTotal))

	// Per-(model, query) cells: request counts and the queue/service
	// latency split, in deterministic cell order.
	for _, key := range s.lat.sortedKeys() {
		c := s.lat.get(key.model, key.query)
		labels := fmt.Sprintf("model=%q,query=%q", key.model, key.query)
		p.sample("complexobj_cell_requests_total", "counter", labels, float64(c.requests.Load()))
		p.summary("complexobj_queue_wait_seconds", labels, c.queue.Snapshot())
		p.summary("complexobj_service_time_seconds", labels, c.service.Snapshot())
	}
}
