package server

import (
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"complexobj/internal/metrics"
)

// The observability layer sits strictly beside the paper's accounting:
// latency histograms and scrape handlers read private atomics, pool
// counters and the aggregate map — never an engine, a buffer pool or a
// device — so scraping /metrics cannot move a single /stats counter
// (TestMetricsStatsParity pins the cells byte-identical under a
// concurrent scraping load).

// cellKey identifies one (model, query) latency cell. Latency aggregates
// deliberately key coarser than /stats cells (which add the workload):
// the histogram answers "how fast is DSM 2b", whatever workload variants
// traffic mixes in.
type cellKey struct{ model, query string }

// cellMetrics holds the per-cell latency split: queue is the wait for
// admission plus the view-pool acquire, service the query execution
// inside the workload runner. Requests counts exactly the runs /stats
// aggregates (successful responses), which is what makes the /metrics ↔
// /stats parity checkable.
type cellMetrics struct {
	requests atomic.Int64
	queue    *metrics.Histogram
	service  *metrics.Histogram
}

// latencyCells is the lazily-populated (model, query) → histogram table.
type latencyCells struct {
	mu    sync.RWMutex
	cells map[cellKey]*cellMetrics
}

func newLatencyCells() *latencyCells {
	return &latencyCells{cells: make(map[cellKey]*cellMetrics)}
}

// get returns the cell, creating it on first use (double-checked so the
// steady state is one RLock).
func (l *latencyCells) get(model, query string) *cellMetrics {
	key := cellKey{model, query}
	l.mu.RLock()
	c := l.cells[key]
	l.mu.RUnlock()
	if c != nil {
		return c
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if c = l.cells[key]; c == nil {
		c = &cellMetrics{queue: metrics.NewHistogram(), service: metrics.NewHistogram()}
		l.cells[key] = c
	}
	return c
}

// observe folds one successful request into its cell.
func (l *latencyCells) observe(model, query string, queueWait, service time.Duration) {
	c := l.get(model, query)
	c.requests.Add(1)
	c.queue.Observe(queueWait)
	c.service.Observe(service)
}

// sortedKeys returns the populated cell keys in (model, query) order, so
// both /metrics and /info render deterministically.
func (l *latencyCells) sortedKeys() []cellKey {
	l.mu.RLock()
	keys := make([]cellKey, 0, len(l.cells))
	for k := range l.cells {
		keys = append(keys, k)
	}
	l.mu.RUnlock()
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].model != keys[j].model {
			return keys[i].model < keys[j].model
		}
		return keys[i].query < keys[j].query
	})
	return keys
}

// CellLatency is the /info latency block of one (model, query) cell.
type CellLatency struct {
	Model    string          `json:"model"`
	Query    string          `json:"query"`
	Requests int64           `json:"requests"`
	Queue    metrics.Summary `json:"queueWait"`
	Service  metrics.Summary `json:"service"`
}

// MetricsInfo is the structured twin of the /metrics endpoint inside
// /info: process memory plus the per-cell latency summaries. The
// Prometheus text rendering and this block read the same histograms.
type MetricsInfo struct {
	Process metrics.ProcStats `json:"process"`
	Cells   []CellLatency     `json:"cells"`
}

// metricsInfo builds the /info latency block.
func (s *Server) metricsInfo() MetricsInfo {
	info := MetricsInfo{Process: metrics.ReadProcStats()}
	for _, key := range s.lat.sortedKeys() {
		c := s.lat.get(key.model, key.query)
		info.Cells = append(info.Cells, CellLatency{
			Model:    key.model,
			Query:    key.query,
			Requests: c.requests.Load(),
			Queue:    metrics.Summarize(c.queue.Snapshot()),
			Service:  metrics.Summarize(c.service.Snapshot()),
		})
	}
	return info
}

// handleMetrics serves the Prometheus text exposition. Everything it
// reads is observability state (atomics, pool mutexes, the aggregate
// mutex) — no engine, device or buffer state — so a scrape at any point
// of a load leaves every paper counter untouched.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	p := metrics.NewPromWriter(w)

	p.Sample("complexobj_uptime_seconds", "gauge", "", time.Since(s.start).Seconds())
	p.Sample("complexobj_requests_total", "counter", "", float64(s.requests.Load()))
	p.Sample("complexobj_requests_shed_total", "counter", `reason="admission"`, float64(s.shedAdmit.Load()))
	p.Sample("complexobj_requests_shed_total", "counter", `reason="deadline"`, float64(s.shedDeadline.Load()))
	p.Sample("complexobj_panics_total", "counter", "", float64(s.panics.Load()))

	inFlight := 0
	if s.admit != nil {
		inFlight = len(s.admit)
	}
	p.Sample("complexobj_inflight_requests", "gauge", "", float64(inFlight))
	p.Sample("complexobj_max_inflight_requests", "gauge", "", float64(s.maxInflight))

	s.mu.Lock()
	aggCells, aggDropped := len(s.agg), s.aggDropped
	s.mu.Unlock()
	p.Sample("complexobj_stats_cells", "gauge", "", float64(aggCells))
	p.Sample("complexobj_stats_dropped_cells_total", "counter", "", float64(aggDropped))

	// Per-model view pools: occupancy gauges plus the lifetime counters
	// (borrows = acquisitions served = created + reused). The ownership
	// read lock covers the model walk — on a sharded backend the set
	// changes as shards move (the owned-shard gauge beside it says which).
	s.omu.RLock()
	if s.smap != nil {
		p.Sample("complexobj_shard_map_version", "gauge", "", float64(s.smap.Version))
		p.Sample("complexobj_owned_shards", "gauge", "", float64(len(s.owned)))
		for _, id := range s.owned {
			p.Sample("complexobj_shard_owned", "gauge", fmt.Sprintf("shard=%q", strconv.Itoa(id)), 1)
		}
	}
	for _, k := range s.models {
		ps := s.pools[k].Stats()
		labels := fmt.Sprintf("model=%q", k.String())
		p.Sample("complexobj_viewpool_max_views", "gauge", labels, float64(ps.MaxViews))
		p.Sample("complexobj_viewpool_inuse_views", "gauge", labels, float64(ps.InUse))
		p.Sample("complexobj_viewpool_idle_views", "gauge", labels, float64(ps.Idle))
		p.Sample("complexobj_viewpool_borrows_total", "counter", labels, float64(ps.Created+ps.Reused))
		p.Sample("complexobj_viewpool_created_total", "counter", labels, float64(ps.Created))
		p.Sample("complexobj_viewpool_reused_total", "counter", labels, float64(ps.Reused))
		p.Sample("complexobj_viewpool_recycled_total", "counter", labels, float64(ps.Recycled))
		p.Sample("complexobj_viewpool_rebuilt_total", "counter", labels, float64(ps.Rebuilt))
		p.Sample("complexobj_viewpool_destroyed_total", "counter", labels, float64(ps.Destroyed))
		p.Sample("complexobj_viewpool_quarantined_total", "counter", labels, float64(ps.Quarantined))
		p.Sample("complexobj_viewpool_stale_total", "counter", labels, float64(ps.Stale))
		p.Sample("complexobj_base_generation", "gauge", labels, float64(s.bases[k].Gen()))
	}
	s.omu.RUnlock()

	// Durable commit path (only with -wal): write-ahead-log counters plus
	// the per-model commit-latency summaries. All of it sits outside the
	// paper's I/O accounting, like the latency histograms above.
	if s.clog != nil {
		cs := s.clog.Stats()
		p.Sample("complexobj_commits_total", "counter", "", float64(cs.Commits))
		p.Sample("complexobj_wal_syncs_total", "counter", "", float64(cs.Syncs))
		p.Sample("complexobj_wal_appended_bytes_total", "counter", "", float64(cs.AppendedBytes))
		p.Sample("complexobj_wal_payload_bytes_total", "counter", "", float64(cs.PayloadBytes))
		if cs.PayloadBytes > 0 {
			p.Sample("complexobj_wal_write_amplification", "gauge", "",
				float64(cs.AppendedBytes)/float64(cs.PayloadBytes))
		}
		p.Sample("complexobj_wal_size_bytes", "gauge", "", float64(cs.SizeBytes))
		p.Sample("complexobj_wal_last_seq", "gauge", "", float64(cs.LastSeq))
		p.Sample("complexobj_checkpoints_total", "counter", "", float64(cs.Checkpoints))
		p.Sample("complexobj_wal_recovered_commits", "gauge", "", float64(cs.Recovered))
		for _, key := range s.commitLat.sortedKeys() {
			c := s.commitLat.get(key.model, key.query)
			p.Summary("complexobj_commit_seconds", fmt.Sprintf("model=%q", key.model), c.service.Snapshot())
		}
	}

	// Injected-fault counters (only when a schedule is armed). Injection
	// sits below device accounting: these count misbehavior, never paper
	// I/O.
	if s.cfg.Faults != nil {
		fs := s.cfg.Faults.Stats()
		p.Sample("complexobj_fault_ops_total", "counter", "", float64(fs.Ops))
		for _, f := range []struct {
			kind string
			n    int64
		}{
			{"read", fs.ReadFaults}, {"write", fs.WriteFaults}, {"grow", fs.GrowFaults},
			{"permanent", fs.PermFaults}, {"short_read", fs.ShortReads},
			{"torn_write", fs.TornWrites}, {"panic", fs.Panics},
		} {
			p.Sample("complexobj_faults_injected_total", "counter", fmt.Sprintf("kind=%q", f.kind), float64(f.n))
		}
		p.Sample("complexobj_fault_delays_total", "counter", "", float64(fs.Delays))
		p.Sample("complexobj_fault_poisoned_pages", "gauge", "", float64(fs.PoisonedPages))
	}

	// Process memory: OS resident set next to the Go heap, the figures
	// cobench's -soak RSS gate samples.
	ps := metrics.ReadProcStats()
	p.Sample("complexobj_process_resident_memory_bytes", "gauge", "", float64(ps.RSSBytes))
	p.Sample("complexobj_process_peak_resident_memory_bytes", "gauge", "", float64(ps.PeakRSSBytes))
	p.Sample("complexobj_process_heap_alloc_bytes", "gauge", "", float64(ps.HeapAllocBytes))
	p.Sample("complexobj_process_heap_sys_bytes", "gauge", "", float64(ps.HeapSysBytes))
	p.Sample("complexobj_process_heap_inuse_bytes", "gauge", "", float64(ps.HeapInuseBytes))
	p.Sample("complexobj_process_gc_total", "counter", "", float64(ps.GCTotal))

	// Per-(model, query) cells: request counts and the queue/service
	// latency split, in deterministic cell order.
	for _, key := range s.lat.sortedKeys() {
		c := s.lat.get(key.model, key.query)
		labels := fmt.Sprintf("model=%q,query=%q", key.model, key.query)
		p.Sample("complexobj_cell_requests_total", "counter", labels, float64(c.requests.Load()))
		p.Summary("complexobj_queue_wait_seconds", labels, c.queue.Snapshot())
		p.Summary("complexobj_service_time_seconds", labels, c.service.Snapshot())
	}
}
