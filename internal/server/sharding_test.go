package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"testing"

	"complexobj"
	"complexobj/cobench"
	"complexobj/internal/shard"
)

// splitForTest partitions a snapshot range-wise into n segments plus a
// shard map, the way cogen -split does.
func splitForTest(t *testing.T, dbPath string, n int) string {
	t.Helper()
	info, err := complexobj.StatSnapshot(dbPath)
	if err != nil {
		t.Fatal(err)
	}
	names := make([]string, len(info.Models))
	byName := make(map[string]complexobj.ModelKind, len(info.Models))
	for i, k := range info.Models {
		names[i] = k.String()
		byName[k.String()] = k
	}
	m, err := shard.Partition(names, n, shard.StrategyRange)
	if err != nil {
		t.Fatal(err)
	}
	for i := range m.Shards {
		s := &m.Shards[i]
		if len(s.Models) == 0 {
			continue
		}
		kinds := make([]complexobj.ModelKind, len(s.Models))
		for j, name := range s.Models {
			kinds[j] = byName[name]
		}
		seg := shard.SegmentName(dbPath, s.ID)
		if err := complexobj.ExtractSnapshot(dbPath, seg, kinds); err != nil {
			t.Fatal(err)
		}
		s.Segment = filepath.Base(seg)
	}
	mapPath := shard.MapName(dbPath)
	if err := m.Write(mapPath); err != nil {
		t.Fatal(err)
	}
	return mapPath
}

// TestShardedBackendBitIdenticalAnd421 pins the scale-out measurement
// contract: a backend serving one shard out of its segment produces
// counters bit-identical to the unsharded batch baseline for the models
// it owns, and rejects the ones it does not with a structured 421
// Misdirected Request (never a 400 or 503 — the router keys off the
// distinction).
func TestShardedBackendBitIdenticalAnd421(t *testing.T) {
	path, _ := buildSnapshot(t, 60)
	w := cobench.Workload{Loops: 15, Samples: 5, Seed: 1993}
	want := batchBaseline(t, path, w)
	mapPath := splitForTest(t, path, 2)
	m, err := shard.Load(mapPath)
	if err != nil {
		t.Fatal(err)
	}

	srv, err := New(Config{ShardMap: mapPath, Shards: []int{0}, BufferPages: 256, MaxViews: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()
	hc := hs.Client()

	sh0, _ := m.Shard(0)
	for _, name := range sh0.Models {
		for _, q := range cobench.AllQueries() {
			var got RunResponse
			getJSON(t, hc, runURL(hs.URL, name, q.String(), w), &got)
			got.ElapsedUS = 0
			key := AggKey{Model: name, Query: q.String(), Workload: got.Workload}
			if got != want[key] {
				t.Errorf("sharded %s %s = %+v, want %+v", name, q, got, want[key])
			}
		}
	}

	sh1, _ := m.Shard(1)
	for _, name := range sh1.Models {
		resp, err := hc.Get(runURL(hs.URL, name, "1a", w))
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusMisdirectedRequest {
			t.Fatalf("unowned model %s: %s, want 421", name, resp.Status)
		}
		var no NotOwnedResponse
		if err := json.NewDecoder(resp.Body).Decode(&no); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if !no.NotOwned || no.Model != name || no.MapVersion != m.Version {
			t.Errorf("421 payload %+v, want notOwned for %s at map version %d", no, name, m.Version)
		}
		if len(no.OwnedShards) != 1 || no.OwnedShards[0] != 0 {
			t.Errorf("421 payload owns %v, want [0]", no.OwnedShards)
		}
	}

	// A model name that exists in no shard is still a plain bad request.
	resp, err := hc.Get(hs.URL + "/run?model=nope&query=1a")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown model: %s, want 400", resp.Status)
	}

	var info InfoResponse
	getJSON(t, hc, hs.URL+"/info", &info)
	if info.Sharding == nil {
		t.Fatal("/info has no sharding block")
	}
	if info.Sharding.MapVersion != m.Version || len(info.Sharding.Shards) != 1 || info.Sharding.Shards[0] != 0 {
		t.Errorf("/info sharding %+v, want shard 0 at version %d", info.Sharding, m.Version)
	}
	if len(info.Models) != len(sh0.Models) {
		t.Errorf("/info lists %d models, want the %d of shard 0", len(info.Models), len(sh0.Models))
	}
}

// TestShardAcquireRelease walks the handoff protocol on one backend: it
// starts owning shard 0, acquires shard 1 (serving both), then releases
// shard 0 — after which shard 0's models 421 and shard 1's still measure
// bit-identically to the batch baseline.
func TestShardAcquireRelease(t *testing.T) {
	path, _ := buildSnapshot(t, 60)
	w := cobench.Workload{Loops: 15, Samples: 5, Seed: 1993}
	want := batchBaseline(t, path, w)
	mapPath := splitForTest(t, path, 2)
	m, err := shard.Load(mapPath)
	if err != nil {
		t.Fatal(err)
	}
	sh0, _ := m.Shard(0)
	sh1, _ := m.Shard(1)

	srv, err := New(Config{ShardMap: mapPath, Shards: []int{0}, BufferPages: 256, MaxViews: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()
	hc := hs.Client()

	post := func(path string, wantCode int) ShardChangeResponse {
		t.Helper()
		resp, err := hc.Post(hs.URL+path, "", nil)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != wantCode {
			t.Fatalf("POST %s: %s, want %d", path, resp.Status, wantCode)
		}
		var out ShardChangeResponse
		if wantCode == http.StatusOK {
			if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
				t.Fatal(err)
			}
		}
		return out
	}

	// GET must never mutate ownership.
	resp, err := hc.Get(hs.URL + "/shards/acquire?shard=1")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET acquire: %s, want 405", resp.Status)
	}

	if got := post("/shards/acquire?shard=1", http.StatusOK); len(got.Shards) != 2 {
		t.Fatalf("after acquire: owned %v, want [0 1]", got.Shards)
	}
	// Acquire is idempotent: re-acquiring an owned shard is a no-op.
	post("/shards/acquire?shard=1", http.StatusOK)
	post("/shards/acquire?shard=9", http.StatusConflict)

	// Both shards' models measure while co-owned.
	for _, name := range append(append([]string(nil), sh0.Models...), sh1.Models...) {
		var got RunResponse
		getJSON(t, hc, runURL(hs.URL, name, "2a", w), &got)
		got.ElapsedUS = 0
		key := AggKey{Model: name, Query: "2a", Workload: got.Workload}
		if got != want[key] {
			t.Errorf("co-owned %s 2a diverges from batch baseline", name)
		}
	}

	if got := post("/shards/release?shard=0", http.StatusOK); len(got.Shards) != 1 || got.Shards[0] != 1 {
		t.Fatalf("after release: owned %v, want [1]", got.Shards)
	}
	post("/shards/release?shard=0", http.StatusConflict) // already gone

	for _, name := range sh0.Models {
		resp, err := hc.Get(runURL(hs.URL, name, "1a", w))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusMisdirectedRequest {
			t.Errorf("released model %s: %s, want 421", name, resp.Status)
		}
	}
	for _, name := range sh1.Models {
		var got RunResponse
		getJSON(t, hc, runURL(hs.URL, name, "1a", w), &got)
		got.ElapsedUS = 0
		key := AggKey{Model: name, Query: "1a", Workload: got.Workload}
		if got != want[key] {
			t.Errorf("retained model %s diverges after release of shard 0", name)
		}
	}

	var info InfoResponse
	getJSON(t, hc, hs.URL+"/info", &info)
	if len(info.Sharding.Shards) != 1 || info.Sharding.Shards[0] != 1 {
		t.Errorf("/info sharding after handoff: %+v, want shard 1 only", info.Sharding)
	}
}

// TestShardConfigErrors pins the config surface: Models+ShardMap conflict,
// Shards without ShardMap, unknown shard IDs, and the durable-rebalance
// rejection.
func TestShardConfigErrors(t *testing.T) {
	path, _ := buildSnapshot(t, 40)
	mapPath := splitForTest(t, path, 2)

	if _, err := New(Config{ShardMap: mapPath, Models: []complexobj.ModelKind{complexobj.DSM}}); err == nil {
		t.Error("Models+ShardMap accepted")
	}
	if _, err := New(Config{Snapshot: path, Shards: []int{0}}); err == nil {
		t.Error("Shards without ShardMap accepted")
	}
	if _, err := New(Config{ShardMap: mapPath, Shards: []int{7}}); err == nil {
		t.Error("unknown shard ID accepted")
	}

	srv, err := New(Config{Snapshot: path, BufferPages: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if _, err := srv.AcquireShard(0, ""); err == nil {
		t.Error("acquire on an unsharded server accepted")
	}
	if _, err := srv.ReleaseShard(0); err == nil {
		t.Error("release on an unsharded server accepted")
	}

	wdir := t.TempDir()
	dsrv, err := New(Config{ShardMap: mapPath, Shards: []int{0}, BufferPages: 256, WALDir: wdir})
	if err != nil {
		t.Fatal(err)
	}
	defer dsrv.Close()
	if _, err := dsrv.AcquireShard(1, ""); err == nil {
		t.Error("rebalance of a durable backend accepted")
	}
	if _, err := dsrv.ReleaseShard(0); err == nil {
		t.Error("durable release accepted")
	}
}
