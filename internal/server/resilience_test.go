package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"reflect"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"complexobj"
	"complexobj/cobench"
	"complexobj/internal/fanout"
)

// mustPlan parses a fault schedule or fails the test.
func mustPlan(t *testing.T, spec string) *complexobj.FaultPlan {
	t.Helper()
	plan, err := complexobj.ParseFaultPlan(spec)
	if err != nil {
		t.Fatal(err)
	}
	return plan
}

// getStatus fetches url and returns the status code and decoded JSON body.
func getStatus(t *testing.T, hc *http.Client, url string) (int, map[string]any) {
	t.Helper()
	resp, err := hc.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	return resp.StatusCode, body
}

// TestServerAdmissionShed saturates the server-wide admission gate and
// checks graceful degradation end to end: queued requests shed with 503 +
// Retry-After once their deadline expires, /healthz flips to "degraded"
// (while staying HTTP 200 for liveness probes), the shed is visible in
// /info, and service resumes as soon as the gate drains.
func TestServerAdmissionShed(t *testing.T) {
	path, _ := buildSnapshot(t, 30)
	srv, err := New(Config{
		Snapshot:       path,
		BufferPages:    128,
		MaxViews:       1,
		MaxInflight:    2,
		RequestTimeout: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()
	hc := hs.Client()
	w := cobench.Workload{Loops: 5, Samples: 3, Seed: 1}

	// Fill the admission gate (the test owns the semaphore directly, so
	// the saturation is deterministic rather than raced by slow requests).
	srv.admit <- struct{}{}
	srv.admit <- struct{}{}

	code, health := getStatus(t, hc, hs.URL+"/healthz")
	if code != http.StatusOK {
		t.Errorf("/healthz while saturated: %d, want 200 (liveness must keep passing)", code)
	}
	if health["status"] != "degraded" {
		t.Errorf("/healthz status = %v, want degraded", health["status"])
	}

	resp, err := hc.Get(runURL(hs.URL, "DSM", "2b", w))
	if err != nil {
		t.Fatal(err)
	}
	var ebody map[string]string
	if err := json.NewDecoder(resp.Body).Decode(&ebody); err != nil {
		t.Fatalf("shed response not JSON: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("run over a full gate: %s, want 503", resp.Status)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("503 without Retry-After; clients cannot back off politely")
	}
	if ebody["error"] == "" {
		t.Error("shed response carries no structured error")
	}
	if got := srv.shedAdmit.Load(); got != 1 {
		t.Errorf("shedAdmit = %d, want 1", got)
	}

	var info InfoResponse
	getJSON(t, hc, hs.URL+"/info", &info)
	if info.Resilience.MaxInflight != 2 || info.Resilience.ShedAdmission != 1 {
		t.Errorf("resilience info = %+v, want maxInflight 2, shedAdmission 1", info.Resilience)
	}
	if info.Resilience.RequestTimeoutMS != 50 {
		t.Errorf("requestTimeoutMillis = %d, want 50", info.Resilience.RequestTimeoutMS)
	}

	// Drain the gate: health recovers and the same request now serves.
	<-srv.admit
	<-srv.admit
	if code, health = getStatus(t, hc, hs.URL+"/healthz"); health["status"] != "ok" {
		t.Errorf("/healthz after drain = %d %v, want ok", code, health)
	}
	var got RunResponse
	getJSON(t, hc, runURL(hs.URL, "DSM", "2b", w), &got)
	if !got.Supported || got.Raw == (Counters{}) {
		t.Errorf("post-drain run did not measure: %+v", got)
	}
}

// TestServerDeadlineShed pins the per-request deadline: a timeout too
// short to finish any measurement sheds the request with 503 +
// Retry-After and counts it, and a deadlined run reports no counters at
// all — never a truncated measurement.
func TestServerDeadlineShed(t *testing.T) {
	path, _ := buildSnapshot(t, 30)
	srv, err := New(Config{
		Snapshot:       path,
		BufferPages:    128,
		MaxViews:       1,
		MaxInflight:    -1, // unbounded: the deadline, not admission, must shed
		RequestTimeout: time.Nanosecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()
	w := cobench.Workload{Loops: 5, Samples: 3, Seed: 1}

	resp, err := hs.Client().Get(runURL(hs.URL, "DSM", "2b", w))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("run under 1ns deadline: %s, want 503", resp.Status)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("deadline shed without Retry-After")
	}
	if got := srv.shedDeadline.Load(); got == 0 {
		t.Error("shedDeadline not counted")
	}
	var stats StatsResponse
	getJSON(t, hs.Client(), hs.URL+"/stats", &stats)
	if len(stats.Cells) != 0 || stats.Requests != 0 {
		t.Errorf("deadlined request leaked a measurement: %+v", stats)
	}
}

// TestServerPanicQuarantine arms an injected-panic schedule and checks
// containment: a panicking query path becomes a structured 500, the
// damaged view is quarantined (never recycled), the counters surface in
// /healthz and /info, and later requests on fresh views still measure
// bit-identical to a fault-free baseline. The schedule is deterministic:
// seed 21 panics the first DSM 2b request and spares later view streams.
func TestServerPanicQuarantine(t *testing.T) {
	path, _ := buildSnapshot(t, 30)
	w := cobench.Workload{Loops: 5, Samples: 3, Seed: 1}
	want := batchBaseline(t, path, w)
	wantKey := AggKey{Model: "DSM", Query: "2b",
		Workload: WorkloadParams{Loops: w.Loops, Samples: w.Samples, Seed: w.Seed}}

	srv, err := New(Config{
		Snapshot:    path,
		BufferPages: 128,
		MaxViews:    2,
		Faults:      mustPlan(t, "seed=21,panic=0.002"),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()
	hc := hs.Client()

	panics, successes := 0, 0
	for i := 0; i < 40 && (panics == 0 || successes == 0); i++ {
		resp, err := hc.Get(runURL(hs.URL, "DSM", "2b", w))
		if err != nil {
			t.Fatal(err)
		}
		switch resp.StatusCode {
		case http.StatusOK:
			var got RunResponse
			if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
				t.Fatal(err)
			}
			got.ElapsedUS = 0
			if !reflect.DeepEqual(got, want[wantKey]) {
				t.Fatalf("request %d: survived response diverged:\n got %+v\nwant %+v",
					i, got, want[wantKey])
			}
			successes++
		case http.StatusInternalServerError:
			var ebody map[string]string
			if err := json.NewDecoder(resp.Body).Decode(&ebody); err != nil {
				t.Fatal(err)
			}
			if !strings.Contains(ebody["error"], "panic") {
				t.Fatalf("request %d: 500 without a panic report: %q", i, ebody["error"])
			}
			panics++
		default:
			t.Fatalf("request %d: unexpected %s", i, resp.Status)
		}
		resp.Body.Close()
	}
	if panics == 0 {
		t.Fatal("schedule never panicked; the containment pin is vacuous")
	}
	if successes == 0 {
		t.Fatal("no request survived; cannot pin post-panic recovery")
	}

	code, health := getStatus(t, hc, hs.URL+"/healthz")
	if code != http.StatusOK {
		t.Errorf("/healthz after panics: %d, want 200", code)
	}
	if health["panics"].(float64) < 1 || health["quarantinedViews"].(float64) < 1 {
		t.Errorf("/healthz does not report the damage: %v", health)
	}

	var info InfoResponse
	getJSON(t, hc, hs.URL+"/info", &info)
	if info.Resilience.Panics != int64(panics) {
		t.Errorf("resilience panics = %d, want %d", info.Resilience.Panics, panics)
	}
	if info.Resilience.QuarantinedViews < 1 {
		t.Error("no view quarantined after a contained panic")
	}
	if info.Resilience.FaultSpec == "" || info.Resilience.Faults == nil {
		t.Errorf("armed fault plan invisible in /info: %+v", info.Resilience)
	}
	if info.Resilience.Faults.Panics < int64(panics) {
		t.Errorf("fault stats count %d panics, handler saw %d",
			info.Resilience.Faults.Panics, panics)
	}
	for _, pi := range info.Models {
		if pi.InUse != 0 {
			t.Errorf("%s: %d views still in use after the drive", pi.Model, pi.InUse)
		}
	}
}

// TestServerInfoResilienceUnarmed: without -faults the resilience block
// must not claim a schedule.
func TestServerInfoResilienceUnarmed(t *testing.T) {
	path, _ := buildSnapshot(t, 30)
	srv, err := New(Config{Snapshot: path, BufferPages: 128, MaxViews: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()
	var info InfoResponse
	getJSON(t, hs.Client(), hs.URL+"/info", &info)
	if info.Resilience.FaultSpec != "" || info.Resilience.Faults != nil {
		t.Errorf("fault-free server advertises a schedule: %+v", info.Resilience)
	}
	if info.Resilience.MaxInflight != 2*1*len(info.Models) {
		t.Errorf("defaulted maxInflight = %d, want %d (2 x MaxViews x models)",
			info.Resilience.MaxInflight, 2*len(info.Models))
	}
}

// TestServerChaosSoak is the resilience acceptance test: concurrent
// clients hammer every (model, query) cell of a served snapshot while a
// transient fault schedule (dropped reads, short reads, injected latency)
// runs underneath. Every 2xx response must be bit-identical to the
// fault-free batch baseline — the device retry absorbs the faults below
// the counters — every failure must be a structured 5xx, the aggregates
// must show zero divergent cells, and the pools must return to steady
// state. COMPLEXOBJ_CHAOS_ROUNDS extends the soak (CI's chaos job runs
// the same contract for minutes via cobench -serve-url).
func TestServerChaosSoak(t *testing.T) {
	rounds := 1
	if env := os.Getenv("COMPLEXOBJ_CHAOS_ROUNDS"); env != "" {
		n, err := strconv.Atoi(env)
		if err != nil || n < 1 {
			t.Fatalf("COMPLEXOBJ_CHAOS_ROUNDS=%q: want a positive integer", env)
		}
		rounds = n
	}

	path, _ := buildSnapshot(t, 60)
	w := cobench.Workload{Loops: 10, Samples: 5, Seed: 1993}
	want := batchBaseline(t, path, w)

	plan := mustPlan(t, "seed=2026,read=0.03,short=0.01,latency=0.05:100us")
	srv, err := New(Config{
		Snapshot:       path,
		BufferPages:    256,
		MaxViews:       3,
		MaxInflight:    10,
		RequestTimeout: 30 * time.Second,
		Faults:         plan,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()

	models := complexobj.AllModels()
	queries := cobench.AllQueries()
	const clients = 8
	var ok2xx, failed atomic.Int64
	err = fanout.Run(clients, clients, func(c int) error {
		hc := hs.Client()
		for r := 0; r < rounds; r++ {
			for i := range models {
				k := models[(i+c)%len(models)]
				for j := range queries {
					q := queries[(j+c+r)%len(queries)]
					resp, err := hc.Get(runURL(hs.URL, k.String(), q.String(), w))
					if err != nil {
						return err
					}
					if resp.StatusCode != http.StatusOK {
						// Failures are allowed under chaos — but only
						// clean, structured ones.
						var ebody map[string]string
						if err := json.NewDecoder(resp.Body).Decode(&ebody); err != nil {
							resp.Body.Close()
							return fmt.Errorf("%s %s: %s with undecodable body: %v", k, q, resp.Status, err)
						}
						resp.Body.Close()
						if resp.StatusCode != http.StatusServiceUnavailable &&
							resp.StatusCode != http.StatusInternalServerError {
							return fmt.Errorf("%s %s: unexpected %s (%s)", k, q, resp.Status, ebody["error"])
						}
						if ebody["error"] == "" {
							return fmt.Errorf("%s %s: %s without a structured error", k, q, resp.Status)
						}
						failed.Add(1)
						continue
					}
					var got RunResponse
					if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
						resp.Body.Close()
						return err
					}
					resp.Body.Close()
					key := AggKey{Model: k.String(), Query: q.String(), Workload: got.Workload}
					exp, okk := want[key]
					if !okk {
						return fmt.Errorf("no baseline for %+v", key)
					}
					got.ElapsedUS = 0
					if !reflect.DeepEqual(got, exp) {
						return fmt.Errorf("chaos diverged on %s %s:\n got %+v\nwant %+v", k, q, got, exp)
					}
					ok2xx.Add(1)
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if ok2xx.Load() == 0 {
		t.Fatal("no request succeeded under the chaos schedule")
	}

	// The aggregates agree with the baseline cell by cell: nothing the
	// fault schedule did may reach a paper-visible counter.
	var stats StatsResponse
	getJSON(t, hs.Client(), hs.URL+"/stats", &stats)
	for _, cell := range stats.Cells {
		if cell.Divergent {
			t.Errorf("%s %s: divergent under chaos", cell.Model, cell.Query)
		}
		exp := want[cell.AggKey]
		if cell.Raw != exp.Raw || cell.PerUnit != exp.PerUnit || cell.Supported != exp.Supported {
			t.Errorf("%s %s: aggregate diverges from fault-free baseline", cell.Model, cell.Query)
		}
	}

	// Steady state: nothing in flight, nothing leaked, the schedule
	// actually fired.
	var info InfoResponse
	getJSON(t, hs.Client(), hs.URL+"/info", &info)
	if info.Resilience.InFlight != 0 {
		t.Errorf("%d requests still in flight after the soak", info.Resilience.InFlight)
	}
	for _, pi := range info.Models {
		if pi.InUse != 0 {
			t.Errorf("%s: %d views still in use after the soak", pi.Model, pi.InUse)
		}
		if int64(pi.MaxViews) < pi.Created-pi.Destroyed {
			t.Errorf("%s: %d live views exceed the bound %d", pi.Model, pi.Created-pi.Destroyed, pi.MaxViews)
		}
	}
	fs := plan.Stats()
	if fs.Injected() == 0 && fs.Delays == 0 {
		t.Error("chaos schedule injected nothing; the soak is vacuous")
	}
	t.Logf("chaos soak: %d ok, %d shed/failed, faults %+v", ok2xx.Load(), failed.Load(), fs)
}
