package server

import (
	"net/url"
	"testing"

	"complexobj/cobench"
)

// FuzzRunSpecResolve fuzzes the /run wire surface: arbitrary parameter
// strings must never panic Resolve, the Values round-trip must be exact
// (what the client encodes is what the server reads), and any spec
// Resolve accepts must re-encode through RunSpecFor into a spec that
// resolves to the identical (model, query, workload) — the property that
// keeps cobench's served client and the server's validator in lock-step.
func FuzzRunSpecResolve(f *testing.F) {
	f.Add("DSM", "2b", "15", "5", "1993")
	f.Add("NSM", "1a", "", "", "")
	f.Add("dsm", "3b", "0", "0", "0")
	f.Add("D-DSM", "1c", "300", "40", "18446744073709551615")
	f.Add("nope", "2b", "15", "5", "7")
	f.Add("DSM", "9z", "15", "5", "7")
	f.Add("DSM", "2b", "-1", "5", "7")
	f.Add("DSM", "2b", "1e3", "5", "7")
	f.Add("DSM", "2b", "15", "five", "7")
	f.Add("DSM", "2b", "15", "5", "-7")
	f.Add("", "", "", "", "")
	f.Add("DSM\x00", "2b\n", " 15", "5 ", "\t7")
	f.Fuzz(func(t *testing.T, model, query, loops, samples, seed string) {
		spec := RunSpec{Model: model, Query: query, Loops: loops, Samples: samples, Seed: seed}

		// Wire round-trip: encoding to query parameters and reading them
		// back is lossless for every field url.Values can carry (empty
		// fields are omitted and read back empty).
		if back := RunSpecFromValues(spec.Values()); back != spec {
			t.Fatalf("Values round-trip changed the spec:\nsent %+v\ngot  %+v", spec, back)
		}
		// And robust against a hostile encoder: parsing the encoded form
		// as a real query string reads the same spec.
		if vals, err := url.ParseQuery(spec.Values().Encode()); err == nil {
			if back := RunSpecFromValues(vals); back != spec {
				t.Fatalf("encoded round-trip changed the spec:\nsent %+v\ngot  %+v", spec, back)
			}
		}

		defaults := cobench.Workload{Loops: 300, Samples: 40, Seed: 1993}
		k, q, w, err := spec.Resolve(defaults)
		if err != nil {
			return // rejected input: the only contract is "no panic"
		}
		// Re-encoding the resolved cell must resolve identically — the
		// exact path cobench's served client drives.
		k2, q2, w2, err := RunSpecFor(k, q, w).Resolve(defaults)
		if err != nil {
			t.Fatalf("Resolve ok for %+v, but the re-encoded spec fails: %v", spec, err)
		}
		if k2 != k || q2 != q || w2 != w {
			t.Fatalf("re-encoded spec resolves differently:\nfirst  %v %v %+v\nsecond %v %v %+v", k, q, w, k2, q2, w2)
		}
	})
}
