package server

import (
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"path/filepath"
	"sort"
	"strconv"
	"sync"

	"complexobj"
	"complexobj/internal/shard"
)

// The sharding layer partitions the model address table across backends
// (internal/shard). It lives entirely outside the paper's counted I/O:
// a backend measures exactly what a single node would for the models it
// owns, so the union of the shards' /stats cells is bit-identical to the
// single-node cell set (docs/PAPER_MAP.md).
//
// The rebalance protocol makes a segment handoff between two live
// backends a file open + mmap, never a copy or a restart:
//
//  1. the new owner opens the shard's segment (POST /shards/acquire) —
//     both backends serve the shard for a moment, measuring identically
//     off the same frozen bytes;
//  2. the router repoints the shard (POST /map/assign on coshard);
//  3. the old owner drops it (POST /shards/release) — its in-flight
//     requests finish on the views they hold, later arrivals get 421
//     Misdirected Request and the router re-resolves.
//
// No request is lost at any interleaving: at every step at least one
// backend answers 200 for the shard's models, and every failure mode a
// racing request can hit (421, a closing pool) is retried by the router
// against the then-current owner.

// NotOwnedResponse is the 421 Misdirected Request payload a sharded
// backend rejects out-of-shard models with: the structured signal the
// router re-resolves ownership on (and any other client can route by).
type NotOwnedResponse struct {
	Error       string `json:"error"`
	NotOwned    bool   `json:"notOwned"`
	Model       string `json:"model"`
	MapVersion  uint64 `json:"mapVersion"`
	OwnedShards []int  `json:"ownedShards"`
}

// ShardingInfo is the /info sharding block of a sharded backend.
type ShardingInfo struct {
	MapPath    string   `json:"mapPath"`
	MapVersion uint64   `json:"mapVersion"`
	Shards     []int    `json:"shards"`
	Models     []string `json:"models"`
}

// ShardChangeResponse answers /shards/acquire and /shards/release.
type ShardChangeResponse struct {
	Shard      int      `json:"shard"`
	Models     []string `json:"models"`
	Shards     []int    `json:"shards"` // owned after the change
	MapVersion uint64   `json:"mapVersion"`
}

// segmentPath resolves a shard's .codb segment: the map's segment
// relative to the map file's directory (absolute paths pass through), or
// the full snapshot when the shard has no segment of its own.
func segmentPath(mapPath, snapshot string, sh *shard.Shard) (string, error) {
	if sh.Segment == "" {
		if snapshot == "" {
			return "", fmt.Errorf("server: shard %d has no segment and no -db snapshot fallback", sh.ID)
		}
		return snapshot, nil
	}
	if filepath.IsAbs(sh.Segment) {
		return sh.Segment, nil
	}
	return filepath.Join(filepath.Dir(mapPath), sh.Segment), nil
}

// shardedInfo resolves the deployment identity (generator config, page
// size) for a sharded backend: the first owned model's segment, else any
// segment in the map, else the snapshot fallback. Extract copies the
// snapshot header verbatim, so every segment of one split agrees.
func shardedInfo(cfg Config, smap *shard.Map, models []complexobj.ModelKind,
	segments map[complexobj.ModelKind]string) (complexobj.SnapshotInfo, error) {
	if len(models) > 0 {
		return complexobj.StatSnapshot(segments[models[0]])
	}
	for i := range smap.Shards {
		if sh := &smap.Shards[i]; len(sh.Models) > 0 {
			seg, err := segmentPath(cfg.ShardMap, cfg.Snapshot, sh)
			if err != nil {
				return complexobj.SnapshotInfo{}, err
			}
			return complexobj.StatSnapshot(seg)
		}
	}
	return complexobj.SnapshotInfo{}, fmt.Errorf("server: %s owns no models", cfg.ShardMap)
}

// shardingInfoLocked builds the /info block; omu held (any mode).
func (s *Server) shardingInfoLocked() *ShardingInfo {
	if s.smap == nil {
		return nil
	}
	out := &ShardingInfo{
		MapPath:    s.cfg.ShardMap,
		MapVersion: s.smap.Version,
		Shards:     append([]int(nil), s.owned...),
	}
	for _, k := range s.models {
		out.Models = append(out.Models, k.String())
	}
	return out
}

// ownsLocked reports whether shard id is currently owned; omu held.
func (s *Server) ownsLocked(id int) bool {
	for _, o := range s.owned {
		if o == id {
			return true
		}
	}
	return false
}

// AcquireShard opens the shard's models from its segment and starts
// serving them — step one of a handoff, run on the new owner while the
// old one still serves. The shard map is reloaded from disk first, so a
// rebalance that rewrote it (new version, new segment paths) takes effect
// here. segment, when non-empty, overrides the map's segment path.
// Acquiring an already-owned shard is a no-op (idempotent retries).
func (s *Server) AcquireShard(id int, segment string) (ShardChangeResponse, error) {
	s.omu.Lock()
	defer s.omu.Unlock()
	if s.smap == nil {
		return ShardChangeResponse{}, fmt.Errorf("server: not sharded (start with -shard-map)")
	}
	if s.clog != nil {
		return ShardChangeResponse{}, fmt.Errorf("server: shard rebalance of a durable (-wal) backend is not supported")
	}
	if m, err := shard.Load(s.cfg.ShardMap); err == nil {
		s.smap = m
	} else {
		return ShardChangeResponse{}, fmt.Errorf("server: reload shard map: %w", err)
	}
	sh, ok := s.smap.Shard(id)
	if !ok {
		return ShardChangeResponse{}, fmt.Errorf("server: no shard %d in %s", id, s.cfg.ShardMap)
	}
	resp := ShardChangeResponse{Shard: id, MapVersion: s.smap.Version,
		Models: append([]string(nil), sh.Models...)}
	if s.ownsLocked(id) {
		resp.Shards = append([]int(nil), s.owned...)
		return resp, nil
	}
	seg := segment
	if seg == "" {
		var err error
		if seg, err = segmentPath(s.cfg.ShardMap, s.cfg.Snapshot, sh); err != nil {
			return ShardChangeResponse{}, err
		}
	}
	var added []complexobj.ModelKind
	for _, name := range sh.Models {
		k, err := complexobj.ModelByName(name)
		if err == nil && s.pools[k] != nil {
			err = fmt.Errorf("server: model %s already served (shard overlap)", k)
		}
		if err == nil {
			err = s.openModelLocked(k, seg)
		}
		if err != nil {
			for _, a := range added {
				s.closeModelLocked(a)
			}
			return ShardChangeResponse{}, fmt.Errorf("server: acquire shard %d: %w", id, err)
		}
		added = append(added, k)
	}
	s.models = append(s.models, added...)
	sortModels(s.models)
	s.owned = append(s.owned, id)
	sort.Ints(s.owned)
	resp.Shards = append([]int(nil), s.owned...)
	return resp, nil
}

// ReleaseShard stops serving the shard's models and releases their bases
// — the final step of a handoff, run on the old owner after the router
// repointed the shard. Requests already holding a view finish unharmed
// (views pin their base); ones that race the release get 421 or a
// closing-pool 503 and are re-routed. Releasing an unowned shard is an
// error: it means the handoff protocol was run out of order.
func (s *Server) ReleaseShard(id int) (ShardChangeResponse, error) {
	s.omu.Lock()
	defer s.omu.Unlock()
	if s.smap == nil {
		return ShardChangeResponse{}, fmt.Errorf("server: not sharded (start with -shard-map)")
	}
	if s.clog != nil {
		return ShardChangeResponse{}, fmt.Errorf("server: shard rebalance of a durable (-wal) backend is not supported")
	}
	if !s.ownsLocked(id) {
		return ShardChangeResponse{}, fmt.Errorf("server: shard %d is not owned (owned: %v)", id, s.owned)
	}
	sh, ok := s.smap.Shard(id)
	if !ok {
		return ShardChangeResponse{}, fmt.Errorf("server: no shard %d in %s", id, s.cfg.ShardMap)
	}
	resp := ShardChangeResponse{Shard: id, MapVersion: s.smap.Version,
		Models: append([]string(nil), sh.Models...)}
	for _, name := range sh.Models {
		k, err := complexobj.ModelByName(name)
		if err != nil {
			return ShardChangeResponse{}, fmt.Errorf("server: release shard %d: %w", id, err)
		}
		s.closeModelLocked(k)
	}
	keepM := s.models[:0]
	for _, k := range s.models {
		if s.pools[k] != nil {
			keepM = append(keepM, k)
		}
	}
	s.models = keepM
	keepO := s.owned[:0]
	for _, o := range s.owned {
		if o != id {
			keepO = append(keepO, o)
		}
	}
	s.owned = keepO
	resp.Shards = append([]int(nil), s.owned...)
	return resp, nil
}

// sortModels keeps the served-model listing deterministic as shards come
// and go (the paper's model order, like AllModels).
func sortModels(models []complexobj.ModelKind) {
	sort.Slice(models, func(i, j int) bool { return models[i] < models[j] })
}

// handleShardAcquire serves POST /shards/acquire?shard=N[&segment=PATH].
func (s *Server) handleShardAcquire(w http.ResponseWriter, r *http.Request) {
	id, ok := s.shardParam(w, r)
	if !ok {
		return
	}
	resp, err := s.AcquireShard(id, r.URL.Query().Get("segment"))
	if err != nil {
		httpError(w, http.StatusConflict, "%v", err)
		return
	}
	writeJSON(w, resp)
}

// handleShardRelease serves POST /shards/release?shard=N.
func (s *Server) handleShardRelease(w http.ResponseWriter, r *http.Request) {
	id, ok := s.shardParam(w, r)
	if !ok {
		return
	}
	resp, err := s.ReleaseShard(id)
	if err != nil {
		httpError(w, http.StatusConflict, "%v", err)
		return
	}
	writeJSON(w, resp)
}

// shardParam validates the method and the shard parameter of the two
// rebalance endpoints. Mutating ownership is POST-only: a GET must never
// change what a backend serves.
func (s *Server) shardParam(w http.ResponseWriter, r *http.Request) (int, bool) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		httpError(w, http.StatusMethodNotAllowed, "%s needs POST", r.URL.Path)
		return 0, false
	}
	id, err := strconv.Atoi(r.URL.Query().Get("shard"))
	if err != nil {
		httpError(w, http.StatusBadRequest, "bad shard %q", r.URL.Query().Get("shard"))
		return 0, false
	}
	return id, true
}

// misdirected writes the 421 payload for a model this backend does not
// own; ver/owned are the backend's view of the map at rejection time.
func misdirected(w http.ResponseWriter, kind complexobj.ModelKind, ver uint64, owned []int) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusMisdirectedRequest)
	json.NewEncoder(w).Encode(NotOwnedResponse{
		Error:       fmt.Sprintf("model %s is not owned by this backend (shards %v, map version %d)", kind, owned, ver),
		NotOwned:    true,
		Model:       kind.String(),
		MapVersion:  ver,
		OwnedShards: owned,
	})
}

// openModelLocked opens one model's shared base from seg (through the
// commit log when durable) and its view pool; omu held (or the server
// exclusively owned, as in New).
func (s *Server) openModelLocked(k complexobj.ModelKind, seg string) error {
	opts := complexobj.Options{BufferPages: s.cfg.BufferPages, Backend: "cow", Faults: s.cfg.Faults}
	var base *complexobj.Base
	var err error
	if s.clog != nil {
		base, err = s.clog.OpenBase(k, seg)
	} else {
		base, err = complexobj.OpenBase(seg, k)
	}
	if err != nil {
		return fmt.Errorf("server: open base %s: %w", k, err)
	}
	pool, err := complexobj.NewViewPool(base, opts, s.cfg.MaxViews)
	if err != nil {
		base.Close()
		return fmt.Errorf("server: pool %s: %w", k, err)
	}
	s.bases[k] = base
	s.pools[k] = pool
	s.segments[k] = seg
	if s.clog != nil && s.commitMu[k] == nil {
		s.commitMu[k] = new(sync.Mutex)
	}
	return nil
}

// closeModelLocked stops serving one model: the pool closes (idle views
// destroyed, in-flight ones destroyed on release, pending acquires fail
// with ErrPoolClosed) and the base handle drops its arena reference —
// the mapping itself lives until the last in-flight view releases.
// omu held. Errors are logged, not returned: release must converge.
func (s *Server) closeModelLocked(k complexobj.ModelKind) {
	if p := s.pools[k]; p != nil {
		if err := p.Close(); err != nil {
			log.Printf("server: close pool %s: %v", k, err)
		}
		delete(s.pools, k)
	}
	if b := s.bases[k]; b != nil {
		if err := b.Close(); err != nil {
			log.Printf("server: close base %s: %v", k, err)
		}
		delete(s.bases, k)
	}
	delete(s.segments, k)
	delete(s.commitMu, k)
}
