package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"complexobj"
	"complexobj/cobench"
	"complexobj/internal/fanout"
)

// parityRun is everything one drive of the parity test produces: the
// final /stats, /info and /metrics reads after the load drained.
type parityRun struct {
	stats   StatsResponse
	info    InfoResponse
	metrics string
}

// driveForParity starts a fault-armed server over path and hammers every
// (model, query) cell with 8 concurrent clients, each retrying a cell
// until it succeeds — so every cell ends with exactly 8 recorded runs no
// matter what the fault schedule injected. With scrape=true a background
// goroutine hammers /metrics and /info the whole time, which per the
// observability contract must not move a single counter.
func driveForParity(t *testing.T, path string, w cobench.Workload, scrape bool) parityRun {
	t.Helper()
	plan := mustPlan(t, "seed=2026,read=0.03,short=0.01,latency=0.05:100us")
	srv, err := New(Config{
		Snapshot:       path,
		BufferPages:    256,
		MaxViews:       3,
		MaxInflight:    10,
		RequestTimeout: 30 * time.Second,
		Faults:         plan,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()

	stop := make(chan struct{})
	scraperDone := make(chan error, 1)
	if scrape {
		go func() {
			hc := hs.Client()
			for {
				select {
				case <-stop:
					scraperDone <- nil
					return
				default:
				}
				for _, ep := range []string{"/metrics", "/info"} {
					resp, err := hc.Get(hs.URL + ep)
					if err != nil {
						scraperDone <- err
						return
					}
					body, _ := io.ReadAll(resp.Body)
					resp.Body.Close()
					if resp.StatusCode != http.StatusOK || len(body) == 0 {
						scraperDone <- fmt.Errorf("scrape %s: %s (%d bytes)", ep, resp.Status, len(body))
						return
					}
				}
			}
		}()
	}

	models := complexobj.AllModels()
	queries := cobench.AllQueries()
	const clients = 8
	err = fanout.Run(clients, clients, func(c int) error {
		hc := hs.Client()
		for i := range models {
			k := models[(i+c)%len(models)]
			for j := range queries {
				q := queries[(j+c)%len(queries)]
				ok := false
				for attempt := 0; attempt < 50 && !ok; attempt++ {
					resp, err := hc.Get(runURL(hs.URL, k.String(), q.String(), w))
					if err != nil {
						return err
					}
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
					ok = resp.StatusCode == http.StatusOK
				}
				if !ok {
					return fmt.Errorf("client %d: %s %s never succeeded", c, k, q)
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if scrape {
		close(stop)
		if err := <-scraperDone; err != nil {
			t.Fatal(err)
		}
	}

	var out parityRun
	getJSON(t, hs.Client(), hs.URL+"/stats", &out.stats)
	getJSON(t, hs.Client(), hs.URL+"/info", &out.info)
	resp, err := hs.Client().Get(hs.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	out.metrics = string(body)
	return out
}

// counterCells strips the timing fields (the only legitimately
// nondeterministic ones) and marshals the /stats cells, so two runs can
// be compared byte for byte.
func counterCells(t *testing.T, stats StatsResponse) []byte {
	t.Helper()
	cells := append([]AggCell(nil), stats.Cells...)
	for i := range cells {
		cells[i].MeanUS, cells[i].MaxUS = 0, 0
	}
	data, err := json.Marshal(cells)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// parseProm parses Prometheus text exposition into series → value,
// keyed by the full sample name including its label set.
func parseProm(t *testing.T, text string) map[string]float64 {
	t.Helper()
	out := make(map[string]float64)
	for _, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("unparseable metrics line %q", line)
		}
		v, err := strconv.ParseFloat(line[sp+1:], 64)
		if err != nil {
			t.Fatalf("metrics line %q: %v", line, err)
		}
		key := line[:sp]
		if _, dup := out[key]; dup {
			t.Fatalf("duplicate metrics series %q", key)
		}
		out[key] = v
	}
	return out
}

// TestMetricsStatsParity pins the observability contract end to end:
// under a fault-armed 8-client soak, (1) scraping /metrics and /info the
// whole time leaves every /stats counter cell byte-identical to an
// unscraped run, and (2) the /metrics aggregate counters agree exactly
// with /stats and /info — same requests, same sheds, same faults, same
// per-cell counts — because both read the same underlying state.
func TestMetricsStatsParity(t *testing.T) {
	path, _ := buildSnapshot(t, 60)
	w := cobench.Workload{Loops: 10, Samples: 5, Seed: 1993}

	quiet := driveForParity(t, path, w, false)
	scraped := driveForParity(t, path, w, true)

	// (1) Paper counters are scrape-invariant, byte for byte.
	qc, sc := counterCells(t, quiet.stats), counterCells(t, scraped.stats)
	if string(qc) != string(sc) {
		t.Errorf("/stats counter cells differ between unscraped and scraped runs:\nquiet   %s\nscraped %s", qc, sc)
	}
	if quiet.stats.Requests != scraped.stats.Requests {
		t.Errorf("request totals differ: %d unscraped, %d scraped", quiet.stats.Requests, scraped.stats.Requests)
	}

	// (2) /metrics ↔ /stats ↔ /info agreement on the scraped run.
	prom := parseProm(t, scraped.metrics)
	stats, info := scraped.stats, scraped.info

	get := func(series string) float64 {
		v, ok := prom[series]
		if !ok {
			t.Fatalf("metrics series %q missing", series)
		}
		return v
	}
	if got := get("complexobj_requests_total"); got != float64(stats.Requests) {
		t.Errorf("complexobj_requests_total = %v, /stats requests = %d", got, stats.Requests)
	}
	var cellSum int64
	for _, cell := range stats.Cells {
		cellSum += cell.Count
	}
	if stats.DroppedCells != 0 {
		t.Fatalf("%d dropped cells; the parity sums assume none", stats.DroppedCells)
	}
	if cellSum != stats.Requests {
		t.Errorf("/stats cells sum to %d runs, requests = %d", cellSum, stats.Requests)
	}

	res := info.Resilience
	if got := get(`complexobj_requests_shed_total{reason="admission"}`); got != float64(res.ShedAdmission) {
		t.Errorf("shed admission: metrics %v, info %d", got, res.ShedAdmission)
	}
	if got := get(`complexobj_requests_shed_total{reason="deadline"}`); got != float64(res.ShedDeadline) {
		t.Errorf("shed deadline: metrics %v, info %d", got, res.ShedDeadline)
	}
	if got := get("complexobj_panics_total"); got != float64(res.Panics) {
		t.Errorf("panics: metrics %v, info %d", got, res.Panics)
	}

	// Fault counters: the schedule is armed, so the block must be present
	// and must equal the /info figures.
	if res.Faults == nil {
		t.Fatal("/info reports no fault stats despite an armed schedule")
	}
	for _, c := range []struct {
		series string
		want   int64
	}{
		{`complexobj_faults_injected_total{kind="read"}`, res.Faults.ReadFaults},
		{`complexobj_faults_injected_total{kind="short_read"}`, res.Faults.ShortReads},
		{`complexobj_faults_injected_total{kind="panic"}`, res.Faults.Panics},
		{"complexobj_fault_delays_total", res.Faults.Delays},
		{"complexobj_fault_ops_total", res.Faults.Ops},
	} {
		if got := get(c.series); got != float64(c.want) {
			t.Errorf("%s = %v, /info says %d", c.series, got, c.want)
		}
	}

	// Per-cell parity: /metrics cell requests equal the /stats counts
	// grouped by (model, query) — latency cells key coarser than /stats
	// cells — and each latency histogram recorded exactly one observation
	// per counted run.
	grouped := make(map[cellKey]int64)
	for _, cell := range stats.Cells {
		grouped[cellKey{cell.Model, cell.Query}] += cell.Count
	}
	if len(grouped) == 0 {
		t.Fatal("no /stats cells; the drive was vacuous")
	}
	for key, want := range grouped {
		labels := fmt.Sprintf("model=%q,query=%q", key.model, key.query)
		if got := get("complexobj_cell_requests_total{" + labels + "}"); got != float64(want) {
			t.Errorf("cell %s %s: metrics requests %v, /stats runs %d", key.model, key.query, got, want)
		}
		for _, hist := range []string{"complexobj_queue_wait_seconds", "complexobj_service_time_seconds"} {
			if got := get(hist + "_count{" + labels + "}"); got != float64(want) {
				t.Errorf("cell %s %s: %s_count = %v, want %d", key.model, key.query, hist, got, want)
			}
		}
	}

	// The /info structured twin reads the same histograms.
	if len(info.Metrics.Cells) != len(grouped) {
		t.Fatalf("/info metrics has %d cells, /stats groups to %d", len(info.Metrics.Cells), len(grouped))
	}
	for _, cell := range info.Metrics.Cells {
		want := grouped[cellKey{cell.Model, cell.Query}]
		if cell.Requests != want {
			t.Errorf("/info cell %s %s: %d requests, /stats says %d", cell.Model, cell.Query, cell.Requests, want)
		}
		if cell.Queue.Count != want || cell.Service.Count != want {
			t.Errorf("/info cell %s %s: queue count %d, service count %d, want %d",
				cell.Model, cell.Query, cell.Queue.Count, cell.Service.Count, want)
		}
		if cell.Service.MaxMicros < 0 || cell.Queue.MaxMicros < 0 {
			t.Errorf("/info cell %s %s: negative latency summary", cell.Model, cell.Query)
		}
	}
}
