// Package snapshot implements the .codb database snapshot format: a
// container holding, per storage model, the raw device arena (every page
// image) plus the model's directory metadata. Opening a snapshot restores
// a loaded database without regenerating or reloading the benchmark
// extension — and because the restored arena and directories are
// bit-identical to the originals, every query measured against a restored
// model produces exactly the counters of a fresh load (pinned by the
// round-trip tests).
//
// Layout (all integers big-endian):
//
//	"CODB" | u16 version | u32 genLen | gen JSON | u16 modelCount
//	repeated per model:
//	  u8 kind | u32 pageSize | u32 numPages | u32 metaLen | meta | arena
//
// The generator configuration is stored in the header so that a consumer
// (cotables -db) can verify the snapshot matches the requested extension
// instead of silently measuring a different database.
//
// # Format versioning
//
// Two version numbers evolve independently. The container version
// (Version, the u16 after the magic) covers the layout above; readers
// reject any mismatch with ErrFormat rather than guessing. Each model's
// meta blob additionally carries its own version written by the model's
// SnapshotMeta serializer, so a storage model can evolve its directory
// metadata without a container bump — RestoreMeta rejects blobs it does
// not understand with a typed error. Snapshots are write-once artifacts
// (cogen -db); there is no in-place migration, a mismatched snapshot is
// simply regenerated.
//
// A snapshot can be restored two ways: Open gives one model a private
// arena (restored into whatever backend the options name), OpenBase lifts
// the arena once into an immutable store.SharedBase from which any number
// of copy-on-write views open without further I/O or copying. OpenBase is
// zero-copy where the platform allows: the arena region of the .codb file
// is mmap'ed read-only in place (disk.NewMappedBaseArena), so the base
// starts with near-zero resident memory and views fault pages in on
// demand; OpenBaseHeap forces the portable heap copy. A mapped base pins
// the snapshot's inode until released — rewriting the file in place while
// a base is open is a caller bug, atomically replacing it via Write is
// safe.
package snapshot
