package snapshot

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"complexobj/cobench"
	"complexobj/internal/disk"
	"complexobj/internal/store"
)

// Version is the current container format version.
const Version = 1

var magic = [4]byte{'C', 'O', 'D', 'B'}

var (
	// ErrFormat reports a malformed or wrong-version snapshot file.
	ErrFormat = errors.New("snapshot: invalid snapshot file")
	// ErrNoModel reports that the requested storage model is not in the
	// snapshot.
	ErrNoModel = errors.New("snapshot: model not in snapshot")
)

// Info describes a snapshot file's contents.
type Info struct {
	// Gen is the generator configuration the snapshot was built from.
	Gen cobench.Config
	// Kinds lists the stored models in file order.
	Kinds []store.Kind
	// PageSize is the device page size shared by all stored models.
	PageSize int
}

// Write serializes the loaded models into path (atomically: a temp file
// in the same directory is renamed over the target). Dirty pages are
// flushed into the device first, so the arena is the authoritative state.
func Write(path string, gen cobench.Config, models ...store.Model) error {
	if len(models) == 0 {
		return errors.New("snapshot: no models to write")
	}
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".codb-*")
	if err != nil {
		return fmt.Errorf("snapshot: create: %w", err)
	}
	defer func() {
		tmp.Close()
		os.Remove(tmp.Name())
	}()
	w := bufio.NewWriterSize(tmp, 1<<20)

	genJSON, err := json.Marshal(gen)
	if err != nil {
		return fmt.Errorf("snapshot: encode gen config: %w", err)
	}
	if _, err := w.Write(magic[:]); err != nil {
		return err
	}
	var u16 [2]byte
	var u32 [4]byte
	putU16 := func(v uint16) error {
		binary.BigEndian.PutUint16(u16[:], v)
		_, err := w.Write(u16[:])
		return err
	}
	putU32 := func(v uint32) error {
		binary.BigEndian.PutUint32(u32[:], v)
		_, err := w.Write(u32[:])
		return err
	}
	if err := putU16(Version); err != nil {
		return err
	}
	if err := putU32(uint32(len(genJSON))); err != nil {
		return err
	}
	if _, err := w.Write(genJSON); err != nil {
		return err
	}
	if err := putU16(uint16(len(models))); err != nil {
		return err
	}
	for _, m := range models {
		if err := m.Flush(); err != nil {
			return fmt.Errorf("snapshot: flush %s: %w", m.Kind(), err)
		}
		meta, err := m.SnapshotMeta()
		if err != nil {
			return fmt.Errorf("snapshot: meta %s: %w", m.Kind(), err)
		}
		dev := m.Engine().Dev
		if err := w.WriteByte(byte(m.Kind())); err != nil {
			return err
		}
		if err := putU32(uint32(dev.PageSize())); err != nil {
			return err
		}
		if err := putU32(uint32(dev.NumPages())); err != nil {
			return err
		}
		if err := putU32(uint32(len(meta))); err != nil {
			return err
		}
		if _, err := w.Write(meta); err != nil {
			return err
		}
		if err := dev.DumpTo(w); err != nil {
			return fmt.Errorf("snapshot: dump %s arena: %w", m.Kind(), err)
		}
	}
	if err := w.Flush(); err != nil {
		return err
	}
	// CreateTemp's restrictive 0600 mode would survive the rename; align
	// with ordinary data files so another user can replay the snapshot.
	if err := tmp.Chmod(0o644); err != nil {
		return err
	}
	if err := tmp.Sync(); err != nil {
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// entry is one model's position inside a snapshot file.
type entry struct {
	kind     store.Kind
	pageSize int
	numPages int
	metaLen  int
	metaOff  int64 // file offset of the meta blob; arena follows
}

// parse reads the header and the entry table. Meta blobs and arenas are
// skipped with Seek, so describing or opening one model of a paper-scale
// snapshot never streams the other models' arenas through memory.
func parse(f *os.File) (Info, []entry, error) {
	var off int64
	readN := func(n int) ([]byte, error) {
		b := make([]byte, n)
		if _, err := io.ReadFull(f, b); err != nil {
			return nil, fmt.Errorf("%w: truncated at byte %d", ErrFormat, off)
		}
		off += int64(n)
		return b, nil
	}
	head, err := readN(4)
	if err != nil {
		return Info{}, nil, err
	}
	if [4]byte(head) != magic {
		return Info{}, nil, fmt.Errorf("%w: bad magic %q", ErrFormat, head)
	}
	vb, err := readN(2)
	if err != nil {
		return Info{}, nil, err
	}
	if v := binary.BigEndian.Uint16(vb); v != Version {
		return Info{}, nil, fmt.Errorf("%w: version %d, want %d", ErrFormat, v, Version)
	}
	lb, err := readN(4)
	if err != nil {
		return Info{}, nil, err
	}
	genLen := int(binary.BigEndian.Uint32(lb))
	if genLen > 1<<20 {
		return Info{}, nil, fmt.Errorf("%w: gen config of %d bytes", ErrFormat, genLen)
	}
	genJSON, err := readN(genLen)
	if err != nil {
		return Info{}, nil, err
	}
	var info Info
	if err := json.Unmarshal(genJSON, &info.Gen); err != nil {
		return Info{}, nil, fmt.Errorf("%w: gen config: %v", ErrFormat, err)
	}
	cb, err := readN(2)
	if err != nil {
		return Info{}, nil, err
	}
	count := int(binary.BigEndian.Uint16(cb))
	entries := make([]entry, 0, count)
	for i := 0; i < count; i++ {
		hdr, err := readN(1 + 4 + 4 + 4)
		if err != nil {
			return Info{}, nil, err
		}
		e := entry{
			kind:     store.Kind(hdr[0]),
			pageSize: int(binary.BigEndian.Uint32(hdr[1:])),
			numPages: int(binary.BigEndian.Uint32(hdr[5:])),
			metaLen:  int(binary.BigEndian.Uint32(hdr[9:])),
			metaOff:  off,
		}
		if e.pageSize <= 0 || e.numPages < 0 {
			return Info{}, nil, fmt.Errorf("%w: entry %d geometry", ErrFormat, i)
		}
		skip := int64(e.metaLen) + int64(e.numPages)*int64(e.pageSize)
		if _, err := f.Seek(skip, io.SeekCurrent); err != nil {
			return Info{}, nil, fmt.Errorf("%w: entry %d: %v", ErrFormat, i, err)
		}
		off += skip
		entries = append(entries, e)
		info.Kinds = append(info.Kinds, e.kind)
		info.PageSize = e.pageSize
	}
	// Seek tolerates offsets past EOF; verify the last entry actually fits.
	end, err := f.Seek(0, io.SeekEnd)
	if err != nil {
		return Info{}, nil, err
	}
	if end < off {
		return Info{}, nil, fmt.Errorf("%w: file ends at %d, entries need %d", ErrFormat, end, off)
	}
	return info, entries, nil
}

// Stat describes a snapshot file without restoring anything.
func Stat(path string) (Info, error) {
	f, err := os.Open(path)
	if err != nil {
		return Info{}, err
	}
	defer f.Close()
	info, _, err := parse(f)
	return info, err
}

// Open restores the model of the given kind from the snapshot. The
// options select the runtime knobs (buffer size, policy, backend); the
// page size comes from the snapshot and must not conflict with a non-zero
// o.PageSize. The restored model starts with a cold cache and zeroed
// counters, exactly like a freshly loaded one.
func Open(path string, k store.Kind, o store.Options) (store.Model, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	_, entries, err := parse(f)
	if err != nil {
		return nil, err
	}
	for _, e := range entries {
		if e.kind != k {
			continue
		}
		if o.PageSize != 0 && o.PageSize != e.pageSize {
			return nil, fmt.Errorf("snapshot: page size %d requested, snapshot has %d", o.PageSize, e.pageSize)
		}
		if o.CountIndexIO {
			return nil, fmt.Errorf("snapshot: counted index I/O is rebuilt per run and cannot be restored")
		}
		o.PageSize = e.pageSize
		eng, err := store.NewEngine(o)
		if err != nil {
			return nil, err
		}
		m, err := restoreInto(f, e, k, eng)
		if err != nil {
			eng.Close()
			return nil, err
		}
		return m, nil
	}
	return nil, fmt.Errorf("%w: %s in %s", ErrNoModel, k, filepath.Base(path))
}

// OpenBase lifts one model of the snapshot into a store.SharedBase
// without copying the arena through the heap where the platform allows
// it: the directory metadata is read normally (it is small), while the
// arena region of the .codb file is mmap'ed read-only in place
// (disk.NewMappedBaseArena; on platforms without mmap support it degrades
// to the heap copy of OpenBaseHeap). Every engine opened from the base
// afterwards is a copy-on-write view of that single mapping, so a
// paper-scale `-db x.codb -backend cow` run starts with near-zero
// resident arena and pages the base in on demand — with the same
// measurement guarantee as Open (cold cache, zeroed counters,
// bit-identical counters to a fresh load).
//
// The snapshot file must not be truncated or rewritten in place while the
// base is alive; replacing it via Write (atomic rename) is safe, the
// mapping pins the old inode. Release the base (store.SharedBase.Release,
// after every view closed) to drop the mapping.
func OpenBase(path string, k store.Kind) (*store.SharedBase, error) {
	return openBase(path, k, disk.CanMapBase)
}

// OpenBaseHeap is OpenBase with the arena copied into the heap
// unconditionally: the pre-mmap behaviour, kept for callers that want the
// base to survive snapshot-file deletion and for the mem-vs-mmap halves
// of the determinism tests.
func OpenBaseHeap(path string, k store.Kind) (*store.SharedBase, error) {
	return openBase(path, k, false)
}

func openBase(path string, k store.Kind, mapped bool) (*store.SharedBase, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	_, entries, err := parse(f)
	if err != nil {
		return nil, err
	}
	for _, e := range entries {
		if e.kind != k {
			continue
		}
		meta := make([]byte, e.metaLen)
		if _, err := f.ReadAt(meta, e.metaOff); err != nil {
			return nil, fmt.Errorf("%w: meta of %s", ErrFormat, e.kind)
		}
		arenaBytes := e.numPages * e.pageSize
		arenaOff := e.metaOff + int64(e.metaLen)
		var arena *disk.BaseArena
		if mapped {
			// Map through the descriptor the offsets were parsed from: if
			// the path was atomically replaced since Open, reopening it
			// would pair this file's offsets with another file's bytes.
			arena, err = disk.MapBaseArena(f, arenaOff, arenaBytes)
			if err != nil {
				return nil, fmt.Errorf("snapshot: map arena of %s: %w", e.kind, err)
			}
		} else {
			buf := make([]byte, arenaBytes)
			if _, err := f.ReadAt(buf, arenaOff); err != nil {
				return nil, fmt.Errorf("%w: arena of %s", ErrFormat, e.kind)
			}
			arena = disk.NewBaseArena(buf)
		}
		base, err := store.NewSharedBase(k, e.pageSize, meta, arena)
		if err != nil {
			arena.Release()
			return nil, err
		}
		return base, nil
	}
	return nil, fmt.Errorf("%w: %s in %s", ErrNoModel, k, filepath.Base(path))
}

func restoreInto(f *os.File, e entry, k store.Kind, eng *store.Engine) (store.Model, error) {
	if _, err := f.Seek(e.metaOff, io.SeekStart); err != nil {
		return nil, err
	}
	r := bufio.NewReaderSize(f, 1<<20)
	meta := make([]byte, e.metaLen)
	if _, err := io.ReadFull(r, meta); err != nil {
		return nil, fmt.Errorf("%w: meta of %s", ErrFormat, e.kind)
	}
	if err := eng.Dev.Restore(r, e.numPages); err != nil {
		return nil, fmt.Errorf("snapshot: restore %s arena: %w", e.kind, err)
	}
	m := store.NewWithEngine(k, eng)
	if err := m.RestoreMeta(meta); err != nil {
		return nil, fmt.Errorf("snapshot: restore %s meta: %w", e.kind, err)
	}
	return m, nil
}
