package snapshot_test

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"complexobj/cobench"
	"complexobj/internal/disk"
	"complexobj/internal/snapshot"
	"complexobj/internal/store"
	"complexobj/internal/workload"
)

func testGen() cobench.Config { return cobench.DefaultConfig().WithN(70) }

func loadModel(t *testing.T, k store.Kind, stations []*cobench.Station, spec disk.BackendSpec) store.Model {
	t.Helper()
	m, err := store.New(k, store.Options{BufferPages: 180, Backend: spec})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Load(stations); err != nil {
		t.Fatal(err)
	}
	if err := m.Engine().ColdCache(); err != nil {
		t.Fatal(err)
	}
	m.Engine().ResetStats()
	return m
}

func runAll(t *testing.T, m store.Model) []workload.Result {
	t.Helper()
	res, err := workload.NewRunner(m, cobench.Workload{Loops: 15, Samples: 5, Seed: 11}).RunAll()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestSnapshotRoundTrip pins the acceptance property of the snapshot
// format: write → close → open restores every storage model such that the
// full query matrix produces counters bit-identical to the freshly loaded
// original — on the memory and on the file backend.
func TestSnapshotRoundTrip(t *testing.T) {
	gen := testGen()
	stations, err := cobench.Generate(gen)
	if err != nil {
		t.Fatal(err)
	}
	kinds := store.AllKinds()

	// Reference counters from freshly loaded models.
	want := make(map[store.Kind][]workload.Result, len(kinds))
	models := make([]store.Model, 0, len(kinds))
	for _, k := range kinds {
		m := loadModel(t, k, stations, disk.BackendSpec{})
		want[k] = runAll(t, m)
		models = append(models, m)
	}

	// Snapshot the (already queried) models: measurement must not have
	// perturbed the on-device state in a way queries can observe.
	path := filepath.Join(t.TempDir(), "round.codb")
	if err := snapshot.Write(path, gen, models...); err != nil {
		t.Fatal(err)
	}
	for _, m := range models {
		if err := m.Engine().Close(); err != nil {
			t.Fatal(err)
		}
	}

	info, err := snapshot.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if info.Gen != gen {
		t.Fatalf("Stat gen = %+v, want %+v", info.Gen, gen)
	}
	if len(info.Kinds) != len(kinds) {
		t.Fatalf("Stat kinds = %v", info.Kinds)
	}

	for _, k := range kinds {
		for _, spec := range []disk.BackendSpec{
			{Kind: disk.MemArena},
			{Kind: disk.FileArena, Dir: t.TempDir()},
		} {
			m, err := snapshot.Open(path, k, store.Options{BufferPages: 180, Backend: spec})
			if err != nil {
				t.Fatalf("open %s (%s): %v", k, spec, err)
			}
			got := runAll(t, m)
			for i := range got {
				if got[i].Stats != want[k][i].Stats {
					t.Errorf("%s %s on %s backend: restored counters differ:\nfresh:    %+v\nrestored: %+v",
						k, got[i].Query, spec, want[k][i].Stats, got[i].Stats)
				}
			}
			if err := m.Engine().Close(); err != nil {
				t.Fatal(err)
			}
		}
	}
}

// TestSnapshotOpenMissingModel asserts the typed error for absent kinds.
func TestSnapshotOpenMissingModel(t *testing.T) {
	gen := testGen()
	stations, err := cobench.Generate(gen)
	if err != nil {
		t.Fatal(err)
	}
	m := loadModel(t, store.DSM, stations, disk.BackendSpec{})
	defer m.Engine().Close()
	path := filepath.Join(t.TempDir(), "one.codb")
	if err := snapshot.Write(path, gen, m); err != nil {
		t.Fatal(err)
	}
	if _, err := snapshot.Open(path, store.DASDBSNSM, store.Options{}); !errors.Is(err, snapshot.ErrNoModel) {
		t.Fatalf("want ErrNoModel, got %v", err)
	}
}

// TestSnapshotRejectsGarbage asserts corrupt files fail cleanly.
func TestSnapshotRejectsGarbage(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "garbage.codb")
	if err := writeFile(path, []byte("NOTASNAPSHOT")); err != nil {
		t.Fatal(err)
	}
	if _, err := snapshot.Stat(path); !errors.Is(err, snapshot.ErrFormat) {
		t.Fatalf("want ErrFormat, got %v", err)
	}
}

// TestSnapshotPageSizeConflict asserts a mismatched explicit page size is
// rejected instead of silently reinterpreting the arena.
func TestSnapshotPageSizeConflict(t *testing.T) {
	gen := testGen()
	stations, err := cobench.Generate(gen)
	if err != nil {
		t.Fatal(err)
	}
	m := loadModel(t, store.DSM, stations, disk.BackendSpec{})
	defer m.Engine().Close()
	path := filepath.Join(t.TempDir(), "ps.codb")
	if err := snapshot.Write(path, gen, m); err != nil {
		t.Fatal(err)
	}
	if _, err := snapshot.Open(path, store.DSM, store.Options{PageSize: 4096}); err == nil {
		t.Fatal("conflicting page size accepted")
	}
}

func writeFile(path string, b []byte) error { return os.WriteFile(path, b, 0o644) }

// TestSnapshotOpenBaseEquivalence pins the shared-base restore path: a
// COW view opened from snapshot.OpenBase runs the full query matrix with
// counters bit-identical to snapshot.Open — even when several views of
// the same base run back to back, and even after an earlier view has run
// the update queries (overlays are private, the base is immutable).
func TestSnapshotOpenBaseEquivalence(t *testing.T) {
	gen := testGen()
	stations, err := cobench.Generate(gen)
	if err != nil {
		t.Fatal(err)
	}
	m := loadModel(t, store.DASDBSNSM, stations, disk.BackendSpec{})
	want := runAll(t, m)
	path := filepath.Join(t.TempDir(), "base.codb")
	if err := snapshot.Write(path, gen, m); err != nil {
		t.Fatal(err)
	}
	m.Engine().Close()

	base, err := snapshot.OpenBase(path, store.DASDBSNSM)
	if err != nil {
		t.Fatal(err)
	}
	if base.NumPages() == 0 || base.ArenaBytes() != base.NumPages()*base.PageSize() {
		t.Fatalf("base geometry: %d pages, %d bytes", base.NumPages(), base.ArenaBytes())
	}
	for view := 0; view < 3; view++ {
		v, err := base.Open(store.Options{BufferPages: 180})
		if err != nil {
			t.Fatal(err)
		}
		got := runAll(t, v) // includes the update queries: dirties the overlay
		for i := range got {
			if got[i].Stats != want[i].Stats {
				t.Errorf("view %d, %s: counters differ from fresh load:\nfresh: %+v\nview:  %+v",
					view, got[i].Query, want[i].Stats, got[i].Stats)
			}
		}
		if err := v.Engine().Close(); err != nil {
			t.Fatal(err)
		}
	}

	if _, err := snapshot.OpenBase(path, store.DSM); !errors.Is(err, snapshot.ErrNoModel) {
		t.Errorf("missing model error = %v", err)
	}
}
