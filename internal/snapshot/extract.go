package snapshot

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"complexobj/internal/store"
)

// Extract writes a new snapshot at dst holding only the selected kinds of
// src, in src's file order. Each entry's meta blob and arena are copied
// byte for byte from their offsets — the model data is never decoded, so
// splitting a paper-scale snapshot into per-shard segments costs one
// sequential read of the selected regions and nothing else. A base opened
// from the segment is bit-identical to one opened from the full snapshot
// (same arena bytes, same meta), which is what makes a shard handoff a
// file move + mmap rather than a reload.
//
// Every requested kind must be present in src; requesting none is an
// error (a snapshot holds at least one model).
func Extract(src, dst string, kinds []store.Kind) error {
	if len(kinds) == 0 {
		return fmt.Errorf("snapshot: extract of no models")
	}
	f, err := os.Open(src)
	if err != nil {
		return err
	}
	defer f.Close()
	info, entries, err := parse(f)
	if err != nil {
		return err
	}
	want := make(map[store.Kind]bool, len(kinds))
	for _, k := range kinds {
		if want[k] {
			return fmt.Errorf("snapshot: extract: duplicate model %s", k)
		}
		want[k] = true
	}
	var selected []entry
	for _, e := range entries {
		if want[e.kind] {
			selected = append(selected, e)
			delete(want, e.kind)
		}
	}
	for k := range want {
		return fmt.Errorf("%w: %s in %s", ErrNoModel, k, filepath.Base(src))
	}

	tmp, err := os.CreateTemp(filepath.Dir(dst), ".codb-*")
	if err != nil {
		return fmt.Errorf("snapshot: create: %w", err)
	}
	defer func() {
		tmp.Close()
		os.Remove(tmp.Name())
	}()
	w := bufio.NewWriterSize(tmp, 1<<20)

	genJSON, err := json.Marshal(info.Gen)
	if err != nil {
		return fmt.Errorf("snapshot: encode gen config: %w", err)
	}
	if _, err := w.Write(magic[:]); err != nil {
		return err
	}
	var u16 [2]byte
	var u32 [4]byte
	putU16 := func(v uint16) error {
		binary.BigEndian.PutUint16(u16[:], v)
		_, err := w.Write(u16[:])
		return err
	}
	putU32 := func(v uint32) error {
		binary.BigEndian.PutUint32(u32[:], v)
		_, err := w.Write(u32[:])
		return err
	}
	if err := putU16(Version); err != nil {
		return err
	}
	if err := putU32(uint32(len(genJSON))); err != nil {
		return err
	}
	if _, err := w.Write(genJSON); err != nil {
		return err
	}
	if err := putU16(uint16(len(selected))); err != nil {
		return err
	}
	for _, e := range selected {
		if err := w.WriteByte(byte(e.kind)); err != nil {
			return err
		}
		if err := putU32(uint32(e.pageSize)); err != nil {
			return err
		}
		if err := putU32(uint32(e.numPages)); err != nil {
			return err
		}
		if err := putU32(uint32(e.metaLen)); err != nil {
			return err
		}
		span := int64(e.metaLen) + int64(e.numPages)*int64(e.pageSize)
		if _, err := io.Copy(w, io.NewSectionReader(f, e.metaOff, span)); err != nil {
			return fmt.Errorf("snapshot: copy %s: %w", e.kind, err)
		}
	}
	if err := w.Flush(); err != nil {
		return err
	}
	if err := tmp.Chmod(0o644); err != nil {
		return err
	}
	if err := tmp.Sync(); err != nil {
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), dst)
}
