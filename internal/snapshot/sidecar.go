package snapshot

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"complexobj/internal/disk"
	"complexobj/internal/store"
)

// Sidecar files are the per-model persistent form behind the durable
// commit path: one raw arena file (the device pages, contiguous, exactly
// the layout DumpTo streams and the file backend adopts) plus one meta
// blob carrying the geometry, the model's directory metadata and the
// write-ahead-log watermark. Unlike the .codb container they hold a
// single model under stable names — <slug>.arena and <slug>.meta — so a
// checkpoint can atomically replace each file via rename and a restart
// can mmap the arena in place.
//
// Checkpoint crash safety leans on the WAL, not on cross-file atomicity:
// the log is truncated only after both renames complete, and replayed
// page images are absolute, so recovery over any arena between the
// previous and the current checkpoint — including the torn "new arena,
// old meta" window — converges to the same committed state.

// SidecarVersion is the sidecar meta format version.
const SidecarVersion = 1

var sidecarMagic = [4]byte{'C', 'O', 'S', 'M'}

// SidecarInfo describes a sidecar pair.
type SidecarInfo struct {
	Kind     store.Kind
	PageSize int
	NumPages int
	// Seq is the last acknowledged WAL commit sequence captured by the
	// checkpoint that wrote the sidecar (0 for a fresh seed): restored
	// into the reopened log so sequence numbers stay monotonic.
	Seq uint64
	// Gen is the base generation at checkpoint time (diagnostics only; a
	// restart renumbers generations from the recovered state).
	Gen uint64
}

// Slug returns the file-name slug of a storage model (the short aliases
// the CLI accepts: dsm, ddsm, nsm, nsmx, dnsm).
func Slug(k store.Kind) string {
	switch k {
	case store.DSM:
		return "dsm"
	case store.DASDBSDSM:
		return "ddsm"
	case store.NSM:
		return "nsm"
	case store.NSMIndex:
		return "nsmx"
	case store.DASDBSNSM:
		return "dnsm"
	default:
		return fmt.Sprintf("kind%d", byte(k))
	}
}

// SidecarPaths returns the arena and meta paths of a model in dir.
func SidecarPaths(dir string, k store.Kind) (arena, meta string) {
	slug := Slug(k)
	return filepath.Join(dir, slug+".arena"), filepath.Join(dir, slug+".meta")
}

// writeFileAtomic streams content into a temp file in path's directory,
// syncs it and renames it over path (the snapshot.Write idiom).
func writeFileAtomic(path string, write func(w io.Writer) error) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, "."+filepath.Base(path)+"-*")
	if err != nil {
		return fmt.Errorf("snapshot: create: %w", err)
	}
	defer func() {
		tmp.Close()
		os.Remove(tmp.Name())
	}()
	w := bufio.NewWriterSize(tmp, 1<<20)
	if err := write(w); err != nil {
		return err
	}
	if err := w.Flush(); err != nil {
		return err
	}
	if err := tmp.Chmod(0o644); err != nil {
		return err
	}
	if err := tmp.Sync(); err != nil {
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return err
	}
	return syncDir(dir)
}

// syncDir makes a rename durable (best effort: some filesystems refuse
// directory fsync; the WAL covers the gap there).
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return nil
	}
	defer d.Close()
	d.Sync()
	return nil
}

// WriteSidecar persists the base's current generation into dir as the
// model's sidecar pair, recording seq as the WAL watermark the arena
// includes. The arena file is written and renamed before the meta file
// (see the package comment on the crash window).
func WriteSidecar(dir string, b *store.SharedBase, seq uint64) error {
	gen, numPages, meta, arena := b.SnapshotState()
	defer arena.Release()
	arenaPath, _ := SidecarPaths(dir, b.Kind())
	if err := writeFileAtomic(arenaPath, func(w io.Writer) error {
		_, err := w.Write(arena.Bytes())
		return err
	}); err != nil {
		return fmt.Errorf("snapshot: sidecar arena %s: %w", b.Kind(), err)
	}
	return WriteSidecarMeta(dir, b.Kind(), b.PageSize(), numPages, seq, gen, meta)
}

// WriteSidecarMeta writes only the meta half of a sidecar pair. The
// persistent-database lifecycle uses this directly: its arena file is
// the live file backend, flushed and truncated by the engine itself.
func WriteSidecarMeta(dir string, k store.Kind, pageSize, numPages int, seq, gen uint64, meta []byte) error {
	_, metaPath := SidecarPaths(dir, k)
	if err := writeFileAtomic(metaPath, func(w io.Writer) error {
		var hdr [4 + 2 + 1 + 4 + 4 + 8 + 8 + 4]byte
		copy(hdr[:4], sidecarMagic[:])
		binary.BigEndian.PutUint16(hdr[4:6], SidecarVersion)
		hdr[6] = byte(k)
		binary.BigEndian.PutUint32(hdr[7:11], uint32(pageSize))
		binary.BigEndian.PutUint32(hdr[11:15], uint32(numPages))
		binary.BigEndian.PutUint64(hdr[15:23], seq)
		binary.BigEndian.PutUint64(hdr[23:31], gen)
		binary.BigEndian.PutUint32(hdr[31:35], uint32(len(meta)))
		if _, err := w.Write(hdr[:]); err != nil {
			return err
		}
		_, err := w.Write(meta)
		return err
	}); err != nil {
		return fmt.Errorf("snapshot: sidecar meta %s: %w", k, err)
	}
	return nil
}

// ReadSidecar reads a model's sidecar meta file in dir: its description
// plus the raw directory-metadata blob.
func ReadSidecar(dir string, k store.Kind) (SidecarInfo, []byte, error) {
	_, metaPath := SidecarPaths(dir, k)
	return readSidecarMeta(metaPath)
}

// readSidecarMeta parses a sidecar meta file.
func readSidecarMeta(metaPath string) (SidecarInfo, []byte, error) {
	raw, err := os.ReadFile(metaPath)
	if err != nil {
		return SidecarInfo{}, nil, err
	}
	if len(raw) < 35 || [4]byte(raw[:4]) != sidecarMagic {
		return SidecarInfo{}, nil, fmt.Errorf("%w: sidecar %s", ErrFormat, filepath.Base(metaPath))
	}
	if v := binary.BigEndian.Uint16(raw[4:6]); v != SidecarVersion {
		return SidecarInfo{}, nil, fmt.Errorf("%w: sidecar version %d, want %d", ErrFormat, v, SidecarVersion)
	}
	info := SidecarInfo{
		Kind:     store.Kind(raw[6]),
		PageSize: int(binary.BigEndian.Uint32(raw[7:11])),
		NumPages: int(binary.BigEndian.Uint32(raw[11:15])),
		Seq:      binary.BigEndian.Uint64(raw[15:23]),
		Gen:      binary.BigEndian.Uint64(raw[23:31]),
	}
	metaLen := int(binary.BigEndian.Uint32(raw[31:35]))
	if info.PageSize <= 0 || info.NumPages < 0 || metaLen != len(raw)-35 {
		return SidecarInfo{}, nil, fmt.Errorf("%w: sidecar %s geometry", ErrFormat, filepath.Base(metaPath))
	}
	return info, raw[35:], nil
}

// StatSidecar describes a model's sidecar in dir without restoring
// anything. os.IsNotExist on the returned error distinguishes "never
// checkpointed" from corruption.
func StatSidecar(dir string, k store.Kind) (SidecarInfo, error) {
	_, metaPath := SidecarPaths(dir, k)
	info, _, err := readSidecarMeta(metaPath)
	return info, err
}

// OpenSidecarBase lifts a model's sidecar pair in dir into a SharedBase,
// mmap'ing the arena file where the platform allows (same contract as
// OpenBase: the arena file must not be rewritten in place while the base
// lives; atomic replacement by WriteSidecar is safe). Returns the
// sidecar info alongside so the caller can restore the WAL watermark.
func OpenSidecarBase(dir string, k store.Kind) (*store.SharedBase, SidecarInfo, error) {
	arenaPath, metaPath := SidecarPaths(dir, k)
	info, meta, err := readSidecarMeta(metaPath)
	if err != nil {
		return nil, SidecarInfo{}, err
	}
	if info.Kind != k {
		return nil, SidecarInfo{}, fmt.Errorf("%w: sidecar %s holds %s, want %s", ErrFormat, filepath.Base(metaPath), info.Kind, k)
	}
	arenaBytes := info.NumPages * info.PageSize
	var arena *disk.BaseArena
	if disk.CanMapBase && arenaBytes > 0 {
		arena, err = disk.NewMappedBaseArena(arenaPath, 0, arenaBytes)
	} else {
		buf := make([]byte, arenaBytes)
		f, ferr := os.Open(arenaPath)
		if ferr != nil {
			return nil, SidecarInfo{}, ferr
		}
		if arenaBytes > 0 {
			_, err = io.ReadFull(f, buf)
		}
		f.Close()
		if err == nil {
			arena = disk.NewBaseArena(buf)
		}
	}
	if err != nil {
		return nil, SidecarInfo{}, fmt.Errorf("snapshot: sidecar arena of %s: %w", k, err)
	}
	base, err := store.NewSharedBase(k, info.PageSize, meta, arena)
	if err != nil {
		arena.Release()
		return nil, SidecarInfo{}, err
	}
	return base, info, nil
}
